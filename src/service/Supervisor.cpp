//===- service/Supervisor.cpp - Multi-tenant sanitizer supervisor ---------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Supervisor.h"

#include "lowfat/LowFatHeap.h"
#include "lowfat/SizeClass.h"
#include "obs/Trace.h"
#include "resilience/Fault.h"

#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace effective;
using namespace effective::service;

//===----------------------------------------------------------------------===//
// Construction / shutdown
//===----------------------------------------------------------------------===//

static concurrent::PoolOptions poolOptions(const ServiceOptions &Options) {
  concurrent::PoolOptions P;
  P.Shards = Options.Shards;
  P.Policy = Options.Policy;
  P.Reporter = Options.Reporter;
  P.Heap = Options.Heap;
  P.ErrorRingCapacity = Options.ErrorRingCapacity;
  P.SiteCacheEntries = Options.SiteCacheEntries;
  P.RingRetryAttempts = Options.RingRetryAttempts;
  P.DropOnRingFull = Options.DropOnRingFull;
  return P;
}

const char *effective::service::healthName(ServiceHealth H) {
  switch (H) {
  case ServiceHealth::Healthy:
    return "healthy";
  case ServiceHealth::Degraded:
    return "degraded";
  case ServiceHealth::Critical:
    return "critical";
  }
  return "?";
}

Supervisor::Supervisor(const ServiceOptions &Options)
    : Pool(poolOptions(Options)), NumShards(Pool.numShards()),
      BasePolicy(Options.Policy), Tenants(NumShards),
      Governor(Options.Governor, NumShards, Options.Policy),
      GovernorEnabled(Options.EnableGovernor),
      AbortAfter(Options.AbortAfter), AbortHandler(Options.AbortHandler),
      AbortUserData(Options.AbortUserData),
      SnapshotHook(Options.SnapshotHook),
      SnapshotUserData(Options.SnapshotUserData),
      SnapshotEveryTicks(Options.SnapshotEveryTicks),
      LastCheckSum(NumShards, 0), LastAllocCount(NumShards, 0),
      IntervalMicros(Options.DrainIntervalMicros
                         ? Options.DrainIntervalMicros
                         : 2000) {
  initMetrics();
  WatchdogEnabled = Options.EnableWatchdog;
  WatchdogMicros = Options.WatchdogIntervalMicros
                       ? Options.WatchdogIntervalMicros
                       : 4 * IntervalMicros;
  MaxDrainRestarts = Options.MaxDrainRestarts;
  // The liveness flag is raised *before* the thread exists so the
  // watchdog's first check cannot mistake a slow thread start for a
  // death; the drain thread only ever lowers it, on exit.
  DrainerAlive.store(true, std::memory_order_release);
  Drainer = std::thread([this] { drainLoop(); });
  if (WatchdogEnabled)
    Watchdog = std::thread([this] { watchdogLoop(); });
}

Supervisor::~Supervisor() {
  // The watchdog goes first: once it is joined, nothing can respawn
  // the drain thread behind the shutdown below.
  {
    std::lock_guard<std::mutex> Guard(WatchdogLock);
    WatchdogStop = true;
  }
  WatchdogCV.notify_all();
  if (Watchdog.joinable())
    Watchdog.join();
  {
    std::lock_guard<std::mutex> Guard(TickLock);
    Stop = true;
  }
  TickCV.notify_all();
  TickDoneCV.notify_all();
  if (Drainer.joinable())
    Drainer.join();
  // Final drain: events pushed after the loop's last tick still get
  // tenant attribution and central reporting before the pool (which
  // would drain them unattributed) tears down.
  drainAttributed();
}

//===----------------------------------------------------------------------===//
// The drain loop
//===----------------------------------------------------------------------===//

void Supervisor::drainLoop() {
  std::unique_lock<std::mutex> L(TickLock);
  while (!Stop) {
    if (!Poke)
      TickCV.wait_for(L, std::chrono::microseconds(IntervalMicros),
                      [this] { return Stop || Poke; });
    if (Stop)
      break;
    // An induced stall kills this thread exactly as a crashed drainer
    // would — mid-loop, tick not run, Poke left pending — so recovery
    // is entirely the watchdog's problem, as in production.
    if (EFFSAN_FAULT(DrainStall))
      break;
    Poke = false;
    InTick = true;
    L.unlock();
    uint64_t Events = runTick();
    L.lock();
    InTick = false;
    LastTickEvents = Events;
    ++CompletedTicks;
    Heartbeat.fetch_add(1, std::memory_order_relaxed);
    TickDoneCV.notify_all();
  }
  L.unlock();
  DrainerAlive.store(false, std::memory_order_release);
}

void Supervisor::watchdogLoop() {
  std::unique_lock<std::mutex> L(WatchdogLock);
  while (!WatchdogStop) {
    WatchdogCV.wait_for(L, std::chrono::microseconds(WatchdogMicros),
                        [this] { return WatchdogStop; });
    if (WatchdogStop)
      break;
    L.unlock();
    WatchdogChecks.fetch_add(1, std::memory_order_relaxed);
    if (!DrainerAlive.load(std::memory_order_acquire)) {
      restartDrainer();
    } else {
      // Wedged detection: alive but stuck inside one tick across
      // several consecutive checks. Restarting here would put a second
      // consumer on the single-consumer ring, so a wedge only degrades
      // health — and clears itself the moment the tick completes.
      uint64_t Beat = Heartbeat.load(std::memory_order_relaxed);
      bool StuckInTick;
      {
        std::lock_guard<std::mutex> Guard(TickLock);
        StuckInTick = InTick;
      }
      if (StuckInTick && Beat == LastSeenBeat) {
        if (++WedgedStreak >= 3)
          DrainWedged.store(true, std::memory_order_relaxed);
      } else {
        WedgedStreak = 0;
        DrainWedged.store(false, std::memory_order_relaxed);
      }
      LastSeenBeat = Beat;
    }
    L.lock();
  }
}

void Supervisor::restartDrainer() {
  std::lock_guard<std::mutex> Guard(RestartLock);
  if (DrainerAlive.load(std::memory_order_acquire))
    return; // A concurrent restart already brought the drainer back.
  if (Drainer.joinable())
    Drainer.join();
  if (DrainRestarts.load(std::memory_order_relaxed) >= MaxDrainRestarts) {
    // Budget exhausted: latch Critical and escalate once through the
    // snapshot hook — the out-of-band channel the embedder already
    // wired. The drain thread is provably dead (joined above), so the
    // hook cannot race a drain-tick invocation of itself.
    CriticalLatch.store(true, std::memory_order_relaxed);
    if (!EscalationFired) {
      EscalationFired = true;
      void (*Hook)(const char *, void *) = nullptr;
      void *HookData = nullptr;
      {
        std::lock_guard<std::mutex> HookGuard(HookLock);
        Hook = SnapshotHook;
        HookData = SnapshotUserData;
      }
      if (Hook) {
        std::string Json = snapshotJson();
        Hook(Json.c_str(), HookData);
      }
    }
    return;
  }
  DrainRestarts.fetch_add(1, std::memory_order_relaxed);
  DrainerAlive.store(true, std::memory_order_release);
  Drainer = std::thread([this] { drainLoop(); });
}

uint64_t Supervisor::drainAttributed() {
  concurrent::ErrorRing &Ring = Pool.ring();
  lowfat::LowFatHeap &Heap = Pool.heap().heap();
  ErrorInfo Info;
  uint64_t Events = 0;
  while (Ring.tryPop(Info)) {
    ++Events;
    // Attribute by the erring pointer's arena slice: shardOf() is pure
    // address arithmetic and the tenant <-> shard binding is 1:1.
    // Legacy (non-low-fat) pointers are pool-wide events — reported,
    // not billed.
    if (Info.Pointer && Heap.isLowFat(Info.Pointer))
      Tenants.noteErrorEvent(Heap.shardOf(Info.Pointer));
    Pool.reporter().report(Info);
  }
  DrainedEvents.fetch_add(Events, std::memory_order_relaxed);
  return Events;
}

uint64_t Supervisor::runTick() {
  concurrent::ErrorRing &Ring = Pool.ring();
  uint64_t TickStart = obs::now();

  // Ring occupancy is sampled *before* the drain: it reflects the
  // pressure the mutators built up over the interval, not the empty
  // ring the drain leaves behind.
  double Occupancy = static_cast<double>(Ring.size()) /
                     static_cast<double>(Ring.capacity());

  uint64_t Events = drainAttributed();
  DrainTicks.fetch_add(1, std::memory_order_relaxed);

  // The drain thread doubles as the tracing layer's collector: moving
  // the per-thread rings' contents into the tracer's buffer every tick
  // keeps long traced runs from overflowing the fixed-size rings.
  if (obs::traceActive())
    obs::Tracer::instance().collect();

  // Pool-wide abort threshold, fired from the drainer (a shard's own
  // reporter only ever sees that shard's events, so only this thread
  // can enforce a pool budget).
  if (AbortAfter && !AbortFired.load(std::memory_order_relaxed) &&
      DrainedEvents.load(std::memory_order_relaxed) >= AbortAfter) {
    AbortFired.store(true, std::memory_order_relaxed);
    uint64_t Total = DrainedEvents.load(std::memory_order_relaxed);
    if (AbortHandler) {
      AbortHandler(Total, AbortUserData);
    } else {
      std::fprintf(stderr,
                   "EffectiveSan service: pool-wide abort threshold "
                   "reached (%" PRIu64 " error events >= %" PRIu64
                   ")\n",
                   Total, AbortAfter);
      std::abort();
    }
  }

  // Complete pending evictions: once a tenant's last lease returned,
  // recycle its shard (drain again first so nothing queued from the
  // dying tenant is attributed to its successor), restore the base
  // policy, and free the slot for the next tenant.
  std::vector<unsigned> Due = Tenants.shardsAwaitingReset();
  if (!Due.empty()) {
    Events += drainAttributed();
    for (unsigned Shard : Due) {
      Pool.shard(Shard).reset();
      EFFSAN_OBS_EVENT(SessionReset, Shard, Shard);
      Pool.shard(Shard).setPolicy(BasePolicy);
      Governor.resetShard(Shard);
      LastCheckSum[Shard] = 0;
      LastAllocCount[Shard] = 0;
      Tenants.finishReset(Shard);
    }
  }

  // Governor pass: per-shard pressure deltas since the previous tick.
  // An induced misfire skips the whole pass for one tick: policies and
  // baselines simply stand a tick longer and the deltas accumulate —
  // exactly what a lost governor timer would produce, and exactly as
  // recoverable.
  bool GovernorMisfired = EFFSAN_FAULT(GovernorMisfire);
  for (unsigned Shard = 0; !GovernorMisfired && Shard < NumShards;
       ++Shard) {
    uint64_t Checks = checkSumOf(Shard);
    uint64_t Allocs = Pool.heap().shardStats(Shard).NumAllocs;
    ShardSample Sample;
    Sample.Checks = Checks > LastCheckSum[Shard]
                        ? Checks - LastCheckSum[Shard]
                        : 0;
    Sample.Allocs = Allocs > LastAllocCount[Shard]
                        ? Allocs - LastAllocCount[Shard]
                        : 0;
    Sample.RingOccupancy = Occupancy;
    LastCheckSum[Shard] = Checks;
    LastAllocCount[Shard] = Allocs;
    // Only occupied shards are steered: an empty slot keeps the base
    // policy so its next tenant starts undegraded.
    if (!GovernorEnabled || Tenants.tenantOf(Shard) == NoTenant)
      continue;
    LoadGovernor::Decision D = Governor.observe(Shard, Sample);
    if (D.Degraded || D.Restored) {
      Pool.shard(Shard).setPolicy(Governor.policyOf(Shard));
      if (D.Degraded)
        PolicyDegrades.fetch_add(1, std::memory_order_relaxed);
      else
        PolicyRestores.fetch_add(1, std::memory_order_relaxed);
      EFFSAN_OBS_EVENT(GovernorStep, Shard, D.Level);
    }
  }

  // Periodic JSON snapshot.
  void (*Hook)(const char *, void *) = nullptr;
  void *HookData = nullptr;
  unsigned Every = 0;
  {
    std::lock_guard<std::mutex> Guard(HookLock);
    Hook = SnapshotHook;
    HookData = SnapshotUserData;
    Every = SnapshotEveryTicks;
  }
  // Short-circuit on a null hook (or a zero cadence): rendering a
  // document nobody receives would charge every drain tick for
  // nothing. The guard predates the dirty flag; keep both.
  if (Hook && Every) {
    if (++TicksSinceSnapshot >= Every) {
      TicksSinceSnapshot = 0;
      // Dirty flag: when nothing externally observable moved since the
      // last emission, skip the render and the hook. High every_ticks
      // rates over an idle service then cost one signature hash per
      // cadence instead of a full JSON render.
      uint64_t Sig = activitySignature();
      if (HaveSnapshotSignature && Sig == LastSnapshotSignature) {
        SnapshotsSkipped.fetch_add(1, std::memory_order_relaxed);
      } else if (EFFSAN_FAULT(SnapshotHook)) {
        // An induced delivery failure behaves like a hook that threw:
        // nothing is delivered and the dirty flag is left unset, so the
        // next cadence retries instead of silently treating the changed
        // snapshot as already published.
        HaveSnapshotSignature = false;
      } else {
        LastSnapshotSignature = Sig;
        HaveSnapshotSignature = true;
        std::string Json = snapshotJson();
        Hook(Json.c_str(), HookData);
        SnapshotsEmitted.fetch_add(1, std::memory_order_relaxed);
        EFFSAN_OBS_EVENT(SnapshotEmit, ::effective::obs::NoShard,
                         Json.size());
      }
    }
  }

  // Refresh the metrics mirror and close out the tick's duration
  // sample. Everything here is set/observe on preregistered metrics —
  // no allocation on the steady-state path.
  if (obs::metricsActive()) {
    ServiceStats S = stats();
    updateMetrics(S, Occupancy);
    Metrics.RingOccupancyPctHist->observe(
        static_cast<uint64_t>(Occupancy * 100.0));
    Metrics.DrainTickTicks->observe(obs::now() - TickStart);
  }
  EFFSAN_OBS_SPAN(DrainTick, ::effective::obs::NoShard, Events, TickStart);

  return Events;
}

uint64_t Supervisor::tick() {
  std::unique_lock<std::mutex> L(TickLock);
  if (Stop)
    return 0;
  // A tick in flight may have missed this caller's writes; require one
  // more full tick in that case.
  uint64_t Target = CompletedTicks + (InTick ? 2 : 1);
  Poke = true;
  TickCV.notify_one();
  TickDoneCV.wait(L, [&] { return Stop || CompletedTicks >= Target; });
  return LastTickEvents;
}

void Supervisor::poke() {
  {
    std::lock_guard<std::mutex> Guard(TickLock);
    Poke = true;
  }
  TickCV.notify_one();
}

void Supervisor::setDrainInterval(uint64_t Micros) {
  {
    std::lock_guard<std::mutex> Guard(TickLock);
    IntervalMicros = Micros ? Micros : 2000;
  }
  // Re-arm the wait with the new period.
  TickCV.notify_one();
}

uint64_t Supervisor::drainInterval() {
  std::lock_guard<std::mutex> Guard(TickLock);
  return IntervalMicros;
}

//===----------------------------------------------------------------------===//
// Tenants and leases
//===----------------------------------------------------------------------===//

uint64_t Supervisor::checkSumOf(unsigned Shard) {
  CheckCounters::Snapshot S = Pool.shard(Shard).counters().snapshot();
  return S.TypeChecks + S.BoundsChecks + S.BoundsGets + S.BoundsNarrows;
}

TenantId Supervisor::openTenant(std::string_view Name,
                                const TenantQuota &Quota) {
  TenantId Id = Tenants.open(std::string(Name), Quota);
  if (Id == NoTenant)
    return NoTenant;
  // The check budget starts counting now: zero it against whatever the
  // claimed shard's counters already read.
  unsigned Shard = static_cast<unsigned>(Id & 0xffffffffu);
  Tenants.setCheckBaseline(Id, checkSumOf(Shard));
  return Id;
}

bool Supervisor::closeTenant(TenantId Id) {
  if (!Tenants.evict(Id, EvictReason::Explicit))
    return false;
  // Synchronous when possible: the forced tick performs the shard
  // reset immediately unless leases are still outstanding (then the
  // drain loop completes it once the last one returns).
  tick();
  return true;
}

Supervisor::Lease Supervisor::lease(TenantId Id) {
  unsigned Shard = static_cast<unsigned>(Id & 0xffffffffu);
  if (Id == NoTenant || Shard >= NumShards)
    return Lease();
  // Budget inputs are sampled outside the registry lock; the registry
  // does the gating atomically against its own state.
  uint64_t LiveBytes = Pool.heap().shardStats(Shard).BlockBytesInUse;
  uint64_t Checks = checkSumOf(Shard);
  unsigned ShardOut = 0;
  if (Tenants.checkout(Id, LiveBytes, Checks, ShardOut))
    return Lease(*this, Id, Pool.shard(ShardOut));
  // A refused lease may just have evicted the tenant; kick the drainer
  // so the shard reset does not wait for the next periodic tick.
  poke();
  return Lease();
}

Supervisor::Lease Supervisor::lease(TenantId Id,
                                    uint64_t &RetryAfterMicros) {
  RetryAfterMicros = 0;
  Lease L = lease(Id);
  if (L)
    return L;
  // Retrying is only worth suggesting while the handle still names the
  // occupied slot: an eviction's shard reset completes within about one
  // drain tick, and a quota refusal clears if the operator raises the
  // budget. A stale handle never becomes valid again — hint 0.
  unsigned Shard = static_cast<unsigned>(Id & 0xffffffffu);
  if (Id != NoTenant && Shard < NumShards &&
      Tenants.tenantOf(Shard) == Id)
    RetryAfterMicros = drainInterval();
  return L;
}

void Supervisor::releaseLease(TenantId Id) { Tenants.release(Id); }

bool Supervisor::setQuota(TenantId Id, const TenantQuota &Quota) {
  return Tenants.setQuota(Id, Quota);
}

bool Supervisor::getQuota(TenantId Id, TenantQuota &Out) const {
  return Tenants.getQuota(Id, Out);
}

bool Supervisor::tenantSnapshot(TenantId Id, TenantSnapshot &Out) {
  unsigned Shard = static_cast<unsigned>(Id & 0xffffffffu);
  if (Id == NoTenant || Shard >= NumShards)
    return false;
  uint64_t LiveBytes = Pool.heap().shardStats(Shard).BlockBytesInUse;
  uint64_t Checks = checkSumOf(Shard);
  return Tenants.snapshot(Id, LiveBytes, Checks, Out);
}

CheckPolicy Supervisor::tenantPolicy(TenantId Id) {
  unsigned Shard = static_cast<unsigned>(Id & 0xffffffffu);
  if (Id == NoTenant || Shard >= NumShards ||
      Tenants.tenantOf(Shard) != Id)
    return CheckPolicy::Off;
  return Pool.shard(Shard).policy();
}

void Supervisor::setSnapshotHook(void (*Hook)(const char *, void *),
                                 void *UserData, unsigned EveryTicks) {
  std::lock_guard<std::mutex> Guard(HookLock);
  SnapshotHook = Hook;
  SnapshotUserData = UserData;
  SnapshotEveryTicks = EveryTicks;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

ServiceStats Supervisor::stats() {
  TenantRegistry::Totals T = Tenants.totals();
  ServiceStats S;
  S.TenantsOpen = Tenants.occupied();
  S.TenantsOpenedTotal = T.Opened;
  S.TenantsEvicted = T.Evicted;
  S.TenantsClosed = T.Closed;
  S.LeasesGranted = T.LeasesGranted;
  S.LeasesRefused = T.LeasesRefused;
  S.DrainTicks = DrainTicks.load(std::memory_order_relaxed);
  S.DrainedEvents = DrainedEvents.load(std::memory_order_relaxed);
  S.RingOverflows = Pool.ringOverflows();
  S.PolicyDegrades = PolicyDegrades.load(std::memory_order_relaxed);
  S.PolicyRestores = PolicyRestores.load(std::memory_order_relaxed);
  S.IssuesFound = Pool.reporter().numIssues();
  S.SnapshotsEmitted = SnapshotsEmitted.load(std::memory_order_relaxed);
  S.SnapshotsSkipped = SnapshotsSkipped.load(std::memory_order_relaxed);
  S.RingFallbacks = Pool.ringFallbacks();
  S.RingDrops = Pool.ringDrops();
  S.DrainRestarts = DrainRestarts.load(std::memory_order_relaxed);
  S.WatchdogChecks = WatchdogChecks.load(std::memory_order_relaxed);
  S.Health = health();
  return S;
}

ServiceHealth Supervisor::health() {
  if (CriticalLatch.load(std::memory_order_relaxed) ||
      AbortFired.load(std::memory_order_relaxed))
    return ServiceHealth::Critical;
  if (DrainRestarts.load(std::memory_order_relaxed) > 0 ||
      DrainWedged.load(std::memory_order_relaxed) ||
      Pool.ringDrops() > 0)
    return ServiceHealth::Degraded;
  // Occupied shards steered below the base policy mean the governor is
  // actively shedding checks: degraded coverage, not a failure.
  for (unsigned Shard = 0; Shard < NumShards; ++Shard)
    if (Tenants.tenantOf(Shard) != NoTenant &&
        Pool.shard(Shard).policy() != BasePolicy)
      return ServiceHealth::Degraded;
  return ServiceHealth::Healthy;
}

uint64_t Supervisor::activitySignature() {
  auto Mix = [](uint64_t H, uint64_t V) {
    return H ^ (V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
  };
  ServiceStats S = stats();
  uint64_t H = 0xcbf29ce484222325ull;
  H = Mix(H, S.TenantsOpen);
  H = Mix(H, S.TenantsOpenedTotal);
  H = Mix(H, S.TenantsEvicted);
  H = Mix(H, S.TenantsClosed);
  H = Mix(H, S.LeasesGranted);
  H = Mix(H, S.LeasesRefused);
  H = Mix(H, S.DrainedEvents);
  H = Mix(H, S.RingOverflows);
  H = Mix(H, S.PolicyDegrades);
  H = Mix(H, S.PolicyRestores);
  H = Mix(H, S.IssuesFound);
  H = Mix(H, S.RingFallbacks);
  H = Mix(H, S.RingDrops);
  H = Mix(H, S.DrainRestarts);
  for (unsigned Shard = 0; Shard < NumShards; ++Shard)
    H = Mix(H, checkSumOf(Shard));
  lowfat::HeapStats HS = Pool.heap().stats();
  H = Mix(H, HS.NumAllocs);
  H = Mix(H, HS.NumFrees);
  H = Mix(H, HS.BlockBytesInUse);
  return H;
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

void Supervisor::initMetrics() {
  Metrics.TenantsOpenedTotal = &Registry.counter(
      "effsan_service_tenants_opened_total", "Tenant slots ever opened");
  Metrics.TenantsEvictedTotal = &Registry.counter(
      "effsan_service_tenants_evicted_total",
      "Tenant evictions, including explicit closes");
  Metrics.TenantsClosedTotal = &Registry.counter(
      "effsan_service_tenants_closed_total", "Tenant slots fully recycled");
  Metrics.LeasesGrantedTotal = &Registry.counter(
      "effsan_service_leases_granted_total", "Shard leases granted");
  Metrics.LeasesRefusedTotal = &Registry.counter(
      "effsan_service_leases_refused_total",
      "Shard leases refused at the quota gate");
  Metrics.DrainTicksTotal = &Registry.counter(
      "effsan_service_drain_ticks_total", "Drain-loop ticks completed");
  Metrics.DrainedEventsTotal = &Registry.counter(
      "effsan_service_drained_events_total",
      "Error events drained from the pool ring");
  Metrics.RingOverflowsTotal = &Registry.counter(
      "effsan_service_ring_overflows_total",
      "Error-ring pushes refused because the ring was full");
  Metrics.PolicyDegradesTotal = &Registry.counter(
      "effsan_service_policy_degrades_total", "Governor degrade steps");
  Metrics.PolicyRestoresTotal = &Registry.counter(
      "effsan_service_policy_restores_total", "Governor restore steps");
  Metrics.IssuesFoundTotal = &Registry.counter(
      "effsan_service_issues_found_total",
      "Distinct issues in the central reporter");
  Metrics.SnapshotsEmittedTotal = &Registry.counter(
      "effsan_service_snapshots_emitted_total", "Snapshot hook invocations");
  Metrics.SnapshotsSkippedTotal = &Registry.counter(
      "effsan_service_snapshots_skipped_total",
      "Snapshot cadences skipped by the dirty flag");
  Metrics.RingFallbacksTotal = &Registry.counter(
      "effsan_service_ring_fallbacks_total",
      "Overflowed error events delivered via the locked fallback");
  Metrics.RingDropsTotal = &Registry.counter(
      "effsan_service_ring_drops_total",
      "Overflowed error events dropped (opt-in accounted loss)");
  Metrics.DrainRestartsTotal = &Registry.counter(
      "effsan_service_drain_restarts_total",
      "Dead drain threads restarted by the watchdog");
  Metrics.WatchdogChecksTotal = &Registry.counter(
      "effsan_service_watchdog_checks_total",
      "Watchdog liveness checks performed");
  Metrics.TypeChecksTotal = &Registry.counter(
      "effsan_checks_total", "Dynamic checks executed", "kind=\"type\"");
  Metrics.BoundsChecksTotal = &Registry.counter(
      "effsan_checks_total", "Dynamic checks executed", "kind=\"bounds\"");
  Metrics.BoundsNarrowsTotal =
      &Registry.counter("effsan_checks_total", "Dynamic checks executed",
                        "kind=\"bounds_narrow\"");
  Metrics.BoundsGetsTotal = &Registry.counter(
      "effsan_checks_total", "Dynamic checks executed", "kind=\"bounds_get\"");
  Metrics.LegacyTypeChecksTotal =
      &Registry.counter("effsan_checks_total", "Dynamic checks executed",
                        "kind=\"legacy_type\"");
  Metrics.CacheHitsTotal = &Registry.counter(
      "effsan_check_cache_hits_total", "Type-check inline-cache hits");
  Metrics.CacheMissesTotal = &Registry.counter(
      "effsan_check_cache_misses_total", "Type-check inline-cache misses");
  Metrics.HeapAllocsTotal =
      &Registry.counter("effsan_heap_allocs_total", "Heap allocations");
  Metrics.HeapFreesTotal =
      &Registry.counter("effsan_heap_frees_total", "Heap frees");
  Metrics.MagazineHitsTotal = &Registry.counter(
      "effsan_heap_magazine_hits_total", "Allocations served from a TLS "
                                         "magazine");
  Metrics.MagazineRefillsTotal = &Registry.counter(
      "effsan_heap_magazine_refills_total", "TLS magazine refills");
  Metrics.StealsTotal = &Registry.counter("effsan_heap_steals_total",
                                          "Cross-shard refill steals");
  Metrics.TenantsOpen =
      &Registry.gauge("effsan_service_tenants_open", "Occupied tenant slots");
  Metrics.HealthState = &Registry.gauge(
      "effsan_service_health",
      "Service health state (0 healthy, 1 degraded, 2 critical)");
  Metrics.RingOccupancyPct = &Registry.gauge(
      "effsan_service_ring_occupancy_percent",
      "Error-ring occupancy at the last tick start (percent)");
  Metrics.BlockBytesInUse = &Registry.gauge(
      "effsan_heap_block_bytes_in_use", "Live block bytes across shards");
  Metrics.QuarantinedBytes = &Registry.gauge(
      "effsan_heap_quarantined_bytes", "Bytes parked in free quarantine");
  Metrics.DrainTickTicks = &Registry.histogram(
      "effsan_service_drain_tick_duration_ticks",
      "Drain tick wall duration (TSC ticks)");
  Metrics.RingOccupancyPctHist = &Registry.histogram(
      "effsan_service_ring_occupancy_pct",
      "Error-ring occupancy sampled at tick start (percent)");
  Metrics.ClassCarved.assign(lowfat::NumSizeClasses, nullptr);
}

void Supervisor::updateMetrics(const ServiceStats &S, double RingOccupancy) {
  Metrics.TenantsOpenedTotal->set(S.TenantsOpenedTotal);
  Metrics.TenantsEvictedTotal->set(S.TenantsEvicted);
  Metrics.TenantsClosedTotal->set(S.TenantsClosed);
  Metrics.LeasesGrantedTotal->set(S.LeasesGranted);
  Metrics.LeasesRefusedTotal->set(S.LeasesRefused);
  Metrics.DrainTicksTotal->set(S.DrainTicks);
  Metrics.DrainedEventsTotal->set(S.DrainedEvents);
  Metrics.RingOverflowsTotal->set(S.RingOverflows);
  Metrics.PolicyDegradesTotal->set(S.PolicyDegrades);
  Metrics.PolicyRestoresTotal->set(S.PolicyRestores);
  Metrics.IssuesFoundTotal->set(S.IssuesFound);
  Metrics.SnapshotsEmittedTotal->set(S.SnapshotsEmitted);
  Metrics.SnapshotsSkippedTotal->set(S.SnapshotsSkipped);
  Metrics.RingFallbacksTotal->set(S.RingFallbacks);
  Metrics.RingDropsTotal->set(S.RingDrops);
  Metrics.DrainRestartsTotal->set(S.DrainRestarts);
  Metrics.WatchdogChecksTotal->set(S.WatchdogChecks);
  Metrics.TenantsOpen->set(static_cast<int64_t>(S.TenantsOpen));
  Metrics.HealthState->set(static_cast<int64_t>(S.Health));
  Metrics.RingOccupancyPct->set(
      static_cast<int64_t>(RingOccupancy * 100.0));

  CheckCounters::Snapshot C = Pool.counters();
  Metrics.TypeChecksTotal->set(C.TypeChecks);
  Metrics.LegacyTypeChecksTotal->set(C.LegacyTypeChecks);
  Metrics.BoundsChecksTotal->set(C.BoundsChecks);
  Metrics.BoundsNarrowsTotal->set(C.BoundsNarrows);
  Metrics.BoundsGetsTotal->set(C.BoundsGets);
  Metrics.CacheHitsTotal->set(C.TypeCheckCacheHits);
  Metrics.CacheMissesTotal->set(C.TypeCheckCacheMisses);

  lowfat::LowFatHeap &Heap = Pool.heap().heap();
  lowfat::HeapStats HS = Heap.stats();
  Metrics.HeapAllocsTotal->set(HS.NumAllocs);
  Metrics.HeapFreesTotal->set(HS.NumFrees);
  Metrics.MagazineHitsTotal->set(HS.MagazineHits);
  Metrics.MagazineRefillsTotal->set(HS.MagazineRefills);
  Metrics.StealsTotal->set(HS.Steals);
  Metrics.BlockBytesInUse->set(static_cast<int64_t>(HS.BlockBytesInUse));
  Metrics.QuarantinedBytes->set(static_cast<int64_t>(HS.QuarantinedBytes));

  // Per-class occupancy: gauges materialize the first time a class
  // sees traffic, so an idle service renders no empty class series.
  for (unsigned I = 0; I < lowfat::NumSizeClasses; ++I) {
    uint64_t Carved = Heap.classCarvedBytes(I);
    if (!Carved && !Metrics.ClassCarved[I])
      continue;
    if (!Metrics.ClassCarved[I]) {
      char Label[48];
      std::snprintf(Label, sizeof(Label), "class=\"%u\"", I);
      Metrics.ClassCarved[I] = &Registry.gauge(
          "effsan_heap_class_carved_bytes",
          "Bytes carved from the class region (bump high-water)", Label);
    }
    Metrics.ClassCarved[I]->set(static_cast<int64_t>(Carved));
  }
}

std::string Supervisor::metricsText() {
  concurrent::ErrorRing &Ring = Pool.ring();
  double Occupancy = static_cast<double>(Ring.size()) /
                     static_cast<double>(Ring.capacity());
  updateMetrics(stats(), Occupancy);
  std::string Out;
  Registry.render(Out);
  obs::MetricsRegistry::global().render(Out);
  return Out;
}

static const char *policyName(CheckPolicy P) {
  switch (P) {
  case CheckPolicy::Full:
    return "full";
  case CheckPolicy::BoundsOnly:
    return "bounds";
  case CheckPolicy::TypeOnly:
    return "type";
  case CheckPolicy::CountOnly:
    return "count";
  case CheckPolicy::Off:
    return "off";
  }
  return "?";
}

static const char *statusName(TenantStatus S) {
  switch (S) {
  case TenantStatus::Closed:
    return "closed";
  case TenantStatus::Open:
    return "open";
  case TenantStatus::Evicted:
    return "evicted";
  }
  return "?";
}

static const char *reasonName(EvictReason R) {
  switch (R) {
  case EvictReason::None:
    return "none";
  case EvictReason::AllocBytes:
    return "alloc_bytes";
  case EvictReason::ErrorEvents:
    return "error_events";
  case EvictReason::Checks:
    return "checks";
  case EvictReason::Explicit:
    return "explicit";
  }
  return "?";
}

static void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

static void appendField(std::string &Out, const char *Key, uint64_t V,
                        bool Comma = true) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%" PRIu64, Comma ? "," : "",
                Key, V);
  Out += Buf;
}

std::string Supervisor::snapshotJson() {
  ServiceStats S = stats();
  std::string Out;
  Out.reserve(1024);
  Out += "{\"service\":{";
  {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "\"shards\":%u", NumShards);
    Out += Buf;
  }
  Out += ",\"policy\":\"";
  Out += policyName(BasePolicy);
  Out += '"';
  appendField(Out, "drain_interval_usec", drainInterval());
  appendField(Out, "tenants_open", S.TenantsOpen);
  appendField(Out, "tenants_opened_total", S.TenantsOpenedTotal);
  appendField(Out, "tenants_evicted", S.TenantsEvicted);
  appendField(Out, "tenants_closed", S.TenantsClosed);
  appendField(Out, "leases_granted", S.LeasesGranted);
  appendField(Out, "leases_refused", S.LeasesRefused);
  appendField(Out, "drain_ticks", S.DrainTicks);
  appendField(Out, "drained_events", S.DrainedEvents);
  appendField(Out, "ring_overflows", S.RingOverflows);
  appendField(Out, "policy_degrades", S.PolicyDegrades);
  appendField(Out, "policy_restores", S.PolicyRestores);
  appendField(Out, "issues_found", S.IssuesFound);
  appendField(Out, "snapshots_emitted", S.SnapshotsEmitted);
  appendField(Out, "snapshots_skipped", S.SnapshotsSkipped);
  appendField(Out, "ring_fallbacks", S.RingFallbacks);
  appendField(Out, "ring_drops", S.RingDrops);
  appendField(Out, "drain_restarts", S.DrainRestarts);
  appendField(Out, "watchdog_checks", S.WatchdogChecks);
  Out += ",\"health\":\"";
  Out += healthName(S.Health);
  Out += '"';
  Out += "},\"tenants\":[";
  bool First = true;
  for (TenantId Id : Tenants.occupiedTenants()) {
    TenantSnapshot Snap;
    if (!tenantSnapshot(Id, Snap))
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":";
    appendJsonString(Out, Snap.Name);
    appendField(Out, "shard", Snap.Shard);
    Out += ",\"status\":\"";
    Out += statusName(Snap.Status);
    Out += "\",\"policy\":\"";
    Out += policyName(Pool.shard(Snap.Shard).policy());
    Out += "\",\"evict_reason\":\"";
    Out += reasonName(Snap.Reason);
    Out += '"';
    appendField(Out, "checks", Snap.Checks);
    appendField(Out, "alloc_bytes", Snap.AllocBytes);
    appendField(Out, "error_events", Snap.ErrorEvents);
    appendField(Out, "leases_granted", Snap.LeasesGranted);
    appendField(Out, "leases_refused", Snap.LeasesRefused);
    appendField(Out, "leases_outstanding", Snap.LeasesOutstanding);
    Out += '}';
  }
  Out += "]}";
  return Out;
}
