//===- service/LoadGovernor.cpp - Adaptive per-shard policy control -------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/LoadGovernor.h"

#include <algorithm>
#include <cassert>

using namespace effective;
using namespace effective::service;

//===----------------------------------------------------------------------===//
// The degradation ladder
//===----------------------------------------------------------------------===//

/// The ladder below each base policy. TypeOnly degrades through
/// CountOnly directly (it has no bounds to keep); CountOnly and Off
/// have nothing left to shed.
unsigned effective::service::maxDegradeLevel(CheckPolicy Base) {
  switch (Base) {
  case CheckPolicy::Full:
    return 2; // Full -> BoundsOnly -> CountOnly
  case CheckPolicy::BoundsOnly:
  case CheckPolicy::TypeOnly:
    return 1; // -> CountOnly
  case CheckPolicy::CountOnly:
  case CheckPolicy::Off:
    return 0;
  }
  return 0;
}

CheckPolicy effective::service::policyAtLevel(CheckPolicy Base,
                                              unsigned Level) {
  Level = std::min(Level, maxDegradeLevel(Base));
  if (Level == 0)
    return Base;
  if (Base == CheckPolicy::Full && Level == 1)
    return CheckPolicy::BoundsOnly;
  return CheckPolicy::CountOnly;
}

//===----------------------------------------------------------------------===//
// The per-shard state machine
//===----------------------------------------------------------------------===//

LoadGovernor::LoadGovernor(const GovernorOptions &Options,
                           unsigned NumShards, CheckPolicy BasePolicy)
    : Opts(Options), Base(BasePolicy), States(NumShards) {}

bool LoadGovernor::pressured(const Smoothed &S) const {
  return S.Checks >= static_cast<double>(Opts.CheckRateHigh) ||
         S.Allocs >= static_cast<double>(Opts.AllocRateHigh) ||
         S.RingOccupancy >= Opts.RingOccupancyHigh;
}

bool LoadGovernor::calm(const Smoothed &S) const {
  double F = Opts.RestoreFraction;
  return S.Checks < static_cast<double>(Opts.CheckRateHigh) * F &&
         S.Allocs < static_cast<double>(Opts.AllocRateHigh) * F &&
         S.RingOccupancy < Opts.RingOccupancyHigh * F;
}

LoadGovernor::Smoothed LoadGovernor::smooth(ShardState &St,
                                            const ShardSample &Sample) const {
  Smoothed Raw{static_cast<double>(Sample.Checks),
               static_cast<double>(Sample.Allocs), Sample.RingOccupancy};
  if (Opts.EwmaTicks <= 1)
    return Raw; // Smoothing off: thresholds see the per-tick deltas.
  if (!St.Seeded) {
    St.Avg = Raw;
    St.Seeded = true;
    return St.Avg;
  }
  double Alpha = 2.0 / (static_cast<double>(Opts.EwmaTicks) + 1.0);
  St.Avg.Checks += Alpha * (Raw.Checks - St.Avg.Checks);
  St.Avg.Allocs += Alpha * (Raw.Allocs - St.Avg.Allocs);
  St.Avg.RingOccupancy += Alpha * (Raw.RingOccupancy - St.Avg.RingOccupancy);
  return St.Avg;
}

LoadGovernor::Decision LoadGovernor::observe(unsigned Shard,
                                             const ShardSample &RawSample) {
  assert(Shard < States.size() && "shard index out of range");
  ShardState &St = States[Shard];
  Decision D{St.Level, false, false};

  // The state machine below is unchanged from the per-tick-delta
  // version — hysteresis streaks, dead-band hold, one step per window —
  // it just consumes the smoothed signals.
  Smoothed Sample = smooth(St, RawSample);

  if (pressured(Sample)) {
    St.CalmTicks = 0;
    ++St.HotTicks;
    if (St.HotTicks >= Opts.DegradeTicks &&
        St.Level < maxDegradeLevel(Base)) {
      ++St.Level;
      St.HotTicks = 0; // One step per window: re-arm the counter.
      D.Degraded = true;
    }
  } else if (calm(Sample)) {
    St.HotTicks = 0;
    ++St.CalmTicks;
    if (St.CalmTicks >= Opts.RestoreTicks && St.Level > 0) {
      --St.Level;
      St.CalmTicks = 0;
      D.Restored = true;
    }
  } else {
    // The dead band between calm and pressured: hold the level and
    // both counters — neither a degrade nor a restore gets closer.
    St.HotTicks = 0;
    St.CalmTicks = 0;
  }

  D.Level = St.Level;
  return D;
}

void LoadGovernor::resetShard(unsigned Shard) {
  assert(Shard < States.size() && "shard index out of range");
  States[Shard] = ShardState();
}
