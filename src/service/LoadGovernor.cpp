//===- service/LoadGovernor.cpp - Adaptive per-shard policy control -------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/LoadGovernor.h"

#include <algorithm>
#include <cassert>

using namespace effective;
using namespace effective::service;

//===----------------------------------------------------------------------===//
// The degradation ladder
//===----------------------------------------------------------------------===//

/// The ladder below each base policy. TypeOnly degrades through
/// CountOnly directly (it has no bounds to keep); CountOnly and Off
/// have nothing left to shed.
unsigned effective::service::maxDegradeLevel(CheckPolicy Base) {
  switch (Base) {
  case CheckPolicy::Full:
    return 2; // Full -> BoundsOnly -> CountOnly
  case CheckPolicy::BoundsOnly:
  case CheckPolicy::TypeOnly:
    return 1; // -> CountOnly
  case CheckPolicy::CountOnly:
  case CheckPolicy::Off:
    return 0;
  }
  return 0;
}

CheckPolicy effective::service::policyAtLevel(CheckPolicy Base,
                                              unsigned Level) {
  Level = std::min(Level, maxDegradeLevel(Base));
  if (Level == 0)
    return Base;
  if (Base == CheckPolicy::Full && Level == 1)
    return CheckPolicy::BoundsOnly;
  return CheckPolicy::CountOnly;
}

//===----------------------------------------------------------------------===//
// The per-shard state machine
//===----------------------------------------------------------------------===//

LoadGovernor::LoadGovernor(const GovernorOptions &Options,
                           unsigned NumShards, CheckPolicy BasePolicy)
    : Opts(Options), Base(BasePolicy), States(NumShards) {}

bool LoadGovernor::pressured(const ShardSample &S) const {
  return S.Checks >= Opts.CheckRateHigh ||
         S.Allocs >= Opts.AllocRateHigh ||
         S.RingOccupancy >= Opts.RingOccupancyHigh;
}

bool LoadGovernor::calm(const ShardSample &S) const {
  double F = Opts.RestoreFraction;
  return static_cast<double>(S.Checks) <
             static_cast<double>(Opts.CheckRateHigh) * F &&
         static_cast<double>(S.Allocs) <
             static_cast<double>(Opts.AllocRateHigh) * F &&
         S.RingOccupancy < Opts.RingOccupancyHigh * F;
}

LoadGovernor::Decision LoadGovernor::observe(unsigned Shard,
                                             const ShardSample &Sample) {
  assert(Shard < States.size() && "shard index out of range");
  ShardState &St = States[Shard];
  Decision D{St.Level, false, false};

  if (pressured(Sample)) {
    St.CalmTicks = 0;
    ++St.HotTicks;
    if (St.HotTicks >= Opts.DegradeTicks &&
        St.Level < maxDegradeLevel(Base)) {
      ++St.Level;
      St.HotTicks = 0; // One step per window: re-arm the counter.
      D.Degraded = true;
    }
  } else if (calm(Sample)) {
    St.HotTicks = 0;
    ++St.CalmTicks;
    if (St.CalmTicks >= Opts.RestoreTicks && St.Level > 0) {
      --St.Level;
      St.CalmTicks = 0;
      D.Restored = true;
    }
  } else {
    // The dead band between calm and pressured: hold the level and
    // both counters — neither a degrade nor a restore gets closer.
    St.HotTicks = 0;
    St.CalmTicks = 0;
  }

  D.Level = St.Level;
  return D;
}

void LoadGovernor::resetShard(unsigned Shard) {
  assert(Shard < States.size() && "shard index out of range");
  States[Shard] = ShardState();
}
