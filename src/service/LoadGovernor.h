//===- service/LoadGovernor.h - Adaptive per-shard policy control -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer's load-shedding brain: pure decision logic that
/// consumes one pressure sample per shard per drain tick and walks the
/// shard's CheckPolicy down the degradation ladder
///
///   Full -> BoundsOnly -> CountOnly
///
/// under sustained pressure, and back up when load subsides. The paper
/// family's cost ordering makes each step a real shed: BoundsOnly
/// drops type checking and narrowing (Section 6.2's EffectiveSan-
/// bounds), CountOnly drops every probe and keeps only counters, so a
/// degraded tenant keeps its throughput while the service keeps its
/// telemetry.
///
/// The governor itself owns no threads and reads no shared state — the
/// Supervisor's drain loop samples the pool (check throughput and
/// allocation rate deltas, error-ring occupancy) and feeds it one
/// ShardSample per shard per tick. Hysteresis is consecutive-tick
/// counting: a shard must be pressured for DegradeTicks ticks in a row
/// before one downgrade step, and calm for RestoreTicks ticks in a row
/// before one upgrade step, so a bursty tenant does not flap between
/// dispatch tables.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SERVICE_LOADGOVERNOR_H
#define EFFECTIVE_SERVICE_LOADGOVERNOR_H

#include "api/CheckPolicy.h"

#include <cstdint>
#include <vector>

namespace effective {
namespace service {

/// Tuning knobs for the governor. A tick is "pressured" when ANY
/// signal sits at or above its high-water mark, and "calm" when EVERY
/// signal sits below RestoreFraction of that mark — the gap between
/// the two thresholds is the second half of the hysteresis (the first
/// being the consecutive-tick counts).
struct GovernorOptions {
  /// Checks executed on the shard per tick that count as pressure.
  uint64_t CheckRateHigh = 2'000'000;
  /// Heap allocations on the shard per tick that count as pressure.
  uint64_t AllocRateHigh = 200'000;
  /// Pool error-ring occupancy (fraction of capacity, sampled at tick
  /// start) that counts as pressure. The ring is pool-wide, so a
  /// brimming ring pressures every shard — the drainer is the shared
  /// resource the tenants are overrunning.
  double RingOccupancyHigh = 0.5;
  /// Calm means every signal < (its high mark * RestoreFraction).
  double RestoreFraction = 0.5;
  /// Consecutive pressured ticks before one degrade step.
  unsigned DegradeTicks = 2;
  /// Consecutive calm ticks before one restore step.
  unsigned RestoreTicks = 4;
  /// Effective window (in ticks) of the EWMA applied to each pressure
  /// signal before the thresholds are evaluated: alpha = 2/(N+1), the
  /// usual span convention, seeded with the first sample. 0 or 1
  /// disables smoothing (raw per-tick deltas — the pre-EWMA
  /// behaviour). Smoothing makes short drain intervals less twitchy: a
  /// single-tick spike in an otherwise calm stream no longer resets
  /// the restore streak, and an alternating hot/cold load averages to
  /// its mean instead of flapping the ladder.
  unsigned EwmaTicks = 0;
};

/// One shard's pressure sample for one drain tick (deltas since the
/// previous tick, except the occupancy which is instantaneous).
struct ShardSample {
  uint64_t Checks = 0;
  uint64_t Allocs = 0;
  double RingOccupancy = 0.0;
};

/// The degradation ladder. Level 0 is the service's base policy; each
/// deeper level sheds more check cost. Levels past the ladder's end
/// clamp to CountOnly — the governor never turns checking fully Off
/// (the service's contract is "cheaper checks under load", not "no
/// sanitizer").
unsigned maxDegradeLevel(CheckPolicy Base);
CheckPolicy policyAtLevel(CheckPolicy Base, unsigned Level);

/// Per-shard degradation state machine. Not thread-safe: driven only
/// from the Supervisor's drain thread.
class LoadGovernor {
public:
  LoadGovernor(const GovernorOptions &Options, unsigned NumShards,
               CheckPolicy BasePolicy);

  struct Decision {
    unsigned Level;  ///< Degradation level after this tick.
    bool Degraded;   ///< This tick stepped the shard down.
    bool Restored;   ///< This tick stepped the shard up.
  };

  /// Feeds shard \p Shard's sample for the current tick and advances
  /// its state machine by at most one ladder step.
  Decision observe(unsigned Shard, const ShardSample &Sample);

  unsigned level(unsigned Shard) const { return States[Shard].Level; }
  CheckPolicy policyOf(unsigned Shard) const {
    return policyAtLevel(Base, States[Shard].Level);
  }
  CheckPolicy basePolicy() const { return Base; }

  /// Forgets a shard's pressure history and drops it back to the base
  /// policy (tenant eviction / close: the next tenant starts Full).
  void resetShard(unsigned Shard);

  const GovernorOptions &options() const { return Opts; }

private:
  /// A shard's signals after EWMA smoothing (== the raw sample when
  /// EwmaTicks <= 1).
  struct Smoothed {
    double Checks = 0.0;
    double Allocs = 0.0;
    double RingOccupancy = 0.0;
  };

  bool pressured(const Smoothed &S) const;
  bool calm(const Smoothed &S) const;

  struct ShardState {
    unsigned Level = 0;
    unsigned HotTicks = 0;
    unsigned CalmTicks = 0;
    /// EWMA accumulators; seeded from the first observed sample so a
    /// fresh shard does not "warm up" from zero (which would read as
    /// spuriously calm under load).
    Smoothed Avg;
    bool Seeded = false;
  };

  /// Folds \p Sample into \p St's EWMA and returns the smoothed
  /// signals the thresholds should see this tick.
  Smoothed smooth(ShardState &St, const ShardSample &Sample) const;

  GovernorOptions Opts;
  CheckPolicy Base;
  std::vector<ShardState> States;
};

} // namespace service
} // namespace effective

#endif // EFFECTIVE_SERVICE_LOADGOVERNOR_H
