//===- service/TenantRegistry.cpp - Tenant slots, quotas, accounting ------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/TenantRegistry.h"

#include <utility>

using namespace effective;
using namespace effective::service;

TenantRegistry::TenantRegistry(unsigned NumShards) : Slots(NumShards) {}

TenantRegistry::Slot *TenantRegistry::resolve(TenantId Id,
                                              unsigned *IndexOut) {
  return const_cast<Slot *>(
      static_cast<const TenantRegistry *>(this)->resolve(Id, IndexOut));
}

const TenantRegistry::Slot *
TenantRegistry::resolve(TenantId Id, unsigned *IndexOut) const {
  if (Id == NoTenant)
    return nullptr;
  unsigned Index = static_cast<unsigned>(Id & 0xffffffffu);
  uint32_t Generation = static_cast<uint32_t>(Id >> 32);
  if (Index >= Slots.size())
    return nullptr;
  const Slot &S = Slots[Index];
  if (S.Generation != Generation || S.Status == TenantStatus::Closed)
    return nullptr;
  if (IndexOut)
    *IndexOut = Index;
  return &S;
}

TenantRegistry::Totals TenantRegistry::totals() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Counts;
}

TenantId TenantRegistry::open(std::string Name, const TenantQuota &Quota) {
  std::lock_guard<std::mutex> Guard(Lock);
  for (unsigned I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (S.Status != TenantStatus::Closed)
      continue;
    // Generation already advanced when the previous occupant's slot
    // was freed; claim as-is.
    S.Status = TenantStatus::Open;
    S.Reason = EvictReason::None;
    S.Name = std::move(Name);
    S.Quota = Quota;
    S.CheckBaseline = 0;
    S.ErrorEvents = 0;
    S.LeasesGranted = 0;
    S.LeasesRefused = 0;
    S.LeasesOutstanding = 0;
    ++Counts.Opened;
    return idOf(I, S);
  }
  return NoTenant;
}

bool TenantRegistry::setCheckBaseline(TenantId Id, uint64_t Baseline) {
  std::lock_guard<std::mutex> Guard(Lock);
  Slot *S = resolve(Id);
  if (!S)
    return false;
  S->CheckBaseline = Baseline;
  return true;
}

bool TenantRegistry::evict(TenantId Id, EvictReason Reason) {
  std::lock_guard<std::mutex> Guard(Lock);
  Slot *S = resolve(Id);
  if (!S)
    return false;
  if (S->Status == TenantStatus::Open) {
    S->Status = TenantStatus::Evicted;
    S->Reason = Reason;
    ++Counts.Evicted;
  }
  return true;
}

bool TenantRegistry::checkout(TenantId Id, uint64_t LiveAllocBytes,
                              uint64_t CheckSum, unsigned &ShardOut) {
  std::lock_guard<std::mutex> Guard(Lock);
  unsigned Index = 0;
  Slot *S = resolve(Id, &Index);
  if (!S)
    return false;
  if (S->Status != TenantStatus::Open) {
    ++S->LeasesRefused;
    ++Counts.LeasesRefused;
    return false;
  }
  // Budget gates, in footprint -> errors -> work order. The budgets
  // meter what the tenant already consumed; the lease that would push
  // it over is the one refused.
  EvictReason Tripped = EvictReason::None;
  if (S->Quota.MaxAllocBytes && LiveAllocBytes > S->Quota.MaxAllocBytes)
    Tripped = EvictReason::AllocBytes;
  else if (S->Quota.MaxErrorEvents &&
           S->ErrorEvents > S->Quota.MaxErrorEvents)
    Tripped = EvictReason::ErrorEvents;
  else if (S->Quota.MaxChecks && CheckSum > S->CheckBaseline &&
           CheckSum - S->CheckBaseline > S->Quota.MaxChecks)
    Tripped = EvictReason::Checks;
  if (Tripped != EvictReason::None) {
    S->Status = TenantStatus::Evicted;
    S->Reason = Tripped;
    ++Counts.Evicted;
    ++S->LeasesRefused;
    ++Counts.LeasesRefused;
    return false;
  }
  ++S->LeasesGranted;
  ++Counts.LeasesGranted;
  ++S->LeasesOutstanding;
  ShardOut = Index;
  return true;
}

void TenantRegistry::release(TenantId Id) {
  std::lock_guard<std::mutex> Guard(Lock);
  Slot *S = resolve(Id);
  if (S && S->LeasesOutstanding > 0)
    --S->LeasesOutstanding;
}

uint64_t TenantRegistry::noteErrorEvent(unsigned Shard) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Shard >= Slots.size())
    return 0;
  Slot &S = Slots[Shard];
  if (S.Status == TenantStatus::Closed)
    return 0;
  return ++S.ErrorEvents;
}

std::vector<unsigned> TenantRegistry::shardsAwaitingReset() {
  std::lock_guard<std::mutex> Guard(Lock);
  std::vector<unsigned> Due;
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (Slots[I].Status == TenantStatus::Evicted &&
        Slots[I].LeasesOutstanding == 0)
      Due.push_back(I);
  return Due;
}

void TenantRegistry::finishReset(unsigned Shard) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Shard >= Slots.size())
    return;
  Slot &S = Slots[Shard];
  if (S.Status != TenantStatus::Evicted)
    return;
  S.Status = TenantStatus::Closed;
  S.Name.clear();
  // Stale handles must miss from here on.
  ++S.Generation;
  ++Counts.Closed;
}

bool TenantRegistry::setQuota(TenantId Id, const TenantQuota &Quota) {
  std::lock_guard<std::mutex> Guard(Lock);
  Slot *S = resolve(Id);
  if (!S)
    return false;
  S->Quota = Quota;
  return true;
}

bool TenantRegistry::getQuota(TenantId Id, TenantQuota &Out) const {
  std::lock_guard<std::mutex> Guard(Lock);
  const Slot *S = resolve(Id);
  if (!S)
    return false;
  Out = S->Quota;
  return true;
}

bool TenantRegistry::snapshot(TenantId Id, uint64_t LiveAllocBytes,
                              uint64_t CheckSum,
                              TenantSnapshot &Out) const {
  std::lock_guard<std::mutex> Guard(Lock);
  unsigned Index = 0;
  const Slot *S = resolve(Id, &Index);
  if (!S)
    return false;
  Out.Status = S->Status;
  Out.Shard = Index;
  Out.Quota = S->Quota;
  Out.Reason = S->Reason;
  // Saturating: the drain thread may already have reset the shard's
  // counters between this tenant's eviction and its slot being freed.
  Out.Checks = CheckSum > S->CheckBaseline ? CheckSum - S->CheckBaseline : 0;
  Out.AllocBytes = LiveAllocBytes;
  Out.ErrorEvents = S->ErrorEvents;
  Out.LeasesGranted = S->LeasesGranted;
  Out.LeasesRefused = S->LeasesRefused;
  Out.LeasesOutstanding = S->LeasesOutstanding;
  Out.Name = S->Name;
  return true;
}

TenantId TenantRegistry::tenantOf(unsigned Shard) const {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Shard >= Slots.size())
    return NoTenant;
  const Slot &S = Slots[Shard];
  if (S.Status == TenantStatus::Closed)
    return NoTenant;
  return idOf(Shard, S);
}

unsigned TenantRegistry::occupied() const {
  std::lock_guard<std::mutex> Guard(Lock);
  unsigned N = 0;
  for (const Slot &S : Slots)
    if (S.Status != TenantStatus::Closed)
      ++N;
  return N;
}

std::vector<TenantId> TenantRegistry::occupiedTenants() const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::vector<TenantId> Ids;
  for (unsigned I = 0; I < Slots.size(); ++I)
    if (Slots[I].Status != TenantStatus::Closed)
      Ids.push_back(idOf(I, Slots[I]));
  return Ids;
}
