//===- service/TenantRegistry.h - Tenant slots, quotas, accounting -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tenant bookkeeping for the service layer. A tenant is a metered
/// client of the Supervisor, bound 1:1 to one SessionPool shard while
/// open — the shard's arena slice, check counters and degradation
/// state ARE the tenant's, which is what makes eviction a plain
/// resetShard() and per-tenant accounting a per-shard snapshot delta.
///
/// Lifecycle:
///
///   open     -> a free shard slot is claimed; baselines are recorded
///   lease    -> quota gate; refused once a budget is exhausted
///   evict    -> over-quota (or explicit): no new leases; once the
///               last outstanding lease returns, the Supervisor's
///               drain tick resets the shard and frees the slot
///   close    -> cooperative evict with the same reset-then-free path
///
/// The registry is the cold path (open/close/evict/quota are per
/// request or rarer, never per check), so one mutex guards it; the
/// lease gate takes that mutex once per checkout.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SERVICE_TENANTREGISTRY_H
#define EFFECTIVE_SERVICE_TENANTREGISTRY_H

#include "core/Runtime.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace effective {
namespace service {

/// Tenant handle: slot index + generation, so a handle kept past
/// close/evict can never alias the slot's next occupant.
using TenantId = uint64_t;
constexpr TenantId NoTenant = ~0ull;

/// Per-tenant budgets; 0 = unlimited. All are cumulative since open
/// except MaxAllocBytes, which meters the tenant's *live* footprint.
struct TenantQuota {
  uint64_t MaxAllocBytes = 0;
  uint64_t MaxErrorEvents = 0;
  uint64_t MaxChecks = 0;
};

enum class TenantStatus : uint8_t {
  Closed,   ///< Slot free (or handle stale).
  Open,     ///< Serving leases.
  Evicted,  ///< Over-quota or closing; refusing leases, reset pending.
};

/// Why a tenant was evicted (Evicted/Closed slots only).
enum class EvictReason : uint8_t {
  None,
  AllocBytes,
  ErrorEvents,
  Checks,
  Explicit,
};

/// A point-in-time view of one tenant's accounting (the budget inputs
/// plus lease traffic), taken under the registry lock.
struct TenantSnapshot {
  TenantStatus Status = TenantStatus::Closed;
  unsigned Shard = 0;
  TenantQuota Quota;
  EvictReason Reason = EvictReason::None;
  uint64_t Checks = 0;        ///< Cumulative since open (baseline-relative).
  uint64_t AllocBytes = 0;    ///< Live block bytes on the shard.
  uint64_t ErrorEvents = 0;   ///< Drainer-attributed error events.
  uint64_t LeasesGranted = 0;
  uint64_t LeasesRefused = 0;
  uint64_t LeasesOutstanding = 0;
  std::string Name;
};

/// The slot table. Thread-safe; every method takes the registry mutex.
/// Shard <-> slot is identity (slot I meters shard I).
class TenantRegistry {
public:
  explicit TenantRegistry(unsigned NumShards);

  unsigned numSlots() const { return static_cast<unsigned>(Slots.size()); }

  /// Cumulative registry traffic (ServiceStats inputs).
  struct Totals {
    uint64_t Opened = 0;
    uint64_t Evicted = 0; ///< Quota trips + explicit closes.
    uint64_t Closed = 0;  ///< Slots fully recycled.
    uint64_t LeasesGranted = 0;
    uint64_t LeasesRefused = 0;
  };
  Totals totals() const;

  /// Claims a free slot for \p Name with \p Quota. Returns NoTenant
  /// when every shard is occupied.
  TenantId open(std::string Name, const TenantQuota &Quota);

  /// Records the shard's check-counter sum at open time (the zero
  /// point of the tenant's check budget). The Supervisor calls this
  /// right after open(), once it knows which shard was claimed.
  bool setCheckBaseline(TenantId Id, uint64_t Baseline);

  /// Marks the tenant evicted (no new leases). The slot is freed later
  /// by finishReset() once the drain thread has reset the shard.
  /// Returns false for a stale/closed handle.
  bool evict(TenantId Id, EvictReason Reason);

  /// The lease gate: checks the handle, status, and every budget
  /// against the live inputs. On success increments the outstanding-
  /// lease count and returns the shard index; on refusal returns false
  /// and (if a budget tripped) marks the tenant evicted with the
  /// matching reason. \p LiveAllocBytes and \p CheckSum are the
  /// caller-sampled shard stats (the registry stays heap-agnostic).
  bool checkout(TenantId Id, uint64_t LiveAllocBytes, uint64_t CheckSum,
                unsigned &ShardOut);

  /// Returns a lease taken with checkout().
  void release(TenantId Id);

  /// Credits one drainer-attributed error event to the tenant bound to
  /// \p Shard (if any). Returns the tenant's cumulative event count,
  /// or 0 when the shard is unbound.
  uint64_t noteErrorEvent(unsigned Shard);

  /// Slots in Evicted state with no outstanding leases — the drain
  /// thread resets these shards and then calls finishReset().
  std::vector<unsigned> shardsAwaitingReset();

  /// Completes an eviction after the shard reset: frees the slot.
  void finishReset(unsigned Shard);

  bool setQuota(TenantId Id, const TenantQuota &Quota);
  bool getQuota(TenantId Id, TenantQuota &Out) const;

  /// Live accounting for one tenant. \p LiveAllocBytes / \p CheckSum
  /// as in checkout(). Returns false for a stale handle.
  bool snapshot(TenantId Id, uint64_t LiveAllocBytes, uint64_t CheckSum,
                TenantSnapshot &Out) const;

  /// The tenant currently bound to \p Shard (NoTenant when free).
  TenantId tenantOf(unsigned Shard) const;

  /// Open + evicted (still occupying a shard) tenant count.
  unsigned occupied() const;

  /// Handles of every occupied slot, in shard order (telemetry).
  std::vector<TenantId> occupiedTenants() const;

private:
  struct Slot {
    TenantStatus Status = TenantStatus::Closed;
    EvictReason Reason = EvictReason::None;
    uint32_t Generation = 0;
    std::string Name;
    TenantQuota Quota;
    uint64_t CheckBaseline = 0;
    uint64_t ErrorEvents = 0;
    uint64_t LeasesGranted = 0;
    uint64_t LeasesRefused = 0;
    uint64_t LeasesOutstanding = 0;
  };

  TenantId idOf(unsigned Index, const Slot &S) const {
    return (static_cast<uint64_t>(S.Generation) << 32) | Index;
  }
  /// Resolves a handle to its slot; null when stale or out of range.
  Slot *resolve(TenantId Id, unsigned *IndexOut = nullptr);
  const Slot *resolve(TenantId Id, unsigned *IndexOut = nullptr) const;

  mutable std::mutex Lock;
  std::vector<Slot> Slots;
  Totals Counts;
};

} // namespace service
} // namespace effective

#endif // EFFECTIVE_SERVICE_TENANTREGISTRY_H
