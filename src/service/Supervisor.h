//===- service/Supervisor.h - Multi-tenant sanitizer supervisor -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer's front door: a Supervisor owns a SessionPool and
/// turns it into a long-lived multi-tenant sanitizer service.
///
///   * Background drain — a dedicated thread is the pool ring's single
///     consumer. It wakes every DrainIntervalMicros (or on a poke),
///     pops each queued error event, attributes it to the tenant whose
///     shard slice the erring pointer lives in, forwards it to the
///     central reporter, and fires the pool-wide AbortAfter threshold.
///     Mutator threads never drain; embedders never call drain() at
///     all.
///
///   * Tenants — TenantRegistry slots bound 1:1 to pool shards. Leases
///     (RAII shard checkouts) pass the quota gate; an exhausted budget
///     refuses the lease and marks the tenant evicted, and the drain
///     thread resets the shard once the last lease returns.
///
///   * Self-healing — a watchdog thread monitors the drain thread
///     through a heartbeat generation stamp. A drain thread that died
///     (crash, induced drain-stall fault) is detected, joined, and
///     restarted — bounded by a restart budget whose exhaustion
///     escalates to the snapshot hook and latches Critical health. The
///     service-wide ServiceHealth {Healthy, Degraded, Critical} state
///     machine is driven by fault counters, restart history, and
///     governor depth.
///
///   * Adaptive degradation — each tick the drain thread samples every
///     shard's pressure (check-counter delta, allocation delta from
///     the heap stats, ring occupancy) and lets the LoadGovernor walk
///     the shard session's CheckPolicy down Full -> BoundsOnly ->
///     CountOnly and back, with hysteresis. A policy change is one
///     atomic dispatch-table swap (Sanitizer::setPolicy) — mutators
///     racing the change simply run one table or the other.
///
///   * Telemetry — stats() aggregates service-wide counters; a
///     snapshot hook receives a JSON document every N ticks.
///
/// Thread-safety: every public method is safe from any thread.
/// Destroying the Supervisor stops the drain thread, performs a final
/// drain, and tears down the pool; leases must not outlive it.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SERVICE_SUPERVISOR_H
#define EFFECTIVE_SERVICE_SUPERVISOR_H

#include "concurrent/SessionPool.h"
#include "obs/Metrics.h"
#include "service/LoadGovernor.h"
#include "service/TenantRegistry.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace effective {
namespace service {

/// Construction options for a Supervisor.
struct ServiceOptions {
  /// Pool sizing and base behaviour (see concurrent::PoolOptions).
  unsigned Shards = 0;
  CheckPolicy Policy = CheckPolicy::Full;
  ReporterOptions Reporter;
  lowfat::HeapOptions Heap;
  size_t ErrorRingCapacity = 0;
  size_t SiteCacheEntries = 1024;

  /// Drain period. The drain thread also wakes immediately on poke
  /// (tick()) and at shutdown.
  uint64_t DrainIntervalMicros = 2000;

  /// Pool-wide error-event budget, enforced by the *drainer* (closing
  /// the loop the per-shard reporters cannot: a shard only sees its
  /// own events). 0 = unlimited. When the cumulative drained event
  /// count crosses the threshold, AbortHandler is invoked (or, when
  /// null, the process aborts — the paper runtime's abort-on-error
  /// contract, batched).
  uint64_t AbortAfter = 0;
  void (*AbortHandler)(uint64_t DrainedEvents, void *UserData) = nullptr;
  void *AbortUserData = nullptr;

  /// Adaptive degradation (on by default; off pins every shard to
  /// Policy).
  bool EnableGovernor = true;
  GovernorOptions Governor;

  /// JSON snapshot hook: invoked from the drain thread every
  /// SnapshotEveryTicks completed ticks (0 = never) with a document
  /// describing the service and every occupied tenant slot
  /// (docs/SERVICE.md#telemetry-schema).
  unsigned SnapshotEveryTicks = 0;
  void (*SnapshotHook)(const char *Json, void *UserData) = nullptr;
  void *SnapshotUserData = nullptr;

  /// Full-ring policy for the pool's error ring (see PoolOptions).
  unsigned RingRetryAttempts = 3;
  bool DropOnRingFull = false;

  /// Watchdog over the drain thread (on by default). The watchdog
  /// detects a dead drain thread via its heartbeat generation stamp
  /// and liveness flag, restarts it up to MaxDrainRestarts times, and
  /// drives the ServiceHealth state machine.
  bool EnableWatchdog = true;
  /// Watchdog sampling period; 0 = 4x DrainIntervalMicros.
  uint64_t WatchdogIntervalMicros = 0;
  /// Drain-thread restarts before the watchdog gives up, latches
  /// Critical health, and escalates through the snapshot hook.
  unsigned MaxDrainRestarts = 3;
};

/// Service-wide health, computed from fault counters, restart history
/// and governor depth (see Supervisor::health for the exact rules).
enum class ServiceHealth : uint8_t {
  Healthy,  ///< Steady state: no restarts, no drops, no degradation.
  Degraded, ///< Operating with reduced fidelity or after self-repair.
  Critical, ///< Latched: restart budget exhausted or abort threshold hit.
};

/// Stable lower_snake name ("healthy", "degraded", "critical").
const char *healthName(ServiceHealth H);

/// Service-wide counters (plain values; see stats()).
struct ServiceStats {
  uint64_t TenantsOpen = 0;      ///< Occupied slots (open or evicted).
  uint64_t TenantsOpenedTotal = 0;
  uint64_t TenantsEvicted = 0;   ///< Evictions (incl. explicit closes).
  uint64_t TenantsClosed = 0;    ///< Slots fully recycled.
  uint64_t LeasesGranted = 0;
  uint64_t LeasesRefused = 0;
  uint64_t DrainTicks = 0;
  uint64_t DrainedEvents = 0;
  uint64_t RingOverflows = 0;
  uint64_t PolicyDegrades = 0;
  uint64_t PolicyRestores = 0;
  uint64_t IssuesFound = 0;      ///< Central reporter's distinct issues.
  uint64_t SnapshotsEmitted = 0;
  /// Snapshot cadences where the dirty flag found nothing changed
  /// since the last emission, so the render + hook were skipped.
  uint64_t SnapshotsSkipped = 0;
  /// Full-ring events delivered through the locked fallback (no loss).
  uint64_t RingFallbacks = 0;
  /// Full-ring events dropped after the retry budget (accounted loss).
  uint64_t RingDrops = 0;
  /// Drain-thread restarts performed by the watchdog.
  uint64_t DrainRestarts = 0;
  /// Watchdog liveness samples taken.
  uint64_t WatchdogChecks = 0;
  /// Current service health.
  ServiceHealth Health = ServiceHealth::Healthy;
};

class Supervisor {
public:
  explicit Supervisor(const ServiceOptions &Options = ServiceOptions());

  /// Stops the drain thread (final drain included) and tears down the
  /// pool. Outstanding leases must have been released.
  ~Supervisor();

  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  //===--------------------------------------------------------------===//
  // Tenants and leases
  //===--------------------------------------------------------------===//

  /// Opens a tenant on a free shard. Returns NoTenant when every shard
  /// is occupied.
  TenantId openTenant(std::string_view Name,
                      const TenantQuota &Quota = TenantQuota());

  /// Cooperative close: marks the tenant evicted (Explicit) and kicks
  /// a drain tick so the shard resets as soon as its last outstanding
  /// lease returns (immediately, when there is none). Returns false
  /// for a stale handle.
  bool closeTenant(TenantId Id);

  /// An RAII shard lease. Move-only; releases on destruction. Operator
  /// bool distinguishes a granted lease from a refusal.
  class Lease {
  public:
    Lease() = default;
    Lease(Lease &&O) noexcept : Owner(O.Owner), Id(O.Id), S(O.S) {
      O.Owner = nullptr;
      O.S = nullptr;
    }
    Lease &operator=(Lease &&O) noexcept {
      if (this != &O) {
        reset();
        Owner = O.Owner;
        Id = O.Id;
        S = O.S;
        O.Owner = nullptr;
        O.S = nullptr;
      }
      return *this;
    }
    ~Lease() { reset(); }

    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    explicit operator bool() const { return S != nullptr; }
    Sanitizer &session() { return *S; }
    Sanitizer *operator->() { return S; }

    void reset() {
      if (Owner)
        Owner->releaseLease(Id);
      Owner = nullptr;
      S = nullptr;
    }

  private:
    friend class Supervisor;
    Lease(Supervisor &Sup, TenantId Tenant, Sanitizer &Session)
        : Owner(&Sup), Id(Tenant), S(&Session) {}

    Supervisor *Owner = nullptr;
    TenantId Id = NoTenant;
    Sanitizer *S = nullptr;
  };

  /// The quota gate. Returns an empty lease when the handle is stale,
  /// the tenant is evicted, or a budget is exhausted (which evicts).
  Lease lease(TenantId Id);

  bool setQuota(TenantId Id, const TenantQuota &Quota);
  bool getQuota(TenantId Id, TenantQuota &Out) const;

  /// Live per-tenant accounting; false for a stale handle.
  bool tenantSnapshot(TenantId Id, TenantSnapshot &Out);

  /// The policy the tenant's shard currently runs (base policy
  /// possibly degraded by the governor). CheckPolicy::Off for a stale
  /// handle.
  CheckPolicy tenantPolicy(TenantId Id);

  /// The quota gate with a caller-side backoff hint: on refusal,
  /// \p RetryAfterMicros receives the suggested wait before retrying —
  /// one drain interval while the handle still names an occupied slot
  /// (an eviction/reset is in flight, or quotas may be raised), 0 when
  /// the handle is stale and retrying is pointless. On a granted lease
  /// the hint is 0.
  Lease lease(TenantId Id, uint64_t &RetryAfterMicros);

  //===--------------------------------------------------------------===//
  // Drain loop
  //===--------------------------------------------------------------===//

  /// Forces one full drain tick *starting after this call* and waits
  /// for it to complete (deterministic tests; also handy before
  /// reading stats). Returns the number of events that tick drained.
  uint64_t tick();

  void setDrainInterval(uint64_t Micros);
  uint64_t drainInterval();

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  ServiceStats stats();

  /// The service's current health (same value stats() carries, without
  /// the full stats walk): Critical once the drain-restart budget is
  /// exhausted or the abort threshold fired; Degraded while any
  /// occupied shard runs below the base policy, the drainer was ever
  /// restarted or wedged, or any error event was dropped; else Healthy.
  ServiceHealth health();

  /// The service-and-tenants JSON document the snapshot hook receives
  /// (rendered on demand here).
  std::string snapshotJson();

  /// Prometheus text exposition of the service's metrics registry
  /// (service counters/gauges/histograms refreshed on the way out)
  /// followed by the process-global registry (check-latency
  /// histograms). The structured replacement for snapshotJson().
  std::string metricsText();

  /// The service's metrics registry (tests; mutate through metrics
  /// names, not this handle).
  obs::MetricsRegistry &metrics() { return Registry; }

  concurrent::SessionPool &pool() { return Pool; }
  ErrorReporter &reporter() { return Pool.reporter(); }
  unsigned numShards() const { return NumShards; }

  /// Replaces the central reporter's sink (thin wrapper, like
  /// Sanitizer::setErrorCallback).
  void setErrorCallback(ErrorCallback Callback, void *UserData) {
    Pool.reporter().setCallback(Callback, UserData);
  }

  /// Installs/replaces the JSON snapshot hook at run time.
  void setSnapshotHook(void (*Hook)(const char *, void *), void *UserData,
                       unsigned EveryTicks);

private:
  friend class Lease;

  void drainLoop();
  /// The watchdog thread body: samples the drainer's liveness flag and
  /// heartbeat on its own cadence, restarts a dead drainer, and marks a
  /// wedged-but-alive one (stuck inside a tick) Degraded.
  void watchdogLoop();
  /// Joins the dead drain thread and spawns a fresh one, bounded by
  /// ServiceOptions::MaxDrainRestarts; past the budget it latches
  /// Critical and escalates once through the snapshot hook.
  void restartDrainer();
  /// One tick: drain + attribute, pending resets, governor, snapshot.
  /// Returns the events drained.
  uint64_t runTick();
  /// Pops every queued event, attributing each to the owning shard's
  /// tenant, into the central reporter. Drain thread (or dtor, after
  /// the join) only.
  uint64_t drainAttributed();
  /// Wakes the drain thread without waiting for the tick.
  void poke();
  void releaseLease(TenantId Id);
  uint64_t checkSumOf(unsigned Shard);
  /// Hash of every externally driven signal the snapshot renders
  /// (tenant/lease/error totals, per-shard check sums, heap traffic) —
  /// NOT of drainer-self-inflicted counters (tick/snapshot counts),
  /// which advance even when the service is idle. Equal signatures
  /// mean an emission would duplicate the previous document.
  uint64_t activitySignature();
  /// Registers the service's metric families in Registry (ctor).
  void initMetrics();
  /// Mirrors \p S + heap/check totals into the registry's counters and
  /// gauges (drain tick when metrics are armed, and metricsText()).
  void updateMetrics(const ServiceStats &S, double RingOccupancy);

  concurrent::SessionPool Pool;
  unsigned NumShards;
  CheckPolicy BasePolicy;
  TenantRegistry Tenants;
  LoadGovernor Governor;
  bool GovernorEnabled;

  uint64_t AbortAfter;
  void (*AbortHandler)(uint64_t, void *);
  void *AbortUserData;
  /// Set by the drain thread; read by health() from any thread.
  std::atomic<bool> AbortFired{false};

  /// Snapshot hook state (HookLock: replaced by API threads, read by
  /// the drainer).
  std::mutex HookLock;
  void (*SnapshotHook)(const char *, void *);
  void *SnapshotUserData;
  unsigned SnapshotEveryTicks;
  unsigned TicksSinceSnapshot = 0; ///< Drain thread only.
  /// Dirty-flag state for snapshot emission (drain thread only).
  uint64_t LastSnapshotSignature = 0;
  bool HaveSnapshotSignature = false;

  /// Per-shard previous-tick baselines for the governor's deltas
  /// (drain thread only).
  std::vector<uint64_t> LastCheckSum;
  std::vector<uint64_t> LastAllocCount;

  /// Drainer-owned counters, atomic so stats() reads them from any
  /// thread. (Tenant/lease totals live in the registry.)
  std::atomic<uint64_t> DrainTicks{0};
  std::atomic<uint64_t> DrainedEvents{0};
  std::atomic<uint64_t> PolicyDegrades{0};
  std::atomic<uint64_t> PolicyRestores{0};
  std::atomic<uint64_t> SnapshotsEmitted{0};
  std::atomic<uint64_t> SnapshotsSkipped{0};

  /// The service's metrics registry plus cached handles to its
  /// families (registered once at construction; per-size-class carved
  /// gauges are created lazily as classes see traffic).
  obs::MetricsRegistry Registry;
  struct ServiceMetrics {
    obs::Counter *TenantsOpenedTotal = nullptr;
    obs::Counter *TenantsEvictedTotal = nullptr;
    obs::Counter *TenantsClosedTotal = nullptr;
    obs::Counter *LeasesGrantedTotal = nullptr;
    obs::Counter *LeasesRefusedTotal = nullptr;
    obs::Counter *DrainTicksTotal = nullptr;
    obs::Counter *DrainedEventsTotal = nullptr;
    obs::Counter *RingOverflowsTotal = nullptr;
    obs::Counter *PolicyDegradesTotal = nullptr;
    obs::Counter *PolicyRestoresTotal = nullptr;
    obs::Counter *IssuesFoundTotal = nullptr;
    obs::Counter *SnapshotsEmittedTotal = nullptr;
    obs::Counter *SnapshotsSkippedTotal = nullptr;
    obs::Counter *RingFallbacksTotal = nullptr;
    obs::Counter *RingDropsTotal = nullptr;
    obs::Counter *DrainRestartsTotal = nullptr;
    obs::Counter *WatchdogChecksTotal = nullptr;
    obs::Counter *TypeChecksTotal = nullptr;
    obs::Counter *LegacyTypeChecksTotal = nullptr;
    obs::Counter *BoundsChecksTotal = nullptr;
    obs::Counter *BoundsNarrowsTotal = nullptr;
    obs::Counter *BoundsGetsTotal = nullptr;
    obs::Counter *CacheHitsTotal = nullptr;
    obs::Counter *CacheMissesTotal = nullptr;
    obs::Counter *HeapAllocsTotal = nullptr;
    obs::Counter *HeapFreesTotal = nullptr;
    obs::Counter *MagazineHitsTotal = nullptr;
    obs::Counter *MagazineRefillsTotal = nullptr;
    obs::Counter *StealsTotal = nullptr;
    obs::Gauge *TenantsOpen = nullptr;
    obs::Gauge *HealthState = nullptr; ///< 0/1/2 = healthy/degraded/critical.
    obs::Gauge *RingOccupancyPct = nullptr;
    obs::Gauge *BlockBytesInUse = nullptr;
    obs::Gauge *QuarantinedBytes = nullptr;
    obs::Histogram *DrainTickTicks = nullptr;
    obs::Histogram *RingOccupancyPctHist = nullptr;
    std::vector<obs::Gauge *> ClassCarved; ///< Indexed by size class.
  } Metrics;

  /// Drain-thread machinery. TickLock orders poke/shutdown against the
  /// loop; InTick marks the window where the thread runs a tick with
  /// the lock dropped (a tick() caller arriving then needs the *next*
  /// full tick to be sure its writes were observed).
  std::mutex TickLock;
  std::condition_variable TickCV;     ///< Wakes the drain thread.
  std::condition_variable TickDoneCV; ///< Wakes tick() waiters.
  uint64_t IntervalMicros;
  uint64_t CompletedTicks = 0;
  uint64_t LastTickEvents = 0;
  bool Poke = false;
  bool InTick = false;
  bool Stop = false;
  std::thread Drainer;

  /// Self-healing machinery. The drain thread keeps DrainerAlive true
  /// for exactly the span of drainLoop() and stamps Heartbeat once per
  /// completed tick; the watchdog samples both on its own cadence and
  /// restarts a dead drainer (bounded, then the Critical latch plus one
  /// escalation through the snapshot hook). A wedged-but-alive drainer
  /// (stuck inside one tick across several checks) is never restarted —
  /// the ring's single-consumer contract forbids a second drainer — it
  /// only degrades health.
  std::atomic<bool> DrainerAlive{false};
  std::atomic<uint64_t> Heartbeat{0};
  std::atomic<uint64_t> DrainRestarts{0};
  std::atomic<uint64_t> WatchdogChecks{0};
  std::atomic<bool> CriticalLatch{false};
  std::atomic<bool> DrainWedged{false};
  bool EscalationFired = false; ///< Watchdog thread only.
  unsigned WedgedStreak = 0;    ///< Watchdog thread only.
  uint64_t LastSeenBeat = 0;    ///< Watchdog thread only.
  /// Serializes restartDrainer() against the destructor's final join.
  std::mutex RestartLock;
  bool WatchdogEnabled;
  uint64_t WatchdogMicros;
  unsigned MaxDrainRestarts;
  std::mutex WatchdogLock;
  std::condition_variable WatchdogCV;
  bool WatchdogStop = false;
  std::thread Watchdog;
};

} // namespace service
} // namespace effective

#endif // EFFECTIVE_SERVICE_SUPERVISOR_H
