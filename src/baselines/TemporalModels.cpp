//===- baselines/TemporalModels.cpp - Temporal-safety tool models ---------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Models of CETS (identifier-based lock-and-key temporal checking) and
/// the combined SoftBound+CETS configuration of Figure 1.
///
//===----------------------------------------------------------------------===//

#include "baselines/ModelFactories.h"

#include "support/Compiler.h"

#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

using namespace effective;
using namespace effective::baselines;

namespace {

/// CETS: every allocation gets a unique identifier ("key"); every
/// pointer inherits the key of its allocation; dereference checks the
/// key is still live. Detects use-after-free, reuse-after-free (any
/// type) and double free; no spatial or type checking.
class CetsModel : public SanitizerModel {
public:
  const char *name() const override { return "CETS"; }

  ~CetsModel() override {
    for (void *P : Owned)
      std::free(P);
  }

  Allocation allocate(size_t Size, const TypeInfo *Type) override {
    (void)Type;
    void *P = std::malloc(Size);
    Owned.insert(P);
    uint64_t Key = ++NextKey;
    LiveKeys.insert(Key);
    CurrentKey[P] = Key;
    return Allocation{P, Key};
  }

  void deallocate(void *Ptr) override {
    auto It = CurrentKey.find(Ptr);
    if (It == CurrentKey.end() || !LiveKeys.count(It->second)) {
      flagError(); // Free through a dangling pointer / double free.
      return;
    }
    LiveKeys.erase(It->second);
    CurrentKey.erase(It);
    // Memory intentionally retained so scenarios can probe reuse; the
    // model reuses the address for the next same-size request.
    FreeList.push_back(Ptr);
  }

  void access(const AccessInfo &Info) override {
    if (!LiveKeys.count(Info.Token))
      flagError();
  }

  void cast(const CastInfo &Info) override {} // Not instrumented.

protected:
  std::unordered_set<uint64_t> LiveKeys;
  std::unordered_map<void *, uint64_t> CurrentKey;
  std::unordered_set<void *> Owned;
  std::vector<void *> FreeList;
  uint64_t NextKey = 0;
};

/// SoftBound+CETS: per-pointer exact bounds (with narrowing) plus
/// lock-and-key — the full memory-safety configuration of Figure 1
/// (spatial + temporal, but no type checking).
class SoftBoundCetsModel final : public CetsModel {
public:
  const char *name() const override { return "SoftBound+CETS"; }

  Allocation allocate(size_t Size, const TypeInfo *Type) override {
    Allocation A = CetsModel::allocate(Size, Type);
    Sizes[A.Ptr] = Size;
    return A;
  }

  void access(const AccessInfo &Info) override {
    CetsModel::access(Info); // Temporal.
    const char *Lo;
    size_t Extent;
    if (Info.SubObjectPtr) {
      Lo = static_cast<const char *>(Info.SubObjectPtr);
      Extent = Info.SubObjectSize;
    } else {
      auto It = Sizes.find(const_cast<void *>(Info.AllocPtr));
      if (It == Sizes.end())
        return;
      Lo = static_cast<const char *>(Info.AllocPtr);
      Extent = It->second;
    }
    const char *P = static_cast<const char *>(Info.Ptr);
    if (P < Lo || P + Info.Size > Lo + Extent)
      flagError();
  }

private:
  std::unordered_map<void *, size_t> Sizes;
};

} // namespace

std::unique_ptr<SanitizerModel>
effective::baselines::createTemporalModel(ModelKind Kind,
                                          TypeContext &Ctx) {
  (void)Ctx;
  switch (Kind) {
  case ModelKind::Cets:
    return std::make_unique<CetsModel>();
  case ModelKind::SoftBoundCets:
    return std::make_unique<SoftBoundCetsModel>();
  default:
    EFFSAN_UNREACHABLE("not a temporal model kind");
  }
}
