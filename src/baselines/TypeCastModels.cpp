//===- baselines/TypeCastModels.cpp - Type-confusion tool models ----------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Models of the type-confusion sanitizers of Figure 1. All of them
/// instrument *explicit cast operations only* — the key limitation
/// Section 2.1 contrasts with EffectiveSan's pointer-use checking — and
/// differ in which casts they cover:
///
///  * CaVer / TypeSan — C++ static_cast downcasts between class types;
///  * UBSan           — downcasts of polymorphic classes (RTTI-based);
///  * HexType         — class downcasts plus reinterpret_cast and
///                      C-style casts between class types;
///  * libcrunch       — explicit pointer casts in C programs (any
///                      target type, not just classes).
///
/// Cast validity is judged against per-object allocation types (these
/// tools all keep such metadata) using the layout machinery, restricted
/// to the incomplete-type semantics the paper describes: no bounds are
/// derived, and offsets are always normalized modulo sizeof, so these
/// models can never flag bounds or temporal errors.
///
//===----------------------------------------------------------------------===//

#include "baselines/ModelFactories.h"

#include "core/Layout.h"
#include "support/Compiler.h"

#include <cstdlib>
#include <unordered_map>

using namespace effective;
using namespace effective::baselines;

namespace {

/// Returns true if \p T is a C++ class-like type (a record).
static bool isClassType(const TypeInfo *T) { return T && T->isRecord(); }

/// Returns true if \p T is a polymorphic class (leading vtable pointer,
/// possibly via a base chain).
static bool isPolymorphic(const TypeInfo *T) {
  const auto *R = dyn_cast_if_present<RecordType>(T);
  if (!R || R->fields().empty())
    return false;
  const FieldInfo &First = R->fields().front();
  if (First.Offset != 0)
    return false;
  if (First.Name == "__vptr")
    return true;
  return First.IsBase && isPolymorphic(First.Type);
}

/// Which casts a flavor instruments.
struct CastCoverage {
  bool Downcasts = false;       // C++ static_cast class downcasts.
  bool Reinterpret = false;     // reinterpret_cast / C casts of classes.
  bool CCasts = false;          // any explicit C cast, any type.
  bool PolymorphicOnly = false; // UBSan: RTTI requires a vtable.
};

class TypeCastModel final : public SanitizerModel {
public:
  TypeCastModel(const char *Name, CastCoverage Coverage, TypeContext &Ctx)
      : Name(Name), Coverage(Coverage), Ctx(Ctx) {}

  ~TypeCastModel() override {
    for (auto &Entry : AllocTypes)
      std::free(Entry.first);
  }

  const char *name() const override { return Name; }

  Allocation allocate(size_t Size, const TypeInfo *Type) override {
    void *P = std::malloc(Size);
    AllocTypes[P] = Type;
    return Allocation{P, ++NextToken};
  }

  void deallocate(void *Ptr) override {
    // These tools keep their type metadata until reallocation; freeing
    // is not instrumented.
  }

  void access(const AccessInfo &Info) override {} // Not instrumented.

  void cast(const CastInfo &Info) override {
    if (!shouldCheck(Info))
      return;
    auto It = AllocTypes.find(const_cast<void *>(Info.AllocPtr));
    if (It == AllocTypes.end() || !It->second)
      return; // Untracked object.
    const TypeInfo *Alloc = It->second;
    if (Alloc->size() == 0)
      return;
    // Incomplete-type check: does a sub-object of the target type exist
    // at this offset? (No bounds are derived — Section 2.1.)
    uint64_t Offset = static_cast<uint64_t>(
        static_cast<const char *>(Info.Ptr) -
        static_cast<const char *>(Info.AllocPtr));
    Offset %= Alloc->size();
    if (!Alloc->layout().lookup(Info.ToType, Offset))
      flagError();
  }

private:
  bool shouldCheck(const CastInfo &Info) const {
    if (Info.Kind == CastKind::Implicit)
      return false; // No tool sees implicit casts.
    if (Coverage.CCasts)
      return true;
    if (!isClassType(Info.ToType))
      return false;
    if (Coverage.PolymorphicOnly && !isPolymorphic(Info.ToType))
      return false;
    switch (Info.Kind) {
    case CastKind::StaticDowncast:
      return Coverage.Downcasts;
    case CastKind::ReinterpretCast:
    case CastKind::CCast:
      return Coverage.Reinterpret;
    case CastKind::Implicit:
      return false;
    }
    return false;
  }

  const char *Name;
  CastCoverage Coverage;
  TypeContext &Ctx;
  std::unordered_map<void *, const TypeInfo *> AllocTypes;
  uint64_t NextToken = 0;
};

} // namespace

std::unique_ptr<SanitizerModel>
effective::baselines::createTypeCastModel(ModelKind Kind,
                                          TypeContext &Ctx) {
  switch (Kind) {
  case ModelKind::CaVer:
    return std::make_unique<TypeCastModel>(
        "CaVer", CastCoverage{.Downcasts = true}, Ctx);
  case ModelKind::TypeSan:
    return std::make_unique<TypeCastModel>(
        "TypeSan", CastCoverage{.Downcasts = true}, Ctx);
  case ModelKind::UBSan:
    return std::make_unique<TypeCastModel>(
        "UBSan", CastCoverage{.Downcasts = true, .PolymorphicOnly = true},
        Ctx);
  case ModelKind::HexType:
    return std::make_unique<TypeCastModel>(
        "HexType", CastCoverage{.Downcasts = true, .Reinterpret = true},
        Ctx);
  case ModelKind::Libcrunch:
    return std::make_unique<TypeCastModel>(
        "libcrunch", CastCoverage{.Downcasts = true, .CCasts = true}, Ctx);
  default:
    EFFSAN_UNREACHABLE("not a type-cast model kind");
  }
}
