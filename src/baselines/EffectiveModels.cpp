//===- baselines/EffectiveModels.cpp - EffectiveSan variant models --------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// SanitizerModel adapters over the real EffectiveSan runtime: the full
/// tool, the -bounds and -type reduced variants (Section 6.2), and the
/// uninstrumented baseline. The access adapter replays the Figure 3
/// schema: type_check at the pointer's derivation point, bounds_narrow
/// on field provenance, bounds_check at the access.
///
//===----------------------------------------------------------------------===//

#include "baselines/ModelFactories.h"

#include "core/Runtime.h"
#include "support/Compiler.h"

#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

using namespace effective;
using namespace effective::baselines;

namespace {

/// The uninstrumented baseline: plain allocation, no checks ever.
class NoneModel final : public SanitizerModel {
public:
  const char *name() const override { return "Uninstrumented"; }

  ~NoneModel() override {
    for (void *P : Owned)
      std::free(P);
  }

  Allocation allocate(size_t Size, const TypeInfo *Type) override {
    void *P = std::malloc(Size);
    Owned.insert(P);
    return Allocation{P, 0};
  }

  void deallocate(void *Ptr) override {} // Keep memory valid for probes.
  void access(const AccessInfo &Info) override {}
  void cast(const CastInfo &Info) override {}

private:
  std::unordered_set<void *> Owned;
};

/// Which parts of the Figure 3 schema a variant keeps.
enum class Variant { Full, BoundsOnly, TypeOnly };

class EffectiveSanModel final : public SanitizerModel {
public:
  EffectiveSanModel(const char *Name, Variant V, TypeContext &Ctx)
      : Name(Name), V(V), RT(Ctx, countingOptions()) {}

  const char *name() const override { return Name; }

  Allocation allocate(size_t Size, const TypeInfo *Type) override {
    void *P = RT.allocate(Size, Type);
    return Allocation{P, ++NextToken};
  }

  void deallocate(void *Ptr) override {
    uint64_t Before = RT.reporter().numEvents();
    RT.deallocate(Ptr);
    noteEvents(Before);
  }

  void access(const AccessInfo &Info) override {
    if (V == Variant::TypeOnly)
      return; // EffectiveSan-type instruments casts only.
    uint64_t Before = RT.reporter().numEvents();
    // Rules (a)-(d): the input pointer (the sub-object base for
    // field-derived pointers, else the allocation pointer) is checked
    // and yields bounds...
    const void *Input =
        Info.SubObjectPtr ? Info.SubObjectPtr : Info.AllocPtr;
    Bounds B = V == Variant::Full
                   ? RT.typeCheck(Input, Info.StaticType)
                   : RT.boundsGet(Input);
    // ...rule (e): field selection narrows...
    if (Info.SubObjectPtr)
      B = RT.boundsNarrow(B, Info.SubObjectPtr, Info.SubObjectSize);
    // ...rule (g): the (derived) access is bounds checked.
    RT.boundsCheck(Info.Ptr, Info.Size, B);
    noteEvents(Before);
  }

  void cast(const CastInfo &Info) override {
    if (V == Variant::BoundsOnly)
      return; // Casts carry no extra check without type comparison.
    uint64_t Before = RT.reporter().numEvents();
    RT.typeCheck(Info.Ptr, Info.ToType); // Rule (d).
    noteEvents(Before);
  }

  // The real typed low-fat stack/global paths (not the heap mapping
  // the base class defaults to). Scenario stack objects are escaping
  // by construction — their addresses outlive the frame — so the
  // escape flag is set and retirement goes through the
  // use-after-return quarantine.
  Allocation stackAllocate(size_t Size, const TypeInfo *Type) override {
    size_t Mark = RT.stackMark();
    void *P = RT.stackAllocate(Size, Type, /*Escapes=*/true);
    StackMarks[P] = Mark;
    return Allocation{P, ++NextToken};
  }

  void stackRetire(void *Ptr) override {
    auto It = StackMarks.find(Ptr);
    if (It == StackMarks.end())
      return;
    uint64_t Before = RT.reporter().numEvents();
    RT.stackRelease(It->second); // Rebinds the META to STACK-FREE.
    StackMarks.erase(It);
    noteEvents(Before);
  }

  Allocation globalRegister(size_t Size, const TypeInfo *Type,
                            const char *Name) override {
    void *P = RT.globalAllocate(Size, Type,
                                Name ? std::string_view(Name)
                                     : std::string_view());
    return Allocation{P, ++NextToken};
  }

private:
  static RuntimeOptions countingOptions() {
    RuntimeOptions Options;
    Options.Reporter.Mode = ReportMode::Count;
    return Options;
  }

  void noteEvents(uint64_t Before) {
    uint64_t After = RT.reporter().numEvents();
    for (uint64_t I = Before; I < After; ++I)
      flagError();
  }

  const char *Name;
  Variant V;
  Runtime RT;
  uint64_t NextToken = 0;
  std::unordered_map<void *, size_t> StackMarks;
};

} // namespace

std::unique_ptr<SanitizerModel>
effective::baselines::createEffectiveModel(ModelKind Kind,
                                           TypeContext &Ctx) {
  switch (Kind) {
  case ModelKind::None:
    return std::make_unique<NoneModel>();
  case ModelKind::EffectiveSan:
    return std::make_unique<EffectiveSanModel>("EffectiveSan",
                                               Variant::Full, Ctx);
  case ModelKind::EffectiveSanBounds:
    return std::make_unique<EffectiveSanModel>("EffectiveSan-bounds",
                                               Variant::BoundsOnly, Ctx);
  case ModelKind::EffectiveSanType:
    return std::make_unique<EffectiveSanModel>("EffectiveSan-type",
                                               Variant::TypeOnly, Ctx);
  default:
    EFFSAN_UNREACHABLE("not an EffectiveSan model kind");
  }
}

//===----------------------------------------------------------------------===//
// Public factory
//===----------------------------------------------------------------------===//

const char *effective::baselines::modelKindName(ModelKind Kind) {
  switch (Kind) {
  case ModelKind::None:
    return "Uninstrumented";
  case ModelKind::AddressSanitizer:
    return "AddressSanitizer";
  case ModelKind::LowFat:
    return "LowFat";
  case ModelKind::BaggyBounds:
    return "BaggyBounds";
  case ModelKind::IntelMpx:
    return "Intel MPX";
  case ModelKind::SoftBound:
    return "SoftBound";
  case ModelKind::Cets:
    return "CETS";
  case ModelKind::SoftBoundCets:
    return "SoftBound+CETS";
  case ModelKind::CaVer:
    return "CaVer";
  case ModelKind::TypeSan:
    return "TypeSan";
  case ModelKind::HexType:
    return "HexType";
  case ModelKind::UBSan:
    return "UBSan";
  case ModelKind::Libcrunch:
    return "libcrunch";
  case ModelKind::EffectiveSan:
    return "EffectiveSan";
  case ModelKind::EffectiveSanBounds:
    return "EffectiveSan-bounds";
  case ModelKind::EffectiveSanType:
    return "EffectiveSan-type";
  }
  return "unknown";
}

std::unique_ptr<SanitizerModel>
effective::baselines::createModel(ModelKind Kind, TypeContext &Ctx) {
  switch (Kind) {
  case ModelKind::AddressSanitizer:
  case ModelKind::LowFat:
  case ModelKind::BaggyBounds:
  case ModelKind::IntelMpx:
  case ModelKind::SoftBound:
    return createSpatialModel(Kind, Ctx);
  case ModelKind::Cets:
  case ModelKind::SoftBoundCets:
    return createTemporalModel(Kind, Ctx);
  case ModelKind::CaVer:
  case ModelKind::TypeSan:
  case ModelKind::HexType:
  case ModelKind::UBSan:
  case ModelKind::Libcrunch:
    return createTypeCastModel(Kind, Ctx);
  case ModelKind::None:
  case ModelKind::EffectiveSan:
  case ModelKind::EffectiveSanBounds:
  case ModelKind::EffectiveSanType:
    return createEffectiveModel(Kind, Ctx);
  }
  EFFSAN_UNREACHABLE("unknown model kind");
}
