//===- baselines/ModelFactories.h - Internal model factories ----*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal (library-private) factory functions, one per model family.
/// The public entry point is createModel() in SanitizerModel.h.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_BASELINES_MODELFACTORIES_H
#define EFFECTIVE_BASELINES_MODELFACTORIES_H

#include "baselines/SanitizerModel.h"

namespace effective {
namespace baselines {

/// AddressSanitizer, LowFat, BaggyBounds, Intel MPX, SoftBound.
std::unique_ptr<SanitizerModel> createSpatialModel(ModelKind Kind,
                                                   TypeContext &Ctx);

/// CETS and SoftBound+CETS.
std::unique_ptr<SanitizerModel> createTemporalModel(ModelKind Kind,
                                                    TypeContext &Ctx);

/// CaVer, TypeSan, HexType, UBSan, libcrunch.
std::unique_ptr<SanitizerModel> createTypeCastModel(ModelKind Kind,
                                                    TypeContext &Ctx);

/// None and the EffectiveSan variants.
std::unique_ptr<SanitizerModel> createEffectiveModel(ModelKind Kind,
                                                     TypeContext &Ctx);

} // namespace baselines
} // namespace effective

#endif // EFFECTIVE_BASELINES_MODELFACTORIES_H
