//===- baselines/ErrorSuite.cpp - Figure 1 error scenarios ----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/ErrorSuite.h"

#include "core/Layout.h"
#include "support/Compiler.h"

using namespace effective;
using namespace effective::baselines;

const char *effective::baselines::errorClassName(ErrorClass Class) {
  switch (Class) {
  case ErrorClass::Types:
    return "Types";
  case ErrorClass::Bounds:
    return "Bounds";
  case ErrorClass::Temporal:
    return "UAF";
  case ErrorClass::Stack:
    return "Stack";
  case ErrorClass::Global:
    return "Global";
  case ErrorClass::Control:
    return "Control";
  }
  return "?";
}

const char *effective::baselines::capabilityMark(Capability C) {
  switch (C) {
  case Capability::None:
    return "-";
  case Capability::Partial:
    return "Partial";
  case Capability::Full:
    return "Yes";
  }
  return "?";
}

ScenarioTypes::ScenarioTypes(TypeContext &Ctx) : Ctx(Ctx) {
  Account = RecordBuilder(Ctx, TypeKind::Struct, "account")
                .addField("number", Ctx.getArray(Ctx.getInt(), 8))
                .addField("balance", Ctx.getFloat())
                .finish();

  const TypeInfo *VPtr = Ctx.getPointer(Ctx.getGenericFunction());
  Grammar = RecordBuilder(Ctx, TypeKind::Struct, "Grammar")
                .addField("__vptr", VPtr)
                .addField("gtype", Ctx.getInt())
                .finish();
  SchemaGrammar = RecordBuilder(Ctx, TypeKind::Struct, "SchemaGrammar")
                      .addField("Grammar", Grammar, /*IsBase=*/true)
                      .addField("schemaInfo", Ctx.getPointer(Ctx.getInt()))
                      .finish();
  DTDGrammar = RecordBuilder(Ctx, TypeKind::Struct, "DTDGrammar")
                   .addField("Grammar", Grammar, /*IsBase=*/true)
                   .addField("dtdEntities", Ctx.getDouble())
                   .finish();

  Container = RecordBuilder(Ctx, TypeKind::Struct, "container")
                  .addField("payload", Ctx.getInt())
                  .addField("extra", Ctx.getLong())
                  .finish();

  BasePrefix = RecordBuilder(Ctx, TypeKind::Struct, "BasePrefix")
                   .addField("x", Ctx.getInt())
                   .addField("y", Ctx.getFloat())
                   .finish();
  DerivedPrefix = RecordBuilder(Ctx, TypeKind::Struct, "DerivedPrefix")
                      .addField("x", Ctx.getInt())
                      .addField("y", Ctx.getFloat())
                      .addField("z", Ctx.getChar())
                      .finish();
}

namespace {

AccessInfo makeAccess(const Allocation &A, uint64_t Offset, size_t Size,
                      const TypeInfo *StaticType) {
  AccessInfo Info;
  Info.Ptr = static_cast<const char *>(A.Ptr) + Offset;
  Info.Size = Size;
  Info.StaticType = StaticType;
  Info.AllocPtr = A.Ptr;
  Info.Token = A.Token;
  return Info;
}

CastInfo makeCast(const Allocation &A, const TypeInfo *From,
                  const TypeInfo *To, CastKind Kind) {
  CastInfo Info;
  Info.Ptr = A.Ptr;
  Info.AllocPtr = A.Ptr;
  Info.Token = A.Token;
  Info.FromType = From;
  Info.ToType = To;
  Info.Kind = Kind;
  return Info;
}

uint64_t offsetofBalance(const ScenarioTypes &T) {
  return T.Account->fields()[1].Offset;
}

} // namespace

const std::vector<Scenario> &effective::baselines::errorSuite() {
  static const std::vector<Scenario> Suite = {
      //===---------------------------------------------------------===//
      // Types
      //===---------------------------------------------------------===//
      {"bad-downcast",
       "xalancbmk: static_cast of a DTDGrammar to SchemaGrammar",
       ErrorClass::Types,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation G = M.allocate(T.DTDGrammar->size(), T.DTDGrammar);
         M.cast(makeCast(G, T.Grammar, T.SchemaGrammar,
                         CastKind::StaticDowncast));
       }},

      {"implicit-cast-confusion",
       "pointer smuggled via memcpy and used with the wrong type",
       ErrorClass::Types,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(16 * sizeof(int), T.Ctx.getInt());
         // No cast event is visible anywhere; only the eventual use.
         AccessInfo Info =
             makeAccess(A, 0, sizeof(double), T.Ctx.getDouble());
         M.access(Info);
       }},

      {"c-cast-confusion",
       "gcc/sphinx3: struct cast to (int[]) for checksumming",
       ErrorClass::Types,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(T.Account->size(), T.Account);
         // (double *)account — a C-style cast to an incompatible
         // fundamental type.
         M.cast(makeCast(A, T.Account, T.Ctx.getDouble(), CastKind::CCast));
       }},

      {"container-cast",
       "casting a T to a container struct S { T t; ... }",
       ErrorClass::Types,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(sizeof(int), T.Ctx.getInt());
         M.cast(makeCast(A, T.Ctx.getInt(), T.Container, CastKind::CCast));
       }},

      {"prefix-struct-confusion",
       "perlbench/povray: ad hoc inheritance via shared struct prefixes",
       ErrorClass::Types,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(T.BasePrefix->size(), T.BasePrefix);
         M.cast(makeCast(A, T.BasePrefix, T.DerivedPrefix,
                         CastKind::CCast));
       }},

      //===---------------------------------------------------------===//
      // Bounds
      //===---------------------------------------------------------===//
      {"object-overflow",
       "int[96] overflow by one element (class-exact allocation)",
       ErrorClass::Bounds,
       [](SanitizerModel &M, ScenarioTypes &T) {
         // 96 ints = 384 bytes: exactly a low-fat size class, so every
         // allocation-bounds tool sees the overflow; BaggyBounds' 512-
         // byte power-of-two padding hides it.
         Allocation A = M.allocate(96 * sizeof(int), T.Ctx.getInt());
         M.access(makeAccess(A, 96 * sizeof(int), sizeof(int),
                             T.Ctx.getInt()));
       }},

      {"object-overflow-pow2",
       "int[128] overflow by one element (power-of-two allocation)",
       ErrorClass::Bounds,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(128 * sizeof(int), T.Ctx.getInt());
         M.access(makeAccess(A, 128 * sizeof(int), sizeof(int),
                             T.Ctx.getInt()));
       }},

      {"skip-redzone-overflow",
       "overflow landing inside another live object",
       ErrorClass::Bounds,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(96 * sizeof(int), T.Ctx.getInt());
         Allocation B = M.allocate(96 * sizeof(int), T.Ctx.getInt());
         // The access lands in B's valid interior but the pointer
         // provenance is A (an attacker-controlled index).
         AccessInfo Info = makeAccess(A, 0, sizeof(int), T.Ctx.getInt());
         Info.Ptr = static_cast<const char *>(B.Ptr) + 8;
         M.access(Info);
       }},

      {"subobject-overflow",
       "account.number[8] overflowing into account.balance (Section 1)",
       ErrorClass::Bounds,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(T.Account->size(), T.Account);
         AccessInfo Info =
             makeAccess(A, 8 * sizeof(int), sizeof(int), T.Ctx.getInt());
         // Field provenance: the pointer was formed from &a->number.
         Info.SubObjectPtr = A.Ptr;
         Info.SubObjectSize = 8 * sizeof(int);
         M.access(Info);
       }},

      //===---------------------------------------------------------===//
      // Temporal (UAF)
      //===---------------------------------------------------------===//
      {"use-after-free",
       "access through a dangling pointer (memory not yet reused)",
       ErrorClass::Temporal,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(64, T.Ctx.getInt());
         M.deallocate(A.Ptr);
         M.access(makeAccess(A, 0, sizeof(int), T.Ctx.getInt()));
       }},

      {"reuse-after-free-diff-type",
       "dangling access after the block is reallocated as another type",
       ErrorClass::Temporal,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(64, T.Ctx.getInt());
         M.deallocate(A.Ptr);
         // Churn same-size allocations until the address is reused with
         // a new type; freeing the churn blocks drains any bounded
         // quarantine, as sustained allocation pressure does in
         // practice.
         for (int I = 0; I < 8; ++I) {
           Allocation B = M.allocate(64, T.Ctx.getFloat());
           if (B.Ptr == A.Ptr)
             break;
           M.deallocate(B.Ptr);
         }
         M.access(makeAccess(A, 0, sizeof(int), T.Ctx.getInt()));
       }},

      {"reuse-after-free-same-type",
       "dangling access after reallocation with the same type",
       ErrorClass::Temporal,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(64, T.Ctx.getInt());
         M.deallocate(A.Ptr);
         for (int I = 0; I < 8; ++I) {
           Allocation B = M.allocate(64, T.Ctx.getInt());
           if (B.Ptr == A.Ptr)
             break;
           M.deallocate(B.Ptr);
         }
         M.access(makeAccess(A, 0, sizeof(int), T.Ctx.getInt()));
       }},

      {"double-free",
       "perlbench-style double free",
       ErrorClass::Temporal,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(64, T.Ctx.getInt());
         M.deallocate(A.Ptr);
         M.deallocate(A.Ptr);
       }},

      //===---------------------------------------------------------===//
      // Stack (typed stack objects)
      //===---------------------------------------------------------===//
      {"stack-use-after-return",
       "escaped frame-local used after the frame returned",
       ErrorClass::Stack,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.stackAllocate(16 * sizeof(int), T.Ctx.getInt());
         M.stackRetire(A.Ptr);
         M.access(makeAccess(A, 0, sizeof(int), T.Ctx.getInt()));
       }},

      {"stack-oob",
       "fixed-size stack buffer overflow by one element",
       ErrorClass::Stack,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.stackAllocate(16 * sizeof(int), T.Ctx.getInt());
         M.access(makeAccess(A, 16 * sizeof(int), sizeof(int),
                             T.Ctx.getInt()));
         M.stackRetire(A.Ptr);
       }},

      //===---------------------------------------------------------===//
      // Global (module-registered globals)
      //===---------------------------------------------------------===//
      {"global-oob",
       "global int[8] table overflow by one element",
       ErrorClass::Global,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation G =
             M.globalRegister(8 * sizeof(int), T.Ctx.getInt(), "table");
         M.access(makeAccess(G, 8 * sizeof(int), sizeof(int),
                             T.Ctx.getInt()));
       }},

      {"global-type-confusion",
       "global struct account cast to (double *)",
       ErrorClass::Global,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation G =
             M.globalRegister(T.Account->size(), T.Account, "acct");
         M.cast(makeCast(G, T.Account, T.Ctx.getDouble(),
                         CastKind::CCast));
       }},

      //===---------------------------------------------------------===//
      // Controls (no bug; flags here are false positives)
      //===---------------------------------------------------------===//
      {"control-valid-downcast",
       "static_cast of a SchemaGrammar to SchemaGrammar via its base",
       ErrorClass::Control,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation G = M.allocate(T.SchemaGrammar->size(),
                                   T.SchemaGrammar);
         M.cast(makeCast(G, T.Grammar, T.SchemaGrammar,
                         CastKind::StaticDowncast));
       }},

      {"control-valid-accesses",
       "in-bounds accesses over a correctly typed object",
       ErrorClass::Control,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(T.Account->size(), T.Account);
         for (uint64_t I = 0; I < 8; ++I) {
           AccessInfo Info = makeAccess(A, I * sizeof(int), sizeof(int),
                                        T.Ctx.getInt());
           Info.SubObjectPtr = A.Ptr;
           Info.SubObjectSize = 8 * sizeof(int);
           M.access(Info);
         }
         AccessInfo Bal = makeAccess(A, offsetofBalance(T), sizeof(float),
                                     T.Ctx.getFloat());
         Bal.SubObjectPtr =
             static_cast<const char *>(A.Ptr) + offsetofBalance(T);
         Bal.SubObjectSize = sizeof(float);
         M.access(Bal);
         M.deallocate(A.Ptr);
       }},

      {"control-interior-pointers",
       "interior pointer scans (Example 2 idioms)",
       ErrorClass::Control,
       [](SanitizerModel &M, ScenarioTypes &T) {
         Allocation A = M.allocate(10 * T.Account->size(), T.Account);
         for (uint64_t E = 0; E < 10; ++E) {
           // &a[E].number[0]: the access pointer enters checked code at
           // the element's number field (field provenance).
           AccessInfo Info = makeAccess(A, E * T.Account->size(),
                                        sizeof(int), T.Ctx.getInt());
           Info.SubObjectPtr = static_cast<const char *>(A.Ptr) +
                               E * T.Account->size();
           Info.SubObjectSize = 8 * sizeof(int);
           M.access(Info);
         }
         M.deallocate(A.Ptr);
       }},
  };
  return Suite;
}

//===----------------------------------------------------------------------===//
// Matrix evaluation
//===----------------------------------------------------------------------===//

static Capability capabilityOf(const ClassTally &Tally) {
  if (Tally.Total == 0 || Tally.Detected == 0)
    return Capability::None;
  if (Tally.Detected == Tally.Total)
    return Capability::Full;
  return Capability::Partial;
}

Capability MatrixRow::typesCapability() const { return capabilityOf(Types); }
Capability MatrixRow::boundsCapability() const {
  return capabilityOf(Bounds);
}
Capability MatrixRow::temporalCapability() const {
  return capabilityOf(Temporal);
}
Capability MatrixRow::stackCapability() const { return capabilityOf(Stack); }
Capability MatrixRow::globalCapability() const {
  return capabilityOf(Global);
}

MatrixRow
effective::baselines::evaluateModel(ModelKind Kind,
                                    std::vector<ScenarioOutcome> *Details) {
  MatrixRow Row;
  Row.Kind = Kind;
  for (const Scenario &S : errorSuite()) {
    // Fresh context and model per scenario: no cross-contamination.
    TypeContext Ctx;
    ScenarioTypes Types(Ctx);
    std::unique_ptr<SanitizerModel> Model = createModel(Kind, Ctx);
    S.Run(*Model, Types);
    bool Detected = Model->errorsDetected() > 0;
    if (Details)
      Details->push_back(ScenarioOutcome{&S, Detected});
    ClassTally *Tally = nullptr;
    switch (S.Class) {
    case ErrorClass::Types:
      Tally = &Row.Types;
      break;
    case ErrorClass::Bounds:
      Tally = &Row.Bounds;
      break;
    case ErrorClass::Temporal:
      Tally = &Row.Temporal;
      break;
    case ErrorClass::Stack:
      Tally = &Row.Stack;
      break;
    case ErrorClass::Global:
      Tally = &Row.Global;
      break;
    case ErrorClass::Control:
      if (Detected)
        ++Row.ControlFalsePositives;
      continue;
    }
    ++Tally->Total;
    if (Detected)
      ++Tally->Detected;
  }
  return Row;
}

std::vector<MatrixRow> effective::baselines::evaluateAllModels() {
  std::vector<MatrixRow> Rows;
  for (ModelKind Kind : AllModelKinds)
    Rows.push_back(evaluateModel(Kind));
  return Rows;
}
