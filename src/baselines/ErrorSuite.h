//===- baselines/ErrorSuite.h - Figure 1 error scenarios --------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The error scenarios used to regenerate Figure 1. Each scenario
/// drives a SanitizerModel through an allocation/access/cast event
/// stream containing exactly one bug (or none, for the false-positive
/// controls) and records whether the model flagged it.
///
/// Scenario classes map to the figure's columns:
///   Types  — type confusion (downcasts, C casts, implicit casts, ...);
///   Bounds — object and sub-object overflows;
///   UAF    — use-after-free, reuse-after-free, double free;
///   Stack  — typed stack objects (use-after-return, stack overflow);
///   Global — module-registered globals (overflow, type confusion).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_BASELINES_ERRORSUITE_H
#define EFFECTIVE_BASELINES_ERRORSUITE_H

#include "baselines/SanitizerModel.h"

#include <functional>
#include <string>
#include <vector>

namespace effective {
namespace baselines {

/// The Figure 1 columns.
enum class ErrorClass : uint8_t {
  Types,
  Bounds,
  Temporal,
  Stack,
  Global,
  Control
};

/// Returns "Types" / "Bounds" / "UAF" / "Stack" / "Global" / "Control".
const char *errorClassName(ErrorClass Class);

/// The types the scenarios use, prebuilt in one TypeContext.
struct ScenarioTypes {
  explicit ScenarioTypes(TypeContext &Ctx);

  TypeContext &Ctx;
  /// struct account { int number[8]; float balance; } (Section 1).
  RecordType *Account;
  /// Polymorphic hierarchy mirroring xalancbmk's Grammar classes.
  RecordType *Grammar;
  RecordType *SchemaGrammar;
  RecordType *DTDGrammar;
  /// struct container { int payload; long extra; } — container casts.
  RecordType *Container;
  /// The perlbench/povray struct-prefix "inheritance" pair.
  RecordType *BasePrefix;
  RecordType *DerivedPrefix;
};

/// One error scenario.
struct Scenario {
  const char *Id;
  const char *Summary;
  ErrorClass Class;
  std::function<void(SanitizerModel &, ScenarioTypes &)> Run;
};

/// The full scenario list (stable order).
const std::vector<Scenario> &errorSuite();

/// Per-model, per-class detection tally.
struct ClassTally {
  unsigned Detected = 0;
  unsigned Total = 0;
  /// Spurious errors flagged on control (bug-free) scenarios.
  unsigned FalsePositives = 0;
};

/// Figure 1 cell values.
enum class Capability : uint8_t { None, Partial, Full };

/// Renders a cell as the paper does.
const char *capabilityMark(Capability C);

/// The evaluated matrix row for one sanitizer.
struct MatrixRow {
  ModelKind Kind;
  ClassTally Types;
  ClassTally Bounds;
  ClassTally Temporal;
  ClassTally Stack;
  ClassTally Global;
  unsigned ControlFalsePositives = 0;

  Capability typesCapability() const;
  Capability boundsCapability() const;
  Capability temporalCapability() const;
  Capability stackCapability() const;
  Capability globalCapability() const;
};

/// Detailed per-scenario outcome for one model.
struct ScenarioOutcome {
  const Scenario *S;
  bool Detected;
};

/// Runs every scenario against a fresh model of \p Kind.
MatrixRow evaluateModel(ModelKind Kind,
                        std::vector<ScenarioOutcome> *Details = nullptr);

/// Runs the whole suite for all models (the Figure 1 reproduction).
std::vector<MatrixRow> evaluateAllModels();

} // namespace baselines
} // namespace effective

#endif // EFFECTIVE_BASELINES_ERRORSUITE_H
