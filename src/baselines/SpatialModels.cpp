//===- baselines/SpatialModels.cpp - Bounds-checking tool models ----------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Models of the spatial-safety tools compared in Figure 1:
///
///  * AddressSanitizer — poisoned redzones + byte shadow + quarantine
///    (detects adjacent overflows and use-after-free until reuse; misses
///    redzone-skipping accesses and sub-object overflows);
///  * LowFat — allocation bounds rounded to the low-fat size class;
///  * BaggyBounds — allocation bounds rounded to a power of two
///    (coarser padding than LowFat);
///  * Intel MPX / SoftBound — precise per-pointer bounds with static
///    sub-object narrowing (detect sub-object overflows; no type or
///    temporal checking).
///
//===----------------------------------------------------------------------===//

#include "baselines/ModelFactories.h"

#include "lowfat/SizeClass.h"
#include "support/Compiler.h"

#include <bit>
#include <cstdlib>
#include <deque>
#include <unordered_map>

using namespace effective;
using namespace effective::baselines;

namespace {

//===----------------------------------------------------------------------===//
// AddressSanitizer
//===----------------------------------------------------------------------===//

class AsanModel final : public SanitizerModel {
  static constexpr size_t RedzoneBytes = 16;
  /// Small quarantine so reuse-after-free scenarios exercise the
  /// documented miss (real ASan has a bounded quarantine too).
  static constexpr size_t QuarantineBlocks = 1;

  enum ShadowState : uint8_t { Valid = 1, Redzone = 2, Freed = 3 };

public:
  ~AsanModel() override {
    for (auto &Entry : Blocks)
      std::free(Entry.second.Raw);
  }

  const char *name() const override { return "AddressSanitizer"; }

  Allocation allocate(size_t Size, const TypeInfo *Type) override {
    (void)Type; // ASan tracks no types.
    char *User;
    auto It = FreeBySize.find(Size);
    if (It != FreeBySize.end() && !It->second.empty()) {
      User = It->second.back();
      It->second.pop_back();
    } else {
      char *Raw = static_cast<char *>(std::malloc(Size + 2 * RedzoneBytes));
      User = Raw + RedzoneBytes;
      poison(Raw, RedzoneBytes, Redzone);
      poison(User + Size, RedzoneBytes, Redzone);
      Blocks.emplace(User, BlockInfo{Raw, Size});
    }
    poison(User, Size, Valid);
    return Allocation{User, ++NextToken};
  }

  void deallocate(void *Ptr) override {
    auto It = Blocks.find(static_cast<char *>(Ptr));
    if (It == Blocks.end())
      return;
    if (shadowAt(Ptr) == Freed) {
      flagError(); // Double free: the block is already poisoned.
      return;
    }
    poison(static_cast<char *>(Ptr), It->second.Size, Freed);
    Quarantine.push_back(static_cast<char *>(Ptr));
    while (Quarantine.size() > QuarantineBlocks) {
      char *Evicted = Quarantine.front();
      Quarantine.pop_front();
      FreeBySize[Blocks[Evicted].Size].push_back(Evicted);
    }
  }

  void access(const AccessInfo &Info) override {
    const char *P = static_cast<const char *>(Info.Ptr);
    for (size_t I = 0; I < Info.Size; ++I) {
      uint8_t State = shadowAt(P + I);
      if (State == Redzone || State == Freed) {
        flagError();
        return;
      }
    }
  }

  void cast(const CastInfo &Info) override {} // Not instrumented.

private:
  struct BlockInfo {
    char *Raw;
    size_t Size;
  };

  uint8_t shadowAt(const void *P) const {
    auto It = Shadow.find(reinterpret_cast<uintptr_t>(P));
    // Unknown memory (another tool's heap, stack) is unchecked.
    return It == Shadow.end() ? static_cast<uint8_t>(Valid) : It->second;
  }

  void poison(char *P, size_t Len, uint8_t State) {
    for (size_t I = 0; I < Len; ++I)
      Shadow[reinterpret_cast<uintptr_t>(P + I)] = State;
  }

  std::unordered_map<uintptr_t, uint8_t> Shadow;
  std::unordered_map<char *, BlockInfo> Blocks;
  std::unordered_map<size_t, std::vector<char *>> FreeBySize;
  std::deque<char *> Quarantine;
  uint64_t NextToken = 0;
};

//===----------------------------------------------------------------------===//
// Allocation-bounds tools: LowFat, BaggyBounds, MPX, SoftBound
//===----------------------------------------------------------------------===//

/// How a tool pads the allocation bounds it enforces.
enum class BoundsRounding {
  /// Low-fat size classes (powers of two with 1.5x midpoints).
  SizeClass,
  /// BaggyBounds: next power of two.
  PowerOfTwo,
  /// MPX/SoftBound: exact requested size.
  Exact,
};

/// A per-pointer / per-allocation bounds checker. With Narrowing, field
/// provenance narrows the enforced range to the selected sub-object
/// (MPX/SoftBound); without, only allocation bounds apply.
class BoundsModel final : public SanitizerModel {
public:
  BoundsModel(const char *Name, BoundsRounding Rounding, bool Narrowing)
      : Name(Name), Rounding(Rounding), Narrowing(Narrowing) {}

  ~BoundsModel() override {
    for (auto &Entry : Sizes)
      std::free(Entry.first);
  }

  const char *name() const override { return Name; }

  Allocation allocate(size_t Size, const TypeInfo *Type) override {
    (void)Type;
    void *P = std::malloc(paddedSize(Size));
    Sizes[P] = Size;
    return Allocation{P, ++NextToken};
  }

  void deallocate(void *Ptr) override {
    // Bounds metadata persists after free (these tools are not
    // temporal); the memory itself is kept so scenarios stay valid.
  }

  void access(const AccessInfo &Info) override {
    const char *Lo;
    size_t Extent;
    if (Narrowing && Info.SubObjectPtr) {
      Lo = static_cast<const char *>(Info.SubObjectPtr);
      Extent = Info.SubObjectSize;
    } else {
      auto It = Sizes.find(const_cast<void *>(Info.AllocPtr));
      if (It == Sizes.end())
        return; // Unknown pointer: unchecked.
      Lo = static_cast<const char *>(Info.AllocPtr);
      Extent = paddedSize(It->second);
    }
    const char *P = static_cast<const char *>(Info.Ptr);
    if (P < Lo || P + Info.Size > Lo + Extent)
      flagError();
  }

  void cast(const CastInfo &Info) override {} // Not instrumented.

private:
  size_t paddedSize(size_t Size) const {
    switch (Rounding) {
    case BoundsRounding::SizeClass:
      if (Size <= lowfat::MaxClassSize)
        return lowfat::classSize(lowfat::sizeToClass(Size));
      return Size;
    case BoundsRounding::PowerOfTwo:
      return std::bit_ceil(Size);
    case BoundsRounding::Exact:
      return Size;
    }
    EFFSAN_UNREACHABLE("unknown rounding mode");
  }

  const char *Name;
  BoundsRounding Rounding;
  bool Narrowing;
  std::unordered_map<void *, size_t> Sizes;
  uint64_t NextToken = 0;
};

} // namespace

std::unique_ptr<SanitizerModel>
effective::baselines::createSpatialModel(ModelKind Kind, TypeContext &Ctx) {
  (void)Ctx;
  switch (Kind) {
  case ModelKind::AddressSanitizer:
    return std::make_unique<AsanModel>();
  case ModelKind::LowFat:
    return std::make_unique<BoundsModel>("LowFat",
                                         BoundsRounding::SizeClass,
                                         /*Narrowing=*/false);
  case ModelKind::BaggyBounds:
    return std::make_unique<BoundsModel>("BaggyBounds",
                                         BoundsRounding::PowerOfTwo,
                                         /*Narrowing=*/false);
  case ModelKind::IntelMpx:
    return std::make_unique<BoundsModel>("Intel MPX", BoundsRounding::Exact,
                                         /*Narrowing=*/true);
  case ModelKind::SoftBound:
    return std::make_unique<BoundsModel>("SoftBound", BoundsRounding::Exact,
                                         /*Narrowing=*/true);
  default:
    EFFSAN_UNREACHABLE("not a spatial model kind");
  }
}
