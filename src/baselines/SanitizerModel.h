//===- baselines/SanitizerModel.h - Comparison sanitizer models -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-based sanitizer-model interface used to regenerate the
/// paper's Figure 1 capability matrix. Each model reimplements the
/// detection mechanism of one published tool (shadow memory + redzones
/// for AddressSanitizer, pointer-derived allocation bounds for
/// LowFat/BaggyBounds, per-pointer narrowed bounds for MPX/SoftBound,
/// lock-and-key for CETS, cast checking for CaVer/TypeSan/HexType/
/// UBSan/libcrunch, and the EffectiveSan runtime itself).
///
/// Error scenarios (baselines/ErrorSuite.h) drive models through a
/// common event stream: allocate / deallocate / access / cast. Events
/// carry the pointer *provenance* a compiler pass would have had
/// statically (which allocation the pointer derives from, and the
/// sub-object selected by field accesses), so each model can consume
/// exactly the information its real counterpart uses.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_BASELINES_SANITIZERMODEL_H
#define EFFECTIVE_BASELINES_SANITIZERMODEL_H

#include "core/TypeContext.h"

#include <cstdint>
#include <memory>

namespace effective {
namespace baselines {

/// How a pointer cast was written in the source (drives which cast
/// checkers fire; Section 2.1 of the paper).
enum class CastKind : uint8_t {
  /// C++ static_cast downcast between class types.
  StaticDowncast,
  /// C++ reinterpret_cast between object types.
  ReinterpretCast,
  /// C-style pointer cast.
  CCast,
  /// No visible cast at all (pointer smuggled through memcpy/unions):
  /// only pointer-use instrumentation can see these.
  Implicit,
};

/// One allocation made through a model.
struct Allocation {
  void *Ptr = nullptr;
  /// Opaque provenance token (distinct per allocation event); temporal
  /// tools key their lock-and-key metadata on it.
  uint64_t Token = 0;
};

/// A memory access event with static provenance.
struct AccessInfo {
  /// The accessed address.
  const void *Ptr = nullptr;
  /// Access size in bytes.
  size_t Size = 0;
  /// The static (element) type the program used for the access.
  const TypeInfo *StaticType = nullptr;
  /// Base pointer of the allocation this pointer was derived from.
  const void *AllocPtr = nullptr;
  /// Provenance token of that allocation.
  uint64_t Token = 0;
  /// When the pointer was formed by member selection, the sub-object's
  /// base and size (bounds-narrowing tools use this; others ignore it).
  const void *SubObjectPtr = nullptr;
  size_t SubObjectSize = 0;
  bool IsWrite = false;
};

/// A pointer cast event.
struct CastInfo {
  const void *Ptr = nullptr;
  const void *AllocPtr = nullptr;
  uint64_t Token = 0;
  /// Static source type (may be null when unknown).
  const TypeInfo *FromType = nullptr;
  /// Static destination (element) type.
  const TypeInfo *ToType = nullptr;
  CastKind Kind = CastKind::CCast;
};

/// Abstract sanitizer model. One instance per scenario run; errors
/// accumulate in a counter.
class SanitizerModel {
public:
  virtual ~SanitizerModel() = default;

  virtual const char *name() const = 0;

  /// Allocates real, usable memory of \p Size bytes. \p Type is the
  /// allocation's dynamic type (models that track types use it; others
  /// ignore it).
  virtual Allocation allocate(size_t Size, const TypeInfo *Type) = 0;

  /// Frees an allocation made by this model.
  virtual void deallocate(void *Ptr) = 0;

  /// A load/store event.
  virtual void access(const AccessInfo &Info) = 0;

  /// A pointer-cast event.
  virtual void cast(const CastInfo &Info) = 0;

  /// Allocates a typed STACK object (frame-scoped). Most tools
  /// instrument stack objects through the same mechanism as heap
  /// allocations (or not at all), so the default maps the event onto
  /// allocate(); models with a dedicated stack story override it.
  virtual Allocation stackAllocate(size_t Size, const TypeInfo *Type) {
    return allocate(Size, Type);
  }

  /// The stack object's frame returned. Default: a heap deallocation —
  /// tools whose temporal detection keys on free events treat the dead
  /// frame like freed memory.
  virtual void stackRetire(void *Ptr) { deallocate(Ptr); }

  /// Registers a GLOBAL object at module load. Default: a heap
  /// allocation that is never freed.
  virtual Allocation globalRegister(size_t Size, const TypeInfo *Type,
                                    const char *Name) {
    (void)Name;
    return allocate(Size, Type);
  }

  /// Number of errors this model has flagged.
  uint64_t errorsDetected() const { return Errors; }

protected:
  void flagError() { ++Errors; }

private:
  uint64_t Errors = 0;
};

/// The sanitizer rows of Figure 1 (plus the uninstrumented baseline and
/// the EffectiveSan variants).
enum class ModelKind : uint8_t {
  None,
  AddressSanitizer,
  LowFat,
  BaggyBounds,
  IntelMpx,
  SoftBound,
  Cets,
  SoftBoundCets,
  CaVer,
  TypeSan,
  HexType,
  UBSan,
  Libcrunch,
  EffectiveSanType,
  EffectiveSanBounds,
  EffectiveSan,
};

inline constexpr ModelKind AllModelKinds[] = {
    ModelKind::None,          ModelKind::CaVer,
    ModelKind::TypeSan,       ModelKind::UBSan,
    ModelKind::HexType,       ModelKind::Libcrunch,
    ModelKind::BaggyBounds,   ModelKind::LowFat,
    ModelKind::IntelMpx,      ModelKind::SoftBound,
    ModelKind::Cets,          ModelKind::AddressSanitizer,
    ModelKind::SoftBoundCets, ModelKind::EffectiveSanType,
    ModelKind::EffectiveSanBounds, ModelKind::EffectiveSan,
};

/// Stable display name for a model kind (the Figure 1 row label).
const char *modelKindName(ModelKind Kind);

/// Creates a fresh model instance. Types used in events must come from
/// \p Ctx.
std::unique_ptr<SanitizerModel> createModel(ModelKind Kind,
                                            TypeContext &Ctx);

} // namespace baselines
} // namespace effective

#endif // EFFECTIVE_BASELINES_SANITIZERMODEL_H
