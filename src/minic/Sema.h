//===- minic/Sema.h - MiniC semantic analysis -------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MiniC: name resolution, type checking (every
/// expression receives an interned TypeInfo; lvalues are marked), and
/// the paper's malloc allocation-type inference ("for malloc the
/// dynamic type is deemed equivalent to the first lvalue usage type...
/// determined by a simple program analysis", Example 1): a malloc call
/// that is cast to (T*) or assigned/initialized into a T* variable is
/// bound to dynamic type T; otherwise it stays untyped (checked with
/// wide bounds).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_MINIC_SEMA_H
#define EFFECTIVE_MINIC_SEMA_H

#include "minic/AST.h"

namespace effective {
namespace minic {

/// Type checks one translation unit in place.
class Sema {
public:
  Sema(ASTContext &Ctx, DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  /// Returns false if any semantic error was diagnosed.
  bool check(TranslationUnit &Unit);

private:
  // Scope handling.
  void pushScope();
  void popScope();
  VarDecl *lookupVar(std::string_view Name) const;
  void declareVar(VarDecl *D);

  // Checking.
  void checkFunction(FunctionDecl *F);
  void checkStmt(Stmt *S);
  void checkVarDecl(VarDecl *D);
  const TypeInfo *checkExpr(Expr *E);

  const TypeInfo *checkUnary(UnaryExpr *E);
  const TypeInfo *checkBinary(BinaryExpr *E);
  const TypeInfo *checkAssign(AssignExpr *E);
  const TypeInfo *checkIndex(IndexExpr *E);
  const TypeInfo *checkMember(MemberExpr *E);
  const TypeInfo *checkCall(CallExpr *E);
  const TypeInfo *checkCast(CastExpr *E);

  /// Array-to-pointer decay for rvalue uses.
  const TypeInfo *decay(const TypeInfo *T);
  /// The common type of an arithmetic operation.
  const TypeInfo *arithCommonType(const TypeInfo *A, const TypeInfo *B);
  /// True if a value of type From may be assigned to To (C-style, with
  /// the usual scalar conversions and permissive pointer rules).
  bool assignable(const TypeInfo *To, const TypeInfo *From);

  /// Malloc inference: if \p Value is malloc() (possibly parenthesized)
  /// and \p PointerType is T*, bind the allocation to T.
  void inferMallocType(Expr *Value, const TypeInfo *TargetType);

  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  TranslationUnit *Unit = nullptr;
  FunctionDecl *CurrentFunction = nullptr;
  std::vector<std::unordered_map<std::string_view, VarDecl *>> Scopes;
};

} // namespace minic
} // namespace effective

#endif // EFFECTIVE_MINIC_SEMA_H
