//===- minic/Token.h - MiniC token definitions ------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MiniC, the C subset used to reproduce the paper's
/// compiler pipeline (type-annotated IR + instrumentation pass). MiniC
/// covers the constructs the instrumentation schema cares about:
/// structs/unions, arrays, pointers, casts, malloc/free, and ordinary
/// statements/expressions.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_MINIC_TOKEN_H
#define EFFECTIVE_MINIC_TOKEN_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string_view>

namespace effective {
namespace minic {

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwInt,
  KwChar,
  KwFloat,
  KwDouble,
  KwLong,
  KwShort,
  KwVoid,
  KwUnsigned,
  KwSigned,
  KwStruct,
  KwUnion,
  KwSizeof,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwNull,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Arrow,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Exclaim,
  AmpAmp,
  PipePipe,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  ExclaimEqual,
  Equal,
  PlusPlus,
  MinusMinus,
  LessLess,
  GreaterGreater,
  PlusEqual,
  MinusEqual,
};

/// Returns a human-readable token-kind name for diagnostics.
std::string_view tokenKindName(TokenKind Kind);

/// One lexed token. Text views into the source buffer.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  SourceLoc Loc;
  /// Value for IntLiteral / CharLiteral.
  uint64_t IntValue = 0;
  /// Value for FloatLiteral.
  double FloatValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isOneOf(TokenKind A, TokenKind B) const { return is(A) || is(B); }
};

} // namespace minic
} // namespace effective

#endif // EFFECTIVE_MINIC_TOKEN_H
