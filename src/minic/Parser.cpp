//===- minic/Parser.cpp - MiniC recursive-descent parser ------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Parser.h"

#include "support/Compiler.h"

using namespace effective;
using namespace effective::minic;

bool Parser::expect(TokenKind Kind, const char *What) {
  if (Tok.is(Kind)) {
    consume();
    return true;
  }
  Diags.error(Tok.Loc, std::string("expected ") + What + " before '" +
                           std::string(Tok.Text) + "'");
  return false;
}

bool Parser::tokenStartsType() const {
  switch (Tok.Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwChar:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwLong:
  case TokenKind::KwShort:
  case TokenKind::KwVoid:
  case TokenKind::KwUnsigned:
  case TokenKind::KwSigned:
  case TokenKind::KwStruct:
  case TokenKind::KwUnion:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

const TypeInfo *Parser::parseBaseType() {
  TypeContext &Types = Ctx.types();
  switch (Tok.Kind) {
  case TokenKind::KwVoid:
    consume();
    return Types.getVoid();
  case TokenKind::KwChar:
    consume();
    return Types.getChar();
  case TokenKind::KwFloat:
    consume();
    return Types.getFloat();
  case TokenKind::KwDouble:
    consume();
    return Types.getDouble();
  case TokenKind::KwInt:
    consume();
    return Types.getInt();
  case TokenKind::KwShort:
    consume();
    if (Tok.is(TokenKind::KwInt))
      consume();
    return Types.getShort();
  case TokenKind::KwLong:
    consume();
    if (Tok.is(TokenKind::KwLong)) {
      consume();
      if (Tok.is(TokenKind::KwInt))
        consume();
      return Types.getLongLong();
    }
    if (Tok.is(TokenKind::KwInt))
      consume();
    if (Tok.is(TokenKind::KwDouble)) {
      consume();
      return Types.getLongDouble();
    }
    return Types.getLong();
  case TokenKind::KwSigned:
    consume();
    if (Tok.is(TokenKind::KwChar)) {
      consume();
      return Types.getSChar();
    }
    if (Tok.is(TokenKind::KwInt))
      consume();
    return Types.getInt();
  case TokenKind::KwUnsigned:
    consume();
    if (Tok.is(TokenKind::KwChar)) {
      consume();
      return Types.getUChar();
    }
    if (Tok.is(TokenKind::KwShort)) {
      consume();
      if (Tok.is(TokenKind::KwInt))
        consume();
      return Types.getUShort();
    }
    if (Tok.is(TokenKind::KwLong)) {
      consume();
      if (Tok.is(TokenKind::KwLong)) {
        consume();
        return Types.getULongLong();
      }
      if (Tok.is(TokenKind::KwInt))
        consume();
      return Types.getULong();
    }
    if (Tok.is(TokenKind::KwInt))
      consume();
    return Types.getUInt();
  case TokenKind::KwStruct:
  case TokenKind::KwUnion: {
    consume();
    if (!Tok.is(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected struct/union tag");
      return Types.getInt();
    }
    std::string_view Tag = Tok.Text;
    SourceLoc Loc = Tok.Loc;
    consume();
    RecordType *R = Ctx.lookupTag(Tag);
    if (!R) {
      Diags.error(Loc, "unknown struct/union tag '" + std::string(Tag) +
                           "'");
      return Types.getInt();
    }
    return R;
  }
  default:
    Diags.error(Tok.Loc, "expected type");
    return Types.getInt();
  }
}

const TypeInfo *Parser::parseTypeSpecifier() {
  const TypeInfo *T = parseBaseType();
  while (Tok.is(TokenKind::Star)) {
    consume();
    T = Ctx.types().getPointer(T);
  }
  return T;
}

const TypeInfo *Parser::applyArraySuffix(const TypeInfo *Base,
                                         std::vector<uint64_t> &Dims) {
  // int a[2][3] is an array of 2 arrays of 3 ints: fold inside out.
  const TypeInfo *T = Base;
  for (size_t I = Dims.size(); I > 0; --I)
    T = Ctx.types().getArray(T, Dims[I - 1]);
  return T;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

bool Parser::parseUnit(TranslationUnit &Unit) {
  while (!Tok.is(TokenKind::Eof)) {
    if (Tok.is(TokenKind::KwStruct) || Tok.is(TokenKind::KwUnion)) {
      // Could be a record definition or a declaration using one;
      // distinguish by looking for '{' after the tag. We cheat with a
      // tiny fixed lookahead: "struct tag {".
      // Save state by re-lexing is avoided: parseRecordDefinition is
      // chosen iff the tag is followed by '{'. We need two tokens of
      // lookahead, so parse the type speculatively.
      TokenKind Keyword = Tok.Kind;
      // Peek: consume 'struct' and the tag, then check.
      Token Saved = Tok;
      consume();
      if (Tok.is(TokenKind::Identifier)) {
        Token TagTok = Tok;
        consume();
        if (Tok.is(TokenKind::LBrace)) {
          // Rebuild a definition parse: register + parse body.
          std::string_view Tag = Ctx.internString(TagTok.Text);
          consume(); // '{'
          RecordBuilder Builder(Ctx.types(),
                                Keyword == TokenKind::KwStruct
                                    ? TypeKind::Struct
                                    : TypeKind::Union,
                                Tag);
          Ctx.registerTag(Tag, Builder.record());
          while (!Tok.is(TokenKind::RBrace) && !Tok.is(TokenKind::Eof)) {
            const TypeInfo *FieldType = parseTypeSpecifier();
            if (!Tok.is(TokenKind::Identifier)) {
              Diags.error(Tok.Loc, "expected field name");
              break;
            }
            std::string_view FieldName = Ctx.internString(Tok.Text);
            consume();
            std::vector<uint64_t> Dims;
            bool IsFam = false;
            while (Tok.is(TokenKind::LBracket)) {
              consume();
              if (Tok.is(TokenKind::RBracket)) {
                IsFam = true;
                consume();
                break;
              }
              if (!Tok.is(TokenKind::IntLiteral)) {
                Diags.error(Tok.Loc, "expected array bound");
                break;
              }
              Dims.push_back(Tok.IntValue);
              consume();
              expect(TokenKind::RBracket, "']'");
            }
            if (IsFam)
              Builder.addFlexibleArray(FieldName, FieldType);
            else
              Builder.addField(FieldName,
                               applyArraySuffix(FieldType, Dims));
            expect(TokenKind::Semicolon, "';'");
          }
          expect(TokenKind::RBrace, "'}'");
          expect(TokenKind::Semicolon, "';'");
          Builder.finish();
          continue;
        }
        // Not a definition: "struct tag" begins a declaration. Resolve
        // the record and continue as a type.
        RecordType *R = Ctx.lookupTag(TagTok.Text);
        if (!R) {
          Diags.error(TagTok.Loc, "unknown struct/union tag '" +
                                      std::string(TagTok.Text) + "'");
          return false;
        }
        const TypeInfo *T = R;
        while (Tok.is(TokenKind::Star)) {
          consume();
          T = Ctx.types().getPointer(T);
        }
        if (!Tok.is(TokenKind::Identifier)) {
          Diags.error(Tok.Loc, "expected declarator name");
          return false;
        }
        std::string_view Name = Ctx.internString(Tok.Text);
        SourceLoc Loc = Tok.Loc;
        consume();
        if (Tok.is(TokenKind::LParen)) {
          FunctionDecl *F = parseFunction(T, Name, Loc, Unit);
          if (!F)
            return false;
          continue;
        }
        VarDecl *G = parseVarDeclTail(T, Name, /*IsGlobal=*/true, Loc);
        if (!G)
          return false;
        Unit.Globals.push_back(G);
        continue;
      }
      Diags.error(Saved.Loc, "expected struct/union tag");
      return false;
    }

    if (!tokenStartsType()) {
      Diags.error(Tok.Loc, "expected declaration");
      return false;
    }
    const TypeInfo *T = parseTypeSpecifier();
    if (!Tok.is(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected declarator name");
      return false;
    }
    std::string_view Name = Ctx.internString(Tok.Text);
    SourceLoc Loc = Tok.Loc;
    consume();
    if (Tok.is(TokenKind::LParen)) {
      FunctionDecl *F = parseFunction(T, Name, Loc, Unit);
      if (!F)
        return false;
      continue;
    }
    VarDecl *G = parseVarDeclTail(T, Name, /*IsGlobal=*/true, Loc);
    if (!G)
      return false;
    Unit.Globals.push_back(G);
  }
  return !Diags.hasErrors();
}

FunctionDecl *Parser::parseFunction(const TypeInfo *ReturnType,
                                    std::string_view Name, SourceLoc Loc,
                                    TranslationUnit &Unit) {
  expect(TokenKind::LParen, "'('");
  std::vector<VarDecl *> Params;
  if (!Tok.is(TokenKind::RParen)) {
    if (Tok.is(TokenKind::KwVoid)) {
      // "(void)" parameter list.
      Token Saved = Tok;
      consume();
      if (!Tok.is(TokenKind::RParen)) {
        // It was "void *x" or similar: rebuild the type.
        const TypeInfo *T = Ctx.types().getVoid();
        while (Tok.is(TokenKind::Star)) {
          consume();
          T = Ctx.types().getPointer(T);
        }
        if (!Tok.is(TokenKind::Identifier)) {
          Diags.error(Saved.Loc, "expected parameter name");
          return nullptr;
        }
        Params.push_back(Ctx.create<VarDecl>(Ctx.internString(Tok.Text), T,
                                             nullptr, false, Tok.Loc));
        consume();
        while (Tok.is(TokenKind::Comma)) {
          consume();
          const TypeInfo *PT = parseTypeSpecifier();
          if (!Tok.is(TokenKind::Identifier)) {
            Diags.error(Tok.Loc, "expected parameter name");
            return nullptr;
          }
          Params.push_back(Ctx.create<VarDecl>(Ctx.internString(Tok.Text),
                                               PT, nullptr, false,
                                               Tok.Loc));
          consume();
        }
      }
    } else {
      do {
        const TypeInfo *PT = parseTypeSpecifier();
        if (!Tok.is(TokenKind::Identifier)) {
          Diags.error(Tok.Loc, "expected parameter name");
          return nullptr;
        }
        Params.push_back(Ctx.create<VarDecl>(Ctx.internString(Tok.Text),
                                             PT, nullptr, false, Tok.Loc));
        consume();
      } while (Tok.is(TokenKind::Comma) && (consume(), true));
    }
  }
  expect(TokenKind::RParen, "')'");

  auto *F = Ctx.create<FunctionDecl>(Name, ReturnType,
                                     Ctx.makeSpan(Params), Loc);
  Unit.Functions.push_back(F);
  if (Tok.is(TokenKind::Semicolon)) {
    consume(); // Declaration only.
    return F;
  }
  F->setBody(parseBlock());
  return F;
}

VarDecl *Parser::parseVarDeclTail(const TypeInfo *Type,
                                  std::string_view Name, bool IsGlobal,
                                  SourceLoc Loc) {
  std::vector<uint64_t> Dims;
  while (Tok.is(TokenKind::LBracket)) {
    consume();
    if (!Tok.is(TokenKind::IntLiteral)) {
      Diags.error(Tok.Loc, "expected array bound");
      return nullptr;
    }
    Dims.push_back(Tok.IntValue);
    consume();
    expect(TokenKind::RBracket, "']'");
  }
  Type = applyArraySuffix(Type, Dims);
  Expr *Init = nullptr;
  if (Tok.is(TokenKind::Equal)) {
    consume();
    Init = parseExpr();
  }
  expect(TokenKind::Semicolon, "';'");
  return Ctx.create<VarDecl>(Name, Type, Init, IsGlobal, Loc);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  expect(TokenKind::LBrace, "'{'");
  std::vector<Stmt *> Body;
  while (!Tok.is(TokenKind::RBrace) && !Tok.is(TokenKind::Eof))
    Body.push_back(parseStatement());
  expect(TokenKind::RBrace, "'}'");
  return Ctx.create<CompoundStmt>(Ctx.makeSpan(Body), Loc);
}

Stmt *Parser::parseStatement() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf: {
    consume();
    expect(TokenKind::LParen, "'('");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "')'");
    Stmt *Then = parseStatement();
    Stmt *Else = nullptr;
    if (Tok.is(TokenKind::KwElse)) {
      consume();
      Else = parseStatement();
    }
    return Ctx.create<IfStmt>(Cond, Then, Else, Loc);
  }
  case TokenKind::KwWhile: {
    consume();
    expect(TokenKind::LParen, "'('");
    Expr *Cond = parseExpr();
    expect(TokenKind::RParen, "')'");
    return Ctx.create<WhileStmt>(Cond, parseStatement(), Loc);
  }
  case TokenKind::KwFor: {
    consume();
    expect(TokenKind::LParen, "'('");
    Stmt *Init = nullptr;
    if (!Tok.is(TokenKind::Semicolon))
      Init = parseStatement(); // Covers both decls and exprs (with ';').
    else
      consume();
    Expr *Cond = nullptr;
    if (!Tok.is(TokenKind::Semicolon))
      Cond = parseExpr();
    expect(TokenKind::Semicolon, "';'");
    Expr *Step = nullptr;
    if (!Tok.is(TokenKind::RParen))
      Step = parseExpr();
    expect(TokenKind::RParen, "')'");
    return Ctx.create<ForStmt>(Init, Cond, Step, parseStatement(), Loc);
  }
  case TokenKind::KwReturn: {
    consume();
    Expr *Value = nullptr;
    if (!Tok.is(TokenKind::Semicolon))
      Value = parseExpr();
    expect(TokenKind::Semicolon, "';'");
    return Ctx.create<ReturnStmt>(Value, Loc);
  }
  case TokenKind::KwBreak:
    consume();
    expect(TokenKind::Semicolon, "';'");
    return Ctx.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    expect(TokenKind::Semicolon, "';'");
    return Ctx.create<ContinueStmt>(Loc);
  default:
    break;
  }

  if (tokenStartsType()) {
    const TypeInfo *T = parseTypeSpecifier();
    if (!Tok.is(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected variable name");
      consume();
      return Ctx.create<BreakStmt>(Loc); // Error recovery placeholder.
    }
    std::string_view Name = Ctx.internString(Tok.Text);
    SourceLoc NameLoc = Tok.Loc;
    consume();
    VarDecl *D = parseVarDeclTail(T, Name, /*IsGlobal=*/false, NameLoc);
    if (!D)
      return Ctx.create<BreakStmt>(Loc);
    return Ctx.create<DeclStmt>(D, Loc);
  }

  Expr *E = parseExpr();
  expect(TokenKind::Semicolon, "';'");
  return Ctx.create<ExprStmt>(E, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() { return parseAssignment(); }

Expr *Parser::parseAssignment() {
  Expr *LHS = parseBinary(0);
  SourceLoc Loc = Tok.Loc;
  if (Tok.is(TokenKind::Equal)) {
    consume();
    return Ctx.create<AssignExpr>(AssignExpr::OpKind::Plain, LHS,
                                  parseAssignment(), Loc);
  }
  if (Tok.is(TokenKind::PlusEqual)) {
    consume();
    return Ctx.create<AssignExpr>(AssignExpr::OpKind::Add, LHS,
                                  parseAssignment(), Loc);
  }
  if (Tok.is(TokenKind::MinusEqual)) {
    consume();
    return Ctx.create<AssignExpr>(AssignExpr::OpKind::Sub, LHS,
                                  parseAssignment(), Loc);
  }
  return LHS;
}

namespace {

struct OpInfo {
  BinaryOp Op;
  int Prec;
};

bool binaryOpFor(TokenKind Kind, OpInfo &Info) {
  switch (Kind) {
  case TokenKind::PipePipe:
    Info = {BinaryOp::LogicalOr, 1};
    return true;
  case TokenKind::AmpAmp:
    Info = {BinaryOp::LogicalAnd, 2};
    return true;
  case TokenKind::Pipe:
    Info = {BinaryOp::BitOr, 3};
    return true;
  case TokenKind::Caret:
    Info = {BinaryOp::BitXor, 4};
    return true;
  case TokenKind::Amp:
    Info = {BinaryOp::BitAnd, 5};
    return true;
  case TokenKind::EqualEqual:
    Info = {BinaryOp::Eq, 6};
    return true;
  case TokenKind::ExclaimEqual:
    Info = {BinaryOp::Ne, 6};
    return true;
  case TokenKind::Less:
    Info = {BinaryOp::Lt, 7};
    return true;
  case TokenKind::Greater:
    Info = {BinaryOp::Gt, 7};
    return true;
  case TokenKind::LessEqual:
    Info = {BinaryOp::Le, 7};
    return true;
  case TokenKind::GreaterEqual:
    Info = {BinaryOp::Ge, 7};
    return true;
  case TokenKind::LessLess:
    Info = {BinaryOp::Shl, 8};
    return true;
  case TokenKind::GreaterGreater:
    Info = {BinaryOp::Shr, 8};
    return true;
  case TokenKind::Plus:
    Info = {BinaryOp::Add, 9};
    return true;
  case TokenKind::Minus:
    Info = {BinaryOp::Sub, 9};
    return true;
  case TokenKind::Star:
    Info = {BinaryOp::Mul, 10};
    return true;
  case TokenKind::Slash:
    Info = {BinaryOp::Div, 10};
    return true;
  case TokenKind::Percent:
    Info = {BinaryOp::Rem, 10};
    return true;
  default:
    return false;
  }
}

} // namespace

Expr *Parser::parseBinary(int MinPrec) {
  Expr *LHS = parseUnary();
  for (;;) {
    OpInfo Info;
    if (!binaryOpFor(Tok.Kind, Info) || Info.Prec < MinPrec)
      return LHS;
    SourceLoc Loc = Tok.Loc;
    consume();
    Expr *RHS = parseBinary(Info.Prec + 1);
    LHS = Ctx.create<BinaryExpr>(Info.Op, LHS, RHS, Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::Minus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  case TokenKind::Exclaim:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOp::LogicalNot, parseUnary(), Loc);
  case TokenKind::Tilde:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOp::BitNot, parseUnary(), Loc);
  case TokenKind::Amp:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOp::AddrOf, parseUnary(), Loc);
  case TokenKind::Star:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOp::Deref, parseUnary(), Loc);
  case TokenKind::PlusPlus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOp::PreInc, parseUnary(), Loc);
  case TokenKind::MinusMinus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOp::PreDec, parseUnary(), Loc);
  case TokenKind::KwSizeof: {
    consume();
    expect(TokenKind::LParen, "'('");
    const TypeInfo *T = parseTypeSpecifier();
    expect(TokenKind::RParen, "')'");
    return Ctx.create<SizeofExpr>(T, Loc);
  }
  case TokenKind::LParen:
    // Cast or parenthesized expression: a cast iff a type follows.
    {
      // One-token lookahead suffices: types start with a keyword.
      // (struct tags always appear with the 'struct' keyword.)
      Token Open = Tok;
      consume();
      if (tokenStartsType()) {
        const TypeInfo *T = parseTypeSpecifier();
        expect(TokenKind::RParen, "')'");
        return Ctx.create<CastExpr>(T, parseUnary(), Open.Loc);
      }
      Expr *Inner = parseExpr();
      expect(TokenKind::RParen, "')'");
      // Continue with postfix operators on the parenthesized value.
      Expr *E = Inner;
      for (;;) {
        if (Tok.is(TokenKind::LBracket)) {
          SourceLoc L = Tok.Loc;
          consume();
          Expr *Index = parseExpr();
          expect(TokenKind::RBracket, "']'");
          E = Ctx.create<IndexExpr>(E, Index, L);
          continue;
        }
        if (Tok.is(TokenKind::Dot) || Tok.is(TokenKind::Arrow)) {
          bool Arrow = Tok.is(TokenKind::Arrow);
          SourceLoc L = Tok.Loc;
          consume();
          if (!Tok.is(TokenKind::Identifier)) {
            Diags.error(Tok.Loc, "expected member name");
            return E;
          }
          E = Ctx.create<MemberExpr>(E, Ctx.internString(Tok.Text), Arrow,
                                     L);
          consume();
          continue;
        }
        return E;
      }
    }
  default:
    return parsePostfix();
  }
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  for (;;) {
    if (Tok.is(TokenKind::LBracket)) {
      SourceLoc Loc = Tok.Loc;
      consume();
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "']'");
      E = Ctx.create<IndexExpr>(E, Index, Loc);
      continue;
    }
    if (Tok.is(TokenKind::Dot) || Tok.is(TokenKind::Arrow)) {
      bool Arrow = Tok.is(TokenKind::Arrow);
      SourceLoc Loc = Tok.Loc;
      consume();
      if (!Tok.is(TokenKind::Identifier)) {
        Diags.error(Tok.Loc, "expected member name");
        return E;
      }
      E = Ctx.create<MemberExpr>(E, Ctx.internString(Tok.Text), Arrow,
                                 Loc);
      consume();
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::IntLiteral: {
    uint64_t V = Tok.IntValue;
    consume();
    return Ctx.create<IntLiteralExpr>(V, Loc);
  }
  case TokenKind::CharLiteral: {
    uint64_t V = Tok.IntValue;
    consume();
    return Ctx.create<IntLiteralExpr>(V, Loc);
  }
  case TokenKind::FloatLiteral: {
    double V = Tok.FloatValue;
    consume();
    return Ctx.create<FloatLiteralExpr>(V, Loc);
  }
  case TokenKind::StringLiteral: {
    // Decode escapes; strip quotes.
    std::string Decoded;
    std::string_view Raw = Tok.Text.substr(1, Tok.Text.size() - 2);
    for (size_t I = 0; I < Raw.size(); ++I) {
      if (Raw[I] == '\\' && I + 1 < Raw.size()) {
        char C = Raw[++I];
        Decoded.push_back(C == 'n'   ? '\n'
                          : C == 't' ? '\t'
                          : C == '0' ? '\0'
                                     : C);
      } else {
        Decoded.push_back(Raw[I]);
      }
    }
    consume();
    return Ctx.create<StringLiteralExpr>(Ctx.internString(Decoded), Loc);
  }
  case TokenKind::KwNull:
    consume();
    return Ctx.create<NullExpr>(Loc);
  case TokenKind::Identifier: {
    std::string_view Name = Ctx.internString(Tok.Text);
    consume();
    if (!Tok.is(TokenKind::LParen))
      return Ctx.create<VarRefExpr>(Name, Loc);
    consume(); // '('
    std::vector<Expr *> Args;
    if (!Tok.is(TokenKind::RParen)) {
      Args.push_back(parseAssignment());
      while (Tok.is(TokenKind::Comma)) {
        consume();
        Args.push_back(parseAssignment());
      }
    }
    expect(TokenKind::RParen, "')'");
    if (Name == "malloc") {
      if (Args.size() != 1) {
        Diags.error(Loc, "malloc takes exactly one argument");
        return Ctx.create<NullExpr>(Loc);
      }
      return Ctx.create<MallocExpr>(Args[0], Loc);
    }
    if (Name == "free") {
      if (Args.size() != 1) {
        Diags.error(Loc, "free takes exactly one argument");
        return Ctx.create<NullExpr>(Loc);
      }
      return Ctx.create<FreeExpr>(Args[0], Loc);
    }
    return Ctx.create<CallExpr>(Name, Ctx.makeSpan(Args), Loc);
  }
  default:
    Diags.error(Loc, "expected expression before '" +
                         std::string(Tok.Text) + "'");
    consume();
    return Ctx.create<NullExpr>(Loc);
  }
}
