//===- minic/Lexer.h - MiniC lexer ------------------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Supports // and /* */ comments,
/// decimal/hex integer literals, floating literals, character and
/// string literals with the common escapes.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_MINIC_LEXER_H
#define EFFECTIVE_MINIC_LEXER_H

#include "minic/Token.h"

namespace effective {
namespace minic {

/// Tokenizes one source buffer. The buffer must outlive the lexer and
/// all tokens (token text is a view into it).
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the next token (Eof at end; errors produce diagnostics and
  /// skip the offending character).
  Token next();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc location() const { return SourceLoc{Line, Column}; }

  Token makeToken(TokenKind Kind, size_t Begin, SourceLoc Loc) const;
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexCharLiteral(SourceLoc Loc);
  Token lexStringLiteral(SourceLoc Loc);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace minic
} // namespace effective

#endif // EFFECTIVE_MINIC_LEXER_H
