//===- minic/Parser.h - MiniC recursive-descent parser ----------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC. Types are resolved during
/// parsing (MiniC type syntax always begins with a type keyword or
/// struct/union tag, so cast disambiguation is trivial). The grammar,
/// roughly:
///
///   unit      := (recorddef | funcdef | globalvar)*
///   recorddef := ('struct'|'union') tag '{' (type declarator ';')* '}' ';'
///   type      := base ('*')*          base := int/char/.../struct tag
///   funcdef   := type name '(' params ')' (block | ';')
///   stmt      := block | if | while | for | return | break | continue
///              | type declarator ('=' expr)? ';' | expr ';'
///   expr      := assignment with the usual C precedence levels
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_MINIC_PARSER_H
#define EFFECTIVE_MINIC_PARSER_H

#include "minic/AST.h"
#include "minic/Lexer.h"

namespace effective {
namespace minic {

/// Parses one MiniC source buffer into a TranslationUnit.
class Parser {
public:
  Parser(std::string_view Source, ASTContext &Ctx, DiagnosticEngine &Diags)
      : Lex(Source, Diags), Ctx(Ctx), Diags(Diags) {
    Tok = Lex.next();
  }

  /// Parses the whole unit; returns false if any syntax error occurred.
  bool parseUnit(TranslationUnit &Unit);

private:
  // Token helpers.
  void consume() { Tok = Lex.next(); }
  bool expect(TokenKind Kind, const char *What);
  bool tokenStartsType() const;

  // Types.
  const TypeInfo *parseTypeSpecifier();
  const TypeInfo *parseBaseType();
  const TypeInfo *applyArraySuffix(const TypeInfo *Base,
                                   std::vector<uint64_t> &Dims);

  // Declarations.
  FunctionDecl *parseFunction(const TypeInfo *ReturnType,
                              std::string_view Name, SourceLoc Loc,
                              TranslationUnit &Unit);
  VarDecl *parseVarDeclTail(const TypeInfo *Type, std::string_view Name,
                            bool IsGlobal, SourceLoc Loc);

  // Statements.
  Stmt *parseStatement();
  CompoundStmt *parseBlock();

  // Expressions (precedence climbing).
  Expr *parseExpr();
  Expr *parseAssignment();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  Lexer Lex;
  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  Token Tok;
};

} // namespace minic
} // namespace effective

#endif // EFFECTIVE_MINIC_PARSER_H
