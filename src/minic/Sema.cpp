//===- minic/Sema.cpp - MiniC semantic analysis ---------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Sema.h"

#include "support/Compiler.h"

using namespace effective;
using namespace effective::minic;

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::pushScope() { Scopes.emplace_back(); }

void Sema::popScope() { Scopes.pop_back(); }

VarDecl *Sema::lookupVar(std::string_view Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void Sema::declareVar(VarDecl *D) {
  auto &Scope = Scopes.back();
  if (Scope.count(D->name()))
    Diags.error(D->loc(),
                "redefinition of '" + std::string(D->name()) + "'");
  Scope[D->name()] = D;
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

const TypeInfo *Sema::decay(const TypeInfo *T) {
  if (const auto *A = dyn_cast<ArrayType>(T))
    return Ctx.types().getPointer(A->element());
  return T;
}

const TypeInfo *Sema::arithCommonType(const TypeInfo *A,
                                      const TypeInfo *B) {
  TypeContext &Types = Ctx.types();
  if (A->kind() == TypeKind::LongDouble || B->kind() == TypeKind::LongDouble)
    return Types.getLongDouble();
  if (A->kind() == TypeKind::Double || B->kind() == TypeKind::Double)
    return Types.getDouble();
  if (A->kind() == TypeKind::Float || B->kind() == TypeKind::Float)
    return Types.getFloat();
  // Integers: promote to the larger, preferring the unsigned variant on
  // ties (a simplification of the C rules).
  const TypeInfo *Winner = A->size() >= B->size() ? A : B;
  if (Winner->size() < Types.getInt()->size())
    return Types.getInt();
  return Winner;
}

bool Sema::assignable(const TypeInfo *To, const TypeInfo *From) {
  if (To == From)
    return true;
  bool ToNum = To->isInteger() || To->isFloating();
  bool FromNum = From->isInteger() || From->isFloating();
  if (ToNum && FromNum)
    return true;
  // C-style permissive pointer assignments (the dynamic checks will
  // catch actual misuse at runtime, which is the whole point).
  if (To->isPointer() && (From->isPointer() || From->isInteger()))
    return true;
  if (To->isInteger() && From->isPointer())
    return true;
  return false;
}

void Sema::inferMallocType(Expr *Value, const TypeInfo *TargetType) {
  auto *M = dyn_cast_if_present<MallocExpr>(Value);
  if (!M || M->allocType())
    return;
  const auto *PT = dyn_cast<PointerType>(TargetType);
  if (!PT || PT->pointee()->isVoid())
    return;
  M->setAllocType(PT->pointee());
  M->setType(TargetType);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const TypeInfo *Sema::checkExpr(Expr *E) {
  TypeContext &Types = Ctx.types();
  switch (E->kind()) {
  case ExprKind::IntLiteral: {
    auto *Lit = cast<IntLiteralExpr>(E);
    E->setType(Lit->value() > 0x7fffffffull ? Types.getLong()
                                            : Types.getInt());
    break;
  }
  case ExprKind::FloatLiteral:
    E->setType(Types.getDouble());
    break;
  case ExprKind::StringLiteral: {
    auto *S = cast<StringLiteralExpr>(E);
    E->setType(Types.getArray(Types.getChar(), S->bytes().size() + 1));
    break;
  }
  case ExprKind::Null:
    E->setType(Types.getPointer(Types.getVoid()));
    break;
  case ExprKind::VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    VarDecl *D = lookupVar(Ref->name());
    if (!D) {
      Diags.error(E->loc(), "use of undeclared identifier '" +
                                std::string(Ref->name()) + "'");
      E->setType(Types.getInt());
      break;
    }
    Ref->setDecl(D);
    E->setType(D->type());
    E->setLValue(true);
    break;
  }
  case ExprKind::Unary:
    E->setType(checkUnary(cast<UnaryExpr>(E)));
    break;
  case ExprKind::Binary:
    E->setType(checkBinary(cast<BinaryExpr>(E)));
    break;
  case ExprKind::Assign:
    E->setType(checkAssign(cast<AssignExpr>(E)));
    break;
  case ExprKind::Index:
    E->setType(checkIndex(cast<IndexExpr>(E)));
    E->setLValue(true);
    break;
  case ExprKind::Member:
    E->setType(checkMember(cast<MemberExpr>(E)));
    E->setLValue(true);
    break;
  case ExprKind::Call:
    E->setType(checkCall(cast<CallExpr>(E)));
    break;
  case ExprKind::Cast:
    E->setType(checkCast(cast<CastExpr>(E)));
    break;
  case ExprKind::SizeofType:
    E->setType(Types.getULong());
    break;
  case ExprKind::Malloc: {
    auto *M = cast<MallocExpr>(E);
    checkExpr(M->size());
    if (!M->size()->type()->isInteger())
      Diags.error(E->loc(), "malloc size must be an integer");
    E->setType(Types.getPointer(Types.getVoid()));
    break;
  }
  case ExprKind::Free: {
    auto *F = cast<FreeExpr>(E);
    const TypeInfo *T = decay(checkExpr(F->ptr()));
    if (!T->isPointer())
      Diags.error(E->loc(), "free requires a pointer");
    E->setType(Types.getVoid());
    break;
  }
  }
  assert(E->type() && "expression not typed");
  return E->type();
}

const TypeInfo *Sema::checkUnary(UnaryExpr *E) {
  TypeContext &Types = Ctx.types();
  const TypeInfo *Sub = checkExpr(E->sub());
  switch (E->op()) {
  case UnaryOp::Neg:
  case UnaryOp::BitNot:
    if (!Sub->isInteger() && !Sub->isFloating())
      Diags.error(E->loc(), "operand must be arithmetic");
    return Sub;
  case UnaryOp::LogicalNot:
    return Types.getInt();
  case UnaryOp::AddrOf:
    if (!E->sub()->isLValue())
      Diags.error(E->loc(), "cannot take the address of an rvalue");
    return Types.getPointer(Sub);
  case UnaryOp::Deref: {
    const TypeInfo *T = decay(Sub);
    const auto *PT = dyn_cast<PointerType>(T);
    if (!PT) {
      Diags.error(E->loc(), "cannot dereference non-pointer type " +
                                Sub->str());
      return Types.getInt();
    }
    if (PT->pointee()->isVoid()) {
      Diags.error(E->loc(), "cannot dereference void pointer");
      return Types.getInt();
    }
    E->setLValue(true);
    return PT->pointee();
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
    if (!E->sub()->isLValue())
      Diags.error(E->loc(), "operand of ++/-- must be an lvalue");
    return Sub;
  }
  EFFSAN_UNREACHABLE("unknown unary operator");
}

const TypeInfo *Sema::checkBinary(BinaryExpr *E) {
  TypeContext &Types = Ctx.types();
  const TypeInfo *L = decay(checkExpr(E->lhs()));
  const TypeInfo *R = decay(checkExpr(E->rhs()));
  switch (E->op()) {
  case BinaryOp::Add:
    if (L->isPointer() && R->isInteger())
      return L;
    if (L->isInteger() && R->isPointer())
      return R;
    [[fallthrough]];
  case BinaryOp::Sub:
    if (E->op() == BinaryOp::Sub) {
      if (L->isPointer() && R->isPointer())
        return Types.getLong();
      if (L->isPointer() && R->isInteger())
        return L;
    }
    [[fallthrough]];
  case BinaryOp::Mul:
  case BinaryOp::Div:
    if ((!L->isInteger() && !L->isFloating()) ||
        (!R->isInteger() && !R->isFloating())) {
      Diags.error(E->loc(), "invalid operands to arithmetic operator");
      return Types.getInt();
    }
    return arithCommonType(L, R);
  case BinaryOp::Rem:
  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor:
  case BinaryOp::Shl:
  case BinaryOp::Shr:
    if (!L->isInteger() || !R->isInteger()) {
      Diags.error(E->loc(), "operands must be integers");
      return Types.getInt();
    }
    return arithCommonType(L, R);
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return Types.getInt();
  }
  EFFSAN_UNREACHABLE("unknown binary operator");
}

const TypeInfo *Sema::checkAssign(AssignExpr *E) {
  const TypeInfo *Target = checkExpr(E->target());
  checkExpr(E->value());
  if (!E->target()->isLValue())
    Diags.error(E->loc(), "assignment target must be an lvalue");
  // The paper's malloc inference: T *p; p = malloc(n);
  if (E->op() == AssignExpr::OpKind::Plain)
    inferMallocType(E->value(), decay(Target));
  const TypeInfo *Value = decay(E->value()->type());
  if (!assignable(decay(Target), Value))
    Diags.error(E->loc(), "cannot assign " + Value->str() + " to " +
                              Target->str());
  return Target;
}

const TypeInfo *Sema::checkIndex(IndexExpr *E) {
  const TypeInfo *Base = checkExpr(E->base());
  const TypeInfo *Index = checkExpr(E->index());
  if (!Index->isInteger())
    Diags.error(E->loc(), "array index must be an integer");
  if (const auto *A = dyn_cast<ArrayType>(Base))
    return A->element();
  if (const auto *P = dyn_cast<PointerType>(Base)) {
    if (P->pointee()->isVoid() || P->pointee()->size() == 0) {
      Diags.error(E->loc(), "cannot index incomplete pointee type");
      return Ctx.types().getInt();
    }
    return P->pointee();
  }
  Diags.error(E->loc(), "subscripted value is not an array or pointer");
  return Ctx.types().getInt();
}

const TypeInfo *Sema::checkMember(MemberExpr *E) {
  const TypeInfo *Base = checkExpr(E->base());
  const RecordType *Record = nullptr;
  if (E->isArrow()) {
    const auto *PT = dyn_cast<PointerType>(decay(Base));
    if (PT)
      Record = dyn_cast<RecordType>(PT->pointee());
  } else {
    Record = dyn_cast<RecordType>(Base);
  }
  if (!Record) {
    Diags.error(E->loc(), std::string("member access on non-record type ") +
                              Base->str());
    return Ctx.types().getInt();
  }
  if (!Record->isComplete()) {
    Diags.error(E->loc(), "member access on incomplete type " +
                              Record->str());
    return Ctx.types().getInt();
  }
  for (const FieldInfo &F : Record->fields()) {
    if (F.Name == E->member()) {
      E->setField(&F);
      return F.Type;
    }
  }
  Diags.error(E->loc(), "no member named '" + std::string(E->member()) +
                            "' in " + Record->str());
  return Ctx.types().getInt();
}

const TypeInfo *Sema::checkCall(CallExpr *E) {
  FunctionDecl *Callee = Unit->findFunction(E->callee());
  if (!Callee) {
    // Builtins have no FunctionDecl; lowering resolves them by name.
    TypeContext &Types = Ctx.types();
    const TypeInfo *ParamType = nullptr;
    if (E->callee() == "print_int")
      ParamType = Types.getLong();
    else if (E->callee() == "print_float")
      ParamType = Types.getDouble();
    else if (E->callee() == "print_str")
      ParamType = Types.getPointer(Types.getChar());
    if (ParamType) {
      if (E->args().size() != 1) {
        Diags.error(E->loc(), "wrong number of arguments to '" +
                                  std::string(E->callee()) + "'");
      } else {
        const TypeInfo *Arg = decay(checkExpr(E->args()[0]));
        if (!assignable(ParamType, Arg))
          Diags.error(E->args()[0]->loc(), "cannot pass " + Arg->str() +
                                               " as " + ParamType->str());
      }
      return Types.getVoid();
    }
    Diags.error(E->loc(), "call to undeclared function '" +
                              std::string(E->callee()) + "'");
    for (Expr *Arg : E->args())
      checkExpr(Arg);
    return Ctx.types().getInt();
  }
  E->setDecl(Callee);
  if (E->args().size() != Callee->params().size())
    Diags.error(E->loc(), "wrong number of arguments to '" +
                              std::string(E->callee()) + "'");
  for (size_t I = 0; I < E->args().size(); ++I) {
    const TypeInfo *Arg = decay(checkExpr(E->args()[I]));
    if (I < Callee->params().size()) {
      const TypeInfo *Param = Callee->params()[I]->type();
      // Malloc passed directly as a typed pointer argument.
      inferMallocType(E->args()[I], decay(Param));
      if (!assignable(decay(Param), Arg))
        Diags.error(E->args()[I]->loc(),
                    "cannot pass " + Arg->str() + " as " + Param->str());
    }
  }
  return Callee->returnType();
}

const TypeInfo *Sema::checkCast(CastExpr *E) {
  checkExpr(E->sub());
  // The paper's primary inference: (T *)malloc(n) binds T.
  inferMallocType(E->sub(), E->target());
  return E->target();
}

//===----------------------------------------------------------------------===//
// Statements and declarations
//===----------------------------------------------------------------------===//

void Sema::checkVarDecl(VarDecl *D) {
  if (D->type()->isVoid()) {
    Diags.error(D->loc(), "variable '" + std::string(D->name()) +
                              "' has void type");
  }
  if (const auto *R = dyn_cast<RecordType>(D->type()))
    if (!R->isComplete())
      Diags.error(D->loc(), "variable of incomplete type " + R->str());
  if (D->init()) {
    checkExpr(D->init());
    inferMallocType(D->init(), decay(D->type()));
    if (!assignable(decay(D->type()), decay(D->init()->type())))
      Diags.error(D->loc(), "cannot initialize " + D->type()->str() +
                                " with " + D->init()->type()->str());
  }
  declareVar(D);
}

void Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Expr:
    checkExpr(cast<ExprStmt>(S)->expr());
    return;
  case StmtKind::Decl:
    checkVarDecl(cast<DeclStmt>(S)->decl());
    return;
  case StmtKind::Compound: {
    pushScope();
    for (Stmt *Child : cast<CompoundStmt>(S)->body())
      checkStmt(Child);
    popScope();
    return;
  }
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    checkExpr(If->cond());
    checkStmt(If->thenStmt());
    if (If->elseStmt())
      checkStmt(If->elseStmt());
    return;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    checkExpr(While->cond());
    checkStmt(While->body());
    return;
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    pushScope();
    if (For->init())
      checkStmt(For->init());
    if (For->cond())
      checkExpr(For->cond());
    if (For->step())
      checkExpr(For->step());
    checkStmt(For->body());
    popScope();
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    const TypeInfo *Expected = CurrentFunction->returnType();
    if (Ret->value()) {
      const TypeInfo *Got = decay(checkExpr(Ret->value()));
      if (Expected->isVoid())
        Diags.error(S->loc(), "void function returns a value");
      else if (!assignable(Expected, Got))
        Diags.error(S->loc(), "cannot return " + Got->str() + " from a "
                                  "function returning " + Expected->str());
    } else if (!Expected->isVoid()) {
      Diags.error(S->loc(), "non-void function must return a value");
    }
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

void Sema::checkFunction(FunctionDecl *F) {
  CurrentFunction = F;
  pushScope();
  for (VarDecl *Param : F->params())
    declareVar(Param);
  if (F->body())
    checkStmt(F->body());
  popScope();
  CurrentFunction = nullptr;
}

bool Sema::check(TranslationUnit &TheUnit) {
  Unit = &TheUnit;
  pushScope(); // Global scope.
  for (VarDecl *G : TheUnit.Globals)
    checkVarDecl(G);
  for (FunctionDecl *F : TheUnit.Functions)
    checkFunction(F);
  popScope();
  Unit = nullptr;
  return !Diags.hasErrors();
}
