//===- minic/Lexer.cpp - MiniC lexer --------------------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"

#include "support/Compiler.h"

#include <cctype>
#include <cstdlib>
#include <string>

using namespace effective;
using namespace effective::minic;

std::string_view effective::minic::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "floating literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwUnion:
    return "'union'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Equal:
    return "'='";
  default:
    return "token";
  }
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = location();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, size_t Begin, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Text = Source.substr(Begin, Pos - Begin);
  T.Loc = Loc;
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Begin = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  Token T = makeToken(TokenKind::Identifier, Begin, Loc);

  struct Keyword {
    std::string_view Text;
    TokenKind Kind;
  };
  static constexpr Keyword Keywords[] = {
      {"int", TokenKind::KwInt},         {"char", TokenKind::KwChar},
      {"float", TokenKind::KwFloat},     {"double", TokenKind::KwDouble},
      {"long", TokenKind::KwLong},       {"short", TokenKind::KwShort},
      {"void", TokenKind::KwVoid},       {"unsigned", TokenKind::KwUnsigned},
      {"signed", TokenKind::KwSigned},   {"struct", TokenKind::KwStruct},
      {"union", TokenKind::KwUnion},     {"sizeof", TokenKind::KwSizeof},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},   {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"NULL", TokenKind::KwNull},
  };
  for (const Keyword &K : Keywords) {
    if (T.Text == K.Text) {
      T.Kind = K.Kind;
      break;
    }
  }
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Begin = Pos;
  bool IsFloat = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Next = peek(1);
      if (std::isdigit(static_cast<unsigned char>(Next)) || Next == '-' ||
          Next == '+') {
        IsFloat = true;
        advance();
        if (peek() == '-' || peek() == '+')
          advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      }
    }
  }
  Token T = makeToken(IsFloat ? TokenKind::FloatLiteral
                              : TokenKind::IntLiteral,
                      Begin, Loc);
  std::string Text(T.Text);
  if (IsFloat)
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  else
    T.IntValue = std::strtoull(Text.c_str(), nullptr, 0);
  return T;
}

static char decodeEscape(char C) {
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    return C;
  }
}

Token Lexer::lexCharLiteral(SourceLoc Loc) {
  size_t Begin = Pos;
  advance(); // opening quote
  char Value = 0;
  if (peek() == '\\') {
    advance();
    Value = decodeEscape(advance());
  } else if (peek() != '\0') {
    Value = advance();
  }
  if (!match('\''))
    Diags.error(Loc, "unterminated character literal");
  Token T = makeToken(TokenKind::CharLiteral, Begin, Loc);
  T.IntValue = static_cast<unsigned char>(Value);
  return T;
}

Token Lexer::lexStringLiteral(SourceLoc Loc) {
  size_t Begin = Pos;
  advance(); // opening quote
  while (peek() != '"' && peek() != '\0') {
    if (peek() == '\\')
      advance();
    advance();
  }
  if (!match('"'))
    Diags.error(Loc, "unterminated string literal");
  return makeToken(TokenKind::StringLiteral, Begin, Loc);
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc = location();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Pos, Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (C == '\'')
    return lexCharLiteral(Loc);
  if (C == '"')
    return lexStringLiteral(Loc);

  size_t Begin = Pos;
  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Begin, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Begin, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Begin, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Begin, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Begin, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Begin, Loc);
  case ';':
    return makeToken(TokenKind::Semicolon, Begin, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Begin, Loc);
  case '.':
    return makeToken(TokenKind::Dot, Begin, Loc);
  case '~':
    return makeToken(TokenKind::Tilde, Begin, Loc);
  case '^':
    return makeToken(TokenKind::Caret, Begin, Loc);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Begin, Loc);
    if (match('='))
      return makeToken(TokenKind::PlusEqual, Begin, Loc);
    return makeToken(TokenKind::Plus, Begin, Loc);
  case '-':
    if (match('>'))
      return makeToken(TokenKind::Arrow, Begin, Loc);
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Begin, Loc);
    if (match('='))
      return makeToken(TokenKind::MinusEqual, Begin, Loc);
    return makeToken(TokenKind::Minus, Begin, Loc);
  case '*':
    return makeToken(TokenKind::Star, Begin, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Begin, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Begin, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Begin, Loc);
    return makeToken(TokenKind::Amp, Begin, Loc);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Begin, Loc);
    return makeToken(TokenKind::Pipe, Begin, Loc);
  case '!':
    if (match('='))
      return makeToken(TokenKind::ExclaimEqual, Begin, Loc);
    return makeToken(TokenKind::Exclaim, Begin, Loc);
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Begin, Loc);
    return makeToken(TokenKind::Equal, Begin, Loc);
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEqual, Begin, Loc);
    if (match('<'))
      return makeToken(TokenKind::LessLess, Begin, Loc);
    return makeToken(TokenKind::Less, Begin, Loc);
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Begin, Loc);
    if (match('>'))
      return makeToken(TokenKind::GreaterGreater, Begin, Loc);
    return makeToken(TokenKind::Greater, Begin, Loc);
  default:
    Diags.error(Loc, "unexpected character '" + std::string(1, C) + "'");
    return next();
  }
}
