//===- minic/AST.h - MiniC abstract syntax tree -----------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC AST. Nodes are arena-allocated and owned by an ASTContext;
/// kind discriminators support the LLVM-style isa/cast/dyn_cast
/// machinery. Types are resolved at parse time (MiniC type syntax is
/// unambiguous), so every node that names a type carries an interned
/// TypeInfo from the shared TypeContext; Sema later assigns a TypeInfo
/// to every expression.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_MINIC_AST_H
#define EFFECTIVE_MINIC_AST_H

#include "core/TypeContext.h"
#include "support/Arena.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace effective {
namespace minic {

class VarDecl;
class FunctionDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  Null,
  VarRef,
  Unary,
  Binary,
  Assign,
  Index,
  Member,
  Call,
  Cast,
  SizeofType,
  Malloc,
  Free,
};

/// Base of all expressions. Type and IsLValue are set by Sema.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  const TypeInfo *type() const { return Type; }
  void setType(const TypeInfo *T) { Type = T; }
  bool isLValue() const { return LValue; }
  void setLValue(bool V) { LValue = V; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  bool LValue = false;
  SourceLoc Loc;
  const TypeInfo *Type = nullptr;
};

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(uint64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLiteral, Loc), Value(Value) {}
  uint64_t value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IntLiteral;
  }

private:
  uint64_t Value;
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(double Value, SourceLoc Loc)
      : Expr(ExprKind::FloatLiteral, Loc), Value(Value) {}
  double value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FloatLiteral;
  }

private:
  double Value;
};

class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(std::string_view Bytes, SourceLoc Loc)
      : Expr(ExprKind::StringLiteral, Loc), Bytes(Bytes) {}
  /// Decoded bytes, without the terminating NUL.
  std::string_view bytes() const { return Bytes; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::StringLiteral;
  }

private:
  std::string_view Bytes;
};

class NullExpr : public Expr {
public:
  explicit NullExpr(SourceLoc Loc) : Expr(ExprKind::Null, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Null; }
};

class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string_view Name, SourceLoc Loc)
      : Expr(ExprKind::VarRef, Loc), Name(Name) {}
  std::string_view name() const { return Name; }
  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::VarRef;
  }

private:
  std::string_view Name;
  VarDecl *Decl = nullptr;
};

enum class UnaryOp : uint8_t {
  Neg,
  LogicalNot,
  BitNot,
  AddrOf,
  Deref,
  PreInc,
  PreDec,
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Sub, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(Sub) {}
  UnaryOp op() const { return Op; }
  Expr *sub() const { return Sub; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Unary;
  }

private:
  UnaryOp Op;
  Expr *Sub;
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  LogicalAnd,
  LogicalOr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Binary;
  }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// Simple or compound assignment (= / += / -=).
class AssignExpr : public Expr {
public:
  enum class OpKind : uint8_t { Plain, Add, Sub };

  AssignExpr(OpKind Op, Expr *Target, Expr *Value, SourceLoc Loc)
      : Expr(ExprKind::Assign, Loc), Op(Op), Target(Target), Value(Value) {}
  OpKind op() const { return Op; }
  Expr *target() const { return Target; }
  Expr *value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Assign;
  }

private:
  OpKind Op;
  Expr *Target;
  Expr *Value;
};

class IndexExpr : public Expr {
public:
  IndexExpr(Expr *Base, Expr *Index, SourceLoc Loc)
      : Expr(ExprKind::Index, Loc), Base(Base), Index(Index) {}
  Expr *base() const { return Base; }
  Expr *index() const { return Index; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Index;
  }

private:
  Expr *Base;
  Expr *Index;
};

class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, std::string_view Member, bool IsArrow,
             SourceLoc Loc)
      : Expr(ExprKind::Member, Loc), Base(Base), Member(Member),
        Arrow(IsArrow) {}
  Expr *base() const { return Base; }
  std::string_view member() const { return Member; }
  bool isArrow() const { return Arrow; }
  const FieldInfo *field() const { return Field; }
  void setField(const FieldInfo *F) { Field = F; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Member;
  }

private:
  Expr *Base;
  std::string_view Member;
  bool Arrow;
  const FieldInfo *Field = nullptr;
};

class CallExpr : public Expr {
public:
  CallExpr(std::string_view Callee, std::span<Expr *const> Args,
           SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Callee(Callee), Args(Args) {}
  std::string_view callee() const { return Callee; }
  std::span<Expr *const> args() const { return Args; }
  FunctionDecl *decl() const { return Decl; }
  void setDecl(FunctionDecl *D) { Decl = D; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  std::string_view Callee;
  std::span<Expr *const> Args;
  FunctionDecl *Decl = nullptr;
};

class CastExpr : public Expr {
public:
  CastExpr(const TypeInfo *Target, Expr *Sub, SourceLoc Loc)
      : Expr(ExprKind::Cast, Loc), Target(Target), Sub(Sub) {}
  const TypeInfo *target() const { return Target; }
  Expr *sub() const { return Sub; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Cast; }

private:
  const TypeInfo *Target;
  Expr *Sub;
};

class SizeofExpr : public Expr {
public:
  SizeofExpr(const TypeInfo *Target, SourceLoc Loc)
      : Expr(ExprKind::SizeofType, Loc), Target(Target) {}
  const TypeInfo *target() const { return Target; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::SizeofType;
  }

private:
  const TypeInfo *Target;
};

/// malloc(size). The allocation's dynamic type is inferred by Sema
/// (the paper's "simple program analysis", Example 1).
class MallocExpr : public Expr {
public:
  MallocExpr(Expr *Size, SourceLoc Loc)
      : Expr(ExprKind::Malloc, Loc), Size(Size) {}
  Expr *size() const { return Size; }
  const TypeInfo *allocType() const { return AllocType; }
  void setAllocType(const TypeInfo *T) { AllocType = T; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Malloc;
  }

private:
  Expr *Size;
  /// Inferred element type of the allocation (null = untyped).
  const TypeInfo *AllocType = nullptr;
};

class FreeExpr : public Expr {
public:
  FreeExpr(Expr *Ptr, SourceLoc Loc) : Expr(ExprKind::Free, Loc), Ptr(Ptr) {}
  Expr *ptr() const { return Ptr; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Free; }

private:
  Expr *Ptr;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Expr,
  Decl,
  Compound,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
};

class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(StmtKind::Expr, Loc), E(E) {}
  Expr *expr() const { return E; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Expr; }

private:
  Expr *E;
};

class DeclStmt : public Stmt {
public:
  DeclStmt(VarDecl *D, SourceLoc Loc) : Stmt(StmtKind::Decl, Loc), D(D) {}
  VarDecl *decl() const { return D; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

private:
  VarDecl *D;
};

class CompoundStmt : public Stmt {
public:
  CompoundStmt(std::span<Stmt *const> Body, SourceLoc Loc)
      : Stmt(StmtKind::Compound, Loc), Body(Body) {}
  std::span<Stmt *const> body() const { return Body; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Compound;
  }

private:
  std::span<Stmt *const> Body;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}
  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::While;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Expr *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
  Stmt *init() const { return Init; }
  Expr *cond() const { return Cond; }
  Expr *step() const { return Step; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Step;
  Stmt *Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}
  Expr *value() const { return Value; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Return;
  }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Break;
  }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A variable (global, local or parameter).
class VarDecl {
public:
  VarDecl(std::string_view Name, const TypeInfo *Type, Expr *Init,
          bool IsGlobal, SourceLoc Loc)
      : Name(Name), Type(Type), Init(Init), Global(IsGlobal), Loc(Loc) {}

  std::string_view name() const { return Name; }
  const TypeInfo *type() const { return Type; }
  Expr *init() const { return Init; }
  bool isGlobal() const { return Global; }
  SourceLoc loc() const { return Loc; }

private:
  std::string_view Name;
  const TypeInfo *Type;
  Expr *Init;
  bool Global;
  SourceLoc Loc;
};

/// A function definition or declaration.
class FunctionDecl {
public:
  FunctionDecl(std::string_view Name, const TypeInfo *ReturnType,
               std::span<VarDecl *const> Params, SourceLoc Loc)
      : Name(Name), ReturnType(ReturnType), Params(Params), Loc(Loc) {}

  std::string_view name() const { return Name; }
  const TypeInfo *returnType() const { return ReturnType; }
  std::span<VarDecl *const> params() const { return Params; }
  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }
  SourceLoc loc() const { return Loc; }

private:
  std::string_view Name;
  const TypeInfo *ReturnType;
  std::span<VarDecl *const> Params;
  CompoundStmt *Body = nullptr;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// ASTContext and TranslationUnit
//===----------------------------------------------------------------------===//

/// Owns all AST nodes (arena) and the struct-tag table of one
/// translation unit. Types themselves live in the shared TypeContext.
class ASTContext {
public:
  explicit ASTContext(TypeContext &Types) : Types(Types) {}

  TypeContext &types() { return Types; }
  Arena &arena() { return A; }

  /// Creates an AST node in the arena.
  template <typename T, typename... Args> T *create(Args &&...As) {
    return A.create<T>(std::forward<Args>(As)...);
  }

  /// Copies a list of nodes into a stable arena span.
  template <typename T> std::span<T *const> makeSpan(std::vector<T *> &V) {
    if (V.empty())
      return {};
    T **Mem = static_cast<T **>(A.allocate(V.size() * sizeof(T *)));
    for (size_t I = 0; I < V.size(); ++I)
      Mem[I] = V[I];
    return std::span<T *const>(Mem, V.size());
  }

  std::string_view internString(std::string_view S) {
    return A.internString(S);
  }

  /// Struct/union tag lookup for this translation unit. Redeclaring a
  /// tag with a different layout creates a distinct type — exactly how
  /// the gcc "incompatible definitions" errors become detectable.
  RecordType *lookupTag(std::string_view Tag) const {
    auto It = Tags.find(std::string(Tag));
    return It == Tags.end() ? nullptr : It->second;
  }
  void registerTag(std::string_view Tag, RecordType *R) {
    Tags[std::string(Tag)] = R;
  }

private:
  TypeContext &Types;
  Arena A;
  std::unordered_map<std::string, RecordType *> Tags;
};

/// A parsed translation unit.
struct TranslationUnit {
  std::vector<FunctionDecl *> Functions;
  std::vector<VarDecl *> Globals;

  FunctionDecl *findFunction(std::string_view Name) const {
    for (FunctionDecl *F : Functions)
      if (F->name() == Name)
        return F;
    return nullptr;
  }
};

} // namespace minic
} // namespace effective

#endif // EFFECTIVE_MINIC_AST_H
