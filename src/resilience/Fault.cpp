//===- resilience/Fault.cpp - Deterministic fault injection ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/Fault.h"

#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace effective;
using namespace effective::resilience;

#ifndef EFFSAN_FAULT_OFF
std::atomic<uint32_t> resilience::detail::FaultsArmed{0};
#endif

namespace {

/// splitmix64: turns (seed, point index) into a well-mixed nonzero
/// xorshift starting state, so per-point streams are independent.
uint64_t mixSeed(uint64_t Seed, unsigned Index) {
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z ^= Z >> 31;
  return Z ? Z : 0x2545f4914f6cdd1dull;
}

const char *const PointNames[NumFaultPointValues] = {
    "heap_exhausted",        "heap_slice_exhausted", "heap_magazine_refill",
    "heap_quarantine_overrun", "ring_full",          "site_register",
    "drain_stall",           "snapshot_hook",        "governor_misfire",
};

} // namespace

FaultRegistry &FaultRegistry::instance() {
  // Leaky singleton: fault points live in layers (allocator TLS
  // destructors included) that may evaluate during process teardown.
  static FaultRegistry *R = new FaultRegistry();
  return *R;
}

void FaultRegistry::arm(uint64_t NewSeed) {
  Seed.store(NewSeed, std::memory_order_relaxed);
  for (unsigned I = 0; I < NumFaultPointValues; ++I) {
    PointState &S = Points[I];
    S.Mode.store(static_cast<uint8_t>(FaultMode::Off),
                 std::memory_order_relaxed);
    S.Arg.store(0, std::memory_order_relaxed);
    S.After.store(0, std::memory_order_relaxed);
    S.Evaluations.store(0, std::memory_order_relaxed);
    S.Fires.store(0, std::memory_order_relaxed);
    S.Rng.store(mixSeed(NewSeed, I), std::memory_order_relaxed);
  }
#ifndef EFFSAN_FAULT_OFF
  detail::FaultsArmed.store(1, std::memory_order_relaxed);
#endif
}

void FaultRegistry::disarm() {
#ifndef EFFSAN_FAULT_OFF
  detail::FaultsArmed.store(0, std::memory_order_relaxed);
#endif
}

bool FaultRegistry::armed() const {
#ifndef EFFSAN_FAULT_OFF
  return detail::FaultsArmed.load(std::memory_order_relaxed) != 0;
#else
  return false;
#endif
}

void FaultRegistry::configure(FaultPoint Point, const FaultConfig &Config) {
  if (Point >= FaultPoint::NumFaultPoints)
    return;
  PointState &S = Points[static_cast<unsigned>(Point)];
  // Params first, mode last: an evaluation racing this configure sees
  // either the old mode or the new mode with its new params.
  S.Arg.store(Config.Arg, std::memory_order_relaxed);
  S.After.store(Config.After, std::memory_order_relaxed);
  S.Mode.store(static_cast<uint8_t>(Config.Mode), std::memory_order_release);
}

bool FaultRegistry::shouldFire(FaultPoint Point) {
  if (Point >= FaultPoint::NumFaultPoints)
    return false;
  PointState &S = Points[static_cast<unsigned>(Point)];
  auto Mode = static_cast<FaultMode>(S.Mode.load(std::memory_order_acquire));
  // Count the evaluation whether or not the point is configured: the
  // counters double as coverage telemetry for the fault-matrix job.
  uint64_t N = S.Evaluations.fetch_add(1, std::memory_order_relaxed);
  if (Mode == FaultMode::Off)
    return false;
  uint64_t Arg = S.Arg.load(std::memory_order_relaxed);
  if (Arg == 0)
    return false;
  bool Fire = false;
  switch (Mode) {
  case FaultMode::Off:
    break;
  case FaultMode::Count: {
    uint64_t After = S.After.load(std::memory_order_relaxed);
    Fire = N >= After && N - After < Arg;
    break;
  }
  case FaultMode::Probability: {
    // Racy load/compute/store: two threads may reuse one draw, which
    // keeps the stream data-race-free and deterministic when (as in
    // every replay harness) a single thread drives the point.
    uint64_t X = S.Rng.load(std::memory_order_relaxed);
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    S.Rng.store(X, std::memory_order_relaxed);
    Fire = X % Arg == 0;
    break;
  }
  case FaultMode::Every:
    Fire = (N + 1) % Arg == 0;
    break;
  }
  if (Fire) {
    S.Fires.fetch_add(1, std::memory_order_relaxed);
    EFFSAN_OBS_EVENT(FaultInjected, obs::NoShard,
                     static_cast<unsigned>(Point));
  }
  return Fire;
}

uint64_t FaultRegistry::evaluations(FaultPoint Point) const {
  if (Point >= FaultPoint::NumFaultPoints)
    return 0;
  return Points[static_cast<unsigned>(Point)].Evaluations.load(
      std::memory_order_relaxed);
}

uint64_t FaultRegistry::fires(FaultPoint Point) const {
  if (Point >= FaultPoint::NumFaultPoints)
    return 0;
  return Points[static_cast<unsigned>(Point)].Fires.load(
      std::memory_order_relaxed);
}

uint64_t FaultRegistry::totalFires() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I < NumFaultPointValues; ++I)
    Total += Points[I].Fires.load(std::memory_order_relaxed);
  return Total;
}

const char *FaultRegistry::pointName(FaultPoint Point) {
  if (Point >= FaultPoint::NumFaultPoints)
    return "unknown";
  return PointNames[static_cast<unsigned>(Point)];
}

FaultPoint FaultRegistry::pointFromName(const char *Name) {
  if (Name)
    for (unsigned I = 0; I < NumFaultPointValues; ++I)
      if (std::strcmp(Name, PointNames[I]) == 0)
        return static_cast<FaultPoint>(I);
  return FaultPoint::NumFaultPoints;
}

bool FaultRegistry::configureFromSpec(const char *Spec) {
  if (!Spec)
    return false;
  // First pass: find the seed (arming resets everything, so it must
  // happen before any point entry is applied).
  uint64_t SpecSeed = 1;
  struct Entry {
    FaultPoint Point;
    FaultConfig Config;
  };
  std::vector<Entry> Entries;

  const char *P = Spec;
  while (*P) {
    const char *End = std::strchr(P, ';');
    std::string Item(P, End ? static_cast<size_t>(End - P) : std::strlen(P));
    P = End ? End + 1 : P + Item.size();
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      return false;
    std::string Key = Item.substr(0, Eq);
    std::string Val = Item.substr(Eq + 1);
    if (Key == "seed") {
      SpecSeed = std::strtoull(Val.c_str(), nullptr, 0);
      continue;
    }
    FaultPoint Point = pointFromName(Key.c_str());
    if (Point == FaultPoint::NumFaultPoints)
      return false;
    FaultConfig Config;
    if (Val == "off") {
      Config.Mode = FaultMode::Off;
    } else if (Val.rfind("count:", 0) == 0) {
      Config.Mode = FaultMode::Count;
      std::string Args = Val.substr(6);
      size_t At = Args.find('@');
      Config.Arg = std::strtoull(Args.c_str(), nullptr, 0);
      if (At != std::string::npos)
        Config.After = std::strtoull(Args.c_str() + At + 1, nullptr, 0);
    } else if (Val.rfind("prob:", 0) == 0) {
      Config.Mode = FaultMode::Probability;
      Config.Arg = std::strtoull(Val.c_str() + 5, nullptr, 0);
    } else if (Val.rfind("every:", 0) == 0) {
      Config.Mode = FaultMode::Every;
      Config.Arg = std::strtoull(Val.c_str() + 6, nullptr, 0);
    } else {
      return false;
    }
    Entries.push_back({Point, Config});
  }

  arm(SpecSeed);
  for (const Entry &E : Entries)
    configure(E.Point, E.Config);
  return true;
}

namespace {

/// Arms the registry from `EFFSAN_FAULTS` before main() so every
/// existing binary — the whole ctest suite included — runs under the
/// environment's fault schedule without code changes. A malformed spec
/// is reported once and injection stays disarmed (fail safe, never
/// fail silent).
struct EnvArm {
  EnvArm() {
    const char *Spec = std::getenv("EFFSAN_FAULTS");
    if (!Spec || !*Spec)
      return;
    if (!FaultRegistry::instance().configureFromSpec(Spec))
      std::fprintf(stderr,
                   "effsan: ignoring malformed EFFSAN_FAULTS spec: %s\n",
                   Spec);
  }
};
EnvArm ArmFromEnv;

} // namespace
