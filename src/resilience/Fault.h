//===- resilience/Fault.h - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection half of the resilience layer: named fault points
/// compiled into the hot layers (allocator, error ring, site registry,
/// drain loop) behind the same one-relaxed-load pattern as the
/// observability flags, each triggerable by count, probability, or
/// schedule from a seeded PRNG — so an induced failure replays exactly
/// from its seed.
///
/// Hot-path contract, in priority order:
///
///  1. A disarmed fault point costs one relaxed atomic load and a
///     predicted-untaken branch — no call, no TLS, no fence.
///  2. `EFFSAN_FAULT_OFF` compiles every fault point out entirely
///     (`EFFSAN_FAULT(...)` becomes the constant `false`, dead code the
///     optimizer deletes), for builds that must carry zero surface.
///  3. Armed evaluation is wait-free: per-point relaxed counters and a
///     racy-by-design xorshift stream (exact replay is guaranteed for
///     single-threaded drives; concurrent drives stay data-race-free
///     and statistically faithful).
///
/// The registry is a leaky process-wide singleton (fault points live in
/// layers with no session context). `EFFSAN_FAULTS` in the environment
/// configures and arms it before main() — the hook the CI fault-matrix
/// job uses to run the whole test suite under a fixed-seed schedule;
/// see docs/RESILIENCE.md for the spec grammar and replay workflow.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_RESILIENCE_FAULT_H
#define EFFECTIVE_RESILIENCE_FAULT_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>

namespace effective {
namespace resilience {

/// Every fault point compiled into the runtime. Values are dense array
/// indices; the catalogue (layer, induced failure, degradation path)
/// lives in docs/RESILIENCE.md.
enum class FaultPoint : unsigned {
  HeapExhausted,        ///< core: typed heap allocation returns null.
  HeapSliceExhausted,   ///< alloc: shard slice dry; exhaust-fallback path.
  HeapMagazineRefill,   ///< alloc: TLS magazine refill fails.
  HeapQuarantineOverrun,///< alloc: quarantine budget treated as overrun.
  RingFull,             ///< concurrent: ErrorRing push sees a full ring.
  SiteRegister,         ///< core: site-table registration refused (NoSite).
  DrainStall,           ///< service: drain thread dies mid-loop.
  SnapshotHook,         ///< service: snapshot hook delivery fails.
  GovernorMisfire,      ///< service: governor pass skipped this tick.
  NumFaultPoints,
};

inline constexpr unsigned NumFaultPointValues =
    static_cast<unsigned>(FaultPoint::NumFaultPoints);

/// How a configured point decides to fire.
enum class FaultMode : uint8_t {
  Off,         ///< Never fires.
  Count,       ///< Fires evaluations [After, After + Arg).
  Probability, ///< Fires 1-in-Arg per evaluation (seeded xorshift).
  Every,       ///< Fires every Arg-th evaluation.
};

/// One point's trigger configuration.
struct FaultConfig {
  FaultMode Mode = FaultMode::Off;
  /// Count: number of firing evaluations. Probability: the 1-in-N
  /// denominator. Every: the period. 0 disables in every mode.
  uint64_t Arg = 0;
  /// Count mode only: evaluations to let pass before the firing window.
  uint64_t After = 0;
};

#ifndef EFFSAN_FAULT_OFF

namespace detail {
extern std::atomic<uint32_t> FaultsArmed;
} // namespace detail

/// True when fault injection is compiled into this build.
constexpr bool compiledIn() { return true; }

/// The one relaxed load every disarmed fault point costs.
EFFSAN_ALWAYS_INLINE bool faultsArmed() {
  return detail::FaultsArmed.load(std::memory_order_relaxed) != 0;
}

#else // EFFSAN_FAULT_OFF

constexpr bool compiledIn() { return false; }
constexpr bool faultsArmed() { return false; }

#endif // EFFSAN_FAULT_OFF

/// Process-wide fault-point registry: per-point trigger configuration,
/// evaluation/fire counters, and the seeded PRNG streams. All state is
/// atomic — configuring, arming and disarming are safe against
/// concurrent evaluations from any number of threads.
class FaultRegistry {
public:
  static FaultRegistry &instance();

  /// Arms injection under \p Seed: clears every point to Off, resets
  /// all counters, and reseeds the per-point PRNG streams — the same
  /// seed plus the same configuration replays the same firing
  /// sequence. Points must be configure()d after arming.
  void arm(uint64_t Seed);

  /// Disarms injection (fault points return to the one-load cost).
  /// Configuration and counters stay readable for post-mortems.
  void disarm();

  bool armed() const;
  uint64_t seed() const { return Seed.load(std::memory_order_relaxed); }

  /// Installs \p Config on \p Point (effective immediately).
  void configure(FaultPoint Point, const FaultConfig &Config);

  /// Parses and applies a schedule spec: semicolon-separated entries,
  /// each `seed=N` or `<point>=<mode>` with mode one of
  /// `off | count:N | count:N@S | prob:N | every:N`. Arms the registry
  /// under the spec's seed (default 1) before applying the entries.
  /// Returns false (registry left disarmed) on any malformed entry or
  /// unknown point name. This is the `EFFSAN_FAULTS` grammar.
  bool configureFromSpec(const char *Spec);

  /// The armed-path decision: counts the evaluation and reports whether
  /// the point fires now. Reached only through EFFSAN_FAULT (which
  /// gates on faultsArmed() first).
  bool shouldFire(FaultPoint Point);

  /// Lifetime counters since the last arm().
  uint64_t evaluations(FaultPoint Point) const;
  uint64_t fires(FaultPoint Point) const;
  /// Total fires across all points since the last arm().
  uint64_t totalFires() const;

  /// Stable lower_snake name for specs, logs and the ABI catalogue.
  static const char *pointName(FaultPoint Point);
  /// Inverse of pointName; NumFaultPoints for an unknown name.
  static FaultPoint pointFromName(const char *Name);

private:
  FaultRegistry() = default;

  struct PointState {
    std::atomic<uint8_t> Mode{0};
    std::atomic<uint64_t> Arg{0};
    std::atomic<uint64_t> After{0};
    std::atomic<uint64_t> Evaluations{0};
    std::atomic<uint64_t> Fires{0};
    /// xorshift64 stream; racy updates under concurrency by design.
    std::atomic<uint64_t> Rng{1};
  };

  PointState Points[NumFaultPointValues];
  std::atomic<uint64_t> Seed{0};
};

} // namespace resilience
} // namespace effective

//===----------------------------------------------------------------------===//
// Fault-point macro
//===----------------------------------------------------------------------===//

/// Evaluates to true when the named fault point fires. Costs one
/// relaxed load + predicted-untaken branch while disarmed; the constant
/// `false` (no surface at all) under EFFSAN_FAULT_OFF.
///
///   if (EFFSAN_FAULT(HeapMagazineRefill))
///     return false; // induced refill failure
#ifndef EFFSAN_FAULT_OFF
#define EFFSAN_FAULT(POINT)                                                    \
  (EFFSAN_UNLIKELY(::effective::resilience::faultsArmed()) &&                  \
   ::effective::resilience::FaultRegistry::instance().shouldFire(              \
       ::effective::resilience::FaultPoint::POINT))
#else
#define EFFSAN_FAULT(POINT) (false)
#endif

#endif // EFFECTIVE_RESILIENCE_FAULT_H
