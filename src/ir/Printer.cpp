//===- ir/Printer.cpp - Textual IR dump -----------------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <cinttypes>
#include <cstdio>

using namespace effective;
using namespace effective::ir;

namespace {

std::string reg(Reg R) {
  if (R == NoReg)
    return "%none";
  return "%r" + std::to_string(R);
}

std::string breg(BReg B) {
  if (B == NoBReg)
    return "%bnone";
  return "%b" + std::to_string(B);
}

std::string_view arithName(ArithOp Op) {
  switch (Op) {
  case ArithOp::Add:
    return "add";
  case ArithOp::Sub:
    return "sub";
  case ArithOp::Mul:
    return "mul";
  case ArithOp::Div:
    return "div";
  case ArithOp::Rem:
    return "rem";
  case ArithOp::And:
    return "and";
  case ArithOp::Or:
    return "or";
  case ArithOp::Xor:
    return "xor";
  case ArithOp::Shl:
    return "shl";
  case ArithOp::Shr:
    return "shr";
  }
  return "<bad-arith>";
}

std::string_view predName(Pred P) {
  switch (P) {
  case Pred::Eq:
    return "eq";
  case Pred::Ne:
    return "ne";
  case Pred::Lt:
    return "lt";
  case Pred::Le:
    return "le";
  case Pred::Gt:
    return "gt";
  case Pred::Ge:
    return "ge";
  }
  return "<bad-pred>";
}

std::string typeStr(const TypeInfo *T) {
  return T ? T->str() : std::string("<null>");
}

std::string blockRef(const Function &F, BlockId Id) {
  if (Id < F.Blocks.size())
    return "^" + F.Blocks[Id].Name;
  return "^<bad-block>";
}

/// The " !site N" suffix of a sited check instruction ("" otherwise),
/// extended with the site's source attribution — `!site N @
/// "file:line:col"` — when the module's site table locates it. The
/// annotation is what the round-trip tests compare against the
/// runtime's rendered error reports.
std::string site(const Module &M, const Instr &I) {
  if (I.Site == NoSite)
    return "";
  std::string S = " !site " + std::to_string(I.Site);
  const SiteTable &T = M.siteTable();
  if (I.Site < T.Entries.size()) {
    const SourceLoc &Loc = T.Entries[I.Site].Loc;
    if (Loc.isValid())
      S += " @ \"" + T.File + ":" + std::to_string(Loc.Line) + ":" +
           std::to_string(Loc.Column) + "\"";
  }
  return S;
}

} // namespace

std::string ir::printInstr(const Function &F, const Module &M,
                           const Instr &I) {
  char Buf[256];
  switch (I.Op) {
  case Opcode::ConstInt:
    std::snprintf(Buf, sizeof(Buf), "%s = const_int %" PRId64 " : %s",
                  reg(I.Dst).c_str(), static_cast<int64_t>(I.Imm),
                  typeStr(I.Type).c_str());
    return Buf;
  case Opcode::ConstFloat:
    std::snprintf(Buf, sizeof(Buf), "%s = const_float %g : %s",
                  reg(I.Dst).c_str(), I.FImm, typeStr(I.Type).c_str());
    return Buf;
  case Opcode::ConstNull:
    return reg(I.Dst) + " = const_null : " + typeStr(I.Type);
  case Opcode::StringAddr:
    std::snprintf(Buf, sizeof(Buf), "%s = string_addr @str%" PRIu64,
                  reg(I.Dst).c_str(), I.Imm);
    break;
  case Opcode::GlobalAddr:
    std::snprintf(Buf, sizeof(Buf), "%s = global_addr @%s",
                  reg(I.Dst).c_str(),
                  I.Imm < M.Globals.size() ? M.Globals[I.Imm].Name.c_str()
                                           : "<bad-global>");
    break;
  case Opcode::SlotAddr:
    std::snprintf(Buf, sizeof(Buf), "%s = slot_addr $%s",
                  reg(I.Dst).c_str(),
                  I.Imm < F.Slots.size() ? F.Slots[I.Imm].Name.c_str()
                                         : "<bad-slot>");
    break;
  case Opcode::Copy:
    std::snprintf(Buf, sizeof(Buf), "%s = copy %s", reg(I.Dst).c_str(),
                  reg(I.A).c_str());
    break;
  case Opcode::Arith:
    std::snprintf(Buf, sizeof(Buf), "%s = %s %s, %s : %s",
                  reg(I.Dst).c_str(), arithName(I.AOp).data(),
                  reg(I.A).c_str(), reg(I.B).c_str(),
                  typeStr(I.Type).c_str());
    return Buf;
  case Opcode::Compare:
    std::snprintf(Buf, sizeof(Buf), "%s = cmp_%s %s, %s",
                  reg(I.Dst).c_str(), predName(I.CmpPred).data(),
                  reg(I.A).c_str(), reg(I.B).c_str());
    return Buf;
  case Opcode::Convert:
    std::snprintf(Buf, sizeof(Buf), "%s = convert %s : %s",
                  reg(I.Dst).c_str(), reg(I.A).c_str(),
                  typeStr(I.Type).c_str());
    return Buf;
  case Opcode::PtrCast:
    std::snprintf(Buf, sizeof(Buf), "%s = ptr_cast %s : %s *",
                  reg(I.Dst).c_str(), reg(I.A).c_str(),
                  typeStr(I.Type).c_str());
    break;
  case Opcode::FieldAddr: {
    std::string Field = "<bad-field>";
    if (const auto *R = dyn_cast_if_present<RecordType>(I.Type))
      if (I.Imm < R->fields().size())
        Field = std::string(R->fields()[I.Imm].Name);
    std::snprintf(Buf, sizeof(Buf), "%s = field_addr %s, %s.%s",
                  reg(I.Dst).c_str(), reg(I.A).c_str(),
                  typeStr(I.Type).c_str(), Field.c_str());
    break;
  }
  case Opcode::IndexAddr:
    std::snprintf(Buf, sizeof(Buf), "%s = index_addr %s, %s : %s",
                  reg(I.Dst).c_str(), reg(I.A).c_str(), reg(I.B).c_str(),
                  typeStr(I.Type).c_str());
    break;
  case Opcode::PtrDiff:
    std::snprintf(Buf, sizeof(Buf), "%s = ptr_diff %s, %s : %s",
                  reg(I.Dst).c_str(), reg(I.A).c_str(), reg(I.B).c_str(),
                  typeStr(I.Type).c_str());
    return Buf;
  case Opcode::Load:
    std::snprintf(Buf, sizeof(Buf), "%s = load %s : %s",
                  reg(I.Dst).c_str(), reg(I.A).c_str(),
                  typeStr(I.Type).c_str());
    return Buf;
  case Opcode::Store:
    std::snprintf(Buf, sizeof(Buf), "store %s, %s : %s", reg(I.A).c_str(),
                  reg(I.B).c_str(), typeStr(I.Type).c_str());
    return Buf;
  case Opcode::Malloc:
    std::snprintf(Buf, sizeof(Buf), "%s = malloc %s : %s",
                  reg(I.Dst).c_str(), reg(I.A).c_str(),
                  I.Type ? typeStr(I.Type).c_str() : "<untyped>");
    break;
  case Opcode::Free:
    return "free " + reg(I.A);
  case Opcode::Call: {
    std::string S = I.Dst != NoReg ? reg(I.Dst) + " = call @" : "call @";
    S += I.Imm < M.Functions.size() ? M.Functions[I.Imm]->name()
                                    : "<bad-callee>";
    S += "(";
    for (size_t K = 0; K < I.Args.size(); ++K)
      S += (K ? ", " : "") + reg(I.Args[K]);
    S += ")";
    return S;
  }
  case Opcode::CallBuiltin: {
    std::string S = I.Dst != NoReg ? reg(I.Dst) + " = call @" : "call @";
    S += builtinName(static_cast<BuiltinId>(I.Imm));
    S += "(";
    for (size_t K = 0; K < I.Args.size(); ++K)
      S += (K ? ", " : "") + reg(I.Args[K]);
    S += ")";
    return S;
  }
  case Opcode::Ret:
    return I.A == NoReg ? std::string("ret") : "ret " + reg(I.A);
  case Opcode::Br:
    return "br " + blockRef(F, I.Target0);
  case Opcode::CondBr:
    return "cond_br " + reg(I.A) + ", " + blockRef(F, I.Target0) + ", " +
           blockRef(F, I.Target1);
  case Opcode::TypeCheck:
    std::snprintf(Buf, sizeof(Buf), "%s = type_check %s, %s[]%s",
                  breg(I.BDst).c_str(), reg(I.A).c_str(),
                  typeStr(I.Type).c_str(), site(M, I).c_str());
    return Buf;
  case Opcode::BoundsGet:
    std::snprintf(Buf, sizeof(Buf), "%s = bounds_get %s%s",
                  breg(I.BDst).c_str(), reg(I.A).c_str(),
                  site(M, I).c_str());
    return Buf;
  case Opcode::BoundsCheck:
    std::snprintf(Buf, sizeof(Buf), "bounds_check %s, %" PRIu64 ", %s%s",
                  reg(I.A).c_str(), I.Imm, breg(I.BSrc).c_str(),
                  site(M, I).c_str());
    return Buf;
  case Opcode::BoundsNarrow:
    std::snprintf(Buf, sizeof(Buf),
                  "%s = bounds_narrow %s, %s, %" PRIu64 "%s",
                  breg(I.BDst).c_str(), breg(I.BSrc).c_str(),
                  reg(I.A).c_str(), I.Imm, site(M, I).c_str());
    return Buf;
  case Opcode::WideBounds:
    return breg(I.BDst) + " = wide_bounds";
  }
  // Fall-through cases that used snprintf into Buf plus optional bounds.
  std::string S = Buf;
  if (I.BDst != NoBReg)
    S += " [" + breg(I.BDst) + "]";
  return S;
}

std::string ir::printFunction(const Function &F, const Module &M) {
  std::string S = "func @" + F.name() + "(";
  for (size_t I = 0; I < F.Params.size(); ++I) {
    const Param &P = F.Params[I];
    S += (I ? ", " : "") + (P.Type ? P.Type->str() : "<null>") + " %r" +
         std::to_string(P.R);
  }
  S += ") -> ";
  S += F.returnType() ? F.returnType()->str() : "void";
  S += " {\n";
  for (const StackSlot &Slot : F.Slots) {
    S += "  slot $" + Slot.Name + " : ";
    S += Slot.DeclType ? Slot.DeclType->str() : "<null>";
    S += " (" + std::to_string(Slot.Size) + " bytes)\n";
  }
  for (const Block &B : F.Blocks) {
    S += B.Name + ":\n";
    for (const Instr &I : B.Instrs) {
      S += "  " + printInstr(F, M, I) + "\n";
    }
  }
  S += "}\n";
  return S;
}

std::string ir::printModule(const Module &M) {
  std::string S;
  for (size_t I = 0; I < M.Strings.size(); ++I) {
    S += "@str" + std::to_string(I) + " = \"";
    for (char C : M.Strings[I]) {
      if (C == '\n')
        S += "\\n";
      else if (C == '"')
        S += "\\\"";
      else
        S += C;
    }
    S += "\"\n";
  }
  for (const Global &G : M.Globals)
    S += "@" + G.Name + " : " +
         (G.DeclType ? G.DeclType->str() : "<null>") + " (" +
         std::to_string(G.Size) + " bytes)\n";
  if (!M.Strings.empty() || !M.Globals.empty())
    S += "\n";
  for (const auto &F : M.Functions) {
    S += printFunction(*F, M);
    S += "\n";
  }
  return S;
}
