//===- ir/IR.h - Typed intermediate representation --------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed intermediate representation the MiniC frontend lowers to
/// and the instrumentation pass (Figure 3 of the paper) operates on. It
/// plays the role of the paper's "type annotated LLVM IR": every value
/// register carries an interned TypeInfo, so the pass can identify
/// pointer inputs (parameters, call returns, loads, casts) and derived
/// pointers (field/index address computations) purely structurally.
///
/// Design notes:
///  * Registers are *mutable* (non-SSA). The frontend performs the
///    moral equivalent of mem2reg by assigning each promotable scalar
///    local one register for its whole lifetime, so re-assignments
///    (e.g. Figure 4's "xs = *tmp") simply redefine the register.
///  * Bounds values live in a parallel register file (BReg). Only the
///    instrumentation opcodes and the pointer-producing opcodes touch
///    them; an uninstrumented module has no bounds registers at all.
///  * Instructions are a tagged struct rather than a class hierarchy:
///    the IR exists to be instrumented, interpreted and printed, and a
///    flat representation keeps all three loops simple.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_IR_IR_H
#define EFFECTIVE_IR_IR_H

#include "core/SiteCache.h"
#include "core/SiteTable.h"
#include "core/TypeContext.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace effective {
namespace ir {

/// A virtual value register index. Registers are typed (see
/// Function::regType) and mutable: an instruction may redefine a
/// register that was defined earlier.
using Reg = uint32_t;
inline constexpr Reg NoReg = ~0u;

/// A bounds register index (the BOUNDS values of Figure 3/4), parallel
/// to the value register file.
using BReg = uint32_t;
inline constexpr BReg NoBReg = ~0u;

/// A basic block index within a function.
using BlockId = uint32_t;

/// Instruction opcodes. The comment gives the operand convention; all
/// unused fields are NoReg/NoBReg/null.
enum class Opcode : uint8_t {
  // Constants and moves.
  ConstInt,   ///< Dst = Imm (of type Type).
  ConstFloat, ///< Dst = FImm (of type Type).
  ConstNull,  ///< Dst = null pointer (of type Type).
  StringAddr, ///< Dst = address of string literal Imm; BDst = its bounds.
  GlobalAddr, ///< Dst = address of global Imm; BDst = its bounds.
  SlotAddr,   ///< Dst = address of stack slot Imm; BDst = its bounds.
  Copy,       ///< Dst = A; BDst = BSrc when both set (pointer copies).

  // Arithmetic, comparison, conversion.
  Arith,   ///< Dst = A <AOp> B, operands and result of type Type.
  Compare, ///< Dst = A <Pred> B (int 0/1); operand type in Type.
  Convert, ///< Dst = (Type)A, a value conversion (not a pointer cast).

  // Address computation.
  PtrCast, ///< Dst = (Type*)A — Figure 3 rule (d) site; Type = pointee.
  FieldAddr, ///< Dst = &A->field[Imm] of record Type; rule (e) site.
  IndexAddr, ///< Dst = A + B * sizeof(Type); rule (f): BDst = BSrc.
  PtrDiff,   ///< Dst = (A - B) / sizeof(Type), a long.

  // Memory.
  Load,  ///< Dst = *(Type *)A; BSrc = bounds the pass checks against.
  Store, ///< *(Type *)A = B; BSrc as for Load.

  // Heap allocation (the paper's type_malloc / type_free).
  Malloc, ///< Dst = allocate(A bytes, element Type); BDst = alloc bounds.
  Free,   ///< deallocate(A).

  // Control flow.
  Call,        ///< Dst = call function Imm with Args.
  CallBuiltin, ///< Dst = builtin Imm (BuiltinId) with Args.
  Ret,         ///< return A (NoReg for void).
  Br,          ///< branch to Target0.
  CondBr,      ///< branch to Target0 if A is nonzero, else Target1.

  // Instrumentation (inserted by InstrumentPass; never by lowering).
  TypeCheck,    ///< BDst = type_check(A, Type[]) — Figure 6 lines 9-24.
  BoundsGet,    ///< BDst = bounds_get(A) — the -bounds variant's check.
  BoundsCheck,  ///< bounds_check(A, size Imm, BSrc) — rule (g).
  BoundsNarrow, ///< BDst = bounds_narrow(BSrc, A, size Imm) — rule (e).
  WideBounds,   ///< BDst = (0..UINTPTR_MAX).
};

/// Returns the mnemonic for \p Op (e.g. "type_check").
std::string_view opcodeName(Opcode Op);

/// Binary arithmetic operators for Opcode::Arith.
enum class ArithOp : uint8_t { Add, Sub, Mul, Div, Rem, And, Or, Xor,
                               Shl, Shr };

/// Comparison predicates for Opcode::Compare.
enum class Pred : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// Builtin functions callable from MiniC programs.
enum class BuiltinId : uint8_t {
  PrintInt,   ///< print_int(long): prints the value and a newline.
  PrintFloat, ///< print_float(double).
  PrintStr,   ///< print_str(char *): prints up to the first NUL.
};

/// Returns the source-level name of \p Id ("print_int", ...).
std::string_view builtinName(BuiltinId Id);

/// Resolves a builtin by source name; returns false if unknown.
bool lookupBuiltin(std::string_view Name, BuiltinId &Id);

/// One IR instruction. Field use is opcode-specific (see Opcode).
struct Instr {
  Opcode Op;
  ArithOp AOp = ArithOp::Add;
  Pred CmpPred = Pred::Eq;

  Reg Dst = NoReg;
  Reg A = NoReg;
  Reg B = NoReg;
  BReg BDst = NoBReg;
  BReg BSrc = NoBReg;

  /// Result/operand/pointee type, opcode-specific.
  const TypeInfo *Type = nullptr;

  /// Integer payload: constant, field index, access size, global/string
  /// /slot index, callee function index, or BuiltinId.
  uint64_t Imm = 0;
  double FImm = 0;

  BlockId Target0 = 0;
  BlockId Target1 = 0;

  /// The check's call-site identity (check opcodes only): a dense
  /// per-module id assigned by the instrumentation pass when it emits
  /// the check, carried to the runtime by the interpreter so every
  /// static check instruction owns one slot of the session's
  /// type-check inline cache. NoSite on hand-built or uninstrumented
  /// IR (the runtime then falls back to the type-derived pseudo-site).
  SiteId Site = NoSite;

  /// Argument registers (Call/CallBuiltin only).
  std::vector<Reg> Args;

  SourceLoc Loc;

  bool isTerminator() const {
    return Op == Opcode::Ret || Op == Opcode::Br || Op == Opcode::CondBr;
  }

  /// True for the dynamic-check opcodes inserted by instrumentation.
  bool isCheck() const {
    return Op >= Opcode::TypeCheck && Op <= Opcode::WideBounds;
  }
};

/// A basic block: a label plus straight-line instructions ending in a
/// terminator.
struct Block {
  std::string Name;
  std::vector<Instr> Instrs;
};

/// A function parameter: its source name, static type, the register it
/// arrives in, and its declaration location. The loc is donated by the
/// front end so the rule-(a) entry check of a pointer parameter has a
/// real line/column to attribute errors to (instead of degrading to the
/// file-only "at file in func" rendering).
struct Param {
  std::string Name;
  const TypeInfo *Type = nullptr;
  Reg R = NoReg;
  SourceLoc Loc;
};

/// A typed stack allocation (an address-taken or aggregate local). The
/// interpreter materializes every slot at frame entry through the typed
/// low-fat stack allocator, so slot objects carry META headers just
/// like heap objects.
struct StackSlot {
  std::string Name;
  /// Element type the META header binds (the scalar element for array
  /// locals, per the allocation-type convention of Section 3).
  const TypeInfo *ElemType = nullptr;
  /// Full object size in bytes.
  uint64_t Size = 0;
  /// The declared source-level type (for printing).
  const TypeInfo *DeclType = nullptr;
  /// The slot's address escapes the frame (stored to memory, passed to
  /// a call, or returned). Set by the instrumentation pass's escape
  /// analysis; the engines retire escaping slots through the stack
  /// use-after-return quarantine instead of freeing them at frame pop.
  bool Escapes = false;
};

/// One IR function.
class Function {
public:
  Function(std::string Name, const TypeInfo *ReturnType)
      : Name(std::move(Name)), ReturnType(ReturnType) {}

  const std::string &name() const { return Name; }
  const TypeInfo *returnType() const { return ReturnType; }

  std::vector<Param> Params;
  std::vector<StackSlot> Slots;
  std::vector<Block> Blocks;

  /// Creates a fresh register of static type \p T.
  Reg newReg(const TypeInfo *T) {
    RegTypes.push_back(T);
    return static_cast<Reg>(RegTypes.size() - 1);
  }

  /// Creates a fresh bounds register.
  BReg newBReg() { return NumBounds++; }

  uint32_t numRegs() const { return static_cast<uint32_t>(RegTypes.size()); }
  uint32_t numBRegs() const { return NumBounds; }

  /// The static type of register \p R (null only for malformed IR).
  const TypeInfo *regType(Reg R) const {
    return R < RegTypes.size() ? RegTypes[R] : nullptr;
  }

  /// Appends a new block and returns its id.
  BlockId newBlock(std::string Name) {
    Blocks.push_back(Block{std::move(Name), {}});
    return static_cast<BlockId>(Blocks.size() - 1);
  }

private:
  std::string Name;
  const TypeInfo *ReturnType;
  std::vector<const TypeInfo *> RegTypes;
  uint32_t NumBounds = 0;
};

/// A module-level global object (zero-initialized, typed).
struct Global {
  std::string Name;
  /// Element type for the META binding (see StackSlot::ElemType).
  const TypeInfo *ElemType = nullptr;
  uint64_t Size = 0;
  const TypeInfo *DeclType = nullptr;
};

/// One translation unit's worth of IR.
class Module {
public:
  explicit Module(TypeContext &Types) : Types(&Types) {}

  TypeContext &typeContext() const { return *Types; }

  Function *addFunction(std::string Name, const TypeInfo *ReturnType) {
    Functions.push_back(
        std::make_unique<Function>(std::move(Name), ReturnType));
    return Functions.back().get();
  }

  Function *findFunction(std::string_view Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  /// Index of \p F in the function table; used as Call's Imm.
  uint32_t indexOf(const Function *F) const {
    for (uint32_t I = 0; I < Functions.size(); ++I)
      if (Functions[I].get() == F)
        return I;
    return ~0u;
  }

  /// Allocates the next dense check-site id (used by the
  /// instrumentation pass for every check instruction it emits) and
  /// records its description in the module's site table, so the id can
  /// be resolved back to a source location in error reports. The
  /// invariant numCheckSites() == siteTable().Entries.size() is
  /// enforced by the verifier.
  SiteId newCheckSite(CheckSiteKind Kind, SourceLoc Loc,
                      const TypeInfo *StaticType,
                      std::string_view Function) {
    Sites.Entries.push_back(SiteTable::Entry{
        Kind, Loc, std::string(Function), StaticType});
    return NumCheckSites++;
  }

  /// Allocates an id with an unattributed (location-free) description —
  /// hand-built IR in tests.
  SiteId newCheckSite() {
    return newCheckSite(CheckSiteKind::TypeCheck, SourceLoc(), nullptr,
                        {});
  }

  /// Check sites allocated so far; every assigned Instr::Site is
  /// strictly below this (the verifier enforces it).
  uint32_t numCheckSites() const { return NumCheckSites; }

  /// The per-module site-attribution table (dense by SiteId). Module
  /// loaders hand it to SiteTableRegistry::registerTable; its File
  /// mirrors sourceName().
  const SiteTable &siteTable() const { return Sites; }
  SiteTable &siteTable() { return Sites; }

  /// The source file this module was compiled from, as shown in error
  /// reports and the printed `!site N @ "file:line:col"` annotations.
  const std::string &sourceName() const { return Sites.File; }
  void setSourceName(std::string Name) { Sites.File = std::move(Name); }

  /// Process-unique module identity. Used as the SiteTableRegistry
  /// registration key, so re-running a module is idempotent while a
  /// NEW module can never alias a destroyed one (heap addresses are
  /// reused; these ids never are).
  uint64_t uid() const { return Uid; }

  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<Global> Globals;
  /// String literal payloads (NUL terminator not included; the
  /// interpreter appends one).
  std::vector<std::string> Strings;

private:
  static uint64_t nextUid() {
    static std::atomic<uint64_t> Counter{0};
    return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  TypeContext *Types;
  uint32_t NumCheckSites = 0;
  SiteTable Sites{/*File=*/"<minic>", /*Entries=*/{}};
  uint64_t Uid = nextUid();
};

} // namespace ir
} // namespace effective

#endif // EFFECTIVE_IR_IR_H
