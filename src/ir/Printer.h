//===- ir/Printer.h - Textual IR dump ---------------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR to text for tests, debugging and the minic_sanitizer
/// driver's -emit-ir mode. The format is stable: instrumentation tests
/// assert on exact instruction sequences (the Figure 4 encodings).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_IR_PRINTER_H
#define EFFECTIVE_IR_PRINTER_H

#include "ir/IR.h"

#include <string>

namespace effective {
namespace ir {

/// Renders one instruction (no trailing newline).
std::string printInstr(const Function &F, const Module &M, const Instr &I);

/// Renders a whole function.
std::string printFunction(const Function &F, const Module &M);

/// Renders a whole module.
std::string printModule(const Module &M);

} // namespace ir
} // namespace effective

#endif // EFFECTIVE_IR_PRINTER_H
