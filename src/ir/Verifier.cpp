//===- ir/Verifier.cpp - IR structural invariants -------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Printer.h"

using namespace effective;
using namespace effective::ir;

namespace {

/// Per-function verification state.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, const Module &M,
                   DiagnosticEngine &Diags)
      : F(F), M(M), Diags(Diags) {}

  bool run() {
    if (F.Blocks.empty()) {
      error(0, 0, "function has no blocks");
      return false;
    }
    for (BlockId B = 0; B < F.Blocks.size(); ++B)
      verifyBlock(B);
    return Ok;
  }

private:
  void error(BlockId B, size_t Idx, std::string Msg) {
    Ok = false;
    std::string Where = "in @" + F.name();
    if (B < F.Blocks.size()) {
      Where += ", block ^" + F.Blocks[B].Name;
      if (Idx < F.Blocks[B].Instrs.size())
        Where += ", '" + printInstr(F, M, F.Blocks[B].Instrs[Idx]) + "'";
    }
    Diags.error(SourceLoc(), Msg + " (" + Where + ")");
  }

  void checkReg(BlockId B, size_t Idx, Reg R, const char *What) {
    if (R == NoReg || R >= F.numRegs())
      error(B, Idx, std::string("invalid ") + What + " register");
  }

  void checkBReg(BlockId B, size_t Idx, BReg R, const char *What) {
    if (R == NoBReg || R >= F.numBRegs())
      error(B, Idx, std::string("invalid ") + What + " bounds register");
  }

  void checkTarget(BlockId B, size_t Idx, BlockId T) {
    if (T >= F.Blocks.size())
      error(B, Idx, "branch to nonexistent block");
  }

  void checkType(BlockId B, size_t Idx, const TypeInfo *T,
                 const char *What) {
    if (!T)
      error(B, Idx, std::string("missing ") + What + " type");
  }

  /// A check instruction's site id must come from the module's dense
  /// allocator (NoSite is allowed: hand-built IR falls back to the
  /// type-derived pseudo-site at run time). When the site table
  /// describes the id, the described kind must match the opcode —
  /// otherwise error reports would attribute, say, a bounds failure to
  /// a type_check location.
  void checkSite(BlockId B, size_t Idx, const Instr &I,
                 CheckSiteKind Kind) {
    if (I.Site == NoSite)
      return;
    if (I.Site >= M.numCheckSites()) {
      error(B, Idx, "check site id out of range");
      return;
    }
    const SiteTable &T = M.siteTable();
    if (I.Site < T.Entries.size() &&
        T.Entries[I.Site].Kind != Kind &&
        // Hand-allocated ids default to TypeCheck with no location;
        // only a *located* entry is trusted to know its kind.
        T.Entries[I.Site].Loc.isValid())
      error(B, Idx, "site table kind mismatch");
  }

  void verifyBlock(BlockId BId) {
    const Block &B = F.Blocks[BId];
    if (B.Instrs.empty()) {
      error(BId, ~size_t(0), "empty block");
      return;
    }
    if (!B.Instrs.back().isTerminator())
      error(BId, B.Instrs.size() - 1, "block does not end in a terminator");
    for (size_t Idx = 0; Idx < B.Instrs.size(); ++Idx) {
      const Instr &I = B.Instrs[Idx];
      if (I.isTerminator() && Idx + 1 != B.Instrs.size())
        error(BId, Idx, "terminator in the middle of a block");
      verifyInstr(BId, Idx, I);
    }
  }

  void verifyInstr(BlockId B, size_t Idx, const Instr &I) {
    switch (I.Op) {
    case Opcode::ConstInt:
    case Opcode::ConstFloat:
    case Opcode::ConstNull:
      checkReg(B, Idx, I.Dst, "destination");
      checkType(B, Idx, I.Type, "constant");
      break;
    case Opcode::StringAddr:
      checkReg(B, Idx, I.Dst, "destination");
      if (I.Imm >= M.Strings.size())
        error(B, Idx, "string index out of range");
      break;
    case Opcode::GlobalAddr:
      checkReg(B, Idx, I.Dst, "destination");
      if (I.Imm >= M.Globals.size())
        error(B, Idx, "global index out of range");
      break;
    case Opcode::SlotAddr:
      checkReg(B, Idx, I.Dst, "destination");
      if (I.Imm >= F.Slots.size())
        error(B, Idx, "slot index out of range");
      break;
    case Opcode::Copy:
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "source");
      break;
    case Opcode::Arith:
    case Opcode::Compare:
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "lhs");
      checkReg(B, Idx, I.B, "rhs");
      checkType(B, Idx, I.Type, "operand");
      break;
    case Opcode::Convert:
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "source");
      checkType(B, Idx, I.Type, "target");
      break;
    case Opcode::PtrCast:
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "source");
      checkType(B, Idx, I.Type, "pointee");
      break;
    case Opcode::FieldAddr: {
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "base");
      checkType(B, Idx, I.Type, "record");
      const auto *R = dyn_cast_if_present<RecordType>(I.Type);
      if (!R)
        error(B, Idx, "field_addr type is not a record");
      else if (I.Imm >= R->fields().size())
        error(B, Idx, "field index out of range");
      break;
    }
    case Opcode::IndexAddr:
    case Opcode::PtrDiff:
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "base");
      checkReg(B, Idx, I.B, "index");
      checkType(B, Idx, I.Type, "element");
      break;
    case Opcode::Load:
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "address");
      checkType(B, Idx, I.Type, "value");
      break;
    case Opcode::Store:
      checkReg(B, Idx, I.A, "address");
      checkReg(B, Idx, I.B, "value");
      checkType(B, Idx, I.Type, "value");
      break;
    case Opcode::Malloc:
      checkReg(B, Idx, I.Dst, "destination");
      checkReg(B, Idx, I.A, "size");
      break;
    case Opcode::Free:
      checkReg(B, Idx, I.A, "pointer");
      break;
    case Opcode::Call: {
      if (I.Imm >= M.Functions.size()) {
        error(B, Idx, "callee index out of range");
        break;
      }
      const Function &Callee = *M.Functions[I.Imm];
      if (I.Args.size() != Callee.Params.size())
        error(B, Idx, "argument count mismatch");
      for (Reg A : I.Args)
        checkReg(B, Idx, A, "argument");
      if (I.Dst != NoReg)
        checkReg(B, Idx, I.Dst, "destination");
      break;
    }
    case Opcode::CallBuiltin:
      if (I.Imm > static_cast<uint64_t>(BuiltinId::PrintStr))
        error(B, Idx, "unknown builtin");
      for (Reg A : I.Args)
        checkReg(B, Idx, A, "argument");
      break;
    case Opcode::Ret:
      if (I.A != NoReg)
        checkReg(B, Idx, I.A, "return value");
      else if (F.returnType() && !F.returnType()->isVoid())
        error(B, Idx, "missing return value in non-void function");
      break;
    case Opcode::Br:
      checkTarget(B, Idx, I.Target0);
      break;
    case Opcode::CondBr:
      checkReg(B, Idx, I.A, "condition");
      checkTarget(B, Idx, I.Target0);
      checkTarget(B, Idx, I.Target1);
      break;
    case Opcode::TypeCheck:
      checkReg(B, Idx, I.A, "pointer");
      checkBReg(B, Idx, I.BDst, "destination");
      checkType(B, Idx, I.Type, "static");
      checkSite(B, Idx, I, CheckSiteKind::TypeCheck);
      break;
    case Opcode::BoundsGet:
      checkReg(B, Idx, I.A, "pointer");
      checkBReg(B, Idx, I.BDst, "destination");
      checkSite(B, Idx, I, CheckSiteKind::BoundsGet);
      break;
    case Opcode::BoundsCheck:
      checkReg(B, Idx, I.A, "pointer");
      checkBReg(B, Idx, I.BSrc, "source");
      checkSite(B, Idx, I, CheckSiteKind::BoundsCheck);
      break;
    case Opcode::BoundsNarrow:
      checkReg(B, Idx, I.A, "field address");
      checkBReg(B, Idx, I.BSrc, "source");
      checkBReg(B, Idx, I.BDst, "destination");
      checkSite(B, Idx, I, CheckSiteKind::BoundsNarrow);
      break;
    case Opcode::WideBounds:
      checkBReg(B, Idx, I.BDst, "destination");
      break;
    }
  }

  const Function &F;
  const Module &M;
  DiagnosticEngine &Diags;
  bool Ok = true;
};

} // namespace

bool ir::verifyFunction(const Function &F, const Module &M,
                        DiagnosticEngine &Diags) {
  return FunctionVerifier(F, M, Diags).run();
}

bool ir::verifyModule(const Module &M, DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const auto &F : M.Functions)
    Ok &= verifyFunction(*F, M, Diags);

  // Module-level site invariants: the attribution table must describe
  // exactly the allocated id space, and no two check instructions may
  // share an id — each site is one static check, which is what makes
  // site-keyed error dedup and the per-site counters meaningful.
  if (M.siteTable().Entries.size() != M.numCheckSites()) {
    Diags.error(SourceLoc(),
                "site table size mismatch: " +
                    std::to_string(M.siteTable().Entries.size()) +
                    " entries for " + std::to_string(M.numCheckSites()) +
                    " allocated sites");
    Ok = false;
  }
  std::vector<bool> Seen(M.numCheckSites(), false);
  for (const auto &F : M.Functions) {
    for (const Block &B : F->Blocks) {
      for (const Instr &I : B.Instrs) {
        if (!I.isCheck() || I.Site == NoSite ||
            I.Site >= M.numCheckSites())
          continue;
        if (Seen[I.Site]) {
          Diags.error(SourceLoc(), "duplicate check site " +
                                       std::to_string(I.Site) + " in @" +
                                       F->name());
          Ok = false;
        }
        Seen[I.Site] = true;
      }
    }
  }
  return Ok;
}
