//===- ir/IR.cpp - IR support routines ------------------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

using namespace effective;
using namespace effective::ir;

std::string_view ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
    return "const_int";
  case Opcode::ConstFloat:
    return "const_float";
  case Opcode::ConstNull:
    return "const_null";
  case Opcode::StringAddr:
    return "string_addr";
  case Opcode::GlobalAddr:
    return "global_addr";
  case Opcode::SlotAddr:
    return "slot_addr";
  case Opcode::Copy:
    return "copy";
  case Opcode::Arith:
    return "arith";
  case Opcode::Compare:
    return "cmp";
  case Opcode::Convert:
    return "convert";
  case Opcode::PtrCast:
    return "ptr_cast";
  case Opcode::FieldAddr:
    return "field_addr";
  case Opcode::IndexAddr:
    return "index_addr";
  case Opcode::PtrDiff:
    return "ptr_diff";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Malloc:
    return "malloc";
  case Opcode::Free:
    return "free";
  case Opcode::Call:
    return "call";
  case Opcode::CallBuiltin:
    return "call_builtin";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "cond_br";
  case Opcode::TypeCheck:
    return "type_check";
  case Opcode::BoundsGet:
    return "bounds_get";
  case Opcode::BoundsCheck:
    return "bounds_check";
  case Opcode::BoundsNarrow:
    return "bounds_narrow";
  case Opcode::WideBounds:
    return "wide_bounds";
  }
  return "<bad-opcode>";
}

std::string_view ir::builtinName(BuiltinId Id) {
  switch (Id) {
  case BuiltinId::PrintInt:
    return "print_int";
  case BuiltinId::PrintFloat:
    return "print_float";
  case BuiltinId::PrintStr:
    return "print_str";
  }
  return "<bad-builtin>";
}

bool ir::lookupBuiltin(std::string_view Name, BuiltinId &Id) {
  if (Name == "print_int") {
    Id = BuiltinId::PrintInt;
    return true;
  }
  if (Name == "print_float") {
    Id = BuiltinId::PrintFloat;
    return true;
  }
  if (Name == "print_str") {
    Id = BuiltinId::PrintStr;
    return true;
  }
  return false;
}
