//===- ir/Verifier.h - IR structural invariants -----------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of IR modules, run after lowering and again
/// after instrumentation. Reported problems indicate compiler bugs, not
/// user errors, so messages name functions and instruction positions.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_IR_VERIFIER_H
#define EFFECTIVE_IR_VERIFIER_H

#include "ir/IR.h"

namespace effective {
namespace ir {

/// Verifies \p M; appends one error per violation to \p Diags. Returns
/// true when the module is well-formed.
bool verifyModule(const Module &M, DiagnosticEngine &Diags);

/// Verifies one function (see verifyModule).
bool verifyFunction(const Function &F, const Module &M,
                    DiagnosticEngine &Diags);

} // namespace ir
} // namespace effective

#endif // EFFECTIVE_IR_VERIFIER_H
