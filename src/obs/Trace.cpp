//===- obs/Trace.cpp - Lock-free per-thread event tracing -----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace effective {
namespace obs {

#ifndef EFFSAN_OBS_OFF
namespace detail {
std::atomic<uint32_t> GlobalFlags{0};
} // namespace detail

uint32_t setFlags(uint32_t Flags) {
  uint32_t Masked = Flags & (TraceFlag | MetricsFlag | ProfileFlag);
  detail::GlobalFlags.store(Masked, std::memory_order_relaxed);
  return Masked;
}
#endif

const char *eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::CheckSlowPath:
    return "check_slow_path";
  case EventKind::MagazineRefill:
    return "magazine_refill";
  case EventKind::MagazineFlush:
    return "magazine_flush";
  case EventKind::QuarantineFlush:
    return "quarantine_flush";
  case EventKind::Steal:
    return "steal";
  case EventKind::ShardRecycle:
    return "shard_recycle";
  case EventKind::SessionReset:
    return "session_reset";
  case EventKind::RingOverflow:
    return "ring_overflow";
  case EventKind::DrainTick:
    return "drain_tick";
  case EventKind::GovernorStep:
    return "governor_step";
  case EventKind::SnapshotEmit:
    return "snapshot_emit";
  case EventKind::FaultInjected:
    return "fault_injected";
  case EventKind::NumEventKinds:
    break;
  }
  return "unknown";
}

const char *eventKindCategory(EventKind Kind) {
  switch (Kind) {
  case EventKind::CheckSlowPath:
    return "check";
  case EventKind::MagazineRefill:
  case EventKind::MagazineFlush:
  case EventKind::QuarantineFlush:
  case EventKind::Steal:
  case EventKind::ShardRecycle:
    return "alloc";
  case EventKind::SessionReset:
  case EventKind::RingOverflow:
    return "concurrent";
  case EventKind::DrainTick:
  case EventKind::GovernorStep:
  case EventKind::SnapshotEmit:
    return "service";
  case EventKind::FaultInjected:
    return "resilience";
  case EventKind::NumEventKinds:
    break;
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

Tracer &Tracer::instance() {
  // Leaky singleton: instrumented code (allocator TLS destructors,
  // static-storage sessions) may record during process teardown, so
  // the registry must never be destroyed.
  static Tracer *T = new Tracer;
  return *T;
}

static double wallMicrosNow() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer() : BaseTsc(now()), BaseWallMicros(wallMicrosNow()) {}

double Tracer::microsPerTick() {
  uint64_t Tsc = now();
  double Wall = wallMicrosNow();
  if (Tsc <= BaseTsc)
    return 1e-3; // Degenerate clock; pretend 1 GHz.
  return (Wall - BaseWallMicros) / double(Tsc - BaseTsc);
}

namespace {

/// TLS handle onto this thread's ring. Re-registers after every
/// Tracer::start() (epoch bump) so ring capacity changes take effect
/// and stale pre-start events cannot leak into a new session; retires
/// the ring on thread exit so the collector can free it once drained.
struct RingHolder {
  TraceRing *Ring = nullptr;
  uint64_t Epoch = ~uint64_t(0);

  ~RingHolder() {
    if (Ring)
      Ring->retire();
  }
};

thread_local RingHolder TlsRing;

static std::atomic<uint64_t> NextTid{1};

uint64_t thisTid() {
  static thread_local uint64_t Tid =
      NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

} // namespace

TraceRing *Tracer::ringForThisThread() {
  uint64_t Epoch = RingEpoch.load(std::memory_order_acquire);
  RingHolder &H = TlsRing;
  if (EFFSAN_LIKELY(H.Ring && H.Epoch == Epoch))
    return H.Ring;
  if (H.Ring)
    H.Ring->retire(); // Stale epoch: hand the old ring to the collector.
  auto Ring = std::make_unique<TraceRing>(RingCap, thisTid());
  TraceRing *Raw = Ring.get();
  {
    std::lock_guard<std::mutex> G(RegLock);
    Rings.push_back(std::move(Ring));
  }
  H.Ring = Raw;
  H.Epoch = Epoch;
  return Raw;
}

void Tracer::record(EventKind Kind, uint16_t Shard, uint64_t Arg,
                    uint32_t DurTsc) {
  TraceEvent E;
  E.Tsc = now();
  E.Arg = Arg;
  E.DurTsc = DurTsc;
  E.Kind = static_cast<uint16_t>(Kind);
  E.Shard = Shard;
  ringForThisThread()->tryPush(E);
}

bool Tracer::start(size_t RingCapacity) {
  if (!compiledIn())
    return false;
  std::lock_guard<std::mutex> CG(CollectLock);
  {
    std::lock_guard<std::mutex> RG(RegLock);
    // Everything recorded before this start() belongs to a previous
    // session: discard in-ring events and drop counts, and free
    // retired rings outright.
    for (auto It = Rings.begin(); It != Rings.end();) {
      if ((*It)->retired()) {
        It = Rings.erase(It);
        continue;
      }
      TraceEvent Scratch;
      while ((*It)->tryPop(Scratch))
        ;
      (*It)->clearDropped();
      ++It;
    }
    if (RingCapacity)
      RingCap = RingCapacity;
    // New epoch: live threads re-register on their next record(), so
    // the capacity change applies and their old rings retire.
    RingEpoch.fetch_add(1, std::memory_order_release);
  }
  Collected.clear();
  CollectDropped.store(0, std::memory_order_relaxed);
  RetiredDropped.store(0, std::memory_order_relaxed);
#ifndef EFFSAN_OBS_OFF
  detail::GlobalFlags.fetch_or(TraceFlag, std::memory_order_relaxed);
#endif
  return true;
}

void Tracer::stop() {
#ifndef EFFSAN_OBS_OFF
  detail::GlobalFlags.fetch_and(~uint32_t(TraceFlag),
                                std::memory_order_relaxed);
#endif
}

void Tracer::collectLocked() {
  std::lock_guard<std::mutex> G(RegLock);
  for (auto It = Rings.begin(); It != Rings.end();) {
    TraceRing &Ring = **It;
    TraceEvent E;
    while (Ring.tryPop(E)) {
      if (Collected.size() >= MaxCollected) {
        CollectDropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Collected.push_back(CollectedEvent{E, Ring.tid()});
    }
    if (Ring.retired()) {
      // Drained after retirement: preserve its drop count, free it.
      RetiredDropped.fetch_add(Ring.dropped(), std::memory_order_relaxed);
      It = Rings.erase(It);
      continue;
    }
    ++It;
  }
}

void Tracer::collect() {
  std::lock_guard<std::mutex> G(CollectLock);
  collectLocked();
}

uint64_t Tracer::dropped() const {
  uint64_t Total = RetiredDropped.load(std::memory_order_relaxed) +
                   CollectDropped.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> G(RegLock);
  for (const auto &Ring : Rings)
    Total += Ring->dropped();
  return Total;
}

size_t Tracer::collectedSize() {
  std::lock_guard<std::mutex> G(CollectLock);
  return Collected.size();
}

namespace {

void flushChunk(std::string &Buf, WriteFn Write, void *UserData,
                size_t Threshold) {
  if (Buf.size() < Threshold)
    return;
  Write(Buf.data(), Buf.size(), UserData);
  Buf.clear();
}

} // namespace

uint64_t Tracer::exportChromeJson(WriteFn Write, void *UserData) {
  std::lock_guard<std::mutex> G(CollectLock);
  collectLocked();

  std::stable_sort(Collected.begin(), Collected.end(),
                   [](const CollectedEvent &A, const CollectedEvent &B) {
                     uint64_t SA = A.Event.Tsc - A.Event.DurTsc;
                     uint64_t SB = B.Event.Tsc - B.Event.DurTsc;
                     return SA < SB;
                   });

  double Mpt = microsPerTick();
  std::string Buf;
  Buf.reserve(1 << 16);
  Buf += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char Line[512];
  uint64_t Count = 0;
  for (const CollectedEvent &C : Collected) {
    const TraceEvent &E = C.Event;
    auto Kind = static_cast<EventKind>(E.Kind);
    uint64_t StartTsc = E.Tsc - E.DurTsc;
    double Ts =
        StartTsc >= BaseTsc ? double(StartTsc - BaseTsc) * Mpt : 0.0;
    int N;
    if (E.DurTsc) {
      N = std::snprintf(
          Line, sizeof(Line),
          "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu64
          ",\"args\":{\"arg\":%" PRIu64 ",\"shard\":%d}}",
          Count ? "," : "", eventKindName(Kind), eventKindCategory(Kind), Ts,
          double(E.DurTsc) * Mpt, C.Tid, E.Arg,
          E.Shard == NoShard ? -1 : int(E.Shard));
    } else {
      N = std::snprintf(
          Line, sizeof(Line),
          "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
          "\"ts\":%.3f,\"pid\":1,\"tid\":%" PRIu64
          ",\"args\":{\"arg\":%" PRIu64 ",\"shard\":%d}}",
          Count ? "," : "", eventKindName(Kind), eventKindCategory(Kind), Ts,
          C.Tid, E.Arg, E.Shard == NoShard ? -1 : int(E.Shard));
    }
    if (N > 0)
      Buf.append(Line, static_cast<size_t>(N));
    ++Count;
    flushChunk(Buf, Write, UserData, 1 << 15);
  }
  Buf += "]}";
  Write(Buf.data(), Buf.size(), UserData);
  return Count;
}

uint64_t Tracer::exportChromeJson(std::string &Out) {
  return exportChromeJson(
      [](const char *Data, size_t Len, void *UD) {
        static_cast<std::string *>(UD)->append(Data, Len);
      },
      &Out);
}

} // namespace obs
} // namespace effective
