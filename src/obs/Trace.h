//===- obs/Trace.h - Lock-free per-thread event tracing ---------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: typed events recorded
/// into per-thread lock-free SPSC rings, drained by a single collector
/// (the service drain thread, or the exporter itself), and rendered as
/// Chrome trace-event JSON that loads directly in chrome://tracing or
/// Perfetto.
///
/// Design constraints, in priority order:
///
///  1. A disabled tracer costs one relaxed atomic load and a predicted
///     branch on every instrumented path — no TLS lookup, no call.
///  2. An enabled writer NEVER blocks: a full ring counts a drop and
///     returns. Writers are wait-free (one relaxed load + two stores).
///  3. `EFFSAN_OBS_OFF` compiles every instrumentation site out
///     entirely (the flag accessors become constant-false inlines, so
///     `EFFSAN_OBS_EVENT` is dead code the optimizer deletes).
///
/// Timestamps are raw TSC ticks (`rdtsc` on x86; a steady_clock
/// nanosecond counter elsewhere). Each Tracer records a two-point
/// (tsc, wall) calibration at construction and computes the
/// microseconds-per-tick ratio lazily at export time, so the hot path
/// never multiplies.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_OBS_TRACE_H
#define EFFECTIVE_OBS_TRACE_H

#include "support/Compiler.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace effective {
namespace obs {

//===----------------------------------------------------------------------===//
// Global enable flags
//===----------------------------------------------------------------------===//

/// Which observability facilities are live. Checked (one relaxed load)
/// on every instrumented hot path; set through \c setFlags.
enum ObsFlags : uint32_t {
  TraceFlag = 1u << 0,   ///< Record events into per-thread trace rings.
  MetricsFlag = 1u << 1, ///< Sample check latencies into histograms.
  ProfileFlag = 1u << 2, ///< Count per-site hits/misses in SiteProfiler.
};

/// Every how many type checks the latency sampler diverts one check
/// through the timed wrapper (power of two minus one; see
/// Runtime::typeCheck). The timed path costs two rdtscs plus the
/// histogram bumps (~100 cycles) against a ~10-cycle average check, so
/// 1-in-1024 keeps the amortized cost well under 1% while still
/// filling the latency histograms in milliseconds of traffic (a
/// check-bound workload samples hundreds of thousands of checks per
/// second).
inline constexpr uint64_t CheckSampleMask = 1023;

/// Every how many inline-cache hits the site profiler records one
/// (misses are recorded unconditionally — the slow path dwarfs the
/// bump). Sampling keeps the profiler's table walk off the dominant
/// fast path; hot-site RANKING is unaffected (hits scale uniformly),
/// and a site's true hit count is approximately Hits * 16.
inline constexpr uint64_t ProfileSampleMask = 15;

#ifndef EFFSAN_OBS_OFF

namespace detail {
extern std::atomic<uint32_t> GlobalFlags;
} // namespace detail

/// True when observability support is compiled into this build.
constexpr bool compiledIn() { return true; }

EFFSAN_ALWAYS_INLINE uint32_t flags() {
  return detail::GlobalFlags.load(std::memory_order_relaxed);
}
EFFSAN_ALWAYS_INLINE bool traceActive() { return flags() & TraceFlag; }
EFFSAN_ALWAYS_INLINE bool metricsActive() { return flags() & MetricsFlag; }
EFFSAN_ALWAYS_INLINE bool profileActive() { return flags() & ProfileFlag; }

/// Replace the global flag word; returns the flags now in effect.
uint32_t setFlags(uint32_t Flags);

#else // EFFSAN_OBS_OFF

constexpr bool compiledIn() { return false; }
constexpr uint32_t flags() { return 0; }
constexpr bool traceActive() { return false; }
constexpr bool metricsActive() { return false; }
constexpr bool profileActive() { return false; }
inline uint32_t setFlags(uint32_t) { return 0; }

#endif // EFFSAN_OBS_OFF

//===----------------------------------------------------------------------===//
// Clock
//===----------------------------------------------------------------------===//

/// Raw timestamp in TSC ticks (nanoseconds on non-x86). Monotonic
/// enough for tracing; calibrated to wall microseconds at export time.
EFFSAN_ALWAYS_INLINE uint64_t now() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

//===----------------------------------------------------------------------===//
// Events
//===----------------------------------------------------------------------===//

/// Every event kind the runtime can record. One ring slot each; the
/// catalogue (meaning of Arg, layer, duration vs instant) lives in
/// docs/OBSERVABILITY.md.
enum class EventKind : uint16_t {
  CheckSlowPath,   ///< check: type-check inline-cache miss. Arg = SiteId.
  MagazineRefill,  ///< alloc: TLS magazine refilled. Arg = blocks taken.
  MagazineFlush,   ///< alloc: TLS magazine overflow flush. Arg = blocks.
  QuarantineFlush, ///< alloc: pending-quarantine batch flushed. Arg = batch.
  Steal,           ///< alloc: refill stolen from a sibling. Arg = victim.
  ShardRecycle,    ///< alloc: shard sub-arenas rewound. Arg = new epoch.
  SessionReset,    ///< concurrent: pool shard session reset. Arg = shard.
  RingOverflow,    ///< concurrent: ErrorRing push dropped. Arg = capacity.
  DrainTick,       ///< service: one drain-loop tick. Arg = events drained.
  GovernorStep,    ///< service: policy degrade/restore. Arg = new level.
  SnapshotEmit,    ///< service: snapshot hook fired. Arg = bytes rendered.
  FaultInjected,   ///< resilience: a fault point fired. Arg = point index.
  NumEventKinds,
};

/// Stable lower_snake name for JSON output.
const char *eventKindName(EventKind Kind);

/// Which layer the event belongs to ("check", "alloc", "concurrent",
/// "service") — becomes the Chrome trace "cat" field.
const char *eventKindCategory(EventKind Kind);

/// Shard value for events with no owning shard.
inline constexpr uint16_t NoShard = 0xffff;

/// One ring slot. 24 bytes; Tsc is the event END for duration events
/// (start = Tsc - DurTsc), the instant otherwise (DurTsc == 0).
struct TraceEvent {
  uint64_t Tsc = 0;
  uint64_t Arg = 0;
  uint32_t DurTsc = 0;
  uint16_t Kind = 0;
  uint16_t Shard = NoShard;
};

//===----------------------------------------------------------------------===//
// TraceRing — one writer thread, one collector
//===----------------------------------------------------------------------===//

/// Fixed-capacity SPSC ring. The owning thread pushes; the single
/// collector (serialized by Tracer::CollectLock) pops. A full ring
/// drops the event and counts it — the writer never waits.
class TraceRing {
public:
  explicit TraceRing(size_t Capacity, uint64_t Tid)
      : Cap(roundPow2(Capacity)), Mask(Cap - 1), Tid(Tid),
        Slots(new TraceEvent[Cap]) {}

  TraceRing(const TraceRing &) = delete;
  TraceRing &operator=(const TraceRing &) = delete;

  /// Writer side. Wait-free; returns false (and counts) when full.
  bool tryPush(const TraceEvent &E) {
    size_t H = Head.load(std::memory_order_relaxed);
    size_t T = Tail.load(std::memory_order_acquire);
    if (EFFSAN_UNLIKELY(H - T >= Cap)) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Slots[H & Mask] = E;
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Collector side. Pops one event; false when empty.
  bool tryPop(TraceEvent &Out) {
    size_t T = Tail.load(std::memory_order_relaxed);
    size_t H = Head.load(std::memory_order_acquire);
    if (T == H)
      return false;
    Out = Slots[T & Mask];
    Tail.store(T + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return Cap; }
  uint64_t tid() const { return Tid; }
  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }
  void clearDropped() { Dropped.store(0, std::memory_order_relaxed); }

  /// Set by the TLS holder's destructor; the collector frees the ring
  /// once it has been drained after retirement.
  void retire() { Retired.store(true, std::memory_order_release); }
  bool retired() const { return Retired.load(std::memory_order_acquire); }

  size_t size() const {
    size_t H = Head.load(std::memory_order_acquire);
    size_t T = Tail.load(std::memory_order_acquire);
    return H - T;
  }

private:
  static size_t roundPow2(size_t N) {
    size_t P = 16;
    while (P < N)
      P <<= 1;
    return P;
  }

  const size_t Cap;
  const size_t Mask;
  const uint64_t Tid;
  std::unique_ptr<TraceEvent[]> Slots;
  alignas(64) std::atomic<size_t> Head{0}; ///< Writer-owned.
  alignas(64) std::atomic<size_t> Tail{0}; ///< Collector-owned.
  std::atomic<uint64_t> Dropped{0};
  std::atomic<bool> Retired{false};
};

//===----------------------------------------------------------------------===//
// Tracer — process-wide registry + collector + exporter
//===----------------------------------------------------------------------===//

/// A collected event plus the recording thread, buffered between
/// collection (drain-thread cadence) and export (end of session).
struct CollectedEvent {
  TraceEvent Event;
  uint64_t Tid = 0;
};

/// Streaming sink for rendered JSON (the C ABI export callback).
using WriteFn = void (*)(const char *Data, size_t Len, void *UserData);

/// Process-wide tracer: owns every thread's ring, collects them into
/// one buffer, and renders Chrome trace-event JSON. A leaky singleton —
/// instrumented TLS destructors may run at any point during process
/// teardown, so the registry must outlive every thread.
class Tracer {
public:
  static Tracer &instance();

  /// Arm tracing: drop any stale buffered events, reset drop counters,
  /// size new rings at \p RingCapacity slots, and set TraceFlag.
  /// Returns false when observability is compiled out.
  bool start(size_t RingCapacity = DefaultRingCapacity);

  /// Disarm tracing (clears TraceFlag). Buffered + in-ring events stay
  /// available for export.
  void stop();

  /// Record one event into the calling thread's ring. Callers gate on
  /// traceActive() first (the EFFSAN_OBS_EVENT macro does).
  void record(EventKind Kind, uint16_t Shard, uint64_t Arg,
              uint32_t DurTsc = 0);

  /// Drain every thread ring into the internal buffer. Called
  /// periodically by the supervisor drain thread so long runs do not
  /// overflow the rings; export calls it implicitly.
  void collect();

  /// Render everything collected so far (collecting first) as Chrome
  /// trace-event JSON through \p Write. Returns the number of events
  /// exported.
  uint64_t exportChromeJson(WriteFn Write, void *UserData);

  /// Convenience overload appending to a string.
  uint64_t exportChromeJson(std::string &Out);

  /// Events dropped because a ring was full, plus events discarded
  /// because the collected buffer hit its cap.
  uint64_t dropped() const;

  /// Events currently buffered (post-collect; for tests).
  size_t collectedSize();

  static constexpr size_t DefaultRingCapacity = 1u << 14;

  /// Cap on the buffered collection: beyond this, collect() discards
  /// (counted in dropped()) rather than growing without bound.
  static constexpr size_t MaxCollected = 1u << 20;

private:
  Tracer();

  TraceRing *ringForThisThread();
  void collectLocked();

  /// (tsc, wall-microseconds) pair taken at construction; a second pair
  /// at export time yields the ticks-to-microseconds ratio.
  uint64_t BaseTsc;
  double BaseWallMicros;
  double microsPerTick();

  mutable std::mutex RegLock; ///< Guards Rings (registration + iteration).
  std::vector<std::unique_ptr<TraceRing>> Rings;
  size_t RingCap = DefaultRingCapacity;
  std::atomic<uint64_t> RingEpoch{0}; ///< Bumped by start(); TLS re-registers.

  std::mutex CollectLock; ///< Serializes collectors (SPSC reader side).
  std::vector<CollectedEvent> Collected;
  std::atomic<uint64_t> CollectDropped{0};
  std::atomic<uint64_t> RetiredDropped{0}; ///< Drops from freed rings.
};

} // namespace obs
} // namespace effective

//===----------------------------------------------------------------------===//
// Instrumentation macro
//===----------------------------------------------------------------------===//

/// Record an instant event when tracing is armed. Costs one relaxed
/// load + predicted-untaken branch when idle; compiles out entirely
/// under EFFSAN_OBS_OFF (traceActive() is constant false).
#define EFFSAN_OBS_EVENT(KIND, SHARD, ARG)                                     \
  do {                                                                         \
    if (EFFSAN_UNLIKELY(::effective::obs::traceActive()))                      \
      ::effective::obs::Tracer::instance().record(                             \
          ::effective::obs::EventKind::KIND, static_cast<uint16_t>(SHARD),     \
          static_cast<uint64_t>(ARG));                                         \
  } while (0)

/// Record a duration event (start timestamp taken by the caller with
/// obs::now()) when tracing is armed.
#define EFFSAN_OBS_SPAN(KIND, SHARD, ARG, START_TSC)                           \
  do {                                                                         \
    if (EFFSAN_UNLIKELY(::effective::obs::traceActive()))                      \
      ::effective::obs::Tracer::instance().record(                             \
          ::effective::obs::EventKind::KIND, static_cast<uint16_t>(SHARD),     \
          static_cast<uint64_t>(ARG),                                          \
          static_cast<uint32_t>(::effective::obs::now() - (START_TSC)));       \
  } while (0)

#endif // EFFECTIVE_OBS_TRACE_H
