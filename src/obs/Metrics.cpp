//===- obs/Metrics.cpp - Counters, gauges, log2 histograms ----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cinttypes>
#include <cstdio>

namespace effective {
namespace obs {

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &Name, const std::string &Help,
                              const std::string &Labels, Kind MetricKind) {
  std::lock_guard<std::mutex> G(Lock);
  for (auto &E : Entries)
    if (E->Name == Name && E->Labels == Labels)
      return *E;
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Labels = Labels;
  E->Help = Help;
  E->MetricKind = MetricKind;
  switch (MetricKind) {
  case Kind::CounterKind:
    E->C = std::make_unique<Counter>();
    break;
  case Kind::GaugeKind:
    E->G = std::make_unique<Gauge>();
    break;
  case Kind::HistogramKind:
    E->H = std::make_unique<Histogram>();
    break;
  }
  Entries.push_back(std::move(E));
  return *Entries.back();
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help,
                                  const std::string &Labels) {
  return *findOrCreate(Name, Help, Labels, Kind::CounterKind).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name, const std::string &Help,
                              const std::string &Labels) {
  return *findOrCreate(Name, Help, Labels, Kind::GaugeKind).G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help,
                                      const std::string &Labels) {
  return *findOrCreate(Name, Help, Labels, Kind::HistogramKind).H;
}

namespace {

void appendLine(std::string &Out, const std::string &Name,
                const std::string &Labels, uint64_t Value) {
  char Buf[64];
  Out += Name;
  if (!Labels.empty()) {
    Out += '{';
    Out += Labels;
    Out += '}';
  }
  std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Value);
  Out += Buf;
}

void appendHeader(std::string &Out, const std::string &Name,
                  const std::string &Help, const char *Type,
                  std::string &LastFamily) {
  // HELP/TYPE once per metric family even when labels split it into
  // several series (entries with equal names are adjacent by
  // registration order in practice; a repeat header is also legal).
  if (Name == LastFamily)
    return;
  LastFamily = Name;
  Out += "# HELP " + Name + " " + Help + "\n";
  Out += "# TYPE " + Name + " " + Type + "\n";
}

} // namespace

void MetricsRegistry::render(std::string &Out) const {
  std::lock_guard<std::mutex> G(Lock);
  std::string LastFamily;
  char Buf[96];
  for (const auto &E : Entries) {
    switch (E->MetricKind) {
    case Kind::CounterKind:
      appendHeader(Out, E->Name, E->Help, "counter", LastFamily);
      appendLine(Out, E->Name, E->Labels, E->C->value());
      break;
    case Kind::GaugeKind: {
      appendHeader(Out, E->Name, E->Help, "gauge", LastFamily);
      Out += E->Name;
      if (!E->Labels.empty()) {
        Out += '{';
        Out += E->Labels;
        Out += '}';
      }
      std::snprintf(Buf, sizeof(Buf), " %" PRId64 "\n", E->G->value());
      Out += Buf;
      break;
    }
    case Kind::HistogramKind: {
      appendHeader(Out, E->Name, E->Help, "histogram", LastFamily);
      const Histogram &H = *E->H;
      // Highest non-empty bucket bounds the rendered tail; everything
      // above it collapses into +Inf.
      unsigned Top = 0;
      for (unsigned I = 0; I < Histogram::NumBuckets; ++I)
        if (H.bucket(I))
          Top = I;
      uint64_t Cum = 0;
      std::string Sep = E->Labels.empty() ? "" : ",";
      for (unsigned I = 0; I <= Top; ++I) {
        Cum += H.bucket(I);
        // Bucket i holds samples <= 2^i - 1.
        uint64_t Le = (I >= 64) ? ~uint64_t(0) : ((uint64_t(1) << I) - 1);
        std::snprintf(Buf, sizeof(Buf), "le=\"%" PRIu64 "\"", Le);
        appendLine(Out, E->Name + "_bucket", E->Labels + Sep + Buf, Cum);
      }
      appendLine(Out, E->Name + "_bucket", E->Labels + Sep + "le=\"+Inf\"",
                 H.count());
      appendLine(Out, E->Name + "_sum", E->Labels, H.sum());
      appendLine(Out, E->Name + "_count", E->Labels, H.count());
      break;
    }
    }
  }
}

MetricsRegistry &MetricsRegistry::global() {
  // Leaky singleton: sampled check paths may observe during teardown.
  static MetricsRegistry *R = new MetricsRegistry;
  return *R;
}

Histogram &checkFastLatency() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "effsan_check_fast_latency_ticks",
      "Sampled type-check latency on the inline-cache hit path (TSC ticks)");
  return H;
}

Histogram &checkSlowLatency() {
  static Histogram &H = MetricsRegistry::global().histogram(
      "effsan_check_slow_latency_ticks",
      "Sampled type-check latency on the cache-miss/legacy path (TSC ticks)");
  return H;
}

} // namespace obs
} // namespace effective
