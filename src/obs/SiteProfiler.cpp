//===- obs/SiteProfiler.cpp - Hot check-site profiling --------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/SiteProfiler.h"

#include <algorithm>

namespace effective {
namespace obs {

void SiteProfiler::noteCold(Slot &S, uint32_t Site, bool Hit) {
  uint32_t Expected = 0;
  if (!S.Key.compare_exchange_strong(Expected, Site + 1,
                                     std::memory_order_relaxed)) {
    if (Expected != Site + 1) {
      // Another site owns this slot for the session: a direct-map
      // collision. Count it so conflicts() flags undercounted tables.
      Conflicts.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // A racing claim of the SAME site won; fall through and count.
  }
  std::atomic<uint64_t> &C = Hit ? S.Hits : S.Misses;
  C.store(C.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

std::vector<SiteProfile> SiteProfiler::collect() const {
  std::vector<SiteProfile> All;
  for (size_t I = 0; I < NumSlots; ++I) {
    const Slot &S = Table[I];
    uint32_t Key = S.Key.load(std::memory_order_relaxed);
    if (!Key)
      continue;
    SiteProfile P;
    P.Site = Key - 1;
    P.Hits = S.Hits.load(std::memory_order_relaxed);
    P.Misses = S.Misses.load(std::memory_order_relaxed);
    All.push_back(P);
  }
  return All;
}

std::vector<SiteProfile> SiteProfiler::topSites(size_t N) const {
  std::vector<SiteProfile> All = collect();
  std::sort(All.begin(), All.end(),
            [](const SiteProfile &A, const SiteProfile &B) {
              return A.Hits + A.Misses > B.Hits + B.Misses;
            });
  if (All.size() > N)
    All.resize(N);
  return All;
}

void SiteProfiler::reset() {
  for (size_t I = 0; I < NumSlots; ++I) {
    Slot &S = Table[I];
    S.Key.store(0, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
    S.Misses.store(0, std::memory_order_relaxed);
  }
  Conflicts.store(0, std::memory_order_relaxed);
}

} // namespace obs
} // namespace effective
