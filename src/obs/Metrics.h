//===- obs/Metrics.h - Counters, gauges, log2 histograms --------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: a registry of named
/// counters, gauges, and log2-bucketed histograms with a Prometheus
/// text-exposition renderer.
///
/// Recording is wait-free (relaxed atomics); registration and
/// rendering take the registry mutex. Histograms bucket by
/// `bit_width(sample)` — 65 fixed buckets covering the whole uint64
/// range with no configuration, rendered cumulatively with
/// `le="2^i - 1"` bounds as Prometheus expects.
///
/// Two registries exist in practice: the process-wide \c global()
/// registry (check-latency histograms fed from the Runtime sampler)
/// and one owned by each service::Supervisor (service counters/gauges
/// mirrored from its stats each drain tick).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_OBS_METRICS_H
#define EFFECTIVE_OBS_METRICS_H

#include "support/Compiler.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace effective {
namespace obs {

/// Monotonic counter. add() for true event counts; set() when
/// mirroring an externally-maintained monotonic total (service stats).
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  void set(uint64_t N) { Value.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Point-in-time signed value.
class Gauge {
public:
  void set(int64_t N) { Value.store(N, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Log2-bucketed histogram: sample N lands in bucket bit_width(N),
/// i.e. bucket i counts samples in [2^(i-1), 2^i - 1] (bucket 0 = the
/// value 0). observe() uses the CheckCounters::bump idiom — relaxed
/// non-RMW load+store instead of lock-prefixed xadd, so a sampled
/// check path pays a handful of cycles, not three serialized RMWs.
/// Concurrent observers can lose an update, which only skews the
/// statistics (the latency sampler is already 1-in-1024); nothing
/// correctness-bearing reads histograms.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  void observe(uint64_t Sample) {
    unsigned B = static_cast<unsigned>(std::bit_width(Sample));
    statBump(Buckets[B], 1);
    statBump(Sum, Sample);
    statBump(Count, 1);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t bucket(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
  }

private:
  static EFFSAN_ALWAYS_INLINE void statBump(std::atomic<uint64_t> &C,
                                            uint64_t N) {
    C.store(C.load(std::memory_order_relaxed) + N,
            std::memory_order_relaxed);
  }

  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Count{0};
};

/// Named metric registry with Prometheus text rendering. Metric
/// objects are never freed while the registry lives, so recorded
/// pointers can be cached and bumped without re-lookup.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Find-or-create by (name, labels). Labels are a pre-rendered
  /// Prometheus label body without braces, e.g. `class="7"`, or empty.
  Counter &counter(const std::string &Name, const std::string &Help,
                   const std::string &Labels = "");
  Gauge &gauge(const std::string &Name, const std::string &Help,
               const std::string &Labels = "");
  Histogram &histogram(const std::string &Name, const std::string &Help,
                       const std::string &Labels = "");

  /// Append the whole registry in Prometheus text-exposition format.
  void render(std::string &Out) const;

  /// The process-wide registry (leaky singleton; see Tracer::instance).
  static MetricsRegistry &global();

private:
  enum class Kind { CounterKind, GaugeKind, HistogramKind };

  struct Entry {
    std::string Name;
    std::string Labels;
    std::string Help;
    Kind MetricKind;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  Entry &findOrCreate(const std::string &Name, const std::string &Help,
                      const std::string &Labels, Kind MetricKind);

  mutable std::mutex Lock;
  std::vector<std::unique_ptr<Entry>> Entries;
};

/// The two check-latency histograms fed by the Runtime's 1-in-1024
/// type-check sampler, registered in the global registry. Units are
/// raw TSC ticks (the sampler never multiplies on the hot path);
/// divide by the calibrated tick rate offline.
Histogram &checkFastLatency();
Histogram &checkSlowLatency();

} // namespace obs
} // namespace effective

#endif // EFFECTIVE_OBS_METRICS_H
