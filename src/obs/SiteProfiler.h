//===- obs/SiteProfiler.h - Hot check-site profiling ------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-session hot check-site counters: a direct-mapped, CAS-claimed
/// slot table mapping SiteId -> {hits, misses}, bumped from the
/// type-check paths when ProfileFlag is set, queried as a sorted
/// top-N "flamegraph of checks" with error-event counts joined from
/// the session's ErrorReporter and file:line:col resolved through the
/// SiteTable at query time.
///
/// The hot-path bump is the CheckCounters idiom: a relaxed non-RMW
/// load+store (per-site counts tolerate rare lost increments in
/// exchange for no lock-prefixed ops on the check path). Slot claims
/// use one CAS the first time a site is seen; a claimed slot never
/// changes owner until reset(). Collisions on the direct map are
/// counted, not chained — profiling is a sampler, not an audit.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_OBS_SITEPROFILER_H
#define EFFECTIVE_OBS_SITEPROFILER_H

#include "obs/Trace.h"
#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace effective {
namespace obs {

/// One profiled site, as returned by topSites().
struct SiteProfile {
  uint32_t Site = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

class SiteProfiler {
public:
  static constexpr size_t DefaultSlots = 1024;

  explicit SiteProfiler(size_t Slots = DefaultSlots) {
    if (!compiledIn())
      return; // Zero slots: note*() bail on the empty table.
    size_t P = 64;
    while (P < Slots)
      P <<= 1;
    NumSlots = P;
    Table.reset(new Slot[P]);
  }

  EFFSAN_ALWAYS_INLINE void noteHit(uint32_t Site) { note(Site, true); }
  EFFSAN_ALWAYS_INLINE void noteMiss(uint32_t Site) { note(Site, false); }

  /// Sites that hashed onto an already-claimed slot (uncounted work).
  uint64_t conflicts() const {
    return Conflicts.load(std::memory_order_relaxed);
  }

  /// The top \p N sites by hits+misses, descending.
  std::vector<SiteProfile> topSites(size_t N) const;

  /// Every claimed slot, unordered — the raw material for cross-table
  /// merges (concurrent::SessionPool sums its shards' tables with
  /// this before ranking once pool-wide).
  std::vector<SiteProfile> collect() const;

  void reset();

private:
  struct Slot {
    /// Site+1 once claimed (0 = empty); CAS-claimed, then stable.
    std::atomic<uint32_t> Key{0};
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Misses{0};
  };

  EFFSAN_ALWAYS_INLINE void note(uint32_t Site, bool Hit) {
    if (EFFSAN_UNLIKELY(!NumSlots))
      return;
    Slot &S = Table[(Site * 0x9e3779b9u) & (NumSlots - 1)];
    if (EFFSAN_UNLIKELY(S.Key.load(std::memory_order_relaxed) != Site + 1))
      return noteCold(S, Site, Hit);
    std::atomic<uint64_t> &C = Hit ? S.Hits : S.Misses;
    C.store(C.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  /// First sighting of a site (claim its slot) or a direct-map
  /// collision (count and drop).
  EFFSAN_NOINLINE void noteCold(Slot &S, uint32_t Site, bool Hit);

  std::unique_ptr<Slot[]> Table;
  size_t NumSlots = 0;
  std::atomic<uint64_t> Conflicts{0};
};

} // namespace obs
} // namespace effective

#endif // EFFECTIVE_OBS_SITEPROFILER_H
