//===- concurrent/ErrorRing.h - Lock-free MPSC error event ring -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer / single-consumer ring of raw error events,
/// replacing the reporter mutex on the error hot path of pooled
/// sessions. Producers (the per-shard runtimes of a SessionPool) push
/// ErrorInfo values with a single CAS and no lock; one drainer pops
/// them and feeds the pool's central ErrorReporter, which keeps the
/// bucketing / dedup-cap / callback semantics in one place.
///
/// The cell protocol is Vyukov's bounded MPMC queue (restricted here to
/// one consumer): each cell carries a sequence number that ticks
/// forward by capacity per lap, so producers and the consumer
/// synchronize per cell, not on a shared lock.
///
/// ErrorInfo is a plain value (type pointers into an interned
/// TypeContext, a raw pointer that is only ever printed, and a Detail
/// string that is always a literal), so events are copied into the ring
/// whole — nothing borrowed from the erring thread survives the push.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CONCURRENT_ERRORRING_H
#define EFFECTIVE_CONCURRENT_ERRORRING_H

#include "core/ErrorReporter.h"

#include <atomic>
#include <cstddef>
#include <memory>

namespace effective {
namespace concurrent {

/// The MPSC error ring. All methods are safe from any thread except
/// tryPop/drainTo, which must be called by one consumer at a time.
class ErrorRing {
public:
  static constexpr size_t DefaultCapacity = 4096;

  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit ErrorRing(size_t Capacity = DefaultCapacity);

  ErrorRing(const ErrorRing &) = delete;
  ErrorRing &operator=(const ErrorRing &) = delete;

  /// Lock-free push from any producer thread. Returns false when the
  /// ring is full (and counts the overflow); the caller decides the
  /// fallback — the SessionPool reports such events directly to the
  /// central reporter under its lock, so no event is ever lost.
  bool tryPush(const ErrorInfo &Info);

  /// Pops the oldest event. Single consumer only.
  bool tryPop(ErrorInfo &Out);

  /// Pops every currently queued event into \p Reporter (the drainer
  /// side of the pool). Returns the number of events delivered.
  size_t drainTo(ErrorReporter &Reporter);

  size_t capacity() const { return Mask + 1; }

  /// Approximate number of queued events. Inherently racy (producers
  /// keep pushing while it is computed) — it is a pressure signal for
  /// the service layer's LoadGovernor, not a synchronization primitive.
  size_t size() const {
    uint64_t H = Head.load(std::memory_order_relaxed);
    uint64_t T = Tail.load(std::memory_order_relaxed);
    return H > T ? static_cast<size_t>(H - T) : 0;
  }

  /// Push attempts that found the ring full (counted per failed
  /// tryPush call; the caller decides what happens next — retry,
  /// locked fallback, or an accounted drop).
  uint64_t overflows() const {
    return Overflows.load(std::memory_order_relaxed);
  }

  /// Overflowed events the caller delivered through the locked
  /// central-reporter fallback instead (slower, but no event loss).
  uint64_t fallbacks() const {
    return Fallbacks.load(std::memory_order_relaxed);
  }

  /// Overflowed events the caller dropped after exhausting its retry
  /// budget (opt-in bounded loss; every drop is accounted here).
  uint64_t drops() const {
    return Drops.load(std::memory_order_relaxed);
  }

  /// Caller-side outcome accounting for a failed tryPush (see
  /// SessionPool::enqueueToRing for the retry/fallback/drop policy).
  void recordFallback() {
    Fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  void recordDrop() { Drops.fetch_add(1, std::memory_order_relaxed); }

private:
  struct Cell {
    std::atomic<uint64_t> Seq;
    ErrorInfo Info;
  };

  std::unique_ptr<Cell[]> Cells;
  size_t Mask;
  alignas(64) std::atomic<uint64_t> Head{0}; ///< Producers' cursor.
  alignas(64) std::atomic<uint64_t> Tail{0}; ///< Consumer's cursor.
  alignas(64) std::atomic<uint64_t> Overflows{0};
  std::atomic<uint64_t> Fallbacks{0};
  std::atomic<uint64_t> Drops{0};
};

} // namespace concurrent
} // namespace effective

#endif // EFFECTIVE_CONCURRENT_ERRORRING_H
