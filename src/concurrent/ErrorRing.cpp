//===- concurrent/ErrorRing.cpp - Lock-free MPSC error event ring ---------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ErrorRing.h"

#include "obs/Trace.h"
#include "resilience/Fault.h"

#include <bit>

using namespace effective;
using namespace effective::concurrent;

ErrorRing::ErrorRing(size_t Capacity) {
  if (Capacity < 2)
    Capacity = 2;
  Capacity = std::bit_ceil(Capacity);
  Cells = std::make_unique<Cell[]>(Capacity);
  Mask = Capacity - 1;
  for (size_t I = 0; I < Capacity; ++I)
    Cells[I].Seq.store(I, std::memory_order_relaxed);
}

bool ErrorRing::tryPush(const ErrorInfo &Info) {
  // An induced full ring takes the exact overflow path a genuinely
  // full ring takes: counted, traced, and left to the caller's
  // retry/fallback/drop policy.
  if (EFFSAN_FAULT(RingFull)) {
    Overflows.fetch_add(1, std::memory_order_relaxed);
    EFFSAN_OBS_EVENT(RingOverflow, ::effective::obs::NoShard, Mask + 1);
    return false;
  }
  uint64_t Pos = Head.load(std::memory_order_relaxed);
  for (;;) {
    Cell &C = Cells[Pos & Mask];
    uint64_t Seq = C.Seq.load(std::memory_order_acquire);
    auto Diff = static_cast<int64_t>(Seq) - static_cast<int64_t>(Pos);
    if (Diff == 0) {
      // The cell is free this lap; claim it by advancing Head.
      if (Head.compare_exchange_weak(Pos, Pos + 1,
                                     std::memory_order_relaxed)) {
        C.Info = Info;
        C.Seq.store(Pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded Pos; retry with the fresh value.
    } else if (Diff < 0) {
      // The cell still holds last lap's event: the ring is full.
      Overflows.fetch_add(1, std::memory_order_relaxed);
      EFFSAN_OBS_EVENT(RingOverflow, ::effective::obs::NoShard, Mask + 1);
      return false;
    } else {
      // Another producer claimed this position; chase the head.
      Pos = Head.load(std::memory_order_relaxed);
    }
  }
}

bool ErrorRing::tryPop(ErrorInfo &Out) {
  uint64_t Pos = Tail.load(std::memory_order_relaxed);
  Cell &C = Cells[Pos & Mask];
  uint64_t Seq = C.Seq.load(std::memory_order_acquire);
  if (static_cast<int64_t>(Seq) - static_cast<int64_t>(Pos + 1) < 0)
    return false; // The producer has not published this cell yet.
  Out = C.Info;
  // Release the cell for the producers' next lap.
  C.Seq.store(Pos + Mask + 1, std::memory_order_release);
  Tail.store(Pos + 1, std::memory_order_relaxed);
  return true;
}

size_t ErrorRing::drainTo(ErrorReporter &Reporter) {
  size_t Drained = 0;
  ErrorInfo Info;
  while (tryPop(Info)) {
    Reporter.report(Info);
    ++Drained;
  }
  return Drained;
}
