//===- concurrent/SessionPool.h - Sharded sanitizer session pool -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent runtime's front door: a pool of N Sanitizer shards
/// serving N worker threads without shared locks on any hot path.
///
///   * Allocation   — each shard's Runtime owns one slice of a single
///                    shared low-fat arena (ShardedHeap), so shards
///                    never contend on a heap lock while base(p)/size(p)
///                    stay O(1) arithmetic for *any* shard's pointers.
///   * Checks       — always lock-free; per-shard counters avoid the
///                    cache-line ping-pong a shared counter block
///                    suffers under concurrent mutators.
///   * Reporting    — shard runtimes push raw error events onto a
///                    lock-free MPSC ErrorRing; drain() (any single
///                    thread at a time) feeds them to one central
///                    ErrorReporter, which keeps the paper's bucketing,
///                    dedup caps and callback semantics process-wide.
///                    If the ring is momentarily full the event is
///                    reported directly to the central reporter under
///                    its lock — slower, never lost.
///
/// Typical use:
///
/// \code
///   concurrent::PoolOptions Opts;
///   Opts.Shards = NumWorkers;
///   concurrent::SessionPool Pool(Opts);
///   // worker thread:
///   Sanitizer &S = Pool.checkout();           // thread-affine shard
///   void *P = S.malloc(N * sizeof(int), IntType);
///   S.boundsCheck(..., S.typeCheck(P, IntType));
///   S.free(P);
///   // supervisor:
///   Pool.drain();                             // publish pending errors
///   Pool.counters();                          // merged shard counters
///   Pool.resetShard(I);                       // recycle between tenants
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CONCURRENT_SESSIONPOOL_H
#define EFFECTIVE_CONCURRENT_SESSIONPOOL_H

#include "api/Sanitizer.h"
#include "concurrent/ErrorRing.h"
#include "concurrent/ShardedHeap.h"
#include "obs/SiteProfiler.h"

#include <atomic>
#include <memory>
#include <vector>

namespace effective {
namespace concurrent {

/// Construction options for a SessionPool.
struct PoolOptions {
  /// Number of shards (worker sessions); 0 = one per hardware thread,
  /// clamped to [1, lowfat::MaxHeapShards].
  unsigned Shards = 0;

  /// Check policy applied by every shard session.
  CheckPolicy Policy = CheckPolicy::Full;

  /// Configuration of the *central* reporter (mode, stream, dedup
  /// caps, abort threshold, callback). Per-shard reporters are managed
  /// by the pool and never emit on their own.
  ReporterOptions Reporter;

  /// Options for the one shared low-fat heap (NumShards is set by the
  /// pool).
  lowfat::HeapOptions Heap;

  /// Capacity of the lock-free error ring (rounded up to a power of
  /// two; 0 = ErrorRing::DefaultCapacity).
  size_t ErrorRingCapacity = 0;

  /// Per-shard type-check inline-cache entries (power of two; 0
  /// disables the fast path on every shard). Each shard runtime owns a
  /// private cache, so worker threads never share cache lines on the
  /// check hot path; resetShard() drops that shard's entries with the
  /// rest of its state.
  size_t SiteCacheEntries = 1024;

  /// Push retries (with roughly doubling backoff) before the full-ring
  /// policy below applies. Under a live drainer the ring frees cells
  /// within microseconds, so most overflows clear during the retry
  /// window without ever taking the central lock. 0 disables retrying.
  unsigned RingRetryAttempts = 3;

  /// What happens to an event the ring still refuses after the retry
  /// budget: false (default) reports it through the central reporter's
  /// lock — slower, never lost; true drops it with the loss accounted
  /// in ErrorRing::drops(), for deployments that would rather shed
  /// diagnostics than serialize erring threads under overload.
  bool DropOnRingFull = false;
};

/// A pool of sanitizer shards over one sharded heap and one central
/// error drain. Checkout, checks and allocation are safe from any
/// thread; drain() must not be called from two threads at once.
class SessionPool {
public:
  /// A pool with a private TypeContext.
  explicit SessionPool(const PoolOptions &Options = PoolOptions());

  /// A pool sharing \p SharedTypes (interned types are immutable, so
  /// any number of pools and sessions may share a context).
  SessionPool(TypeContext &SharedTypes,
              const PoolOptions &Options = PoolOptions());

  /// Drains outstanding events, then tears down shards and heap.
  ~SessionPool();

  SessionPool(const SessionPool &) = delete;
  SessionPool &operator=(const SessionPool &) = delete;

  unsigned numShards() const {
    return static_cast<unsigned>(Shards.size());
  }

  /// Shard \p Index's session (stable address for the pool's lifetime).
  Sanitizer &shard(unsigned Index) { return *Shards[Index]; }

  /// The shard index this thread is bound to — assigned round-robin on
  /// first use and sticky afterwards, so a worker always re-checks-out
  /// the shard whose sub-arena its earlier allocations live in.
  unsigned checkoutIndex();

  /// Thread-affine checkout (shard(checkoutIndex())).
  Sanitizer &checkout() { return shard(checkoutIndex()); }

  /// Pops every queued error event into the central reporter; returns
  /// the number delivered. Single drainer at a time.
  size_t drain();

  /// The central reporter (the single drain target).
  ErrorReporter &reporter() { return Central; }

  /// The pool-wide site-table registry. Every shard runtime resolves
  /// error sites against this one registry (RuntimeOptions::
  /// SharedSites), so a module registered through any shard session —
  /// or directly here — is attributed in the central drain no matter
  /// which shard tripped the error.
  SiteTableRegistry &siteTables() { return SiteTables; }

  /// Distinct issues across the whole pool (drains first so nothing
  /// queued is missed).
  uint64_t issuesFound() {
    drain();
    return Central.numIssues();
  }

  /// Merged check counters across all shards.
  CheckCounters::Snapshot counters() const;

  /// Pool-wide hot-site ranking: every shard's profiler table summed
  /// by site id (a site checked from several shards contributes ONE
  /// entry carrying pool-total hits/misses), ordered by hits+misses
  /// descending and truncated to \p N. Callers resolve the ids against
  /// siteTables() once — not per shard. Empty when profiling never ran
  /// (or observability is compiled out).
  std::vector<obs::SiteProfile> mergedHotSites(size_t N) const;

  /// The shared sharded heap.
  ShardedHeap &heap() { return Heap; }

  TypeContext &types() { return *Types; }

  /// Push attempts that found the ring full (retries included).
  uint64_t ringOverflows() const { return Ring.overflows(); }

  /// Events delivered through the locked central-reporter fallback
  /// after the ring stayed full through the retry budget (no loss).
  uint64_t ringFallbacks() const { return Ring.fallbacks(); }

  /// Events dropped after the retry budget (accounted loss; only with
  /// PoolOptions::DropOnRingFull).
  uint64_t ringDrops() const { return Ring.drops(); }

  /// The pool's MPSC error ring. Exposed for a dedicated drainer (the
  /// service layer's Supervisor) that needs event-at-a-time consumption
  /// — e.g. to attribute each event to a tenant before forwarding it to
  /// the central reporter. The single-consumer contract still applies:
  /// a caller popping from the ring must be the only drainer (do not
  /// mix with concurrent drain() calls).
  ErrorRing &ring() { return Ring; }

  /// Recycles one shard between tenants: drains pending events, then
  /// resets the shard session's arena slice, counters and globals (see
  /// Runtime::reset for the contract). Other shards are unaffected —
  /// their live pointers stay valid.
  void resetShard(unsigned Index);

private:
  /// ReporterOptions::Enqueue target installed on every shard reporter.
  struct RingSink {
    ErrorRing *Ring;
    ErrorReporter *Central;
    unsigned RetryAttempts;
    bool DropOnFull;
  };
  static bool enqueueToRing(const ErrorInfo &Info, void *UserData);

  std::unique_ptr<TypeContext> OwnedTypes; ///< Null when sharing.
  TypeContext *Types;
  ShardedHeap Heap;
  ErrorRing Ring;
  ErrorReporter Central;
  /// One site space for all shards (see siteTables()). Declared before
  /// the runtimes, which hold references into it.
  SiteTableRegistry SiteTables;
  RingSink Sink;
  std::vector<std::unique_ptr<Runtime>> Runtimes;
  std::vector<std::unique_ptr<Sanitizer>> Shards;
  std::atomic<unsigned> NextShard{0};
  /// Process-unique instance stamp: the per-thread affinity cache is
  /// keyed by pool address, and the stamp stops a new pool constructed
  /// at a dead pool's address from inheriting its thread bindings
  /// (which would silently defeat the round-robin distribution).
  uint64_t Epoch;
};

} // namespace concurrent
} // namespace effective

#endif // EFFECTIVE_CONCURRENT_SESSIONPOOL_H
