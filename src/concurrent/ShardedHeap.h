//===- concurrent/ShardedHeap.h - Per-thread low-fat heap shards -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap layer of the concurrent runtime: one low-fat arena reserved
/// up front, carved into per-shard sub-arenas so each worker thread
/// allocates without contending with its siblings. The carving is done
/// by the low-fat allocator itself (HeapOptions::NumShards — every
/// shard's slice of a size-class region starts on a class-size
/// boundary), which is what keeps the paper's size(p)/base(p) pure O(1)
/// address arithmetic for *every* shard's pointers, no matter which
/// shard asks:
///
///      region C (one size class)
///   |-- shard 0 --|-- shard 1 --|-- shard 2 --|-- shard 3 --| tail |
///   ^ bump/free-list per shard          base(p) = one modulo, global
///
/// ShardedHeap owns the arena and hands out HeapShard views; the
/// SessionPool gives each of its Runtimes one shard index. Cross-shard
/// frees and metadata queries are always legal.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CONCURRENT_SHARDEDHEAP_H
#define EFFECTIVE_CONCURRENT_SHARDEDHEAP_H

#include "lowfat/LowFatHeap.h"

namespace effective {
namespace concurrent {

/// A lightweight allocation view of one shard. Copyable; valid while
/// the ShardedHeap lives.
class HeapShard {
public:
  HeapShard(lowfat::LowFatHeap &Heap, unsigned Index)
      : Heap(&Heap), Idx(Index) {}

  /// Allocates from this shard's sub-arenas (lock shared with nobody
  /// but this shard's users).
  void *allocate(size_t Size) { return Heap->allocateOnShard(Size, Idx); }

  /// Frees a block allocated on *any* shard of the same heap.
  void deallocate(void *Ptr) { Heap->deallocate(Ptr); }

  /// The paper's size(p)/base(p) — identical arithmetic on every shard.
  size_t size(const void *Ptr) const { return Heap->allocationSize(Ptr); }
  void *base(const void *Ptr) const { return Heap->allocationBase(Ptr); }

  unsigned index() const { return Idx; }
  lowfat::LowFatHeap &heap() { return *Heap; }

private:
  lowfat::LowFatHeap *Heap;
  unsigned Idx;
};

/// Owns one sharded low-fat heap. \p Shards is clamped to
/// [1, lowfat::MaxHeapShards]; 0 selects one shard per hardware thread.
class ShardedHeap {
public:
  explicit ShardedHeap(unsigned Shards,
                       const lowfat::HeapOptions &Base =
                           lowfat::HeapOptions());

  ShardedHeap(const ShardedHeap &) = delete;
  ShardedHeap &operator=(const ShardedHeap &) = delete;

  unsigned numShards() const { return Heap.numShards(); }
  HeapShard shard(unsigned Index) { return HeapShard(Heap, Index); }

  /// The underlying shared heap (for Runtime construction and the
  /// global size/base queries).
  lowfat::LowFatHeap &heap() { return Heap; }
  const lowfat::LowFatHeap &heap() const { return Heap; }

  /// Merged / per-shard statistics.
  lowfat::HeapStats stats() const { return Heap.stats(); }
  lowfat::HeapStats shardStats(unsigned Index) const {
    return Heap.shardStats(Index);
  }

  /// Recycles one shard's sub-arenas (see LowFatHeap::resetShard for
  /// the contract).
  void resetShard(unsigned Index) { Heap.resetShard(Index); }

  /// The shard count \p Requested resolves to without building a heap.
  static unsigned resolveShardCount(unsigned Requested);

private:
  lowfat::LowFatHeap Heap;
};

} // namespace concurrent
} // namespace effective

#endif // EFFECTIVE_CONCURRENT_SHARDEDHEAP_H
