//===- concurrent/effsan_pool.cpp - C ABI pool entry points ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The effsan_pool_* functions of the stable C ABI (api/effsan.h,
/// since 1.1), implemented here so the core archive stays free of the
/// concurrent layer: only consumers that use pools link it.
///
//===----------------------------------------------------------------------===//

#include "api/effsan.h"
#include "api/effsan_internal.h"
#include "concurrent/SessionPool.h"
#include "obs/SiteProfiler.h"

#include <cstring>
#include <memory>
#include <new>
#include <vector>

using namespace effective;

/// The opaque pool handle: the SessionPool plus one stable
/// effsan_session wrapper per shard (checkout hands these out) and the
/// central C callback.
struct effsan_pool {
  concurrent::SessionPool Pool;
  std::vector<std::unique_ptr<effsan_session>> Sessions;
  effsan_error_callback Callback = nullptr;
  void *CallbackUserData = nullptr;
  effsan_error_callback_v2 CallbackV2 = nullptr;
  void *CallbackV2UserData = nullptr;

  effsan_pool(const concurrent::PoolOptions &Options, uint32_t Engine)
      : Pool(Options) {
    for (unsigned I = 0; I < Pool.numShards(); ++I)
      Sessions.push_back(
          std::make_unique<effsan_session>(Pool.shard(I), Engine));
  }
};

namespace {

/// Central-reporter trampoline for pools (normally fired by the drain
/// thread; see the threading contract on effsan_pool_set_error_callback).
/// Site attribution survives the ring: the SiteInfo pointer the shard
/// resolved at report time points into the pool-wide registry, which
/// outlives every queued event.
void poolCallbackTrampoline(const ErrorInfo &Info, const char *Message,
                            void *UserData) {
  auto *P = static_cast<effsan_pool *>(UserData);
  if (P->Callback) {
    effsan_error Error;
    Error.kind = effsan_detail::errorKindValue(Info.Kind);
    Error.pointer = Info.Pointer;
    Error.offset = Info.Offset;
    // Empty only when defer_error_rendering elided it — pass NULL.
    Error.message = (Message && Message[0]) ? Message : nullptr;
    P->Callback(&Error, P->CallbackUserData);
  }
  if (P->CallbackV2) {
    effsan_error_v2 Error;
    effsan_detail::fillErrorV2(Info, Message, Error);
    P->CallbackV2(&Error, P->CallbackV2UserData);
  }
}

/// Re-attaches the central trampoline when either C sink is present.
/// \pre the trampoline is detached (see the setter protocol below).
void attachPoolCallbacks(effsan_pool *P) {
  if (P->Callback || P->CallbackV2)
    P->Pool.reporter().setCallback(poolCallbackTrampoline, P);
}

} // namespace

extern "C" {

void effsan_pool_options_init(effsan_pool_options *options) {
  if (!options)
    return;
  std::memset(options, 0, sizeof(*options));
  options->struct_size = sizeof(effsan_pool_options);
  options->shards = 0; // Auto: one per hardware thread.
  options->policy = EFFSAN_POLICY_FULL;
  options->log_errors = 1;
  options->log_stream = stderr;
  options->max_reports_per_location = 1;
  options->site_cache_entries = 1024;
  options->magazine_size = 16;
  options->enable_work_stealing = 0;
  options->defer_error_rendering = 0;
  options->engine = EFFSAN_ENGINE_BYTECODE;
}

effsan_pool *effsan_pool_create(const effsan_pool_options *options) {
  effsan_pool_options Defaults;
  effsan_pool_options_init(&Defaults);
  // Tail-extension tolerance: read only the prefix the caller declared.
  if (options) {
    size_t N = options->struct_size;
    if (N == 0 || N > sizeof(Defaults))
      N = sizeof(Defaults);
    std::memcpy(&Defaults, options, N);
  }

  concurrent::PoolOptions PoolOpts;
  PoolOpts.Shards = Defaults.shards;
  PoolOpts.Policy = effsan_detail::policyFromValue(Defaults.policy);
  PoolOpts.Reporter.Mode =
      Defaults.log_errors ? ReportMode::Log : ReportMode::Count;
  PoolOpts.Reporter.Stream =
      Defaults.log_stream ? Defaults.log_stream : stderr;
  PoolOpts.Reporter.MaxReportsPerBucket =
      Defaults.max_reports_per_location;
  PoolOpts.Reporter.MaxTotalReports = Defaults.max_total_reports;
  PoolOpts.Reporter.DeferMessageRendering =
      Defaults.defer_error_rendering != 0;
  PoolOpts.ErrorRingCapacity =
      static_cast<size_t>(Defaults.error_ring_capacity);
  PoolOpts.SiteCacheEntries =
      static_cast<size_t>(Defaults.site_cache_entries);
  PoolOpts.Heap.MagazineSize =
      static_cast<unsigned>(Defaults.magazine_size);
  PoolOpts.Heap.EnableWorkStealing = Defaults.enable_work_stealing != 0;

  uint32_t Engine = Defaults.engine == EFFSAN_ENGINE_TREE
                        ? EFFSAN_ENGINE_TREE
                        : EFFSAN_ENGINE_BYTECODE;
  return new (std::nothrow) effsan_pool(PoolOpts, Engine);
}

void effsan_pool_destroy(effsan_pool *pool) { delete pool; }

uint32_t effsan_pool_num_shards(const effsan_pool *pool) {
  return pool->Pool.numShards();
}

effsan_session *effsan_pool_checkout(effsan_pool *pool) {
  return pool->Sessions[pool->Pool.checkoutIndex()].get();
}

effsan_session *effsan_pool_shard(effsan_pool *pool, uint32_t index) {
  if (index >= pool->Pool.numShards())
    return nullptr;
  return pool->Sessions[index].get();
}

uint64_t effsan_pool_drain(effsan_pool *pool) {
  return pool->Pool.drain();
}

void effsan_pool_get_counters(effsan_pool *pool, effsan_counters *out) {
  if (!out)
    return;
  pool->Pool.drain();
  CheckCounters::Snapshot Snap = pool->Pool.counters();
  out->type_checks = Snap.TypeChecks;
  out->legacy_type_checks = Snap.LegacyTypeChecks;
  out->bounds_checks = Snap.BoundsChecks;
  out->bounds_narrows = Snap.BoundsNarrows;
  out->bounds_gets = Snap.BoundsGets;
  ErrorReporter &Central = pool->Pool.reporter();
  out->issues_found = Central.numIssues();
  out->error_events = Central.numEvents();
  out->reports_suppressed = Central.numSuppressed();
}

void effsan_pool_set_error_callback(effsan_pool *pool,
                                    effsan_error_callback callback,
                                    void *user_data) {
  // Same detach-update-reattach dance as the session variant, against
  // the pool's central reporter: detach first so no trampoline can
  // read the pair while it is being rewritten.
  pool->Pool.reporter().setCallback(nullptr, nullptr);
  pool->Callback = callback;
  pool->CallbackUserData = user_data;
  attachPoolCallbacks(pool);
}

void effsan_pool_set_error_callback_v2(effsan_pool *pool,
                                       effsan_error_callback_v2 callback,
                                       void *user_data) {
  pool->Pool.reporter().setCallback(nullptr, nullptr);
  pool->CallbackV2 = callback;
  pool->CallbackV2UserData = user_data;
  attachPoolCallbacks(pool);
}

uint64_t effsan_pool_site_error_events(effsan_pool *pool, uint32_t site) {
  pool->Pool.drain();
  return pool->Pool.reporter().numEventsAtSite(site);
}

void effsan_pool_get_heap_stats(effsan_pool *pool,
                                effsan_heap_stats *out) {
  effsan_detail::fillHeapStats(pool->Pool.heap().stats(), out);
}

uint32_t effsan_pool_hot_sites(effsan_pool *pool, effsan_obs_site *out,
                               uint32_t capacity) {
  if (!pool || !out || capacity == 0)
    return 0;
  // Drain first so error_events joined below include queued events.
  pool->Pool.drain();
  std::vector<obs::SiteProfile> Top = pool->Pool.mergedHotSites(capacity);
  ErrorReporter &Central = pool->Pool.reporter();
  uint32_t N = 0;
  for (const obs::SiteProfile &P : Top) {
    effsan_obs_site &Slot = out[N++];
    Slot.site = P.Site;
    Slot.line = 0;
    Slot.column = 0;
    Slot.reserved_ = 0;
    Slot.hits = P.Hits;
    Slot.misses = P.Misses;
    Slot.error_events = Central.numEventsAtSite(P.Site);
    Slot.file = "";
    Slot.function = nullptr;
    if (const SiteInfo *W = pool->Pool.siteTables().resolve(P.Site)) {
      Slot.line = W->Line;
      Slot.column = W->Column;
      Slot.file = W->File;
      Slot.function = W->Function[0] != '\0' ? W->Function : nullptr;
    }
  }
  return N;
}

} // extern "C"
