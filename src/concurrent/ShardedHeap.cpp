//===- concurrent/ShardedHeap.cpp - Per-thread low-fat heap shards --------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ShardedHeap.h"

#include <thread>

using namespace effective;
using namespace effective::concurrent;

unsigned ShardedHeap::resolveShardCount(unsigned Requested) {
  unsigned Shards = Requested;
  if (Shards == 0) {
    Shards = std::thread::hardware_concurrency();
    if (Shards == 0)
      Shards = 1;
  }
  if (Shards > lowfat::MaxHeapShards)
    Shards = lowfat::MaxHeapShards;
  return Shards;
}

static lowfat::HeapOptions withShards(unsigned Shards,
                                      lowfat::HeapOptions Base) {
  Base.NumShards = ShardedHeap::resolveShardCount(Shards);
  return Base;
}

ShardedHeap::ShardedHeap(unsigned Shards, const lowfat::HeapOptions &Base)
    : Heap(withShards(Shards, Base)) {}
