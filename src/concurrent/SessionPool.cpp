//===- concurrent/SessionPool.cpp - Sharded sanitizer session pool --------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "concurrent/SessionPool.h"

#include "obs/Trace.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

using namespace effective;
using namespace effective::concurrent;

/// Monotone stamp distinguishing pool instances that reuse an address
/// (see SessionPool::Epoch).
static uint64_t nextPoolEpoch() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool SessionPool::enqueueToRing(const ErrorInfo &Info, void *UserData) {
  auto *S = static_cast<RingSink *>(UserData);
  if (EFFSAN_LIKELY(S->Ring->tryPush(Info)))
    return true;
  // Ring full: bounded retry with roughly doubling backoff first —
  // under a live drainer cells free within microseconds, so most
  // overflows clear inside the retry window and never touch a lock.
  for (unsigned Attempt = 0; Attempt < S->RetryAttempts; ++Attempt) {
    for (unsigned Spin = 0; Spin < (1u << Attempt); ++Spin)
      std::this_thread::yield();
    if (S->Ring->tryPush(Info))
      return true;
  }
  if (S->DropOnFull) {
    // Opt-in load shedding: the event is gone, but the loss is exact
    // and visible (ErrorRing::drops(), service stats, snapshots).
    S->Ring->recordDrop();
    return true;
  }
  // Default policy: report under the central lock rather than dropping
  // the event. Dedup/caps semantics are identical either way; only
  // this event pays for a mutex.
  S->Ring->recordFallback();
  S->Central->report(Info);
  return true;
}

SessionPool::SessionPool(const PoolOptions &Options)
    : OwnedTypes(std::make_unique<TypeContext>()), Types(OwnedTypes.get()),
      Heap(Options.Shards, Options.Heap),
      Ring(Options.ErrorRingCapacity ? Options.ErrorRingCapacity
                                     : ErrorRing::DefaultCapacity),
      Central(Options.Reporter),
      Sink{&Ring, &Central, Options.RingRetryAttempts,
           Options.DropOnRingFull},
      Epoch(nextPoolEpoch()) {
  // Shard runtimes never emit through their own reporter: every event
  // is intercepted lock-free and funneled to the central drain.
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  RTOpts.Reporter.Stream = nullptr;
  RTOpts.Reporter.Enqueue = enqueueToRing;
  RTOpts.Reporter.EnqueueUserData = &Sink;
  RTOpts.SiteCacheEntries = Options.SiteCacheEntries;
  RTOpts.SharedSites = &SiteTables;
  for (unsigned I = 0; I < Heap.numShards(); ++I) {
    Runtimes.push_back(
        std::make_unique<Runtime>(*Types, Heap.heap(), I, RTOpts));
    Shards.push_back(
        std::make_unique<Sanitizer>(*Runtimes.back(), Options.Policy));
  }
}

SessionPool::SessionPool(TypeContext &SharedTypes,
                         const PoolOptions &Options)
    : Types(&SharedTypes), Heap(Options.Shards, Options.Heap),
      Ring(Options.ErrorRingCapacity ? Options.ErrorRingCapacity
                                     : ErrorRing::DefaultCapacity),
      Central(Options.Reporter),
      Sink{&Ring, &Central, Options.RingRetryAttempts,
           Options.DropOnRingFull},
      Epoch(nextPoolEpoch()) {
  RuntimeOptions RTOpts;
  RTOpts.Reporter.Mode = ReportMode::Count;
  RTOpts.Reporter.Stream = nullptr;
  RTOpts.Reporter.Enqueue = enqueueToRing;
  RTOpts.Reporter.EnqueueUserData = &Sink;
  RTOpts.SiteCacheEntries = Options.SiteCacheEntries;
  RTOpts.SharedSites = &SiteTables;
  for (unsigned I = 0; I < Heap.numShards(); ++I) {
    Runtimes.push_back(
        std::make_unique<Runtime>(*Types, Heap.heap(), I, RTOpts));
    Shards.push_back(
        std::make_unique<Sanitizer>(*Runtimes.back(), Options.Policy));
  }
}

SessionPool::~SessionPool() { drain(); }

unsigned SessionPool::checkoutIndex() {
  // Sticky thread->shard binding, private to each thread. The map is
  // keyed by pool address so one thread can work with several pools;
  // the epoch stamp invalidates entries left behind by a destroyed
  // pool whose address was reused.
  struct Binding {
    uint64_t Epoch = 0;
    unsigned Index = 0;
  };
  thread_local std::unordered_map<const SessionPool *, Binding> Affinity;
  Binding &B = Affinity[this];
  if (B.Epoch != Epoch) {
    B.Epoch = Epoch;
    B.Index = NextShard.fetch_add(1, std::memory_order_relaxed) %
              numShards();
  }
  return B.Index;
}

size_t SessionPool::drain() { return Ring.drainTo(Central); }

CheckCounters::Snapshot SessionPool::counters() const {
  CheckCounters::Snapshot Sum;
  for (const auto &RT : Runtimes)
    Sum += RT->counters().snapshot();
  return Sum;
}

std::vector<obs::SiteProfile> SessionPool::mergedHotSites(size_t N) const {
  // Sum the per-shard direct-mapped tables by site id. The same site
  // can be claimed in several shards' tables (each shard profiles
  // independently); the merge is what makes the ranking pool-wide.
  std::unordered_map<uint32_t, obs::SiteProfile> Merged;
  for (const auto &RT : Runtimes) {
    for (const obs::SiteProfile &P : RT->profiler().collect()) {
      obs::SiteProfile &M = Merged[P.Site];
      M.Site = P.Site;
      M.Hits += P.Hits;
      M.Misses += P.Misses;
    }
  }
  std::vector<obs::SiteProfile> All;
  All.reserve(Merged.size());
  for (const auto &[Site, P] : Merged)
    All.push_back(P);
  std::sort(All.begin(), All.end(),
            [](const obs::SiteProfile &A, const obs::SiteProfile &B) {
              return A.Hits + A.Misses > B.Hits + B.Misses;
            });
  if (All.size() > N)
    All.resize(N);
  return All;
}

void SessionPool::resetShard(unsigned Index) {
  // Flush events the shard produced before its state disappears.
  drain();
  Shards[Index]->reset();
  EFFSAN_OBS_EVENT(SessionReset, Index, Index);
}
