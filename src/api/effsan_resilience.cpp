//===- api/effsan_resilience.cpp - C ABI fault-injection entry points -----===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The effsan_fault_* functions of the stable C ABI (api/effsan.h,
/// since 1.9): thin translation onto the process-wide
/// resilience::FaultRegistry. All functions are total — out-of-range
/// point indices return 0/NULL rather than trapping — and everything
/// keeps working (as inert no-ops reporting compiled_in == 0 and zero
/// points armed... the registry still exists, points just never fire)
/// when the library was built with EFFSAN_FAULT_OFF.
///
//===----------------------------------------------------------------------===//

#include "api/effsan.h"
#include "resilience/Fault.h"

using namespace effective;
using resilience::FaultPoint;
using resilience::FaultRegistry;
using resilience::NumFaultPointValues;

extern "C" {

int effsan_fault_compiled_in(void) {
  return resilience::compiledIn() ? 1 : 0;
}

void effsan_fault_arm(uint64_t seed) {
  FaultRegistry::instance().arm(seed);
}

void effsan_fault_disarm(void) { FaultRegistry::instance().disarm(); }

int effsan_fault_armed(void) {
  return FaultRegistry::instance().armed() ? 1 : 0;
}

uint64_t effsan_fault_seed(void) { return FaultRegistry::instance().seed(); }

int effsan_fault_configure(const char *spec) {
  if (!spec)
    return 0;
  return FaultRegistry::instance().configureFromSpec(spec) ? 1 : 0;
}

uint32_t effsan_fault_num_points(void) { return NumFaultPointValues; }

const char *effsan_fault_point_name(uint32_t point) {
  if (point >= NumFaultPointValues)
    return nullptr;
  return FaultRegistry::pointName(static_cast<FaultPoint>(point));
}

uint64_t effsan_fault_evaluations(uint32_t point) {
  if (point >= NumFaultPointValues)
    return 0;
  return FaultRegistry::instance().evaluations(
      static_cast<FaultPoint>(point));
}

uint64_t effsan_fault_fires(uint32_t point) {
  if (point >= NumFaultPointValues)
    return 0;
  return FaultRegistry::instance().fires(static_cast<FaultPoint>(point));
}

} // extern "C"
