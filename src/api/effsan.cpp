//===- api/effsan.cpp - Stable C ABI implementation -----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/effsan.h"

#include "api/Sanitizer.h"
#include "api/effsan_internal.h"

#include <cstring>
#include <new>

using namespace effective;

struct effsan_struct_builder {
  effsan_session *Owner;
  RecordBuilder Builder;
  bool IsUnion;

  effsan_struct_builder(effsan_session *Owner, TypeKind Kind,
                        const char *Tag)
      : Owner(Owner),
        Builder(Owner->S->types(), Kind,
                Tag ? std::string_view(Tag) : std::string_view()),
        IsUnion(Kind == TypeKind::Union) {}
};

namespace {

const TypeInfo *unwrap(effsan_type Type) {
  return reinterpret_cast<const TypeInfo *>(Type);
}

effsan_type wrap(const TypeInfo *Type) {
  return reinterpret_cast<effsan_type>(Type);
}

Bounds unwrap(effsan_bounds B) { return Bounds{B.lo, B.hi}; }

effsan_bounds wrap(Bounds B) { return effsan_bounds{B.Lo, B.Hi}; }

/// ReporterOptions::Callback trampoline translating the C++ event into
/// the C structs. Fires the v1 then the v2 sink; a 1.2 caller that
/// never installs a v2 callback observes exactly the 1.2 behavior.
void callbackTrampoline(const ErrorInfo &Info, const char *Message,
                        void *UserData) {
  auto *S = static_cast<effsan_session *>(UserData);
  if (S->Callback) {
    effsan_error Error;
    Error.kind = effsan_detail::errorKindValue(Info.Kind);
    Error.pointer = Info.Pointer;
    Error.offset = Info.Offset;
    // Rendered reports are never empty, so an empty message can only
    // mean defer_error_rendering elided it — surface that as NULL.
    Error.message = (Message && Message[0]) ? Message : nullptr;
    S->Callback(&Error, S->CallbackUserData);
  }
  if (S->CallbackV2) {
    effsan_error_v2 Error;
    effsan_detail::fillErrorV2(Info, Message, Error);
    S->CallbackV2(&Error, S->CallbackV2UserData);
  }
}

/// Re-attaches the shared trampoline when either C sink is present.
/// \pre the trampoline is detached (see the setter protocol below).
void attachCallbacks(effsan_session *S) {
  if (S->Callback || S->CallbackV2)
    S->S->setErrorCallback(callbackTrampoline, S);
}

} // namespace

extern "C" {

uint32_t effsan_abi_version(void) { return EFFSAN_ABI_VERSION; }

//===----------------------------------------------------------------------===//
// Sessions
//===----------------------------------------------------------------------===//

void effsan_options_init(effsan_options *options) {
  if (!options)
    return;
  std::memset(options, 0, sizeof(*options));
  options->struct_size = sizeof(effsan_options);
  options->policy = EFFSAN_POLICY_FULL;
  options->log_errors = 1;
  options->log_stream = stderr;
  options->max_reports_per_location = 1;
  options->site_cache_entries = 1024;
  options->magazine_size = 16;
  options->defer_error_rendering = 0;
  options->engine = EFFSAN_ENGINE_BYTECODE;
}

effsan_session *effsan_session_create(const effsan_options *options) {
  effsan_options Defaults;
  effsan_options_init(&Defaults);
  // Tail-extension tolerance: read only the prefix the caller declared.
  if (options) {
    size_t N = options->struct_size;
    if (N == 0 || N > sizeof(Defaults))
      N = sizeof(Defaults);
    std::memcpy(&Defaults, options, N);
  }

  SessionOptions SessionOpts;
  SessionOpts.Policy = effsan_detail::policyFromValue(Defaults.policy);
  SessionOpts.Reporter.Mode =
      Defaults.log_errors ? ReportMode::Log : ReportMode::Count;
  SessionOpts.Reporter.Stream =
      Defaults.log_stream ? Defaults.log_stream : stderr;
  SessionOpts.Reporter.MaxReportsPerBucket =
      Defaults.max_reports_per_location;
  SessionOpts.Reporter.MaxTotalReports = Defaults.max_total_reports;
  SessionOpts.Reporter.AbortAfter = Defaults.abort_after;
  SessionOpts.Reporter.DeferMessageRendering =
      Defaults.defer_error_rendering != 0;
  SessionOpts.SiteCacheEntries =
      static_cast<size_t>(Defaults.site_cache_entries);
  SessionOpts.Heap.MagazineSize =
      static_cast<unsigned>(Defaults.magazine_size);

  uint32_t Engine = Defaults.engine == EFFSAN_ENGINE_TREE
                        ? EFFSAN_ENGINE_TREE
                        : EFFSAN_ENGINE_BYTECODE;
  return new (std::nothrow) effsan_session(SessionOpts, Engine);
}

void effsan_session_destroy(effsan_session *session) {
  // Pool shard views are owned by their pool; destroying one here
  // would tear the pool apart under the caller, so it is a no-op.
  if (session && !session->Owned)
    return;
  delete session;
}

void effsan_session_reset(effsan_session *session) {
  session->S->reset();
}

uint32_t effsan_session_policy(const effsan_session *session) {
  switch (session->S->policy()) {
  case CheckPolicy::Full:
    return EFFSAN_POLICY_FULL;
  case CheckPolicy::BoundsOnly:
    return EFFSAN_POLICY_BOUNDS_ONLY;
  case CheckPolicy::TypeOnly:
    return EFFSAN_POLICY_TYPE_ONLY;
  case CheckPolicy::CountOnly:
    return EFFSAN_POLICY_COUNT_ONLY;
  case CheckPolicy::Off:
    return EFFSAN_POLICY_OFF;
  }
  return EFFSAN_POLICY_FULL;
}

void effsan_session_set_policy(effsan_session *session, uint32_t policy) {
  session->S->setPolicy(effsan_detail::policyFromValue(policy));
}

uint32_t effsan_session_engine(const effsan_session *session) {
  return session->Engine;
}

//===----------------------------------------------------------------------===//
// Type construction
//===----------------------------------------------------------------------===//

effsan_type effsan_type_primitive(effsan_session *session,
                                  effsan_prim kind) {
  TypeContext &Ctx = session->S->types();
  switch (kind) {
  case EFFSAN_PRIM_VOID:
    return wrap(Ctx.getVoid());
  case EFFSAN_PRIM_BOOL:
    return wrap(Ctx.getBool());
  case EFFSAN_PRIM_CHAR:
    return wrap(Ctx.getChar());
  case EFFSAN_PRIM_SCHAR:
    return wrap(Ctx.getSChar());
  case EFFSAN_PRIM_UCHAR:
    return wrap(Ctx.getUChar());
  case EFFSAN_PRIM_SHORT:
    return wrap(Ctx.getShort());
  case EFFSAN_PRIM_USHORT:
    return wrap(Ctx.getUShort());
  case EFFSAN_PRIM_INT:
    return wrap(Ctx.getInt());
  case EFFSAN_PRIM_UINT:
    return wrap(Ctx.getUInt());
  case EFFSAN_PRIM_LONG:
    return wrap(Ctx.getLong());
  case EFFSAN_PRIM_ULONG:
    return wrap(Ctx.getULong());
  case EFFSAN_PRIM_LONGLONG:
    return wrap(Ctx.getLongLong());
  case EFFSAN_PRIM_ULONGLONG:
    return wrap(Ctx.getULongLong());
  case EFFSAN_PRIM_FLOAT:
    return wrap(Ctx.getFloat());
  case EFFSAN_PRIM_DOUBLE:
    return wrap(Ctx.getDouble());
  case EFFSAN_PRIM_LONGDOUBLE:
    return wrap(Ctx.getLongDouble());
  }
  return nullptr;
}

effsan_type effsan_type_pointer(effsan_session *session,
                                effsan_type pointee) {
  if (!pointee)
    return nullptr;
  return wrap(session->S->types().getPointer(unwrap(pointee)));
}

effsan_type effsan_type_array(effsan_session *session, effsan_type element,
                              uint64_t count) {
  if (!element)
    return nullptr;
  return wrap(session->S->types().getArray(unwrap(element), count));
}

effsan_struct_builder *effsan_struct_begin(effsan_session *session,
                                           const char *tag) {
  return new (std::nothrow)
      effsan_struct_builder(session, TypeKind::Struct, tag);
}

effsan_struct_builder *effsan_union_begin(effsan_session *session,
                                          const char *tag) {
  return new (std::nothrow)
      effsan_struct_builder(session, TypeKind::Union, tag);
}

void effsan_struct_field(effsan_struct_builder *builder, const char *name,
                         effsan_type type) {
  if (!builder || !type)
    return;
  builder->Builder.addField(name ? std::string_view(name)
                                 : std::string_view(),
                            unwrap(type));
}

void effsan_struct_flexible_array(effsan_struct_builder *builder,
                                  const char *name, effsan_type element) {
  // A FAM needs a preceding size; C has no flexible-array unions.
  if (!builder || !element || builder->IsUnion)
    return;
  builder->Builder.addFlexibleArray(name ? std::string_view(name)
                                         : std::string_view(),
                                    unwrap(element));
}

effsan_type effsan_struct_end(effsan_struct_builder *builder) {
  if (!builder)
    return nullptr;
  effsan_type Result = wrap(builder->Builder.finish());
  delete builder;
  return Result;
}

const char *effsan_type_name(effsan_type type, char *buffer, size_t size) {
  if (!buffer || size == 0)
    return buffer;
  if (!type) {
    buffer[0] = '\0';
    return buffer;
  }
  std::string Name = unwrap(type)->str();
  std::snprintf(buffer, size, "%s", Name.c_str());
  return buffer;
}

uint64_t effsan_type_size(effsan_type type) {
  return type ? unwrap(type)->size() : 0;
}

effsan_type effsan_type_of(effsan_session *session, const void *ptr) {
  return wrap(session->S->dynamicTypeOf(ptr));
}

//===----------------------------------------------------------------------===//
// Typed allocation
//===----------------------------------------------------------------------===//

void *effsan_malloc(effsan_session *session, size_t size, effsan_type type) {
  return session->S->malloc(size, unwrap(type));
}

void *effsan_calloc(effsan_session *session, size_t count, size_t size,
                    effsan_type type) {
  return session->S->calloc(count, size, unwrap(type));
}

void *effsan_realloc(effsan_session *session, void *ptr, size_t size,
                     effsan_type type) {
  return session->S->realloc(ptr, size, unwrap(type));
}

void effsan_free(effsan_session *session, void *ptr) {
  session->S->free(ptr);
}

//===----------------------------------------------------------------------===//
// Typed stack & global objects (since 1.8)
//===----------------------------------------------------------------------===//

effsan_stack_mark effsan_stack_enter(effsan_session *session) {
  return session->S->runtime().stackMark();
}

void effsan_stack_leave(effsan_session *session, effsan_stack_mark mark) {
  session->S->runtime().stackRelease(static_cast<size_t>(mark));
}

void *effsan_stack_alloc_typed(effsan_session *session, size_t size,
                               effsan_type type, int escapes) {
  return session->S->runtime().stackAllocate(size, unwrap(type),
                                             escapes != 0);
}

uint32_t effsan_globals_register(effsan_session *session,
                                 const effsan_global_def *defs,
                                 uint32_t count, void **addresses_out) {
  if (!defs || !addresses_out || count == 0)
    return 0;
  Runtime &RT = session->S->runtime();
  for (uint32_t I = 0; I < count; ++I) {
    const effsan_global_def &D = defs[I];
    addresses_out[I] = RT.globalAllocate(
        D.size, unwrap(D.type),
        D.name ? std::string_view(D.name) : std::string_view());
  }
  return count;
}

//===----------------------------------------------------------------------===//
// Dynamic checks
//===----------------------------------------------------------------------===//

effsan_bounds effsan_type_check(effsan_session *session, const void *ptr,
                                effsan_type static_type) {
  if (!static_type)
    return wrap(session->S->boundsGet(ptr));
  return wrap(session->S->typeCheck(ptr, unwrap(static_type)));
}

effsan_bounds effsan_bounds_get(effsan_session *session, const void *ptr) {
  return wrap(session->S->boundsGet(ptr));
}

void effsan_bounds_check(effsan_session *session, const void *ptr,
                         size_t size, effsan_bounds bounds) {
  session->S->boundsCheck(ptr, size, unwrap(bounds));
}

effsan_bounds effsan_bounds_narrow(effsan_session *session,
                                   effsan_bounds bounds, const void *field,
                                   size_t size) {
  return wrap(session->S->boundsNarrow(unwrap(bounds), field, size));
}

//===----------------------------------------------------------------------===//
// Counters and error reporting
//===----------------------------------------------------------------------===//

void effsan_get_counters(const effsan_session *session,
                         effsan_counters *out) {
  if (!out)
    return;
  auto *S = const_cast<effsan_session *>(session);
  CheckCounters::Snapshot Snap = S->S->counters().snapshot();
  out->type_checks = Snap.TypeChecks;
  out->legacy_type_checks = Snap.LegacyTypeChecks;
  out->bounds_checks = Snap.BoundsChecks;
  out->bounds_narrows = Snap.BoundsNarrows;
  out->bounds_gets = Snap.BoundsGets;
  out->issues_found = S->S->reporter().numIssues();
  out->error_events = S->S->reporter().numEvents();
  out->reports_suppressed = S->S->reporter().numSuppressed();
}

uint64_t effsan_type_check_cache_hits(const effsan_session *session) {
  auto *S = const_cast<effsan_session *>(session);
  return S->S->counters().TypeCheckCacheHits.load(
      std::memory_order_relaxed);
}

uint64_t effsan_type_check_cache_misses(const effsan_session *session) {
  auto *S = const_cast<effsan_session *>(session);
  return S->S->counters().TypeCheckCacheMisses.load(
      std::memory_order_relaxed);
}

void effsan_get_heap_stats(const effsan_session *session,
                           effsan_heap_stats *out) {
  auto *S = const_cast<effsan_session *>(session);
  Runtime &RT = S->S->runtime();
  // Per-shard view: for pooled sessions this is the shard's slice of
  // the shared arena; for private sessions shard 0 IS the whole heap.
  effsan_detail::fillHeapStats(RT.heap().shardStats(RT.heapShard()), out);
}

void effsan_get_object_stats(const effsan_session *session,
                             effsan_object_stats *out) {
  auto *S = const_cast<effsan_session *>(session);
  Runtime &RT = S->S->runtime();
  effsan_detail::fillObjectStats(RT, out);
}

void effsan_set_error_callback(effsan_session *session,
                               effsan_error_callback callback,
                               void *user_data) {
  // Detach the trampoline (under the reporter lock, so no invocation
  // is mid-flight), update the C-side pair, then re-attach — an
  // erring thread can never observe a half-updated callback/user-data
  // combination.
  session->S->setErrorCallback(nullptr, nullptr);
  session->Callback = callback;
  session->CallbackUserData = user_data;
  attachCallbacks(session);
}

void effsan_set_error_callback_v2(effsan_session *session,
                                  effsan_error_callback_v2 callback,
                                  void *user_data) {
  // Same detach-update-reattach protocol as the v1 setter.
  session->S->setErrorCallback(nullptr, nullptr);
  session->CallbackV2 = callback;
  session->CallbackV2UserData = user_data;
  attachCallbacks(session);
}

//===----------------------------------------------------------------------===//
// Site attribution (since 1.3)
//===----------------------------------------------------------------------===//

uint32_t effsan_site_table_register(effsan_session *session,
                                    const char *file,
                                    const effsan_site_info *sites,
                                    uint32_t count) {
  if (!sites || count == 0)
    return EFFSAN_NO_SITE;
  SiteTable Table;
  Table.File = file ? file : "<unknown>";
  Table.Entries.reserve(count);
  for (uint32_t I = 0; I < count; ++I) {
    const effsan_site_info &In = sites[I];
    SiteTable::Entry E;
    E.Kind = effsan_detail::checkKindFromValue(In.kind);
    E.Loc = SourceLoc{In.line, In.column};
    E.Function = In.function ? In.function : "";
    E.StaticType = reinterpret_cast<const TypeInfo *>(In.static_type);
    Table.Entries.push_back(std::move(E));
  }
  return session->S->registerSiteTable(Table);
}

uint64_t effsan_site_error_events(const effsan_session *session,
                                  uint32_t site) {
  auto *S = const_cast<effsan_session *>(session);
  return S->S->errorEventsAtSite(site);
}

effsan_bounds effsan_type_check_at(effsan_session *session,
                                   const void *ptr,
                                   effsan_type static_type,
                                   uint32_t site) {
  if (!static_type)
    return wrap(session->S->boundsGet(ptr, site));
  if (site == EFFSAN_NO_SITE)
    return wrap(session->S->typeCheck(ptr, unwrap(static_type)));
  return wrap(session->S->typeCheck(ptr, unwrap(static_type), site));
}

effsan_bounds effsan_bounds_get_at(effsan_session *session,
                                   const void *ptr, uint32_t site) {
  return wrap(session->S->boundsGet(ptr, site));
}

void effsan_bounds_check_at(effsan_session *session, const void *ptr,
                            size_t size, effsan_bounds bounds,
                            uint32_t site) {
  session->S->boundsCheck(ptr, size, unwrap(bounds), site);
}

// The effsan_pool_* entry points live in concurrent/effsan_pool.cpp,
// next to the SessionPool they wrap.

} // extern "C"
