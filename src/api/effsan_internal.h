//===- api/effsan_internal.h - C ABI handle internals -----------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared internals of the effsan C ABI implementation: the session
/// handle layout and the enum translation helpers, used by both the
/// session entry points (api/effsan.cpp) and the pool entry points
/// (concurrent/effsan_pool.cpp). Not installed; not part of the ABI.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_API_EFFSAN_INTERNAL_H
#define EFFECTIVE_API_EFFSAN_INTERNAL_H

#include "api/Sanitizer.h"
#include "api/effsan.h"

#include <cstring>
#include <memory>

/// The opaque session handle: a Sanitizer (owned, or a view of a pool
/// shard) plus the installed C callbacks (the C++ reporter callback
/// trampolines through them; v1 and v2 sinks are independent and may
/// both be installed).
struct effsan_session {
  std::unique_ptr<effective::Sanitizer> Owned; ///< Null for pool shards.
  effective::Sanitizer *S;
  /// Execution engine for effsan_run_minic (an effsan_engine value;
  /// fixed at creation — session options, or pool options for shards).
  uint32_t Engine = EFFSAN_ENGINE_BYTECODE;
  effsan_error_callback Callback = nullptr;
  void *CallbackUserData = nullptr;
  effsan_error_callback_v2 CallbackV2 = nullptr;
  void *CallbackV2UserData = nullptr;

  explicit effsan_session(const effective::SessionOptions &Options,
                          uint32_t Engine = EFFSAN_ENGINE_BYTECODE)
      : Owned(std::make_unique<effective::Sanitizer>(Options)),
        S(Owned.get()), Engine(Engine) {}

  explicit effsan_session(effective::Sanitizer &Shard,
                          uint32_t Engine = EFFSAN_ENGINE_BYTECODE)
      : S(&Shard), Engine(Engine) {}
};

namespace effective {
namespace effsan_detail {

inline CheckPolicy policyFromValue(uint32_t Value) {
  switch (Value) {
  case EFFSAN_POLICY_BOUNDS_ONLY:
    return CheckPolicy::BoundsOnly;
  case EFFSAN_POLICY_TYPE_ONLY:
    return CheckPolicy::TypeOnly;
  case EFFSAN_POLICY_COUNT_ONLY:
    return CheckPolicy::CountOnly;
  case EFFSAN_POLICY_OFF:
    return CheckPolicy::Off;
  case EFFSAN_POLICY_FULL:
  default:
    return CheckPolicy::Full;
  }
}

inline uint32_t policyValue(CheckPolicy Policy) {
  switch (Policy) {
  case CheckPolicy::Full:
    return EFFSAN_POLICY_FULL;
  case CheckPolicy::BoundsOnly:
    return EFFSAN_POLICY_BOUNDS_ONLY;
  case CheckPolicy::TypeOnly:
    return EFFSAN_POLICY_TYPE_ONLY;
  case CheckPolicy::CountOnly:
    return EFFSAN_POLICY_COUNT_ONLY;
  case CheckPolicy::Off:
    return EFFSAN_POLICY_OFF;
  }
  return EFFSAN_POLICY_FULL;
}

inline uint32_t errorKindValue(ErrorKind Kind) {
  switch (Kind) {
  case ErrorKind::TypeError:
    return EFFSAN_ERROR_TYPE;
  case ErrorKind::BoundsError:
    return EFFSAN_ERROR_BOUNDS;
  case ErrorKind::UseAfterFree:
    return EFFSAN_ERROR_USE_AFTER_FREE;
  case ErrorKind::DoubleFree:
    return EFFSAN_ERROR_DOUBLE_FREE;
  case ErrorKind::StackUseAfterReturn:
    return EFFSAN_ERROR_STACK_USE_AFTER_RETURN;
  case ErrorKind::ResourceExhausted:
    return EFFSAN_ERROR_RESOURCE_EXHAUSTED;
  }
  return EFFSAN_ERROR_TYPE;
}

inline uint32_t checkKindValue(CheckSiteKind Kind) {
  switch (Kind) {
  case CheckSiteKind::TypeCheck:
    return EFFSAN_CHECK_TYPE;
  case CheckSiteKind::BoundsGet:
    return EFFSAN_CHECK_BOUNDS_GET;
  case CheckSiteKind::BoundsCheck:
    return EFFSAN_CHECK_BOUNDS;
  case CheckSiteKind::BoundsNarrow:
    return EFFSAN_CHECK_BOUNDS_NARROW;
  }
  return EFFSAN_CHECK_TYPE;
}

inline CheckSiteKind checkKindFromValue(uint32_t Value) {
  switch (Value) {
  case EFFSAN_CHECK_BOUNDS_GET:
    return CheckSiteKind::BoundsGet;
  case EFFSAN_CHECK_BOUNDS:
    return CheckSiteKind::BoundsCheck;
  case EFFSAN_CHECK_BOUNDS_NARROW:
    return CheckSiteKind::BoundsNarrow;
  case EFFSAN_CHECK_TYPE:
  default:
    return CheckSiteKind::TypeCheck;
  }
}

/// Fills the ABI's v2 error struct from a reporter event (shared by
/// the session and pool trampolines).
inline void fillErrorV2(const ErrorInfo &Info, const char *Message,
                        effsan_error_v2 &Out) {
  Out.kind = errorKindValue(Info.Kind);
  Out.pointer = Info.Pointer;
  Out.offset = Info.Offset;
  // Rendered reports are never empty; an empty message means the
  // defer_error_rendering option elided it (since 1.4) — pass NULL.
  Out.message = (Message && Message[0]) ? Message : nullptr;
  Out.site = EFFSAN_NO_SITE;
  Out.file = nullptr;
  Out.line = 0;
  Out.column = 0;
  Out.function = nullptr;
  Out.check_kind = EFFSAN_CHECK_TYPE;
  Out.static_type =
      reinterpret_cast<effsan_type>(Info.StaticType);
  Out.alloc_type = reinterpret_cast<effsan_type>(Info.AllocType);
  if (const SiteInfo *W = Info.Where) {
    Out.site = W->Site;
    Out.file = W->File;
    Out.line = W->Line;
    Out.column = W->Column;
    Out.function = W->Function[0] != '\0' ? W->Function : nullptr;
    Out.check_kind = checkKindValue(W->Kind);
  }
}

/// Fills the ABI's (growable, caller-sized) heap-stats struct from a
/// lowfat::HeapStats snapshot: the library writes exactly the prefix
/// the caller declared via struct_size.
inline void fillHeapStats(const lowfat::HeapStats &In,
                          effsan_heap_stats *Out) {
  if (!Out || Out->struct_size < sizeof(uint32_t))
    return;
  effsan_heap_stats Full;
  std::memset(&Full, 0, sizeof(Full));
  Full.struct_size = Out->struct_size;
  Full.block_bytes_in_use = In.BlockBytesInUse;
  Full.peak_block_bytes_in_use = In.PeakBlockBytesInUse;
  Full.num_allocs = In.NumAllocs;
  Full.num_frees = In.NumFrees;
  Full.num_legacy_allocs = In.NumLegacyAllocs;
  Full.quarantined_bytes = In.QuarantinedBytes;
  Full.magazine_hits = In.MagazineHits;
  Full.magazine_refills = In.MagazineRefills;
  Full.steals = In.Steals;
  Full.exhaust_fallbacks = In.ExhaustFallbacks;
  size_t N = Out->struct_size;
  if (N > sizeof(Full)) {
    // A caller built against a future, larger struct: zero the tail
    // the library predates so every byte of the declared prefix is
    // defined — unknown-to-us counters read as 0, never as stack
    // garbage.
    std::memset(reinterpret_cast<char *>(Out) + sizeof(Full), 0,
                N - sizeof(Full));
    N = sizeof(Full);
  }
  std::memcpy(Out, &Full, N);
}

/// Fills the ABI's (growable, caller-sized) stack/global object-stats
/// struct from the runtime's counters, with the same prefix contract
/// as fillHeapStats.
inline void fillObjectStats(Runtime &RT, effsan_object_stats *Out) {
  if (!Out || Out->struct_size < sizeof(uint32_t))
    return;
  effsan_object_stats Full;
  std::memset(&Full, 0, sizeof(Full));
  Full.struct_size = Out->struct_size;
  const ObjectCounters &C = RT.objectCounters();
  Full.stack_allocs = C.StackAllocs.load(std::memory_order_relaxed);
  Full.stack_frames = C.StackFrames.load(std::memory_order_relaxed);
  Full.stack_retired = C.StackRetired.load(std::memory_order_relaxed);
  // The pool's byte tally counts whole blocks; the ABI stat is payload
  // bytes, so strip the per-global META header the runtime prepends.
  size_t NumGlobals = RT.globals().size();
  Full.global_objects = NumGlobals;
  Full.global_bytes =
      RT.globals().totalBytes() - NumGlobals * sizeof(MetaHeader);
  size_t N = Out->struct_size;
  if (N > sizeof(Full)) {
    std::memset(reinterpret_cast<char *>(Out) + sizeof(Full), 0,
                N - sizeof(Full));
    N = sizeof(Full);
  }
  std::memcpy(Out, &Full, N);
}

} // namespace effsan_detail
} // namespace effective

#endif // EFFECTIVE_API_EFFSAN_INTERNAL_H
