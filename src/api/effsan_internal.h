//===- api/effsan_internal.h - C ABI handle internals -----------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared internals of the effsan C ABI implementation: the session
/// handle layout and the enum translation helpers, used by both the
/// session entry points (api/effsan.cpp) and the pool entry points
/// (concurrent/effsan_pool.cpp). Not installed; not part of the ABI.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_API_EFFSAN_INTERNAL_H
#define EFFECTIVE_API_EFFSAN_INTERNAL_H

#include "api/Sanitizer.h"
#include "api/effsan.h"

#include <memory>

/// The opaque session handle: a Sanitizer (owned, or a view of a pool
/// shard) plus the installed C callback (the C++ reporter callback
/// trampolines through it).
struct effsan_session {
  std::unique_ptr<effective::Sanitizer> Owned; ///< Null for pool shards.
  effective::Sanitizer *S;
  effsan_error_callback Callback = nullptr;
  void *CallbackUserData = nullptr;

  explicit effsan_session(const effective::SessionOptions &Options)
      : Owned(std::make_unique<effective::Sanitizer>(Options)),
        S(Owned.get()) {}

  explicit effsan_session(effective::Sanitizer &Shard) : S(&Shard) {}
};

namespace effective {
namespace effsan_detail {

inline CheckPolicy policyFromValue(uint32_t Value) {
  switch (Value) {
  case EFFSAN_POLICY_BOUNDS_ONLY:
    return CheckPolicy::BoundsOnly;
  case EFFSAN_POLICY_TYPE_ONLY:
    return CheckPolicy::TypeOnly;
  case EFFSAN_POLICY_COUNT_ONLY:
    return CheckPolicy::CountOnly;
  case EFFSAN_POLICY_OFF:
    return CheckPolicy::Off;
  case EFFSAN_POLICY_FULL:
  default:
    return CheckPolicy::Full;
  }
}

inline uint32_t errorKindValue(ErrorKind Kind) {
  switch (Kind) {
  case ErrorKind::TypeError:
    return EFFSAN_ERROR_TYPE;
  case ErrorKind::BoundsError:
    return EFFSAN_ERROR_BOUNDS;
  case ErrorKind::UseAfterFree:
    return EFFSAN_ERROR_USE_AFTER_FREE;
  case ErrorKind::DoubleFree:
    return EFFSAN_ERROR_DOUBLE_FREE;
  }
  return EFFSAN_ERROR_TYPE;
}

} // namespace effsan_detail
} // namespace effective

#endif // EFFECTIVE_API_EFFSAN_INTERNAL_H
