//===- api/Sanitizer.cpp - Instance-scoped sanitizer sessions -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Sanitizer.h"

using namespace effective;

static RuntimeOptions runtimeOptions(const SessionOptions &Options) {
  RuntimeOptions RTOpts;
  RTOpts.Reporter = Options.Reporter;
  RTOpts.Heap = Options.Heap;
  return RTOpts;
}

Sanitizer::Sanitizer(const SessionOptions &Options)
    : OwnedTypes(std::make_unique<TypeContext>()), Types(OwnedTypes.get()),
      OwnedRT(std::make_unique<Runtime>(*Types, runtimeOptions(Options))),
      RT(OwnedRT.get()), Policy(Options.Policy) {}

Sanitizer::Sanitizer(TypeContext &SharedTypes, const SessionOptions &Options)
    : Types(&SharedTypes),
      OwnedRT(std::make_unique<Runtime>(SharedTypes,
                                        runtimeOptions(Options))),
      RT(OwnedRT.get()), Policy(Options.Policy) {}

Sanitizer::Sanitizer(Runtime &Existing, CheckPolicy Policy)
    : Types(&Existing.typeContext()), RT(&Existing), Policy(Policy) {}

Sanitizer::~Sanitizer() = default;

Sanitizer &Sanitizer::defaultSession() {
  static Sanitizer Session(Runtime::global(), CheckPolicy::Full);
  return Session;
}

//===----------------------------------------------------------------------===//
// Typed allocation
//===----------------------------------------------------------------------===//

void *Sanitizer::malloc(size_t Size, const TypeInfo *Type) {
  return RT->allocate(Size, Type);
}

void *Sanitizer::calloc(size_t Count, size_t Size, const TypeInfo *Type) {
  return RT->allocateZeroed(Count, Size, Type);
}

void *Sanitizer::realloc(void *Ptr, size_t NewSize, const TypeInfo *Type) {
  return RT->reallocate(Ptr, NewSize, Type);
}

void Sanitizer::free(void *Ptr) { RT->deallocate(Ptr); }

//===----------------------------------------------------------------------===//
// Policy-dispatched checks
//===----------------------------------------------------------------------===//

Bounds Sanitizer::typeCheck(const void *Ptr, const TypeInfo *StaticType) {
  switch (Policy) {
  case CheckPolicy::Full:
  case CheckPolicy::TypeOnly:
    return RT->typeCheck(Ptr, StaticType);
  case CheckPolicy::BoundsOnly:
    // Section 6.2: the -bounds variant replaces type_check by
    // bounds_get.
    return RT->boundsGet(Ptr);
  case CheckPolicy::CountOnly:
    CheckCounters::bump(RT->counters().TypeChecks);
    return Bounds::wide();
  case CheckPolicy::Off:
    return Bounds::wide();
  }
  return Bounds::wide();
}

Bounds Sanitizer::boundsGet(const void *Ptr) {
  switch (Policy) {
  case CheckPolicy::Full:
  case CheckPolicy::BoundsOnly:
    return RT->boundsGet(Ptr);
  case CheckPolicy::TypeOnly:
  case CheckPolicy::Off:
    return Bounds::wide();
  case CheckPolicy::CountOnly:
    CheckCounters::bump(RT->counters().BoundsGets);
    return Bounds::wide();
  }
  return Bounds::wide();
}

void Sanitizer::boundsCheck(const void *Ptr, size_t Size, Bounds B) {
  switch (Policy) {
  case CheckPolicy::Full:
  case CheckPolicy::BoundsOnly:
    RT->boundsCheck(Ptr, Size, B);
    return;
  case CheckPolicy::CountOnly:
    CheckCounters::bump(RT->counters().BoundsChecks);
    return;
  case CheckPolicy::TypeOnly:
  case CheckPolicy::Off:
    return;
  }
}

Bounds Sanitizer::boundsNarrow(Bounds B, const void *Field, size_t Size) {
  switch (Policy) {
  case CheckPolicy::Full:
    return RT->boundsNarrow(B, Field, Size);
  case CheckPolicy::BoundsOnly:
    // "Protects object bounds only": rule-(e) narrowing disabled.
    return B;
  case CheckPolicy::CountOnly:
    CheckCounters::bump(RT->counters().BoundsNarrows);
    return B;
  case CheckPolicy::TypeOnly:
  case CheckPolicy::Off:
    return B;
  }
  return B;
}

void Sanitizer::setErrorCallback(ErrorCallback Callback, void *UserData) {
  RT->reporter().setCallback(Callback, UserData);
}

void Sanitizer::reset() { RT->reset(); }
