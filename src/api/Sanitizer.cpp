//===- api/Sanitizer.cpp - Instance-scoped sanitizer sessions -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Sanitizer.h"

using namespace effective;

//===----------------------------------------------------------------------===//
// The policy-specialized check front end
//===----------------------------------------------------------------------===//

namespace {

/// One straight-line instantiation of each check entry point per
/// policy. `if constexpr` compiles each function down to exactly the
/// arm the old per-check switch would have selected — no runtime
/// branching on the policy remains anywhere in a check.
template <CheckPolicy P> struct FrontEnd {
  static Bounds typeCheck(Runtime &RT, const void *Ptr,
                          const TypeInfo *StaticType, SiteId Site) {
    if constexpr (P == CheckPolicy::Full || P == CheckPolicy::TypeOnly) {
      return RT.typeCheck(Ptr, StaticType, Site);
    } else if constexpr (P == CheckPolicy::BoundsOnly) {
      // Section 6.2: the -bounds variant replaces type_check by
      // bounds_get.
      return RT.boundsGet(Ptr, Site);
    } else if constexpr (P == CheckPolicy::CountOnly) {
      CheckCounters::bump(RT.counters().TypeChecks);
      return Bounds::wide();
    } else {
      return Bounds::wide();
    }
  }

  static Bounds boundsGet(Runtime &RT, const void *Ptr, SiteId Site) {
    if constexpr (P == CheckPolicy::Full || P == CheckPolicy::BoundsOnly) {
      return RT.boundsGet(Ptr, Site);
    } else if constexpr (P == CheckPolicy::CountOnly) {
      CheckCounters::bump(RT.counters().BoundsGets);
      return Bounds::wide();
    } else {
      return Bounds::wide();
    }
  }

  static void boundsCheck(Runtime &RT, const void *Ptr, size_t Size,
                          Bounds B, SiteId Site) {
    if constexpr (P == CheckPolicy::Full || P == CheckPolicy::BoundsOnly) {
      RT.boundsCheck(Ptr, Size, B, Site);
    } else if constexpr (P == CheckPolicy::CountOnly) {
      CheckCounters::bump(RT.counters().BoundsChecks);
    }
  }

  static Bounds boundsNarrow(Runtime &RT, Bounds B, const void *Field,
                             size_t Size) {
    if constexpr (P == CheckPolicy::Full) {
      return RT.boundsNarrow(B, Field, Size);
    } else if constexpr (P == CheckPolicy::CountOnly) {
      CheckCounters::bump(RT.counters().BoundsNarrows);
      return B;
    } else {
      // BoundsOnly "protects object bounds only": rule-(e) narrowing
      // disabled; TypeOnly/Off are no-ops.
      return B;
    }
  }
};

template <CheckPolicy P> constexpr CheckDispatch dispatchOf() {
  return CheckDispatch{&FrontEnd<P>::typeCheck, &FrontEnd<P>::boundsGet,
                       &FrontEnd<P>::boundsCheck,
                       &FrontEnd<P>::boundsNarrow};
}

constexpr CheckDispatch DispatchTables[] = {
    dispatchOf<CheckPolicy::Full>(),      // CheckPolicy::Full == 0
    dispatchOf<CheckPolicy::BoundsOnly>(),
    dispatchOf<CheckPolicy::TypeOnly>(),
    dispatchOf<CheckPolicy::CountOnly>(),
    dispatchOf<CheckPolicy::Off>(),
};

} // namespace

const CheckDispatch &effective::checkDispatchFor(CheckPolicy Policy) {
  return DispatchTables[static_cast<size_t>(Policy)];
}

//===----------------------------------------------------------------------===//
// Session construction
//===----------------------------------------------------------------------===//

static RuntimeOptions runtimeOptions(const SessionOptions &Options) {
  RuntimeOptions RTOpts;
  RTOpts.Reporter = Options.Reporter;
  RTOpts.Heap = Options.Heap;
  RTOpts.SiteCacheEntries = Options.SiteCacheEntries;
  return RTOpts;
}

Sanitizer::Sanitizer(const SessionOptions &Options)
    : OwnedTypes(std::make_unique<TypeContext>()), Types(OwnedTypes.get()),
      OwnedRT(std::make_unique<Runtime>(*Types, runtimeOptions(Options))),
      RT(OwnedRT.get()), Policy(Options.Policy),
      Dispatch(&checkDispatchFor(Options.Policy)) {}

Sanitizer::Sanitizer(TypeContext &SharedTypes, const SessionOptions &Options)
    : Types(&SharedTypes),
      OwnedRT(std::make_unique<Runtime>(SharedTypes,
                                        runtimeOptions(Options))),
      RT(OwnedRT.get()), Policy(Options.Policy),
      Dispatch(&checkDispatchFor(Options.Policy)) {}

Sanitizer::Sanitizer(Runtime &Existing, CheckPolicy Policy)
    : Types(&Existing.typeContext()), RT(&Existing), Policy(Policy),
      Dispatch(&checkDispatchFor(Policy)) {}

Sanitizer::~Sanitizer() = default;

Sanitizer &Sanitizer::defaultSession() {
  static Sanitizer Session(Runtime::global(), CheckPolicy::Full);
  return Session;
}

//===----------------------------------------------------------------------===//
// Typed allocation
//===----------------------------------------------------------------------===//

void *Sanitizer::malloc(size_t Size, const TypeInfo *Type) {
  return RT->allocate(Size, Type);
}

void *Sanitizer::calloc(size_t Count, size_t Size, const TypeInfo *Type) {
  return RT->allocateZeroed(Count, Size, Type);
}

void *Sanitizer::realloc(void *Ptr, size_t NewSize, const TypeInfo *Type) {
  return RT->reallocate(Ptr, NewSize, Type);
}

void Sanitizer::free(void *Ptr) { RT->deallocate(Ptr); }

void Sanitizer::setErrorCallback(ErrorCallback Callback, void *UserData) {
  RT->reporter().setCallback(Callback, UserData);
}

void Sanitizer::reset() { RT->reset(); }
