//===- api/CheckPolicy.h - Session check policies ---------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The check policy a Sanitizer session runs under — the paper's
/// Section 6.2 evaluation variants as a *configuration value* instead of
/// divergent call sites. A dependency-free header so lower layers (the
/// instrumentation pipeline) can map policies without pulling in the
/// session machinery.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_API_CHECKPOLICY_H
#define EFFECTIVE_API_CHECKPOLICY_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace effective {

/// What a session checks. Selecting a policy at session construction is
/// the Section 6.2 ablation (full EffectiveSan vs. EffectiveSan-bounds
/// vs. EffectiveSan-type) plus two operational modes.
enum class CheckPolicy : uint8_t {
  /// Full EffectiveSan: type checks, sub-object bounds narrowing, and
  /// bounds checks ("check everything").
  Full,
  /// EffectiveSan-bounds: type checks degrade to bounds_get and field
  /// narrowing is disabled — allocation bounds only, the
  /// LowFat/ASan-comparable variant of Section 6.2.
  BoundsOnly,
  /// EffectiveSan-type: type checks only; no bounds checking.
  TypeOnly,
  /// Checks are counted but never performed — the cheapest way to
  /// profile check density without paying for meta data probes.
  CountOnly,
  /// Everything off; all checks return wide bounds and count nothing.
  Off,
};

/// Stable display name ("full", "bounds-only", ...).
constexpr std::string_view checkPolicyName(CheckPolicy Policy) {
  switch (Policy) {
  case CheckPolicy::Full:
    return "full";
  case CheckPolicy::BoundsOnly:
    return "bounds-only";
  case CheckPolicy::TypeOnly:
    return "type-only";
  case CheckPolicy::CountOnly:
    return "count-only";
  case CheckPolicy::Off:
    return "off";
  }
  return "?";
}

/// Parses a policy name as spelled by checkPolicyName (plus the paper's
/// variant spellings "bounds"/"type"/"none").
inline std::optional<CheckPolicy> parseCheckPolicy(std::string_view Name) {
  if (Name == "full")
    return CheckPolicy::Full;
  if (Name == "bounds-only" || Name == "bounds")
    return CheckPolicy::BoundsOnly;
  if (Name == "type-only" || Name == "type")
    return CheckPolicy::TypeOnly;
  if (Name == "count-only" || Name == "count")
    return CheckPolicy::CountOnly;
  if (Name == "off" || Name == "none")
    return CheckPolicy::Off;
  return std::nullopt;
}

} // namespace effective

#endif // EFFECTIVE_API_CHECKPOLICY_H
