//===- api/effsan_obs.cpp - C ABI observability entry points --------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `effsan_obs_*` surface (ABI 1.6): thin C shims over the obs
/// layer's Tracer / MetricsRegistry / SiteProfiler, plus the hot-site
/// query that joins a session's profiler counts against its site
/// registry and error accounting.
///
//===----------------------------------------------------------------------===//

#include "api/effsan_internal.h"
#include "obs/Metrics.h"
#include "obs/SiteProfiler.h"
#include "obs/Trace.h"

#include <algorithm>
#include <string>

using namespace effective;

extern "C" {

uint32_t effsan_obs_enable(uint32_t flags) {
  uint32_t Previous = obs::flags();
  uint32_t Wanted = 0;
  if (flags & EFFSAN_OBS_TRACE)
    Wanted |= obs::TraceFlag;
  if (flags & EFFSAN_OBS_METRICS)
    Wanted |= obs::MetricsFlag;
  if (flags & EFFSAN_OBS_PROFILE)
    Wanted |= obs::ProfileFlag;
  obs::setFlags(Wanted);
  return Previous;
}

uint32_t effsan_obs_flags(void) { return obs::flags(); }

int effsan_obs_compiled_in(void) { return obs::compiledIn() ? 1 : 0; }

int effsan_obs_trace_start(uint32_t ring_capacity) {
  size_t Cap = ring_capacity ? ring_capacity
                             : obs::Tracer::DefaultRingCapacity;
  return obs::Tracer::instance().start(Cap) ? 1 : 0;
}

void effsan_obs_trace_stop(void) { obs::Tracer::instance().stop(); }

uint64_t effsan_obs_trace_export(effsan_obs_write_fn write,
                                 void *user_data) {
  if (!write)
    return 0;
  return obs::Tracer::instance().exportChromeJson(write, user_data);
}

uint64_t effsan_obs_trace_dropped(void) {
  return obs::Tracer::instance().dropped();
}

void effsan_obs_metrics_render(effsan_obs_write_fn write,
                               void *user_data) {
  if (!write)
    return;
  std::string Text;
  obs::MetricsRegistry::global().render(Text);
  write(Text.data(), Text.size(), user_data);
}

uint32_t effsan_obs_hot_sites(effsan_session *session,
                              effsan_obs_site *out, uint32_t capacity) {
  if (!session || !out || capacity == 0)
    return 0;
  Runtime &RT = session->S->runtime();
  std::vector<obs::SiteProfile> Top = RT.profiler().topSites(capacity);
  uint32_t N = 0;
  for (const obs::SiteProfile &P : Top) {
    effsan_obs_site &Slot = out[N++];
    Slot.site = P.Site;
    Slot.line = 0;
    Slot.column = 0;
    Slot.reserved_ = 0;
    Slot.hits = P.Hits;
    Slot.misses = P.Misses;
    Slot.error_events = session->S->errorEventsAtSite(P.Site);
    Slot.file = "";
    Slot.function = nullptr;
    if (const SiteInfo *W = RT.siteTables().resolve(P.Site)) {
      Slot.line = W->Line;
      Slot.column = W->Column;
      Slot.file = W->File;
      Slot.function = W->Function[0] != '\0' ? W->Function : nullptr;
    }
  }
  return N;
}

} // extern "C"
