//===- api/effsan_service.cpp - C ABI service entry points ----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The effsan_service_* functions of the stable C ABI (api/effsan.h,
/// since 1.5): thin translation from the C handle world onto
/// service::Supervisor. Lives in the service archive so only consumers
/// that run service mode link the drain thread.
///
//===----------------------------------------------------------------------===//

#include "api/effsan.h"
#include "api/effsan_internal.h"
#include "service/Supervisor.h"

#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

using namespace effective;

/// The opaque service handle: the Supervisor, one stable effsan_session
/// wrapper per shard (checkout hands these out), the C callbacks, and
/// the C-side lease ledger. C has no RAII, so effsan_service_checkout
/// parks the granted Supervisor::Lease here per shard and
/// effsan_service_release retires one; a shard never serves two tenants
/// at once, so any parked lease on the shard belongs to the releasing
/// tenant (each lease releases under its own captured id either way).
struct effsan_service {
  service::Supervisor Sup;
  std::vector<std::unique_ptr<effsan_session>> Sessions;
  std::mutex LeaseLock;
  std::vector<std::vector<service::Supervisor::Lease>> Held;
  effsan_error_callback Callback = nullptr;
  void *CallbackUserData = nullptr;
  effsan_error_callback_v2 CallbackV2 = nullptr;
  void *CallbackV2UserData = nullptr;

  explicit effsan_service(const service::ServiceOptions &Options)
      : Sup(Options), Held(Sup.numShards()) {
    for (unsigned I = 0; I < Sup.numShards(); ++I)
      Sessions.push_back(
          std::make_unique<effsan_session>(Sup.pool().shard(I)));
  }
};

namespace {

/// Central-reporter trampoline, as the pool's (normally fired by the
/// service's drain thread; ring-full fallbacks fire it on the erring
/// worker).
void serviceCallbackTrampoline(const ErrorInfo &Info, const char *Message,
                               void *UserData) {
  auto *S = static_cast<effsan_service *>(UserData);
  if (S->Callback) {
    effsan_error Error;
    Error.kind = effsan_detail::errorKindValue(Info.Kind);
    Error.pointer = Info.Pointer;
    Error.offset = Info.Offset;
    Error.message = (Message && Message[0]) ? Message : nullptr;
    S->Callback(&Error, S->CallbackUserData);
  }
  if (S->CallbackV2) {
    effsan_error_v2 Error;
    effsan_detail::fillErrorV2(Info, Message, Error);
    S->CallbackV2(&Error, S->CallbackV2UserData);
  }
}

void attachServiceCallbacks(effsan_service *S) {
  if (S->Callback || S->CallbackV2)
    S->Sup.reporter().setCallback(serviceCallbackTrampoline, S);
}

service::TenantQuota quotaFromC(const effsan_tenant_quota *quota) {
  service::TenantQuota Q;
  if (!quota)
    return Q;
  effsan_tenant_quota Full;
  std::memset(&Full, 0, sizeof(Full));
  size_t N = quota->struct_size;
  if (N == 0 || N > sizeof(Full))
    N = sizeof(Full);
  std::memcpy(&Full, quota, N);
  Q.MaxAllocBytes = Full.max_alloc_bytes;
  Q.MaxErrorEvents = Full.max_error_events;
  Q.MaxChecks = Full.max_checks;
  return Q;
}

unsigned shardOfTenant(effsan_tenant tenant) {
  return static_cast<unsigned>(tenant & 0xffffffffu);
}

} // namespace

extern "C" {

void effsan_service_options_init(effsan_service_options *options) {
  if (!options)
    return;
  std::memset(options, 0, sizeof(*options));
  options->struct_size = sizeof(effsan_service_options);
  options->shards = 0; // Auto: one per hardware thread.
  options->policy = EFFSAN_POLICY_FULL;
  options->log_errors = 1;
  options->log_stream = stderr;
  options->max_reports_per_location = 1;
  options->site_cache_entries = 1024;
  options->drain_interval_usec = 2000;
  options->enable_governor = 1;
  service::GovernorOptions G;
  options->check_rate_high = G.CheckRateHigh;
  options->alloc_rate_high = G.AllocRateHigh;
  options->ring_occupancy_high = G.RingOccupancyHigh;
  options->restore_fraction = G.RestoreFraction;
  options->degrade_ticks = G.DegradeTicks;
  options->restore_ticks = G.RestoreTicks;
}

effsan_service *
effsan_service_create(const effsan_service_options *options) {
  effsan_service_options Defaults;
  effsan_service_options_init(&Defaults);
  // Tail-extension tolerance: read only the prefix the caller declared.
  if (options) {
    size_t N = options->struct_size;
    if (N == 0 || N > sizeof(Defaults))
      N = sizeof(Defaults);
    std::memcpy(&Defaults, options, N);
  }

  service::ServiceOptions Opts;
  Opts.Shards = Defaults.shards;
  Opts.Policy = effsan_detail::policyFromValue(Defaults.policy);
  Opts.Reporter.Mode =
      Defaults.log_errors ? ReportMode::Log : ReportMode::Count;
  Opts.Reporter.Stream =
      Defaults.log_stream ? Defaults.log_stream : stderr;
  Opts.Reporter.MaxReportsPerBucket = Defaults.max_reports_per_location;
  Opts.Reporter.MaxTotalReports = Defaults.max_total_reports;
  Opts.ErrorRingCapacity =
      static_cast<size_t>(Defaults.error_ring_capacity);
  Opts.SiteCacheEntries = static_cast<size_t>(Defaults.site_cache_entries);
  Opts.DrainIntervalMicros = Defaults.drain_interval_usec;
  Opts.AbortAfter = Defaults.abort_after;
  Opts.EnableGovernor = Defaults.enable_governor != 0;
  if (Defaults.check_rate_high)
    Opts.Governor.CheckRateHigh = Defaults.check_rate_high;
  if (Defaults.alloc_rate_high)
    Opts.Governor.AllocRateHigh = Defaults.alloc_rate_high;
  if (Defaults.ring_occupancy_high > 0)
    Opts.Governor.RingOccupancyHigh = Defaults.ring_occupancy_high;
  if (Defaults.restore_fraction > 0)
    Opts.Governor.RestoreFraction = Defaults.restore_fraction;
  if (Defaults.degrade_ticks)
    Opts.Governor.DegradeTicks = Defaults.degrade_ticks;
  if (Defaults.restore_ticks)
    Opts.Governor.RestoreTicks = Defaults.restore_ticks;
  Opts.Governor.EwmaTicks = Defaults.governor_ewma_ticks;
  if (Defaults.ring_retry_attempts)
    Opts.RingRetryAttempts = Defaults.ring_retry_attempts;
  Opts.DropOnRingFull = Defaults.drop_on_ring_full != 0;
  Opts.EnableWatchdog = Defaults.disable_watchdog == 0;
  Opts.WatchdogIntervalMicros = Defaults.watchdog_interval_usec;
  if (Defaults.max_drain_restarts)
    Opts.MaxDrainRestarts = Defaults.max_drain_restarts;

  return new (std::nothrow) effsan_service(Opts);
}

void effsan_service_destroy(effsan_service *service) { delete service; }

uint32_t effsan_service_num_shards(const effsan_service *service) {
  return service->Sup.numShards();
}

void effsan_tenant_quota_init(effsan_tenant_quota *quota) {
  if (!quota)
    return;
  std::memset(quota, 0, sizeof(*quota));
  quota->struct_size = sizeof(effsan_tenant_quota);
}

effsan_tenant effsan_service_tenant_open(effsan_service *service,
                                         const char *name,
                                         const effsan_tenant_quota *quota) {
  return service->Sup.openTenant(name ? name : "", quotaFromC(quota));
}

int effsan_service_tenant_close(effsan_service *service,
                                effsan_tenant tenant) {
  return service->Sup.closeTenant(tenant) ? 1 : 0;
}

effsan_session *effsan_service_checkout(effsan_service *service,
                                        effsan_tenant tenant) {
  service::Supervisor::Lease L = service->Sup.lease(tenant);
  if (!L)
    return nullptr;
  unsigned Shard = shardOfTenant(tenant);
  {
    std::lock_guard<std::mutex> Guard(service->LeaseLock);
    service->Held[Shard].push_back(std::move(L));
  }
  return service->Sessions[Shard].get();
}

effsan_session *
effsan_service_checkout_hint(effsan_service *service, effsan_tenant tenant,
                             uint64_t *retry_after_usec) {
  uint64_t Hint = 0;
  service::Supervisor::Lease L = service->Sup.lease(tenant, Hint);
  if (retry_after_usec)
    *retry_after_usec = Hint;
  if (!L)
    return nullptr;
  unsigned Shard = shardOfTenant(tenant);
  {
    std::lock_guard<std::mutex> Guard(service->LeaseLock);
    service->Held[Shard].push_back(std::move(L));
  }
  return service->Sessions[Shard].get();
}

int effsan_service_release(effsan_service *service, effsan_tenant tenant) {
  unsigned Shard = shardOfTenant(tenant);
  if (tenant == EFFSAN_NO_TENANT || Shard >= service->Sup.numShards())
    return 0;
  service::Supervisor::Lease Retired;
  {
    std::lock_guard<std::mutex> Guard(service->LeaseLock);
    std::vector<service::Supervisor::Lease> &Parked =
        service->Held[Shard];
    if (Parked.empty())
      return 0;
    Retired = std::move(Parked.back());
    Parked.pop_back();
  }
  // Retired's destructor returns the lease outside LeaseLock.
  return 1;
}

int effsan_service_quota_set(effsan_service *service, effsan_tenant tenant,
                             const effsan_tenant_quota *quota) {
  return service->Sup.setQuota(tenant, quotaFromC(quota)) ? 1 : 0;
}

int effsan_service_quota_get(effsan_service *service, effsan_tenant tenant,
                             effsan_tenant_quota *out) {
  if (!out)
    return 0;
  service::TenantQuota Q;
  if (!service->Sup.getQuota(tenant, Q))
    return 0;
  effsan_tenant_quota_init(out);
  out->max_alloc_bytes = Q.MaxAllocBytes;
  out->max_error_events = Q.MaxErrorEvents;
  out->max_checks = Q.MaxChecks;
  return 1;
}

int effsan_service_tenant_stats(effsan_service *service,
                                effsan_tenant tenant,
                                effsan_tenant_stats *out) {
  if (!out || out->struct_size < sizeof(uint32_t))
    return 0;
  service::TenantSnapshot Snap;
  if (!service->Sup.tenantSnapshot(tenant, Snap))
    return 0;
  effsan_tenant_stats Full;
  std::memset(&Full, 0, sizeof(Full));
  Full.struct_size = out->struct_size;
  Full.status = static_cast<uint32_t>(Snap.Status);
  Full.shard = Snap.Shard;
  Full.policy = effsan_detail::policyValue(service->Sup.tenantPolicy(tenant));
  Full.evict_reason = static_cast<uint32_t>(Snap.Reason);
  Full.checks = Snap.Checks;
  Full.alloc_bytes = Snap.AllocBytes;
  Full.error_events = Snap.ErrorEvents;
  Full.checkouts_granted = Snap.LeasesGranted;
  Full.checkouts_refused = Snap.LeasesRefused;
  Full.checkouts_outstanding = Snap.LeasesOutstanding;
  size_t N = out->struct_size;
  if (N > sizeof(Full)) {
    std::memset(reinterpret_cast<char *>(out) + sizeof(Full), 0,
                N - sizeof(Full));
    N = sizeof(Full);
  }
  std::memcpy(out, &Full, N);
  return 1;
}

void effsan_service_get_stats(effsan_service *service,
                              effsan_service_stats *out) {
  if (!out || out->struct_size < sizeof(uint32_t))
    return;
  service::ServiceStats S = service->Sup.stats();
  effsan_service_stats Full;
  std::memset(&Full, 0, sizeof(Full));
  Full.struct_size = out->struct_size;
  Full.tenants_open = S.TenantsOpen;
  Full.tenants_opened_total = S.TenantsOpenedTotal;
  Full.tenants_evicted = S.TenantsEvicted;
  Full.tenants_closed = S.TenantsClosed;
  Full.checkouts_granted = S.LeasesGranted;
  Full.checkouts_refused = S.LeasesRefused;
  Full.drain_ticks = S.DrainTicks;
  Full.drained_events = S.DrainedEvents;
  Full.ring_overflows = S.RingOverflows;
  Full.policy_degrades = S.PolicyDegrades;
  Full.policy_restores = S.PolicyRestores;
  Full.issues_found = S.IssuesFound;
  Full.snapshots_emitted = S.SnapshotsEmitted;
  Full.snapshots_skipped = S.SnapshotsSkipped;
  Full.ring_fallbacks = S.RingFallbacks;
  Full.ring_drops = S.RingDrops;
  Full.drain_restarts = S.DrainRestarts;
  Full.watchdog_checks = S.WatchdogChecks;
  Full.health = static_cast<uint32_t>(S.Health);
  size_t N = out->struct_size;
  if (N > sizeof(Full)) {
    // A caller built against a future, larger struct: zero the tail so
    // every byte of the declared prefix is defined.
    std::memset(reinterpret_cast<char *>(out) + sizeof(Full), 0,
                N - sizeof(Full));
    N = sizeof(Full);
  }
  std::memcpy(out, &Full, N);
}

uint64_t effsan_service_tick(effsan_service *service) {
  return service->Sup.tick();
}

uint32_t effsan_service_health(effsan_service *service) {
  return static_cast<uint32_t>(service->Sup.health());
}

void effsan_service_set_drain_interval(effsan_service *service,
                                       uint64_t micros) {
  service->Sup.setDrainInterval(micros);
}

uint64_t effsan_service_drain_interval(effsan_service *service) {
  return service->Sup.drainInterval();
}

void effsan_service_set_snapshot_hook(effsan_service *service,
                                      effsan_snapshot_hook hook,
                                      void *user_data,
                                      uint32_t every_ticks) {
  service->Sup.setSnapshotHook(hook, user_data, every_ticks);
}

void effsan_service_metrics_render(effsan_service *service,
                                   effsan_obs_write_fn write,
                                   void *user_data) {
  if (!service || !write)
    return;
  std::string Text = service->Sup.metricsText();
  write(Text.data(), Text.size(), user_data);
}

void effsan_service_set_error_callback(effsan_service *service,
                                       effsan_error_callback callback,
                                       void *user_data) {
  // Detach-update-reattach, as the pool setters: no trampoline can
  // read the pair while it is being rewritten.
  service->Sup.reporter().setCallback(nullptr, nullptr);
  service->Callback = callback;
  service->CallbackUserData = user_data;
  attachServiceCallbacks(service);
}

void effsan_service_set_error_callback_v2(effsan_service *service,
                                          effsan_error_callback_v2 callback,
                                          void *user_data) {
  service->Sup.reporter().setCallback(nullptr, nullptr);
  service->CallbackV2 = callback;
  service->CallbackV2UserData = user_data;
  attachServiceCallbacks(service);
}

} // extern "C"
