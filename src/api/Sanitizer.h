//===- api/Sanitizer.h - Instance-scoped sanitizer sessions -----*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instance-scoped public API of the reproduction. A Sanitizer is
/// one self-contained sanitizer *session*: it owns (or shares) a
/// TypeContext, owns a Runtime (low-fat heap, counters, reporter), and
/// carries a CheckPolicy that decides at run time what its checks do —
/// the paper's Section 6.2 variants as a constructor argument:
///
/// \code
///   Sanitizer Full;                                  // full EffectiveSan
///   SessionOptions Opts;
///   Opts.Policy = CheckPolicy::BoundsOnly;           // EffectiveSan-bounds
///   Sanitizer Bounds(Opts);
///
///   void *P = Full.malloc(sizeof(T), TypeOf<T>::get(Full.types()));
///   Bounds B = Full.typeCheck(P, IntType);
///   Full.boundsCheck(P, 4, B);
///   Full.free(P);
/// \endcode
///
/// Sessions are independent: counters, error sinks and heap statistics
/// never bleed between two sessions living in the same process, which is
/// what makes the runtime multi-tenant. The process-wide default session
/// (wrapping Runtime::global() under CheckPolicy::Full) backs the
/// paper-named facade in core/Effective.h and the stable C ABI in
/// api/effsan.h.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_API_SANITIZER_H
#define EFFECTIVE_API_SANITIZER_H

#include "api/CheckPolicy.h"
#include "api/PolicyFrontEnd.h"
#include "core/CheckedPtr.h"
#include "core/Runtime.h"

#include <atomic>
#include <memory>

namespace effective {

/// Construction options for a session.
struct SessionOptions {
  CheckPolicy Policy = CheckPolicy::Full;
  ReporterOptions Reporter;
  lowfat::HeapOptions Heap;
  /// Entries in the runtime's site-indexed type-check inline cache
  /// (power of two; 0 disables the fast path — see RuntimeOptions).
  size_t SiteCacheEntries = 1024;
};

/// One sanitizer session. Thread-safe to the same degree as Runtime
/// (checks are lock-free; allocation and reporting are internally
/// locked). Destroying a session releases its heap and meta data;
/// pointers allocated from it must not outlive it.
class Sanitizer {
public:
  /// A session with a private TypeContext.
  explicit Sanitizer(const SessionOptions &Options = SessionOptions());

  /// A session sharing \p SharedTypes (types are interned once and are
  /// immutable, so any number of sessions may share a context — the
  /// paper's weak-symbol meta data story).
  Sanitizer(TypeContext &SharedTypes,
            const SessionOptions &Options = SessionOptions());

  /// A non-owning session view over an existing runtime, applying
  /// \p Policy on top of it. This is how concurrent::SessionPool wraps
  /// its per-shard runtimes (and how the default session wraps
  /// Runtime::global()); the runtime must outlive the view.
  Sanitizer(Runtime &Existing, CheckPolicy Policy);

  ~Sanitizer();

  Sanitizer(const Sanitizer &) = delete;
  Sanitizer &operator=(const Sanitizer &) = delete;

  CheckPolicy policy() const {
    return Policy.load(std::memory_order_relaxed);
  }

  /// Swaps the session's check front end to \p NewPolicy. Safe to call
  /// while other threads are running checks: the per-policy dispatch
  /// tables are immutable statics, so a downgrade or restore is one
  /// atomic pointer store and concurrent checks land on either the old
  /// or the new table, never in between. This is the service layer's
  /// load-shedding lever (service::LoadGovernor walks sessions down
  /// Full -> BoundsOnly -> CountOnly under pressure and back up when it
  /// subsides).
  void setPolicy(CheckPolicy NewPolicy) {
    Dispatch.store(&checkDispatchFor(NewPolicy), std::memory_order_release);
    Policy.store(NewPolicy, std::memory_order_relaxed);
  }
  TypeContext &types() { return *Types; }
  Runtime &runtime() { return *RT; }
  ErrorReporter &reporter() { return RT->reporter(); }
  CheckCounters &counters() { return RT->counters(); }

  /// Sessions convert to their Runtime so runtime-parameterized code
  /// (CheckedPtr's session-aware constructor, interp::run, the workload
  /// kernels) accepts a session directly. Note the seam: code going
  /// through the Runtime — including CheckedPtr, whose instrumentation
  /// level is its compile-time Policy template — performs full runtime
  /// checks regardless of this session's CheckPolicy; the policy
  /// governs only the methods on this class (and interp::run given a
  /// session). Pair CheckedPtr's NonePolicy/BoundsPolicy/... with a
  /// matching session policy when both layers are in play.
  operator Runtime &() { return *RT; }

  /// \name Typed allocation (always real, independent of policy, so a
  /// program behaves identically under every policy).
  /// @{
  void *malloc(size_t Size, const TypeInfo *Type = nullptr);
  void *calloc(size_t Count, size_t Size, const TypeInfo *Type = nullptr);
  void *realloc(void *Ptr, size_t NewSize, const TypeInfo *Type = nullptr);
  void free(void *Ptr);
  /// @}

  /// \name Policy-dispatched checks.
  /// What each call does is decided by policy() — but instead of a
  /// per-check switch, the session resolves a per-policy CheckDispatch
  /// table once at construction (api/PolicyFrontEnd.h) and every check
  /// is one indirect call into branch-free policy-specialized code:
  ///   Full       — the paper's type_check / bounds_check / bounds_narrow;
  ///   BoundsOnly — typeCheck degrades to bounds_get, narrowing is a
  ///                no-op (allocation bounds only);
  ///   TypeOnly   — type checks run, bounds operations are no-ops;
  ///   CountOnly  — counters advance, nothing is probed or reported;
  ///   Off        — nothing happens at all.
  /// @{

  /// type_check with an explicit call-site identity (the interpreter
  /// passes the instruction's instrumentation-assigned SiteId; see
  /// Runtime::typeCheck for the inline-cache contract).
  Bounds typeCheck(const void *Ptr, const TypeInfo *StaticType,
                   SiteId Site) {
    return dispatch().TypeCheck(*RT, Ptr, StaticType, Site);
  }

  /// type_check at the static type's pseudo-site.
  Bounds typeCheck(const void *Ptr, const TypeInfo *StaticType) {
    return dispatch().TypeCheck(*RT, Ptr, StaticType,
                                siteForType(StaticType));
  }

  Bounds boundsGet(const void *Ptr, SiteId Site = NoSite) {
    return dispatch().BoundsGet(*RT, Ptr, Site);
  }

  void boundsCheck(const void *Ptr, size_t Size, Bounds B,
                   SiteId Site = NoSite) {
    dispatch().BoundsCheck(*RT, Ptr, Size, B, Site);
  }

  Bounds boundsNarrow(Bounds B, const void *Field, size_t Size) {
    return dispatch().BoundsNarrow(*RT, B, Field, Size);
  }
  /// @}

  /// \name Site attribution.
  /// @{

  /// Registers a module's check-site table with the session, so error
  /// reports carry source locations (docs/REPORT_FORMAT.md). Returns
  /// the base the table's dense local ids were rebased to — callers
  /// pass `base + local id` as the Site of their checks. \p Key (when
  /// nonzero, a process-unique producer id — interp::run passes
  /// ir::Module::uid()) makes re-registration idempotent. For pooled
  /// sessions the registry is shared pool-wide, so one registration
  /// attributes every shard's errors.
  SiteId registerSiteTable(const SiteTable &Table, uint64_t Key = 0) {
    return RT->siteTables().registerTable(Table, Key);
  }

  /// The registry backing this session's error attribution.
  SiteTableRegistry &siteTables() { return RT->siteTables(); }

  /// Error events recorded at (rebased) site \p Site.
  uint64_t errorEventsAtSite(SiteId Site) const {
    return RT->reporter().numEventsAtSite(Site);
  }
  /// @}

  /// \name Introspection.
  /// @{
  const TypeInfo *dynamicTypeOf(const void *Ptr) const {
    return RT->dynamicTypeOf(Ptr);
  }
  Bounds allocationBounds(const void *Ptr) const {
    return RT->allocationBounds(Ptr);
  }
  /// Distinct issues found so far (the Figure 7 metric).
  uint64_t issuesFound() const { return RT->reporter().numIssues(); }
  /// @}

  /// Replaces the session's error sink (thin wrapper over
  /// ReporterOptions::Callback; pass null to remove). Note that pooled
  /// sessions report through their pool's central reporter; install
  /// callbacks there instead.
  void setErrorCallback(ErrorCallback Callback, void *UserData);

  /// Recycles the session between tenant requests: rewinds its arena
  /// (for pooled sessions, only its own heap shard), clears counters
  /// and reported issues. Every pointer the session ever returned is
  /// invalidated and its addresses will be served again — callers must
  /// guarantee no live pointers and no concurrent use (see
  /// Runtime::reset for the full contract).
  void reset();

  /// The process-wide default session: CheckPolicy::Full over
  /// Runtime::global() and TypeContext::global(). This is what
  /// core/Effective.h's paper-named facade routes through.
  static Sanitizer &defaultSession();

private:
  const CheckDispatch &dispatch() const {
    return *Dispatch.load(std::memory_order_acquire);
  }

  std::unique_ptr<TypeContext> OwnedTypes; ///< Null when sharing.
  TypeContext *Types;
  std::unique_ptr<Runtime> OwnedRT; ///< Null for the default session.
  Runtime *RT;
  /// Policy and its check front end, resolved at construction and
  /// swappable at run time (setPolicy). Both are atomics so the service
  /// layer's governor may downgrade a session that other threads are
  /// actively checking through.
  std::atomic<CheckPolicy> Policy;
  std::atomic<const CheckDispatch *> Dispatch;
};

/// RAII binder routing this thread's CheckedPtr instrumentation into
/// \p Session's runtime (heap, counters, reporter). As with the
/// Runtime conversion above, what gets checked is decided by
/// CheckedPtr's compile-time Policy, not the session's CheckPolicy.
class SanitizerScope {
public:
  explicit SanitizerScope(Sanitizer &Session) : Scope(Session.runtime()) {}

private:
  RuntimeScope Scope;
};

} // namespace effective

#endif // EFFECTIVE_API_SANITIZER_H
