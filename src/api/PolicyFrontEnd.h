//===- api/PolicyFrontEnd.h - Policy-specialized check dispatch -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The devirtualized check front end of the session API. Instead of one
/// CheckPolicy switch executed per check (the pre-PR-3 design, ~1ns on
/// the micro bench and a mispredict hazard on mixed-policy processes),
/// every policy gets one straight-line instantiation of each check
/// entry point, collected into a CheckDispatch table. A session resolves
/// its table once at construction; per check it pays exactly one
/// indirect call into branch-free code.
///
/// The semantics per policy are unchanged from the switch (see
/// api/CheckPolicy.h):
///
///   Full       — the paper's type_check / bounds_check / bounds_narrow;
///   BoundsOnly — typeCheck degrades to bounds_get, narrowing is a
///                no-op (allocation bounds only);
///   TypeOnly   — type checks run, bounds operations are no-ops;
///   CountOnly  — counters advance, nothing is probed or reported;
///   Off        — nothing happens at all.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_API_POLICYFRONTEND_H
#define EFFECTIVE_API_POLICYFRONTEND_H

#include "api/CheckPolicy.h"
#include "core/Runtime.h"

namespace effective {

/// One policy's check entry points. All functions are stateless — the
/// session passes its runtime explicitly — so the five tables are
/// immutable process-wide constants.
struct CheckDispatch {
  Bounds (*TypeCheck)(Runtime &RT, const void *Ptr,
                      const TypeInfo *StaticType, SiteId Site);
  Bounds (*BoundsGet)(Runtime &RT, const void *Ptr, SiteId Site);
  void (*BoundsCheck)(Runtime &RT, const void *Ptr, size_t Size, Bounds B,
                      SiteId Site);
  Bounds (*BoundsNarrow)(Runtime &RT, Bounds B, const void *Field,
                         size_t Size);
};

/// The dispatch table for \p Policy (a reference into an immutable
/// static array; valid forever).
const CheckDispatch &checkDispatchFor(CheckPolicy Policy);

} // namespace effective

#endif // EFFECTIVE_API_POLICYFRONTEND_H
