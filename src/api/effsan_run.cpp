//===- api/effsan_run.cpp - C ABI program execution entry points ----------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// effsan_run_minic (ABI 1.7): compile a MiniC buffer under the
/// session's policy and execute it on the session's engine — the
/// bytecode VM by default, the tree-walking interpreter on request.
/// Lives in the instrument archive (not core) because it pulls in the
/// whole frontend + engine stack; sessions that never run programs
/// don't carry it.
///
//===----------------------------------------------------------------------===//

#include "api/effsan.h"
#include "api/effsan_internal.h"
#include "bytecode/VM.h"
#include "instrument/Pipeline.h"
#include "interp/Interp.h"

#include <cstring>

using namespace effective;
using namespace effective::instrument;

namespace {

/// Copies the caller's declared prefix of a default-initialized
/// effsan_run_options (the tail-extension contract).
effsan_run_options normalizedRunOptions(const effsan_run_options *options) {
  effsan_run_options Defaults;
  effsan_run_options_init(&Defaults);
  if (options) {
    size_t N = options->struct_size;
    if (N == 0 || N > sizeof(Defaults))
      N = sizeof(Defaults);
    std::memcpy(&Defaults, options, N);
  }
  return Defaults;
}

/// Fills the caller-sized result prefix (same contract as
/// effsan_heap_stats; see effsan_internal.h's fillHeapStats).
void fillRunResult(const effsan_run_result &Full, effsan_run_result *Out) {
  if (!Out || Out->struct_size < sizeof(uint32_t))
    return;
  size_t N = Out->struct_size;
  if (N > sizeof(Full)) {
    std::memset(reinterpret_cast<char *>(Out) + sizeof(Full), 0,
                N - sizeof(Full));
    N = sizeof(Full);
  }
  uint32_t Declared = Out->struct_size;
  std::memcpy(Out, &Full, N);
  Out->struct_size = Declared;
}

void setFault(effsan_run_result &R, const std::string &Message) {
  std::strncpy(R.fault, Message.c_str(), sizeof(R.fault) - 1);
  R.fault[sizeof(R.fault) - 1] = '\0';
}

} // namespace

extern "C" {

void effsan_run_options_init(effsan_run_options *options) {
  if (!options)
    return;
  std::memset(options, 0, sizeof(*options));
  options->struct_size = sizeof(effsan_run_options);
}

int effsan_run_minic(effsan_session *session, const char *source,
                     const effsan_run_options *options,
                     effsan_run_result *out) {
  effsan_run_result Full;
  std::memset(&Full, 0, sizeof(Full));
  Full.struct_size = sizeof(Full);

  if (!session || !source) {
    setFault(Full, "null session or source");
    fillRunResult(Full, out);
    return 0;
  }

  effsan_run_options Run = normalizedRunOptions(options);
  Sanitizer &S = *session->S;

  // The instrumentation variant follows the session's policy, so the
  // compiled checks and the session's API-level checks tell one story
  // (CountOnly instruments like Full; the policy dispatch is what
  // keeps its checks from probing).
  DiagnosticEngine Diags;
  InstrumentOptions Opts = instrumentOptionsFor(S.policy());
  CompileResult C =
      compileMiniC(source, S.types(), Diags, Opts,
                   Run.file_name ? Run.file_name : "<minic>");
  if (!C.M || !C.BC) {
    std::string Message = "compile error";
    if (!Diags.diagnostics().empty()) {
      const Diagnostic &D = Diags.diagnostics().front();
      Message = std::to_string(D.Loc.Line) + ":" +
                std::to_string(D.Loc.Column) + ": " + D.Message;
    }
    setFault(Full, Message);
    fillRunResult(Full, out);
    return 0;
  }

  interp::RunOptions RunOpts;
  if (Run.max_steps)
    RunOpts.MaxSteps = Run.max_steps;
  if (Run.max_call_depth)
    RunOpts.MaxCallDepth = Run.max_call_depth;
  std::string_view Entry = Run.entry ? Run.entry : "main";

  interp::RunResult R = session->Engine == EFFSAN_ENGINE_TREE
                            ? interp::run(*C.M, S, RunOpts, Entry)
                            : bytecode::run(*C.BC, S, RunOpts, Entry);

  Full.ok = R.Ok ? 1 : 0;
  Full.exit_code = R.ExitCode;
  Full.steps = R.Steps;
  Full.type_checks = R.Checks.TypeChecks;
  Full.bounds_gets = R.Checks.BoundsGets;
  Full.bounds_checks = R.Checks.BoundsChecks;
  Full.bounds_narrows = R.Checks.BoundsNarrows;
  Full.issues_reported = R.IssuesReported;
  if (!R.Ok)
    setFault(Full, R.Fault);
  if (Run.output && !R.Output.empty())
    Run.output(R.Output.data(), R.Output.size(), Run.output_user_data);

  fillRunResult(Full, out);
  return 1;
}

} // extern "C"
