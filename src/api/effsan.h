/*===- api/effsan.h - Stable C ABI for EffectiveSan sessions ------- C -----===*
 *
 * Part of the EffectiveSan reproduction. Released under the MIT license.
 *
 *===----------------------------------------------------------------------===*
 *
 * The stable, versioned, extern-"C" face of the sanitizer: everything a
 * foreign language or a shared-library consumer needs to create
 * instance-scoped sanitizer sessions, describe C types to them, allocate
 * typed memory, and run the paper's dynamic checks (type_check,
 * bounds_check, bounds_narrow, bounds_get — Figures 3 and 6).
 *
 *   effsan_options opts;
 *   effsan_options_init(&opts);
 *   opts.policy = EFFSAN_POLICY_FULL;
 *   effsan_session *s = effsan_session_create(&opts);
 *
 *   effsan_type int_ty = effsan_type_primitive(s, EFFSAN_PRIM_INT);
 *   int *p = (int *)effsan_malloc(s, 100 * sizeof(int), int_ty);
 *   effsan_bounds b = effsan_type_check(s, p, int_ty);
 *   effsan_bounds_check(s, p + 5, sizeof(int), b);
 *   effsan_free(s, p);
 *   effsan_session_destroy(s);
 *
 * ABI stability rules:
 *  - new functions may be added; existing signatures never change;
 *  - effsan_options is extended only at the tail, and carries its own
 *    struct_size so old callers keep working against new libraries;
 *  - enum values are never renumbered;
 *  - the minor version bumps on additions, the major version on breaks.
 *
 *===----------------------------------------------------------------------===*/

#ifndef EFFECTIVE_API_EFFSAN_H
#define EFFECTIVE_API_EFFSAN_H

#include <stddef.h>
#include <stdint.h>
#include <stdio.h>

#ifdef __cplusplus
extern "C" {
#endif

/*===--------------------------------------------------------------------===*
 * Versioning
 *===--------------------------------------------------------------------===*/

#define EFFSAN_ABI_VERSION_MAJOR 1
#define EFFSAN_ABI_VERSION_MINOR 9
#define EFFSAN_ABI_VERSION                                                   \
  ((EFFSAN_ABI_VERSION_MAJOR << 16) | EFFSAN_ABI_VERSION_MINOR)

/* The version the library was built as ((major << 16) | minor). */
uint32_t effsan_abi_version(void);

/*===--------------------------------------------------------------------===*
 * Sessions
 *===--------------------------------------------------------------------===*/

/* One sanitizer session (opaque). Sessions are independent: private
 * heap, counters and error sink. */
typedef struct effsan_session effsan_session;

/* An interned dynamic type handle (opaque). Valid for the lifetime of
 * the session that produced it. */
typedef const struct effsan_type_opaque *effsan_type;

/* The session check policy — the paper's Section 6.2 variants. */
typedef enum effsan_policy {
  EFFSAN_POLICY_FULL = 0,        /* type + sub-object bounds checks   */
  EFFSAN_POLICY_BOUNDS_ONLY = 1, /* EffectiveSan-bounds (bounds_get)  */
  EFFSAN_POLICY_TYPE_ONLY = 2,   /* EffectiveSan-type                 */
  EFFSAN_POLICY_COUNT_ONLY = 3,  /* count checks, probe nothing       */
  EFFSAN_POLICY_OFF = 4          /* no checks at all                  */
} effsan_policy;

/* Session construction options. Always initialize with
 * effsan_options_init() before overriding fields, so adding tail fields
 * later cannot break compiled callers. */
typedef struct effsan_options {
  uint32_t struct_size; /* = sizeof(effsan_options); set by _init    */
  uint32_t policy;      /* an effsan_policy value                    */
  int log_errors;       /* nonzero: log reports to log_stream        */
  FILE *log_stream;     /* default stderr                            */
  /* Per-location dedup cap: emit at most this many reports per
   * (kind, types, offset) bucket; 0 = unlimited. Default 1 — each
   * distinct issue is reported once, as in the paper. */
  uint64_t max_reports_per_location;
  uint64_t max_total_reports; /* cap across all locations; 0 = none  */
  uint64_t abort_after;       /* abort after N error events; 0 = no  */
  /* Entries in the session's site-indexed type-check inline cache
   * (since 1.2; rounded up to a power of two, 2-way set-associative
   * since 1.4). 0 disables the fast path — every type_check takes the
   * full layout-probe slow path. Default 1024. */
  uint64_t site_cache_entries;
  /* Blocks cached per (thread, size class) in the allocator's TLS
   * magazine (since 1.4; clamped internally). The steady-state typed
   * malloc/free is then a thread-local pop/push with no locks. 0
   * disables magazines. Default 16. */
  uint64_t magazine_size;
  /* Nonzero: skip rendering report message strings for buckets that
   * are only counted (since 1.4). Error callbacks then receive a NULL
   * message in counting mode; logging mode always renders. Default
   * 0 — behavior unchanged. */
  int32_t defer_error_rendering;
  /* Execution engine for effsan_run_minic (since 1.7; an effsan_engine
   * value; was a zeroed reserved field before 1.7). Default
   * EFFSAN_ENGINE_BYTECODE (= 0) — the direct-threaded VM; select
   * EFFSAN_ENGINE_TREE for the reference tree-walker. Inert for
   * sessions that never run programs. */
  uint32_t engine;
} effsan_options;

/* How a session executes instrumented MiniC programs (since 1.7).
 * Both engines run the same checks against the same runtime and
 * produce identical results, outputs, check counts and error reports
 * (the bytecode differential test suite enforces this); the bytecode
 * VM is simply faster. The tree-walker remains available as the
 * reference oracle. */
typedef enum effsan_engine {
  EFFSAN_ENGINE_BYTECODE = 0, /* dense bytecode, direct-threaded VM   */
  EFFSAN_ENGINE_TREE = 1      /* tree-walking IR interpreter          */
} effsan_engine;

/* Fills *options with the defaults (full policy, logging to stderr). */
void effsan_options_init(effsan_options *options);

/* Creates a session; NULL options means defaults. Returns NULL only on
 * out-of-memory. */
effsan_session *effsan_session_create(const effsan_options *options);

/* Destroys a session and its heap. Pointers it served die with it.
 * No-op for sessions checked out of a pool — those are owned by the
 * pool and die with effsan_pool_destroy(). */
void effsan_session_destroy(effsan_session *session);

/* Recycles a session between tenant requests (since 1.1): rewinds its
 * arena (for pooled sessions, only that shard's slice), clears its
 * counters and reported issues. Every pointer the session ever
 * returned is invalidated and its addresses will be served again; the
 * caller guarantees no live pointers and no concurrent use. Type
 * handles remain valid. */
void effsan_session_reset(effsan_session *session);

/* The session's policy (an effsan_policy value). */
uint32_t effsan_session_policy(const effsan_session *session);

/* Changes the session's policy at run time (since 1.5). The swap is
 * one atomic dispatch-table store: checks racing the change simply run
 * the old tables or the new — never a torn mix. Safe from any thread,
 * including against concurrent checks on the same session (this is how
 * the service layer degrades an overloaded shard without pausing its
 * mutators). */
void effsan_session_set_policy(effsan_session *session, uint32_t policy);

/* The session's execution engine (an effsan_engine value; since 1.7).
 * Fixed at creation — session options for owned sessions, pool options
 * for shards. */
uint32_t effsan_session_engine(const effsan_session *session);

/*===--------------------------------------------------------------------===*
 * Program execution (since 1.7)
 *
 * Compiles a MiniC source buffer with the paper's instrumentation
 * schema — the instrumentation variant is derived from the session's
 * policy — and executes it on the session's engine against the
 * session's runtime: allocations land in the session heap, checks bump
 * the session counters, and errors flow to the session's reporter and
 * callbacks exactly as API-level checks do.
 *===--------------------------------------------------------------------===*/

typedef struct effsan_run_options {
  uint32_t struct_size; /* = sizeof(effsan_run_options); set by _init  */
  uint32_t reserved_;
  uint64_t max_steps;      /* instruction budget; 0 = default (1e8)    */
  uint64_t max_call_depth; /* call-depth limit; 0 = default (4000)     */
  const char *entry;       /* entry function; NULL = "main"            */
  const char *file_name;   /* source name in reports; NULL = "<minic>" */
  /* Receives everything the program's print_* builtins write (chunked;
   * data is valid only during the call and not NUL-terminated). NULL
   * discards the output. */
  void (*output)(const char *data, size_t len, void *user_data);
  void *output_user_data;
} effsan_run_options;

/* Fills *options with the defaults above. */
void effsan_run_options_init(effsan_run_options *options);

/* One program run's outcome. Caller-sized like effsan_heap_stats: set
 * struct_size to sizeof(effsan_run_result) before the call and the
 * library fills exactly the prefix you declared (fields added after
 * your build read as zero). */
typedef struct effsan_run_result {
  uint32_t struct_size; /* set by the CALLER before the call           */
  /* Nonzero when the program ran to completion. The program may still
   * have *reported* type/memory errors — like the paper's logging
   * mode, detected errors do not stop execution; a zero here means a
   * VM-level fault (see fault below). */
  uint32_t ok;
  int64_t exit_code;        /* the entry function's return value       */
  uint64_t steps;           /* instructions executed (engine-specific:
                             * a fused bytecode check+access counts 1) */
  uint64_t type_checks;     /* dynamic executed-check counts ...       */
  uint64_t bounds_gets;
  uint64_t bounds_checks;
  uint64_t bounds_narrows;  /* ... (the Figure 7 columns)              */
  uint64_t issues_reported; /* distinct issues this run reported       */
  /* VM fault description when !ok, or the first compile diagnostic
   * when effsan_run_minic returned 0; NUL-terminated, truncated to
   * fit. Empty on success. */
  char fault[120];
} effsan_run_result;

/* Compiles and runs `source`. NULL options means defaults; `out` may
 * be NULL when only the side effects matter. Returns nonzero when the
 * source compiled and a run was attempted (inspect out->ok for the
 * run's fate), 0 on a compile error (out->fault then carries the first
 * diagnostic). The compiled program is not retained — each call
 * compiles afresh; globals are (re)allocated per run. */
int effsan_run_minic(effsan_session *session, const char *source,
                     const effsan_run_options *options,
                     effsan_run_result *out);

/*===--------------------------------------------------------------------===*
 * Session pools (since 1.1)
 *
 * A pool owns N sanitizer shard sessions over ONE shared low-fat arena
 * carved into per-shard sub-arenas: worker threads check out a shard
 * each and allocate/check without shared locks, while the base/size
 * metadata arithmetic stays valid across shards. Error events go
 * through a lock-free ring to one central reporter; call
 * effsan_pool_drain() (one thread at a time) to publish them.
 *===--------------------------------------------------------------------===*/

typedef struct effsan_pool effsan_pool;

typedef struct effsan_pool_options {
  uint32_t struct_size; /* = sizeof(effsan_pool_options); set by _init */
  uint32_t shards;      /* shard count; 0 = one per hardware thread    */
  uint32_t policy;      /* an effsan_policy value                      */
  int log_errors;       /* nonzero: central reporter logs to stream    */
  FILE *log_stream;     /* default stderr                              */
  uint64_t max_reports_per_location; /* central dedup cap; default 1   */
  uint64_t max_total_reports;        /* central total cap; 0 = none    */
  uint64_t error_ring_capacity;      /* ring slots; 0 = default (4096) */
  /* Per-shard type-check inline-cache entries (since 1.2; power of
   * two, 2-way set-associative since 1.4; 0 disables the fast path on
   * every shard). Default 1024. */
  uint64_t site_cache_entries;
  /* Blocks cached per (thread, size class) in the allocator's TLS
   * magazine (since 1.4); 0 disables. Default 16. */
  uint64_t magazine_size;
  /* Nonzero: when a worker shard's slice of a size-class region runs
   * dry, refill from a sibling shard's slice instead of falling back
   * to the (locked, legacy-pointer) system allocator (since 1.4).
   * base(p)/size(p) stay exact for stolen blocks. Caveat: the
   * effsan_session_reset contract for a shard then extends to blocks
   * sibling shards borrowed from its slice. Default 0. */
  int32_t enable_work_stealing;
  /* Nonzero: skip rendering report messages for counted-only buckets
   * (since 1.4) — CountOnly-policy pools then drain the error ring
   * without building a string per issue. Default 0. */
  int32_t defer_error_rendering;
  /* --- added in ABI 1.7 (older callers' shorter struct_size keeps
   *     the defaults for everything below) --- */
  /* Execution engine for effsan_run_minic on every shard session (an
   * effsan_engine value; default EFFSAN_ENGINE_BYTECODE). */
  uint32_t engine;
  uint32_t reserved_;
} effsan_pool_options;

/* Fills *options with the defaults (full policy, auto shard count,
 * logging to stderr). */
void effsan_pool_options_init(effsan_pool_options *options);

/* Creates a pool; NULL options means defaults. Returns NULL only on
 * out-of-memory. */
effsan_pool *effsan_pool_create(const effsan_pool_options *options);

/* Drains pending error events, then destroys the pool, its sessions
 * and the shared arena. Pointers served by any shard die with it. */
void effsan_pool_destroy(effsan_pool *pool);

/* Number of shard sessions in the pool. */
uint32_t effsan_pool_num_shards(const effsan_pool *pool);

/* Thread-affine checkout: the calling thread is bound to one shard on
 * first use (round-robin) and always receives that shard again. The
 * returned session is owned by the pool — do not destroy it. */
effsan_session *effsan_pool_checkout(effsan_pool *pool);

/* Direct access to shard `index` (supervisor use; NULL if out of
 * range). */
effsan_session *effsan_pool_shard(effsan_pool *pool, uint32_t index);

/* Delivers every queued error event to the central reporter; returns
 * the number delivered. Call from one thread at a time. */
uint64_t effsan_pool_drain(effsan_pool *pool);

/*===--------------------------------------------------------------------===*
 * Type construction
 *===--------------------------------------------------------------------===*/

typedef enum effsan_prim {
  EFFSAN_PRIM_VOID = 0,
  EFFSAN_PRIM_BOOL = 1,
  EFFSAN_PRIM_CHAR = 2,
  EFFSAN_PRIM_SCHAR = 3,
  EFFSAN_PRIM_UCHAR = 4,
  EFFSAN_PRIM_SHORT = 5,
  EFFSAN_PRIM_USHORT = 6,
  EFFSAN_PRIM_INT = 7,
  EFFSAN_PRIM_UINT = 8,
  EFFSAN_PRIM_LONG = 9,
  EFFSAN_PRIM_ULONG = 10,
  EFFSAN_PRIM_LONGLONG = 11,
  EFFSAN_PRIM_ULONGLONG = 12,
  EFFSAN_PRIM_FLOAT = 13,
  EFFSAN_PRIM_DOUBLE = 14,
  EFFSAN_PRIM_LONGDOUBLE = 15
} effsan_prim;

/* Primitive, pointer and array type handles (interned per session's
 * type context; handle equality is dynamic type equality). */
effsan_type effsan_type_primitive(effsan_session *session, effsan_prim kind);
effsan_type effsan_type_pointer(effsan_session *session, effsan_type pointee);
effsan_type effsan_type_array(effsan_session *session, effsan_type element,
                              uint64_t count);

/* Struct types are built field by field; offsets follow C layout rules:
 *
 *   effsan_struct_builder *b = effsan_struct_begin(s, "account");
 *   effsan_struct_field(b, "number", effsan_type_array(s, int_ty, 8));
 *   effsan_struct_field(b, "balance", float_ty);
 *   effsan_type account_ty = effsan_struct_end(b);   // frees b
 */
typedef struct effsan_struct_builder effsan_struct_builder;
effsan_struct_builder *effsan_struct_begin(effsan_session *session,
                                           const char *tag);
void effsan_struct_field(effsan_struct_builder *builder, const char *name,
                         effsan_type type);
effsan_type effsan_struct_end(effsan_struct_builder *builder);

/* Union types (since 1.2): same builder protocol as structs — add
 * members with effsan_struct_field (every member sits at offset zero;
 * size/alignment follow C union rules), finish with effsan_struct_end.
 * Checks against a union-typed object accept any member's static type
 * at the union's offset, preferring the member with the widest
 * bounds. */
effsan_struct_builder *effsan_union_begin(effsan_session *session,
                                          const char *tag);

/* Appends a trailing flexible array member of element type `element`
 * to a *struct* builder (since 1.2). Must be the last field added; the
 * member is represented as element[1] per the paper's convention, and
 * the layout's normalized-offset domain extends so interior pointers
 * into any tail element type-check like pointers into the first.
 * No-op on union builders. */
void effsan_struct_flexible_array(effsan_struct_builder *builder,
                                  const char *name, effsan_type element);

/* Renders the type spelling ("struct account", "int[8]") into buffer
 * (always NUL-terminated); returns buffer. */
const char *effsan_type_name(effsan_type type, char *buffer, size_t size);

/* sizeof the type in bytes (0 for void/function/incomplete types). */
uint64_t effsan_type_size(effsan_type type);

/* The dynamic (allocation) type of ptr's object, or NULL for legacy /
 * unknown pointers — the introspection surface. */
effsan_type effsan_type_of(effsan_session *session, const void *ptr);

/*===--------------------------------------------------------------------===*
 * Typed allocation (the paper's type_malloc family, Figure 6)
 *===--------------------------------------------------------------------===*/

/* type may be NULL for untyped (wide-bounds) allocations. */
void *effsan_malloc(effsan_session *session, size_t size, effsan_type type);
void *effsan_calloc(effsan_session *session, size_t count, size_t size,
                    effsan_type type);
void *effsan_realloc(effsan_session *session, void *ptr, size_t size,
                     effsan_type type);
void effsan_free(effsan_session *session, void *ptr);

/*===--------------------------------------------------------------------===*
 * Typed stack & global objects (since 1.8)
 *
 * The low-fat STACK and GLOBAL object kinds of the paper's Section 5:
 * frame-scoped typed stack slots with escape-aware use-after-return
 * detection, and module-load global registration. Stack objects live
 * in a per-thread pool with strict frame discipline; when a frame
 * leaves, its objects' METAs are rebound to the STACK-FREE type, and
 * objects flagged as escaping are additionally parked in a bounded
 * FIFO quarantine that delays address reuse — a dangling pointer into
 * the dead frame then faults as EFFSAN_ERROR_STACK_USE_AFTER_RETURN
 * with full site attribution, instead of silently aliasing whatever
 * reused the slot. Global objects are never freed (until session
 * reset) and keep base(p)/size(p) O(1) like any low-fat allocation.
 *===--------------------------------------------------------------------===*/

/* A frame marker, as returned by effsan_stack_enter. */
typedef uint64_t effsan_stack_mark;

/* Opens a stack frame on the calling thread and returns its marker.
 * Frames are per (thread, session) and strictly nested: leave frames
 * in reverse order of entry. */
effsan_stack_mark effsan_stack_enter(effsan_session *session);

/* Closes the frame `mark` (and any frames nested inside it that were
 * not left explicitly): every stack object the frame allocated is
 * rebound to STACK-FREE; escaping objects enter the use-after-return
 * quarantine, the rest return to the heap immediately. */
void effsan_stack_leave(effsan_session *session, effsan_stack_mark mark);

/* Allocates one typed stack object in the current frame. `type` may be
 * NULL for an untyped (wide-bounds) slot. Nonzero `escapes` marks an
 * address-taken slot — the caller's static analysis saw its address
 * stored, passed or returned — arming the quarantine delay for it.
 * The memory is NOT zeroed (it is stack memory). */
void *effsan_stack_alloc_typed(effsan_session *session, size_t size,
                               effsan_type type, int escapes);

/* One global object description for effsan_globals_register. */
typedef struct effsan_global_def {
  const char *name;  /* registry name (copied); may be NULL           */
  uint64_t size;     /* object size in bytes                          */
  effsan_type type;  /* allocation type; NULL = untyped (wide bounds) */
} effsan_global_def;

/* Module-load registration of `count` global objects — the
 * module-ctor analogue of effsan_site_table_register. Each definition
 * is allocated zero-initialized out of the session's low-fat global
 * region with a full META {type, size} header, so global
 * out-of-bounds and type-confusion errors report exactly like heap
 * errors. addresses_out (required, `count` slots) receives the
 * objects' addresses in definition order. Globals live until the
 * session is destroyed or reset. For sessions checked out of a pool
 * the objects land on that shard's slice. Returns the number of
 * globals registered (== count), or 0 when defs/addresses_out is NULL
 * or count is 0. */
uint32_t effsan_globals_register(effsan_session *session,
                                 const effsan_global_def *defs,
                                 uint32_t count, void **addresses_out);

/*===--------------------------------------------------------------------===*
 * Dynamic checks (Figures 3 and 6), dispatched by the session policy
 *===--------------------------------------------------------------------===*/

/* A bounds value [lo, hi). Wide bounds are [0, UINTPTR_MAX). */
typedef struct effsan_bounds {
  uintptr_t lo;
  uintptr_t hi;
} effsan_bounds;

/* type_check: verifies ptr addresses a (sub-)object of static_type and
 * returns the sub-object bounds (wide on error/legacy). */
effsan_bounds effsan_type_check(effsan_session *session, const void *ptr,
                                effsan_type static_type);

/* bounds_get: allocation bounds without a type check (the
 * EffectiveSan-bounds primitive). */
effsan_bounds effsan_bounds_get(effsan_session *session, const void *ptr);

/* bounds_check: report if the size-byte access at ptr leaves bounds. */
void effsan_bounds_check(effsan_session *session, const void *ptr,
                         size_t size, effsan_bounds bounds);

/* bounds_narrow: intersect bounds with the field at [field, field+size). */
effsan_bounds effsan_bounds_narrow(effsan_session *session,
                                   effsan_bounds bounds, const void *field,
                                   size_t size);

/*===--------------------------------------------------------------------===*
 * Counters and error reporting
 *===--------------------------------------------------------------------===*/

typedef struct effsan_counters {
  uint64_t type_checks;
  uint64_t legacy_type_checks;
  uint64_t bounds_checks;
  uint64_t bounds_narrows;
  uint64_t bounds_gets;
  uint64_t issues_found;       /* distinct issues (Figure 7 buckets)  */
  uint64_t error_events;       /* raw error events                    */
  uint64_t reports_suppressed; /* events muted by the dedup caps      */
} effsan_counters;

/* Snapshots the session's check counters and issue counts. For pool
 * shards the check counts are per-shard, but issues_found /
 * error_events / reports_suppressed read 0: pooled error events are
 * accounted centrally — use effsan_pool_get_counters for those. */
void effsan_get_counters(const effsan_session *session,
                         effsan_counters *out);

/* Pool-wide merged counters (since 1.1): check counts summed over all
 * shards; issue/event counts from the central reporter (drains
 * first). */
void effsan_pool_get_counters(effsan_pool *pool, effsan_counters *out);

/* Type-check inline-cache statistics (since 1.2): checks resolved by
 * the session's site-indexed fast path vs. the full layout-probe slow
 * path. hits + misses + legacy_type_checks == type_checks under
 * full/type-only policies. New functions rather than new
 * effsan_counters fields: that struct is caller-allocated without a
 * struct_size, so it can never grow. */
uint64_t effsan_type_check_cache_hits(const effsan_session *session);
uint64_t effsan_type_check_cache_misses(const effsan_session *session);

/*===--------------------------------------------------------------------===*
 * Allocator statistics (since 1.4)
 *
 * The low-fat allocator's own counters: footprint, quarantine, and the
 * lock-free fast-path telemetry (TLS-magazine hits/refills, shard work
 * steals, slice-exhaustion legacy fallbacks). Unlike effsan_counters,
 * this struct carries a caller-set struct_size so it CAN grow: set it
 * to sizeof(effsan_heap_stats) before the call and the library fills
 * exactly the prefix you declared. Fields added after the library was
 * built read as zero, never as uninitialized memory.
 *===--------------------------------------------------------------------===*/

typedef struct effsan_heap_stats {
  uint32_t struct_size; /* set by the CALLER before the call          */
  uint32_t reserved_;
  uint64_t block_bytes_in_use;      /* size-class-rounded live bytes  */
  uint64_t peak_block_bytes_in_use;
  uint64_t num_allocs;
  uint64_t num_frees;
  uint64_t num_legacy_allocs;       /* system-allocator fallbacks     */
  uint64_t quarantined_bytes;       /* incl. unflushed thread batches */
  uint64_t magazine_hits;           /* allocs served by the TLS cache */
  uint64_t magazine_refills;        /* batched refills from the arena */
  uint64_t steals;                  /* blocks taken from sibling shards */
  uint64_t exhaust_fallbacks;       /* legacy allocs due to a dry slice */
} effsan_heap_stats;

/* Snapshots the session's allocator statistics. For sessions checked
 * out of a pool the numbers are per-shard (the shard's slice of the
 * shared arena); steals are attributed to the requesting shard. */
void effsan_get_heap_stats(const effsan_session *session,
                           effsan_heap_stats *out);

/* Pool-wide allocator statistics, summed over all shards. */
void effsan_pool_get_heap_stats(effsan_pool *pool,
                                effsan_heap_stats *out);

/* Typed stack & global object statistics (since 1.8). Caller-sized
 * like effsan_heap_stats: set struct_size to
 * sizeof(effsan_object_stats) before the call and the library fills
 * exactly the prefix you declared — the struct only ever grows at the
 * tail, and fields newer than your build read as zero. */
typedef struct effsan_object_stats {
  uint32_t struct_size; /* set by the CALLER before the call          */
  uint32_t reserved_;
  uint64_t stack_allocs;   /* typed stack objects ever allocated      */
  uint64_t stack_frames;   /* frames released                         */
  uint64_t stack_retired;  /* escaping slots retired via quarantine   */
  uint64_t global_objects; /* globals currently registered            */
  uint64_t global_bytes;   /* payload bytes across those globals      */
} effsan_object_stats;

/* Snapshots the session's stack/global object statistics, aggregated
 * across every thread that used the session. */
void effsan_get_object_stats(const effsan_session *session,
                             effsan_object_stats *out);

typedef enum effsan_error_kind {
  EFFSAN_ERROR_TYPE = 0,
  EFFSAN_ERROR_BOUNDS = 1,
  EFFSAN_ERROR_USE_AFTER_FREE = 2,
  EFFSAN_ERROR_DOUBLE_FREE = 3,
  /* Use of a typed stack object after its frame returned (since 1.8). */
  EFFSAN_ERROR_STACK_USE_AFTER_RETURN = 4,
  /* An allocation the program requested could not be satisfied — heap
   * OOM or an induced exhaustion fault (since 1.9). The failing
   * allocation function returns NULL after reporting this; execution
   * engines surface the null to the program rather than crashing. */
  EFFSAN_ERROR_RESOURCE_EXHAUSTED = 5
} effsan_error_kind;

/*===--------------------------------------------------------------------===*
 * Site attribution (since 1.3)
 *
 * A *site* is one static check. Instrumented modules number their
 * checks densely; registering the module's site table with a session
 * rebases those local ids onto the session's global id space and
 * returns the base. Error reports then carry the source location,
 * function and static type of the erring check (see
 * docs/REPORT_FORMAT.md), errors deduplicate per site, and per-site
 * error counters become queryable.
 *===--------------------------------------------------------------------===*/

/* "No site": the null site id. */
#define EFFSAN_NO_SITE 0xffffffffu

/* What a site checks. Values are stable. */
typedef enum effsan_check_kind {
  EFFSAN_CHECK_TYPE = 0,          /* type_check                        */
  EFFSAN_CHECK_BOUNDS_GET = 1,    /* bounds_get                        */
  EFFSAN_CHECK_BOUNDS = 2,        /* bounds_check                      */
  EFFSAN_CHECK_BOUNDS_NARROW = 3  /* bounds_narrow                     */
} effsan_check_kind;

/* One site's description (registration input). The strings are copied
 * by effsan_site_table_register; the caller may free them afterwards. */
typedef struct effsan_site_info {
  uint32_t line;            /* 1-based; 0 = unknown                    */
  uint32_t column;          /* 1-based; 0 = unknown                    */
  uint32_t kind;            /* an effsan_check_kind value              */
  const char *function;     /* enclosing function; may be NULL         */
  effsan_type static_type;  /* checked-against type; may be NULL       */
} effsan_site_info;

/* Registers `count` site descriptions for source file `file` with the
 * session and returns the base id they were rebased to: site i of the
 * table becomes global site (base + i), which is the id to pass as a
 * check's site and the id reported back in effsan_error_v2. For
 * sessions checked out of a pool the registration is pool-wide — any
 * shard's errors resolve against it. Returns EFFSAN_NO_SITE when
 * `sites` is NULL or `count` is 0. */
uint32_t effsan_site_table_register(effsan_session *session,
                                    const char *file,
                                    const effsan_site_info *sites,
                                    uint32_t count);

/* Error events recorded at (rebased) site `site` so far. Counts every
 * event, including those muted by the report caps. Pool shards report
 * centrally, so their session-level count reads 0 — use
 * effsan_pool_site_error_events for pooled sessions. */
uint64_t effsan_site_error_events(const effsan_session *session,
                                  uint32_t site);

/* Pool-wide per-site error events (drains the ring first). */
uint64_t effsan_pool_site_error_events(effsan_pool *pool, uint32_t site);

/* Site-carrying check variants (since 1.3): identical to
 * effsan_type_check / effsan_bounds_get / effsan_bounds_check, with the
 * check's registered site identity attached — errors they report are
 * attributed to that site's source location and deduplicate per site.
 * Pass EFFSAN_NO_SITE to behave exactly like the unsited originals. */
effsan_bounds effsan_type_check_at(effsan_session *session, const void *ptr,
                                   effsan_type static_type, uint32_t site);
effsan_bounds effsan_bounds_get_at(effsan_session *session, const void *ptr,
                                   uint32_t site);
void effsan_bounds_check_at(effsan_session *session, const void *ptr,
                            size_t size, effsan_bounds bounds,
                            uint32_t site);

typedef struct effsan_error {
  uint32_t kind;       /* an effsan_error_kind value                 */
  const void *pointer; /* the offending pointer                      */
  int64_t offset;      /* byte offset within the allocation          */
  const char *message; /* rendered report; valid during the callback */
} effsan_error;

/* Invoked once per emitted report (after dedup caps), from the erring
 * thread. Must not call back into the same session's reporter. */
typedef void (*effsan_error_callback)(const effsan_error *error,
                                      void *user_data);

/* Installs (or, with NULL, removes) the session error sink. For pool
 * shards this sink never fires (their events are drained centrally);
 * use effsan_pool_set_error_callback instead. */
void effsan_set_error_callback(effsan_session *session,
                               effsan_error_callback callback,
                               void *user_data);

/* Installs (or, with NULL, removes) the pool's central error sink —
 * fired once per emitted report (since 1.1). Invocations are
 * serialized by the central reporter but NOT thread-affine: they
 * normally come from the draining thread, yet when the error ring is
 * momentarily full the erring worker reports directly and the
 * callback runs on that worker. Keep the callback thread-agnostic. */
void effsan_pool_set_error_callback(effsan_pool *pool,
                                    effsan_error_callback callback,
                                    void *user_data);

/* The site-attributed error report (since 1.3). All pointers are valid
 * only during the callback; type handles live as long as the session.
 * Unattributed errors (no registered site) carry EFFSAN_NO_SITE /
 * NULL / 0 in the site fields — the kind/pointer/offset/message
 * fields are always filled, exactly as in effsan_error. */
typedef struct effsan_error_v2 {
  uint32_t kind;            /* an effsan_error_kind value              */
  const void *pointer;      /* the offending pointer                   */
  int64_t offset;           /* byte offset within the allocation       */
  const char *message;      /* rendered report line                    */
  uint32_t site;            /* erring check's site; EFFSAN_NO_SITE     */
  const char *file;         /* source file, or NULL                    */
  uint32_t line;            /* 1-based; 0 = unknown                    */
  uint32_t column;          /* 1-based; 0 = unknown                    */
  const char *function;     /* enclosing function, or NULL             */
  uint32_t check_kind;      /* an effsan_check_kind value              */
  effsan_type static_type;  /* type the program used; may be NULL      */
  effsan_type alloc_type;   /* object's allocation type; may be NULL   */
} effsan_error_v2;

/* Invoked once per emitted report (after dedup caps), from the erring
 * thread. Must not call back into the same session's reporter. */
typedef void (*effsan_error_callback_v2)(const effsan_error_v2 *error,
                                         void *user_data);

/* Installs (or, with NULL, removes) the site-aware session error sink
 * (since 1.3). Independent of the v1 sink: when both are installed,
 * both fire for every emitted report — a 1.2 caller linked against
 * this library keeps its v1 callback behavior unchanged. */
void effsan_set_error_callback_v2(effsan_session *session,
                                  effsan_error_callback_v2 callback,
                                  void *user_data);

/* The pool-central equivalent (since 1.3; see
 * effsan_pool_set_error_callback for the threading contract). */
void effsan_pool_set_error_callback_v2(effsan_pool *pool,
                                       effsan_error_callback_v2 callback,
                                       void *user_data);

/*===--------------------------------------------------------------------===*
 * Service mode (since 1.5)
 *
 * A service is a supervised session pool for long-lived multi-tenant
 * embeddings. On top of the pool it adds:
 *
 *   - a background drain thread: error events are popped from the
 *     ring, attributed to the owning tenant and published centrally
 *     every drain interval — embedders never call a drain function;
 *   - tenants: metered clients bound 1:1 to pool shards, with byte /
 *     error / check budgets enforced at checkout time (an exhausted
 *     budget refuses the checkout and evicts the tenant; its shard is
 *     recycled for the next tenant once all checkouts are returned);
 *   - adaptive degradation: under sustained per-shard pressure the
 *     service walks a shard's policy down FULL -> BOUNDS_ONLY ->
 *     COUNT_ONLY and restores it when the load subsides (hysteresis
 *     in both directions);
 *   - telemetry: service-wide stats, per-tenant stats, and a periodic
 *     JSON snapshot hook.
 *===--------------------------------------------------------------------===*/

typedef struct effsan_service effsan_service;

/* A tenant handle. Handles embed a generation, so a handle kept past
 * close/evict is detected stale rather than aliasing the shard's next
 * occupant. */
typedef uint64_t effsan_tenant;

/* "No tenant": returned when open fails (all shards occupied). */
#define EFFSAN_NO_TENANT (~(uint64_t)0)

typedef struct effsan_service_options {
  uint32_t struct_size; /* = sizeof(effsan_service_options); by _init */
  uint32_t shards;      /* = max tenants; 0 = one per hardware thread */
  uint32_t policy;      /* base effsan_policy for every shard         */
  int log_errors;       /* nonzero: central reporter logs to stream   */
  FILE *log_stream;     /* default stderr                             */
  uint64_t max_reports_per_location; /* central dedup cap; default 1  */
  uint64_t max_total_reports;        /* central total cap; 0 = none   */
  uint64_t error_ring_capacity;      /* ring slots; 0 = default       */
  uint64_t site_cache_entries;       /* per-shard; default 1024       */
  /* Background drain period in microseconds; default 2000. */
  uint64_t drain_interval_usec;
  /* Pool-wide error-event budget enforced by the drain thread: once
   * the cumulative drained event count crosses it the process aborts
   * (the single-session abort_after contract, batched). 0 = never. */
  uint64_t abort_after;
  /* Nonzero (default): enable adaptive per-shard policy degradation. */
  int32_t enable_governor;
  uint32_t reserved_;
  /* Governor tuning; 0 keeps the default for that knob. A shard is
   * "pressured" when any per-tick delta reaches its high mark, and
   * "calm" when every delta is below mark * restore_fraction; between
   * the two the state holds (dead band). degrade_ticks consecutive
   * pressured ticks shed one policy level, restore_ticks consecutive
   * calm ticks win one back. */
  uint64_t check_rate_high;    /* checks per tick; default 2000000    */
  uint64_t alloc_rate_high;    /* allocs per tick; default 200000     */
  double ring_occupancy_high;  /* 0..1; default 0.5                   */
  double restore_fraction;     /* 0..1; default 0.5                   */
  uint32_t degrade_ticks;      /* default 2                           */
  uint32_t restore_ticks;      /* default 4                           */
  /* --- added in ABI 1.6 (older callers' shorter struct_size keeps
   *     the defaults for everything below) --- */
  /* EWMA window (in ticks) smoothing the governor's pressure signals
   * before the thresholds above are evaluated; 0 or 1 = raw per-tick
   * deltas (the pre-1.6 behaviour). */
  uint32_t governor_ewma_ticks;
  uint32_t reserved2_;
  /* --- added in ABI 1.9 (zeroed tail = the defaults below) --- */
  /* Push retries (roughly doubling backoff) before the full-ring
   * policy applies to an overflowed error event; 0 = default (3). */
  uint32_t ring_retry_attempts;
  /* Nonzero: after the retry budget, DROP the event with the loss
   * accounted in ring_drops rather than delivering it through the
   * central reporter's lock (the default, which never loses events). */
  int32_t drop_on_ring_full;
  /* Nonzero: run WITHOUT the self-healing watchdog (default 0: the
   * watchdog samples drain-thread liveness and restarts it on death). */
  int32_t disable_watchdog;
  /* Dead drain-thread restarts before the service latches CRITICAL and
   * escalates once through the snapshot hook; 0 = default (3). */
  uint32_t max_drain_restarts;
  /* Watchdog check period in microseconds; 0 = 4x drain_interval_usec. */
  uint64_t watchdog_interval_usec;
} effsan_service_options;

/* Fills *options with the defaults above. */
void effsan_service_options_init(effsan_service_options *options);

/* Creates a service (pool + drain thread); NULL options means
 * defaults. Returns NULL only on out-of-memory. */
effsan_service *effsan_service_create(const effsan_service_options *options);

/* Stops the drain thread (after a final drain) and destroys the pool.
 * All checkouts must have been released. */
void effsan_service_destroy(effsan_service *service);

uint32_t effsan_service_num_shards(const effsan_service *service);

/* Per-tenant budgets; 0 = unlimited. max_alloc_bytes meters the
 * tenant's LIVE heap footprint; the other two are cumulative since
 * open. Always initialize with effsan_tenant_quota_init(). */
typedef struct effsan_tenant_quota {
  uint32_t struct_size; /* = sizeof(effsan_tenant_quota); by _init    */
  uint32_t reserved_;
  uint64_t max_alloc_bytes;
  uint64_t max_error_events;
  uint64_t max_checks;
} effsan_tenant_quota;

void effsan_tenant_quota_init(effsan_tenant_quota *quota);

/* Opens a tenant on a free shard. `name` (copied; may be NULL) labels
 * the tenant in snapshots; NULL quota means unlimited. Returns
 * EFFSAN_NO_TENANT when every shard is occupied. */
effsan_tenant effsan_service_tenant_open(effsan_service *service,
                                         const char *name,
                                         const effsan_tenant_quota *quota);

/* Cooperative close: refuses new checkouts immediately and recycles
 * the shard once the last outstanding checkout is released (waits for
 * one drain tick, so with none outstanding the shard is recycled on
 * return). Returns 0 for a stale handle, nonzero otherwise. */
int effsan_service_tenant_close(effsan_service *service,
                                effsan_tenant tenant);

/* The quota gate. On success returns the tenant's shard session (owned
 * by the service — do not destroy or reset it) and counts one
 * outstanding checkout; pair every success with
 * effsan_service_release. Returns NULL when the handle is stale, the
 * tenant is evicted, or a budget is exhausted — the budget trip also
 * evicts the tenant. */
effsan_session *effsan_service_checkout(effsan_service *service,
                                        effsan_tenant tenant);

/* Returns one checkout. Returns 0 when the tenant has none
 * outstanding (or the handle is stale), nonzero otherwise. */
int effsan_service_release(effsan_service *service, effsan_tenant tenant);

/* Replaces / reads the tenant's quota. 0 on a stale handle. */
int effsan_service_quota_set(effsan_service *service, effsan_tenant tenant,
                             const effsan_tenant_quota *quota);
int effsan_service_quota_get(effsan_service *service, effsan_tenant tenant,
                             effsan_tenant_quota *out);

typedef enum effsan_tenant_status {
  EFFSAN_TENANT_CLOSED = 0,  /* slot free / handle stale              */
  EFFSAN_TENANT_OPEN = 1,    /* serving checkouts                     */
  EFFSAN_TENANT_EVICTED = 2  /* refusing checkouts; reset pending     */
} effsan_tenant_status;

typedef enum effsan_evict_reason {
  EFFSAN_EVICT_NONE = 0,
  EFFSAN_EVICT_ALLOC_BYTES = 1,
  EFFSAN_EVICT_ERROR_EVENTS = 2,
  EFFSAN_EVICT_CHECKS = 3,
  EFFSAN_EVICT_EXPLICIT = 4
} effsan_evict_reason;

/* Per-tenant accounting. Caller-sized like effsan_heap_stats: set
 * struct_size to sizeof(effsan_tenant_stats) before the call and the
 * library fills exactly the prefix you declared (fields added after
 * your build read as zero). */
typedef struct effsan_tenant_stats {
  uint32_t struct_size;      /* set by the CALLER before the call     */
  uint32_t status;           /* an effsan_tenant_status value         */
  uint32_t shard;            /* the shard the tenant is bound to      */
  uint32_t policy;           /* shard's CURRENT (possibly degraded)
                              * effsan_policy                         */
  uint32_t evict_reason;     /* an effsan_evict_reason value          */
  uint32_t reserved_;
  uint64_t checks;           /* cumulative since open                 */
  uint64_t alloc_bytes;      /* live block bytes on the shard         */
  uint64_t error_events;     /* drainer-attributed error events       */
  uint64_t checkouts_granted;
  uint64_t checkouts_refused;
  uint64_t checkouts_outstanding;
} effsan_tenant_stats;

/* Snapshots one tenant's accounting. Returns 0 for a stale handle
 * (out is untouched), nonzero on success. */
int effsan_service_tenant_stats(effsan_service *service,
                                effsan_tenant tenant,
                                effsan_tenant_stats *out);

/* Service-wide counters. Caller-sized prefix contract, as above. */
typedef struct effsan_service_stats {
  uint32_t struct_size;      /* set by the CALLER before the call     */
  uint32_t reserved_;
  uint64_t tenants_open;     /* occupied slots (open or evicted)      */
  uint64_t tenants_opened_total;
  uint64_t tenants_evicted;  /* quota trips + explicit closes         */
  uint64_t tenants_closed;   /* slots fully recycled                  */
  uint64_t checkouts_granted;
  uint64_t checkouts_refused;
  uint64_t drain_ticks;
  uint64_t drained_events;
  uint64_t ring_overflows;
  uint64_t policy_degrades;
  uint64_t policy_restores;
  uint64_t issues_found;     /* central reporter's distinct issues    */
  uint64_t snapshots_emitted;
  /* --- added in ABI 1.6 --- */
  uint64_t snapshots_skipped; /* dirty-flag skipped emissions         */
  /* --- added in ABI 1.9 --- */
  uint64_t ring_fallbacks;   /* overflowed events delivered via the
                              * locked central fallback (no loss)     */
  uint64_t ring_drops;       /* overflowed events dropped (opt-in
                              * accounted loss; see drop_on_ring_full)*/
  uint64_t drain_restarts;   /* dead drain threads the watchdog
                              * restarted                             */
  uint64_t watchdog_checks;  /* watchdog liveness checks performed    */
  uint32_t health;           /* an effsan_health value                */
  uint32_t reserved2_;
} effsan_service_stats;

void effsan_service_get_stats(effsan_service *service,
                              effsan_service_stats *out);

/* Service health, as surfaced in stats, snapshots and metrics (since
 * 1.9). HEALTHY: full coverage, no failures. DEGRADED: still serving,
 * with reduced coverage or accounted loss — the governor steered an
 * occupied shard below the base policy, error events were dropped, the
 * drain thread was restarted, or it is wedged inside one tick.
 * CRITICAL (latched): the drain-restart budget is exhausted or the
 * abort threshold fired. */
typedef enum effsan_health {
  EFFSAN_HEALTH_HEALTHY = 0,
  EFFSAN_HEALTH_DEGRADED = 1,
  EFFSAN_HEALTH_CRITICAL = 2
} effsan_health;

/* The service's current health (an effsan_health value; since 1.9). */
uint32_t effsan_service_health(effsan_service *service);

/* effsan_service_checkout with a caller-side backoff hint (since 1.9).
 * On refusal *retry_after_usec (if non-NULL) receives the suggested
 * wait in microseconds before retrying: about one drain interval while
 * the handle still names an occupied slot (an eviction's shard reset
 * is in flight, or a raised quota would clear the refusal), 0 when the
 * handle is stale and retrying is pointless. On success the hint is
 * 0. */
effsan_session *
effsan_service_checkout_hint(effsan_service *service, effsan_tenant tenant,
                             uint64_t *retry_after_usec);

/* Forces one full drain tick (drain + quota bookkeeping + governor)
 * and waits for it to complete; returns the number of error events
 * that tick drained. Deterministic alternative to waiting out the
 * drain interval. */
uint64_t effsan_service_tick(effsan_service *service);

/* Replaces / reads the background drain period (microseconds; 0 is
 * clamped to the default). Takes effect from the next wakeup. */
void effsan_service_set_drain_interval(effsan_service *service,
                                       uint64_t micros);
uint64_t effsan_service_drain_interval(effsan_service *service);

/* Invoked from the drain thread with a JSON document describing the
 * service and every occupied tenant (docs/SERVICE.md#telemetry). The
 * string is valid only during the call. The hook must not call back
 * into waiting service functions (tick, tenant_close) — deadlock. */
typedef void (*effsan_snapshot_hook)(const char *json, void *user_data);

/* Installs (or, with NULL, removes) the snapshot hook; it fires every
 * `every_ticks` completed drain ticks (0 = never). */
void effsan_service_set_snapshot_hook(effsan_service *service,
                                      effsan_snapshot_hook hook,
                                      void *user_data,
                                      uint32_t every_ticks);

/* Central error sinks, as effsan_pool_set_error_callback /
 * _v2 — fired by the drain thread (or, on a momentarily full ring, the
 * erring worker). */
void effsan_service_set_error_callback(effsan_service *service,
                                       effsan_error_callback callback,
                                       void *user_data);
void effsan_service_set_error_callback_v2(effsan_service *service,
                                          effsan_error_callback_v2 callback,
                                          void *user_data);

/*===--------------------------------------------------------------------===*
 * Resilience / fault injection (since 1.9)
 *
 * Deterministic, seedable fault injection over the named fault points
 * compiled into the runtime's hot layers (allocator exhaustion paths,
 * magazine refill, quarantine budget, error-ring push, site
 * registration, drain-loop stall, snapshot delivery, governor pass).
 * Disarmed — the shipped default — every point costs one relaxed flag
 * load; a library built with EFFSAN_FAULT_OFF compiles the points out
 * entirely. The registry is process-wide (fault points live in layers
 * with no session context) and replays exactly: the same seed plus the
 * same schedule fires the same sequence. The EFFSAN_FAULTS environment
 * variable feeds the same spec grammar before main() — see
 * docs/RESILIENCE.md for the catalogue and replay workflow.
 *===--------------------------------------------------------------------===*/

/* Nonzero when fault injection is compiled in (no EFFSAN_FAULT_OFF). */
int effsan_fault_compiled_in(void);

/* Arms injection under `seed`: every point resets to off with zeroed
 * counters and a reseeded PRNG stream. Configure points afterwards. */
void effsan_fault_arm(uint64_t seed);

/* Disarms injection; configuration and counters stay readable. */
void effsan_fault_disarm(void);

/* Nonzero while armed. */
int effsan_fault_armed(void);

/* The seed of the current (or last) arming. */
uint64_t effsan_fault_seed(void);

/* Parses and applies a schedule spec — semicolon-separated entries,
 * each `seed=N` or `<point>=<mode>` with mode one of `off | count:N |
 * count:N@S | prob:N | every:N` — arming the registry under the spec's
 * seed (default 1) first. Returns 0 (registry left disarmed) on any
 * malformed entry or unknown point name, nonzero on success. Example:
 * "seed=42;heap_exhausted=prob:64;ring_full=count:3@100". */
int effsan_fault_configure(const char *spec);

/* Number of fault points this library compiles in; points are dense
 * indices [0, n). */
uint32_t effsan_fault_num_points(void);

/* Stable lower_snake name of `point` (NULL if out of range). */
const char *effsan_fault_point_name(uint32_t point);

/* Evaluations of / fires at `point` since the last arm (0 if out of
 * range). Every registered point evaluates on its layer's hot path
 * while armed, so evaluations > 0 proves the point was reached. */
uint64_t effsan_fault_evaluations(uint32_t point);
uint64_t effsan_fault_fires(uint32_t point);

/*===--------------------------------------------------------------------===*/
/* Observability (since 1.6)                                               */
/*                                                                         */
/* Three independently toggleable process-wide facilities, all of which    */
/* cost one relaxed flag load on the hot path when off and nothing at all  */
/* when the library was built with EFFSAN_OBS_OFF:                         */
/*                                                                         */
/*   - trace:   per-thread lock-free event rings recording runtime events  */
/*              (check slow paths, magazine refills/flushes, quarantine    */
/*              batches, steals, shard recycles, drain ticks, governor     */
/*              steps, snapshot emissions), exportable as Chrome           */
/*              trace-event JSON (load it in Perfetto / about:tracing).    */
/*   - metrics: a registry of named counters, gauges and log2-bucketed     */
/*              histograms rendered in Prometheus text exposition format.  */
/*   - profile: per-session hot-site accounting (hits and cache misses    */
/*              per check site, resolved to file:line:column).             */
/*===--------------------------------------------------------------------===*/

#define EFFSAN_OBS_TRACE   (1u << 0)
#define EFFSAN_OBS_METRICS (1u << 1)
#define EFFSAN_OBS_PROFILE (1u << 2)

/* Replaces the process-wide observability flag set (a bitwise OR of the
 * EFFSAN_OBS_* flags above; unknown bits are ignored) and returns the
 * previous set. Takes effect immediately on every thread. Returns 0 and
 * does nothing when the library was built with EFFSAN_OBS_OFF.
 *
 * Note effsan_obs_trace_start below sets EFFSAN_OBS_TRACE itself;
 * enabling the trace flag without a started tracer records nothing. */
uint32_t effsan_obs_enable(uint32_t flags);

/* The currently enabled flag set (0 under EFFSAN_OBS_OFF). */
uint32_t effsan_obs_flags(void);

/* Nonzero when the library was built with observability compiled in
 * (i.e. without EFFSAN_OBS_OFF). */
int effsan_obs_compiled_in(void);

/* Starts a tracing session: discards any events from a previous
 * session, (re)sizes the per-thread rings to `ring_capacity` slots
 * (rounded up to a power of two; 0 = default 16384) and sets
 * EFFSAN_OBS_TRACE. Each thread that subsequently records an event
 * lazily registers its own ring; a full ring drops new events and
 * counts the drop rather than blocking. Returns nonzero on success, 0
 * under EFFSAN_OBS_OFF. */
int effsan_obs_trace_start(uint32_t ring_capacity);

/* Clears EFFSAN_OBS_TRACE. Already-recorded events remain exportable. */
void effsan_obs_trace_stop(void);

/* Receives one chunk of rendered output. `data` is valid only during
 * the call and is NOT NUL-terminated; `len` is its byte length. */
typedef void (*effsan_obs_write_fn)(const char *data, size_t len,
                                    void *user_data);

/* Renders every collected event as one Chrome trace-event JSON
 * document ({"displayTimeUnit":"ms","traceEvents":[...]}) through
 * `write` and returns the number of events exported. Collects all
 * per-thread rings first; safe to call while tracing is active (the
 * export is a consistent prefix). */
uint64_t effsan_obs_trace_export(effsan_obs_write_fn write,
                                 void *user_data);

/* Events dropped so far across all rings in the current tracing
 * session (ring-full drops plus collector-overflow drops). */
uint64_t effsan_obs_trace_dropped(void);

/* Renders the process-global metrics registry (check-latency
 * histograms and anything the embedder registered) in Prometheus text
 * exposition format through `write`. */
void effsan_obs_metrics_render(effsan_obs_write_fn write,
                               void *user_data);

/* Renders a service's metrics registry — refreshed from live service,
 * pool and heap state at the moment of the call — followed by the
 * process-global registry. */
void effsan_service_metrics_render(effsan_service *service,
                                   effsan_obs_write_fn write,
                                   void *user_data);

/* One hot check site, as returned by effsan_obs_hot_sites. The string
 * pointers point into the session's site registry and stay valid for
 * the session's lifetime; file is "" (never NULL) for unresolvable
 * sites (unregistered ids, pseudo-sites). */
typedef struct effsan_obs_site {
  uint32_t site;         /* rebased site id                            */
  uint32_t line;         /* 1-based; 0 = unknown                       */
  uint32_t column;       /* 1-based; 0 = unknown                       */
  uint32_t reserved_;
  uint64_t hits;         /* fast-path type checks, SAMPLED 1-in-16     */
  uint64_t misses;       /* slow-path type checks (exact)              */
  uint64_t error_events; /* error events attributed to the site        */
  const char *file;      /* "" when unresolved                         */
  const char *function;  /* NULL when unknown                          */
} effsan_obs_site;

/* Fills `out` with up to `capacity` of the session's hottest check
 * sites (ordered by hits + misses, descending) observed while
 * EFFSAN_OBS_PROFILE was enabled, and returns the number written.
 * Profiling uses a fixed-size direct-mapped table: two sites hashing
 * to the same slot keep the first claimant (collisions are counted,
 * not chained), so the result is a statistical top-N, not an exact
 * one. Returns 0 under EFFSAN_OBS_OFF or when profiling never ran. */
uint32_t effsan_obs_hot_sites(effsan_session *session,
                              effsan_obs_site *out, uint32_t capacity);

/* Pool-wide merged hot-site ranking (since 1.7): every shard's
 * profiler table summed by site id — a site checked from several
 * shards contributes one entry with pool-total hits and misses —
 * ordered by hits + misses descending, resolved once against the
 * pool-wide site registry, with error_events joined from the central
 * reporter (the pool drains first so queued events are counted). The
 * same statistical caveats as effsan_obs_hot_sites apply per shard.
 * Returns the number of entries written. */
uint32_t effsan_pool_hot_sites(effsan_pool *pool, effsan_obs_site *out,
                               uint32_t capacity);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* EFFECTIVE_API_EFFSAN_H */
