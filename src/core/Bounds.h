//===- core/Bounds.h - Bounds values for dynamic checks ---------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BOUNDS values of the instrumentation schema (Figure 3): a pair of
/// addresses delimiting the memory a pointer may legally access. The
/// "wide" bounds [0, UINTPTR_MAX) are returned for legacy pointers and
/// after reported errors, matching Figure 6 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_BOUNDS_H
#define EFFECTIVE_CORE_BOUNDS_H

#include <cstddef>
#include <cstdint>

namespace effective {

/// An address interval [Lo, Hi). All checked accesses must lie inside.
struct Bounds {
  uintptr_t Lo = 0;
  uintptr_t Hi = 0;

  /// The permissive bounds used for legacy pointers (Figure 6 lines
  /// 11-12) and after a logged error (line 23).
  static constexpr Bounds wide() { return Bounds{0, UINTPTR_MAX}; }

  /// Bounds admitting no access at all.
  static constexpr Bounds empty() { return Bounds{0, 0}; }

  /// Bounds of the object at [\p Base, \p Base + \p Size).
  static Bounds forObject(const void *Base, size_t Size) {
    uintptr_t B = reinterpret_cast<uintptr_t>(Base);
    return Bounds{B, B + Size};
  }

  bool isWide() const { return Lo == 0 && Hi == UINTPTR_MAX; }

  /// True if the \p Size byte access at \p Ptr lies fully inside.
  bool contains(const void *Ptr, size_t Size) const {
    uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
    return P >= Lo && Size <= Hi - P && P <= Hi;
  }

  /// Interval intersection — the paper's bounds_narrow operation.
  Bounds intersect(Bounds Other) const {
    Bounds R{Lo > Other.Lo ? Lo : Other.Lo, Hi < Other.Hi ? Hi : Other.Hi};
    if (R.Lo > R.Hi)
      return Bounds{R.Lo, R.Lo}; // Disjoint: empty at Lo.
    return R;
  }

  bool operator==(const Bounds &) const = default;
};

} // namespace effective

#endif // EFFECTIVE_CORE_BOUNDS_H
