//===- core/Runtime.h - The EffectiveSan runtime system ---------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic type check runtime of Section 5: typed allocation
/// (type_malloc / type_free, Figure 6 lines 1-7), the type_check
/// function (Figure 6 lines 9-24), bounds_get (the EffectiveSan-bounds
/// variant), and the inline bounds_check / bounds_narrow operations of
/// the Figure 3 instrumentation schema.
///
/// Paper-name mapping:
///   type_malloc    -> Runtime::allocate
///   type_free      -> Runtime::deallocate
///   type_check     -> Runtime::typeCheck
///   bounds_get     -> Runtime::boundsGet
///   bounds_check   -> Runtime::boundsCheck
///   bounds_narrow  -> Runtime::boundsNarrow
///
/// A C-style facade with the paper's names is provided by
/// core/Effective.h.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_RUNTIME_H
#define EFFECTIVE_CORE_RUNTIME_H

#include "core/Bounds.h"
#include "core/ErrorReporter.h"
#include "core/Layout.h"
#include "core/Meta.h"
#include "core/SiteCache.h"
#include "core/SiteTable.h"
#include "core/TypeContext.h"
#include "lowfat/GlobalPool.h"
#include "lowfat/LowFatHeap.h"
#include "lowfat/StackPool.h"
#include "obs/SiteProfiler.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

#include <atomic>
#include <memory>

namespace effective {

/// Dynamic check counters (the paper's Figure 7 "#Type" and "#Bounds"
/// columns, plus the Section 6.1 legacy-pointer ratio). Relaxed atomics;
/// negligible overhead on the benchmark machines this targets.
struct CheckCounters {
  std::atomic<uint64_t> TypeChecks{0};
  std::atomic<uint64_t> LegacyTypeChecks{0};
  std::atomic<uint64_t> BoundsChecks{0};
  std::atomic<uint64_t> BoundsNarrows{0};
  std::atomic<uint64_t> BoundsGets{0};
  /// type_checks resolved by the site-indexed inline cache (fast path)
  /// vs. the slow path (which includes checks on untyped/freed blocks
  /// and type errors — anything past the META fetch that missed the
  /// cache). Legacy (non-low-fat) checks hit neither bucket, so
  /// Hits + Misses + LegacyTypeChecks == TypeChecks.
  std::atomic<uint64_t> TypeCheckCacheHits{0};
  std::atomic<uint64_t> TypeCheckCacheMisses{0};

  /// Statistical increment: a relaxed non-RMW load+store instead of an
  /// atomic RMW. bounds_check sits on every memory access, and a lock-
  /// prefixed xadd there dominates the whole check (Figure 8 timings);
  /// a plain add keeps it at a couple of cycles. Under concurrent
  /// mutators an update can be lost, which only skews the statistics
  /// by a negligible amount (error *detection* never depends on the
  /// counters).
  static EFFSAN_ALWAYS_INLINE void bump(std::atomic<uint64_t> &C) {
    C.store(C.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  /// Plain-value snapshot.
  struct Snapshot {
    uint64_t TypeChecks = 0;
    uint64_t LegacyTypeChecks = 0;
    uint64_t BoundsChecks = 0;
    uint64_t BoundsNarrows = 0;
    uint64_t BoundsGets = 0;
    uint64_t TypeCheckCacheHits = 0;
    uint64_t TypeCheckCacheMisses = 0;

    /// Field-wise accumulation — how the session pool and the
    /// multi-threaded harness merge per-shard counters.
    Snapshot &operator+=(const Snapshot &O) {
      TypeChecks += O.TypeChecks;
      LegacyTypeChecks += O.LegacyTypeChecks;
      BoundsChecks += O.BoundsChecks;
      BoundsNarrows += O.BoundsNarrows;
      BoundsGets += O.BoundsGets;
      TypeCheckCacheHits += O.TypeCheckCacheHits;
      TypeCheckCacheMisses += O.TypeCheckCacheMisses;
      return *this;
    }

    friend Snapshot operator+(Snapshot A, const Snapshot &B) {
      A += B;
      return A;
    }
  };

  Snapshot snapshot() const {
    return Snapshot{TypeChecks.load(std::memory_order_relaxed),
                    LegacyTypeChecks.load(std::memory_order_relaxed),
                    BoundsChecks.load(std::memory_order_relaxed),
                    BoundsNarrows.load(std::memory_order_relaxed),
                    BoundsGets.load(std::memory_order_relaxed),
                    TypeCheckCacheHits.load(std::memory_order_relaxed),
                    TypeCheckCacheMisses.load(std::memory_order_relaxed)};
  }

  void reset() {
    TypeChecks.store(0, std::memory_order_relaxed);
    LegacyTypeChecks.store(0, std::memory_order_relaxed);
    BoundsChecks.store(0, std::memory_order_relaxed);
    BoundsNarrows.store(0, std::memory_order_relaxed);
    BoundsGets.store(0, std::memory_order_relaxed);
    TypeCheckCacheHits.store(0, std::memory_order_relaxed);
    TypeCheckCacheMisses.store(0, std::memory_order_relaxed);
  }
};

/// Construction options for a Runtime.
struct RuntimeOptions {
  ReporterOptions Reporter;
  lowfat::HeapOptions Heap;
  /// Entries in the site-indexed type-check inline cache (rounded up to
  /// a power of two; 0 disables the fast path entirely — every check
  /// takes the slow meta + layout-probe path).
  size_t SiteCacheEntries = 1024;
  /// When non-null, the runtime resolves error sites against this
  /// externally owned registry instead of a private one — how
  /// concurrent::SessionPool gives all shards one pool-wide site
  /// space, so the central drainer attributes any shard's errors. The
  /// registry must outlive the runtime.
  SiteTableRegistry *SharedSites = nullptr;
  /// Byte budget of each thread's stack use-after-return quarantine:
  /// escaping (address-taken) stack slots are held back from reuse up
  /// to this many bytes per pool, so dangling frame pointers keep
  /// faulting on their STACK-FREE META. 0 disables the reuse delay.
  size_t StackQuarantineBytes = 64 * 1024;
};

/// Typed stack/global object counters (the ABI's effsan_object_stats
/// surface). Relaxed atomics, aggregated across every thread's stack
/// pool by bumping at the Runtime entry points.
struct ObjectCounters {
  /// Typed stack slots ever allocated (stackAllocate calls).
  std::atomic<uint64_t> StackAllocs{0};
  /// Frames released (stackRelease calls).
  std::atomic<uint64_t> StackFrames{0};
  /// Escaping slots retired through a use-after-return quarantine.
  std::atomic<uint64_t> StackRetired{0};

  void reset() {
    StackAllocs.store(0, std::memory_order_relaxed);
    StackFrames.store(0, std::memory_order_relaxed);
    StackRetired.store(0, std::memory_order_relaxed);
  }
};

/// One EffectiveSan runtime instance: a low-fat heap plus type meta data
/// handling. Thread-safe (checks are pure reads of immutable meta data;
/// allocation and reporting are internally locked). Tests and benchmark
/// harnesses create private instances; Runtime::global() serves the
/// default process-wide instance.
class Runtime {
public:
  explicit Runtime(TypeContext &Ctx,
                   const RuntimeOptions &Options = RuntimeOptions());

  /// A runtime over shard \p Shard of an externally owned (shared,
  /// usually sharded) low-fat heap — the per-worker building block of
  /// concurrent::SessionPool. All allocations (heap, stack, globals)
  /// come from that shard's sub-arenas, while base(p)/size(p) remain
  /// valid for pointers allocated by sibling shards of the same heap.
  /// Options.Heap is ignored; the heap must outlive the runtime.
  Runtime(TypeContext &Ctx, lowfat::LowFatHeap &SharedHeap, unsigned Shard,
          const RuntimeOptions &Options = RuntimeOptions());

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  TypeContext &typeContext() { return Ctx; }
  lowfat::LowFatHeap &heap() { return Heap; }
  /// The heap shard this runtime allocates from (0 for private heaps).
  unsigned heapShard() const { return Shard; }
  ErrorReporter &reporter() { return Reporter; }
  CheckCounters &counters() { return Counters; }
  ObjectCounters &objectCounters() { return ObjCounters; }
  const ObjectCounters &objectCounters() const { return ObjCounters; }
  /// The global-object registration pool (module loaders and the ABI's
  /// effsan_globals_register; reflection for tests).
  lowfat::GlobalPool &globals() { return Globals; }
  const lowfat::GlobalPool &globals() const { return Globals; }

  /// \name Typed allocation (Figure 6 lines 1-7).
  /// @{

  /// type_malloc: allocates \p Size bytes bound to dynamic type \p Type
  /// (null = untyped, checked with wide bounds). The dynamic type of the
  /// object is the complete Type[Size / sizeof(Type)].
  void *allocate(size_t Size, const TypeInfo *Type);

  /// type_calloc: zero-initialized array allocation.
  void *allocateZeroed(size_t Count, size_t Size, const TypeInfo *Type);

  /// type_realloc: grows/shrinks preserving contents and rebinding the
  /// dynamic type. When \p Ptr lives on a sibling shard of a shared
  /// heap (a cross-shard realloc through a pooled session), the fresh
  /// block is carved from the *owning* shard's slice, not this
  /// runtime's — shard affinity of a block survives realloc, so a
  /// tenant's footprint stays accountable to its own shard and a later
  /// resetShard() of this runtime cannot pull the rug from under a
  /// sibling's object.
  void *reallocate(void *Ptr, size_t NewSize, const TypeInfo *Type);

  /// type_free: rebinds the object to the FREE type and returns the
  /// block to the allocator; detects double free.
  void deallocate(void *Ptr);
  /// @}

  /// \name Typed stack and global allocation.
  /// Stand-ins for the instrumented low-fat stack/global allocators
  /// ([7,8]); see lowfat/StackPool.h for the simulation notes.
  /// @{

  /// Allocates one typed stack slot with a full META header.
  /// \p Escapes marks an address-taken/escaping slot (instrumentation's
  /// escape analysis): its release is delayed through the thread's
  /// use-after-return quarantine so dangling pointers into the popped
  /// frame fault as stack use-after-return.
  void *stackAllocate(size_t Size, const TypeInfo *Type,
                      bool Escapes = false);
  size_t stackMark();
  /// Rebinds all stack objects allocated after \p Mark to the
  /// STACK-FREE type and retires them (function epilogue): escaping
  /// slots park in the quarantine, the rest free immediately.
  void stackRelease(size_t Mark);
  void *globalAllocate(size_t Size, const TypeInfo *Type,
                       std::string_view Name);
  /// @}

  /// \name Dynamic checks.
  /// @{

  /// The paper's type_check (Figure 6 lines 9-24): verifies that \p Ptr
  /// addresses a (sub-)object of incomplete static type \p StaticType[]
  /// and returns that sub-object's bounds (narrowed to the allocation).
  /// On mismatch an error is reported and wide bounds are returned.
  ///
  /// \p Site is the check's call-site identity (a dense per-module id
  /// from the instrumentation pass, or siteForType() for API callers):
  /// the fast path probes the session's inline cache at that slot and,
  /// when the (allocation type, static type, normalized offset) key
  /// matches, rebuilds the bounds from the cached layout resolution
  /// without touching the layout hash table. Misses fall into the
  /// EFFSAN_NOINLINE slow path, which performs the full Figure 6 probe
  /// and refills the cache. Results are bit-identical either way.
  EFFSAN_ALWAYS_INLINE Bounds typeCheck(const void *Ptr,
                                        const TypeInfo *StaticType,
                                        SiteId Site) {
    // The bump is the usual non-RMW relaxed idiom, open-coded so the
    // pre-increment count doubles as the latency sampler's decimator:
    // with metrics armed, every 1024th check diverts through the timed
    // (noinline) wrapper that feeds the latency histograms. The
    // decimator tests BEFORE the flag — the mask test is on a value
    // already in a register and is false 1023 times in 1024 whether or
    // not metrics are armed, so arming changes the executed
    // instruction stream only on the sampled checks (the flag load
    // moves off the common path entirely). With observability compiled
    // out the whole test folds to nothing.
    uint64_t NChecks = Counters.TypeChecks.load(std::memory_order_relaxed);
    Counters.TypeChecks.store(NChecks + 1, std::memory_order_relaxed);
    if (EFFSAN_UNLIKELY((NChecks & obs::CheckSampleMask) == 0 &&
                        obs::metricsActive()))
      return typeCheckTimed(Ptr, StaticType, Site);
    return typeCheckBody(Ptr, StaticType, Site);
  }

  /// typeCheck minus the TypeChecks bump and the sampling decimator:
  /// the inline-cache probe and the slow-path dispatch. Private in
  /// spirit; public so the timed wrapper's definition stays out of
  /// line without friend gymnastics.
  EFFSAN_ALWAYS_INLINE Bounds typeCheckBody(const void *Ptr,
                                            const TypeInfo *StaticType,
                                            SiteId Site) {
    void *Base = Heap.allocationBase(Ptr);
    if (EFFSAN_UNLIKELY(!Base)) {
      CheckCounters::bump(Counters.LegacyTypeChecks);
      return Bounds::wide();
    }
    const auto *Meta = static_cast<const MetaHeader *>(Base);
    const TypeInfo *Alloc = Meta->Type;
    if (EFFSAN_LIKELY(Cache.enabled())) {
      // 2-way set-associative probe: a polymorphic site (two types or
      // two offset resolutions through one check) keeps both
      // resolutions resident; the second way costs one extra key
      // compare only when the first rejects.
      SiteCacheEntry *Set = Cache.setFor(Site);
      for (unsigned W = 0; W < SiteCache::Ways; ++W) {
        SiteCacheEntry &E = Set[W];
        uint32_t V1 = E.Version.load(std::memory_order_acquire);
        // All key/payload loads are acquire so the final version
        // re-load below cannot be reordered above any of them
        // (fence-free seqlock reader).
        if (EFFSAN_LIKELY(
                !(V1 & 1) &&
                E.AllocType.load(std::memory_order_acquire) == Alloc &&
                E.StaticType.load(std::memory_order_acquire) ==
                    StaticType &&
                Alloc != nullptr)) {
          uintptr_t ObjBase = reinterpret_cast<uintptr_t>(Meta + 1);
          uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
          uint64_t AllocSize = Meta->Size;
          if (EFFSAN_LIKELY(P >= ObjBase && P - ObjBase <= AllocSize)) {
            // Fence-free seqlock read: the payload loads are acquire,
            // so the trailing version re-load cannot be hoisted above
            // them (and GCC's TSan, which rejects
            // atomic_thread_fence, stays happy). Acquire loads cost
            // nothing on x86/ARM64 loads.
            uint64_t NK = E.NormOffset.load(std::memory_order_acquire);
            uint64_t SzT = E.SizeofT.load(std::memory_order_acquire);
            uint64_t Fam = E.FamSize.load(std::memory_order_acquire);
            int64_t RelLo = E.RelLo.load(std::memory_order_acquire);
            int64_t RelHi = E.RelHi.load(std::memory_order_acquire);
            if (EFFSAN_LIKELY(
                    E.Version.load(std::memory_order_relaxed) == V1 &&
                    (NK == AnyNormOffset ||
                     LayoutTable::normalizeOffsetRaw(P - ObjBase,
                                                     AllocSize, SzT,
                                                     Fam) == NK))) {
              // Open-coded bump so the hit count doubles as the
              // profiler's decimator (see ProfileSampleMask). The
              // mask tests before the flag for the same reason as the
              // latency sampler above: 15 hits in 16 skip both the
              // flag load and the profiler whether or not profiling
              // is armed.
              uint64_t NHits = Counters.TypeCheckCacheHits.load(
                  std::memory_order_relaxed);
              Counters.TypeCheckCacheHits.store(
                  NHits + 1, std::memory_order_relaxed);
              if (EFFSAN_UNLIKELY(
                      (NHits & obs::ProfileSampleMask) == 0 &&
                      obs::profileActive()))
                Prof.noteHit(Site);
              Bounds AllocBounds{ObjBase, ObjBase + AllocSize};
              return relativeBoundsToAbsolute(RelLo, RelHi, P,
                                              AllocBounds);
            }
          }
        }
      }
    }
    return typeCheckSlow(Ptr, StaticType, Site, Meta);
  }

  /// type_check without an explicit site: probes the inline cache at
  /// the static type's pseudo-site. This is the path CheckedPtr and the
  /// session/C APIs take.
  Bounds typeCheck(const void *Ptr, const TypeInfo *StaticType) {
    return typeCheck(Ptr, StaticType, siteForType(StaticType));
  }

  /// The reference implementation: the full meta + layout-probe walk,
  /// never reading or filling the inline cache. Used by the
  /// differential tests and the cached-vs-uncached micro benchmark;
  /// counters advance as for a normal check minus the hit/miss pair.
  Bounds typeCheckUncached(const void *Ptr, const TypeInfo *StaticType);

  /// The EffectiveSan-bounds variant's bounds_get: returns the
  /// allocation bounds without verifying the type (Section 6.2).
  /// \p Site attributes any use-after-free it detects (the
  /// instrumentation-assigned id for interpreted checks, NoSite for
  /// unsited API paths).
  Bounds boundsGet(const void *Ptr, SiteId Site = NoSite);

  /// The paper's bounds_check (Figure 3 rule (g)): verifies the \p Size
  /// byte access at \p Ptr lies within \p B; reports otherwise. \p Site
  /// is the check's identity — it rides the register-passed arguments
  /// for free and is only touched on the failing (noinline) path, so
  /// attribution costs the hot path nothing.
  EFFSAN_ALWAYS_INLINE void boundsCheck(const void *Ptr, size_t Size,
                                        Bounds B, SiteId Site = NoSite) {
    CheckCounters::bump(Counters.BoundsChecks);
    if (EFFSAN_UNLIKELY(!B.contains(Ptr, Size)))
      boundsCheckFail(Ptr, Size, B, Site);
  }

  /// The paper's bounds_narrow (Figure 3 rule (e)): narrows \p B to the
  /// field at [\p Field, \p Field + \p Size).
  EFFSAN_ALWAYS_INLINE Bounds boundsNarrow(Bounds B, const void *Field,
                                           size_t Size) {
    CheckCounters::bump(Counters.BoundsNarrows);
    return B.intersect(Bounds::forObject(Field, Size));
  }
  /// @}

  /// \name Meta data introspection.
  /// @{

  /// The META header of the allocation containing \p Ptr; null for
  /// legacy pointers.
  const MetaHeader *metaOf(const void *Ptr) const;

  /// The dynamic (allocation) type of \p Ptr's object; null if unknown.
  const TypeInfo *dynamicTypeOf(const void *Ptr) const;

  /// The allocation bounds of \p Ptr's object; wide for legacy.
  Bounds allocationBounds(const void *Ptr) const;
  /// @}

  /// Recycles the runtime for a fresh tenant: rewinds its heap shard
  /// (for a private heap, the whole arena), clears counters, reported
  /// issues and the global registry. Every pointer the runtime ever
  /// served becomes invalid and its addresses will be reused.
  ///
  /// \pre No live pointers are dereferenced afterwards, no stack frames
  /// (stackMark/stackRelease) are outstanding on any thread, and nothing
  /// uses the runtime concurrently. Legacy (oversized) blocks are not
  /// recycled.
  void reset();

  /// The process-wide runtime over TypeContext::global().
  static Runtime &global();

  /// The session's type-check inline cache (tests and statistics).
  SiteCache &siteCache() { return Cache; }

  /// The session's hot check-site profiler (counts only while
  /// obs::ProfileFlag is set; see obs/SiteProfiler.h).
  obs::SiteProfiler &profiler() { return Prof; }
  const obs::SiteProfiler &profiler() const { return Prof; }

  /// The registry error sites are attributed against (private by
  /// default, pool-shared when RuntimeOptions::SharedSites was set).
  /// Module loaders register their SiteTable here and rebase the
  /// instruction sites by the returned base id.
  SiteTableRegistry &siteTables() { return Sites; }

private:
  EFFSAN_NOINLINE void boundsCheckFail(const void *Ptr, size_t Size,
                                       Bounds B, SiteId Site);
  /// The Figure 6 slow path: full layout probe (with the coercion
  /// fallbacks), error reporting, and cache refill. \p Meta is the
  /// non-null META header typeCheck already resolved.
  EFFSAN_NOINLINE Bounds typeCheckSlow(const void *Ptr,
                                       const TypeInfo *StaticType,
                                       SiteId Site, const MetaHeader *Meta);
  /// The latency sampler's landing pad: runs typeCheckBody under an
  /// obs::now() timer and observes the fast- or slow-path histogram
  /// (classified by whether the check left the inline-cache fast
  /// path). Noinline so the sampling machinery never bloats the
  /// inlined check.
  EFFSAN_NOINLINE Bounds typeCheckTimed(const void *Ptr,
                                        const TypeInfo *StaticType,
                                        SiteId Site);
  /// Shared core of typeCheckSlow/typeCheckUncached; publishes the
  /// successful layout resolution into \p Fill's cache set (when
  /// non-null, the first way of the site's set); attributes any error
  /// it reports to \p Site.
  Bounds typeCheckImpl(const void *Ptr, const TypeInfo *StaticType,
                       const MetaHeader *Meta, SiteCacheEntry *Fill,
                       SiteId Site);
  lowfat::StackPool &stackPool();

  /// allocate() targeting an explicit heap shard (realloc's owning-
  /// shard affinity; everything else allocates on this runtime's own
  /// Shard).
  void *allocateOn(unsigned HeapShard, size_t Size, const TypeInfo *Type);

  TypeContext &Ctx;
  /// Null when the runtime borrows a shared heap (the shard ctor).
  std::unique_ptr<lowfat::LowFatHeap> OwnedHeap;
  lowfat::LowFatHeap &Heap;
  unsigned Shard;
  /// Process-unique instance stamp. The per-thread stack pools are
  /// cached by Runtime address; the stamp detects a new runtime reusing
  /// a dead one's address so no thread ever resurrects a stale pool
  /// (whose heap reference would dangle).
  uint64_t Epoch;
  lowfat::GlobalPool Globals;
  ErrorReporter Reporter;
  CheckCounters Counters;
  ObjectCounters ObjCounters;
  /// Per-thread stack pools are created with this quarantine budget.
  size_t StackQuarantineBytes;
  /// Cached (void *) type for the pointer-coercion fallback probe.
  const TypeInfo *VoidPtrType;
  /// The site-indexed type-check inline cache (see core/SiteCache.h).
  SiteCache Cache;
  /// Hot check-site hit/miss counters (observability layer; zero-size
  /// and never touched when EFFSAN_OBS_OFF).
  obs::SiteProfiler Prof;
  /// Site attribution: private registry unless the options injected a
  /// shared (pool-wide) one. Survives reset() — attribution metadata
  /// is immutable and names no heap addresses.
  std::unique_ptr<SiteTableRegistry> OwnedSites; ///< Null when shared.
  SiteTableRegistry &Sites;
};

} // namespace effective

#endif // EFFECTIVE_CORE_RUNTIME_H
