//===- core/Runtime.h - The EffectiveSan runtime system ---------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic type check runtime of Section 5: typed allocation
/// (type_malloc / type_free, Figure 6 lines 1-7), the type_check
/// function (Figure 6 lines 9-24), bounds_get (the EffectiveSan-bounds
/// variant), and the inline bounds_check / bounds_narrow operations of
/// the Figure 3 instrumentation schema.
///
/// Paper-name mapping:
///   type_malloc    -> Runtime::allocate
///   type_free      -> Runtime::deallocate
///   type_check     -> Runtime::typeCheck
///   bounds_get     -> Runtime::boundsGet
///   bounds_check   -> Runtime::boundsCheck
///   bounds_narrow  -> Runtime::boundsNarrow
///
/// A C-style facade with the paper's names is provided by
/// core/Effective.h.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_RUNTIME_H
#define EFFECTIVE_CORE_RUNTIME_H

#include "core/Bounds.h"
#include "core/ErrorReporter.h"
#include "core/Meta.h"
#include "core/TypeContext.h"
#include "lowfat/GlobalPool.h"
#include "lowfat/LowFatHeap.h"
#include "lowfat/StackPool.h"
#include "support/Compiler.h"

#include <atomic>
#include <memory>

namespace effective {

/// Dynamic check counters (the paper's Figure 7 "#Type" and "#Bounds"
/// columns, plus the Section 6.1 legacy-pointer ratio). Relaxed atomics;
/// negligible overhead on the benchmark machines this targets.
struct CheckCounters {
  std::atomic<uint64_t> TypeChecks{0};
  std::atomic<uint64_t> LegacyTypeChecks{0};
  std::atomic<uint64_t> BoundsChecks{0};
  std::atomic<uint64_t> BoundsNarrows{0};
  std::atomic<uint64_t> BoundsGets{0};

  /// Statistical increment: a relaxed non-RMW load+store instead of an
  /// atomic RMW. bounds_check sits on every memory access, and a lock-
  /// prefixed xadd there dominates the whole check (Figure 8 timings);
  /// a plain add keeps it at a couple of cycles. Under concurrent
  /// mutators an update can be lost, which only skews the statistics
  /// by a negligible amount (error *detection* never depends on the
  /// counters).
  static EFFSAN_ALWAYS_INLINE void bump(std::atomic<uint64_t> &C) {
    C.store(C.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  /// Plain-value snapshot.
  struct Snapshot {
    uint64_t TypeChecks = 0;
    uint64_t LegacyTypeChecks = 0;
    uint64_t BoundsChecks = 0;
    uint64_t BoundsNarrows = 0;
    uint64_t BoundsGets = 0;

    /// Field-wise accumulation — how the session pool and the
    /// multi-threaded harness merge per-shard counters.
    Snapshot &operator+=(const Snapshot &O) {
      TypeChecks += O.TypeChecks;
      LegacyTypeChecks += O.LegacyTypeChecks;
      BoundsChecks += O.BoundsChecks;
      BoundsNarrows += O.BoundsNarrows;
      BoundsGets += O.BoundsGets;
      return *this;
    }

    friend Snapshot operator+(Snapshot A, const Snapshot &B) {
      A += B;
      return A;
    }
  };

  Snapshot snapshot() const {
    return Snapshot{TypeChecks.load(std::memory_order_relaxed),
                    LegacyTypeChecks.load(std::memory_order_relaxed),
                    BoundsChecks.load(std::memory_order_relaxed),
                    BoundsNarrows.load(std::memory_order_relaxed),
                    BoundsGets.load(std::memory_order_relaxed)};
  }

  void reset() {
    TypeChecks.store(0, std::memory_order_relaxed);
    LegacyTypeChecks.store(0, std::memory_order_relaxed);
    BoundsChecks.store(0, std::memory_order_relaxed);
    BoundsNarrows.store(0, std::memory_order_relaxed);
    BoundsGets.store(0, std::memory_order_relaxed);
  }
};

/// Construction options for a Runtime.
struct RuntimeOptions {
  ReporterOptions Reporter;
  lowfat::HeapOptions Heap;
};

/// One EffectiveSan runtime instance: a low-fat heap plus type meta data
/// handling. Thread-safe (checks are pure reads of immutable meta data;
/// allocation and reporting are internally locked). Tests and benchmark
/// harnesses create private instances; Runtime::global() serves the
/// default process-wide instance.
class Runtime {
public:
  explicit Runtime(TypeContext &Ctx,
                   const RuntimeOptions &Options = RuntimeOptions());

  /// A runtime over shard \p Shard of an externally owned (shared,
  /// usually sharded) low-fat heap — the per-worker building block of
  /// concurrent::SessionPool. All allocations (heap, stack, globals)
  /// come from that shard's sub-arenas, while base(p)/size(p) remain
  /// valid for pointers allocated by sibling shards of the same heap.
  /// Options.Heap is ignored; the heap must outlive the runtime.
  Runtime(TypeContext &Ctx, lowfat::LowFatHeap &SharedHeap, unsigned Shard,
          const RuntimeOptions &Options = RuntimeOptions());

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  TypeContext &typeContext() { return Ctx; }
  lowfat::LowFatHeap &heap() { return Heap; }
  /// The heap shard this runtime allocates from (0 for private heaps).
  unsigned heapShard() const { return Shard; }
  ErrorReporter &reporter() { return Reporter; }
  CheckCounters &counters() { return Counters; }

  /// \name Typed allocation (Figure 6 lines 1-7).
  /// @{

  /// type_malloc: allocates \p Size bytes bound to dynamic type \p Type
  /// (null = untyped, checked with wide bounds). The dynamic type of the
  /// object is the complete Type[Size / sizeof(Type)].
  void *allocate(size_t Size, const TypeInfo *Type);

  /// type_calloc: zero-initialized array allocation.
  void *allocateZeroed(size_t Count, size_t Size, const TypeInfo *Type);

  /// type_realloc: grows/shrinks preserving contents and rebinding the
  /// dynamic type.
  void *reallocate(void *Ptr, size_t NewSize, const TypeInfo *Type);

  /// type_free: rebinds the object to the FREE type and returns the
  /// block to the allocator; detects double free.
  void deallocate(void *Ptr);
  /// @}

  /// \name Typed stack and global allocation.
  /// Stand-ins for the instrumented low-fat stack/global allocators
  /// ([7,8]); see lowfat/StackPool.h for the simulation notes.
  /// @{
  void *stackAllocate(size_t Size, const TypeInfo *Type);
  size_t stackMark();
  /// Rebinds all stack objects allocated after \p Mark to FREE and
  /// releases them (function epilogue).
  void stackRelease(size_t Mark);
  void *globalAllocate(size_t Size, const TypeInfo *Type,
                       std::string_view Name);
  /// @}

  /// \name Dynamic checks.
  /// @{

  /// The paper's type_check (Figure 6 lines 9-24): verifies that \p Ptr
  /// addresses a (sub-)object of incomplete static type \p StaticType[]
  /// and returns that sub-object's bounds (narrowed to the allocation).
  /// On mismatch an error is reported and wide bounds are returned.
  Bounds typeCheck(const void *Ptr, const TypeInfo *StaticType);

  /// The EffectiveSan-bounds variant's bounds_get: returns the
  /// allocation bounds without verifying the type (Section 6.2).
  Bounds boundsGet(const void *Ptr);

  /// The paper's bounds_check (Figure 3 rule (g)): verifies the \p Size
  /// byte access at \p Ptr lies within \p B; reports otherwise.
  EFFSAN_ALWAYS_INLINE void boundsCheck(const void *Ptr, size_t Size,
                                        Bounds B) {
    CheckCounters::bump(Counters.BoundsChecks);
    if (EFFSAN_UNLIKELY(!B.contains(Ptr, Size)))
      boundsCheckFail(Ptr, Size, B);
  }

  /// The paper's bounds_narrow (Figure 3 rule (e)): narrows \p B to the
  /// field at [\p Field, \p Field + \p Size).
  EFFSAN_ALWAYS_INLINE Bounds boundsNarrow(Bounds B, const void *Field,
                                           size_t Size) {
    CheckCounters::bump(Counters.BoundsNarrows);
    return B.intersect(Bounds::forObject(Field, Size));
  }
  /// @}

  /// \name Meta data introspection.
  /// @{

  /// The META header of the allocation containing \p Ptr; null for
  /// legacy pointers.
  const MetaHeader *metaOf(const void *Ptr) const;

  /// The dynamic (allocation) type of \p Ptr's object; null if unknown.
  const TypeInfo *dynamicTypeOf(const void *Ptr) const;

  /// The allocation bounds of \p Ptr's object; wide for legacy.
  Bounds allocationBounds(const void *Ptr) const;
  /// @}

  /// Recycles the runtime for a fresh tenant: rewinds its heap shard
  /// (for a private heap, the whole arena), clears counters, reported
  /// issues and the global registry. Every pointer the runtime ever
  /// served becomes invalid and its addresses will be reused.
  ///
  /// \pre No live pointers are dereferenced afterwards, no stack frames
  /// (stackMark/stackRelease) are outstanding on any thread, and nothing
  /// uses the runtime concurrently. Legacy (oversized) blocks are not
  /// recycled.
  void reset();

  /// The process-wide runtime over TypeContext::global().
  static Runtime &global();

private:
  EFFSAN_NOINLINE void boundsCheckFail(const void *Ptr, size_t Size,
                                       Bounds B);
  lowfat::StackPool &stackPool();

  TypeContext &Ctx;
  /// Null when the runtime borrows a shared heap (the shard ctor).
  std::unique_ptr<lowfat::LowFatHeap> OwnedHeap;
  lowfat::LowFatHeap &Heap;
  unsigned Shard;
  /// Process-unique instance stamp. The per-thread stack pools are
  /// cached by Runtime address; the stamp detects a new runtime reusing
  /// a dead one's address so no thread ever resurrects a stale pool
  /// (whose heap reference would dangle).
  uint64_t Epoch;
  lowfat::GlobalPool Globals;
  ErrorReporter Reporter;
  CheckCounters Counters;
  /// Cached (void *) type for the pointer-coercion fallback probe.
  const TypeInfo *VoidPtrType;
};

} // namespace effective

#endif // EFFECTIVE_CORE_RUNTIME_H
