//===- core/TypeContext.cpp - Type interning context ----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/TypeContext.h"

#include "core/Layout.h"
#include "support/Compiler.h"
#include "support/Hashing.h"

#include <cassert>

using namespace effective;

std::string_view effective::primitiveKindName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Char:
    return "char";
  case TypeKind::SChar:
    return "signed char";
  case TypeKind::UChar:
    return "unsigned char";
  case TypeKind::Short:
    return "short";
  case TypeKind::UShort:
    return "unsigned short";
  case TypeKind::Int:
    return "int";
  case TypeKind::UInt:
    return "unsigned int";
  case TypeKind::Long:
    return "long";
  case TypeKind::ULong:
    return "unsigned long";
  case TypeKind::LongLong:
    return "long long";
  case TypeKind::ULongLong:
    return "unsigned long long";
  case TypeKind::Float:
    return "float";
  case TypeKind::Double:
    return "double";
  case TypeKind::LongDouble:
    return "long double";
  case TypeKind::Free:
    return "<free>";
  case TypeKind::StackFree:
    return "<stack-free>";
  case TypeKind::AnyPointer:
    return "<any-pointer>";
  default:
    EFFSAN_UNREACHABLE("not a primitive type kind");
  }
}

const TypeInfo *ArrayType::scalarElement() const {
  const TypeInfo *T = Element;
  while (const auto *A = dyn_cast<ArrayType>(T))
    T = A->element();
  return T;
}

std::string TypeInfo::str() const {
  switch (Kind) {
  case TypeKind::Pointer:
    return cast<PointerType>(this)->pointee()->str() + " *";
  case TypeKind::Array: {
    const auto *A = cast<ArrayType>(this);
    return A->element()->str() + "[" + std::to_string(A->count()) + "]";
  }
  case TypeKind::Function: {
    const auto *F = cast<FunctionType>(this);
    if (F->isGeneric())
      return "<generic function>";
    std::string S = F->returnType()->str() + " (";
    bool First = true;
    for (const TypeInfo *P : F->params()) {
      if (!First)
        S += ", ";
      S += P->str();
      First = false;
    }
    return S + ")";
  }
  case TypeKind::Struct:
  case TypeKind::Union: {
    std::string S = Kind == TypeKind::Struct ? "struct " : "union ";
    std::string_view Tag = name();
    return S + (Tag.empty() ? std::string("<anonymous>")
                            : std::string(Tag));
  }
  default:
    return std::string(primitiveKindName(Kind));
  }
}

const LayoutTable &TypeInfo::layout() const {
  const LayoutTable *Table = Layout.load(std::memory_order_acquire);
  if (EFFSAN_LIKELY(Table))
    return *Table;
  auto *Fresh = new LayoutTable(LayoutTable::build(this));
  const LayoutTable *Expected = nullptr;
  if (!Layout.compare_exchange_strong(Expected, Fresh,
                                      std::memory_order_acq_rel)) {
    delete Fresh; // Another thread won the race.
    return *Expected;
  }
  return *Fresh;
}

//===----------------------------------------------------------------------===//
// TypeContext
//===----------------------------------------------------------------------===//

namespace {

struct PrimitiveSpec {
  TypeKind Kind;
  uint64_t Size;
  uint32_t Align;
};

constexpr PrimitiveSpec PrimitiveSpecs[] = {
    {TypeKind::Void, 0, 1},
    {TypeKind::Bool, sizeof(bool), alignof(bool)},
    {TypeKind::Char, 1, 1},
    {TypeKind::SChar, 1, 1},
    {TypeKind::UChar, 1, 1},
    {TypeKind::Short, sizeof(short), alignof(short)},
    {TypeKind::UShort, sizeof(short), alignof(short)},
    {TypeKind::Int, sizeof(int), alignof(int)},
    {TypeKind::UInt, sizeof(int), alignof(int)},
    {TypeKind::Long, sizeof(long), alignof(long)},
    {TypeKind::ULong, sizeof(long), alignof(long)},
    {TypeKind::LongLong, sizeof(long long), alignof(long long)},
    {TypeKind::ULongLong, sizeof(long long), alignof(long long)},
    {TypeKind::Float, sizeof(float), alignof(float)},
    {TypeKind::Double, sizeof(double), alignof(double)},
    {TypeKind::LongDouble, sizeof(long double), alignof(long double)},
    // FREE has size 1 so offset normalization is trivially defined.
    {TypeKind::Free, 1, 1},
    {TypeKind::StackFree, 1, 1},
    {TypeKind::AnyPointer, sizeof(void *), alignof(void *)},
};

} // namespace

TypeContext::TypeContext() {
  for (const PrimitiveSpec &Spec : PrimitiveSpecs) {
    auto *T = new PrimitiveType(Spec.Kind, Spec.Size, Spec.Align);
    Primitives[static_cast<unsigned>(Spec.Kind)] = T;
    T->Context = this;
  AllTypes.push_back(T);
  }
}

TypeContext::~TypeContext() {
  for (TypeInfo *T : AllTypes) {
    delete T->Layout.load(std::memory_order_relaxed);
    delete T;
  }
}

TypeContext &TypeContext::global() {
  static TypeContext Ctx;
  return Ctx;
}

const PointerType *TypeContext::getPointer(const TypeInfo *Pointee) {
  assert(Pointee && "null pointee");
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = PointerTypes.find(Pointee);
  if (It != PointerTypes.end())
    return It->second;
  auto *T = new PointerType(Pointee);
  PointerTypes.emplace(Pointee, T);
  T->Context = this;
  AllTypes.push_back(T);
  return T;
}

const ArrayType *TypeContext::getArray(const TypeInfo *Element,
                                       uint64_t Count) {
  assert(Element && Element->size() > 0 &&
         "array element must be a complete object type");
  std::lock_guard<std::mutex> Guard(Lock);
  uint64_t Key = hashCombine(hashPointer(Element), Count);
  for (const ArrayType *A : ArrayTypes[Key])
    if (A->element() == Element && A->count() == Count)
      return A;
  auto *T = new ArrayType(Element, Count);
  ArrayTypes[Key].push_back(T);
  T->Context = this;
  AllTypes.push_back(T);
  return T;
}

const FunctionType *
TypeContext::getFunction(const TypeInfo *Return,
                         std::span<const TypeInfo *const> Params) {
  std::lock_guard<std::mutex> Guard(Lock);
  uint64_t Key = hashPointer(Return);
  for (const TypeInfo *P : Params)
    Key = hashCombine(Key, hashPointer(P));
  for (const FunctionType *F : FunctionTypes[Key]) {
    if (F->returnType() != Return || F->isGeneric() ||
        F->params().size() != Params.size())
      continue;
    bool Same = true;
    for (size_t I = 0; I < Params.size(); ++I)
      if (F->params()[I] != Params[I])
        Same = false;
    if (Same)
      return F;
  }
  // Copy the parameter list into the arena for a stable span.
  const TypeInfo **Stable = nullptr;
  if (!Params.empty()) {
    Stable = static_cast<const TypeInfo **>(
        A.allocate(Params.size() * sizeof(TypeInfo *), alignof(TypeInfo *)));
    for (size_t I = 0; I < Params.size(); ++I)
      Stable[I] = Params[I];
  }
  auto *T = new FunctionType(
      Return, std::span<const TypeInfo *const>(Stable, Params.size()),
      /*Generic=*/false);
  FunctionTypes[Key].push_back(T);
  T->Context = this;
  AllTypes.push_back(T);
  return T;
}

const FunctionType *TypeContext::getGenericFunction() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (!GenericFunction) {
    auto *T = new FunctionType(getVoid(), std::span<const TypeInfo *const>(),
                               /*Generic=*/true);
    GenericFunction = T;
    T->Context = this;
  AllTypes.push_back(T);
  }
  return GenericFunction;
}

RecordType *TypeContext::createRecord(TypeKind StructOrUnion,
                                      std::string_view Tag) {
  assert((StructOrUnion == TypeKind::Struct ||
          StructOrUnion == TypeKind::Union) &&
         "records are structs or unions");
  std::lock_guard<std::mutex> Guard(Lock);
  auto *T = new RecordType(StructOrUnion, A.internString(Tag));
  T->Context = this;
  AllTypes.push_back(T);
  return T;
}

void TypeContext::defineRecord(RecordType *Record,
                               std::span<const FieldInfo> Fields,
                               uint64_t Size, uint32_t Align,
                               const TypeInfo *FamElement) {
  assert(!Record->isComplete() && "record defined twice");
  assert(Size > 0 && "record size must be positive");
  std::lock_guard<std::mutex> Guard(Lock);
  FieldInfo *Stable = nullptr;
  if (!Fields.empty()) {
    Stable = static_cast<FieldInfo *>(
        A.allocate(Fields.size() * sizeof(FieldInfo), alignof(FieldInfo)));
    for (size_t I = 0; I < Fields.size(); ++I) {
      Stable[I] = Fields[I];
      Stable[I].Name = A.internString(Fields[I].Name);
      assert(Stable[I].Type && "field with null type");
      assert((Record->isUnion() || Stable[I].Offset + Stable[I].Type->size()
              <= Size) && "field extends past record end");
    }
  }
  Record->Fields = std::span<const FieldInfo>(Stable, Fields.size());
  Record->Size = Size;
  Record->Align = Align;
  Record->FamElement = FamElement;
  Record->Complete = true;
}

const TypeInfo *TypeContext::getCached(const void *Key) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = ReflectCache.find(Key);
  return It == ReflectCache.end() ? nullptr : It->second;
}

const TypeInfo *TypeContext::getCachedComplete(const void *Key) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = ReflectCache.find(Key);
  if (It == ReflectCache.end())
    return nullptr;
  // Refuse a record another thread is still defining; Complete is
  // written by defineRecord under this same mutex, so the read here is
  // ordered. The caller falls back to the reflect guard and retries.
  if (const auto *Rec = dyn_cast<RecordType>(It->second))
    if (!Rec->isComplete())
      return nullptr;
  return It->second;
}

void TypeContext::setCached(const void *Key, const TypeInfo *Type) {
  std::lock_guard<std::mutex> Guard(Lock);
  ReflectCache.emplace(Key, Type);
}

std::string_view TypeContext::internString(std::string_view S) {
  std::lock_guard<std::mutex> Guard(Lock);
  return A.internString(S);
}

size_t TypeContext::numTypes() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return AllTypes.size();
}

//===----------------------------------------------------------------------===//
// RecordBuilder
//===----------------------------------------------------------------------===//

static uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) / Align * Align;
}

RecordBuilder::RecordBuilder(TypeContext &Ctx, TypeKind StructOrUnion,
                             std::string_view Tag)
    : Ctx(Ctx), Record(Ctx.createRecord(StructOrUnion, Tag)),
      IsUnion(StructOrUnion == TypeKind::Union) {}

RecordBuilder &RecordBuilder::addField(std::string_view Name,
                                       const TypeInfo *Type, bool IsBase) {
  assert(!Finished && "addField after finish");
  assert(!FamElement && "no fields may follow a flexible array member");
  assert(Type->size() > 0 && "field of incomplete type");
  FieldInfo Field;
  Field.Name = Name;
  Field.Type = Type;
  Field.IsBase = IsBase;
  if (IsUnion) {
    Field.Offset = 0;
    if (Type->size() > Offset)
      Offset = Type->size();
  } else {
    Field.Offset = alignTo(Offset, Type->align());
    Offset = Field.Offset + Type->size();
  }
  if (Type->align() > MaxAlign)
    MaxAlign = Type->align();
  Fields.push_back(Field);
  return *this;
}

RecordBuilder &RecordBuilder::addFlexibleArray(std::string_view Name,
                                               const TypeInfo *Elem) {
  assert(!IsUnion && "flexible array member in a union");
  // Represented as Elem[1] per the paper's convention.
  addField(Name, Ctx.getArray(Elem, 1));
  FamElement = Elem;
  return *this;
}

RecordType *RecordBuilder::finish() {
  assert(!Finished && "finish called twice");
  Finished = true;
  uint64_t Size = alignTo(Offset == 0 ? 1 : Offset, MaxAlign);
  Ctx.defineRecord(Record, Fields, Size, MaxAlign, FamElement);
  return Record;
}
