//===- core/SiteCache.h - Site-indexed type-check inline caches -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-session inline cache behind the type_check fast path. Every
/// instrumented check carries a *site identity* (SiteId): the
/// instrumentation pass numbers the checks it emits densely per module,
/// and API entry points that have no compiler-assigned site derive a
/// pseudo-site from the static type (which is one of the cache key
/// components anyway, so the approximation only costs occasional
/// evictions, never correctness).
///
/// Each cache entry memoizes one slow-path type_check resolution:
///
///   key:    (allocation type, static type, normalized offset delta)
///   value:  the matching LayoutEntry's relative bounds, plus the
///           allocation type's sizeof/FAM element size so the offset
///           normalization runs without touching the layout table.
///
/// Hits recompute absolute bounds from the *live* META header, so a
/// cached entry can never resurrect stale allocation state:
///
///   * free rebinds the object to the FREE type, which can never equal
///     a cached allocation type (errors are not cached), so the next
///     check at that site misses and the slow path reports the
///     use-after-free;
///   * reallocation at the same address revalidates against the fresh
///     META type/size — identical types reproduce identical layout
///     bounds by interning, so even a "stale" hit is bit-identical to
///     the slow path;
///   * Runtime::reset() clears the cache wholesale (the arena rewinds).
///
/// Entries are seqlock-protected (all fields relaxed atomics, a version
/// word ordered acquire/release) so a session shared by several threads
/// stays race-free: a torn fill is detected by the version re-check and
/// the reader simply takes the slow path.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_SITECACHE_H
#define EFFECTIVE_CORE_SITECACHE_H

#include "support/Hashing.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

namespace effective {

class TypeInfo;

/// A dense per-module check-site identity (assigned by the
/// instrumentation pass) or a type-derived pseudo-site (API paths).
using SiteId = uint32_t;

/// "No site assigned": uninstrumented hand-built IR. Check opcodes with
/// NoSite fall back to the type-derived pseudo-site.
inline constexpr SiteId NoSite = ~0u;

/// NormOffset sentinel for offset-independent resolutions (char/void
/// static types, whose result is always the allocation bounds).
inline constexpr uint64_t AnyNormOffset = ~uint64_t(0);

/// Tag bit distinguishing type-derived pseudo-sites from
/// instrumentation-assigned (and registry-rebased) site ids. The
/// SiteTableRegistry allocates real ids densely from zero and never
/// crosses this bit, so a pseudo-site can never resolve to another
/// module's source location by accident. The cache indexes by
/// Site & mask either way, so the tag costs nothing on the hot path.
inline constexpr SiteId PseudoSiteBit = SiteId(1) << 31;

/// Global fill-recency clock for SiteCacheEntry::FillTick: one shared
/// monotone counter across all caches (slow-path fills only, so the
/// RMW never touches a hot path). Wraps harmlessly — ticks are only
/// compared for relative age.
inline uint32_t nextSiteFillTick() {
  static std::atomic<uint32_t> Tick{0};
  return Tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// The pseudo-site for checks without a compiler-assigned site: types
/// are interned, so hashing the static type gives each distinct check
/// type its own (stable) slot — matching the cache key's static-type
/// component exactly. Tagged with PseudoSiteBit so source attribution
/// (core/SiteTable.h) rejects it.
inline SiteId siteForType(const TypeInfo *StaticType) {
  return static_cast<SiteId>(hashPointer(StaticType)) | PseudoSiteBit;
}

/// One monomorphic inline-cache entry. Cache-line sized so concurrent
/// sites never false-share.
struct alignas(64) SiteCacheEntry {
  /// Seqlock version: even = stable, odd = fill in progress, 0 = empty
  /// (empty entries also have null AllocType, which never matches).
  std::atomic<uint32_t> Version{0};
  /// Recency stamp: the value of the global fill tick when this entry
  /// was last filled (see nextSiteFillTick). Written by fillers only,
  /// read only by victim selection — never by the hit path.
  std::atomic<uint32_t> FillTick{0};
  std::atomic<const TypeInfo *> AllocType{nullptr};
  std::atomic<const TypeInfo *> StaticType{nullptr};
  /// Normalized offset delta the resolution is valid for, or
  /// AnyNormOffset for offset-independent (char/void) resolutions.
  std::atomic<uint64_t> NormOffset{0};
  /// The resolved layout-relative bounds (RelNegInf/RelPosInf encode
  /// "clamp to the allocation", as in LayoutEntry).
  std::atomic<int64_t> RelLo{0};
  std::atomic<int64_t> RelHi{0};
  /// sizeof(allocation type) and FAM element size, memoized so the hit
  /// path normalizes offsets without loading the layout table.
  std::atomic<uint64_t> SizeofT{0};
  std::atomic<uint64_t> FamSize{0};
};

/// A fixed-size, power-of-two, 2-way set-associative array of
/// inline-cache entries, indexed by SiteId & set mask. Polymorphic
/// sites (two static types, or two offset resolutions, flowing through
/// one check) keep both resolutions resident instead of ping-ponging a
/// direct-mapped slot at ~3.5x the hit cost; a third resolution evicts
/// the set's least-recently-filled way. Collisions stay benign: the
/// full key is compared on every probe, so a colliding site only
/// evicts.
class SiteCache {
public:
  /// Entries per set. The fast path probes the ways in order, so way 0
  /// is one compare away from the direct-mapped cost and way 1 costs
  /// only a second key compare on sets that need it.
  static constexpr unsigned Ways = 2;

  /// Hard cap on the entry count (2^20 entries = 64 MiB of cache): the
  /// count is a plain integer knob reachable from the C ABI, and a
  /// bogus huge value must degrade to a big-but-allocatable cache, not
  /// a std::bad_alloc escaping effsan_session_create (whose contract
  /// is "NULL only on out-of-memory") or std::bit_ceil UB.
  static constexpr size_t MaxEntries = size_t(1) << 20;

  /// Rounds \p RequestedEntries up to a power of two (clamped to
  /// [Ways, MaxEntries]); 0 disables the cache (every probe misses,
  /// every check takes the slow path).
  explicit SiteCache(size_t RequestedEntries) {
    if (RequestedEntries == 0) {
      NumEntries = 0;
      SetMask = 0;
      return;
    }
    NumEntries = std::bit_ceil(
        std::min(std::max(RequestedEntries, size_t(Ways)), MaxEntries));
    SetMask = NumEntries / Ways - 1;
    Entries = std::make_unique<SiteCacheEntry[]>(NumEntries);
  }

  bool enabled() const { return NumEntries != 0; }
  size_t numEntries() const { return NumEntries; }
  size_t numSets() const { return NumEntries / Ways; }

  /// The first way of \p Site's set (ways are consecutive entries).
  /// \pre enabled().
  SiteCacheEntry *setFor(SiteId Site) {
    return &Entries[(Site & SetMask) * Ways];
  }

  /// The fill victim within \p Set: an empty way if there is one,
  /// otherwise the least-recently-*filled* way by the global fill-tick
  /// stamp. (Comparing seqlock versions instead would count fills per
  /// entry, not recency — a way churned hot in the past would squat on
  /// its slot forever while the other way ping-pongs.)
  static SiteCacheEntry &victimIn(SiteCacheEntry *Set) {
    if (Set[0].Version.load(std::memory_order_relaxed) == 0)
      return Set[0];
    if (Set[1].Version.load(std::memory_order_relaxed) == 0)
      return Set[1];
    uint32_t T0 = Set[0].FillTick.load(std::memory_order_relaxed);
    uint32_t T1 = Set[1].FillTick.load(std::memory_order_relaxed);
    // Wrap-tolerant "older" comparison; a mispick once per 2^31 fills
    // only costs one extra miss.
    return static_cast<int32_t>(T1 - T0) < 0 ? Set[1] : Set[0];
  }

  /// Drops every entry (Runtime::reset). Not safe against concurrent
  /// probes — callers hold the same "no concurrent use" contract as
  /// Runtime::reset itself.
  void clear() {
    for (size_t I = 0; I < NumEntries; ++I) {
      Entries[I].AllocType.store(nullptr, std::memory_order_relaxed);
      Entries[I].Version.store(0, std::memory_order_release);
    }
  }

private:
  std::unique_ptr<SiteCacheEntry[]> Entries;
  size_t NumEntries = 0;
  size_t SetMask = 0;
};

} // namespace effective

#endif // EFFECTIVE_CORE_SITECACHE_H
