//===- core/SiteCache.h - Site-indexed type-check inline caches -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-session inline cache behind the type_check fast path. Every
/// instrumented check carries a *site identity* (SiteId): the
/// instrumentation pass numbers the checks it emits densely per module,
/// and API entry points that have no compiler-assigned site derive a
/// pseudo-site from the static type (which is one of the cache key
/// components anyway, so the approximation only costs occasional
/// evictions, never correctness).
///
/// Each cache entry memoizes one slow-path type_check resolution:
///
///   key:    (allocation type, static type, normalized offset delta)
///   value:  the matching LayoutEntry's relative bounds, plus the
///           allocation type's sizeof/FAM element size so the offset
///           normalization runs without touching the layout table.
///
/// Hits recompute absolute bounds from the *live* META header, so a
/// cached entry can never resurrect stale allocation state:
///
///   * free rebinds the object to the FREE type, which can never equal
///     a cached allocation type (errors are not cached), so the next
///     check at that site misses and the slow path reports the
///     use-after-free;
///   * reallocation at the same address revalidates against the fresh
///     META type/size — identical types reproduce identical layout
///     bounds by interning, so even a "stale" hit is bit-identical to
///     the slow path;
///   * Runtime::reset() clears the cache wholesale (the arena rewinds).
///
/// Entries are seqlock-protected (all fields relaxed atomics, a version
/// word ordered acquire/release) so a session shared by several threads
/// stays race-free: a torn fill is detected by the version re-check and
/// the reader simply takes the slow path.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_SITECACHE_H
#define EFFECTIVE_CORE_SITECACHE_H

#include "support/Hashing.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

namespace effective {

class TypeInfo;

/// A dense per-module check-site identity (assigned by the
/// instrumentation pass) or a type-derived pseudo-site (API paths).
using SiteId = uint32_t;

/// "No site assigned": uninstrumented hand-built IR. Check opcodes with
/// NoSite fall back to the type-derived pseudo-site.
inline constexpr SiteId NoSite = ~0u;

/// NormOffset sentinel for offset-independent resolutions (char/void
/// static types, whose result is always the allocation bounds).
inline constexpr uint64_t AnyNormOffset = ~uint64_t(0);

/// Tag bit distinguishing type-derived pseudo-sites from
/// instrumentation-assigned (and registry-rebased) site ids. The
/// SiteTableRegistry allocates real ids densely from zero and never
/// crosses this bit, so a pseudo-site can never resolve to another
/// module's source location by accident. The cache indexes by
/// Site & mask either way, so the tag costs nothing on the hot path.
inline constexpr SiteId PseudoSiteBit = SiteId(1) << 31;

/// The pseudo-site for checks without a compiler-assigned site: types
/// are interned, so hashing the static type gives each distinct check
/// type its own (stable) slot — matching the cache key's static-type
/// component exactly. Tagged with PseudoSiteBit so source attribution
/// (core/SiteTable.h) rejects it.
inline SiteId siteForType(const TypeInfo *StaticType) {
  return static_cast<SiteId>(hashPointer(StaticType)) | PseudoSiteBit;
}

/// One monomorphic inline-cache entry. Cache-line sized so concurrent
/// sites never false-share.
struct alignas(64) SiteCacheEntry {
  /// Seqlock version: even = stable, odd = fill in progress, 0 = empty
  /// (empty entries also have null AllocType, which never matches).
  std::atomic<uint32_t> Version{0};
  std::atomic<const TypeInfo *> AllocType{nullptr};
  std::atomic<const TypeInfo *> StaticType{nullptr};
  /// Normalized offset delta the resolution is valid for, or
  /// AnyNormOffset for offset-independent (char/void) resolutions.
  std::atomic<uint64_t> NormOffset{0};
  /// The resolved layout-relative bounds (RelNegInf/RelPosInf encode
  /// "clamp to the allocation", as in LayoutEntry).
  std::atomic<int64_t> RelLo{0};
  std::atomic<int64_t> RelHi{0};
  /// sizeof(allocation type) and FAM element size, memoized so the hit
  /// path normalizes offsets without loading the layout table.
  std::atomic<uint64_t> SizeofT{0};
  std::atomic<uint64_t> FamSize{0};
};

/// A fixed-size, power-of-two, direct-mapped array of inline-cache
/// entries, indexed by SiteId & mask. Collisions are benign: the full
/// key is compared on every probe, so a colliding site only evicts.
class SiteCache {
public:
  /// Hard cap on the entry count (2^20 entries = 64 MiB of cache): the
  /// count is a plain integer knob reachable from the C ABI, and a
  /// bogus huge value must degrade to a big-but-allocatable cache, not
  /// a std::bad_alloc escaping effsan_session_create (whose contract
  /// is "NULL only on out-of-memory") or std::bit_ceil UB.
  static constexpr size_t MaxEntries = size_t(1) << 20;

  /// Rounds \p RequestedEntries up to a power of two (clamped to
  /// MaxEntries); 0 disables the cache (every probe misses, every
  /// check takes the slow path).
  explicit SiteCache(size_t RequestedEntries) {
    if (RequestedEntries == 0) {
      NumEntries = 0;
      Mask = 0;
      return;
    }
    NumEntries = std::bit_ceil(std::min(RequestedEntries, MaxEntries));
    Mask = NumEntries - 1;
    Entries = std::make_unique<SiteCacheEntry[]>(NumEntries);
  }

  bool enabled() const { return NumEntries != 0; }
  size_t numEntries() const { return NumEntries; }

  /// The (direct-mapped) entry for \p Site. \pre enabled().
  SiteCacheEntry &entryFor(SiteId Site) { return Entries[Site & Mask]; }

  /// Drops every entry (Runtime::reset). Not safe against concurrent
  /// probes — callers hold the same "no concurrent use" contract as
  /// Runtime::reset itself.
  void clear() {
    for (size_t I = 0; I < NumEntries; ++I) {
      Entries[I].AllocType.store(nullptr, std::memory_order_relaxed);
      Entries[I].Version.store(0, std::memory_order_release);
    }
  }

private:
  std::unique_ptr<SiteCacheEntry[]> Entries;
  size_t NumEntries = 0;
  size_t Mask = 0;
};

} // namespace effective

#endif // EFFECTIVE_CORE_SITECACHE_H
