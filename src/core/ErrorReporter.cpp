//===- core/ErrorReporter.cpp - Error logging and bucketing ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ErrorReporter.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace effective;

const char *effective::errorKindName(ErrorKind Kind) {
  switch (Kind) {
  case ErrorKind::TypeError:
    return "TYPE ERROR";
  case ErrorKind::BoundsError:
    return "BOUNDS ERROR";
  case ErrorKind::UseAfterFree:
    return "USE-AFTER-FREE ERROR";
  case ErrorKind::DoubleFree:
    return "DOUBLE-FREE ERROR";
  case ErrorKind::StackUseAfterReturn:
    return "STACK USE-AFTER-RETURN ERROR";
  case ErrorKind::ResourceExhausted:
    return "RESOURCE-EXHAUSTED ERROR";
  }
  return "ERROR";
}

std::string ErrorReporter::renderMessage(const ErrorInfo &Info) const {
  std::string Msg = errorKindName(Info.Kind);

  if (const SiteInfo *W = Info.Where) {
    // Site-attributed form (docs/REPORT_FORMAT.md): name the source
    // location and function, never the raw pointer — the report is
    // deterministic across runs, and dedup is per site anyway.
    if (W->hasLocation())
      Msg += formatString(" at %s:%u:%u", W->File, W->Line, W->Column);
    else
      Msg += formatString(" at %s", W->File);
    if (W->Function[0] != '\0') {
      Msg += " in ";
      Msg += W->Function;
    }
    Msg += ":";
    if (Info.AllocType)
      Msg += formatString(" allocated (%s),",
                          Info.AllocType->str().c_str());
    if (Info.StaticType)
      Msg += formatString(" used as (%s)",
                          Info.StaticType->str().c_str());
    else
      Msg += formatString(" accessed via (%s)",
                          checkSiteKindName(W->Kind));
    Msg += formatString(" at offset %lld", (long long)Info.Offset);
  } else {
    // Legacy (unattributed) form: API paths and hand-built IR.
    Msg += formatString(": pointer %p", Info.Pointer);
    if (Info.StaticType)
      Msg += formatString(" of static type (%s)",
                          Info.StaticType->str().c_str());
    if (Info.AllocType)
      Msg += formatString(" points to object of dynamic type (%s) at "
                          "offset %lld",
                          Info.AllocType->str().c_str(),
                          (long long)Info.Offset);
    else
      Msg += formatString(" at offset %lld", (long long)Info.Offset);
  }

  if (Info.Detail) {
    Msg += " [";
    Msg += Info.Detail;
    Msg += "]";
  }
  return Msg;
}

void ErrorReporter::report(const ErrorInfo &Info) {
  // Lock-free fast path: a sharded runtime diverts the event to its
  // pool's error ring and never touches this reporter's lock.
  if (Options.Enqueue && Options.Enqueue(Info, Options.EnqueueUserData))
    return;

  std::lock_guard<std::mutex> Guard(Lock);
  ++Events;
  if (Info.Site != NoSite && !(Info.Site & PseudoSiteBit))
    ++SiteEvents[Info.Site];

  BucketKey Key{Info.Kind, Info.StaticType, Info.AllocType, Info.Offset,
                Info.Site};
  auto [It, Inserted] = BucketIndex.try_emplace(Key, Buckets.size());
  if (Inserted) {
    ErrorBucket Bucket;
    Bucket.Kind = Info.Kind;
    Bucket.StaticType = Info.StaticType;
    Bucket.AllocType = Info.AllocType;
    Bucket.Offset = Info.Offset;
    Bucket.Site = Info.Site;
    Bucket.Where = Info.Where;
    Bucket.Events = 1;
    // Render-on-demand (opt-in): counting-only drains skip the string
    // build entirely; Log mode always renders because it prints.
    bool WantMessage = !Options.DeferMessageRendering ||
                       (Options.Mode == ReportMode::Log && Options.Stream);
    if (WantMessage)
      Bucket.Message = renderMessage(Info);
    Buckets.push_back(std::move(Bucket));
  } else {
    ++Buckets[It->second].Events;
  }
  ErrorBucket &Bucket = Buckets[It->second];

  // Emission gate: the per-bucket dedup cap and the total cap.
  bool Emit = Options.MaxReportsPerBucket == 0 ||
              Bucket.Events <= Options.MaxReportsPerBucket;
  if (Emit && Options.MaxTotalReports != 0 &&
      Emitted >= Options.MaxTotalReports) {
    Emit = false;
    if (!CapNoticePrinted && Options.Mode == ReportMode::Log &&
        Options.Stream) {
      std::fprintf(Options.Stream,
                   "EffectiveSan: report cap of %llu reached; further "
                   "reports suppressed (events still counted)\n",
                   (unsigned long long)Options.MaxTotalReports);
      CapNoticePrinted = true;
    }
  }
  if (Emit) {
    ++Emitted;
    if (Options.Mode == ReportMode::Log && Options.Stream)
      std::fprintf(Options.Stream, "%s\n", Bucket.Message.c_str());
    if (Options.Callback)
      Options.Callback(Info, Bucket.Message.c_str(),
                       Options.CallbackUserData);
  } else {
    ++Suppressed;
  }

  if (Options.AbortAfter && Events >= Options.AbortAfter) {
    if (Options.Stream)
      std::fprintf(Options.Stream,
                   "EffectiveSan: aborting after %llu error(s)\n",
                   (unsigned long long)Events);
    std::abort();
  }
}

uint64_t ErrorReporter::numIssues() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Buckets.size();
}

uint64_t ErrorReporter::numIssues(ErrorKind Kind) const {
  std::lock_guard<std::mutex> Guard(Lock);
  uint64_t N = 0;
  for (const ErrorBucket &B : Buckets)
    if (B.Kind == Kind)
      ++N;
  return N;
}

uint64_t ErrorReporter::numEvents() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Events;
}

uint64_t ErrorReporter::numSuppressed() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Suppressed;
}

uint64_t ErrorReporter::numEventsAtSite(SiteId Site) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = SiteEvents.find(Site);
  return It == SiteEvents.end() ? 0 : It->second;
}

std::vector<ErrorBucket> ErrorReporter::buckets() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Buckets;
}

bool ErrorReporter::hasIssueMatching(std::string_view Needle) const {
  std::lock_guard<std::mutex> Guard(Lock);
  for (const ErrorBucket &B : Buckets)
    if (B.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

void ErrorReporter::setCallback(ErrorCallback Callback, void *UserData) {
  std::lock_guard<std::mutex> Guard(Lock);
  Options.Callback = Callback;
  Options.CallbackUserData = UserData;
}

void ErrorReporter::clear() {
  std::lock_guard<std::mutex> Guard(Lock);
  BucketIndex.clear();
  Buckets.clear();
  SiteEvents.clear();
  Events = 0;
  Emitted = 0;
  Suppressed = 0;
  CapNoticePrinted = false;
}
