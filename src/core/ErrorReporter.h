//===- core/ErrorReporter.h - Error logging and bucketing -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting for the EffectiveSan runtime. Matches the paper's
/// Section 6 methodology: errors are *bucketed by type and offset* so the
/// same issue is counted once; the runtime can log every new bucket
/// (logging mode), count silently (counting mode, used for performance
/// measurements), and optionally abort after N errors.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_ERRORREPORTER_H
#define EFFECTIVE_CORE_ERRORREPORTER_H

#include "core/SiteTable.h"
#include "core/TypeInfo.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace effective {

/// Classes of errors the runtime detects.
enum class ErrorKind : uint8_t {
  /// type_check found no matching (sub-)object (Figure 6 line 22).
  TypeError,
  /// bounds_check failed — (sub-)object bounds overflow.
  BoundsError,
  /// Access through a pointer whose object has the FREE dynamic type.
  UseAfterFree,
  /// type_free of an already-freed object.
  DoubleFree,
  /// Access through a dangling pointer into a stack frame that has
  /// returned (the object's dynamic type is the STACK-FREE flavor of
  /// FREE; see TypeKind::StackFree).
  StackUseAfterReturn,
  /// An allocation the program requested could not be satisfied (heap
  /// OOM or an induced exhaustion fault). The failed request degrades
  /// to a diagnosable null — never UB, never an abort on its own.
  ResourceExhausted,
};

/// Returns a stable name for \p Kind ("type", "bounds", ...).
const char *errorKindName(ErrorKind Kind);

/// How the reporter reacts to errors.
enum class ReportMode : uint8_t {
  /// Log each new bucket to the stream (default; Section 6 "logging
  /// mode is used to find errors").
  Log,
  /// Count only ("counting mode is used for measuring performance").
  Count,
};

/// One detected error event. A plain value: everything it points to is
/// either interned (types), owned by a session-lifetime registry
/// (Where) or a string literal (Detail), so events can be copied whole
/// into a concurrent::ErrorRing and rendered later by a central
/// drainer without borrowing anything from the erring thread.
struct ErrorInfo {
  ErrorKind Kind = ErrorKind::TypeError;
  /// The static type the program used (null when not applicable).
  const TypeInfo *StaticType = nullptr;
  /// The dynamic (allocation) type of the object (null for legacy).
  const TypeInfo *AllocType = nullptr;
  /// Byte offset of the pointer within the allocation.
  int64_t Offset = 0;
  /// The offending pointer.
  const void *Pointer = nullptr;
  /// Optional free-form detail appended to the log line.
  const char *Detail = nullptr;
  /// The erring check's site identity (rebased; NoSite when the error
  /// did not come from a sited check). Part of the dedup bucket key,
  /// so issues are counted per *site*, not per raw pointer value.
  SiteId Site = NoSite;
  /// Source attribution for Site, resolved by the runtime at report
  /// time (null for pseudo-sites and unregistered ids). Points into
  /// the session's SiteTableRegistry — stable across ring drains.
  const SiteInfo *Where = nullptr;
};

/// One deduplicated issue (the paper's Figure 7 "#Issues-found" counts
/// these buckets).
struct ErrorBucket {
  ErrorKind Kind;
  const TypeInfo *StaticType;
  const TypeInfo *AllocType;
  int64_t Offset;
  /// The check site the bucket is keyed by (NoSite for unsited paths).
  SiteId Site = NoSite;
  /// Source attribution of the first event (null when unattributed).
  const SiteInfo *Where = nullptr;
  uint64_t Events = 0;
  std::string Message;
};

/// Pluggable error sink: invoked for every *emitted* report (i.e. after
/// bucketing and the per-bucket / total caps below have been applied),
/// with the rendered message. Called with the reporter lock held — the
/// callback must not call back into the same reporter.
using ErrorCallback = void (*)(const ErrorInfo &Info, const char *Message,
                               void *UserData);

/// Lock-free intercept for the reporting hot path. When installed,
/// report() hands the raw event to this hook *before* taking the
/// reporter lock; a true return means the event was consumed (e.g.
/// pushed onto a concurrent::ErrorRing for a central drainer) and the
/// locked bucketing/emission path is skipped entirely. Returning false
/// falls through to the normal locked path. The hook must be safe to
/// call from any thread.
using ErrorEnqueueFn = bool (*)(const ErrorInfo &Info, void *UserData);

/// Reporter configuration.
struct ReporterOptions {
  ReportMode Mode = ReportMode::Log;
  std::FILE *Stream = stderr;
  /// Abort the process after this many error events; 0 = never.
  uint64_t AbortAfter = 0;
  /// Emit (log + callback) at most this many events per bucket — the
  /// per-location dedup cap that keeps looping workloads from flooding
  /// the output. 1 reproduces the paper's "report each issue once";
  /// 0 = unlimited.
  uint64_t MaxReportsPerBucket = 1;
  /// Hard cap on reports emitted across all buckets; one suppression
  /// notice is logged when the cap is hit. 0 = unlimited.
  uint64_t MaxTotalReports = 0;
  /// Opt-in: skip rendering the human-readable message for buckets
  /// that are only *counted* (Count mode with no emission need).
  /// Rendering formats type spellings and source locations into a
  /// heap string per new bucket — pure waste for CountOnly-policy
  /// pools whose ErrorRing drain only tallies issues. When deferred,
  /// ErrorBucket::Message stays empty and callbacks receive an empty
  /// message (the C ABI maps it to NULL); Log mode still renders,
  /// since it prints. Default off: behavior is unchanged unless asked
  /// for.
  bool DeferMessageRendering = false;
  /// Optional error sink, fired in both Log and Count modes.
  ErrorCallback Callback = nullptr;
  void *CallbackUserData = nullptr;
  /// Optional lock-free intercept (see ErrorEnqueueFn). Configure at
  /// construction; never mutated by the reporter.
  ErrorEnqueueFn Enqueue = nullptr;
  void *EnqueueUserData = nullptr;
};

/// Collects, deduplicates, and renders runtime errors. Thread-safe.
class ErrorReporter {
public:
  explicit ErrorReporter(const ReporterOptions &Options = ReporterOptions())
      : Options(Options) {}

  /// Records one error event; logs it if its bucket is new and the mode
  /// is Log.
  void report(const ErrorInfo &Info);

  /// Number of distinct issues (buckets) — the Figure 7 metric.
  uint64_t numIssues() const;

  /// Number of distinct issues of one kind.
  uint64_t numIssues(ErrorKind Kind) const;

  /// Total error events (multiple events may map to one bucket).
  uint64_t numEvents() const;

  /// Events that were counted but not emitted because of the
  /// per-bucket or total report caps.
  uint64_t numSuppressed() const;

  /// Error events recorded at check site \p Site (the per-site error
  /// counter the C ABI exposes; 0 for sites that never erred).
  uint64_t numEventsAtSite(SiteId Site) const;

  /// Snapshot of all buckets (sorted by first occurrence).
  std::vector<ErrorBucket> buckets() const;

  /// True if some bucket's message contains \p Needle (test helper).
  bool hasIssueMatching(std::string_view Needle) const;

  /// Drops all recorded issues and counters.
  void clear();

  /// Swaps the error sink under the reporter lock, so the
  /// callback/user-data pair can never be observed half-updated by a
  /// concurrently reporting thread.
  void setCallback(ErrorCallback Callback, void *UserData);

  /// Unsynchronized access to the options — configure before sharing
  /// the reporter across threads (use setCallback for the sink).
  ReporterOptions &options() { return Options; }

private:
  /// The dedup key: *site-keyed* — two checks at different source
  /// sites are distinct issues even when they trip over the same types
  /// and offset, while one site looping over the same offense stays
  /// one issue. Pseudo-sites are type-derived (a function of the
  /// static type, which is already in the key), so unsited API paths
  /// keep their type+offset bucketing exactly.
  struct BucketKey {
    ErrorKind Kind;
    const TypeInfo *StaticType;
    const TypeInfo *AllocType;
    int64_t Offset;
    SiteId Site;
    bool operator<(const BucketKey &O) const {
      if (Kind != O.Kind)
        return Kind < O.Kind;
      if (StaticType != O.StaticType)
        return StaticType < O.StaticType;
      if (AllocType != O.AllocType)
        return AllocType < O.AllocType;
      if (Offset != O.Offset)
        return Offset < O.Offset;
      return Site < O.Site;
    }
  };

  std::string renderMessage(const ErrorInfo &Info) const;

  ReporterOptions Options;
  mutable std::mutex Lock;
  std::map<BucketKey, size_t> BucketIndex;
  std::vector<ErrorBucket> Buckets;
  /// Events per sited check (pseudo- and unsited events not tracked).
  std::map<SiteId, uint64_t> SiteEvents;
  uint64_t Events = 0;
  uint64_t Emitted = 0;
  uint64_t Suppressed = 0;
  bool CapNoticePrinted = false;
};

} // namespace effective

#endif // EFFECTIVE_CORE_ERRORREPORTER_H
