//===- core/Runtime.cpp - The EffectiveSan runtime system -----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "core/Layout.h"
#include "obs/Metrics.h"
#include "resilience/Fault.h"

#include <cassert>
#include <cstring>
#include <map>
#include <memory>

using namespace effective;

/// Monotone stamp distinguishing runtime instances that reuse an
/// address (see Runtime::Epoch).
static uint64_t nextRuntimeEpoch() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Runtime::Runtime(TypeContext &Ctx, const RuntimeOptions &Options)
    : Ctx(Ctx),
      OwnedHeap(std::make_unique<lowfat::LowFatHeap>(Options.Heap)),
      Heap(*OwnedHeap), Shard(0), Epoch(nextRuntimeEpoch()),
      Globals(Heap, Shard), Reporter(Options.Reporter),
      StackQuarantineBytes(Options.StackQuarantineBytes),
      VoidPtrType(Ctx.getPointer(Ctx.getVoid())),
      Cache(Options.SiteCacheEntries),
      OwnedSites(Options.SharedSites
                     ? nullptr
                     : std::make_unique<SiteTableRegistry>()),
      Sites(Options.SharedSites ? *Options.SharedSites : *OwnedSites) {}

Runtime::Runtime(TypeContext &Ctx, lowfat::LowFatHeap &SharedHeap,
                 unsigned Shard, const RuntimeOptions &Options)
    : Ctx(Ctx), Heap(SharedHeap), Shard(Shard),
      Epoch(nextRuntimeEpoch()), Globals(Heap, Shard),
      Reporter(Options.Reporter),
      StackQuarantineBytes(Options.StackQuarantineBytes),
      VoidPtrType(Ctx.getPointer(Ctx.getVoid())),
      Cache(Options.SiteCacheEntries),
      OwnedSites(Options.SharedSites
                     ? nullptr
                     : std::make_unique<SiteTableRegistry>()),
      Sites(Options.SharedSites ? *Options.SharedSites : *OwnedSites) {
  assert(Shard < Heap.numShards() && "shard index out of range");
}

Runtime &Runtime::global() {
  static Runtime RT(TypeContext::global());
  return RT;
}

//===----------------------------------------------------------------------===//
// Typed allocation (Figure 6 lines 1-7)
//===----------------------------------------------------------------------===//

void *Runtime::allocate(size_t Size, const TypeInfo *Type) {
  return allocateOn(Shard, Size, Type);
}

void *Runtime::allocateOn(unsigned HeapShard, size_t Size,
                          const TypeInfo *Type) {
  void *Block =
      EFFSAN_FAULT(HeapExhausted)
          ? nullptr
          : Heap.allocateOnShard(Size + sizeof(MetaHeader), HeapShard);
  if (EFFSAN_UNLIKELY(!Block)) {
    // Exhaustion (real OOM or an induced fault) degrades to a
    // diagnosable null: one resource-exhausted report per requested
    // type, and the caller receives the same null a failed malloc
    // hands a C program — never UB, never an abort of our own.
    Reporter.report(ErrorInfo{ErrorKind::ResourceExhausted, Type, nullptr,
                              0, nullptr,
                              "allocation failed: heap resources exhausted"});
    return nullptr;
  }
  if (EFFSAN_UNLIKELY(!Heap.isLowFat(Block))) {
    // Oversized request: the block is a legacy pointer; base(p) cannot
    // reach a META header, so the object is simply untyped (checked
    // with wide bounds), matching the paper's legacy-pointer story.
    return Block;
  }
  auto *Meta = static_cast<MetaHeader *>(Block);
  Meta->Type = Type;
  Meta->Size = Size;
  return Meta + 1;
}

void *Runtime::allocateZeroed(size_t Count, size_t Size,
                              const TypeInfo *Type) {
  size_t Total = Count * Size;
  assert((Size == 0 || Total / Size == Count) && "calloc overflow");
  void *Ptr = allocate(Total, Type);
  if (EFFSAN_UNLIKELY(!Ptr))
    return nullptr;
  std::memset(Ptr, 0, Total);
  return Ptr;
}

void *Runtime::reallocate(void *Ptr, size_t NewSize, const TypeInfo *Type) {
  if (!Ptr)
    return allocate(NewSize, Type);
  // Keep the block on the shard that owns it: a cross-shard realloc
  // (shard A's session resizing a block carved from shard B's slice)
  // must not migrate the object into A's slice.
  unsigned Owner = Heap.isLowFat(Ptr) ? Heap.shardOf(Ptr) : Shard;
  size_t OldSize = 0;
  if (const MetaHeader *Meta = metaOf(Ptr)) {
    if (Meta->Type && Meta->Type->isFree()) {
      Reporter.report(ErrorInfo{ErrorKind::UseAfterFree, nullptr,
                                Ctx.getFree(), 0, Ptr,
                                "realloc of freed object"});
      return allocateOn(Owner, NewSize, Type);
    }
    OldSize = Meta->Size;
  }
  void *Fresh = allocateOn(Owner, NewSize, Type);
  if (EFFSAN_UNLIKELY(!Fresh))
    return nullptr; // C realloc contract: the old block stays live.
  if (OldSize != 0)
    std::memcpy(Fresh, Ptr, OldSize < NewSize ? OldSize : NewSize);
  deallocate(Ptr);
  return Fresh;
}

void Runtime::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  void *Base = Heap.allocationBase(Ptr);
  if (!Base) {
    // Legacy pointer: pass through to the underlying allocator.
    Heap.deallocate(Ptr);
    return;
  }
  auto *Meta = static_cast<MetaHeader *>(Base);
  if (Meta->Type && Meta->Type->isFree()) {
    Reporter.report(ErrorInfo{ErrorKind::DoubleFree, nullptr, Ctx.getFree(),
                              0, Ptr, "double free"});
    return;
  }
  assert(Ptr == Meta + 1 && "free of an interior pointer");
  // Rebind to the FREE type (Section 3); the allocator preserves the
  // header until the block is reallocated.
  Meta->Type = Ctx.getFree();
  Heap.deallocate(Base);
}

//===----------------------------------------------------------------------===//
// Typed stack and globals
//===----------------------------------------------------------------------===//

lowfat::StackPool &Runtime::stackPool() {
  // One pool per (thread, runtime); pools die with the thread. The
  // epoch stamp guards against a new runtime constructed at a dead
  // runtime's address inheriting the dead one's pool, whose heap
  // reference dangles.
  struct Slot {
    uint64_t Epoch = 0;
    std::unique_ptr<lowfat::StackPool> Pool;
  };
  thread_local std::map<Runtime *, Slot> Pools;
  Slot &S = Pools[this];
  if (!S.Pool || S.Epoch != Epoch) {
    if (S.Pool)
      S.Pool->abandonAll(); // Its blocks died with the old heap.
    lowfat::StackPool::Options PoolOpts;
    PoolOpts.QuarantineBytes = StackQuarantineBytes;
    S.Pool = std::make_unique<lowfat::StackPool>(Heap, Shard, PoolOpts);
    S.Epoch = Epoch;
  }
  return *S.Pool;
}

void Runtime::reset() {
  // Rewind the shard's sub-arenas first; the registries that pointed
  // into them are then cleared without touching the recycled memory.
  Heap.resetShard(Shard);
  Globals.reset();
  Counters.reset();
  ObjCounters.reset();
  Reporter.clear();
  // Every cached layout resolution named recycled addresses' META
  // state; drop them all rather than trusting revalidation across a
  // wholesale arena rewind.
  Cache.clear();
  // New epoch: every thread's cached stack pool for this runtime is
  // abandoned on next use instead of replaying pointers into the
  // recycled arena.
  Epoch = nextRuntimeEpoch();
  // Hot-site counts name the previous tenant's sites; start fresh.
  Prof.reset();
}

void *Runtime::stackAllocate(size_t Size, const TypeInfo *Type,
                             bool Escapes) {
  void *Block = stackPool().allocate(Size + sizeof(MetaHeader), Escapes);
  if (EFFSAN_UNLIKELY(!Block)) {
    Reporter.report(ErrorInfo{ErrorKind::ResourceExhausted, Type, nullptr,
                              0, nullptr,
                              "stack slot allocation failed: heap "
                              "resources exhausted"});
    return nullptr;
  }
  CheckCounters::bump(ObjCounters.StackAllocs);
  if (EFFSAN_UNLIKELY(!Heap.isLowFat(Block)))
    return Block;
  auto *Meta = static_cast<MetaHeader *>(Block);
  Meta->Type = Type;
  Meta->Size = Size;
  return Meta + 1;
}

size_t Runtime::stackMark() { return stackPool().mark(); }

void Runtime::stackRelease(size_t Mark) {
  lowfat::StackPool &Pool = stackPool();
  // Rebind BEFORE retirement: quarantined (escaping) blocks keep their
  // addresses out of circulation with a STACK-FREE META in place, so a
  // dangling pointer into the popped frame faults as a stack
  // use-after-return for as long as the quarantine delays reuse.
  for (const lowfat::StackPool::Record &R : Pool.blocksSince(Mark)) {
    if (R.Retire)
      CheckCounters::bump(ObjCounters.StackRetired);
    if (!Heap.isLowFat(R.Ptr))
      continue;
    auto *Meta = static_cast<MetaHeader *>(R.Ptr);
    Meta->Type = Ctx.getStackFree();
  }
  Pool.release(Mark);
  CheckCounters::bump(ObjCounters.StackFrames);
}

void *Runtime::globalAllocate(size_t Size, const TypeInfo *Type,
                              std::string_view Name) {
  void *Block = Globals.allocate(Size + sizeof(MetaHeader), Name);
  if (EFFSAN_UNLIKELY(!Block)) {
    Reporter.report(ErrorInfo{ErrorKind::ResourceExhausted, Type, nullptr,
                              0, nullptr,
                              "global allocation failed: heap resources "
                              "exhausted"});
    return nullptr;
  }
  if (EFFSAN_UNLIKELY(!Heap.isLowFat(Block)))
    return Block;
  auto *Meta = static_cast<MetaHeader *>(Block);
  Meta->Type = Type;
  Meta->Size = Size;
  std::memset(Meta + 1, 0, Size); // Globals are zero-initialized.
  return Meta + 1;
}

//===----------------------------------------------------------------------===//
// Dynamic checks (Figure 6 lines 9-24)
//===----------------------------------------------------------------------===//

const MetaHeader *Runtime::metaOf(const void *Ptr) const {
  void *Base = Heap.allocationBase(Ptr);
  return static_cast<const MetaHeader *>(Base);
}

const TypeInfo *Runtime::dynamicTypeOf(const void *Ptr) const {
  const MetaHeader *Meta = metaOf(Ptr);
  return Meta ? Meta->Type : nullptr;
}

Bounds Runtime::allocationBounds(const void *Ptr) const {
  const MetaHeader *Meta = metaOf(Ptr);
  if (!Meta)
    return Bounds::wide();
  return Bounds::forObject(Meta + 1, Meta->Size);
}

/// Publishes a layout resolution into \p E under its seqlock. A racing
/// filler simply loses (the entry is monomorphic; whoever wins is as
/// good as whoever loses), and a racing reader observes the odd version
/// or the re-check mismatch and takes the slow path.
///
/// The payload stores are release to pair with the reader's acquire
/// loads: a reader that observes any new payload value then observes
/// the odd/advanced version on its trailing re-read and rejects — on
/// weakly-ordered targets too, where relaxed payload stores could
/// otherwise become visible while the version still reads even.
static void fillSiteEntry(SiteCacheEntry &E, const TypeInfo *Alloc,
                          const TypeInfo *StaticType, uint64_t NormOffset,
                          int64_t RelLo, int64_t RelHi, uint64_t SizeofT,
                          uint64_t FamSize) {
  uint32_t V = E.Version.load(std::memory_order_relaxed);
  if (V & 1)
    return; // Another filler is mid-write.
  if (!E.Version.compare_exchange_strong(V, V + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed))
    return;
  E.AllocType.store(Alloc, std::memory_order_release);
  E.StaticType.store(StaticType, std::memory_order_release);
  E.NormOffset.store(NormOffset, std::memory_order_release);
  E.RelLo.store(RelLo, std::memory_order_release);
  E.RelHi.store(RelHi, std::memory_order_release);
  E.SizeofT.store(SizeofT, std::memory_order_release);
  E.FamSize.store(FamSize, std::memory_order_release);
  E.FillTick.store(nextSiteFillTick(), std::memory_order_relaxed);
  E.Version.store(V + 2, std::memory_order_release);
}

/// Publishes a resolution into \p Set's fill victim: an empty way if
/// one exists, else the way with the oldest fill-tick stamp — so a
/// 2-type polymorphic site keeps both resolutions resident instead of
/// ping-ponging one slot, and a way left stale by a colliding site
/// ages out instead of squatting.
static void fillSiteSet(SiteCacheEntry *Set, const TypeInfo *Alloc,
                        const TypeInfo *StaticType, uint64_t NormOffset,
                        int64_t RelLo, int64_t RelHi, uint64_t SizeofT,
                        uint64_t FamSize) {
  fillSiteEntry(SiteCache::victimIn(Set), Alloc, StaticType, NormOffset,
                RelLo, RelHi, SizeofT, FamSize);
}

Bounds Runtime::typeCheckImpl(const void *Ptr, const TypeInfo *StaticType,
                              const MetaHeader *Meta, SiteCacheEntry *Fill,
                              SiteId Site) {
  assert(StaticType && "type check against null static type");
  const TypeInfo *Alloc = Meta->Type;
  if (EFFSAN_UNLIKELY(!Alloc))
    return Bounds::wide(); // Untyped low-fat block.

  uintptr_t ObjBase = reinterpret_cast<uintptr_t>(Meta + 1);
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  Bounds AllocBounds{ObjBase, ObjBase + Meta->Size};

  // Deallocated memory: every access is a use-after-free (rule (h)).
  // Never cached — the FREE type also never equals a cached allocation
  // type, which is what makes free an implicit cache invalidation.
  // The STACK-FREE flavor classifies as a stack use-after-return: the
  // object died with its frame, not with a free() call.
  if (EFFSAN_UNLIKELY(Alloc->isFree())) {
    bool Stack = Alloc->isStackFree();
    Reporter.report(ErrorInfo{Stack ? ErrorKind::StackUseAfterReturn
                                    : ErrorKind::UseAfterFree,
                              StaticType, Alloc,
                              static_cast<int64_t>(P - ObjBase), Ptr,
                              Stack ? "use of stack object after frame return"
                                    : "use of freed object",
                              Site, Sites.resolve(Site)});
    return Bounds::wide();
  }

  // Step 2 (line 16): sub-object offset.
  if (EFFSAN_UNLIKELY(P < ObjBase || P > AllocBounds.Hi)) {
    Reporter.report(ErrorInfo{ErrorKind::BoundsError, StaticType, Alloc,
                              static_cast<int64_t>(P) -
                                  static_cast<int64_t>(ObjBase),
                              Ptr, "input pointer outside allocation",
                              Site, Sites.resolve(Site)});
    return Bounds::wide();
  }
  uint64_t K = P - ObjBase;

  // char/void coercion: casting to (char *)/(void *) resets the bounds
  // to the containing allocation (Section 6.1 discussion). The result
  // is offset-independent, so it caches under AnyNormOffset.
  if (StaticType->isCharLike() || StaticType->isVoid()) {
    if (Fill)
      fillSiteSet(Fill, Alloc, StaticType, AnyNormOffset, RelNegInf,
                    RelPosInf, 0, 0);
    return AllocBounds;
  }

  // Step 3 (lines 17-21): layout hash table probe.
  const LayoutTable &Table = Alloc->layout();
  uint64_t NK = Table.normalizeOffset(K, Meta->Size);
  const LayoutEntry *E = Table.lookup(StaticType, NK);
  if (!E && StaticType->isPointer()) {
    // (T*) <-> (void*) coercions: a static (void*) matches any pointer
    // member (AnyPointer index); any static pointer matches a (void*)
    // member.
    const auto *PT = cast<PointerType>(StaticType);
    const TypeInfo *Fallback =
        PT->pointee()->isVoid() ? Ctx.getAnyPointer() : VoidPtrType;
    E = Table.lookup(Fallback, NK);
  }
  if (!E) {
    // The paper's second lookup: coercion from (char[]) to (S[]).
    E = Table.lookup(Ctx.getChar(), NK);
  }
  if (E) {
    // Cache whichever probe succeeded — the entry's relative bounds are
    // the resolution itself, so a hit replays exactly this result.
    if (Fill)
      fillSiteSet(Fill, Alloc, StaticType, NK, E->RelLo, E->RelHi,
                    Table.sizeofT(), Table.famSize());
    return relativeBoundsToAbsolute(E->RelLo, E->RelHi, P, AllocBounds);
  }

  // Line 22: no match — type error; wide bounds afterwards (line 23).
  // Errors are never cached so every erring check keeps reporting
  // (bucketing/dedup happen in the reporter, not here).
  Reporter.report(ErrorInfo{ErrorKind::TypeError, StaticType, Alloc,
                            static_cast<int64_t>(K), Ptr, nullptr, Site,
                            Sites.resolve(Site)});
  return Bounds::wide();
}

Bounds Runtime::typeCheckSlow(const void *Ptr, const TypeInfo *StaticType,
                              SiteId Site, const MetaHeader *Meta) {
  CheckCounters::bump(Counters.TypeCheckCacheMisses);
  if (EFFSAN_UNLIKELY(obs::profileActive()))
    Prof.noteMiss(Site);
  EFFSAN_OBS_EVENT(CheckSlowPath, Shard, Site);
  SiteCacheEntry *Fill =
      Cache.enabled() ? Cache.setFor(Site) : nullptr;
  return typeCheckImpl(Ptr, StaticType, Meta, Fill, Site);
}

Bounds Runtime::typeCheckTimed(const void *Ptr, const TypeInfo *StaticType,
                               SiteId Site) {
  // Classify the sampled check by whether it stayed on the inline-cache
  // hit path: any miss or legacy resolution bumps one of these two
  // counters. Same-thread reads of the relaxed counters see the bump.
  uint64_t SlowBefore =
      Counters.TypeCheckCacheMisses.load(std::memory_order_relaxed) +
      Counters.LegacyTypeChecks.load(std::memory_order_relaxed);
  uint64_t Start = obs::now();
  Bounds B = typeCheckBody(Ptr, StaticType, Site);
  uint64_t Ticks = obs::now() - Start;
  uint64_t SlowAfter =
      Counters.TypeCheckCacheMisses.load(std::memory_order_relaxed) +
      Counters.LegacyTypeChecks.load(std::memory_order_relaxed);
  if (SlowAfter != SlowBefore)
    obs::checkSlowLatency().observe(Ticks);
  else
    obs::checkFastLatency().observe(Ticks);
  return B;
}

Bounds Runtime::typeCheckUncached(const void *Ptr,
                                  const TypeInfo *StaticType) {
  CheckCounters::bump(Counters.TypeChecks);
  void *Base = Heap.allocationBase(Ptr);
  if (!Base) {
    CheckCounters::bump(Counters.LegacyTypeChecks);
    return Bounds::wide();
  }
  return typeCheckImpl(Ptr, StaticType,
                       static_cast<const MetaHeader *>(Base),
                       /*Fill=*/nullptr, siteForType(StaticType));
}

Bounds Runtime::boundsGet(const void *Ptr, SiteId Site) {
  CheckCounters::bump(Counters.BoundsGets);
  const MetaHeader *Meta = metaOf(Ptr);
  if (!Meta || !Meta->Type)
    return Bounds::wide();
  if (EFFSAN_UNLIKELY(Meta->Type->isFree())) {
    bool Stack = Meta->Type->isStackFree();
    Reporter.report(ErrorInfo{Stack ? ErrorKind::StackUseAfterReturn
                                    : ErrorKind::UseAfterFree,
                              nullptr, Meta->Type, 0, Ptr,
                              Stack ? "use of stack object after frame return"
                                    : "use of freed object",
                              Site, Sites.resolve(Site)});
    return Bounds::wide();
  }
  return Bounds::forObject(Meta + 1, Meta->Size);
}

void Runtime::boundsCheckFail(const void *Ptr, size_t Size, Bounds B,
                              SiteId Site) {
  // Attribute the failure to the object the *bounds* came from, not to
  // whatever allocation the stray pointer happens to land in: B.Lo is
  // inside (a sub-object of) the checked object, so its META names the
  // object the pointer was derived from. Probing the out-of-bounds
  // pointer instead would read a neighboring block's (or a recycled
  // arena's stale) header — a nondeterministic misattribution. Wide
  // bounds carry no originating object; only then probe the pointer.
  const MetaHeader *Meta =
      B.isWide() ? metaOf(Ptr)
                 : metaOf(reinterpret_cast<const void *>(B.Lo));
  const TypeInfo *Alloc = Meta ? Meta->Type : nullptr;
  int64_t Offset = 0;
  if (Meta)
    Offset = static_cast<int64_t>(reinterpret_cast<uintptr_t>(Ptr)) -
             static_cast<int64_t>(reinterpret_cast<uintptr_t>(Meta + 1));
  const SiteInfo *Where = Sites.resolve(Site);
  if (Alloc && Alloc->isFree()) {
    bool Stack = Alloc->isStackFree();
    Reporter.report(ErrorInfo{Stack ? ErrorKind::StackUseAfterReturn
                                    : ErrorKind::UseAfterFree,
                              nullptr, Alloc, Offset, Ptr,
                              Stack ? "access to stack object after frame return"
                                    : "access to freed object",
                              Site, Where});
    return;
  }
  Reporter.report(ErrorInfo{ErrorKind::BoundsError, nullptr, Alloc, Offset,
                            Ptr, "out-of-bounds access", Site, Where});
}
