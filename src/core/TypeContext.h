//===- core/TypeContext.h - Type interning context --------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TypeContext owns and interns all TypeInfo objects. Interning gives
/// the property the runtime relies on: pointer equality of TypeInfo is
/// dynamic type equality, the same guarantee the paper obtains by
/// emitting type meta data as weak symbols ("defined once per type").
///
/// Thread-safe: all factory methods may be called concurrently (the
/// EffectiveSan runtime reflects types from any thread).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_TYPECONTEXT_H
#define EFFECTIVE_CORE_TYPECONTEXT_H

#include "core/TypeInfo.h"
#include "support/Arena.h"

#include <mutex>
#include <unordered_map>
#include <vector>

namespace effective {

/// Factory and owner of interned TypeInfo objects.
class TypeContext {
public:
  TypeContext();
  ~TypeContext();

  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  /// \name Primitive types (singletons per context).
  /// @{
  const TypeInfo *getVoid() const { return Primitives[0]; }
  const TypeInfo *getBool() const { return prim(TypeKind::Bool); }
  const TypeInfo *getChar() const { return prim(TypeKind::Char); }
  const TypeInfo *getSChar() const { return prim(TypeKind::SChar); }
  const TypeInfo *getUChar() const { return prim(TypeKind::UChar); }
  const TypeInfo *getShort() const { return prim(TypeKind::Short); }
  const TypeInfo *getUShort() const { return prim(TypeKind::UShort); }
  const TypeInfo *getInt() const { return prim(TypeKind::Int); }
  const TypeInfo *getUInt() const { return prim(TypeKind::UInt); }
  const TypeInfo *getLong() const { return prim(TypeKind::Long); }
  const TypeInfo *getULong() const { return prim(TypeKind::ULong); }
  const TypeInfo *getLongLong() const { return prim(TypeKind::LongLong); }
  const TypeInfo *getULongLong() const { return prim(TypeKind::ULongLong); }
  const TypeInfo *getFloat() const { return prim(TypeKind::Float); }
  const TypeInfo *getDouble() const { return prim(TypeKind::Double); }
  const TypeInfo *getLongDouble() const {
    return prim(TypeKind::LongDouble);
  }
  /// The dynamic type of deallocated memory (Section 3).
  const TypeInfo *getFree() const { return prim(TypeKind::Free); }
  /// The dynamic type of a stack object whose frame has returned (the
  /// stack flavor of FREE; see TypeKind::StackFree).
  const TypeInfo *getStackFree() const {
    return prim(TypeKind::StackFree);
  }
  /// Internal sentinel for the (T*)/(void*) coercion; see LayoutTable.
  const TypeInfo *getAnyPointer() const {
    return prim(TypeKind::AnyPointer);
  }
  /// @}

  /// Interns T* for pointee \p Pointee.
  const PointerType *getPointer(const TypeInfo *Pointee);

  /// Interns the complete array type \p Element[\p Count].
  const ArrayType *getArray(const TypeInfo *Element, uint64_t Count);

  /// Interns a function type.
  const FunctionType *getFunction(const TypeInfo *Return,
                                  std::span<const TypeInfo *const> Params);

  /// The "generic function" type standing in for virtual-table entries.
  const FunctionType *getGenericFunction();

  /// Creates a fresh, incomplete record with tag \p Tag (may be empty).
  /// Each call creates a distinct dynamic type.
  RecordType *createRecord(TypeKind StructOrUnion, std::string_view Tag);

  /// Completes \p Record with its members and layout. \p FamElement is
  /// the element type of a trailing flexible array member, or null.
  /// Field name strings are interned; must be called exactly once.
  void defineRecord(RecordType *Record, std::span<const FieldInfo> Fields,
                    uint64_t Size, uint32_t Align,
                    const TypeInfo *FamElement = nullptr);

  /// \name Reflection cache.
  /// Native reflection (core/Reflect.h) memoizes one TypeInfo per C++
  /// type per context, keyed by a unique static tag address.
  ///
  /// Thread safety protocol: record builds are serialized by
  /// reflectGuard() (recursive, so a record whose field type is itself
  /// a reflected record re-enters safely, and a self-referential type
  /// finds its own in-progress record through getCached). The fast
  /// path uses getCachedComplete, which refuses a record
  /// still under construction — such a caller then blocks on the guard
  /// until the builder finishes, so no thread can ever allocate or
  /// check against a half-defined record.
  /// @{
  const TypeInfo *getCached(const void *Key) const;
  /// As getCached, but returns null for a record that is not yet
  /// complete (mid-build on another thread).
  const TypeInfo *getCachedComplete(const void *Key) const;
  void setCached(const void *Key, const TypeInfo *Type);
  /// Serializes reflection builds on this context.
  std::unique_lock<std::recursive_mutex> reflectGuard() {
    return std::unique_lock<std::recursive_mutex>(ReflectBuildLock);
  }
  /// @}

  /// Interns a string into the context arena.
  std::string_view internString(std::string_view S);

  /// Number of types created (for tests/statistics).
  size_t numTypes() const;

  /// The process-wide context used by the default runtime and native
  /// reflection.
  static TypeContext &global();

private:
  const TypeInfo *prim(TypeKind Kind) const {
    return Primitives[static_cast<unsigned>(Kind)];
  }

  mutable std::mutex Lock;
  /// Serializes whole reflection builds (see reflectGuard). Recursive:
  /// reflecting a record reflects its field types first.
  std::recursive_mutex ReflectBuildLock;
  Arena A;
  const TypeInfo *Primitives[static_cast<unsigned>(TypeKind::AnyPointer) +
                             1] = {};
  std::unordered_map<const TypeInfo *, const PointerType *> PointerTypes;
  std::unordered_map<uint64_t, std::vector<const ArrayType *>> ArrayTypes;
  std::unordered_map<uint64_t, std::vector<const FunctionType *>>
      FunctionTypes;
  const FunctionType *GenericFunction = nullptr;
  std::unordered_map<const void *, const TypeInfo *> ReflectCache;
  std::vector<TypeInfo *> AllTypes;
};

/// Helper that computes C-style record layout (offset/alignment/padding)
/// for frontends that do not know offsets a priori (MiniC). Native
/// reflection uses real offsetof() values instead.
class RecordBuilder {
public:
  /// \p Tag may be empty for anonymous records.
  RecordBuilder(TypeContext &Ctx, TypeKind StructOrUnion,
                std::string_view Tag);

  /// Appends a member; computes its offset per C layout rules (union
  /// members are all at offset zero).
  RecordBuilder &addField(std::string_view Name, const TypeInfo *Type,
                          bool IsBase = false);

  /// Appends a trailing flexible array member of element type \p Elem
  /// (represented as Elem[1], per the paper). Must be last.
  RecordBuilder &addFlexibleArray(std::string_view Name,
                                  const TypeInfo *Elem);

  /// Completes and returns the record.
  RecordType *finish();

  /// The record being built (incomplete until finish()).
  RecordType *record() const { return Record; }

private:
  TypeContext &Ctx;
  RecordType *Record;
  std::vector<FieldInfo> Fields;
  uint64_t Offset = 0;
  uint32_t MaxAlign = 1;
  const TypeInfo *FamElement = nullptr;
  bool IsUnion;
  bool Finished = false;
};

} // namespace effective

#endif // EFFECTIVE_CORE_TYPECONTEXT_H
