//===- core/SiteTable.cpp - Check-site source attribution -----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/SiteTable.h"

#include "resilience/Fault.h"

#include <algorithm>

using namespace effective;

const char *effective::checkSiteKindName(CheckSiteKind Kind) {
  switch (Kind) {
  case CheckSiteKind::TypeCheck:
    return "type_check";
  case CheckSiteKind::BoundsGet:
    return "bounds_get";
  case CheckSiteKind::BoundsCheck:
    return "bounds_check";
  case CheckSiteKind::BoundsNarrow:
    return "bounds_narrow";
  }
  return "check";
}

SiteId SiteTableRegistry::registerTable(const SiteTable &Table,
                                        uint64_t Key) {
  if (Table.Entries.empty())
    return NoSite;
  // An induced registration failure takes the same NoSite path a
  // tag-space overflow takes: checks still run and report, they just
  // lose source attribution (pseudo-site bucketing).
  if (EFFSAN_FAULT(SiteRegister))
    return NoSite;

  std::lock_guard<std::mutex> Guard(Lock);
  if (Key) {
    for (const auto &T : Tables)
      if (T->Key == Key)
        return T->Base;
  }
  // The rebased range must stay clear of the PseudoSiteBit tag space;
  // a session would need two billion registered sites to get here.
  if (NextBase + Table.Entries.size() >= PseudoSiteBit)
    return NoSite;

  auto R = std::make_unique<Registered>();
  R->Key = Key;
  R->Base = NextBase;
  R->File = Table.File;

  // Intern each distinct function name once; the SiteInfo pointers
  // must stay stable, so names live in individually allocated strings.
  auto intern = [&](const std::string &S) -> const char * {
    if (S.empty())
      return "";
    for (const auto &Existing : R->Strings)
      if (*Existing == S)
        return Existing->c_str();
    R->Strings.push_back(std::make_unique<std::string>(S));
    return R->Strings.back()->c_str();
  };

  R->Sites.reserve(Table.Entries.size());
  for (size_t I = 0; I < Table.Entries.size(); ++I) {
    const SiteTable::Entry &E = Table.Entries[I];
    SiteInfo Info;
    Info.Site = R->Base + static_cast<SiteId>(I);
    Info.Kind = E.Kind;
    Info.Line = E.Loc.Line;
    Info.Column = E.Loc.Column;
    Info.File = R->File.c_str();
    Info.Function = intern(E.Function);
    Info.StaticType = E.StaticType;
    R->Sites.push_back(Info);
  }

  SiteId Base = R->Base;
  NextBase += static_cast<SiteId>(Table.Entries.size());
  Tables.push_back(std::move(R));

  // Publish a fresh immutable index for the lock-free readers. The old
  // snapshot is retired (kept alive), never freed, so an error-storm
  // resolve() racing this registration reads either index safely.
  auto Snap = std::make_unique<Snapshot>();
  Snap->Tables.reserve(Tables.size());
  for (const auto &T : Tables)
    Snap->Tables.push_back(T.get());
  Current.store(Snap.get(), std::memory_order_release);
  Snapshots.push_back(std::move(Snap));
  return Base;
}

const SiteInfo *SiteTableRegistry::resolve(SiteId Site) const {
  if (Site == NoSite || (Site & PseudoSiteBit))
    return nullptr;
  // Wait-free read path: one acquire load of the published index; the
  // Registered records it points to are immutable after registration.
  const Snapshot *Snap = Current.load(std::memory_order_acquire);
  if (!Snap)
    return nullptr;
  // Tables are sorted by Base; find the last table with Base <= Site.
  auto It = std::upper_bound(Snap->Tables.begin(), Snap->Tables.end(),
                             Site, [](SiteId S, const Registered *T) {
                               return S < T->Base;
                             });
  if (It == Snap->Tables.begin())
    return nullptr;
  const Registered &T = **std::prev(It);
  size_t Local = Site - T.Base;
  if (Local >= T.Sites.size())
    return nullptr;
  return &T.Sites[Local];
}

uint64_t SiteTableRegistry::numSites() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return NextBase;
}

size_t SiteTableRegistry::numTables() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Tables.size();
}
