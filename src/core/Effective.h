//===- core/Effective.h - Umbrella header and paper-name facade -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the EffectiveSan core library, plus a facade with
/// the paper's function names (Figures 3 and 6) for code that wants to
/// read like the paper:
///
/// \code
///   int *p = (int *)effective_malloc(100 * sizeof(int), IntType);
///   BOUNDS b = effective_type_check(p, IntType);
///   effective_bounds_check(p + i, sizeof(int), b);
///   effective_free(p);
/// \endcode
///
/// Design: this header is a *thin facade over the default session*. The
/// real public API is the instance-scoped effective::Sanitizer in
/// api/Sanitizer.h (and its C twin, api/effsan.h); every function below
/// is a one-line forward to Sanitizer::defaultSession(), the
/// process-wide CheckPolicy::Full session wrapping Runtime::global().
/// Code needing private heaps, independent counters/error sinks, or a
/// different check policy creates its own Sanitizer instead of calling
/// these.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_EFFECTIVE_H
#define EFFECTIVE_CORE_EFFECTIVE_H

#include "api/Sanitizer.h"
#include "core/Bounds.h"
#include "core/CheckedPtr.h"
#include "core/ErrorReporter.h"
#include "core/Layout.h"
#include "core/Meta.h"
#include "core/Reflect.h"
#include "core/Runtime.h"
#include "core/TypeContext.h"
#include "core/TypeInfo.h"

namespace effective {

/// BOUNDS, as the paper spells it.
using BOUNDS = Bounds;
/// TYPE, as the paper spells it (Figure 6 treats types as first-class).
using TYPE = const TypeInfo *;

/// Figure 6 type_malloc over the default session.
inline void *effective_malloc(size_t Size, TYPE Type) {
  return Sanitizer::defaultSession().malloc(Size, Type);
}

/// Figure 6 type_free over the default session.
inline void effective_free(void *Ptr) {
  Sanitizer::defaultSession().free(Ptr);
}

/// type_calloc over the default session.
inline void *effective_calloc(size_t Count, size_t Size, TYPE Type) {
  return Sanitizer::defaultSession().calloc(Count, Size, Type);
}

/// type_realloc over the default session.
inline void *effective_realloc(void *Ptr, size_t Size, TYPE Type) {
  return Sanitizer::defaultSession().realloc(Ptr, Size, Type);
}

/// Figure 6 type_check over the default session.
inline BOUNDS effective_type_check(const void *Ptr, TYPE Type) {
  return Sanitizer::defaultSession().typeCheck(Ptr, Type);
}

/// The bounds_get of the EffectiveSan-bounds variant.
inline BOUNDS effective_bounds_get(const void *Ptr) {
  return Sanitizer::defaultSession().boundsGet(Ptr);
}

/// Figure 3 bounds_check over the default session.
inline void effective_bounds_check(const void *Ptr, size_t Size, BOUNDS B) {
  Sanitizer::defaultSession().boundsCheck(Ptr, Size, B);
}

/// Figure 3 bounds_narrow.
inline BOUNDS effective_bounds_narrow(BOUNDS B, const void *Field,
                                      size_t Size) {
  return Sanitizer::defaultSession().boundsNarrow(B, Field, Size);
}

} // namespace effective

#endif // EFFECTIVE_CORE_EFFECTIVE_H
