//===- core/Effective.h - Umbrella header and paper-name facade -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the EffectiveSan core library, plus a facade with
/// the paper's function names (Figures 3 and 6) over the process-wide
/// runtime, for code that wants to read like the paper:
///
/// \code
///   int *p = (int *)effective_malloc(100 * sizeof(int), IntType);
///   BOUNDS b = effective_type_check(p, IntType);
///   effective_bounds_check(p + i, sizeof(int), b);
///   effective_free(p);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_EFFECTIVE_H
#define EFFECTIVE_CORE_EFFECTIVE_H

#include "core/Bounds.h"
#include "core/CheckedPtr.h"
#include "core/ErrorReporter.h"
#include "core/Layout.h"
#include "core/Meta.h"
#include "core/Reflect.h"
#include "core/Runtime.h"
#include "core/TypeContext.h"
#include "core/TypeInfo.h"

namespace effective {

/// BOUNDS, as the paper spells it.
using BOUNDS = Bounds;
/// TYPE, as the paper spells it (Figure 6 treats types as first-class).
using TYPE = const TypeInfo *;

/// Figure 6 type_malloc over the global runtime.
inline void *effective_malloc(size_t Size, TYPE Type) {
  return Runtime::global().allocate(Size, Type);
}

/// Figure 6 type_free over the global runtime.
inline void effective_free(void *Ptr) {
  Runtime::global().deallocate(Ptr);
}

/// type_calloc over the global runtime.
inline void *effective_calloc(size_t Count, size_t Size, TYPE Type) {
  return Runtime::global().allocateZeroed(Count, Size, Type);
}

/// type_realloc over the global runtime.
inline void *effective_realloc(void *Ptr, size_t Size, TYPE Type) {
  return Runtime::global().reallocate(Ptr, Size, Type);
}

/// Figure 6 type_check over the global runtime.
inline BOUNDS effective_type_check(const void *Ptr, TYPE Type) {
  return Runtime::global().typeCheck(Ptr, Type);
}

/// The bounds_get of the EffectiveSan-bounds variant.
inline BOUNDS effective_bounds_get(const void *Ptr) {
  return Runtime::global().boundsGet(Ptr);
}

/// Figure 3 bounds_check over the global runtime.
inline void effective_bounds_check(const void *Ptr, size_t Size, BOUNDS B) {
  Runtime::global().boundsCheck(Ptr, Size, B);
}

/// Figure 3 bounds_narrow.
inline BOUNDS effective_bounds_narrow(BOUNDS B, const void *Field,
                                      size_t Size) {
  return Runtime::global().boundsNarrow(B, Field, Size);
}

} // namespace effective

#endif // EFFECTIVE_CORE_EFFECTIVE_H
