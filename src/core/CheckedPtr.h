//===- core/CheckedPtr.h - Figure 3 schema as a library ---------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic type check instrumentation schema (Figure 3) in library
/// form, used by natively-compiled workloads and examples. A
/// CheckedPtr<T, Policy> carries the BOUNDS value the compiler pass
/// would keep in a register:
///
///   * input events — construction from a raw pointer (function
///     parameter, call return, pointer loaded from memory) and casts —
///     run type_check against the static type T (rules (a)-(d));
///   * pointer arithmetic propagates bounds (rule (f));
///   * field access narrows bounds (rule (e));
///   * dereference and escape run bounds_check (rule (g)).
///
/// The Policy parameter selects the paper's evaluation variants at
/// compile time: FullPolicy (EffectiveSan), BoundsPolicy
/// (EffectiveSan-bounds), TypePolicy (EffectiveSan-type) and NonePolicy
/// (uninstrumented; compiles to bare pointer operations).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_CHECKEDPTR_H
#define EFFECTIVE_CORE_CHECKEDPTR_H

#include "core/Reflect.h"
#include "core/Runtime.h"

#include <cstddef>
#include <type_traits>

namespace effective {

/// \name Current-runtime binding.
/// CheckedPtr operations report through the thread's current runtime.
/// Resolution order: the thread-local binding (RuntimeScope /
/// SanitizerScope), then the injected process default
/// (setDefaultRuntime — how a test or embedder swaps the fallback for a
/// private instance), then Runtime::global().
/// @{
inline Runtime *&currentRuntimeSlot() {
  thread_local Runtime *Slot = nullptr;
  return Slot;
}

/// The injected process-wide fallback (null = Runtime::global()).
inline std::atomic<Runtime *> &defaultRuntimeSlot() {
  static std::atomic<Runtime *> Slot{nullptr};
  return Slot;
}

/// Injects \p RT as the process-wide fallback runtime for threads with
/// no scope binding; pass null to restore Runtime::global(). Returns
/// the previous injection.
inline Runtime *setDefaultRuntime(Runtime *RT) {
  return defaultRuntimeSlot().exchange(RT, std::memory_order_acq_rel);
}

inline Runtime &currentRuntime() {
  if (Runtime *RT = currentRuntimeSlot())
    return *RT;
  if (Runtime *RT = defaultRuntimeSlot().load(std::memory_order_acquire))
    return *RT;
  return Runtime::global();
}

/// RAII binder for the current runtime.
class RuntimeScope {
public:
  explicit RuntimeScope(Runtime &RT) : Saved(currentRuntimeSlot()) {
    currentRuntimeSlot() = &RT;
  }
  ~RuntimeScope() { currentRuntimeSlot() = Saved; }

  RuntimeScope(const RuntimeScope &) = delete;
  RuntimeScope &operator=(const RuntimeScope &) = delete;

private:
  Runtime *Saved;
};
/// @}

/// \name Instrumentation policies (the Figure 8 variants).
/// @{

/// Full EffectiveSan: "check everything".
struct FullPolicy {
  static constexpr bool CheckInputs = true;
  static constexpr bool CheckCasts = true;
  static constexpr bool CheckBounds = true;
  static constexpr bool StoresBounds = true;
  static constexpr bool NarrowFields = true;
  static constexpr const char *name() { return "EffectiveSan (full)"; }
};

/// EffectiveSan-bounds: object bounds only; type checks are replaced by
/// bounds_get (Section 6.2).
struct BoundsPolicy {
  static constexpr bool CheckInputs = true;
  static constexpr bool CheckCasts = false;
  static constexpr bool CheckBounds = true;
  static constexpr bool StoresBounds = true;
  /// "Protects object bounds only" (Section 6.2): no rule-(e) narrowing,
  /// making the variant comparable to LowFat/ASan-class tools.
  static constexpr bool NarrowFields = false;
  static constexpr const char *name() { return "EffectiveSan-bounds"; }
};

/// EffectiveSan-type: type checks on cast operations only (rule (d));
/// all other instrumentation removed.
struct TypePolicy {
  static constexpr bool CheckInputs = false;
  static constexpr bool CheckCasts = true;
  static constexpr bool CheckBounds = false;
  static constexpr bool StoresBounds = false;
  static constexpr bool NarrowFields = false;
  static constexpr const char *name() { return "EffectiveSan-type"; }
};

/// Uninstrumented baseline.
struct NonePolicy {
  static constexpr bool CheckInputs = false;
  static constexpr bool CheckCasts = false;
  static constexpr bool CheckBounds = false;
  static constexpr bool StoresBounds = false;
  static constexpr bool NarrowFields = false;
  static constexpr const char *name() { return "Uninstrumented"; }
};
/// @}

namespace detail {
/// Empty stand-in for Bounds under policies that do not track them.
struct NoBounds {
  static constexpr NoBounds wide() { return NoBounds(); }
};
} // namespace detail

/// A checked pointer: raw pointer plus (policy-dependent) bounds.
template <typename T, typename Policy = FullPolicy> class CheckedPtr {
  using BoundsT =
      std::conditional_t<Policy::StoresBounds, Bounds, detail::NoBounds>;

public:
  CheckedPtr() : Raw(nullptr), B(BoundsT::wide()) {}
  /*implicit*/ CheckedPtr(std::nullptr_t) : CheckedPtr() {}

  /// Session-aware construction: the input event run against an
  /// explicit runtime (a Sanitizer converts to its Runtime, so
  /// CheckedPtr<T>(Ptr, Session) binds the pointer to that session
  /// regardless of any thread-local scope).
  CheckedPtr(T *Ptr, Runtime &RT) { *this = input(Ptr, RT); }

  /// Input event (Figure 3 rules (a)-(c)) against an explicit runtime:
  /// a raw pointer entering checked code — function parameter, call
  /// return, or pointer loaded from memory. Runs type_check (full) /
  /// bounds_get (bounds-only).
  static CheckedPtr input(T *Ptr, Runtime &RT) {
    CheckedPtr P;
    P.Raw = Ptr;
    if constexpr (Policy::CheckInputs && Policy::CheckCasts) {
      if (Ptr)
        P.B = RT.typeCheck(
            Ptr, TypeOf<std::remove_cv_t<T>>::get(RT.typeContext()));
    } else if constexpr (Policy::CheckInputs) {
      if (Ptr)
        P.B = RT.boundsGet(Ptr);
    }
    return P;
  }

  /// Input event against the thread's current runtime.
  static CheckedPtr input(T *Ptr) { return input(Ptr, currentRuntime()); }

  /// Cast event (Figure 3 rule (d)): (T *)q for a source pointer of a
  /// different static type. Under TypePolicy this is the only
  /// instrumented operation, matching EffectiveSan-type.
  template <typename U>
  static CheckedPtr fromCast(const CheckedPtr<U, Policy> &Src) {
    return fromCast(reinterpret_cast<T *>(Src.raw()));
  }

  /// Cast event from a raw pointer against an explicit runtime.
  static CheckedPtr fromCast(T *Ptr, Runtime &RT) {
    CheckedPtr P;
    P.Raw = Ptr;
    if constexpr (Policy::CheckCasts) {
      Bounds Checked = Bounds::wide();
      if (Ptr)
        Checked = RT.typeCheck(
            Ptr, TypeOf<std::remove_cv_t<T>>::get(RT.typeContext()));
      if constexpr (Policy::StoresBounds)
        P.B = Checked;
    } else if constexpr (Policy::CheckInputs) {
      if (Ptr)
        P.B = RT.boundsGet(Ptr);
    }
    return P;
  }

  /// Cast event against the thread's current runtime.
  static CheckedPtr fromCast(T *Ptr) {
    return fromCast(Ptr, currentRuntime());
  }

  /// Wraps a pointer with explicitly known bounds (used by field
  /// narrowing and the allocator helpers).
  static CheckedPtr withBounds(T *Ptr, BoundsT Known) {
    CheckedPtr P;
    P.Raw = Ptr;
    P.B = Known;
    return P;
  }

  /// \name Dereference (rule (g): bounds_check before use).
  /// @{
  T &operator*() const {
    check(Raw, sizeof(T));
    return *Raw;
  }

  T *operator->() const {
    check(Raw, sizeof(T));
    return Raw;
  }

  T &operator[](ptrdiff_t Index) const {
    T *P = Raw + Index;
    check(P, sizeof(T));
    return *P;
  }

  /// Reads through the pointer with an explicit access size (sub-word
  /// accesses).
  T &at(ptrdiff_t Index, size_t AccessSize) const {
    T *P = Raw + Index;
    check(P, AccessSize);
    return *P;
  }
  /// @}

  /// \name Pointer arithmetic (rule (f): bounds propagate unchanged).
  /// @{
  CheckedPtr operator+(ptrdiff_t N) const {
    return withBounds(Raw + N, B);
  }
  CheckedPtr operator-(ptrdiff_t N) const {
    return withBounds(Raw - N, B);
  }
  ptrdiff_t operator-(const CheckedPtr &O) const { return Raw - O.Raw; }
  CheckedPtr &operator+=(ptrdiff_t N) {
    Raw += N;
    return *this;
  }
  CheckedPtr &operator-=(ptrdiff_t N) {
    Raw -= N;
    return *this;
  }
  CheckedPtr &operator++() {
    ++Raw;
    return *this;
  }
  CheckedPtr &operator--() {
    --Raw;
    return *this;
  }
  /// @}

  /// Field access (rule (e): bounds_narrow to the selected member).
  /// For array members the result points at the first element with the
  /// whole array as bounds.
  template <typename M, typename U = T>
    requires std::is_class_v<U>
  auto field(M U::*Member) const {
    M *F = &(Raw->*Member);
    if constexpr (std::is_array_v<M>) {
      using Elem = std::remove_extent_t<M>;
      Elem *First = &(*F)[0];
      return CheckedPtr<Elem, Policy>::withBounds(First,
                                                  narrowed(F, sizeof(M)));
    } else {
      return CheckedPtr<M, Policy>::withBounds(F, narrowed(F, sizeof(M)));
    }
  }

  /// The raw pointer without any check (pointer comparisons, frees).
  T *raw() const { return Raw; }

  /// Escape event (rule (g)): the pointer is stored to memory or passed
  /// to uninstrumented code; its value must be in bounds.
  T *escape() const {
    if constexpr (Policy::CheckBounds)
      currentRuntime().boundsCheck(Raw, 0, B);
    return Raw;
  }

  /// The tracked bounds (wide when the policy does not track bounds).
  Bounds bounds() const {
    if constexpr (Policy::StoresBounds)
      return B;
    else
      return Bounds::wide();
  }

  explicit operator bool() const { return Raw != nullptr; }
  bool operator==(const CheckedPtr &O) const { return Raw == O.Raw; }
  bool operator!=(const CheckedPtr &O) const { return Raw != O.Raw; }
  bool operator==(std::nullptr_t) const { return Raw == nullptr; }

private:
  template <typename, typename> friend class CheckedPtr;

  EFFSAN_ALWAYS_INLINE void check(const void *P, size_t Size) const {
    if constexpr (Policy::CheckBounds)
      currentRuntime().boundsCheck(P, Size, B);
  }

  BoundsT narrowed(const void *Field, size_t Size) const {
    if constexpr (Policy::NarrowFields)
      return currentRuntime().boundsNarrow(B, Field, Size);
    else if constexpr (Policy::StoresBounds)
      return B; // Rule (f)-style propagation: allocation bounds only.
    else
      return BoundsT::wide();
  }

  T *Raw;
  [[no_unique_address]] BoundsT B;
};

/// Allocates Count objects of type T from \p RT bound to the reflected
/// dynamic type (the paper's type_malloc with the inferred allocation
/// type), returning a checked pointer with the allocation bounds.
template <typename T, typename Policy>
CheckedPtr<T, Policy> allocateChecked(Runtime &RT, size_t Count = 1) {
  const TypeInfo *Type =
      TypeOf<std::remove_cv_t<T>>::get(RT.typeContext());
  void *Mem = RT.allocate(Count * sizeof(T), Type);
  if constexpr (Policy::StoresBounds)
    return CheckedPtr<T, Policy>::withBounds(
        static_cast<T *>(Mem), Bounds::forObject(Mem, Count * sizeof(T)));
  else
    return CheckedPtr<T, Policy>::withBounds(static_cast<T *>(Mem),
                                             detail::NoBounds());
}

/// Frees a checked allocation (the paper's type_free).
template <typename T, typename Policy>
void deallocateChecked(Runtime &RT, CheckedPtr<T, Policy> Ptr) {
  RT.deallocate(Ptr.raw());
}

} // namespace effective

#endif // EFFECTIVE_CORE_CHECKEDPTR_H
