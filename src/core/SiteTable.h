//===- core/SiteTable.h - Check-site source attribution ---------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source attribution for check sites. PR 3 gave every instrumented
/// check a dense per-module SiteId so the runtime could index its
/// inline caches; this layer gives those ids a *meaning*: for each site
/// the instrumentation pass records where the check came from (source
/// file/line/column), what kind of check it is, which function it sits
/// in and what static type it checks against. Sessions collect the
/// per-module tables in a SiteTableRegistry, and every error path
/// resolves its site back to a SiteInfo, so reports read like the
/// paper's:
///
///   TYPE ERROR at spec.c:41:7 in hot_loop: allocated (int[10]),
///   used as (struct S) at offset 40
///
/// instead of naming an anonymous heap address.
///
/// Id spaces. A module numbers its sites densely from zero; a registry
/// *rebases* each registered table onto the next free range and the
/// interpreter adds the returned base when handing sites to the
/// runtime, so any number of modules coexist in one session without
/// collisions. Type-derived pseudo-sites (API paths with no
/// compiler-assigned site; see siteForType) carry the PseudoSiteBit
/// tag, which keeps them disjoint from every rebased range — a
/// pseudo-site can never accidentally resolve to another module's
/// source location.
///
/// Lifetime. The registry copies everything it is handed (strings
/// included), so a registered ir::Module may die while its errors are
/// still queued in a concurrent::ErrorRing: the SiteInfo pointers
/// carried by in-flight ErrorInfo events point into the registry, which
/// lives as long as the session/pool. Registered tables survive
/// Runtime::reset() for the same reason type handles do — attribution
/// metadata is immutable and address-free.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_SITETABLE_H
#define EFFECTIVE_CORE_SITETABLE_H

#include "core/SiteCache.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace effective {

class TypeInfo;

/// What a check site checks (mirrors the instrumentation opcodes).
enum class CheckSiteKind : uint8_t {
  TypeCheck,    ///< type_check — Figure 3 rules (a)-(d).
  BoundsGet,    ///< bounds_get — the -bounds variant's input check.
  BoundsCheck,  ///< bounds_check — rule (g).
  BoundsNarrow, ///< bounds_narrow — rule (e).
};

/// Returns a stable name for \p Kind ("type_check", ...).
const char *checkSiteKindName(CheckSiteKind Kind);

/// One module's site descriptions, dense by local SiteId. Built by the
/// instrumentation pass (ir::Module owns one) or by hand through the C
/// ABI; consumed by SiteTableRegistry::registerTable, which copies it.
struct SiteTable {
  /// One site's description (registration input).
  struct Entry {
    CheckSiteKind Kind = CheckSiteKind::TypeCheck;
    SourceLoc Loc;        ///< Invalid (line 0) = location unknown.
    std::string Function; ///< Enclosing function; empty = unknown.
    /// The static type the check verifies against (null for pure
    /// bounds checks, which carry no static type).
    const TypeInfo *StaticType = nullptr;
  };

  /// Source file the table's locations refer to.
  std::string File;
  /// Entries[I] describes local site I.
  std::vector<Entry> Entries;

  bool empty() const { return Entries.empty(); }
};

/// One resolved site, as carried by error reports. The string pointers
/// point into the owning registry and stay valid for its lifetime.
struct SiteInfo {
  SiteId Site = NoSite; ///< The *rebased* (registry-global) id.
  CheckSiteKind Kind = CheckSiteKind::TypeCheck;
  unsigned Line = 0;   ///< 1-based; 0 = unknown.
  unsigned Column = 0; ///< 1-based; 0 = unknown.
  const char *File = "";
  const char *Function = "";
  const TypeInfo *StaticType = nullptr;

  bool hasLocation() const { return Line != 0; }
};

/// A session's collection of registered site tables. Registration
/// copies the table and rebases its dense local ids onto the next free
/// global range; resolve() maps a rebased id back to its SiteInfo.
///
/// Thread-safe, and *read-mostly*: registrations (rare — module loads)
/// serialize on a writer mutex and publish an immutable snapshot of
/// the table index; resolve() — which sits on every error path, and
/// under an error storm is called from every erring worker at once —
/// is a wait-free acquire-load plus binary search, taking no lock.
/// Superseded snapshots are retired, not freed, until the registry
/// dies (bounded by the number of registrations, which is tiny), so a
/// reader can never observe a snapshot being reclaimed under it.
class SiteTableRegistry {
public:
  SiteTableRegistry() = default;
  SiteTableRegistry(const SiteTableRegistry &) = delete;
  SiteTableRegistry &operator=(const SiteTableRegistry &) = delete;

  /// Registers a copy of \p Table and returns the base id its local
  /// sites were rebased to (global id = base + local id). \p Key, when
  /// nonzero, identifies the producer — a *process-unique* id such as
  /// ir::Module::uid(), never a reusable address: re-registering the
  /// same key returns the original base instead of burning a new
  /// range, so re-running a module is idempotent, while a new module
  /// can never inherit a dead one's attributions. Registering an empty
  /// table returns NoSite.
  SiteId registerTable(const SiteTable &Table, uint64_t Key = 0);

  /// The SiteInfo for rebased id \p Site, or null when the id is
  /// NoSite, tagged as a pseudo-site, or outside every registered
  /// range. Lock-free (see the class comment) — safe to call from any
  /// number of erring threads concurrently with registrations.
  const SiteInfo *resolve(SiteId Site) const;

  /// Total sites across all registered tables.
  uint64_t numSites() const;

  /// Number of registered tables.
  size_t numTables() const;

private:
  struct Registered {
    uint64_t Key;
    SiteId Base;
    std::string File;
    /// Interned function-name storage backing Sites[*].Function.
    std::vector<std::unique_ptr<std::string>> Strings;
    /// Dense by local id; never mutated after registration, so
    /// pointers into it are stable.
    std::vector<SiteInfo> Sites;
  };

  /// One published table index: non-owning pointers to the Registered
  /// records, sorted by Base (registration order — bases are
  /// monotone). Immutable once published.
  struct Snapshot {
    std::vector<const Registered *> Tables;
  };

  /// Serializes writers (registerTable) and guards the owning
  /// containers below; resolve() never takes it.
  mutable std::mutex Lock;
  /// Owning storage, append-only; records are immutable once built, so
  /// published snapshots may point into them without synchronization.
  std::vector<std::unique_ptr<Registered>> Tables;
  /// The current reader-visible index (release-published, acquire-
  /// loaded). Null until the first registration.
  std::atomic<const Snapshot *> Current{nullptr};
  /// Owns every snapshot ever published (the current one last);
  /// superseded snapshots are retired here, not freed, so concurrent
  /// readers never race reclamation.
  std::vector<std::unique_ptr<const Snapshot>> Snapshots;
  SiteId NextBase = 0;
};

} // namespace effective

#endif // EFFECTIVE_CORE_SITETABLE_H
