//===- core/Layout.cpp - The layout function and hash table ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Layout.h"

#include "core/TypeContext.h"
#include "support/Compiler.h"
#include "support/Hashing.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

using namespace effective;

namespace {

/// Accumulates entries with the paper's tie-breaking: for a given
/// (key, offset) cell, non-end entries beat end entries, then wider
/// bounds beat narrower bounds.
class TableBuilder {
public:
  explicit TableBuilder(const TypeContext &Ctx) : Ctx(Ctx) {}

  void add(const TypeInfo *Key, uint64_t Offset, int64_t RelLo,
           int64_t RelHi, bool IsEnd) {
    assert(Key && "layout entry with null key");
    LayoutEntry Fresh{Key, Offset, RelLo, RelHi, IsEnd};
    auto [It, Inserted] = Cells.try_emplace({Key, Offset}, Fresh);
    if (Inserted)
      return;
    LayoutEntry &Old = It->second;
    if (Old.IsEnd != IsEnd) {
      if (Old.IsEnd)
        Old = Fresh;
      return;
    }
    if (Fresh.width() > Old.width())
      Old = Fresh;
  }

  /// Emits the (sub-)objects of one complete object of type \p T placed
  /// at offset \p Base; implements Figure 2 rules (a)-(g).
  void addObject(const TypeInfo *T, uint64_t Base);

  std::vector<LayoutEntry> take() {
    std::vector<LayoutEntry> Result;
    Result.reserve(Cells.size());
    for (auto &Cell : Cells)
      Result.push_back(Cell.second);
    return Result;
  }

private:
  void addScalar(const TypeInfo *T, uint64_t Base);
  void addArray(const ArrayType *T, uint64_t Base);
  void addRecord(const RecordType *T, uint64_t Base);
  void addFamField(const RecordType *R, const FieldInfo &Fam);

  struct CellKey {
    const TypeInfo *Key;
    uint64_t Offset;
    bool operator<(const CellKey &O) const {
      if (Offset != O.Offset)
        return Offset < O.Offset;
      return Key < O.Key;
    }
  };

  const TypeContext &Ctx;
  std::map<CellKey, LayoutEntry> Cells;
};

/// The key-reduction chain for array matching (rules (c)/(d)): a pointer
/// into an array of S matches the incomplete types S, and — when S is
/// itself an array — every further element reduction, all with the full
/// array's bounds ("sub-objects with wider bounds are preferred").
static void forEachReduction(const TypeInfo *S, auto Fn) {
  Fn(S);
  while (const auto *A = dyn_cast<ArrayType>(S)) {
    S = A->element();
    Fn(S);
  }
}

void TableBuilder::addScalar(const TypeInfo *T, uint64_t Base) {
  int64_t Size = static_cast<int64_t>(T->size());
  // Rule (a): base entry.
  add(T, Base, 0, Size, /*IsEnd=*/false);
  // Rule (b): one-past-the-end entry.
  add(T, Base + T->size(), -Size, 0, /*IsEnd=*/true);
  // Pointer members are additionally indexed under AnyPointer so a
  // static (void *) matches them (Section 5 coercions).
  if (T->isPointer()) {
    const TypeInfo *Any = Ctx.getAnyPointer();
    add(Any, Base, 0, Size, /*IsEnd=*/false);
    add(Any, Base + T->size(), -Size, 0, /*IsEnd=*/true);
  }
}

void TableBuilder::addArray(const ArrayType *T, uint64_t Base) {
  const TypeInfo *Elem = T->element();
  uint64_t ElemSize = Elem->size();
  uint64_t Count = T->count();
  int64_t ArraySize = static_cast<int64_t>(T->size());
  // The array itself is a sub-object: a pointer of static type T (from
  // a pointer-to-array) must match at the array's base and end.
  add(T, Base, 0, ArraySize, /*IsEnd=*/false);
  add(T, Base + T->size(), -ArraySize, 0, /*IsEnd=*/true);
  // Rules (c)/(d): every element boundary is also a pointer to the
  // containing array, keyed by each element reduction; the final
  // boundary is the array's one-past-the-end.
  for (uint64_t I = 0; I <= Count; ++I) {
    uint64_t Off = Base + I * ElemSize;
    int64_t Lo = static_cast<int64_t>(Base) - static_cast<int64_t>(Off);
    int64_t Hi = Lo + ArraySize;
    bool IsEnd = I == Count;
    forEachReduction(Elem, [&](const TypeInfo *Key) {
      add(Key, Off, Lo, Hi, IsEnd);
    });
  }
  // Recurse into each element's interior.
  for (uint64_t I = 0; I < Count; ++I)
    addObject(Elem, Base + I * ElemSize);
}

void TableBuilder::addFamField(const RecordType *R, const FieldInfo &Fam) {
  // A flexible array member U member[] is represented as U member[1]
  // (paper Section 5). Its array bounds extend to the allocation end,
  // and interior pointers may sit in any element, so the array-boundary
  // entries are unbounded in both directions and get narrowed to the
  // allocation at runtime. The normalized domain additionally covers one
  // element past sizeof(R): [sizeof(R), sizeof(R) + sizeof(U)).
  const auto *FamArray = cast<ArrayType>(Fam.Type);
  const TypeInfo *Elem = FamArray->element();
  uint64_t ElemSize = Elem->size();
  uint64_t Boundaries[2] = {Fam.Offset, R->size()};
  for (uint64_t Off : Boundaries) {
    forEachReduction(Elem, [&](const TypeInfo *Key) {
      add(Key, Off, RelNegInf, RelPosInf, /*IsEnd=*/false);
    });
  }
  // Interior of the first element and of the normalized "tail" element.
  addObject(Elem, Fam.Offset);
  if (R->size() + ElemSize > R->size()) // Guard overflow pedantically.
    addObject(Elem, R->size());
  // Inner boundaries inside the tail element for multi-boundary elements
  // are produced by the recursion above.
  (void)ElemSize;
}

void TableBuilder::addRecord(const RecordType *T, uint64_t Base) {
  assert(T->isComplete() && "layout of incomplete record");
  int64_t Size = static_cast<int64_t>(T->size());
  add(T, Base, 0, Size, /*IsEnd=*/false);
  add(T, Base + T->size(), -Size, 0, /*IsEnd=*/true);
  // Rules (e)-(g): members (and base classes) at their offsets; union
  // members all sit at offset zero, which the FieldInfo offsets already
  // reflect.
  std::span<const FieldInfo> Fields = T->fields();
  for (size_t I = 0; I < Fields.size(); ++I) {
    const FieldInfo &F = Fields[I];
    bool IsFam = T->famElement() && I + 1 == Fields.size();
    if (IsFam && Base == 0) {
      addFamField(T, F);
      continue;
    }
    addObject(F.Type, Base + F.Offset);
  }
}

void TableBuilder::addObject(const TypeInfo *T, uint64_t Base) {
  switch (T->kind()) {
  case TypeKind::Array:
    addArray(cast<ArrayType>(T), Base);
    return;
  case TypeKind::Struct:
  case TypeKind::Union:
    addRecord(cast<RecordType>(T), Base);
    return;
  default:
    addScalar(T, Base);
    return;
  }
}

} // namespace

LayoutTable LayoutTable::build(const TypeInfo *T) {
  assert(T && T->size() > 0 && "layout of an incomplete type");
  LayoutTable Table;
  Table.AllocType = T;
  Table.SizeofT = T->size();
  if (const auto *R = dyn_cast<RecordType>(T))
    if (R->famElement())
      Table.FamSize = R->famElement()->size();

  TableBuilder Builder(T->context());
  // The allocation type is the incomplete T[] (its element count is the
  // runtime allocation size), so the top-level entries are unbounded and
  // exist at both ends of the table domain — offset sizeof(T) doubles as
  // the base of "element 1" for multi-element allocations.
  for (uint64_t Off : {uint64_t(0), T->size()}) {
    forEachReduction(T, [&](const TypeInfo *Key) {
      Builder.add(Key, Off, RelNegInf, RelPosInf, /*IsEnd=*/false);
    });
  }
  Builder.addObject(T, 0);
  Table.Entries = Builder.take();

  // Re-emit every offset-0 interior entry at offset sizeof(T): for a
  // multi-element allocation that position is the base of element 1 and
  // must carry the same sub-object structure. (Safe for single-element
  // allocations too: runtime narrowing to the allocation bounds leaves
  // an empty range, so any access still faults the bounds check.)
  if (!Table.FamSize) {
    std::vector<LayoutEntry> Extra;
    for (const LayoutEntry &E : Table.Entries)
      if (E.Offset == 0 && !E.IsEnd)
        Extra.push_back(LayoutEntry{E.Key, T->size(), E.RelLo, E.RelHi,
                                    false});
    for (const LayoutEntry &E : Extra) {
      auto It = std::find_if(
          Table.Entries.begin(), Table.Entries.end(),
          [&](const LayoutEntry &O) {
            return O.Key == E.Key && O.Offset == E.Offset;
          });
      if (It == Table.Entries.end())
        Table.Entries.push_back(E);
      else if (It->IsEnd || It->width() < E.width())
        *It = E;
    }
  }

  std::sort(Table.Entries.begin(), Table.Entries.end(),
            [](const LayoutEntry &A, const LayoutEntry &B) {
              if (A.Offset != B.Offset)
                return A.Offset < B.Offset;
              return A.Key < B.Key;
            });
  Table.buildIndex();
  return Table;
}

void LayoutTable::buildIndex() {
  size_t Buckets = std::bit_ceil(Entries.size() * 2 + 1);
  Index.assign(Buckets, 0);
  IndexMask = Buckets - 1;
  for (size_t I = 0; I < Entries.size(); ++I) {
    uint64_t H = hashCombine(hashPointer(Entries[I].Key),
                             Entries[I].Offset);
    size_t Slot = H & IndexMask;
    while (Index[Slot] != 0)
      Slot = (Slot + 1) & IndexMask;
    Index[Slot] = static_cast<uint32_t>(I + 1);
  }
}

const LayoutEntry *LayoutTable::lookup(const TypeInfo *Key,
                                       uint64_t Offset) const {
  uint64_t H = hashCombine(hashPointer(Key), Offset);
  size_t Slot = H & IndexMask;
  while (uint32_t Id = Index[Slot]) {
    const LayoutEntry &E = Entries[Id - 1];
    if (E.Key == Key && E.Offset == Offset)
      return &E;
    Slot = (Slot + 1) & IndexMask;
  }
  return nullptr;
}

size_t LayoutTable::memoryBytes() const {
  return sizeof(*this) + Entries.capacity() * sizeof(LayoutEntry) +
         Index.capacity() * sizeof(uint32_t);
}
