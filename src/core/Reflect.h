//===- core/Reflect.h - Native C++ type reflection --------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps native C++ types to interned TypeInfo. In the paper this job is
/// done by the modified clang front end, which attaches DWARF-derived
/// type annotations to the IR; for natively-compiled workloads we derive
/// the same information with template specializations plus a reflection
/// macro for record types:
///
/// \code
///   struct Account { int Number[8]; float Balance; };
///   EFFECTIVE_REFLECT(Account, Number, Balance);
///   ...
///   const TypeInfo *T = TypeOf<Account>::get(TypeContext::global());
/// \endcode
///
/// Function types map to the "generic function" type, matching the
/// paper's treatment of virtual function tables as arrays of generic
/// functions.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_REFLECT_H
#define EFFECTIVE_CORE_REFLECT_H

#include "core/TypeContext.h"

#include <cstddef>
#include <vector>

namespace effective {

/// Primary template; specialized for every reflectable type. Using an
/// unreflected record type is a compile-time error.
template <typename T> struct TypeOf;

#define EFFSAN_REFLECT_PRIMITIVE(TYPE, GETTER)                               \
  template <> struct TypeOf<TYPE> {                                          \
    static const TypeInfo *get(TypeContext &Ctx) { return Ctx.GETTER(); }    \
  }

EFFSAN_REFLECT_PRIMITIVE(void, getVoid);
EFFSAN_REFLECT_PRIMITIVE(bool, getBool);
EFFSAN_REFLECT_PRIMITIVE(char, getChar);
EFFSAN_REFLECT_PRIMITIVE(signed char, getSChar);
EFFSAN_REFLECT_PRIMITIVE(unsigned char, getUChar);
EFFSAN_REFLECT_PRIMITIVE(short, getShort);
EFFSAN_REFLECT_PRIMITIVE(unsigned short, getUShort);
EFFSAN_REFLECT_PRIMITIVE(int, getInt);
EFFSAN_REFLECT_PRIMITIVE(unsigned int, getUInt);
EFFSAN_REFLECT_PRIMITIVE(long, getLong);
EFFSAN_REFLECT_PRIMITIVE(unsigned long, getULong);
EFFSAN_REFLECT_PRIMITIVE(long long, getLongLong);
EFFSAN_REFLECT_PRIMITIVE(unsigned long long, getULongLong);
EFFSAN_REFLECT_PRIMITIVE(float, getFloat);
EFFSAN_REFLECT_PRIMITIVE(double, getDouble);
EFFSAN_REFLECT_PRIMITIVE(long double, getLongDouble);

#undef EFFSAN_REFLECT_PRIMITIVE

// Qualifiers do not affect the dynamic type ([16] 6.5.0 p7).
template <typename T> struct TypeOf<const T> : TypeOf<T> {};
template <typename T> struct TypeOf<volatile T> : TypeOf<T> {};
template <typename T> struct TypeOf<const volatile T> : TypeOf<T> {};

template <typename T> struct TypeOf<T *> {
  static const TypeInfo *get(TypeContext &Ctx) {
    return Ctx.getPointer(TypeOf<T>::get(Ctx));
  }
};

template <typename T, size_t N> struct TypeOf<T[N]> {
  static const TypeInfo *get(TypeContext &Ctx) {
    return Ctx.getArray(TypeOf<T>::get(Ctx), N);
  }
};

// All function types collapse to the generic function type (the paper
// treats virtual function tables as arrays of generic functions).
template <typename R, typename... A> struct TypeOf<R(A...)> {
  static const TypeInfo *get(TypeContext &Ctx) {
    return Ctx.getGenericFunction();
  }
};

/// Helper used by the reflection macros to assemble and define a record.
class ReflectBuilder {
public:
  ReflectBuilder(TypeContext &Ctx, TypeKind Kind, std::string_view Tag)
      : Ctx(Ctx), Record(Ctx.createRecord(Kind, Tag)) {}

  RecordType *record() { return Record; }

  void addField(std::string_view Name, const TypeInfo *Type,
                uint64_t Offset, bool IsBase = false) {
    Fields.push_back(FieldInfo{Name, Type, Offset, IsBase});
  }

  /// Adds the hidden virtual-table pointer of a polymorphic class as a
  /// pointer-to-generic-function member at offset 0.
  void addVTablePointer() {
    addField("__vptr", Ctx.getPointer(Ctx.getGenericFunction()), 0);
  }

  const TypeInfo *finish(uint64_t Size, uint32_t Align,
                         const TypeInfo *FamElement = nullptr) {
    Ctx.defineRecord(Record, Fields, Size, Align, FamElement);
    return Record;
  }

private:
  TypeContext &Ctx;
  RecordType *Record;
  std::vector<FieldInfo> Fields;
};

} // namespace effective

//===----------------------------------------------------------------------===//
// Preprocessor FOR_EACH machinery (up to 24 fields).
//===----------------------------------------------------------------------===//

#define EFFSAN_PP_NARG(...)                                                  \
  EFFSAN_PP_NARG_(__VA_ARGS__, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14,  \
                  13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0)
#define EFFSAN_PP_NARG_(_1, _2, _3, _4, _5, _6, _7, _8, _9, _10, _11, _12,  \
                        _13, _14, _15, _16, _17, _18, _19, _20, _21, _22,   \
                        _23, _24, N, ...)                                    \
  N
#define EFFSAN_PP_CAT(A, B) EFFSAN_PP_CAT_(A, B)
#define EFFSAN_PP_CAT_(A, B) A##B

#define EFFSAN_PP_FE_1(M, T, X) M(T, X)
#define EFFSAN_PP_FE_2(M, T, X, ...) M(T, X) EFFSAN_PP_FE_1(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_3(M, T, X, ...) M(T, X) EFFSAN_PP_FE_2(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_4(M, T, X, ...) M(T, X) EFFSAN_PP_FE_3(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_5(M, T, X, ...) M(T, X) EFFSAN_PP_FE_4(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_6(M, T, X, ...) M(T, X) EFFSAN_PP_FE_5(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_7(M, T, X, ...) M(T, X) EFFSAN_PP_FE_6(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_8(M, T, X, ...) M(T, X) EFFSAN_PP_FE_7(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_9(M, T, X, ...) M(T, X) EFFSAN_PP_FE_8(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_10(M, T, X, ...) M(T, X) EFFSAN_PP_FE_9(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_11(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_10(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_12(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_11(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_13(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_12(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_14(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_13(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_15(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_14(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_16(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_15(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_17(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_16(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_18(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_17(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_19(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_18(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_20(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_19(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_21(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_20(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_22(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_21(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_23(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_22(M, T, __VA_ARGS__)
#define EFFSAN_PP_FE_24(M, T, X, ...)                                       \
  M(T, X) EFFSAN_PP_FE_23(M, T, __VA_ARGS__)

#define EFFSAN_PP_FOR_EACH(M, T, ...)                                        \
  EFFSAN_PP_CAT(EFFSAN_PP_FE_, EFFSAN_PP_NARG(__VA_ARGS__))                  \
  (M, T, __VA_ARGS__)

/// Emits one FieldInfo for a named member.
#define EFFSAN_REFLECT_FIELD(TYPE, FIELD)                                    \
  Builder.addField(#FIELD,                                                   \
                   ::effective::TypeOf<decltype(TYPE::FIELD)>::get(Ctx),     \
                   offsetof(TYPE, FIELD));

/* Concurrency: the fast path accepts only *complete* cached records;
 * a build is serialized by the context's recursive reflect guard, so
 * two threads reflecting TYPE first-use-concurrently agree on ONE
 * record (the loser of the race finds the winner's complete record on
 * its double-check), and no thread can observe a record whose fields
 * are still being written. The early setCached (before the fields) is
 * what lets a self-referential TYPE find its own in-progress record
 * through the plain getCached on the re-entrant path. */
#define EFFSAN_REFLECT_BODY(TYPE, KIND, PRELUDE, ...)                        \
  template <> struct effective::TypeOf<TYPE> {                               \
    static const ::effective::TypeInfo *get(::effective::TypeContext &Ctx) { \
      static char CacheTag;                                                  \
      if (const auto *Cached = Ctx.getCachedComplete(&CacheTag))             \
        return Cached;                                                       \
      auto ReflectGuard = Ctx.reflectGuard();                                \
      if (const auto *Cached = Ctx.getCached(&CacheTag))                     \
        return Cached;                                                       \
      ::effective::ReflectBuilder Builder(Ctx, KIND, #TYPE);                 \
      Ctx.setCached(&CacheTag, Builder.record());                            \
      PRELUDE                                                                \
      EFFSAN_PP_FOR_EACH(EFFSAN_REFLECT_FIELD, TYPE, __VA_ARGS__)            \
      return Builder.finish(sizeof(TYPE), alignof(TYPE));                    \
    }                                                                        \
  }

/// Reflects a plain struct: EFFECTIVE_REFLECT(S, f1, f2, ...). Must be
/// used at global namespace scope.
#define EFFECTIVE_REFLECT(TYPE, ...)                                         \
  EFFSAN_REFLECT_BODY(TYPE, ::effective::TypeKind::Struct, , __VA_ARGS__)

/// Reflects a union.
#define EFFECTIVE_REFLECT_UNION(TYPE, ...)                                   \
  EFFSAN_REFLECT_BODY(TYPE, ::effective::TypeKind::Union, , __VA_ARGS__)

/// Reflects a polymorphic class (hidden vtable pointer at offset 0).
#define EFFECTIVE_REFLECT_POLY(TYPE, ...)                                    \
  EFFSAN_REFLECT_BODY(TYPE, ::effective::TypeKind::Struct,                   \
                      Builder.addVTablePointer();, __VA_ARGS__)

/// Reflects a class with one (possibly polymorphic) base class; the base
/// becomes an implicit embedded member at its real offset (Section 3).
#define EFFECTIVE_REFLECT_DERIVED(TYPE, BASE, ...)                           \
  EFFSAN_REFLECT_BODY(                                                       \
      TYPE, ::effective::TypeKind::Struct,                                   \
      Builder.addField(                                                      \
          #BASE, ::effective::TypeOf<BASE>::get(Ctx),                        \
          (uint64_t)(reinterpret_cast<char *>(static_cast<BASE *>(          \
                         reinterpret_cast<TYPE *>(sizeof(TYPE)))) -          \
                     reinterpret_cast<char *>(sizeof(TYPE))),                \
          /*IsBase=*/true);,                                                 \
      __VA_ARGS__)

#endif // EFFECTIVE_CORE_REFLECT_H
