//===- core/Layout.h - The layout function and hash table -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory layout function L (Figure 2 of the paper) and its layout
/// hash table implementation (Section 5, Example 6).
///
/// For an allocation type T the table maps (S, k) — an incomplete static
/// type S and a normalized byte offset k in [0, sizeof(T)] — to the
/// relative bounds of the widest matching (sub-)object at that offset:
///
///   T x S x k  ->  -delta .. sizeof(S[N]) - delta
///
/// Relative bounds use INT64_MIN/INT64_MAX as -inf/+inf; the runtime
/// narrows them to the allocation bounds (the table describes the
/// incomplete allocation type T[], whose top-level entry is unbounded).
///
/// The paper's tie-breaking rules are applied at build time: (1)
/// sub-objects with wider bounds are preferred, and (2) one-past-the-end
/// entries (Figure 2 rule (b)) are matched last.
///
/// Coercions (Section 5 "automatic coercions"):
///  * every pointer member is additionally indexed under the AnyPointer
///    sentinel so a static (void *) matches any pointer sub-object;
///  * the runtime probes key (void *) when an exact pointer lookup
///    fails, implementing (T*) -> (void*) member coercion;
///  * the runtime probes key (char) when everything else fails,
///    implementing the paper's (char[]) -> (S[]) second lookup.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_LAYOUT_H
#define EFFECTIVE_CORE_LAYOUT_H

#include "core/Bounds.h"
#include "core/TypeInfo.h"

#include <cstdint>
#include <vector>

namespace effective {

/// Relative-bounds sentinels.
inline constexpr int64_t RelNegInf = INT64_MIN;
inline constexpr int64_t RelPosInf = INT64_MAX;

/// One layout hash table entry: at normalized offset \c Offset within an
/// allocation of type T, a pointer whose static (incomplete) type is
/// \c Key addresses a sub-object spanning [p + RelLo, p + RelHi).
struct LayoutEntry {
  const TypeInfo *Key = nullptr;
  uint64_t Offset = 0;
  int64_t RelLo = 0;
  int64_t RelHi = 0;
  /// Entry describes a one-past-the-end position (rule (b)).
  bool IsEnd = false;

  int64_t width() const {
    if (RelLo == RelNegInf || RelHi == RelPosInf)
      return RelPosInf;
    return RelHi - RelLo;
  }
};

/// Converts a layout-relative bound pair into absolute bounds for the
/// pointer \p P, clamped to the allocation (Figure 6 line 20). The ONE
/// definition shared by the slow path and the inline-cache hit path —
/// like normalizeOffsetRaw, factored here so cached and uncached
/// checks can never diverge.
inline Bounds relativeBoundsToAbsolute(int64_t RelLo, int64_t RelHi,
                                       uintptr_t P, Bounds Alloc) {
  Bounds B;
  B.Lo = RelLo == RelNegInf
             ? Alloc.Lo
             : static_cast<uintptr_t>(static_cast<int64_t>(P) + RelLo);
  B.Hi = RelHi == RelPosInf
             ? Alloc.Hi
             : static_cast<uintptr_t>(static_cast<int64_t>(P) + RelHi);
  return B.intersect(Alloc);
}

/// Immutable open-addressed hash table of LayoutEntry, built once per
/// allocation type (lazily, see TypeInfo::layout()). Lookup is O(1) with
/// no locks, making the runtime's type_check constant-time (Section 5).
class LayoutTable {
public:
  /// Builds the table for allocation type \p T (Figure 2 rules (a)-(g)
  /// plus the paper's extensions). \p T must be a complete object type.
  static LayoutTable build(const TypeInfo *T);

  /// Probes for (\p Key, \p Offset); null if absent. \p Offset must be
  /// normalized (see normalizeOffset()).
  const LayoutEntry *lookup(const TypeInfo *Key, uint64_t Offset) const;

  /// Normalizes a raw byte offset \p K (pointer minus object base) into
  /// the table domain [0, sizeof(T)] (or the extended FAM domain):
  ///  * K <= sizeof(T): unchanged (end entries live at K == sizeof(T));
  ///  * FAM records:    K := (K - sizeof(T)) mod famSize + sizeof(T);
  ///  * otherwise:      K := K mod sizeof(T), except that the exact
  ///    end-of-allocation (\p K == \p AllocSize) maps to sizeof(T) so
  ///    that one-past-the-end keeps rule-(b) semantics.
  uint64_t normalizeOffset(uint64_t K, uint64_t AllocSize) const {
    return normalizeOffsetRaw(K, AllocSize, SizeofT, FamSize);
  }

  /// The table-free form of normalizeOffset, parameterized on the
  /// allocation type's sizeof and FAM element size. The type-check
  /// inline cache (core/SiteCache.h) memoizes those two values per
  /// entry and normalizes on its hit path through this single
  /// definition, so cached and uncached checks can never diverge.
  static uint64_t normalizeOffsetRaw(uint64_t K, uint64_t AllocSize,
                                     uint64_t SizeofT, uint64_t FamSize) {
    if (K <= SizeofT)
      return K;
    if (FamSize)
      return (K - SizeofT) % FamSize + SizeofT;
    uint64_t R = K % SizeofT;
    if (R == 0 && K == AllocSize)
      return SizeofT; // Exact one-past-the-end of the allocation.
    return R;
  }

  /// The allocation type this table describes.
  const TypeInfo *allocationType() const { return AllocType; }

  /// sizeof(allocation type) — the table domain bound.
  uint64_t sizeofT() const { return SizeofT; }

  /// Element size of a trailing flexible array member, 0 if none.
  uint64_t famSize() const { return FamSize; }

  /// All entries, for iteration in tests and debugging (sorted by
  /// offset, then by key identity).
  const std::vector<LayoutEntry> &entries() const { return Entries; }

  size_t numEntries() const { return Entries.size(); }

  /// Memory consumed by the table (meta-data overhead accounting).
  size_t memoryBytes() const;

private:
  LayoutTable() = default;

  void buildIndex();

  const TypeInfo *AllocType = nullptr;
  uint64_t SizeofT = 0;
  /// Element size of a trailing flexible array member, 0 if none.
  uint64_t FamSize = 0;
  std::vector<LayoutEntry> Entries;
  /// Open-addressed index into Entries (+1; 0 = empty), power-of-two.
  std::vector<uint32_t> Index;
  uint64_t IndexMask = 0;
};

} // namespace effective

#endif // EFFECTIVE_CORE_LAYOUT_H
