//===- core/Meta.h - Object meta data header --------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The object META header (Figure 5 of the paper): a type/size pair
/// stored immediately before every typed allocation, at the base address
/// returned by the low-fat base(p) operation. It is "analogous to a
/// malloc header that is invisible to the program" — the C/C++ object
/// layout itself is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_META_H
#define EFFECTIVE_CORE_META_H

#include <cstdint>

namespace effective {

class TypeInfo;

/// The META header of Figure 5/6. POD; 16 bytes; survives free until the
/// block is reallocated (the allocator's free-list link is placed after
/// it).
struct MetaHeader {
  /// The dynamic (allocation) type; the FREE type after deallocation;
  /// null for untyped low-fat blocks.
  const TypeInfo *Type;
  /// The requested allocation size in bytes (the paper's meta->size).
  uint64_t Size;
};

static_assert(sizeof(MetaHeader) == 16, "META header must be 16 bytes");

} // namespace effective

#endif // EFFECTIVE_CORE_META_H
