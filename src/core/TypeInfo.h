//===- core/TypeInfo.h - Dynamic type representation ------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic type representation of Section 3 of the EffectiveSan paper:
/// a qualifier-free version of the C/C++ "effective type". Types are
/// interned by TypeContext, so pointer equality of \c TypeInfo is type
/// equality — mirroring the paper's "type meta data defined once per
/// type" (weak-symbol) scheme.
///
/// The special FREE type (Figure 2 rule (h)) marks deallocated memory and
/// is distinct from every C/C++ type, reducing use-after-free detection
/// to type checking.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_CORE_TYPEINFO_H
#define EFFECTIVE_CORE_TYPEINFO_H

#include "support/Casting.h"

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace effective {

class LayoutTable;
class TypeContext;

/// Discriminator for the TypeInfo hierarchy. Primitive kinds come first
/// so classof() predicates are simple range checks.
enum class TypeKind : uint8_t {
  // Primitive types.
  Void,
  Bool,
  Char,
  SChar,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  LongLong,
  ULongLong,
  Float,
  Double,
  LongDouble,
  // The dynamic type of deallocated memory (Section 3).
  Free,
  // The dynamic type of a stack object whose frame has returned. A
  // distinct FREE flavor: any access through it is a temporal error
  // like Free, but the runtime can classify it as a stack
  // use-after-return instead of a heap use-after-free.
  StackFree,
  // A sentinel used internally by the layout table to implement the
  // (T*) <-> (void*) coercion; never the type of a real object.
  AnyPointer,
  // Derived types.
  Pointer,
  Array,
  Function,
  Struct,
  Union,
};

/// Returns a human-readable spelling of \p Kind (primitives only).
std::string_view primitiveKindName(TypeKind Kind);

/// Base of the dynamic type hierarchy. Immutable after construction
/// (records: after completion); instances are interned and owned by a
/// TypeContext.
class TypeInfo {
public:
  TypeKind kind() const { return Kind; }

  /// sizeof(T) in bytes. Zero only for void, function types and
  /// incomplete records.
  uint64_t size() const { return Size; }

  /// alignof(T) in bytes.
  uint32_t align() const { return Align; }

  /// For primitives the spelling, for records the tag (may be empty for
  /// anonymous records), empty otherwise.
  std::string_view name() const { return Name; }

  bool isPrimitive() const {
    return Kind >= TypeKind::Void && Kind <= TypeKind::LongDouble;
  }
  bool isVoid() const { return Kind == TypeKind::Void; }
  /// True for both FREE flavors — every temporal check tests this, so
  /// retired stack objects trip the same machinery as freed heap ones.
  bool isFree() const {
    return Kind == TypeKind::Free || Kind == TypeKind::StackFree;
  }
  /// True only for the stack-frame-returned flavor of FREE.
  bool isStackFree() const { return Kind == TypeKind::StackFree; }
  bool isCharLike() const {
    return Kind == TypeKind::Char || Kind == TypeKind::SChar ||
           Kind == TypeKind::UChar;
  }
  bool isInteger() const {
    return Kind >= TypeKind::Bool && Kind <= TypeKind::ULongLong;
  }
  bool isFloating() const {
    return Kind >= TypeKind::Float && Kind <= TypeKind::LongDouble;
  }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isRecord() const {
    return Kind == TypeKind::Struct || Kind == TypeKind::Union;
  }

  /// Renders the full type spelling, e.g. "struct T", "int[3]",
  /// "char *", "void (int, float)".
  std::string str() const;

  /// The layout hash table for this type as an allocation type (Section
  /// 5). Built lazily on first use; thread-safe; immutable afterwards.
  const LayoutTable &layout() const;

  /// The TypeContext that owns (and interned) this type.
  const TypeContext &context() const { return *Context; }

protected:
  TypeInfo(TypeKind Kind, uint64_t Size, uint32_t Align,
           std::string_view Name)
      : Size(Size), Align(Align), Kind(Kind), Name(Name) {}

  // Mutable by TypeContext when completing records.
  uint64_t Size;
  uint32_t Align;

private:
  friend class TypeContext;

  TypeKind Kind;
  std::string_view Name;
  const TypeContext *Context = nullptr;
  mutable std::atomic<const LayoutTable *> Layout{nullptr};
};

/// A fundamental type (void, bool, char, ..., long double), the FREE
/// type, or the AnyPointer sentinel.
class PrimitiveType : public TypeInfo {
public:
  static bool classof(const TypeInfo *T) {
    return T->kind() <= TypeKind::AnyPointer;
  }

private:
  friend class TypeContext;
  PrimitiveType(TypeKind Kind, uint64_t Size, uint32_t Align)
      : TypeInfo(Kind, Size, Align, primitiveKindName(Kind)) {}
};

/// T* — a pointer to a pointee type.
class PointerType : public TypeInfo {
public:
  const TypeInfo *pointee() const { return Pointee; }

  static bool classof(const TypeInfo *T) {
    return T->kind() == TypeKind::Pointer;
  }

private:
  friend class TypeContext;
  PointerType(const TypeInfo *Pointee)
      : TypeInfo(TypeKind::Pointer, sizeof(void *), alignof(void *), {}),
        Pointee(Pointee) {}

  const TypeInfo *Pointee;
};

/// T[N] — a complete array type. Dynamic (allocation) types are always
/// complete (Section 3); the "incomplete" static type T[] used by checks
/// is represented by the element type itself.
class ArrayType : public TypeInfo {
public:
  const TypeInfo *element() const { return Element; }
  uint64_t count() const { return Count; }

  /// Strips all array levels: int[3][2] -> int.
  const TypeInfo *scalarElement() const;

  static bool classof(const TypeInfo *T) {
    return T->kind() == TypeKind::Array;
  }

private:
  friend class TypeContext;
  ArrayType(const TypeInfo *Element, uint64_t Count)
      : TypeInfo(TypeKind::Array, Element->size() * Count, Element->align(),
                 {}),
        Element(Element), Count(Count) {}

  const TypeInfo *Element;
  uint64_t Count;
};

/// A function type. Function types are never object types; they only
/// occur as pointees. The "generic" function type stands in for entries
/// of virtual function tables (the paper treats vtables as arrays of
/// generic functions).
class FunctionType : public TypeInfo {
public:
  const TypeInfo *returnType() const { return Return; }
  std::span<const TypeInfo *const> params() const { return Params; }
  bool isGeneric() const { return Generic; }

  static bool classof(const TypeInfo *T) {
    return T->kind() == TypeKind::Function;
  }

private:
  friend class TypeContext;
  FunctionType(const TypeInfo *Return, std::span<const TypeInfo *const> Ps,
               bool Generic)
      : TypeInfo(TypeKind::Function, 0, 1, {}), Return(Return), Params(Ps),
        Generic(Generic) {}

  const TypeInfo *Return;
  std::span<const TypeInfo *const> Params;
  bool Generic;
};

/// One member of a record. Base classes are represented as embedded
/// members (Section 3: "we consider any base class to be an implicit
/// embedded member").
struct FieldInfo {
  std::string_view Name;
  const TypeInfo *Type = nullptr;
  uint64_t Offset = 0;
  bool IsBase = false;
};

/// struct/union/class. Created incomplete by TypeContext::createRecord()
/// and completed exactly once via TypeContext::defineRecord(). Two
/// records are the same dynamic type iff they are the same object;
/// frontends decide whether a re-declared tag refers to an existing
/// record (same layout) or is a genuinely different type (the paper's
/// gcc "incompatible definitions for the same tag" errors).
class RecordType : public TypeInfo {
public:
  std::span<const FieldInfo> fields() const { return Fields; }
  bool isUnion() const { return kind() == TypeKind::Union; }
  bool isComplete() const { return Complete; }

  /// Element type of a trailing flexible array member, or null. The FAM
  /// itself appears in fields() as a one-element array, per the paper's
  /// "treated as equivalent to U member[1]" convention.
  const TypeInfo *famElement() const { return FamElement; }

  static bool classof(const TypeInfo *T) {
    return T->kind() == TypeKind::Struct || T->kind() == TypeKind::Union;
  }

private:
  friend class TypeContext;
  RecordType(TypeKind Kind, std::string_view Tag)
      : TypeInfo(Kind, 0, 1, Tag) {}

  std::span<const FieldInfo> Fields;
  const TypeInfo *FamElement = nullptr;
  bool Complete = false;
};

} // namespace effective

#endif // EFFECTIVE_CORE_TYPEINFO_H
