//===- bytecode/Disasm.cpp - Bytecode disassembler ------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Disasm.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace effective;
using namespace effective::bytecode;

static const char *const OpNames[NumBcOps] = {
#define EFFSAN_BC_NAME(Name) #Name,
    EFFSAN_BC_OPCODE_LIST(EFFSAN_BC_NAME)
#undef EFFSAN_BC_NAME
};

const char *bytecode::opName(BcOp Op) {
  size_t I = static_cast<size_t>(Op);
  return I < NumBcOps ? OpNames[I] : "<bad-op>";
}

bool bytecode::opFromName(std::string_view Name, BcOp &Out) {
  for (size_t I = 0; I < NumBcOps; ++I) {
    if (Name == OpNames[I]) {
      Out = static_cast<BcOp>(I);
      return true;
    }
  }
  return false;
}

/// Canonical line: "  <pc>: <Mnemonic> a=<u> b=<u> c=<u> imm=0x<x>
/// aux=0x<x> ty=0x<x>". All fields always present so the parser is one
/// sscanf; the pc is redundant (line order defines it) but makes branch
/// targets legible.
static void renderInst(size_t Pc, const Inst &In, std::string &Out) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "  %4zu: %-20s a=%u b=%u c=%u imm=0x%" PRIx64 " aux=0x%" PRIx64
                " ty=0x%" PRIxPTR,
                Pc, opName(In.Op), In.A, In.B, In.C, In.Imm, In.Aux,
                reinterpret_cast<uintptr_t>(In.Type));
  Out += Buf;
  if (In.Type) {
    Out += " ; type=";
    Out += In.Type->str();
  }
  Out += '\n';
}

std::string bytecode::disassemble(const BcFunction &F) {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "fn %s regs=%u bregs=%u params=%zu slots=%zu code=%zu\n",
                F.Name.c_str(), F.NumRegs, F.NumBRegs, F.ParamRegs.size(),
                F.Slots.size(), F.Code.size());
  Out += Buf;
  for (size_t Pc = 0; Pc < F.Code.size(); ++Pc)
    renderInst(Pc, F.Code[Pc], Out);
  return Out;
}

std::string bytecode::disassemble(const Program &P) {
  std::string Out;
  for (const BcFunction &F : P.Funcs) {
    Out += disassemble(F);
    Out += '\n';
  }
  return Out;
}

bool bytecode::parseDisassembly(
    const std::string &Text,
    std::vector<std::pair<std::string, std::vector<Inst>>> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    if (size_t Semi = Line.find(" ;"); Semi != std::string::npos)
      Line.resize(Semi);

    char Name[128];
    if (std::sscanf(Line.c_str(), "fn %127s", Name) == 1 &&
        Line.rfind("fn ", 0) == 0) {
      Out.emplace_back(Name, std::vector<Inst>());
      continue;
    }

    size_t Pc;
    unsigned A, B, C;
    unsigned long long Imm, Aux, Ty;
    char Mn[64];
    int N = std::sscanf(Line.c_str(),
                        " %zu: %63s a=%u b=%u c=%u imm=%llx aux=%llx ty=%llx",
                        &Pc, Mn, &A, &B, &C, &Imm, &Aux, &Ty);
    if (N != 8)
      continue; // Not an instruction line (blank, commentary).
    BcOp Op;
    if (!opFromName(Mn, Op))
      return false;
    if (Out.empty())
      Out.emplace_back(std::string(), std::vector<Inst>());
    Inst In;
    In.Op = Op;
    In.A = static_cast<uint16_t>(A);
    In.B = static_cast<uint16_t>(B);
    In.C = static_cast<uint16_t>(C);
    In.Imm = Imm;
    In.Aux = Aux;
    In.Type = reinterpret_cast<const TypeInfo *>(
        static_cast<uintptr_t>(Ty));
    Out.back().second.push_back(In);
  }
  return true;
}
