//===- bytecode/VM.h - Direct-threaded bytecode VM --------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a bytecode::Program: direct-threaded computed-goto dispatch
/// on GCC/Clang (a portable `switch` loop behind
/// EFFSAN_BC_SWITCH_DISPATCH), flat reused register/bounds/slot stacks,
/// and check superinstructions that reach the runtime's
/// EFFSAN_ALWAYS_INLINE fast paths in one dispatch.
///
/// The API and observable behaviour mirror interp::run exactly — same
/// RunOptions/RunResult, same ExecutedChecks, same fault messages, same
/// error-report stream — with one documented exception: RunResult.Steps
/// counts *bytecode* instructions, so it is smaller than the
/// tree-walker's count for the same program (fusion folds two or three
/// IR steps into one dispatch). The differential tests compare
/// everything but Steps.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_BYTECODE_VM_H
#define EFFECTIVE_BYTECODE_VM_H

#include "bytecode/Bytecode.h"
#include "interp/Interp.h"

namespace effective {

class Sanitizer;

namespace bytecode {

using interp::ExecutedChecks;
using interp::RunOptions;
using interp::RunResult;

/// Runs \p Entry with checks dispatched straight at the runtime.
RunResult run(const Program &P, Runtime &RT, const RunOptions &Opts = {},
              std::string_view Entry = "main");

/// Runs \p Entry with check opcodes dispatched through \p Session, so
/// its CheckPolicy governs what executed checks do.
RunResult run(const Program &P, Sanitizer &Session,
              const RunOptions &Opts = {}, std::string_view Entry = "main");

} // namespace bytecode
} // namespace effective

#endif // EFFECTIVE_BYTECODE_VM_H
