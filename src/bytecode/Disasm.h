//===- bytecode/Disasm.h - Bytecode disassembler ----------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a compiled Program as text and parses the canonical lines
/// back. Every instruction line is self-contained and machine-parsable
/// (mnemonic plus all operand fields in fixed key=value form; anything
/// after ';' is human commentary and ignored), so the round trip
///
///   parseDisassembly(disassemble(P)) == P.Funcs[*].Code
///
/// holds field-for-field — the bytecode_test enforces it. Type operands
/// are printed as raw TypeInfo pointer bits: the text is a debugging
/// aid and an in-process round-trip format, not a serialization.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_BYTECODE_DISASM_H
#define EFFECTIVE_BYTECODE_DISASM_H

#include "bytecode/Bytecode.h"

namespace effective {
namespace bytecode {

/// One function, one instruction per line, preceded by an "fn" header.
std::string disassemble(const BcFunction &F);

/// The whole program (every function in order).
std::string disassemble(const Program &P);

/// Parses disassembly text back into per-function code arrays. Lines
/// that are not canonical instruction lines ("fn" headers aside, which
/// start a new function) are ignored. Returns false on a malformed
/// instruction line or an unknown mnemonic.
bool parseDisassembly(
    const std::string &Text,
    std::vector<std::pair<std::string, std::vector<Inst>>> &Out);

} // namespace bytecode
} // namespace effective

#endif // EFFECTIVE_BYTECODE_DISASM_H
