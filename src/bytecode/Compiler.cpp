//===- bytecode/Compiler.cpp - IR -> bytecode lowering --------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One pass per function: walk the blocks in order, emit bytecode,
/// record branch fixups against block ids, then patch them to pc
/// offsets. Everything the tree-walker re-derives per execution is
/// folded here once: ConstInt canonicalization, record field offsets,
/// element sizes, integer-norm kinds, signedness, the compare flavour.
///
/// Fusion runs at emit time and only ever looks ahead inside the
/// current block — branches always target block starts, so a fused
/// superinstruction can never hide a branch target. The patterns are
/// exactly the sequences InstrumentPass emits in front of an access:
///
///   type_check p; bounds_check p,size,b; load/store  -> TypeCheckLoad/Store
///   type_check p; bounds_check p,size,b              -> TypeCheckBounds
///   type_check p; load/store (check elided)          -> TypeCheckLoad, Aux=0
///   bounds_get  p; ... (same three shapes)           -> BoundsGetCheck*
///   bounds_check p,size,b; load/store                -> BoundsCheckLoad/Store
///
/// A fused handler bumps the same ExecutedChecks counters, performs the
/// same null-pointer short-circuits, and reports through the same
/// runtime entry points as the unfused sequence — the differential
/// tests hold the two engines to bit-identical results.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Compiler.h"

#include "core/TypeInfo.h"
#include "interp/ExecSupport.h"
#include "support/Casting.h"

using namespace effective;
using namespace effective::bytecode;
using namespace effective::ir;

namespace {

/// Register-file width cap: operands are 16 bits with NoR16 reserved.
constexpr uint32_t MaxRegs = 0xFFFE;

class Compiler {
public:
  Compiler(const Module &M, Program &P, const CompileOptions &Opts)
      : M(M), P(P), Opts(Opts) {}

  bool run() {
    P.M = &M;
    P.Funcs.reserve(M.Functions.size());
    for (const auto &F : M.Functions) {
      P.Funcs.emplace_back();
      if (!compileFunction(*F, P.Funcs.back()))
        return false;
    }
    return true;
  }

  std::string Error;

private:
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  static uint16_t r16(Reg R) {
    return R == NoReg ? NoR16 : static_cast<uint16_t>(R);
  }
  static uint16_t b16(BReg B) {
    return B == NoBReg ? NoR16 : static_cast<uint16_t>(B);
  }
  /// Packs a bounds dst/src pair into an Aux field (NoB32 = wide src).
  static uint64_t packB(BReg BDst, BReg BSrc) {
    uint32_t D = BDst == NoBReg ? NoB32 : static_cast<uint32_t>(BDst);
    uint32_t S = BSrc == NoBReg ? NoB32 : static_cast<uint32_t>(BSrc);
    return (static_cast<uint64_t>(D) << 32) | S;
  }
  static uint64_t packSites(SiteId First, SiteId Second) {
    return static_cast<uint64_t>(static_cast<uint32_t>(First)) |
           (static_cast<uint64_t>(static_cast<uint32_t>(Second)) << 32);
  }

  /// The compile-time residue of exec::normalizeInt for \p T.
  static Norm normFor(const TypeInfo *T) {
    if (!T)
      return Norm::None;
    switch (T->kind()) {
    case TypeKind::Bool:
      return Norm::Bool;
    case TypeKind::Char:
    case TypeKind::SChar:
      return Norm::S8;
    case TypeKind::UChar:
      return Norm::U8;
    case TypeKind::Short:
      return Norm::S16;
    case TypeKind::UShort:
      return Norm::U16;
    case TypeKind::Int:
      return Norm::S32;
    case TypeKind::UInt:
      return Norm::U32;
    default:
      return Norm::None;
    }
  }

  Inst &emit(BcFunction &BF, BcOp Op) {
    BF.Code.emplace_back();
    BF.Code.back().Op = Op;
    return BF.Code.back();
  }

  bool compileFunction(const Function &F, BcFunction &BF);
  bool emitOne(const Function &F, const Instr &I, BcFunction &BF);
  size_t tryFuse(const std::vector<Instr> &Ins, size_t Idx, BcFunction &BF);
  void eliminateDeadCopies(BcFunction &BF);

  const Module &M;
  Program &P;
  const CompileOptions &Opts;

  /// Branch fixups for the function being compiled: code indices whose
  /// Imm/Aux still hold block ids.
  std::vector<size_t> BrFixups;
  std::vector<uint64_t> BlockOff;
};

bool Compiler::compileFunction(const Function &F, BcFunction &BF) {
  if (F.numRegs() > MaxRegs || F.numBRegs() > MaxRegs)
    return fail("function @" + F.name() + " exceeds the bytecode register cap");
  BF.Name = F.name();
  BF.NumRegs = F.numRegs();
  BF.NumBRegs = F.numBRegs();
  BF.ParamRegs.reserve(F.Params.size());
  for (const Param &Pa : F.Params) {
    if (Pa.R == NoReg || Pa.R >= F.numRegs())
      return fail("parameter without a register in @" + F.name());
    BF.ParamRegs.push_back(static_cast<uint16_t>(Pa.R));
  }
  BF.Slots.reserve(F.Slots.size());
  for (const StackSlot &S : F.Slots)
    BF.Slots.push_back(SlotDesc{S.ElemType, S.Size, S.Escapes});

  BrFixups.clear();
  BlockOff.assign(F.Blocks.size(), 0);

  for (BlockId B = 0; B < F.Blocks.size(); ++B) {
    BlockOff[B] = BF.Code.size();
    const std::vector<Instr> &Ins = F.Blocks[B].Instrs;
    size_t I = 0;
    while (I < Ins.size()) {
      if (Opts.FuseChecks) {
        if (size_t N = tryFuse(Ins, I, BF)) {
          I += N;
          continue;
        }
      }
      if (!emitOne(F, Ins[I], BF))
        return false;
      ++I;
    }
    // The tree-walker faults "fell off the end of a block" past an
    // unterminated block; a Trap keeps that behaviour (and stops an
    // empty trailing block from falling into its successor's code).
    if (Ins.empty() || !Ins.back().isTerminator())
      emit(BF, BcOp::Trap).Imm = TrapFellOffBlock;
  }
  if (F.Blocks.empty())
    emit(BF, BcOp::Trap).Imm = TrapFellOffBlock;

  for (size_t Idx : BrFixups) {
    Inst &In = BF.Code[Idx];
    if (In.Imm >= BlockOff.size() ||
        (In.Op == BcOp::CondBr && In.Aux >= BlockOff.size()))
      return fail("branch to a nonexistent block in @" + F.name());
    In.Imm = BlockOff[In.Imm];
    if (In.Op == BcOp::CondBr)
      In.Aux = BlockOff[In.Aux];
  }
  eliminateDeadCopies(BF);
  return true;
}

/// Drops Copy/CopyB instructions whose destination registers are never
/// read anywhere in the function. The IR lowering leaves many behind:
/// operand folding routes consumers at the SOURCE registers of variable
/// reads, so the copy into the read's own register frequently feeds
/// nothing — in check-dense loops a third of all dispatches. Uses
/// whole-function read sets (not per-path liveness): coarser, but
/// trivially sound, and iterated so a removed copy can expose the copy
/// that fed it. Branch targets are remapped; a target that WAS a dead
/// copy slides to the next surviving instruction.
void Compiler::eliminateDeadCopies(BcFunction &BF) {
  std::vector<uint8_t> RegRead, BndRead;
  std::vector<uint32_t> NewIdx(BF.Code.size() + 1);
  for (;;) {
    RegRead.assign(BF.NumRegs, 0);
    BndRead.assign(BF.NumBRegs, 0);
    auto RR = [&](uint16_t R) {
      if (R != NoR16 && R < RegRead.size())
        RegRead[R] = 1;
    };
    auto BR = [&](uint32_t B) {
      if (B != NoB32 && B != NoR16 && B < BndRead.size())
        BndRead[B] = 1;
    };
    for (const Inst &In : BF.Code) {
      switch (In.Op) {
      // No register reads.
      case BcOp::ConstInt:
      case BcOp::ConstFloat:
      case BcOp::ConstNull:
      case BcOp::StringAddr:
      case BcOp::GlobalAddr:
      case BcOp::SlotAddr:
      case BcOp::WideBounds:
      case BcOp::Br:
      case BcOp::Trap:
        break;
      // B (and for the -B forms, the source bounds register).
      case BcOp::Copy:
      case BcOp::Convert:
      case BcOp::FieldAddr:
      case BcOp::Load:
      case BcOp::Malloc:
        RR(In.B);
        break;
      case BcOp::CopyB:
      case BcOp::FieldAddrB:
        RR(In.B);
        BR(static_cast<uint32_t>(In.Aux));
        break;
      // B and C.
      case BcOp::AddI:
      case BcOp::SubI:
      case BcOp::MulI:
      case BcOp::DivI:
      case BcOp::RemI:
      case BcOp::AndI:
      case BcOp::OrI:
      case BcOp::XorI:
      case BcOp::ShlI:
      case BcOp::ShrI:
      case BcOp::AddF:
      case BcOp::SubF:
      case BcOp::MulF:
      case BcOp::DivF:
      case BcOp::CmpS:
      case BcOp::CmpU:
      case BcOp::CmpF:
      case BcOp::PtrDiff:
      case BcOp::IndexAddr:
        RR(In.B);
        RR(In.C);
        break;
      case BcOp::IndexAddrB:
        RR(In.B);
        RR(In.C);
        BR(static_cast<uint32_t>(In.Aux));
        break;
      // A (address/operand/condition).
      case BcOp::Free:
      case BcOp::Ret:
      case BcOp::CondBr:
      case BcOp::TypeCheck:
      case BcOp::BoundsGet:
      case BcOp::TypeCheckBounds:
      case BcOp::TypeCheckLoad:
      case BcOp::BoundsGetCheck:
      case BcOp::BoundsGetCheckLoad:
        RR(In.A);
        break;
      case BcOp::Store:
        RR(In.A);
        RR(In.B);
        break;
      case BcOp::BoundsCheck:
        RR(In.A);
        BR(In.B);
        break;
      case BcOp::BoundsNarrow:
        RR(In.A);
        BR(In.C);
        break;
      case BcOp::TypeCheckStore:
      case BcOp::BoundsGetCheckStore:
        RR(In.A);
        RR(In.C);
        break;
      case BcOp::BoundsCheckLoad:
        RR(In.A);
        BR(In.B);
        break;
      case BcOp::BoundsCheckStore:
        RR(In.A);
        RR(In.C);
        BR(In.B);
        break;
      case BcOp::Call:
      case BcOp::CallBuiltin:
        for (uint32_t I = 0; I < In.C; ++I)
          RR(P.ArgPool[In.Aux + I]);
        break;
      }
    }

    std::vector<Inst> Kept;
    Kept.reserve(BF.Code.size());
    bool Removed = false;
    for (size_t I = 0; I < BF.Code.size(); ++I) {
      NewIdx[I] = static_cast<uint32_t>(Kept.size());
      const Inst &In = BF.Code[I];
      bool Dead = false;
      if (In.Op == BcOp::Copy) {
        Dead = !RegRead[In.A];
      } else if (In.Op == BcOp::CopyB) {
        uint32_t BDst = static_cast<uint32_t>(In.Aux >> 32);
        Dead = !RegRead[In.A] && (BDst == NoB32 || !BndRead[BDst]);
      }
      if (Dead)
        Removed = true;
      else
        Kept.push_back(In);
    }
    if (!Removed)
      return;
    NewIdx[BF.Code.size()] = static_cast<uint32_t>(Kept.size());
    for (Inst &In : Kept) {
      if (In.Op == BcOp::Br) {
        In.Imm = NewIdx[In.Imm];
      } else if (In.Op == BcOp::CondBr) {
        In.Imm = NewIdx[In.Imm];
        In.Aux = NewIdx[In.Aux];
      }
    }
    BF.Code = std::move(Kept);
  }
}

/// Looks for a fusable check+access sequence starting at \p Idx;
/// returns the number of IR instructions consumed (0 = no fusion).
size_t Compiler::tryFuse(const std::vector<Instr> &Ins, size_t Idx,
                         BcFunction &BF) {
  const Instr &A = Ins[Idx];
  if (A.Op != Opcode::TypeCheck && A.Op != Opcode::BoundsGet &&
      A.Op != Opcode::BoundsCheck)
    return 0;

  // A load/store of the checked pointer whose scalar size the VM can
  // fold (aggregate accesses never reach the engines anyway).
  auto memMatch = [](const Instr &Mm, Reg Ptr) {
    return (Mm.Op == Opcode::Load || Mm.Op == Opcode::Store) && Mm.A == Ptr &&
           Mm.Type && Mm.Type->size() > 0;
  };

  if (A.Op == Opcode::BoundsCheck) {
    if (Idx + 1 >= Ins.size() || A.BSrc == NoBReg)
      return 0;
    const Instr &Mem = Ins[Idx + 1];
    if (!memMatch(Mem, A.A) || A.Imm != Mem.Type->size())
      return 0;
    Inst &O = emit(BF, Mem.Op == Opcode::Load ? BcOp::BoundsCheckLoad
                                              : BcOp::BoundsCheckStore);
    O.A = r16(A.A);
    O.B = b16(A.BSrc);
    O.C = r16(Mem.Op == Opcode::Load ? Mem.Dst : Mem.B);
    O.Type = Mem.Type;
    O.Imm = static_cast<uint32_t>(A.Site);
    O.Aux = A.Imm;
    return 2;
  }

  // type_check / bounds_get, optionally a bounds_check of the same
  // pointer against the bounds just produced, optionally the access.
  const bool IsTC = A.Op == Opcode::TypeCheck;
  if (A.BDst == NoBReg)
    return 0;
  const Instr *BC = nullptr;
  const Instr *Mem = nullptr;
  size_t N = 1;
  if (Idx + 1 < Ins.size()) {
    const Instr &X = Ins[Idx + 1];
    if (X.Op == Opcode::BoundsCheck && X.A == A.A && X.BSrc == A.BDst &&
        X.Imm > 0) {
      BC = &X;
      N = 2;
      if (Idx + 2 < Ins.size() && memMatch(Ins[Idx + 2], A.A) &&
          BC->Imm == Ins[Idx + 2].Type->size() &&
          (!IsTC || Ins[Idx + 2].Type == A.Type)) {
        Mem = &Ins[Idx + 2];
        N = 3;
      }
    } else if (memMatch(X, A.A) && (!IsTC || X.Type == A.Type)) {
      Mem = &X;
      N = 2;
    }
  }
  if (N == 1)
    return 0;

  BcOp Op;
  if (Mem) {
    const bool IsLoad = Mem->Op == Opcode::Load;
    Op = IsTC ? (IsLoad ? BcOp::TypeCheckLoad : BcOp::TypeCheckStore)
              : (IsLoad ? BcOp::BoundsGetCheckLoad : BcOp::BoundsGetCheckStore);
  } else {
    Op = IsTC ? BcOp::TypeCheckBounds : BcOp::BoundsGetCheck;
  }
  Inst &O = emit(BF, Op);
  O.A = r16(A.A);
  O.B = b16(A.BDst);
  O.Type = IsTC ? A.Type : (Mem ? Mem->Type : nullptr);
  O.Imm = packSites(A.Site, BC ? BC->Site : NoSite);
  O.Aux = BC ? BC->Imm : 0;
  if (Mem)
    O.C = r16(Mem->Op == Opcode::Load ? Mem->Dst : Mem->B);
  return N;
}

bool Compiler::emitOne(const Function &F, const Instr &I, BcFunction &BF) {
  switch (I.Op) {
  case Opcode::ConstInt: {
    Inst &O = emit(BF, BcOp::ConstInt);
    O.A = r16(I.Dst);
    exec::Value V;
    V.U = I.Imm;
    if (I.Type)
      V = exec::normalizeInt(V, I.Type);
    O.Imm = V.U;
    break;
  }
  case Opcode::ConstFloat: {
    Inst &O = emit(BF, BcOp::ConstFloat);
    O.A = r16(I.Dst);
    static_assert(sizeof(I.FImm) == sizeof(O.Aux), "double is 64-bit");
    std::memcpy(&O.Aux, &I.FImm, sizeof(O.Aux));
    break;
  }
  case Opcode::ConstNull:
    emit(BF, BcOp::ConstNull).A = r16(I.Dst);
    break;
  case Opcode::StringAddr:
  case Opcode::GlobalAddr:
  case Opcode::SlotAddr: {
    BcOp Op = I.Op == Opcode::StringAddr   ? BcOp::StringAddr
              : I.Op == Opcode::GlobalAddr ? BcOp::GlobalAddr
                                           : BcOp::SlotAddr;
    Inst &O = emit(BF, Op);
    O.A = r16(I.Dst);
    O.B = b16(I.BDst);
    O.Imm = I.Imm;
    if (I.Op == Opcode::StringAddr && I.Imm >= M.Strings.size())
      return fail("string index out of range in @" + F.name());
    if (I.Op == Opcode::GlobalAddr && I.Imm >= M.Globals.size())
      return fail("global index out of range in @" + F.name());
    if (I.Op == Opcode::SlotAddr && I.Imm >= F.Slots.size())
      return fail("slot index out of range in @" + F.name());
    break;
  }
  case Opcode::Copy:
  case Opcode::PtrCast: {
    Inst &O = emit(BF, I.BDst != NoBReg ? BcOp::CopyB : BcOp::Copy);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    if (I.BDst != NoBReg)
      O.Aux = packB(I.BDst, I.BSrc);
    break;
  }
  case Opcode::Arith: {
    if (!I.Type)
      return fail("untyped arithmetic in @" + F.name());
    if (I.Type->isFloating()) {
      BcOp Op;
      switch (I.AOp) {
      case ArithOp::Add:
        Op = BcOp::AddF;
        break;
      case ArithOp::Sub:
        Op = BcOp::SubF;
        break;
      case ArithOp::Mul:
        Op = BcOp::MulF;
        break;
      case ArithOp::Div:
        Op = BcOp::DivF;
        break;
      default:
        // The tree-walker faults at execution, not compile — match it.
        emit(BF, BcOp::Trap).Imm = TrapFloatBitwise;
        return true;
      }
      Inst &O = emit(BF, Op);
      O.A = r16(I.Dst);
      O.B = r16(I.A);
      O.C = r16(I.B);
      break;
    }
    BcOp Op = BcOp::AddI;
    switch (I.AOp) {
    case ArithOp::Add:
      Op = BcOp::AddI;
      break;
    case ArithOp::Sub:
      Op = BcOp::SubI;
      break;
    case ArithOp::Mul:
      Op = BcOp::MulI;
      break;
    case ArithOp::Div:
      Op = BcOp::DivI;
      break;
    case ArithOp::Rem:
      Op = BcOp::RemI;
      break;
    case ArithOp::And:
      Op = BcOp::AndI;
      break;
    case ArithOp::Or:
      Op = BcOp::OrI;
      break;
    case ArithOp::Xor:
      Op = BcOp::XorI;
      break;
    case ArithOp::Shl:
      Op = BcOp::ShlI;
      break;
    case ArithOp::Shr:
      Op = BcOp::ShrI;
      break;
    }
    Inst &O = emit(BF, Op);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.C = r16(I.B);
    O.Imm = static_cast<uint64_t>(normFor(I.Type)) |
            (exec::isUnsignedInt(I.Type) ? ArithUnsigned : 0);
    break;
  }
  case Opcode::Compare: {
    if (!I.Type)
      return fail("untyped compare in @" + F.name());
    BcOp Op = I.Type->isFloating() ? BcOp::CmpF
              : (I.Type->isPointer() || exec::isUnsignedInt(I.Type))
                  ? BcOp::CmpU
                  : BcOp::CmpS;
    Inst &O = emit(BF, Op);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.C = r16(I.B);
    O.Imm = static_cast<uint64_t>(I.CmpPred);
    break;
  }
  case Opcode::Convert: {
    Inst &O = emit(BF, BcOp::Convert);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.Type = I.Type;
    O.Aux = reinterpret_cast<uint64_t>(F.regType(I.A));
    break;
  }
  case Opcode::FieldAddr: {
    const auto *Rec = dyn_cast<RecordType>(I.Type);
    if (!Rec || I.Imm >= Rec->fields().size())
      return fail("malformed field_addr in @" + F.name());
    Inst &O =
        emit(BF, I.BDst != NoBReg ? BcOp::FieldAddrB : BcOp::FieldAddr);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.Imm = Rec->fields()[I.Imm].Offset;
    if (I.BDst != NoBReg)
      O.Aux = packB(I.BDst, I.BSrc);
    break;
  }
  case Opcode::IndexAddr: {
    if (!I.Type)
      return fail("untyped index_addr in @" + F.name());
    Inst &O =
        emit(BF, I.BDst != NoBReg ? BcOp::IndexAddrB : BcOp::IndexAddr);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.C = r16(I.B);
    O.Imm = I.Type->size();
    if (I.BDst != NoBReg)
      O.Aux = packB(I.BDst, I.BSrc);
    break;
  }
  case Opcode::PtrDiff: {
    if (!I.Type)
      return fail("untyped ptr_diff in @" + F.name());
    Inst &O = emit(BF, BcOp::PtrDiff);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.C = r16(I.B);
    O.Imm = I.Type->size() ? I.Type->size() : 1;
    break;
  }
  case Opcode::Load: {
    Inst &O = emit(BF, BcOp::Load);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.Type = I.Type;
    break;
  }
  case Opcode::Store: {
    Inst &O = emit(BF, BcOp::Store);
    O.A = r16(I.A);
    O.B = r16(I.B);
    O.Type = I.Type;
    break;
  }
  case Opcode::Malloc: {
    Inst &O = emit(BF, BcOp::Malloc);
    O.A = r16(I.Dst);
    O.B = r16(I.A);
    O.C = b16(I.BDst);
    O.Type = I.Type;
    break;
  }
  case Opcode::Free:
    emit(BF, BcOp::Free).A = r16(I.A);
    break;
  case Opcode::Call: {
    if (I.Imm >= M.Functions.size())
      return fail("call to a nonexistent function in @" + F.name());
    if (I.Args.size() > 0xFFFF)
      return fail("call with too many arguments in @" + F.name());
    Inst &O = emit(BF, BcOp::Call);
    O.A = r16(I.Dst);
    O.Imm = I.Imm;
    O.C = static_cast<uint16_t>(I.Args.size());
    O.Aux = P.ArgPool.size();
    for (Reg R : I.Args)
      P.ArgPool.push_back(r16(R));
    break;
  }
  case Opcode::CallBuiltin: {
    if (I.Args.empty())
      return fail("builtin call without arguments in @" + F.name());
    Inst &O = emit(BF, BcOp::CallBuiltin);
    O.Imm = I.Imm;
    O.C = static_cast<uint16_t>(I.Args.size());
    O.Aux = P.ArgPool.size();
    for (Reg R : I.Args)
      P.ArgPool.push_back(r16(R));
    break;
  }
  case Opcode::Ret:
    emit(BF, BcOp::Ret).A = r16(I.A);
    break;
  case Opcode::Br: {
    Inst &O = emit(BF, BcOp::Br);
    O.Imm = I.Target0;
    BrFixups.push_back(BF.Code.size() - 1);
    break;
  }
  case Opcode::CondBr: {
    Inst &O = emit(BF, BcOp::CondBr);
    O.A = r16(I.A);
    O.Imm = I.Target0;
    O.Aux = I.Target1;
    BrFixups.push_back(BF.Code.size() - 1);
    break;
  }
  case Opcode::TypeCheck: {
    Inst &O = emit(BF, BcOp::TypeCheck);
    O.A = r16(I.A);
    O.B = b16(I.BDst);
    O.Type = I.Type;
    O.Imm = static_cast<uint32_t>(I.Site);
    break;
  }
  case Opcode::BoundsGet: {
    Inst &O = emit(BF, BcOp::BoundsGet);
    O.A = r16(I.A);
    O.B = b16(I.BDst);
    O.Imm = static_cast<uint32_t>(I.Site);
    break;
  }
  case Opcode::BoundsCheck: {
    Inst &O = emit(BF, BcOp::BoundsCheck);
    O.A = r16(I.A);
    O.B = b16(I.BSrc);
    O.Imm = static_cast<uint32_t>(I.Site);
    O.Aux = I.Imm;
    break;
  }
  case Opcode::BoundsNarrow: {
    Inst &O = emit(BF, BcOp::BoundsNarrow);
    O.A = r16(I.A);
    O.B = b16(I.BDst);
    O.C = b16(I.BSrc);
    O.Imm = I.Imm;
    break;
  }
  case Opcode::WideBounds:
    emit(BF, BcOp::WideBounds).B = b16(I.BDst);
    break;
  }
  return true;
}

} // namespace

std::unique_ptr<Program> bytecode::compile(const ir::Module &M,
                                           std::string *Error,
                                           const CompileOptions &Opts) {
  auto P = std::make_unique<Program>();
  Compiler C(M, *P, Opts);
  if (!C.run()) {
    if (Error)
      *Error = C.Error;
    return nullptr;
  }
  return P;
}
