//===- bytecode/VM.cpp - Direct-threaded bytecode VM ----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch loop. Two strategies behind one macro pair:
///
///   * computed-goto (GCC/Clang default): every handler ends in its own
///     indirect `goto *Labels[op]`, so the branch predictor sees one
///     distinct indirect branch per opcode instead of the single
///     shared dispatch branch a `switch` loop funnels everything
///     through — the classic direct-threading win;
///   * portable `switch` loop (EFFSAN_BC_SWITCH_DISPATCH, or any
///     compiler without labels-as-values).
///
/// Frames live on flat reused stacks (registers, bounds, slot
/// pointers): a call is three resize()s that normally touch no
/// allocator, and the per-frame views are raw pointers refreshed after
/// anything that can grow the stacks. Calls recurse on the host stack,
/// which is what enforces MaxCallDepth exactly like the tree-walker.
///
/// Semantics are shared with the tree-walker through
/// interp/ExecSupport.h; the check opcodes and superinstructions call
/// the same Runtime/Sanitizer EFFSAN_ALWAYS_INLINE fast paths the
/// tree-walker calls, bump the same ExecutedChecks counters in the
/// same order, and preserve the null-pointer short-circuits — the
/// differential tests (tests/bytecode_test.cpp) hold every program to
/// identical results, checks, faults and error reports.
///
//===----------------------------------------------------------------------===//

#include "bytecode/VM.h"

#include "api/Sanitizer.h"
#include "interp/ExecSupport.h"

#include <algorithm>
#include <cstring>
#include <vector>

using namespace effective;
using namespace effective::bytecode;

#if !defined(EFFSAN_BC_SWITCH_DISPATCH) &&                                     \
    (defined(__GNUC__) || defined(__clang__))
#define EFFSAN_BC_COMPUTED_GOTO 1
#else
#define EFFSAN_BC_COMPUTED_GOTO 0
#endif

const char *bytecode::dispatchStrategy() {
#if EFFSAN_BC_COMPUTED_GOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

namespace {

using exec::Value;

/// Integer canonicalization from the compile-time Norm kind; must agree
/// with exec::normalizeInt, which the compiler folded it from.
EFFSAN_ALWAYS_INLINE Value applyNorm(uint64_t Bits, Value V) {
  switch (static_cast<Norm>(Bits & 0xFF)) {
  case Norm::None:
    break;
  case Norm::Bool:
    V.U &= 1;
    break;
  case Norm::S8:
    V.I = static_cast<int8_t>(V.U);
    break;
  case Norm::U8:
    V.U = static_cast<uint8_t>(V.U);
    break;
  case Norm::S16:
    V.I = static_cast<int16_t>(V.U);
    break;
  case Norm::U16:
    V.U = static_cast<uint16_t>(V.U);
    break;
  case Norm::S32:
    V.I = static_cast<int32_t>(V.U);
    break;
  case Norm::U32:
    V.U = static_cast<uint32_t>(V.U);
    break;
  }
  return V;
}

template <typename T>
EFFSAN_ALWAYS_INLINE bool cmpApply(ir::Pred P, T A, T B) {
  switch (P) {
  case ir::Pred::Eq:
    return A == B;
  case ir::Pred::Ne:
    return A != B;
  case ir::Pred::Lt:
    return A < B;
  case ir::Pred::Le:
    return A <= B;
  case ir::Pred::Gt:
    return A > B;
  case ir::Pred::Ge:
    return A >= B;
  }
  return false;
}

class VM {
public:
  VM(const Program &Prog, Runtime &RT, const RunOptions &Opts,
     Sanitizer *Session = nullptr)
      : Prog(Prog), RT(RT), Session(Session), Opts(Opts), Guard(RT) {}

  RunResult run(std::string_view Entry) {
    RunResult R;
    uint64_t IssuesBefore = RT.reporter().numIssues();
    const ir::Module &M = *Prog.M;
    // Module load mirrors the tree-walker: register the site table
    // (keyed by the module's uid, so re-runs reuse the range), then
    // materialize globals and strings through the typed allocator.
    if (M.numCheckSites() != 0)
      SiteBase = RT.siteTables().registerTable(M.siteTable(), M.uid());
    Image.allocate(M, RT);
    if (const BcFunction *Init = Prog.find("__global_init"))
      callFunction(*Init, ArgStack.size(), 0);
    const BcFunction *Main = Prog.find(Entry);
    if (!Main)
      fault("entry function '" + std::string(Entry) + "' not found");
    if (!Faulted) {
      Value Ret = callFunction(*Main, ArgStack.size(), 0);
      R.ExitCode = Ret.I;
    }
    R.Ok = !Faulted;
    R.Fault = std::move(FaultMsg);
    R.Output = std::move(Output);
    R.Steps = Steps;
    R.Checks = Checks;
    R.IssuesReported = RT.reporter().numIssues() - IssuesBefore;
    return R;
  }

private:
  void fault(std::string Msg) {
    if (!Faulted) {
      Faulted = true;
      FaultMsg = std::move(Msg);
    }
  }

  /// Host validation for every guest load/store. The in-arena fast
  /// path is two compares and constructs nothing; null pointers,
  /// legacy blocks and fault rendering all take the out-of-line path
  /// (HostGuard::validate repeats the arena probe there, so the
  /// messages stay byte-identical to the tree-walker's).
  EFFSAN_ALWAYS_INLINE void *validate(Value Addr, uint64_t Size,
                                      const char *What) {
    char *P = static_cast<char *>(Addr.P);
    if (EFFSAN_LIKELY(P && RT.heap().isInArena(P) &&
                      RT.heap().isInArena(P + Size)))
      return P;
    return validateCold(Addr, Size, What);
  }

  EFFSAN_NOINLINE void *validateCold(Value Addr, uint64_t Size,
                                     const char *What) {
    std::string Msg;
    void *P = Guard.validate(Addr, Size, What, Msg);
    if (!P)
      fault(std::move(Msg));
    return P;
  }

  //===--------------------------------------------------------------------===//
  // Check dispatch (identical to the tree-walker's)
  //===--------------------------------------------------------------------===//

  SiteId rebase(SiteId Site) const {
    return (Site == NoSite || SiteBase == NoSite) ? Site : SiteBase + Site;
  }
  Bounds vmTypeCheck(const void *P, const TypeInfo *Type, SiteId Site) {
    Site = Site == NoSite ? siteForType(Type) : rebase(Site);
    return Session ? Session->typeCheck(P, Type, Site)
                   : RT.typeCheck(P, Type, Site);
  }
  Bounds vmBoundsGet(const void *P, SiteId Site) {
    Site = rebase(Site);
    return Session ? Session->boundsGet(P, Site) : RT.boundsGet(P, Site);
  }
  void vmBoundsCheck(const void *P, size_t Size, Bounds B, SiteId Site) {
    Site = rebase(Site);
    if (Session)
      Session->boundsCheck(P, Size, B, Site);
    else
      RT.boundsCheck(P, Size, B, Site);
  }
  Bounds vmBoundsNarrow(Bounds B, const void *Field, size_t Size) {
    return Session ? Session->boundsNarrow(B, Field, Size)
                   : RT.boundsNarrow(B, Field, Size);
  }

  //===--------------------------------------------------------------------===//
  // Frames and calls
  //===--------------------------------------------------------------------===//

  /// Calls \p F with \p NArgs argument values sitting at
  /// ArgStack[ArgBase..]; pops them. Frames are carved from the flat
  /// stacks and zero/wide-initialized exactly like the tree-walker's
  /// per-call vectors.
  Value callFunction(const BcFunction &F, size_t ArgBase, uint32_t NArgs) {
    Value Ret{0};
    if (Faulted) {
      ArgStack.resize(ArgBase);
      return Ret;
    }
    if (++CallDepth > Opts.MaxCallDepth) {
      --CallDepth;
      ArgStack.resize(ArgBase);
      fault("call depth limit exceeded in @" + F.Name);
      return Ret;
    }

    size_t RegBase = RegStack.size();
    size_t BndBase = BndStack.size();
    size_t SlotBase = SlotStack.size();
    RegStack.resize(RegBase + F.NumRegs, Value{0});
    BndStack.resize(BndBase + F.NumBRegs, Bounds::wide());
    uint32_t NCopy =
        std::min<uint32_t>(NArgs, static_cast<uint32_t>(F.ParamRegs.size()));
    for (uint32_t I = 0; I < NCopy; ++I)
      RegStack[RegBase + F.ParamRegs[I]] = ArgStack[ArgBase + I];
    ArgStack.resize(ArgBase);

    size_t Mark = RT.stackMark();
    for (const SlotDesc &S : F.Slots) {
      // Null on exhaustion (real OOM or an induced fault) — already
      // reported RESOURCE-EXHAUSTED; the slot stays null and accesses
      // through it fault as null derefs instead of memset crashing.
      void *P = RT.stackAllocate(S.Size, S.ElemType, S.Escapes);
      if (P)
        std::memset(P, 0, S.Size);
      SlotStack.push_back(P);
    }

    Ret = execute(F, RegBase, BndBase, SlotBase);

    RT.stackRelease(Mark);
    SlotStack.resize(SlotBase);
    RegStack.resize(RegBase);
    BndStack.resize(BndBase);
    --CallDepth;
    return Ret;
  }

  Value execute(const BcFunction &F, size_t RegBase, size_t BndBase,
                size_t SlotBase);

  const Program &Prog;
  Runtime &RT;
  Sanitizer *Session;
  const RunOptions &Opts;
  SiteId SiteBase = NoSite;

  exec::HostGuard Guard;
  exec::ModuleImage Image;

  /// Flat frame stacks, reused across the whole run; a frame is a base
  /// offset into each.
  std::vector<Value> RegStack;
  std::vector<Bounds> BndStack;
  std::vector<void *> SlotStack;
  /// Outgoing-argument staging area (caller pushes, callee pops).
  std::vector<Value> ArgStack;

  std::string Output;
  uint64_t Steps = 0;
  uint64_t CallDepth = 0;
  ExecutedChecks Checks;
  bool Faulted = false;
  std::string FaultMsg;
};

/// Faults and unwinds the dispatch loop (sticky, first message wins —
/// same as the tree-walker).
#define BC_FAULT(MsgExpr)                                                      \
  do {                                                                         \
    fault(MsgExpr);                                                            \
    BC_RET(Zero);                                                              \
  } while (0)

/// Returns \p V with the register-resident step counter flushed back to
/// the member (every exit from the dispatch loop must go through this —
/// see LSteps below).
#define BC_RET(V)                                                              \
  do {                                                                         \
    Steps = LSteps;                                                            \
    return (V);                                                                \
  } while (0)

Value VM::execute(const BcFunction &F, size_t RegBase, size_t BndBase,
                  size_t SlotBase) {
  Value Zero{0};
  if (EFFSAN_UNLIKELY(F.Code.empty())) {
    fault("fell off the end of a block in @" + F.Name);
    return Zero;
  }
  const Inst *CodeBase = F.Code.data();
  const Inst *IP = CodeBase;
  const Inst *In = nullptr;
  Value *R = RegStack.data() + RegBase;
  Bounds *BR = BndStack.data() + BndBase;
  void **SL = SlotStack.data() + SlotBase;
  // The step counter lives in a local for the whole dispatch loop (the
  // member would cost a load+store per instruction through `this`);
  // synced with the member around calls and on every exit, so the
  // budget stays cumulative across the call tree.
  uint64_t LSteps = Steps;

#if EFFSAN_BC_COMPUTED_GOTO
  // One label per opcode, in EFFSAN_BC_OPCODE_LIST order (the enum's).
  static const void *const Labels[NumBcOps] = {
#define EFFSAN_BC_LABEL(Name) &&L_##Name,
      EFFSAN_BC_OPCODE_LIST(EFFSAN_BC_LABEL)
#undef EFFSAN_BC_LABEL
  };
#define BC_CASE(Name) L_##Name:
#define BC_NEXT()                                                              \
  do {                                                                         \
    if (EFFSAN_UNLIKELY(++LSteps > Opts.MaxSteps)) {                           \
      fault("instruction budget exhausted in @" + F.Name);                     \
      BC_RET(Zero);                                                            \
    }                                                                          \
    In = IP++;                                                                 \
    goto *Labels[static_cast<size_t>(In->Op)];                                 \
  } while (0)
  BC_NEXT();
#else
#define BC_CASE(Name) case BcOp::Name:
#define BC_NEXT() break
  for (;;) {
    if (EFFSAN_UNLIKELY(++LSteps > Opts.MaxSteps)) {
      fault("instruction budget exhausted in @" + F.Name);
      BC_RET(Zero);
    }
    In = IP++;
    switch (In->Op) {
#endif

  //===------------------------------------------------------------------===//
  // Constants and moves
  //===------------------------------------------------------------------===//

  BC_CASE(ConstInt) { R[In->A].U = In->Imm; }
  BC_NEXT();

  BC_CASE(ConstFloat) { std::memcpy(&R[In->A].F, &In->Aux, sizeof(double)); }
  BC_NEXT();

  BC_CASE(ConstNull) { R[In->A].P = nullptr; }
  BC_NEXT();

  BC_CASE(StringAddr) {
    R[In->A].P = Image.StringAddrs[In->Imm];
    if (In->B != NoR16)
      BR[In->B] = Bounds::forObject(Image.StringAddrs[In->Imm],
                                    Image.StringSizes[In->Imm]);
  }
  BC_NEXT();

  BC_CASE(GlobalAddr) {
    R[In->A].P = Image.GlobalAddrs[In->Imm];
    if (In->B != NoR16)
      BR[In->B] = Bounds::forObject(Image.GlobalAddrs[In->Imm],
                                    Image.GlobalSizes[In->Imm]);
  }
  BC_NEXT();

  BC_CASE(SlotAddr) {
    R[In->A].P = SL[In->Imm];
    if (In->B != NoR16)
      BR[In->B] = Bounds::forObject(SL[In->Imm], F.Slots[In->Imm].Size);
  }
  BC_NEXT();

  BC_CASE(Copy) { R[In->A] = R[In->B]; }
  BC_NEXT();

  BC_CASE(CopyB) {
    R[In->A] = R[In->B];
    uint32_t BS = static_cast<uint32_t>(In->Aux);
    BR[In->Aux >> 32] = BS != NoB32 ? BR[BS] : Bounds::wide();
  }
  BC_NEXT();

  //===------------------------------------------------------------------===//
  // Arithmetic, comparison, conversion
  //===------------------------------------------------------------------===//

  BC_CASE(AddI) {
    Value V;
    V.U = R[In->B].U + R[In->C].U;
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(SubI) {
    Value V;
    V.U = R[In->B].U - R[In->C].U;
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(MulI) {
    Value V;
    V.U = R[In->B].U * R[In->C].U;
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(DivI) {
    Value A = R[In->B], B = R[In->C], V;
    V.U = 0;
    if (B.U != 0) {
      if (In->Imm & ArithUnsigned)
        V.U = A.U / B.U;
      else if (A.I == INT64_MIN && B.I == -1)
        V.I = A.I;
      else
        V.I = A.I / B.I;
    }
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(RemI) {
    Value A = R[In->B], B = R[In->C], V;
    V.U = 0;
    if (B.U != 0) {
      if (In->Imm & ArithUnsigned)
        V.U = A.U % B.U;
      else if (A.I == INT64_MIN && B.I == -1)
        V.I = 0;
      else
        V.I = A.I % B.I;
    }
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(AndI) {
    Value V;
    V.U = R[In->B].U & R[In->C].U;
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(OrI) {
    Value V;
    V.U = R[In->B].U | R[In->C].U;
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(XorI) {
    Value V;
    V.U = R[In->B].U ^ R[In->C].U;
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(ShlI) {
    Value V;
    V.U = R[In->B].U << (R[In->C].U & 63);
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(ShrI) {
    Value V;
    if (In->Imm & ArithUnsigned)
      V.U = R[In->B].U >> (R[In->C].U & 63);
    else
      V.I = R[In->B].I >> (R[In->C].U & 63);
    R[In->A] = applyNorm(In->Imm, V);
  }
  BC_NEXT();

  BC_CASE(AddF) { R[In->A].F = R[In->B].F + R[In->C].F; }
  BC_NEXT();

  BC_CASE(SubF) { R[In->A].F = R[In->B].F - R[In->C].F; }
  BC_NEXT();

  BC_CASE(MulF) { R[In->A].F = R[In->B].F * R[In->C].F; }
  BC_NEXT();

  BC_CASE(DivF) {
    double D = R[In->C].F;
    R[In->A].F = D != 0 ? R[In->B].F / D : 0;
  }
  BC_NEXT();

  BC_CASE(CmpS) {
    R[In->A].I =
        cmpApply(static_cast<ir::Pred>(In->Imm), R[In->B].I, R[In->C].I) ? 1
                                                                         : 0;
  }
  BC_NEXT();

  BC_CASE(CmpU) {
    R[In->A].I =
        cmpApply(static_cast<ir::Pred>(In->Imm), R[In->B].U, R[In->C].U) ? 1
                                                                         : 0;
  }
  BC_NEXT();

  BC_CASE(CmpF) {
    R[In->A].I =
        cmpApply(static_cast<ir::Pred>(In->Imm), R[In->B].F, R[In->C].F) ? 1
                                                                         : 0;
  }
  BC_NEXT();

  BC_CASE(Convert) {
    Value V;
    if (EFFSAN_UNLIKELY(!exec::evalConvert(
            R[In->B], reinterpret_cast<const TypeInfo *>(In->Aux), In->Type,
            V)))
      BC_FAULT("convert with untyped source register");
    R[In->A] = V;
  }
  BC_NEXT();

  //===------------------------------------------------------------------===//
  // Address computation
  //===------------------------------------------------------------------===//

  BC_CASE(FieldAddr) { R[In->A].U = R[In->B].U + In->Imm; }
  BC_NEXT();

  BC_CASE(FieldAddrB) {
    R[In->A].U = R[In->B].U + In->Imm;
    uint32_t BS = static_cast<uint32_t>(In->Aux);
    BR[In->Aux >> 32] = BS != NoB32 ? BR[BS] : Bounds::wide();
  }
  BC_NEXT();

  BC_CASE(IndexAddr) {
    R[In->A].U =
        R[In->B].U +
        static_cast<uint64_t>(R[In->C].I * static_cast<int64_t>(In->Imm));
  }
  BC_NEXT();

  BC_CASE(IndexAddrB) {
    R[In->A].U =
        R[In->B].U +
        static_cast<uint64_t>(R[In->C].I * static_cast<int64_t>(In->Imm));
    uint32_t BS = static_cast<uint32_t>(In->Aux);
    BR[In->Aux >> 32] = BS != NoB32 ? BR[BS] : Bounds::wide();
  }
  BC_NEXT();

  BC_CASE(PtrDiff) {
    R[In->A].I = (R[In->B].I - R[In->C].I) / static_cast<int64_t>(In->Imm);
  }
  BC_NEXT();

  //===------------------------------------------------------------------===//
  // Memory
  //===------------------------------------------------------------------===//

  BC_CASE(Load) {
    void *HP = validate(R[In->B], In->Type->size(), "load");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::loadScalar(HP, In->Type, R[In->A])))
      BC_FAULT("load of unsupported type " + In->Type->str());
  }
  BC_NEXT();

  BC_CASE(Store) {
    void *HP = validate(R[In->A], In->Type->size(), "store");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::storeScalar(HP, In->Type, R[In->B])))
      BC_FAULT("store of unsupported type " + In->Type->str());
  }
  BC_NEXT();

  BC_CASE(Malloc) {
    uint64_t Size = R[In->B].U;
    if (EFFSAN_UNLIKELY(Size > (uint64_t(1) << 40)))
      BC_FAULT("implausible malloc size");
    // A failed allocation was reported RESOURCE-EXHAUSTED and surfaces
    // as a null result, like C malloc. Never whitelist null with the
    // guard (that would validate wild accesses at [0, Size)); null
    // gets wide bounds, as any legacy pointer.
    void *P = RT.allocate(Size, In->Type);
    if (P && !RT.heap().isLowFat(P))
      Guard.noteLegacy(P, Size);
    R[In->A].P = P;
    if (In->C != NoR16)
      BR[In->C] = P ? Bounds::forObject(P, Size) : Bounds::wide();
  }
  BC_NEXT();

  BC_CASE(Free) { RT.deallocate(R[In->A].P); }
  BC_NEXT();

  //===------------------------------------------------------------------===//
  // Calls and control flow
  //===------------------------------------------------------------------===//

  BC_CASE(Call) {
    const uint16_t *Ar = Prog.ArgPool.data() + In->Aux;
    uint32_t N = In->C;
    size_t AB = ArgStack.size();
    ArgStack.resize(AB + N);
    for (uint32_t I = 0; I < N; ++I)
      ArgStack[AB + I] = R[Ar[I]];
    Steps = LSteps;
    Value Ret = callFunction(Prog.Funcs[In->Imm], AB, N);
    LSteps = Steps;
    // The callee may have grown (reallocated) any of the flat stacks.
    R = RegStack.data() + RegBase;
    BR = BndStack.data() + BndBase;
    SL = SlotStack.data() + SlotBase;
    if (In->A != NoR16)
      R[In->A] = Ret;
    if (EFFSAN_UNLIKELY(Faulted))
      BC_RET(Zero);
  }
  BC_NEXT();

  BC_CASE(CallBuiltin) {
    const uint16_t *Ar = Prog.ArgPool.data() + In->Aux;
    switch (static_cast<ir::BuiltinId>(In->Imm)) {
    case ir::BuiltinId::PrintInt:
      exec::printInt(R[Ar[0]].I, Output);
      break;
    case ir::BuiltinId::PrintFloat:
      exec::printFloat(R[Ar[0]].F, Output);
      break;
    case ir::BuiltinId::PrintStr:
      exec::printStr(R[Ar[0]], Output,
                     [this](Value V, uint64_t Size, const char *What) {
                       return Faulted ? nullptr : validate(V, Size, What);
                     });
      break;
    }
    if (EFFSAN_UNLIKELY(Faulted))
      BC_RET(Zero);
  }
  BC_NEXT();

  BC_CASE(Ret) {
    Value V = Zero;
    if (In->A != NoR16)
      V = R[In->A];
    BC_RET(V);
  }
  BC_NEXT();

  BC_CASE(Br) { IP = CodeBase + In->Imm; }
  BC_NEXT();

  BC_CASE(CondBr) { IP = CodeBase + (R[In->A].U != 0 ? In->Imm : In->Aux); }
  BC_NEXT();

  //===------------------------------------------------------------------===//
  // Checks (unfused)
  //===------------------------------------------------------------------===//

  BC_CASE(TypeCheck) {
    ++Checks.TypeChecks;
    void *P = R[In->A].P;
    BR[In->B] = P ? vmTypeCheck(P, In->Type, static_cast<SiteId>(In->Imm))
                  : Bounds::wide();
  }
  BC_NEXT();

  BC_CASE(BoundsGet) {
    ++Checks.BoundsGets;
    void *P = R[In->A].P;
    BR[In->B] =
        P ? vmBoundsGet(P, static_cast<SiteId>(In->Imm)) : Bounds::wide();
  }
  BC_NEXT();

  BC_CASE(BoundsCheck) {
    ++Checks.BoundsChecks;
    void *P = R[In->A].P;
    if (P)
      vmBoundsCheck(P, In->Aux, BR[In->B], static_cast<SiteId>(In->Imm));
  }
  BC_NEXT();

  BC_CASE(BoundsNarrow) {
    ++Checks.BoundsNarrows;
    BR[In->B] = vmBoundsNarrow(BR[In->C], R[In->A].P, In->Imm);
  }
  BC_NEXT();

  BC_CASE(WideBounds) { BR[In->B] = Bounds::wide(); }
  BC_NEXT();

  BC_CASE(Trap) {
    if (In->Imm == TrapFloatBitwise)
      BC_FAULT("bitwise arithmetic on floating type");
    BC_FAULT("fell off the end of a block in @" + F.Name);
  }
  BC_NEXT();

  //===------------------------------------------------------------------===//
  // Check superinstructions: one dispatch for check+bounds+access. The
  // component counters, null short-circuits and runtime entry points
  // are exactly the unfused sequence's — only the dispatches between
  // them are gone.
  //===------------------------------------------------------------------===//

  BC_CASE(TypeCheckBounds) {
    ++Checks.TypeChecks;
    void *P = R[In->A].P;
    Bounds Bv =
        P ? vmTypeCheck(P, In->Type, static_cast<SiteId>(In->Imm & 0xFFFFFFFF))
          : Bounds::wide();
    BR[In->B] = Bv;
    ++Checks.BoundsChecks;
    if (P)
      vmBoundsCheck(P, In->Aux, Bv, static_cast<SiteId>(In->Imm >> 32));
  }
  BC_NEXT();

  BC_CASE(TypeCheckLoad) {
    ++Checks.TypeChecks;
    void *P = R[In->A].P;
    Bounds Bv =
        P ? vmTypeCheck(P, In->Type, static_cast<SiteId>(In->Imm & 0xFFFFFFFF))
          : Bounds::wide();
    BR[In->B] = Bv;
    if (In->Aux) {
      ++Checks.BoundsChecks;
      if (P)
        vmBoundsCheck(P, In->Aux, Bv, static_cast<SiteId>(In->Imm >> 32));
    }
    void *HP = validate(R[In->A], In->Type->size(), "load");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::loadScalar(HP, In->Type, R[In->C])))
      BC_FAULT("load of unsupported type " + In->Type->str());
  }
  BC_NEXT();

  BC_CASE(TypeCheckStore) {
    ++Checks.TypeChecks;
    void *P = R[In->A].P;
    Bounds Bv =
        P ? vmTypeCheck(P, In->Type, static_cast<SiteId>(In->Imm & 0xFFFFFFFF))
          : Bounds::wide();
    BR[In->B] = Bv;
    if (In->Aux) {
      ++Checks.BoundsChecks;
      if (P)
        vmBoundsCheck(P, In->Aux, Bv, static_cast<SiteId>(In->Imm >> 32));
    }
    void *HP = validate(R[In->A], In->Type->size(), "store");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::storeScalar(HP, In->Type, R[In->C])))
      BC_FAULT("store of unsupported type " + In->Type->str());
  }
  BC_NEXT();

  BC_CASE(BoundsGetCheck) {
    ++Checks.BoundsGets;
    void *P = R[In->A].P;
    Bounds Bv = P ? vmBoundsGet(P, static_cast<SiteId>(In->Imm & 0xFFFFFFFF))
                  : Bounds::wide();
    BR[In->B] = Bv;
    ++Checks.BoundsChecks;
    if (P)
      vmBoundsCheck(P, In->Aux, Bv, static_cast<SiteId>(In->Imm >> 32));
  }
  BC_NEXT();

  BC_CASE(BoundsGetCheckLoad) {
    ++Checks.BoundsGets;
    void *P = R[In->A].P;
    Bounds Bv = P ? vmBoundsGet(P, static_cast<SiteId>(In->Imm & 0xFFFFFFFF))
                  : Bounds::wide();
    BR[In->B] = Bv;
    if (In->Aux) {
      ++Checks.BoundsChecks;
      if (P)
        vmBoundsCheck(P, In->Aux, Bv, static_cast<SiteId>(In->Imm >> 32));
    }
    void *HP = validate(R[In->A], In->Type->size(), "load");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::loadScalar(HP, In->Type, R[In->C])))
      BC_FAULT("load of unsupported type " + In->Type->str());
  }
  BC_NEXT();

  BC_CASE(BoundsGetCheckStore) {
    ++Checks.BoundsGets;
    void *P = R[In->A].P;
    Bounds Bv = P ? vmBoundsGet(P, static_cast<SiteId>(In->Imm & 0xFFFFFFFF))
                  : Bounds::wide();
    BR[In->B] = Bv;
    if (In->Aux) {
      ++Checks.BoundsChecks;
      if (P)
        vmBoundsCheck(P, In->Aux, Bv, static_cast<SiteId>(In->Imm >> 32));
    }
    void *HP = validate(R[In->A], In->Type->size(), "store");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::storeScalar(HP, In->Type, R[In->C])))
      BC_FAULT("store of unsupported type " + In->Type->str());
  }
  BC_NEXT();

  BC_CASE(BoundsCheckLoad) {
    ++Checks.BoundsChecks;
    void *P = R[In->A].P;
    if (P)
      vmBoundsCheck(P, In->Aux, BR[In->B], static_cast<SiteId>(In->Imm));
    void *HP = validate(R[In->A], In->Type->size(), "load");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::loadScalar(HP, In->Type, R[In->C])))
      BC_FAULT("load of unsupported type " + In->Type->str());
  }
  BC_NEXT();

  BC_CASE(BoundsCheckStore) {
    ++Checks.BoundsChecks;
    void *P = R[In->A].P;
    if (P)
      vmBoundsCheck(P, In->Aux, BR[In->B], static_cast<SiteId>(In->Imm));
    void *HP = validate(R[In->A], In->Type->size(), "store");
    if (EFFSAN_UNLIKELY(!HP))
      BC_RET(Zero);
    if (EFFSAN_UNLIKELY(!exec::storeScalar(HP, In->Type, R[In->C])))
      BC_FAULT("store of unsupported type " + In->Type->str());
  }
  BC_NEXT();

#if !EFFSAN_BC_COMPUTED_GOTO
    } // switch
  }   // for
#endif
#undef BC_CASE
#undef BC_NEXT
  BC_RET(Zero); // Unreachable: every handler returns or re-dispatches.
}

#undef BC_FAULT
#undef BC_RET

} // namespace

RunResult bytecode::run(const Program &P, Runtime &RT, const RunOptions &Opts,
                        std::string_view Entry) {
  VM V(P, RT, Opts);
  return V.run(Entry);
}

RunResult bytecode::run(const Program &P, Sanitizer &Session,
                        const RunOptions &Opts, std::string_view Entry) {
  VM V(P, Session.runtime(), Opts, &Session);
  return V.run(Entry);
}
