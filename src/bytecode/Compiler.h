//===- bytecode/Compiler.h - IR -> bytecode lowering ------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an (instrumented) ir::Module to the dense linear bytecode of
/// bytecode/Bytecode.h: flat 16-bit register frames, branch targets
/// resolved to pc offsets, field offsets and element sizes folded into
/// immediates, check sites baked into the check opcodes, and the hot
/// check+access sequences fused into superinstructions.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_BYTECODE_COMPILER_H
#define EFFECTIVE_BYTECODE_COMPILER_H

#include "bytecode/Bytecode.h"

#include <memory>
#include <string>

namespace effective {
namespace bytecode {

/// Fusion selection, mostly for benchmarks isolating the
/// superinstruction contribution; default is everything on.
struct CompileOptions {
  bool FuseChecks = true;
};

/// Compiles \p M. Returns null and renders a message into \p Error
/// (when non-null) if the module does not fit the encoding (more than
/// 0xFFFE registers in one function, malformed operands); the verified
/// MiniC pipeline output always compiles. The module must outlive the
/// returned program.
std::unique_ptr<Program> compile(const ir::Module &M,
                                 std::string *Error = nullptr,
                                 const CompileOptions &Opts = {});

} // namespace bytecode
} // namespace effective

#endif // EFFECTIVE_BYTECODE_COMPILER_H
