//===- bytecode/Bytecode.h - Dense linear bytecode format -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode the VM executes: a dense, linear encoding of
/// instrumented IR with flat 16-bit register operands, resolved branch
/// offsets, inline immediates, and check-site ids baked into the check
/// opcodes. The compiler (bytecode/Compiler.cpp) additionally fuses the
/// hot check+access pairs the instrumentation pipeline emits —
/// type_check+bounds_check+load/store, bounds_get+bounds_check+... —
/// into superinstructions so a checked memory access costs one dispatch
/// instead of two or three.
///
/// Every instruction is a fixed 32 bytes: one cache line holds two, and
/// the VM's instruction pointer is a plain `const Inst *` increment.
/// Operand conventions are per-opcode (see the opcode list); the
/// uniform rule is A = destination or checked pointer, B/C = sources,
/// Imm/Aux = immediates (branch offsets, sites, sizes, constant bits).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_BYTECODE_BYTECODE_H
#define EFFECTIVE_BYTECODE_BYTECODE_H

#include "ir/IR.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace effective {
namespace bytecode {

/// "No register" in a 16-bit operand field (return/bounds destinations
/// that are absent). Real register numbers are capped below this.
constexpr uint16_t NoR16 = 0xFFFF;

/// "No bounds register" in a 32-bit half of a packed Aux field.
constexpr uint32_t NoB32 = 0xFFFFFFFF;

/// Integer canonicalization kinds, the compile-time residue of
/// exec::normalizeInt: arithmetic opcodes carry one in their Imm low
/// byte instead of re-deriving it from the TypeInfo every execution.
enum class Norm : uint8_t { None, Bool, S8, U8, S16, U16, S32, U32 };

/// Bit 8 of an arithmetic opcode's Imm: operate unsigned (division,
/// remainder, right shift).
constexpr uint64_t ArithUnsigned = 0x100;

/// Trap reasons (Trap opcode Imm).
constexpr uint64_t TrapFellOffBlock = 0;
constexpr uint64_t TrapFloatBitwise = 1;

// The opcode list. X-macro so the enum, the VM's computed-goto label
// table, and the disassembler's mnemonic table can never drift apart.
//
// Operand conventions ("bnd" operands index the bounds register file):
//   ConstInt      A=dst, Imm=value bits (pre-normalized at compile time)
//   ConstFloat    A=dst, Aux=double bits
//   ConstNull     A=dst
//   StringAddr    A=dst, B=bnd dst|NoR16, Imm=string index
//   GlobalAddr    A=dst, B=bnd dst|NoR16, Imm=global index
//   SlotAddr      A=dst, B=bnd dst|NoR16, Imm=slot index
//   Copy          A=dst, B=src
//   CopyB         A=dst, B=src, Aux=(bnd dst<<32)|bnd src (NoB32=wide)
//   AddI..ShrI    A=dst, B, C; Imm = Norm | ArithUnsigned flag
//   AddF..DivF    A=dst, B, C (double arithmetic)
//   CmpS/CmpU/CmpF A=dst, B, C, Imm=ir::Pred
//   Convert       A=dst, B=src, Type=to, Aux=from TypeInfo bits
//   FieldAddr     A=dst, B=base, Imm=byte offset (resolved at compile)
//   FieldAddrB    ... + Aux=(bnd dst<<32)|bnd src
//   IndexAddr     A=dst, B=base, C=index, Imm=element size
//   IndexAddrB    ... + Aux=(bnd dst<<32)|bnd src
//   PtrDiff       A=dst, B, C, Imm=element size (1 substituted for 0)
//   Load          A=dst, B=ptr, Type
//   Store         A=ptr, B=src, Type
//   Malloc        A=dst, B=size reg, C=bnd dst|NoR16, Type=element
//   Free          A=ptr
//   Call          A=dst|NoR16, Imm=callee index, C=argc, Aux=arg-pool off
//   CallBuiltin   Imm=ir::BuiltinId, C=argc, Aux=arg-pool offset
//   Ret           A=src|NoR16
//   Br            Imm=target pc
//   CondBr        A=cond, Imm=true pc, Aux=false pc
//   TypeCheck     A=ptr, B=bnd dst, Type, Imm=site
//   BoundsGet     A=ptr, B=bnd dst, Imm=site
//   BoundsCheck   A=ptr, B=bnd src, Imm=site, Aux=access size
//   BoundsNarrow  A=field ptr, B=bnd dst, C=bnd src, Imm=field size
//   WideBounds    B=bnd dst
//   Trap          Imm=trap reason (deterministic fault)
//
// Superinstructions (the tentpole fusions; site pair packed as
// Imm = first site | second site << 32):
//   TypeCheckBounds    type_check + bounds_check.
//                      A=ptr, B=bnd dst, Type, Imm=sites, Aux=size
//   TypeCheckLoad      type_check [+ bounds_check] + load.
//                      A=ptr, B=bnd dst, C=dst, Type, Imm=sites,
//                      Aux=size (0 = no bounds_check component)
//   TypeCheckStore     ... + store; C=src
//   BoundsGetCheck     bounds_get + bounds_check (as TypeCheckBounds)
//   BoundsGetCheckLoad bounds_get [+ bounds_check] + load
//   BoundsGetCheckStore ... + store
//   BoundsCheckLoad    bounds_check + load. A=ptr, B=bnd src, C=dst,
//                      Type, Imm=site, Aux=size
//   BoundsCheckStore   ... + store; C=src
#define EFFSAN_BC_OPCODE_LIST(X)                                               \
  X(ConstInt)                                                                  \
  X(ConstFloat)                                                                \
  X(ConstNull)                                                                 \
  X(StringAddr)                                                                \
  X(GlobalAddr)                                                                \
  X(SlotAddr)                                                                  \
  X(Copy)                                                                      \
  X(CopyB)                                                                     \
  X(AddI)                                                                      \
  X(SubI)                                                                      \
  X(MulI)                                                                      \
  X(DivI)                                                                      \
  X(RemI)                                                                      \
  X(AndI)                                                                      \
  X(OrI)                                                                       \
  X(XorI)                                                                      \
  X(ShlI)                                                                      \
  X(ShrI)                                                                      \
  X(AddF)                                                                      \
  X(SubF)                                                                      \
  X(MulF)                                                                      \
  X(DivF)                                                                      \
  X(CmpS)                                                                      \
  X(CmpU)                                                                      \
  X(CmpF)                                                                      \
  X(Convert)                                                                   \
  X(FieldAddr)                                                                 \
  X(FieldAddrB)                                                                \
  X(IndexAddr)                                                                 \
  X(IndexAddrB)                                                                \
  X(PtrDiff)                                                                   \
  X(Load)                                                                      \
  X(Store)                                                                     \
  X(Malloc)                                                                    \
  X(Free)                                                                      \
  X(Call)                                                                      \
  X(CallBuiltin)                                                               \
  X(Ret)                                                                       \
  X(Br)                                                                        \
  X(CondBr)                                                                    \
  X(TypeCheck)                                                                 \
  X(BoundsGet)                                                                 \
  X(BoundsCheck)                                                               \
  X(BoundsNarrow)                                                              \
  X(WideBounds)                                                                \
  X(Trap)                                                                      \
  X(TypeCheckBounds)                                                           \
  X(TypeCheckLoad)                                                             \
  X(TypeCheckStore)                                                            \
  X(BoundsGetCheck)                                                            \
  X(BoundsGetCheckLoad)                                                        \
  X(BoundsGetCheckStore)                                                       \
  X(BoundsCheckLoad)                                                           \
  X(BoundsCheckStore)

enum class BcOp : uint16_t {
#define EFFSAN_BC_DEF(Name) Name,
  EFFSAN_BC_OPCODE_LIST(EFFSAN_BC_DEF)
#undef EFFSAN_BC_DEF
};

constexpr size_t NumBcOps = 0
#define EFFSAN_BC_COUNT(Name) +1
    EFFSAN_BC_OPCODE_LIST(EFFSAN_BC_COUNT)
#undef EFFSAN_BC_COUNT
    ;

/// One bytecode instruction: fixed 32 bytes, two per cache line.
struct Inst {
  BcOp Op = BcOp::Trap;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint64_t Imm = 0;
  uint64_t Aux = 0;
  const TypeInfo *Type = nullptr;
};
static_assert(sizeof(Inst) == 32, "bytecode instructions are 32 bytes");

/// A stack slot the VM materializes through the typed low-fat stack
/// allocator at frame entry (mirror of ir::StackSlot minus the names).
struct SlotDesc {
  const TypeInfo *ElemType = nullptr;
  uint64_t Size = 0;
  /// Address-taken slot (instrumentation escape analysis): the VM
  /// allocates it with the use-after-return quarantine delay armed.
  bool Escapes = false;
};

/// One compiled function: linear code (branches are resolved pc
/// offsets; the last reachable instruction of every block path is a
/// terminator or Trap, so execution cannot run off the end).
struct BcFunction {
  std::string Name;
  uint32_t NumRegs = 0;
  uint32_t NumBRegs = 0;
  std::vector<uint16_t> ParamRegs;
  std::vector<SlotDesc> Slots;
  std::vector<Inst> Code;
};

/// A compiled module. Keeps a pointer to the source ir::Module — the
/// site table, globals, strings and type context live there, and the
/// module must outlive the program (the same lifetime rule the
/// tree-walker already imposes).
struct Program {
  const ir::Module *M = nullptr;
  std::vector<BcFunction> Funcs;
  /// Flattened Call/CallBuiltin argument registers; an instruction's
  /// Aux is its offset into this pool.
  std::vector<uint16_t> ArgPool;

  const BcFunction *find(std::string_view Name) const {
    for (const BcFunction &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// The mnemonic for \p Op (the enumerator name, e.g. "TypeCheckLoad").
const char *opName(BcOp Op);

/// Resolves a mnemonic back to its opcode; false if unknown.
bool opFromName(std::string_view Name, BcOp &Out);

/// "computed-goto" or "switch" — which dispatch strategy the VM was
/// built with (EFFSAN_BC_SWITCH_DISPATCH forces the portable switch).
const char *dispatchStrategy();

} // namespace bytecode
} // namespace effective

#endif // EFFECTIVE_BYTECODE_BYTECODE_H
