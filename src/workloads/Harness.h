//===- workloads/Harness.h - Workload measurement harness -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a workload under one instrumentation policy with a fresh
/// Sanitizer session, measuring wall-clock time, dynamic check counts,
/// issues found, and peak memory — everything Figures 7, 8, 9 and 10
/// report. Each run is fully session-isolated: private heap, counters
/// and reporter, with types shared through the global context.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_WORKLOADS_HARNESS_H
#define EFFECTIVE_WORKLOADS_HARNESS_H

#include "api/Sanitizer.h"
#include "workloads/Workload.h"

#include <cstdio>

namespace effective {
namespace workloads {

/// The paper's build variants (Figure 8).
enum class PolicyKind : uint8_t { None, Type, Bounds, Full };

/// Display name ("Uninstrumented", "EffectiveSan-type", ...).
const char *policyKindName(PolicyKind Kind);

/// The session check policy matching a compile-time build variant.
CheckPolicy checkPolicyFor(PolicyKind Kind);

/// Everything measured for one run.
struct RunStats {
  double Seconds = 0;
  CheckCounters::Snapshot Checks{};
  /// Distinct issues (Figure 7 buckets).
  uint64_t Issues = 0;
  /// Raw error events.
  uint64_t ErrorEvents = 0;
  /// Peak heap footprint: low-fat block bytes under instrumented
  /// policies; malloc usable bytes under the uninstrumented baseline.
  uint64_t PeakHeapBytes = 0;
  /// The workload checksum (identical across policies by construction).
  uint64_t Checksum = 0;
};

/// Runs \p W once under \p Kind at \p Scale. When \p LogStream is
/// non-null the runtime logs each issue there (Figure 7 logging mode);
/// otherwise errors are only counted (performance mode).
RunStats runWorkload(const Workload &W, PolicyKind Kind, unsigned Scale,
                     std::FILE *LogStream = nullptr);

/// Multi-threaded pool mode: fans \p Threads copies of the workload
/// across a concurrent::SessionPool with one shard per thread. Each
/// worker runs the kernel against its own shard runtime (private
/// sub-arena, private counters); afterwards the per-shard
/// CheckCounters snapshots are merged (Snapshot::operator+=), pending
/// error events are drained to the pool's central reporter, and the
/// heap peak is read off the shared sharded heap. The kernels are
/// deterministic, so every worker must produce the same checksum — the
/// harness verifies this and returns it. Threads <= 1 degrades to
/// runWorkload.
RunStats runWorkloadMT(const Workload &W, PolicyKind Kind, unsigned Scale,
                       unsigned Threads, std::FILE *LogStream = nullptr);

} // namespace workloads
} // namespace effective

#endif // EFFECTIVE_WORKLOADS_HARNESS_H
