//===- workloads/Workload.h - Benchmark workload framework ------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload framework behind the Figure 7-10 reproductions. Each
/// SPEC2006 benchmark (and each Firefox browser benchmark) is
/// represented by a synthetic kernel with the same allocation and
/// access pattern, templated over the instrumentation Policy so the
/// paper's four build variants (uninstrumented / -type / -bounds /
/// full) compile to genuinely different native code.
///
/// Every kernel returns a checksum that must be identical across
/// policies — the harness verifies this, guaranteeing all variants do
/// the same work.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_WORKLOADS_WORKLOAD_H
#define EFFECTIVE_WORKLOADS_WORKLOAD_H

#include "core/CheckedPtr.h"

#include <vector>

namespace effective {
namespace workloads {

/// Static facts about one workload (display data for the tables; the
/// kilo-sLOC column reproduces the paper's Figure 7 values for the
/// original programs our kernels stand in for).
struct WorkloadInfo {
  const char *Name;
  /// "C" or "C++" (Figure 7 marks C++ benchmarks).
  const char *Language;
  /// The original program's kilo-sLOC (Figure 7 column).
  double KiloSloc;
  /// Number of distinct seeded issues (what Figure 7's #Issues-found
  /// should report when run under full instrumentation; 0 = clean).
  unsigned SeededIssues;
};

/// One workload: info plus one entry point per instrumentation policy.
struct Workload {
  WorkloadInfo Info;
  uint64_t (*RunFull)(Runtime &RT, unsigned Scale);
  uint64_t (*RunBounds)(Runtime &RT, unsigned Scale);
  uint64_t (*RunType)(Runtime &RT, unsigned Scale);
  uint64_t (*RunNone)(Runtime &RT, unsigned Scale);
};

/// Expands to the four per-policy instantiations of a workload
/// function template.
#define EFFSAN_WORKLOAD_ENTRIES(FN)                                          \
  FN<::effective::FullPolicy>, FN<::effective::BoundsPolicy>,                \
      FN<::effective::TypePolicy>, FN<::effective::NonePolicy>

/// The 19 SPEC2006 stand-in kernels, in Figure 7 order.
const std::vector<Workload> &specWorkloads();

/// The browser benchmark stand-ins, in Figure 10 order.
const std::vector<Workload> &browserWorkloads();

} // namespace workloads
} // namespace effective

#endif // EFFECTIVE_WORKLOADS_WORKLOAD_H
