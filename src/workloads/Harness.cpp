//===- workloads/Harness.cpp - Workload measurement harness ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "workloads/Support.h"

#include <chrono>

using namespace effective;
using namespace effective::workloads;

const char *effective::workloads::policyKindName(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::None:
    return "Uninstrumented";
  case PolicyKind::Type:
    return "EffectiveSan-type";
  case PolicyKind::Bounds:
    return "EffectiveSan-bounds";
  case PolicyKind::Full:
    return "EffectiveSan (full)";
  }
  return "?";
}

CheckPolicy effective::workloads::checkPolicyFor(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::None:
    return CheckPolicy::Off;
  case PolicyKind::Type:
    return CheckPolicy::TypeOnly;
  case PolicyKind::Bounds:
    return CheckPolicy::BoundsOnly;
  case PolicyKind::Full:
    return CheckPolicy::Full;
  }
  return CheckPolicy::Full;
}

RunStats effective::workloads::runWorkload(const Workload &W,
                                           PolicyKind Kind, unsigned Scale,
                                           std::FILE *LogStream) {
  SessionOptions Options;
  // The kernels select their instrumentation at compile time (the
  // EFFSAN_WORKLOAD_ENTRIES template variants) and drive the Runtime
  // directly; the session policy is set to match so anything
  // introspecting the session sees a consistent configuration.
  Options.Policy = checkPolicyFor(Kind);
  Options.Reporter.Mode =
      LogStream ? ReportMode::Log : ReportMode::Count;
  Options.Reporter.Stream = LogStream;
  // All workloads share the global type context (types are interned
  // once, like the paper's weak-symbol meta data) but get a private
  // session — heap, counters and reporter — per run.
  Sanitizer Session(TypeContext::global(), Options);
  SanitizerScope Scope(Session);
  Runtime &RT = Session.runtime();
  MallocTally::reset();

  uint64_t (*Run)(Runtime &, unsigned) = nullptr;
  switch (Kind) {
  case PolicyKind::None:
    Run = W.RunNone;
    break;
  case PolicyKind::Type:
    Run = W.RunType;
    break;
  case PolicyKind::Bounds:
    Run = W.RunBounds;
    break;
  case PolicyKind::Full:
    Run = W.RunFull;
    break;
  }

  auto Start = std::chrono::steady_clock::now();
  uint64_t Checksum = Run(RT, Scale);
  auto End = std::chrono::steady_clock::now();

  RunStats Stats;
  Stats.Seconds = std::chrono::duration<double>(End - Start).count();
  Stats.Checks = RT.counters().snapshot();
  Stats.Issues = RT.reporter().numIssues();
  Stats.ErrorEvents = RT.reporter().numEvents();
  Stats.PeakHeapBytes = Kind == PolicyKind::None
                            ? MallocTally::peakBytes()
                            : RT.heap().stats().PeakBlockBytesInUse;
  Stats.Checksum = Checksum;
  return Stats;
}
