//===- workloads/Harness.cpp - Workload measurement harness ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "concurrent/SessionPool.h"
#include "workloads/Support.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace effective;
using namespace effective::workloads;

namespace {

uint64_t (*entryFor(const Workload &W, PolicyKind Kind))(Runtime &,
                                                         unsigned) {
  switch (Kind) {
  case PolicyKind::None:
    return W.RunNone;
  case PolicyKind::Type:
    return W.RunType;
  case PolicyKind::Bounds:
    return W.RunBounds;
  case PolicyKind::Full:
    return W.RunFull;
  }
  return W.RunFull;
}

} // namespace

const char *effective::workloads::policyKindName(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::None:
    return "Uninstrumented";
  case PolicyKind::Type:
    return "EffectiveSan-type";
  case PolicyKind::Bounds:
    return "EffectiveSan-bounds";
  case PolicyKind::Full:
    return "EffectiveSan (full)";
  }
  return "?";
}

CheckPolicy effective::workloads::checkPolicyFor(PolicyKind Kind) {
  switch (Kind) {
  case PolicyKind::None:
    return CheckPolicy::Off;
  case PolicyKind::Type:
    return CheckPolicy::TypeOnly;
  case PolicyKind::Bounds:
    return CheckPolicy::BoundsOnly;
  case PolicyKind::Full:
    return CheckPolicy::Full;
  }
  return CheckPolicy::Full;
}

RunStats effective::workloads::runWorkload(const Workload &W,
                                           PolicyKind Kind, unsigned Scale,
                                           std::FILE *LogStream) {
  SessionOptions Options;
  // The kernels select their instrumentation at compile time (the
  // EFFSAN_WORKLOAD_ENTRIES template variants) and drive the Runtime
  // directly; the session policy is set to match so anything
  // introspecting the session sees a consistent configuration.
  Options.Policy = checkPolicyFor(Kind);
  Options.Reporter.Mode =
      LogStream ? ReportMode::Log : ReportMode::Count;
  Options.Reporter.Stream = LogStream;
  // All workloads share the global type context (types are interned
  // once, like the paper's weak-symbol meta data) but get a private
  // session — heap, counters and reporter — per run.
  Sanitizer Session(TypeContext::global(), Options);
  SanitizerScope Scope(Session);
  Runtime &RT = Session.runtime();
  MallocTally::reset();

  uint64_t (*Run)(Runtime &, unsigned) = entryFor(W, Kind);

  auto Start = std::chrono::steady_clock::now();
  uint64_t Checksum = Run(RT, Scale);
  auto End = std::chrono::steady_clock::now();

  RunStats Stats;
  Stats.Seconds = std::chrono::duration<double>(End - Start).count();
  Stats.Checks = RT.counters().snapshot();
  Stats.Issues = RT.reporter().numIssues();
  Stats.ErrorEvents = RT.reporter().numEvents();
  Stats.PeakHeapBytes = Kind == PolicyKind::None
                            ? MallocTally::peakBytes()
                            : RT.heap().stats().PeakBlockBytesInUse;
  Stats.Checksum = Checksum;
  return Stats;
}

RunStats effective::workloads::runWorkloadMT(const Workload &W,
                                             PolicyKind Kind,
                                             unsigned Scale,
                                             unsigned Threads,
                                             std::FILE *LogStream) {
  if (Threads <= 1)
    return runWorkload(W, Kind, Scale, LogStream);

  concurrent::PoolOptions Options;
  Options.Shards = Threads;
  Options.Policy = checkPolicyFor(Kind);
  Options.Reporter.Mode = LogStream ? ReportMode::Log : ReportMode::Count;
  Options.Reporter.Stream = LogStream;
  // Types shared globally (interned once), session state per shard.
  concurrent::SessionPool Pool(TypeContext::global(), Options);
  MallocTally::reset();

  uint64_t (*Run)(Runtime &, unsigned) = entryFor(W, Kind);

  std::vector<uint64_t> Checksums(Threads, 0);
  auto Start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Workers;
    Workers.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T) {
      Workers.emplace_back([&, T] {
        // Each worker drives its own shard's runtime — no shared
        // allocator locks, no shared counter cache lines. The scope
        // binds this thread's CheckedPtr instrumentation to the shard.
        Runtime &RT = Pool.shard(T).runtime();
        RuntimeScope Scope(RT);
        Checksums[T] = Run(RT, Scale);
      });
    }
    for (std::thread &Worker : Workers)
      Worker.join();
  }
  size_t Drained = Pool.drain();
  (void)Drained;
  auto End = std::chrono::steady_clock::now();

  // The kernels are deterministic: a checksum divergence means a shard
  // saw cross-thread interference. Checked unconditionally — the
  // benchmarks run with NDEBUG, which is exactly where such a bug
  // would otherwise pass silently.
  for (unsigned T = 1; T < Threads; ++T) {
    if (Checksums[T] != Checksums[0]) {
      std::fprintf(stderr,
                   "FATAL: %s: shard %u checksum %llu != shard 0 "
                   "checksum %llu (cross-thread interference)\n",
                   W.Info.Name, T, (unsigned long long)Checksums[T],
                   (unsigned long long)Checksums[0]);
      std::abort();
    }
  }

  RunStats Stats;
  Stats.Seconds = std::chrono::duration<double>(End - Start).count();
  Stats.Checks = Pool.counters();
  Stats.Issues = Pool.reporter().numIssues();
  Stats.ErrorEvents = Pool.reporter().numEvents();
  Stats.PeakHeapBytes = Kind == PolicyKind::None
                            ? MallocTally::peakBytes()
                            : Pool.heap().stats().PeakBlockBytesInUse;
  Stats.Checksum = Checksums[0];
  return Stats;
}
