//===- workloads/Support.h - Workload helpers -------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for workload kernels: policy-aware allocation (typed
/// low-fat allocation under instrumented policies, plain malloc with
/// footprint accounting under the uninstrumented baseline, so Figure 9
/// compares real memory numbers), a deterministic PRNG, and the
/// checksum mixer.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_WORKLOADS_SUPPORT_H
#define EFFECTIVE_WORKLOADS_SUPPORT_H

#include "core/CheckedPtr.h"
#include "support/Hashing.h"

#include <atomic>
#include <cstdlib>
#include <malloc.h>

namespace effective {
namespace workloads {

/// Footprint accounting for the uninstrumented (plain malloc) baseline;
/// stands in for the RSS measurements of Figure 9.
class MallocTally {
public:
  static void noteAlloc(void *Ptr) {
    uint64_t Size = malloc_usable_size(Ptr);
    uint64_t Now =
        current().fetch_add(Size, std::memory_order_relaxed) + Size;
    uint64_t Prev = peak().load(std::memory_order_relaxed);
    while (Now > Prev &&
           !peak().compare_exchange_weak(Prev, Now,
                                         std::memory_order_relaxed)) {
    }
  }

  static void noteFree(void *Ptr) {
    current().fetch_sub(malloc_usable_size(Ptr),
                        std::memory_order_relaxed);
  }

  static void reset() {
    current().store(0, std::memory_order_relaxed);
    peak().store(0, std::memory_order_relaxed);
  }

  static uint64_t peakBytes() {
    return peak().load(std::memory_order_relaxed);
  }

private:
  static std::atomic<uint64_t> &current() {
    static std::atomic<uint64_t> Value{0};
    return Value;
  }
  static std::atomic<uint64_t> &peak() {
    static std::atomic<uint64_t> Value{0};
    return Value;
  }
};

/// Allocates an array of \p Count objects of type \p T under policy
/// \p P: typed low-fat allocation when instrumented, plain malloc (with
/// tally) for the uninstrumented baseline.
template <typename T, typename P>
CheckedPtr<T, P> allocArray(Runtime &RT, size_t Count) {
  if constexpr (std::is_same_v<P, NonePolicy>) {
    T *Raw = static_cast<T *>(std::malloc(Count * sizeof(T)));
    MallocTally::noteAlloc(Raw);
    return CheckedPtr<T, P>::withBounds(Raw, detail::NoBounds());
  } else {
    return allocateChecked<T, P>(RT, Count);
  }
}

/// Allocates a single object.
template <typename T, typename P> CheckedPtr<T, P> allocOne(Runtime &RT) {
  return allocArray<T, P>(RT, 1);
}

/// Frees an allocation made by allocArray/allocOne.
template <typename T, typename P>
void freeArray(Runtime &RT, CheckedPtr<T, P> Ptr) {
  if constexpr (std::is_same_v<P, NonePolicy>) {
    if (Ptr.raw()) {
      MallocTally::noteFree(Ptr.raw());
      std::free(Ptr.raw());
    }
  } else {
    RT.deallocate(Ptr.raw());
  }
}

/// True when the policy carries any instrumentation; seeded bug phases
/// run only then (under the uninstrumented baseline an out-of-bounds
/// write would corrupt real malloc memory).
template <typename P> constexpr bool isInstrumented() {
  return P::CheckInputs || P::CheckCasts || P::CheckBounds;
}

/// Models a pointer crossing a function-call boundary (Figure 3 rules
/// (g) then (a)): the caller's escaping pointer is re-checked by the
/// callee against its declared parameter type. Kernels call this at the
/// top of each phase that a real program would structure as a separate
/// function, so the Full variant performs a type_check per call and the
/// -bounds variant a bounds_get, exactly as the instrumented binaries
/// in Section 6 do.
template <typename T, typename P>
CheckedPtr<T, P> enterFunction(CheckedPtr<T, P> Ptr) {
  if constexpr (isInstrumented<P>())
    return CheckedPtr<T, P>::input(Ptr.escape());
  else
    return Ptr;
}

/// Deterministic xorshift PRNG (all workloads must behave identically
/// across policies and runs).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b9) {}

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform value in [0, Bound).
  uint64_t next(uint64_t Bound) { return next() % Bound; }

  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

/// Accumulates a workload checksum.
inline uint64_t mixChecksum(uint64_t Acc, uint64_t Value) {
  return hashCombine(Acc, Value);
}

} // namespace workloads
} // namespace effective

#endif // EFFECTIVE_WORKLOADS_SUPPORT_H
