//===- workloads/browser/Browser.cpp - Firefox stand-in workloads ---------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Browser-benchmark stand-ins for the Figure 10 evaluation (Firefox 52
/// under Octane, Dromaeo JS, SunSpider, JS V8, JS DOM, CoreJS, JS Lib
/// and CSS Selector). Three engines are shared across the benchmarks
/// with different mixes:
///
///  * a JS-engine-like object system (hidden-class shapes, slot-based
///    objects, massive temporary churn — the behavior [11] blames for
///    browsers' higher type-checking overheads);
///  * a polymorphic DOM tree (build / mutate / traverse, with the
///    checked downcasts layout engines perform constantly);
///  * a CSS selector matcher over that DOM.
///
/// Seeded issues (JS DOM only) mirror the paper's Firefox findings:
/// casts between template instantiations (nsTArray_Impl<void*> vs
/// <T*>), a custom-memory-allocator header type clash (XPT_ArenaCalloc
/// / BLK_HDR), and a container cast.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/Workload.h"

#include <new>

namespace brw {

//===----------------------------------------------------------------------===//
// JS engine objects
//===----------------------------------------------------------------------===//

struct JsShape {
  int NumProps;
  int ShapeId;
  JsShape *Parent;
};

struct JsObject {
  JsShape *Shape;
  JsObject *Proto;
  double Slots[6];
};

struct JsString {
  unsigned Len;
  unsigned Hash;
  char Chars[24];
};

//===----------------------------------------------------------------------===//
// DOM
//===----------------------------------------------------------------------===//

struct DomNode {
  virtual ~DomNode() = default;
  DomNode *FirstChild = nullptr;
  DomNode *NextSibling = nullptr;
  int NodeType = 0;
};

struct DomElement : DomNode {
  int Tag = 0;
  unsigned ClassBits = 0;
  int AttrCount = 0;
};

struct DomText : DomNode {
  unsigned TextLen = 0;
};

//===----------------------------------------------------------------------===//
// Types for the seeded Firefox issues
//===----------------------------------------------------------------------===//

/// nsTArray_Impl<PVRLayerParent*> vs nsTArray_Impl<void*>: equivalent
/// modulo template parameters, but distinct dynamic types.
struct ArrayImplLayer {
  DomNode **Elements;
  unsigned Length;
  unsigned Capacity;
};

struct ArrayImplVoid {
  void **Elements;
  unsigned Length;
  unsigned Capacity;
};

/// The XPT arena's internal block header (a CMA the paper flags).
struct BlkHdr {
  BlkHdr *NextBlock;
  unsigned FreeBytes;
  unsigned Flags;
};

struct XptMethodDescriptor {
  long NameOffset;
  int NumArgs;
  int Flags;
};

} // namespace brw

EFFECTIVE_REFLECT(brw::JsShape, NumProps, ShapeId, Parent);
EFFECTIVE_REFLECT(brw::JsObject, Shape, Proto, Slots);
EFFECTIVE_REFLECT(brw::JsString, Len, Hash, Chars);
EFFECTIVE_REFLECT_POLY(brw::DomNode, FirstChild, NextSibling, NodeType);
EFFECTIVE_REFLECT_DERIVED(brw::DomElement, brw::DomNode, Tag, ClassBits,
                          AttrCount);
EFFECTIVE_REFLECT_DERIVED(brw::DomText, brw::DomNode, TextLen);
EFFECTIVE_REFLECT(brw::ArrayImplLayer, Elements, Length, Capacity);
EFFECTIVE_REFLECT(brw::ArrayImplVoid, Elements, Length, Capacity);
EFFECTIVE_REFLECT(brw::BlkHdr, NextBlock, FreeBytes, Flags);
EFFECTIVE_REFLECT(brw::XptMethodDescriptor, NameOffset, NumArgs, Flags);

namespace effective {
namespace workloads {
namespace {

using namespace brw;

//===----------------------------------------------------------------------===//
// JS engine churn
//===----------------------------------------------------------------------===//

/// Allocates shape-lineage objects, reads/writes slots, and discards
/// most of them immediately — the temporary-object churn of [11].
template <typename P>
uint64_t jsChurn(Runtime &RT, Rng &R, unsigned Ops, unsigned StringRatio) {
  constexpr unsigned NumShapes = 24;
  constexpr unsigned LiveSetSize = 64;

  // Shape lineage (hidden classes).
  CheckedPtr<JsShape, P> Shapes[NumShapes];
  for (unsigned I = 0; I < NumShapes; ++I) {
    Shapes[I] = allocOne<JsShape, P>(RT);
    Shapes[I]->NumProps = static_cast<int>(I % 6) + 1;
    Shapes[I]->ShapeId = static_cast<int>(I);
    Shapes[I]->Parent = I == 0 ? nullptr : Shapes[I - 1].raw();
  }

  CheckedPtr<JsObject, P> LiveSet[LiveSetSize];
  uint64_t Accum = 0;
  for (unsigned Op = 0; Op < Ops; ++Op) {
    auto Obj = allocOne<JsObject, P>(RT);
    Obj->Shape = Shapes[R.next(NumShapes)].raw();
    Obj->Proto = nullptr;
    auto Slots = Obj.field(&JsObject::Slots);
    auto Shape = CheckedPtr<JsShape, P>::input(Obj->Shape);
    int Props = Shape->NumProps;
    for (int S = 0; S < Props; ++S)
      Slots[S] = static_cast<double>(Op + S);
    // Property lookup: one proto hop plus a shape-lineage walk, like a
    // JS [[Get]] doing shape checks on the way up. Every hop loads a
    // pointer from memory and re-checks it (rule (c)), which is where
    // type-checking tools pay on engine workloads [11]. (Only the
    // immediate proto is dereferenced — older chain entries may have
    // been evicted from the live set and freed.)
    unsigned Slot = R.next(LiveSetSize);
    if (LiveSet[Slot].raw()) {
      Obj->Proto = LiveSet[Slot].raw();
      auto Proto = CheckedPtr<JsObject, P>::input(Obj->Proto);
      auto ProtoSlots = Proto.field(&JsObject::Slots);
      Accum += static_cast<uint64_t>(ProtoSlots[0]);
    }
    auto Lineage = CheckedPtr<JsShape, P>::input(Obj->Shape);
    for (int Hop = 0; Hop < 8 && Lineage.raw(); ++Hop) {
      Accum += static_cast<uint64_t>(Lineage->ShapeId);
      Lineage = CheckedPtr<JsShape, P>::input(Lineage->Parent);
    }
    if (StringRatio && Op % StringRatio == 0) {
      auto Str = allocOne<JsString, P>(RT);
      auto Chars = Str.field(&JsString::Chars);
      unsigned Len = static_cast<unsigned>(R.next(23));
      for (unsigned I = 0; I < Len; ++I)
        Chars[I] = static_cast<char>('a' + (Op + I) % 26);
      Str->Len = Len;
      Str->Hash = static_cast<unsigned>(hashMix(Op));
      Accum += Str->Hash & 0xff;
      freeArray(RT, Str); // Temporary: dies immediately.
    }
    // Rotate the live set; evicted objects die (churn).
    if (LiveSet[Slot].raw())
      freeArray(RT, LiveSet[Slot]);
    LiveSet[Slot] = Obj;
  }

  for (unsigned I = 0; I < LiveSetSize; ++I)
    if (LiveSet[I].raw())
      freeArray(RT, LiveSet[I]);
  for (unsigned I = 0; I < NumShapes; ++I)
    freeArray(RT, Shapes[I]);
  return Accum;
}

//===----------------------------------------------------------------------===//
// DOM build / traverse / mutate
//===----------------------------------------------------------------------===//

template <typename P>
CheckedPtr<DomElement, P> buildDom(Runtime &RT, Rng &R, int Depth,
                                   int &Budget) {
  auto Elem = allocOne<DomElement, P>(RT);
  new (Elem.raw()) DomElement();
  Elem->NodeType = 1;
  Elem->Tag = static_cast<int>(R.next(24));
  Elem->ClassBits = static_cast<unsigned>(R.next());
  DomNode *Prev = nullptr;
  int Children = Depth > 0 ? static_cast<int>(R.next(4)) + 1 : 0;
  for (int C = 0; C < Children && Budget > 0; ++C) {
    --Budget;
    CheckedPtr<DomNode, P> Child;
    if (R.next(3) == 0) {
      auto Text = allocOne<DomText, P>(RT);
      new (Text.raw()) DomText();
      Text->NodeType = 3;
      Text->TextLen = static_cast<unsigned>(R.next(80));
      Child = CheckedPtr<DomNode, P>::fromCast(Text);
    } else {
      auto Sub = buildDom<P>(RT, R, Depth - 1, Budget);
      Child = CheckedPtr<DomNode, P>::fromCast(Sub);
    }
    if (Prev)
      CheckedPtr<DomNode, P>::input(Prev)->NextSibling = Child.escape();
    else
      Elem->FirstChild = Child.escape();
    Prev = Child.raw();
  }
  return Elem;
}

template <typename P>
uint64_t traverseDom(CheckedPtr<DomNode, P> Node, unsigned &Elements) {
  uint64_t Sum = 0;
  while (Node.raw()) {
    if (Node->NodeType == 1) {
      auto Elem = CheckedPtr<DomElement, P>::fromCast(Node);
      ++Elements;
      Sum += static_cast<uint64_t>(Elem->Tag);
      Sum += traverseDom(CheckedPtr<DomNode, P>::input(Node->FirstChild),
                         Elements);
    } else {
      Sum += 1;
    }
    Node = CheckedPtr<DomNode, P>::input(Node->NextSibling);
  }
  return Sum;
}

template <typename P>
void freeDom(Runtime &RT, CheckedPtr<DomNode, P> Node) {
  while (Node.raw()) {
    auto Next = CheckedPtr<DomNode, P>::input(Node->NextSibling);
    freeDom(RT, CheckedPtr<DomNode, P>::input(Node->FirstChild));
    freeArray(RT, Node);
    Node = Next;
  }
}

/// A compiled CSS selector: optional ancestor (tag) then subject
/// (tag + class bit).
struct Selector {
  int AncestorTag; // -1 = none.
  int SubjectTag;  // -1 = any.
  unsigned ClassMask;
};

template <typename P>
uint64_t matchSelectors(CheckedPtr<DomNode, P> Node, const Selector &Sel,
                        bool UnderAncestor) {
  uint64_t Matches = 0;
  while (Node.raw()) {
    bool NowUnder = UnderAncestor;
    if (Node->NodeType == 1) {
      auto Elem = CheckedPtr<DomElement, P>::fromCast(Node);
      if (Sel.AncestorTag >= 0 && Elem->Tag == Sel.AncestorTag)
        NowUnder = true;
      bool SubjectOk = Sel.SubjectTag < 0 || Elem->Tag == Sel.SubjectTag;
      bool ClassOk = (Elem->ClassBits & Sel.ClassMask) == Sel.ClassMask;
      bool AncestorOk = Sel.AncestorTag < 0 || UnderAncestor;
      if (SubjectOk && ClassOk && AncestorOk)
        ++Matches;
      Matches += matchSelectors(
          CheckedPtr<DomNode, P>::input(Node->FirstChild), Sel, NowUnder);
    }
    Node = CheckedPtr<DomNode, P>::input(Node->NextSibling);
  }
  return Matches;
}

template <typename P> void seededFirefoxBugs(Runtime &RT) {
  if constexpr (!isInstrumented<P>())
    return;
  // (1) Template-parameter confusion: nsTArray_Impl<T*> as <void*>.
  // (The void* direction is an allowed coercion; the reverse between
  // two concrete instantiations is flagged.)
  {
    auto Layers = allocOne<ArrayImplLayer, P>(RT);
    auto AsVoid = CheckedPtr<ArrayImplVoid, P>::fromCast(Layers); // 1
    (void)AsVoid;
    freeArray(RT, Layers);
  }
  // (2) CMA header confusion: the XPT arena returns blocks typed as its
  // internal BLK_HDR.
  {
    auto Block = allocOne<BlkHdr, P>(RT);
    auto Desc = CheckedPtr<XptMethodDescriptor, P>::fromCast(Block); // 2
    (void)Desc;
    freeArray(RT, Block);
  }
  // (3) Struct cast to a fundamental array (int[]) for hashing.
  {
    auto Desc = allocOne<XptMethodDescriptor, P>(RT);
    auto Words = CheckedPtr<int, P>::fromCast(Desc); // 3
    (void)Words;
    freeArray(RT, Desc);
  }
}

//===----------------------------------------------------------------------===//
// Benchmark mixes
//===----------------------------------------------------------------------===//

/// Parameter mix for one browser benchmark.
struct BrowserMix {
  unsigned JsOps;        // jsChurn operations per scale unit.
  unsigned StringRatio;  // 0 = no strings; else every Nth op.
  unsigned DomBudget;    // DOM nodes per document (0 = no DOM).
  unsigned Selectors;    // CSS selector queries per document.
  bool SeedBugs;
};

template <BrowserMix const &Mix, typename P>
uint64_t runBrowser(Runtime &RT, unsigned Scale) {
  Rng R(0xb0b);
  uint64_t Checksum = 0xb0;
  for (unsigned Round = 0; Round < Scale; ++Round) {
    if (Mix.JsOps)
      Checksum = mixChecksum(
          Checksum, jsChurn<P>(RT, R, Mix.JsOps, Mix.StringRatio));
    if (Mix.DomBudget) {
      int Budget = static_cast<int>(Mix.DomBudget);
      auto Root = buildDom<P>(RT, R, 7, Budget);
      unsigned Elements = 0;
      Checksum = mixChecksum(
          Checksum,
          traverseDom(CheckedPtr<DomNode, P>::fromCast(Root), Elements));
      for (unsigned S = 0; S < Mix.Selectors; ++S) {
        Selector Sel;
        Sel.AncestorTag = S % 3 == 0 ? static_cast<int>(R.next(24)) : -1;
        Sel.SubjectTag = static_cast<int>(R.next(24));
        Sel.ClassMask = 1u << R.next(8);
        Checksum = mixChecksum(
            Checksum,
            matchSelectors(CheckedPtr<DomNode, P>::fromCast(Root), Sel,
                           false));
      }
      freeDom(RT, CheckedPtr<DomNode, P>::fromCast(Root));
    }
  }
  if (Mix.SeedBugs)
    seededFirefoxBugs<P>(RT);
  return Checksum;
}

// The eight Figure 10 benchmarks as parameter mixes.
constexpr BrowserMix OctaneMix = {2600, 16, 300, 6, false};
constexpr BrowserMix DromaeoMix = {2200, 8, 0, 0, false};
constexpr BrowserMix SunSpiderMix = {1700, 4, 0, 0, false};
constexpr BrowserMix V8Mix = {2800, 0, 0, 0, false};
constexpr BrowserMix JsDomMix = {420, 0, 900, 24, true};
constexpr BrowserMix CoreJsMix = {1900, 12, 0, 0, false};
constexpr BrowserMix JsLibMix = {1300, 6, 380, 12, false};
constexpr BrowserMix CssMix = {0, 0, 900, 64, false};

template <typename P> uint64_t runOctane(Runtime &RT, unsigned Scale) {
  return runBrowser<OctaneMix, P>(RT, Scale);
}
template <typename P> uint64_t runDromaeo(Runtime &RT, unsigned Scale) {
  return runBrowser<DromaeoMix, P>(RT, Scale);
}
template <typename P> uint64_t runSunSpider(Runtime &RT, unsigned Scale) {
  return runBrowser<SunSpiderMix, P>(RT, Scale);
}
template <typename P> uint64_t runV8(Runtime &RT, unsigned Scale) {
  return runBrowser<V8Mix, P>(RT, Scale);
}
template <typename P> uint64_t runJsDom(Runtime &RT, unsigned Scale) {
  return runBrowser<JsDomMix, P>(RT, Scale);
}
template <typename P> uint64_t runCoreJs(Runtime &RT, unsigned Scale) {
  return runBrowser<CoreJsMix, P>(RT, Scale);
}
template <typename P> uint64_t runJsLib(Runtime &RT, unsigned Scale) {
  return runBrowser<JsLibMix, P>(RT, Scale);
}
template <typename P> uint64_t runCss(Runtime &RT, unsigned Scale) {
  return runBrowser<CssMix, P>(RT, Scale);
}

} // namespace

const std::vector<Workload> &browserWorkloads() {
  static const std::vector<Workload> Workloads = {
      {{"Octane", "C++", 7900, 0}, EFFSAN_WORKLOAD_ENTRIES(runOctane)},
      {{"Dromaeo JS", "C++", 7900, 0},
       EFFSAN_WORKLOAD_ENTRIES(runDromaeo)},
      {{"SunSpider", "C++", 7900, 0},
       EFFSAN_WORKLOAD_ENTRIES(runSunSpider)},
      {{"JS V8", "C++", 7900, 0}, EFFSAN_WORKLOAD_ENTRIES(runV8)},
      {{"JS DOM", "C++", 7900, 3}, EFFSAN_WORKLOAD_ENTRIES(runJsDom)},
      {{"CoreJS", "C++", 7900, 0}, EFFSAN_WORKLOAD_ENTRIES(runCoreJs)},
      {{"JS Lib", "C++", 7900, 0}, EFFSAN_WORKLOAD_ENTRIES(runJsLib)},
      {{"CSS Selector", "C++", 7900, 0}, EFFSAN_WORKLOAD_ENTRIES(runCss)},
  };
  return Workloads;
}

} // namespace workloads
} // namespace effective
