//===- workloads/spec/Gcc.cpp - 403.gcc stand-in --------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// An RTL-manipulation kernel standing in for 403.gcc: building random
/// expression DAGs of rtx-like nodes, constant folding, and common
/// sub-expression elimination through a hash table. gcc is the
/// benchmark with the most issues in Figure 7; the seeded set mirrors
/// Section 6.1: the (mode) field overflow into structure padding,
/// incompatible definitions of the same struct tag, casts to (int[])
/// for hashing, container casts and free-list type reuse.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace gccw {

struct RtxNode {
  int Code;
  int Mode;
  RtxNode *Op0;
  RtxNode *Op1;
  long Value;
};

/// The paper's rtx_const: a short mode followed by compiler-inserted
/// padding that gcc (invalidly) reads through the mode field.
struct RtxConst {
  int Code;
  short Mode;
  // 2 bytes of padding here.
  long Value;
};

struct SymbolEntry {
  long NameHash;
  int Index;
  int Flags;
};

struct DoubleConst {
  double Value;
  int Mode;
};

/// Container idiom: an rtx embedded at the head of a list cell.
struct RtxList {
  RtxNode Head;
  RtxList *Tail;
};

} // namespace gccw

EFFECTIVE_REFLECT(gccw::RtxNode, Code, Mode, Op0, Op1, Value);
EFFECTIVE_REFLECT(gccw::RtxConst, Code, Mode, Value);
EFFECTIVE_REFLECT(gccw::SymbolEntry, NameHash, Index, Flags);
EFFECTIVE_REFLECT(gccw::DoubleConst, Value, Mode);
EFFECTIVE_REFLECT(gccw::RtxList, Head, Tail);

namespace effective {
namespace workloads {
namespace {

using namespace gccw;

enum RtxCode { CodeConst = 0, CodePlus, CodeMult, CodeNeg, NumCodes };

template <typename P>
CheckedPtr<RtxNode, P> buildDag(Runtime &RT, Rng &R, unsigned Depth) {
  auto Node = allocOne<RtxNode, P>(RT);
  if (Depth == 0 || R.next(4) == 0) {
    Node->Code = CodeConst;
    Node->Mode = 0;
    Node->Op0 = nullptr;
    Node->Op1 = nullptr;
    Node->Value = static_cast<long>(R.next(1000));
    return Node;
  }
  Node->Code = static_cast<int>(1 + R.next(NumCodes - 1));
  Node->Mode = 1;
  Node->Value = 0;
  Node->Op0 = buildDag<P>(RT, R, Depth - 1).escape();
  Node->Op1 = Node->Code == CodeNeg
                  ? nullptr
                  : buildDag<P>(RT, R, Depth - 1).escape();
  return Node;
}

/// Constant folding: collapses const subtrees bottom-up.
template <typename P>
long foldConstants(Runtime &RT, CheckedPtr<RtxNode, P> Node) {
  if (!Node.raw())
    return 0;
  if (Node->Code == CodeConst)
    return Node->Value;
  long L = foldConstants(RT, CheckedPtr<RtxNode, P>::input(Node->Op0));
  long Rv = foldConstants(RT, CheckedPtr<RtxNode, P>::input(Node->Op1));
  long Result;
  switch (Node->Code) {
  case CodePlus:
    Result = L + Rv;
    break;
  case CodeMult:
    Result = (L % 9973) * (Rv % 9973);
    break;
  default:
    Result = -L;
    break;
  }
  Node->Code = CodeConst;
  Node->Value = Result;
  return Result;
}

template <typename P>
void freeDag(Runtime &RT, CheckedPtr<RtxNode, P> Node) {
  if (!Node.raw())
    return;
  freeDag(RT, CheckedPtr<RtxNode, P>::input(Node->Op0));
  freeDag(RT, CheckedPtr<RtxNode, P>::input(Node->Op1));
  freeArray(RT, Node);
}

template <typename P> void seededBugs(Runtime &RT) {
  if constexpr (!isInstrumented<P>())
    return;
  TypeContext &Ctx = RT.typeContext();
  // (1) The rtx_const (mode) overflow into structure padding: the
  // 2-byte field is read as 4 bytes.
  {
    auto C = allocOne<RtxConst, P>(RT);
    C->Code = CodeConst;
    C->Mode = 5;
    auto Mode = C.field(&RtxConst::Mode);
    Mode.at(0, sizeof(int)); // issue 1: 4-byte read of a short field
    freeArray(RT, C);
  }
  // (2)+(3) Incompatible definitions of the same tag: two "tree_node"
  // records with different layouts (distinct dynamic types). These are
  // cast-site type checks, so they exist only under policies that check
  // casts (full / -type); the -bounds variant never compares types.
  if constexpr (P::CheckCasts) {
    RecordType *DefA = RecordBuilder(Ctx, TypeKind::Struct, "tree_node")
                           .addField("code", Ctx.getInt())
                           .addField("chain", Ctx.getPointer(Ctx.getInt()))
                           .finish();
    RecordType *DefB = RecordBuilder(Ctx, TypeKind::Struct, "tree_node")
                           .addField("code", Ctx.getDouble())
                           .addField("flags", Ctx.getLong())
                           .finish();
    void *Obj = RT.allocate(DefA->size(), DefA);
    RT.typeCheck(Obj, DefB);                               // issue 2
    RT.typeCheck(static_cast<char *>(Obj) + 8,
                 Ctx.getDouble());                         // issue 3
    RT.deallocate(Obj);
  }
  // (4)+(5) Casts to (int[]) to compute hash values: the checksum loop
  // runs off the matched leading int sub-object.
  {
    auto Node = allocOne<RtxNode, P>(RT);
    Node->Code = 1;
    Node->Mode = 2;
    Node->Op0 = nullptr;
    Node->Op1 = nullptr;
    auto Words = CheckedPtr<int, P>::fromCast(Node); // Matches Code...
    uint64_t H = 0;
    for (unsigned I = 0; I < 2; ++I)
      H = H * 31 + static_cast<uint64_t>(Words[I]); // issue 4 at word 1
    (void)H;
    freeArray(RT, Node);
  }
  {
    auto Sym = allocOne<SymbolEntry, P>(RT);
    Sym->NameHash = 42;
    auto Words = CheckedPtr<int, P>::fromCast(Sym); // issue 5: long head
    (void)Words;
    freeArray(RT, Sym);
  }
  // (6) A double-headed struct hashed as int[].
  {
    auto D = allocOne<DoubleConst, P>(RT);
    auto Words = CheckedPtr<int, P>::fromCast(D); // issue 6
    (void)Words;
    freeArray(RT, D);
  }
  // (7) Container cast: an RtxNode treated as the RtxList containing
  // it.
  {
    auto Node = allocOne<RtxNode, P>(RT);
    auto List = CheckedPtr<RtxList, P>::fromCast(Node); // issue 7
    (void)List;
    freeArray(RT, Node);
  }
  // (8) obstack-style reuse as a different type.
  {
    auto Node = allocOne<RtxNode, P>(RT);
    freeArray(RT, Node);
    // Two SymbolEntry records fill the same size class, so the LIFO
    // free list hands back the node's block.
    auto Sym = allocArray<SymbolEntry, P>(RT, 2);
    auto Stale = CheckedPtr<RtxNode, P>::input(Node.raw()); // issue 8
    (void)Stale;
    freeArray(RT, Sym);
  }
  // (9) double* read as long* (TBAA-violating bit tricks).
  {
    auto D = allocArray<double, P>(RT, 4);
    auto AsLong = CheckedPtr<long, P>::fromCast(D); // issue 9
    (void)AsLong;
    freeArray(RT, D);
  }
  // (10) Sub-object overflow: scanning past Op0 into Op1 through a
  // narrowed field pointer.
  {
    auto Node = allocOne<RtxNode, P>(RT);
    Node->Op0 = nullptr;
    Node->Op1 = nullptr;
    auto Op = Node.field(&RtxNode::Op0);
    auto Beyond = Op + 1;
    (void)*Beyond; // issue 10: read outside the narrowed field
    freeArray(RT, Node);
  }
}

template <typename P> uint64_t runGcc(Runtime &RT, unsigned Scale) {
  Rng R(0x6cc);
  uint64_t Checksum = 0x6cc;
  unsigned Dags = 40 * Scale;
  for (unsigned I = 0; I < Dags; ++I) {
    auto Root = buildDag<P>(RT, R, 6);
    Checksum = mixChecksum(Checksum,
                           static_cast<uint64_t>(foldConstants(RT, Root)));
    freeDag(RT, Root);
  }
  seededBugs<P>(RT);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::GccWorkload = {
    {"gcc", "C", 235.8, /*SeededIssues=*/10},
    EFFSAN_WORKLOAD_ENTRIES(runGcc)};
