//===- workloads/spec/Registry.cpp - SPEC workload registry ---------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/spec/SpecWorkloads.h"

using namespace effective;
using namespace effective::workloads;

const std::vector<Workload> &effective::workloads::specWorkloads() {
  // Figure 7 order.
  static const std::vector<Workload> Workloads = {
      PerlbenchWorkload, Bzip2Workload,   GccWorkload,
      McfWorkload,       GobmkWorkload,   HmmerWorkload,
      SjengWorkload,     LibquantumWorkload, H264refWorkload,
      OmnetppWorkload,   AstarWorkload,   XalancbmkWorkload,
      MilcWorkload,      NamdWorkload,    DealIIWorkload,
      SoplexWorkload,    PovrayWorkload,  LbmWorkload,
      Sphinx3Workload,
  };
  return Workloads;
}
