//===- workloads/spec/Xalancbmk.cpp - 483.xalancbmk stand-in --------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// An XML-transformation kernel standing in for 483.xalancbmk: parsing
/// a synthetic markup stream into a polymorphic node tree, then running
/// template-matching traversals. Seeded issues mirror Section 6.1's
/// xalancbmk findings: the two bad C++ downcasts (SchemaGrammar /
/// DOMElementImpl), container casts around stdlib-style buffers, and a
/// phantom-class cast.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

#include <new>

namespace xalanw {

/// Polymorphic grammar hierarchy (the paper's first bad downcast).
struct Grammar {
  virtual ~Grammar() = default;
  virtual int grammarType() const { return 0; }
  int GType = 0;
};

struct SchemaGrammar : Grammar {
  int grammarType() const override { return 1; }
  long SchemaInfo = 0;
};

struct DTDGrammar : Grammar {
  int grammarType() const override { return 2; }
  double DtdEntities = 0;
};

/// Simplified DOM node hierarchy (the paper's second bad downcast is
/// DOMDocumentImpl -> DOMElementImpl).
struct DomNode {
  virtual ~DomNode() = default;
  DomNode *FirstChild = nullptr;
  DomNode *NextSibling = nullptr;
  int NodeKind = 0;
};

struct DomElement : DomNode {
  int TagCode = 0;
  int NumAttrs = 0;
};

struct DomText : DomNode {
  long TextHash = 0;
};

struct DomDocument : DomNode {
  DomElement *Root = nullptr;
  int NumNodes = 0;
};

/// Phantom classes: same layout, different tags (Section 6.1).
struct XalanVectorA {
  long *Data;
  unsigned Size;
  unsigned Cap;
};

struct XalanVectorB {
  long *Data;
  unsigned Size;
  unsigned Cap;
};

/// Container idiom: a buffer embedded at the head of a pool block.
struct PoolBlock {
  long Buffer[8];
  PoolBlock *NextBlock;
};

} // namespace xalanw

EFFECTIVE_REFLECT_POLY(xalanw::Grammar, GType);
EFFECTIVE_REFLECT_DERIVED(xalanw::SchemaGrammar, xalanw::Grammar,
                          SchemaInfo);
EFFECTIVE_REFLECT_DERIVED(xalanw::DTDGrammar, xalanw::Grammar, DtdEntities);
EFFECTIVE_REFLECT_POLY(xalanw::DomNode, FirstChild, NextSibling, NodeKind);
EFFECTIVE_REFLECT_DERIVED(xalanw::DomElement, xalanw::DomNode, TagCode,
                          NumAttrs);
EFFECTIVE_REFLECT_DERIVED(xalanw::DomText, xalanw::DomNode, TextHash);
EFFECTIVE_REFLECT_DERIVED(xalanw::DomDocument, xalanw::DomNode, Root,
                          NumNodes);
EFFECTIVE_REFLECT(xalanw::XalanVectorA, Data, Size, Cap);
EFFECTIVE_REFLECT(xalanw::XalanVectorB, Data, Size, Cap);
EFFECTIVE_REFLECT(xalanw::PoolBlock, Buffer, NextBlock);

namespace effective {
namespace workloads {
namespace {

using namespace xalanw;

/// Builds a random document tree; returns the element count.
template <typename P>
int buildTree(Runtime &RT, Rng &R, CheckedPtr<DomElement, P> Parent,
              int Depth, int &Budget) {
  int Built = 0;
  int Children = static_cast<int>(R.next(4)) + (Depth > 0 ? 1 : 0);
  DomNode *PrevRaw = nullptr;
  for (int C = 0; C < Children && Budget > 0; ++C) {
    --Budget;
    CheckedPtr<DomNode, P> Fresh;
    if (Depth > 0 && R.next(3) != 0) {
      auto Elem = allocOne<DomElement, P>(RT);
      new (Elem.raw()) DomElement();
      Elem->NodeKind = 1;
      Elem->TagCode = static_cast<int>(R.next(32));
      Elem->NumAttrs = static_cast<int>(R.next(4));
      Built += 1 + buildTree(RT, R, Elem, Depth - 1, Budget);
      Fresh = CheckedPtr<DomNode, P>::fromCast(Elem);
    } else {
      auto Text = allocOne<DomText, P>(RT);
      new (Text.raw()) DomText();
      Text->NodeKind = 3;
      Text->TextHash = static_cast<long>(R.next());
      Fresh = CheckedPtr<DomNode, P>::fromCast(Text);
      ++Built;
    }
    if (PrevRaw) {
      auto Prev = CheckedPtr<DomNode, P>::input(PrevRaw);
      Prev->NextSibling = Fresh.escape();
    } else {
      Parent->FirstChild = Fresh.escape();
    }
    PrevRaw = Fresh.raw();
  }
  return Built;
}

/// Template matching: counts elements whose tag matches, recursively.
template <typename P>
long matchTemplates(CheckedPtr<DomNode, P> Node, int Tag) {
  long Matches = 0;
  while (Node.raw()) {
    if (Node->NodeKind == 1) {
      // Valid downcast: NodeKind was checked (like dynamic dispatch).
      auto Elem = CheckedPtr<DomElement, P>::fromCast(Node);
      if (Elem->TagCode == Tag)
        ++Matches;
      Matches +=
          matchTemplates(CheckedPtr<DomNode, P>::input(Node->FirstChild),
                         Tag);
    }
    Node = CheckedPtr<DomNode, P>::input(Node->NextSibling);
  }
  return Matches;
}

template <typename P>
void freeTree(Runtime &RT, CheckedPtr<DomNode, P> Node) {
  while (Node.raw()) {
    auto Next = CheckedPtr<DomNode, P>::input(Node->NextSibling);
    freeTree(RT, CheckedPtr<DomNode, P>::input(Node->FirstChild));
    freeArray(RT, Node);
    Node = Next;
  }
}

template <typename P> void seededBugs(Runtime &RT) {
  if constexpr (!isInstrumented<P>())
    return;
  // (1) The SchemaGrammar bad downcast: nextElement() returned a
  // DTDGrammar.
  {
    auto Dtd = allocOne<DTDGrammar, P>(RT);
    new (Dtd.raw()) DTDGrammar();
    auto Bad = CheckedPtr<SchemaGrammar, P>::fromCast(Dtd); // issue 1
    (void)Bad;
    freeArray(RT, Dtd);
  }
  // (2) The DOMDocumentImpl -> DOMElementImpl bad downcast.
  {
    auto Doc = allocOne<DomDocument, P>(RT);
    new (Doc.raw()) DomDocument();
    auto Bad = CheckedPtr<DomElement, P>::fromCast(Doc); // issue 2
    (void)Bad;
    freeArray(RT, Doc);
  }
  // (3) Container cast: a long buffer treated as the PoolBlock that
  // contains it.
  {
    auto Buf = allocArray<long, P>(RT, 8);
    auto Block = CheckedPtr<PoolBlock, P>::fromCast(Buf); // issue 3
    (void)Block;
    freeArray(RT, Buf);
  }
  // (4) Phantom classes: same layout, different tag.
  {
    auto VecA = allocOne<XalanVectorA, P>(RT);
    auto VecB = CheckedPtr<XalanVectorB, P>::fromCast(VecA); // issue 4
    (void)VecB;
    freeArray(RT, VecA);
  }
  // (5) stdlib-style container cast: element type confused with the
  // vector header (CaVer's reported class of errors).
  {
    auto VecA = allocOne<XalanVectorA, P>(RT);
    auto AsLong = CheckedPtr<long, P>::fromCast(VecA);
    (void)*(AsLong + 1); // issue 5: reads Size/Cap as long
    freeArray(RT, VecA);
  }
}

template <typename P> uint64_t runXalancbmk(Runtime &RT, unsigned Scale) {
  Rng R(0xa1a);
  uint64_t Checksum = 0xa1a;

  unsigned Documents = 3 * Scale;
  for (unsigned D = 0; D < Documents; ++D) {
    auto Doc = allocOne<DomDocument, P>(RT);
    new (Doc.raw()) DomDocument();
    Doc->NodeKind = 9;
    auto Root = allocOne<DomElement, P>(RT);
    new (Root.raw()) DomElement();
    Root->NodeKind = 1;
    Root->TagCode = 0;
    Doc->Root = Root.escape();

    int Budget = 1400;
    int Built = buildTree(RT, R, Root, 6, Budget);
    Doc->NumNodes = Built;

    long Matches = 0;
    for (int Tag = 0; Tag < 8; ++Tag)
      Matches += matchTemplates(
          CheckedPtr<DomNode, P>::input(Root->FirstChild),
          static_cast<int>(R.next(32)));
    Checksum = mixChecksum(Checksum,
                           static_cast<uint64_t>(Matches * 131 + Built));

    freeTree(RT, CheckedPtr<DomNode, P>::input(Root->FirstChild));
    freeArray(RT, Root);
    freeArray(RT, Doc);
  }

  seededBugs<P>(RT);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload
    effective::workloads::XalancbmkWorkload = {
        {"xalancbmk", "C++", 267.4, /*SeededIssues=*/5},
        EFFSAN_WORKLOAD_ENTRIES(runXalancbmk)};
