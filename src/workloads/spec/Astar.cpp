//===- workloads/spec/Astar.cpp - 473.astar stand-in ----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A pathfinding kernel standing in for 473.astar: A* search over
/// procedurally generated terrain grids with a binary-heap open list.
/// Clean: the paper reports zero issues for astar.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace effective {
namespace workloads {
namespace {

constexpr int GridW = 96;
constexpr int GridH = 96;
constexpr int NumCells = GridW * GridH;

template <typename P> struct AstarState {
  CheckedPtr<unsigned char, P> Cost;  // Terrain cost; 255 = wall.
  CheckedPtr<int, P> Dist;            // g-scores.
  CheckedPtr<int, P> Heap;            // Open list (cell indices).
  CheckedPtr<int, P> HeapPos;         // Cell -> heap slot, -1 if absent.
};

template <typename P>
int heuristic(int Cell, int Goal) {
  int Dx = Cell % GridW - Goal % GridW;
  int Dy = Cell / GridW - Goal / GridW;
  return (Dx < 0 ? -Dx : Dx) + (Dy < 0 ? -Dy : Dy);
}

template <typename P>
void heapSwap(AstarState<P> &S, int A, int B) {
  int Tmp = S.Heap[A];
  S.Heap[A] = S.Heap[B];
  S.Heap[B] = Tmp;
  S.HeapPos[S.Heap[A]] = A;
  S.HeapPos[S.Heap[B]] = B;
}

template <typename P>
void heapUp(AstarState<P> &S, int I, int Goal, int Count) {
  (void)Count;
  while (I > 0) {
    int Parent = (I - 1) / 2;
    int Ci = S.Heap[I], Cp = S.Heap[Parent];
    if (S.Dist[Cp] + heuristic<P>(Cp, Goal) <=
        S.Dist[Ci] + heuristic<P>(Ci, Goal))
      break;
    heapSwap(S, I, Parent);
    I = Parent;
  }
}

template <typename P>
void heapDown(AstarState<P> &S, int I, int Goal, int Count) {
  for (;;) {
    int L = 2 * I + 1, R = 2 * I + 2, Best = I;
    if (L < Count && S.Dist[S.Heap[L]] + heuristic<P>(S.Heap[L], Goal) <
                         S.Dist[S.Heap[Best]] +
                             heuristic<P>(S.Heap[Best], Goal))
      Best = L;
    if (R < Count && S.Dist[S.Heap[R]] + heuristic<P>(S.Heap[R], Goal) <
                         S.Dist[S.Heap[Best]] +
                             heuristic<P>(S.Heap[Best], Goal))
      Best = R;
    if (Best == I)
      break;
    heapSwap(S, I, Best);
    I = Best;
  }
}

/// One A* query; returns the path cost or -1.
template <typename P>
int astarSearch(AstarState<P> &S, int Start, int Goal) {
  // Function entry: the search-state pointers are parameters and are
  // re-checked per query (rule (a)).
  S.Cost = enterFunction(S.Cost);
  S.Dist = enterFunction(S.Dist);
  S.Heap = enterFunction(S.Heap);
  S.HeapPos = enterFunction(S.HeapPos);
  for (int I = 0; I < NumCells; ++I) {
    S.Dist[I] = 1 << 28;
    S.HeapPos[I] = -1;
  }
  int Count = 0;
  S.Dist[Start] = 0;
  S.Heap[Count] = Start;
  S.HeapPos[Start] = 0;
  ++Count;

  while (Count > 0) {
    int Cell = S.Heap[0];
    if (Cell == Goal)
      return S.Dist[Cell];
    heapSwap(S, 0, Count - 1);
    --Count;
    S.HeapPos[Cell] = -1;
    heapDown(S, 0, Goal, Count);

    int Row = Cell / GridW, Col = Cell % GridW;
    const int Neighbors[4] = {
        Row > 0 ? Cell - GridW : -1,
        Row < GridH - 1 ? Cell + GridW : -1,
        Col > 0 ? Cell - 1 : -1,
        Col < GridW - 1 ? Cell + 1 : -1,
    };
    for (int N : Neighbors) {
      if (N < 0 || S.Cost[N] == 255)
        continue;
      int Tentative = S.Dist[Cell] + 1 + S.Cost[N];
      if (Tentative >= S.Dist[N])
        continue;
      S.Dist[N] = Tentative;
      if (S.HeapPos[N] < 0) {
        S.Heap[Count] = N;
        S.HeapPos[N] = Count;
        ++Count;
        heapUp(S, Count - 1, Goal, Count);
      } else {
        heapUp(S, S.HeapPos[N], Goal, Count);
      }
    }
  }
  return -1;
}

template <typename P> uint64_t runAstar(Runtime &RT, unsigned Scale) {
  Rng R(0xa57a);
  uint64_t Checksum = 0xa57a;

  AstarState<P> S;
  S.Cost = allocArray<unsigned char, P>(RT, NumCells);
  S.Dist = allocArray<int, P>(RT, NumCells);
  S.Heap = allocArray<int, P>(RT, NumCells);
  S.HeapPos = allocArray<int, P>(RT, NumCells);

  unsigned Maps = 2 * Scale;
  for (unsigned Map = 0; Map < Maps; ++Map) {
    for (int I = 0; I < NumCells; ++I) {
      uint64_t V = R.next(16);
      S.Cost[I] = V == 0 ? 255 : static_cast<unsigned char>(V % 4);
    }
    for (int Query = 0; Query < 6; ++Query) {
      int Start = static_cast<int>(R.next(NumCells));
      int Goal = static_cast<int>(R.next(NumCells));
      if (S.Cost[Start] == 255 || S.Cost[Goal] == 255)
        continue;
      int Cost = astarSearch(S, Start, Goal);
      Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Cost + 2));
    }
  }

  freeArray(RT, S.Cost);
  freeArray(RT, S.Dist);
  freeArray(RT, S.Heap);
  freeArray(RT, S.HeapPos);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::AstarWorkload = {
    {"astar", "C++", 4.3, /*SeededIssues=*/0},
    EFFSAN_WORKLOAD_ENTRIES(runAstar)};
