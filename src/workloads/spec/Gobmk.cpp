//===- workloads/spec/Gobmk.cpp - 445.gobmk stand-in ----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A Go-playing kernel standing in for 445.gobmk: random legal move
/// generation on a 19x19 board with flood-fill liberty counting and
/// capture handling. Clean: the paper reports zero issues for gobmk.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace effective {
namespace workloads {
namespace {

constexpr int BoardSize = 19;
constexpr int NumPoints = BoardSize * BoardSize;

enum Stone : signed char { Empty = 0, Black = 1, White = 2 };

template <typename P> struct Board {
  CheckedPtr<signed char, P> Points;
  CheckedPtr<int, P> Stack;   // Flood-fill worklist.
  CheckedPtr<signed char, P> Mark;
};

/// Counts liberties of the group at \p Start via flood fill; marks the
/// group in Mark with \p Tag.
template <typename P>
int countLiberties(Board<P> &B, int Start, signed char Tag) {
  // The board pointers arrive as function parameters (Figure 3 rule
  // (a)): the callee re-checks them against its declared types.
  B.Points = enterFunction(B.Points);
  B.Stack = enterFunction(B.Stack);
  B.Mark = enterFunction(B.Mark);
  signed char Color = B.Points[Start];
  int Top = 0;
  B.Stack[Top++] = Start;
  B.Mark[Start] = Tag;
  int Liberties = 0;
  while (Top > 0) {
    int Point = B.Stack[--Top];
    int Row = Point / BoardSize, Col = Point % BoardSize;
    const int Neighbors[4] = {
        Row > 0 ? Point - BoardSize : -1,
        Row < BoardSize - 1 ? Point + BoardSize : -1,
        Col > 0 ? Point - 1 : -1,
        Col < BoardSize - 1 ? Point + 1 : -1,
    };
    for (int N : Neighbors) {
      if (N < 0 || B.Mark[N] == Tag)
        continue;
      if (B.Points[N] == Empty) {
        B.Mark[N] = Tag;
        ++Liberties;
      } else if (B.Points[N] == Color) {
        B.Mark[N] = Tag;
        B.Stack[Top++] = N;
      }
    }
  }
  return Liberties;
}

/// Removes the group marked by the last flood fill if it has no
/// liberties; returns captured stones.
template <typename P>
int captureIfDead(Board<P> &B, int Start, signed char Tag) {
  if (countLiberties(B, Start, Tag) > 0)
    return 0;
  signed char Color = B.Points[Start];
  int Captured = 0;
  for (int Point = 0; Point < NumPoints; ++Point) {
    if (B.Mark[Point] == Tag && B.Points[Point] == Color) {
      B.Points[Point] = Empty;
      ++Captured;
    }
  }
  return Captured;
}

template <typename P> uint64_t runGobmk(Runtime &RT, unsigned Scale) {
  Rng R(0x60b);
  uint64_t Checksum = 0x60b;

  Board<P> B;
  B.Points = allocArray<signed char, P>(RT, NumPoints);
  B.Stack = allocArray<int, P>(RT, NumPoints);
  B.Mark = allocArray<signed char, P>(RT, NumPoints);

  unsigned Games = 2 * Scale;
  for (unsigned Game = 0; Game < Games; ++Game) {
    for (int I = 0; I < NumPoints; ++I) {
      B.Points[I] = Empty;
      B.Mark[I] = 0;
    }
    signed char Tag = 0;
    signed char ToMove = Black;
    int Captures = 0;
    for (int Move = 0; Move < 260; ++Move) {
      int Point = static_cast<int>(R.next(NumPoints));
      if (B.Points[Point] != Empty)
        continue;
      B.Points[Point] = ToMove;
      // Check opponent neighbors for captures.
      int Row = Point / BoardSize, Col = Point % BoardSize;
      const int Neighbors[4] = {
          Row > 0 ? Point - BoardSize : -1,
          Row < BoardSize - 1 ? Point + BoardSize : -1,
          Col > 0 ? Point - 1 : -1,
          Col < BoardSize - 1 ? Point + 1 : -1,
      };
      for (int N : Neighbors) {
        if (N < 0 || B.Points[N] == Empty || B.Points[N] == ToMove)
          continue;
        ++Tag;
        if (Tag == 0)
          Tag = 1;
        Captures += captureIfDead(B, N, Tag);
      }
      // Suicide check for our own stone.
      ++Tag;
      if (Tag == 0)
        Tag = 1;
      if (countLiberties(B, Point, Tag) == 0)
        B.Points[Point] = Empty;
      ToMove = ToMove == Black ? White : Black;
    }
    uint64_t Occupied = 0;
    for (int I = 0; I < NumPoints; ++I)
      Occupied += B.Points[I] != Empty;
    Checksum = mixChecksum(Checksum, Occupied * 1000 +
                                         static_cast<uint64_t>(Captures));
  }

  freeArray(RT, B.Points);
  freeArray(RT, B.Stack);
  freeArray(RT, B.Mark);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::GobmkWorkload = {
    {"gobmk", "C", 157.6, /*SeededIssues=*/0},
    EFFSAN_WORKLOAD_ENTRIES(runGobmk)};
