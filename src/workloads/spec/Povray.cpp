//===- workloads/spec/Povray.cpp - 453.povray stand-in --------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A ray-tracing kernel standing in for 453.povray: sphere/plane
/// intersection with Lambertian shading and one reflection bounce.
/// povray's Section 6.1 issues come from its "idiosyncratic
/// implementation of C++-style inheritance using C-style structs with
/// overlapping layouts" — the seeded bugs cast between such prefix-
/// sharing object structs in both directions.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

#include <cmath>

namespace povw {

/// C-style object "hierarchy" with shared prefixes (pre-C++ povray).
struct ObjectBase {
  int Kind;
  int Flags;
  double Transform[3];
};

struct SphereObj {
  int Kind;
  int Flags;
  double Transform[3];
  double Center[3];
  double Radius;
};

struct PlaneObj {
  int Kind;
  int Flags;
  double Transform[3];
  double Normal[3];
  double Offset;
};

struct LightObj {
  int Kind;
  int Flags;
  double Transform[3];
  double Position[3];
  double Intensity;
};

} // namespace povw

EFFECTIVE_REFLECT(povw::ObjectBase, Kind, Flags, Transform);
EFFECTIVE_REFLECT(povw::SphereObj, Kind, Flags, Transform, Center, Radius);
EFFECTIVE_REFLECT(povw::PlaneObj, Kind, Flags, Transform, Normal, Offset);
EFFECTIVE_REFLECT(povw::LightObj, Kind, Flags, Transform, Position,
                  Intensity);

namespace effective {
namespace workloads {
namespace {

using namespace povw;

constexpr int NumSpheres = 12;
constexpr int ImageW = 48;
constexpr int ImageH = 32;

struct Vec3 {
  double X, Y, Z;
};

static Vec3 sub(Vec3 A, Vec3 B) { return {A.X - B.X, A.Y - B.Y, A.Z - B.Z}; }
static double dotp(Vec3 A, Vec3 B) {
  return A.X * B.X + A.Y * B.Y + A.Z * B.Z;
}
static Vec3 scale(Vec3 A, double S) { return {A.X * S, A.Y * S, A.Z * S}; }
static Vec3 add(Vec3 A, Vec3 B) { return {A.X + B.X, A.Y + B.Y, A.Z + B.Z}; }

/// Intersects a ray with a sphere; returns t or -1.
template <typename P>
double hitSphere(CheckedPtr<SphereObj, P> S, Vec3 Origin, Vec3 Dir) {
  auto C = S.field(&SphereObj::Center);
  Vec3 Center{C[0], C[1], C[2]};
  double Radius = S->Radius;
  Vec3 Oc = sub(Origin, Center);
  double B = 2 * dotp(Oc, Dir);
  double Cc = dotp(Oc, Oc) - Radius * Radius;
  double Disc = B * B - 4 * Cc;
  if (Disc < 0)
    return -1;
  double T = (-B - std::sqrt(Disc)) / 2;
  return T > 1e-6 ? T : -1;
}

template <typename P>
double traceRay(CheckedPtr<SphereObj *, P> Scene,
                CheckedPtr<LightObj, P> Light, Vec3 Origin, Vec3 Dir,
                int Depth) {
  double BestT = 1e30;
  int BestIdx = -1;
  for (int I = 0; I < NumSpheres; ++I) {
    auto S = CheckedPtr<SphereObj, P>::input(Scene[I]);
    double T = hitSphere(S, Origin, Dir);
    if (T > 0 && T < BestT) {
      BestT = T;
      BestIdx = I;
    }
  }
  if (BestIdx < 0)
    return 0.05; // Background.
  auto S = CheckedPtr<SphereObj, P>::input(Scene[BestIdx]);
  Vec3 Hit = add(Origin, scale(Dir, BestT));
  auto C = S.field(&SphereObj::Center);
  Vec3 Normal = sub(Hit, Vec3{C[0], C[1], C[2]});
  double Len = std::sqrt(dotp(Normal, Normal));
  Normal = scale(Normal, 1.0 / (Len > 1e-9 ? Len : 1));
  auto LP = Light.field(&LightObj::Position);
  Vec3 ToLight = sub(Vec3{LP[0], LP[1], LP[2]}, Hit);
  double LLen = std::sqrt(dotp(ToLight, ToLight));
  ToLight = scale(ToLight, 1.0 / (LLen > 1e-9 ? LLen : 1));
  double Diffuse = dotp(Normal, ToLight);
  if (Diffuse < 0)
    Diffuse = 0;
  double Shade = 0.1 + Diffuse * Light->Intensity;
  if (Depth > 0) {
    Vec3 Reflect = sub(Dir, scale(Normal, 2 * dotp(Dir, Normal)));
    Shade += 0.3 * traceRay(Scene, Light, Hit, Reflect, Depth - 1);
  }
  return Shade;
}

template <typename P> void seededBugs(Runtime &RT) {
  if constexpr (!isInstrumented<P>())
    return;
  // Prefix-struct "inheritance" in all its povray glory: base-to-
  // derived and cross-sibling casts (issues 1-4).
  {
    auto Base = allocOne<ObjectBase, P>(RT);
    Base->Kind = 1;
    auto AsSphere = CheckedPtr<SphereObj, P>::fromCast(Base);  // issue 1
    (void)AsSphere;
    auto AsPlane = CheckedPtr<PlaneObj, P>::fromCast(Base);    // issue 2
    (void)AsPlane;
    freeArray(RT, Base);
  }
  {
    auto Sphere = allocOne<SphereObj, P>(RT);
    auto AsPlane = CheckedPtr<PlaneObj, P>::fromCast(Sphere);  // issue 3
    (void)AsPlane;
    auto AsLight = CheckedPtr<LightObj, P>::fromCast(Sphere);  // issue 4
    (void)AsLight;
    freeArray(RT, Sphere);
  }
  // (5) Downcast-then-overflow: treating a base allocation as derived
  // and reaching the "derived" fields past the base's end.
  {
    auto Base = allocOne<ObjectBase, P>(RT);
    auto Tr = Base.field(&ObjectBase::Transform);
    (void)*(Tr + 3); // issue 5: reads past Transform (and the object)
    freeArray(RT, Base);
  }
  // (6) Texture memory reused as another object kind.
  {
    auto Sphere = allocOne<SphereObj, P>(RT);
    freeArray(RT, Sphere);
    auto Plane = allocOne<PlaneObj, P>(RT); // Same class: reused.
    auto Stale = CheckedPtr<SphereObj, P>::input(Sphere.raw()); // issue 6
    (void)Stale;
    freeArray(RT, Plane);
  }
}

template <typename P> uint64_t runPovray(Runtime &RT, unsigned Scale) {
  Rng R(0x90f);
  uint64_t Checksum = 0x90f;

  auto Scene = allocArray<SphereObj *, P>(RT, NumSpheres);
  for (int I = 0; I < NumSpheres; ++I) {
    auto S = allocOne<SphereObj, P>(RT);
    S->Kind = 1;
    S->Flags = 0;
    auto C = S.field(&SphereObj::Center);
    C[0] = R.nextDouble() * 8 - 4;
    C[1] = R.nextDouble() * 8 - 4;
    C[2] = 4 + R.nextDouble() * 6;
    S->Radius = 0.4 + R.nextDouble();
    Scene[I] = S.escape();
  }
  auto Light = allocOne<LightObj, P>(RT);
  Light->Kind = 2;
  auto LP = Light.field(&LightObj::Position);
  LP[0] = 5;
  LP[1] = 8;
  LP[2] = -2;
  Light->Intensity = 0.9;

  unsigned Frames = Scale;
  for (unsigned F = 0; F < Frames; ++F) {
    double Accum = 0;
    for (int Y = 0; Y < ImageH; ++Y) {
      for (int X = 0; X < ImageW; ++X) {
        Vec3 Dir{(X - ImageW / 2.0) / ImageW,
                 (Y - ImageH / 2.0) / ImageH, 1.0};
        double Len = std::sqrt(dotp(Dir, Dir));
        Dir = scale(Dir, 1.0 / Len);
        Accum += traceRay<P>(Scene, Light, Vec3{0, 0, -6}, Dir, 2);
      }
    }
    // Move the light between frames.
    LP[0] = 5 + static_cast<double>(F % 7);
    Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Accum * 100));
  }

  seededBugs<P>(RT);

  for (int I = 0; I < NumSpheres; ++I)
    freeArray(RT, CheckedPtr<SphereObj, P>::input(Scene[I]));
  freeArray(RT, Scene);
  freeArray(RT, Light);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::PovrayWorkload =
    {{"povray", "C++", 78.7, /*SeededIssues=*/6},
     EFFSAN_WORKLOAD_ENTRIES(runPovray)};
