//===- workloads/spec/Omnetpp.cpp - 471.omnetpp stand-in ------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A discrete-event network simulation standing in for 471.omnetpp:
/// modules exchanging messages through a binary-heap future event set,
/// with heavy allocation churn of small message objects (omnetpp's
/// signature behavior). Clean: the paper reports zero issues.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace omw {

struct Message {
  double ArrivalTime;
  int SrcModule;
  int DstModule;
  int Kind;
  long Payload;
};

struct Module {
  long PacketsSeen;
  long BytesSeen;
  int Id;
  int FanOut;
};

} // namespace omw

EFFECTIVE_REFLECT(omw::Message, ArrivalTime, SrcModule, DstModule, Kind,
                  Payload);
EFFECTIVE_REFLECT(omw::Module, PacketsSeen, BytesSeen, Id, FanOut);

namespace effective {
namespace workloads {
namespace {

using namespace omw;

constexpr unsigned NumModules = 32;
constexpr unsigned HeapCap = 4096;

/// Future-event-set: a binary min-heap of Message pointers keyed by
/// arrival time.
template <typename P> class EventHeap {
public:
  EventHeap(Runtime &RT)
      : Slots(allocArray<Message *, P>(RT, HeapCap)) {}

  void destroy(Runtime &RT) { freeArray(RT, Slots); }

  bool empty() const { return Count == 0; }
  unsigned size() const { return Count; }

  void push(CheckedPtr<Message, P> Msg) {
    unsigned I = Count++;
    Slots[I] = Msg.escape();
    while (I > 0) {
      unsigned Parent = (I - 1) / 2;
      auto Child = CheckedPtr<Message, P>::input(Slots[I]);
      auto Par = CheckedPtr<Message, P>::input(Slots[Parent]);
      if (Par->ArrivalTime <= Child->ArrivalTime)
        break;
      Message *Tmp = Slots[I];
      Slots[I] = Slots[Parent];
      Slots[Parent] = Tmp;
      I = Parent;
    }
  }

  CheckedPtr<Message, P> pop() {
    auto Top = CheckedPtr<Message, P>::input(Slots[0]);
    Slots[0] = Slots[--Count];
    unsigned I = 0;
    for (;;) {
      unsigned L = 2 * I + 1, R = 2 * I + 2, Smallest = I;
      if (L < Count &&
          CheckedPtr<Message, P>::input(Slots[L])->ArrivalTime <
              CheckedPtr<Message, P>::input(Slots[Smallest])->ArrivalTime)
        Smallest = L;
      if (R < Count &&
          CheckedPtr<Message, P>::input(Slots[R])->ArrivalTime <
              CheckedPtr<Message, P>::input(Slots[Smallest])->ArrivalTime)
        Smallest = R;
      if (Smallest == I)
        break;
      Message *Tmp = Slots[I];
      Slots[I] = Slots[Smallest];
      Slots[Smallest] = Tmp;
      I = Smallest;
    }
    return Top;
  }

private:
  CheckedPtr<Message *, P> Slots;
  unsigned Count = 0;
};

template <typename P> uint64_t runOmnetpp(Runtime &RT, unsigned Scale) {
  Rng R(0x03e7);
  uint64_t Checksum = 0x03e7;

  auto Modules = allocArray<Module, P>(RT, NumModules);
  for (unsigned I = 0; I < NumModules; ++I) {
    Modules[I].PacketsSeen = 0;
    Modules[I].BytesSeen = 0;
    Modules[I].Id = static_cast<int>(I);
    Modules[I].FanOut = static_cast<int>(1 + R.next(3));
  }

  EventHeap<P> Fes(RT);
  double Now = 0;
  // Seed initial events.
  for (unsigned I = 0; I < 64; ++I) {
    auto Msg = allocOne<Message, P>(RT);
    Msg->ArrivalTime = R.nextDouble();
    Msg->SrcModule = static_cast<int>(R.next(NumModules));
    Msg->DstModule = static_cast<int>(R.next(NumModules));
    Msg->Kind = 0;
    Msg->Payload = static_cast<long>(R.next(1500));
    Fes.push(Msg);
  }

  uint64_t Events = 12000ull * Scale;
  for (uint64_t E = 0; E < Events && !Fes.empty(); ++E) {
    auto Msg = Fes.pop();
    Now = Msg->ArrivalTime;
    unsigned Dst = static_cast<unsigned>(Msg->DstModule) % NumModules;
    auto Mod = Modules + Dst;
    ++Mod->PacketsSeen;
    Mod->BytesSeen += Msg->Payload;
    // Forward to fan-out neighbors with jittered delays (new message
    // objects; the old one dies — omnetpp's temporary churn).
    int FanOut = Mod->FanOut;
    for (int F = 0; F < FanOut && Fes.size() + 1 < HeapCap; ++F) {
      auto Fresh = allocOne<Message, P>(RT);
      Fresh->ArrivalTime = Now + R.nextDouble() * 0.1 + 1e-6;
      Fresh->SrcModule = static_cast<int>(Dst);
      Fresh->DstModule =
          static_cast<int>((Dst + 1 + R.next(NumModules - 1)) %
                           NumModules);
      Fresh->Kind = Msg->Kind + 1;
      Fresh->Payload = (Msg->Payload * 7 + 13) % 1500;
      Fes.push(Fresh);
    }
    freeArray(RT, Msg);
    if (Fes.size() < 8) {
      auto Boost = allocOne<Message, P>(RT);
      Boost->ArrivalTime = Now + 0.01;
      Boost->SrcModule = 0;
      Boost->DstModule = static_cast<int>(R.next(NumModules));
      Boost->Kind = 0;
      Boost->Payload = 64;
      Fes.push(Boost);
    }
  }

  uint64_t Total = 0;
  for (unsigned I = 0; I < NumModules; ++I)
    Total += static_cast<uint64_t>(Modules[I].PacketsSeen) * 31 +
             static_cast<uint64_t>(Modules[I].BytesSeen);
  Checksum = mixChecksum(Checksum, Total);
  Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Now * 1e6));

  while (!Fes.empty())
    freeArray(RT, Fes.pop());
  Fes.destroy(RT);
  freeArray(RT, Modules);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::OmnetppWorkload =
    {{"omnetpp", "C++", 20.0, /*SeededIssues=*/0},
     EFFSAN_WORKLOAD_ENTRIES(runOmnetpp)};
