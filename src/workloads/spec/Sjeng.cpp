//===- workloads/spec/Sjeng.cpp - 458.sjeng stand-in ----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A game-tree-search kernel standing in for 458.sjeng: negamax with
/// alpha-beta pruning over a simplified 8x8 piece game, with a
/// transposition table. Clean: the paper reports zero issues.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace sjengw {

struct TtEntry {
  uint64_t Key;
  int Depth;
  int Score;
};

} // namespace sjengw

EFFECTIVE_REFLECT(sjengw::TtEntry, Key, Depth, Score);

namespace effective {
namespace workloads {
namespace {

using namespace sjengw;

constexpr int NumSquares = 64;
constexpr unsigned TtSize = 1 << 12;

template <typename P> struct Search {
  CheckedPtr<signed char, P> Board; // Piece values -3..3; 0 empty.
  CheckedPtr<TtEntry, P> Tt;
  CheckedPtr<uint64_t, P> Zobrist;  // [NumSquares * 7]
  uint64_t Nodes = 0;
};

template <typename P> uint64_t hashBoard(Search<P> &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (int Sq = 0; Sq < NumSquares; ++Sq)
    H ^= S.Zobrist[Sq * 7 + (S.Board[Sq] + 3)];
  return H;
}

template <typename P> int evaluate(Search<P> &S, int Side) {
  int Score = 0;
  for (int Sq = 0; Sq < NumSquares; ++Sq)
    Score += S.Board[Sq];
  return Side * Score * 10;
}

template <typename P>
int negamax(Search<P> &S, Rng &R, int Depth, int Alpha, int Beta,
            int Side) {
  ++S.Nodes;
  // Function entry: the search-state pointers are parameters and are
  // re-checked on every recursive call (rule (a)).
  S.Board = enterFunction(S.Board);
  S.Tt = enterFunction(S.Tt);
  S.Zobrist = enterFunction(S.Zobrist);
  if (Depth == 0)
    return evaluate(S, Side);

  uint64_t Key = hashBoard(S);
  auto Entry = S.Tt + static_cast<ptrdiff_t>(Key % TtSize);
  if (Entry->Key == Key && Entry->Depth >= Depth)
    return Entry->Score;

  int Best = -(1 << 20);
  // Try a handful of pseudo-moves: move a friendly piece to a random
  // square (capturing whatever is there).
  for (int Try = 0; Try < 6; ++Try) {
    int From = static_cast<int>(R.next(NumSquares));
    int To = static_cast<int>(R.next(NumSquares));
    signed char Piece = S.Board[From];
    if (Piece * Side <= 0 || From == To)
      continue;
    signed char Captured = S.Board[To];
    S.Board[To] = Piece;
    S.Board[From] = 0;
    int Score = -negamax(S, R, Depth - 1, -Beta, -Alpha, -Side);
    S.Board[From] = Piece;
    S.Board[To] = Captured;
    if (Score > Best)
      Best = Score;
    if (Best > Alpha)
      Alpha = Best;
    if (Alpha >= Beta)
      break;
  }
  if (Best == -(1 << 20))
    Best = evaluate(S, Side);

  Entry->Key = Key;
  Entry->Depth = Depth;
  Entry->Score = Best;
  return Best;
}

template <typename P> uint64_t runSjeng(Runtime &RT, unsigned Scale) {
  Rng R(0x51e);
  uint64_t Checksum = 0x51e;

  Search<P> S;
  S.Board = allocArray<signed char, P>(RT, NumSquares);
  S.Tt = allocArray<TtEntry, P>(RT, TtSize);
  S.Zobrist = allocArray<uint64_t, P>(RT, NumSquares * 7);
  for (int I = 0; I < NumSquares * 7; ++I)
    S.Zobrist[I] = R.next();
  for (unsigned I = 0; I < TtSize; ++I)
    S.Tt[I] = TtEntry{0, -1, 0};

  unsigned Positions = 2 * Scale;
  for (unsigned Pos = 0; Pos < Positions; ++Pos) {
    for (int Sq = 0; Sq < NumSquares; ++Sq) {
      uint64_t V = R.next(12);
      S.Board[Sq] = V < 3 ? static_cast<signed char>(V + 1)
                  : V < 6 ? static_cast<signed char>(-(long)(V - 2))
                          : 0;
    }
    int Score = negamax(S, R, 5, -(1 << 20), 1 << 20, 1);
    Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Score));
  }
  Checksum = mixChecksum(Checksum, S.Nodes);

  freeArray(RT, S.Board);
  freeArray(RT, S.Tt);
  freeArray(RT, S.Zobrist);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::SjengWorkload = {
    {"sjeng", "C", 10.5, /*SeededIssues=*/0},
    EFFSAN_WORKLOAD_ENTRIES(runSjeng)};
