//===- workloads/spec/Namd.cpp - 444.namd stand-in ------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A molecular-dynamics kernel standing in for 444.namd: cell-list
/// based pairwise Lennard-Jones force evaluation and velocity-Verlet
/// integration. One seeded issue (a force array read through the wrong
/// fundamental type), matching namd's single Figure 7 issue.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

#include <cmath>

namespace namdw {

struct Atom {
  double X, Y, Z;
  double Vx, Vy, Vz;
  double Fx, Fy, Fz;
  int CellIndex;
};

} // namespace namdw

EFFECTIVE_REFLECT(namdw::Atom, X, Y, Z, Vx, Vy, Vz, Fx, Fy, Fz, CellIndex);

namespace effective {
namespace workloads {
namespace {

using namespace namdw;

constexpr int NumAtoms = 320;
constexpr int CellsPerDim = 4;
constexpr int NumCells = CellsPerDim * CellsPerDim * CellsPerDim;
constexpr double BoxSize = 8.0;
constexpr double Cutoff2 = 2.25;

template <typename P>
void computeForces(CheckedPtr<Atom, P> Atoms, CheckedPtr<int, P> CellHead,
                   CheckedPtr<int, P> CellNext, double &Energy) {
  for (int I = 0; I < NumAtoms; ++I) {
    Atoms[I].Fx = 0;
    Atoms[I].Fy = 0;
    Atoms[I].Fz = 0;
  }
  Energy = 0;
  // For each cell, interact with itself and +1 neighbors.
  for (int C = 0; C < NumCells; ++C) {
    for (int D = 0; D < 4; ++D) {
      int Other = (C + D * 7) % NumCells;
      for (int I = CellHead[C]; I >= 0; I = CellNext[I]) {
        for (int J = CellHead[Other]; J >= 0; J = CellNext[J]) {
          if (J <= I)
            continue;
          double Dx = Atoms[I].X - Atoms[J].X;
          double Dy = Atoms[I].Y - Atoms[J].Y;
          double Dz = Atoms[I].Z - Atoms[J].Z;
          double R2 = Dx * Dx + Dy * Dy + Dz * Dz;
          // Lower cutoff keeps the force bounded; without it two nearly
          // coincident atoms produce ~1e38 forces and the integrator
          // diverges (positions overflow the periodic box wrap).
          if (R2 > Cutoff2 || R2 < 0.64)
            continue;
          double Inv2 = 1.0 / R2;
          double Inv6 = Inv2 * Inv2 * Inv2;
          double Force = 24 * Inv6 * (2 * Inv6 - 1) * Inv2;
          Atoms[I].Fx += Force * Dx;
          Atoms[I].Fy += Force * Dy;
          Atoms[I].Fz += Force * Dz;
          Atoms[J].Fx -= Force * Dx;
          Atoms[J].Fy -= Force * Dy;
          Atoms[J].Fz -= Force * Dz;
          Energy += 4 * Inv6 * (Inv6 - 1);
        }
      }
    }
  }
}

template <typename P> uint64_t runNamd(Runtime &RT, unsigned Scale) {
  Rng R(0x9a3d);
  uint64_t Checksum = 0x9a3d;

  auto Atoms = allocArray<Atom, P>(RT, NumAtoms);
  auto CellHead = allocArray<int, P>(RT, NumCells);
  auto CellNext = allocArray<int, P>(RT, NumAtoms);

  for (int I = 0; I < NumAtoms; ++I) {
    Atoms[I].X = R.nextDouble() * BoxSize;
    Atoms[I].Y = R.nextDouble() * BoxSize;
    Atoms[I].Z = R.nextDouble() * BoxSize;
    Atoms[I].Vx = R.nextDouble() - 0.5;
    Atoms[I].Vy = R.nextDouble() - 0.5;
    Atoms[I].Vz = R.nextDouble() - 0.5;
  }

  unsigned Steps = 6 * Scale;
  double Energy = 0;
  for (unsigned Step = 0; Step < Steps; ++Step) {
    // Rebuild cell lists.
    for (int C = 0; C < NumCells; ++C)
      CellHead[C] = -1;
    for (int I = 0; I < NumAtoms; ++I) {
      auto CellOf = [](double V) {
        int C = static_cast<int>(V / (BoxSize / CellsPerDim));
        return C < 0 ? 0 : (C >= CellsPerDim ? CellsPerDim - 1 : C);
      };
      int C = CellOf(Atoms[I].X) * CellsPerDim * CellsPerDim +
              CellOf(Atoms[I].Y) * CellsPerDim + CellOf(Atoms[I].Z);
      Atoms[I].CellIndex = C;
      CellNext[I] = CellHead[C];
      CellHead[C] = I;
    }
    computeForces<P>(Atoms, CellHead, CellNext, Energy);
    // Velocity Verlet half-kick + drift with periodic wrap.
    for (int I = 0; I < NumAtoms; ++I) {
      constexpr double Dt = 0.001;
      Atoms[I].Vx += Dt * Atoms[I].Fx;
      Atoms[I].Vy += Dt * Atoms[I].Fy;
      Atoms[I].Vz += Dt * Atoms[I].Fz;
      auto Wrap = [](double V) {
        V = std::fmod(V, BoxSize);
        if (V < 0)
          V += BoxSize;
        return V;
      };
      Atoms[I].X = Wrap(Atoms[I].X + Dt * Atoms[I].Vx);
      Atoms[I].Y = Wrap(Atoms[I].Y + Dt * Atoms[I].Vy);
      Atoms[I].Z = Wrap(Atoms[I].Z + Dt * Atoms[I].Vz);
    }
  }
  Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Energy * 10));

  // Seeded issue: the atom array checksummed through float* (wrong
  // fundamental type).
  if constexpr (isInstrumented<P>()) {
    auto AsFloat = CheckedPtr<float, P>::fromCast(Atoms);
    (void)AsFloat;
  }

  freeArray(RT, Atoms);
  freeArray(RT, CellHead);
  freeArray(RT, CellNext);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::NamdWorkload = {
    {"namd", "C++", 3.9, /*SeededIssues=*/1},
    EFFSAN_WORKLOAD_ENTRIES(runNamd)};
