//===- workloads/spec/DealII.cpp - 447.dealII stand-in --------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A finite-element kernel standing in for 447.dealII: sparse (CSR)
/// matrix assembly from local element stencils followed by conjugate-
/// gradient iterations. dealII contributes many C-style cast type
/// checks in the paper (Section 6.2 attributes much of the -type
/// variant's check volume to dealII); the seeded issues are C-style
/// cast confusions on the solver's internal buffers.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace dealw {

struct SparsityHeader {
  int Rows;
  int Cols;
  long NumNonzero;
};

struct SolverControl {
  int MaxIter;
  double Tolerance;
  int LogLevel;
};

} // namespace dealw

EFFECTIVE_REFLECT(dealw::SparsityHeader, Rows, Cols, NumNonzero);
EFFECTIVE_REFLECT(dealw::SolverControl, MaxIter, Tolerance, LogLevel);

namespace effective {
namespace workloads {
namespace {

using namespace dealw;

constexpr int GridN = 24;                  // GridN x GridN Laplace grid.
constexpr int NumDofs = GridN * GridN;
constexpr int MaxNnzPerRow = 5;

template <typename P> struct CsrMatrix {
  CheckedPtr<int, P> RowPtr;   // [NumDofs + 1]
  CheckedPtr<int, P> ColIdx;   // [NumDofs * MaxNnzPerRow]
  CheckedPtr<double, P> Value; // same length
};

/// Assembles the 5-point Laplace stencil into CSR form.
template <typename P> void assemble(CsrMatrix<P> &A) {
  int Nnz = 0;
  for (int Row = 0; Row < NumDofs; ++Row) {
    A.RowPtr[Row] = Nnz;
    int R = Row / GridN, C = Row % GridN;
    const int Neighbors[5] = {Row,
                              R > 0 ? Row - GridN : -1,
                              R < GridN - 1 ? Row + GridN : -1,
                              C > 0 ? Row - 1 : -1,
                              C < GridN - 1 ? Row + 1 : -1};
    for (int N : Neighbors) {
      if (N < 0)
        continue;
      A.ColIdx[Nnz] = N;
      A.Value[Nnz] = N == Row ? 4.0 : -1.0;
      ++Nnz;
    }
  }
  A.RowPtr[NumDofs] = Nnz;
}

/// y = A * x.
template <typename P>
void spmv(const CsrMatrix<P> &A, CheckedPtr<double, P> X,
          CheckedPtr<double, P> Y) {
  for (int Row = 0; Row < NumDofs; ++Row) {
    double Sum = 0;
    int End = A.RowPtr[Row + 1];
    for (int K = A.RowPtr[Row]; K < End; ++K)
      Sum += A.Value[K] * X[A.ColIdx[K]];
    Y[Row] = Sum;
  }
}

template <typename P>
double dot(CheckedPtr<double, P> A, CheckedPtr<double, P> B) {
  double Sum = 0;
  for (int I = 0; I < NumDofs; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

template <typename P> void seededBugs(Runtime &RT) {
  if constexpr (!isInstrumented<P>())
    return;
  // (1) Sparsity header hashed as int[] past the leading ints.
  {
    auto H = allocOne<SparsityHeader, P>(RT);
    H->Rows = GridN;
    H->Cols = GridN;
    auto Words = CheckedPtr<int, P>::fromCast(H);
    (void)Words[2]; // issue 1: reads NumNonzero's first word
    freeArray(RT, H);
  }
  // (2) SolverControl read through long* (C-style cast).
  {
    auto S = allocOne<SolverControl, P>(RT);
    auto AsLong = CheckedPtr<long, P>::fromCast(S); // issue 2
    (void)AsLong;
    freeArray(RT, S);
  }
  // (3) A double vector aliased as SolverControl (container-style).
  {
    auto V = allocArray<double, P>(RT, 8);
    auto Bad = CheckedPtr<SolverControl, P>::fromCast(V); // issue 3
    (void)Bad;
    freeArray(RT, V);
  }
  // (4) Workspace reused as a different type without reallocation.
  {
    auto V = allocArray<double, P>(RT, 6);
    freeArray(RT, V);
    auto W = allocArray<long, P>(RT, 6); // Same class: block reused.
    auto Stale = CheckedPtr<double, P>::input(V.raw()); // issue 4
    (void)Stale;
    freeArray(RT, W);
  }
}

template <typename P> uint64_t runDealII(Runtime &RT, unsigned Scale) {
  Rng R(0xdea1);
  uint64_t Checksum = 0xdea1;

  CsrMatrix<P> A;
  A.RowPtr = allocArray<int, P>(RT, NumDofs + 1);
  A.ColIdx = allocArray<int, P>(RT, NumDofs * MaxNnzPerRow);
  A.Value = allocArray<double, P>(RT, NumDofs * MaxNnzPerRow);
  auto X = allocArray<double, P>(RT, NumDofs);
  auto B = allocArray<double, P>(RT, NumDofs);
  auto Rv = allocArray<double, P>(RT, NumDofs);
  auto Pv = allocArray<double, P>(RT, NumDofs);
  auto Ap = allocArray<double, P>(RT, NumDofs);

  unsigned Systems = 2 * Scale;
  for (unsigned Sys = 0; Sys < Systems; ++Sys) {
    assemble(A);
    for (int I = 0; I < NumDofs; ++I) {
      B[I] = R.nextDouble();
      X[I] = 0;
      Rv[I] = B[I];
      Pv[I] = B[I];
    }
    double RdotR = dot<P>(Rv, Rv);
    // Conjugate gradient iterations.
    for (int Iter = 0; Iter < 40 && RdotR > 1e-12; ++Iter) {
      spmv(A, Pv, Ap);
      double Alpha = RdotR / dot<P>(Pv, Ap);
      for (int I = 0; I < NumDofs; ++I) {
        X[I] += Alpha * Pv[I];
        Rv[I] -= Alpha * Ap[I];
      }
      double Fresh = dot<P>(Rv, Rv);
      double Beta = Fresh / RdotR;
      for (int I = 0; I < NumDofs; ++I)
        Pv[I] = Rv[I] + Beta * Pv[I];
      RdotR = Fresh;
    }
    Checksum = mixChecksum(Checksum,
                           static_cast<uint64_t>(dot<P>(X, X) * 1000));
  }

  seededBugs<P>(RT);

  freeArray(RT, A.RowPtr);
  freeArray(RT, A.ColIdx);
  freeArray(RT, A.Value);
  freeArray(RT, X);
  freeArray(RT, B);
  freeArray(RT, Rv);
  freeArray(RT, Pv);
  freeArray(RT, Ap);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::DealIIWorkload = {
    {"dealII", "C++", 94.4, /*SeededIssues=*/4},
    EFFSAN_WORKLOAD_ENTRIES(runDealII)};
