//===- workloads/spec/Libquantum.cpp - 462.libquantum stand-in ------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A quantum-register simulation kernel standing in for 462.libquantum:
/// a sparse state vector of basis-state nodes, with Hadamard-like and
/// controlled-not gate sweeps (libquantum's dominant operations).
/// Pointer-dense, matching its very high #Type count in Figure 7.
/// Clean: zero issues.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace lqw {

struct QuantumNode {
  uint64_t State;   // Basis state bits.
  float AmpRe;
  float AmpIm;
  QuantumNode *Next;
};

} // namespace lqw

EFFECTIVE_REFLECT(lqw::QuantumNode, State, AmpRe, AmpIm, Next);

namespace effective {
namespace workloads {
namespace {

using namespace lqw;

/// Applies a controlled-not: flips bit Target of every state where bit
/// Control is set (a permutation of basis states; list walk).
template <typename P>
void applyCnot(CheckedPtr<QuantumNode, P> Head, int Control, int Target) {
  auto Node = Head;
  while (Node.raw()) {
    if (Node->State & (1ull << Control))
      Node->State ^= 1ull << Target;
    Node = CheckedPtr<QuantumNode, P>::input(Node->Next);
  }
}

/// A phase-ish "gate": rotates amplitudes of states with bit set.
template <typename P>
void applyPhase(CheckedPtr<QuantumNode, P> Head, int Target) {
  auto Node = Head;
  while (Node.raw()) {
    if (Node->State & (1ull << Target)) {
      float Re = Node->AmpRe, Im = Node->AmpIm;
      Node->AmpRe = -Im;
      Node->AmpIm = Re;
    }
    Node = CheckedPtr<QuantumNode, P>::input(Node->Next);
  }
}

template <typename P> uint64_t runLibquantum(Runtime &RT, unsigned Scale) {
  Rng R(0x11b9);
  uint64_t Checksum = 0x11b9;

  constexpr int NumQubits = 16;
  unsigned NumStates = 512;

  // Build the sparse register as a linked list of basis states.
  CheckedPtr<QuantumNode, P> Head;
  for (unsigned I = 0; I < NumStates; ++I) {
    auto Node = allocOne<QuantumNode, P>(RT);
    Node->State = R.next() & ((1ull << NumQubits) - 1);
    Node->AmpRe = static_cast<float>(R.nextDouble() - 0.5);
    Node->AmpIm = static_cast<float>(R.nextDouble() - 0.5);
    Node->Next = Head.raw();
    Head = Node;
  }

  unsigned Gates = 160 * Scale;
  for (unsigned G = 0; G < Gates; ++G) {
    int A = static_cast<int>(R.next(NumQubits));
    int B = static_cast<int>(R.next(NumQubits));
    if (A == B)
      B = (B + 1) % NumQubits;
    if (G % 3 == 0)
      applyPhase(Head, A);
    else
      applyCnot(Head, A, B);
  }

  // Measurement proxy: histogram of low bits weighted by amplitude
  // magnitudes.
  double Norm = 0;
  uint64_t Bits = 0;
  auto Node = Head;
  while (Node.raw()) {
    Norm += Node->AmpRe * Node->AmpRe + Node->AmpIm * Node->AmpIm;
    Bits += Node->State & 0xff;
    Node = CheckedPtr<QuantumNode, P>::input(Node->Next);
  }
  Checksum = mixChecksum(Checksum, Bits);
  Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Norm * 1000));

  // Free the register.
  Node = Head;
  while (Node.raw()) {
    auto Next = CheckedPtr<QuantumNode, P>::input(Node->Next);
    freeArray(RT, Node);
    Node = Next;
  }
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload
    effective::workloads::LibquantumWorkload = {
        {"libquantum", "C", 2.6, /*SeededIssues=*/0},
        EFFSAN_WORKLOAD_ENTRIES(runLibquantum)};
