//===- workloads/spec/Milc.cpp - 433.milc stand-in ------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A lattice-QCD kernel standing in for 433.milc: SU(3)-like complex
/// 3x3 matrix multiplication sweeps over a 4D lattice. One seeded
/// fundamental-type confusion, matching milc's single Figure 7 issue.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace milcw {

struct Complex {
  double Re;
  double Im;
};

struct Su3Matrix {
  Complex E[9]; // Row-major 3x3.
};

} // namespace milcw

EFFECTIVE_REFLECT(milcw::Complex, Re, Im);
EFFECTIVE_REFLECT(milcw::Su3Matrix, E);

namespace effective {
namespace workloads {
namespace {

using namespace milcw;

constexpr int LatticeSize = 4 * 4 * 4 * 8; // 4D lattice, flattened.

/// C = A * B for 3x3 complex matrices.
template <typename P>
void su3Mult(CheckedPtr<Su3Matrix, P> A, CheckedPtr<Su3Matrix, P> B,
             CheckedPtr<Su3Matrix, P> C) {
  auto Ae = A.field(&Su3Matrix::E);
  auto Be = B.field(&Su3Matrix::E);
  auto Ce = C.field(&Su3Matrix::E);
  for (int I = 0; I < 3; ++I) {
    for (int J = 0; J < 3; ++J) {
      double Re = 0, Im = 0;
      for (int K = 0; K < 3; ++K) {
        const Complex &X = Ae[I * 3 + K];
        const Complex &Y = Be[K * 3 + J];
        Re += X.Re * Y.Re - X.Im * Y.Im;
        Im += X.Re * Y.Im + X.Im * Y.Re;
      }
      Ce[I * 3 + J].Re = Re;
      Ce[I * 3 + J].Im = Im;
    }
  }
}

template <typename P> uint64_t runMilc(Runtime &RT, unsigned Scale) {
  Rng R(0x311c);
  uint64_t Checksum = 0x311c;

  auto Links = allocArray<Su3Matrix, P>(RT, LatticeSize);
  auto Staples = allocArray<Su3Matrix, P>(RT, LatticeSize);
  auto Temp = allocOne<Su3Matrix, P>(RT);

  for (int S = 0; S < LatticeSize; ++S) {
    auto E = (Links + S).field(&Su3Matrix::E);
    auto F = (Staples + S).field(&Su3Matrix::E);
    for (int I = 0; I < 9; ++I) {
      E[I] = Complex{R.nextDouble() - 0.5, R.nextDouble() - 0.5};
      F[I] = Complex{R.nextDouble() - 0.5, R.nextDouble() - 0.5};
    }
  }

  unsigned Sweeps = 3 * Scale;
  double Action = 0;
  for (unsigned Sweep = 0; Sweep < Sweeps; ++Sweep) {
    for (int S = 0; S < LatticeSize; ++S) {
      int Neighbor = (S + 1) % LatticeSize;
      su3Mult<P>(Links + S, Staples + Neighbor, Temp);
      // "Link update": mix the product back in and accumulate the
      // plaquette trace.
      auto L = (Links + S).field(&Su3Matrix::E);
      auto T = Temp.field(&Su3Matrix::E);
      double Trace = 0;
      for (int I = 0; I < 9; ++I) {
        L[I].Re = 0.9 * L[I].Re + 0.1 * T[I].Re;
        L[I].Im = 0.9 * L[I].Im + 0.1 * T[I].Im;
        if (I % 4 == 0)
          Trace += T[I].Re;
      }
      Action += Trace;
    }
  }
  Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Action * 100));

  // Seeded issue: the site buffer read as long[] for a checksum (milc's
  // fundamental-type confusion).
  if constexpr (isInstrumented<P>()) {
    auto AsLong = CheckedPtr<long, P>::fromCast(Links);
    (void)AsLong;
  }

  freeArray(RT, Links);
  freeArray(RT, Staples);
  freeArray(RT, Temp);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::MilcWorkload = {
    {"milc", "C", 9.6, /*SeededIssues=*/1},
    EFFSAN_WORKLOAD_ENTRIES(runMilc)};
