//===- workloads/spec/Bzip2.cpp - 401.bzip2 stand-in ----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A block-compression kernel standing in for 401.bzip2: run-length
/// encoding, move-to-front transform and an order-0 frequency model
/// over synthetic data. Seeded issue: the fundamental-type confusion
/// the paper reports for bzip2 (an int table read as float).
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace effective {
namespace workloads {
namespace {

constexpr unsigned BlockSize = 4096;

/// Run-length encodes Input into Output; returns encoded length.
template <typename P>
unsigned rleEncode(CheckedPtr<unsigned char, P> Input, unsigned Len,
                   CheckedPtr<unsigned char, P> Output) {
  unsigned Out = 0;
  unsigned I = 0;
  while (I < Len) {
    unsigned char Byte = Input[I];
    unsigned Run = 1;
    while (I + Run < Len && Run < 255 && Input[I + Run] == Byte)
      ++Run;
    Output[Out++] = Byte;
    Output[Out++] = static_cast<unsigned char>(Run);
    I += Run;
  }
  return Out;
}

/// Move-to-front transform (in place).
template <typename P>
void moveToFront(CheckedPtr<unsigned char, P> Data, unsigned Len,
                 CheckedPtr<unsigned char, P> Alphabet) {
  for (unsigned I = 0; I < 256; ++I)
    Alphabet[I] = static_cast<unsigned char>(I);
  for (unsigned I = 0; I < Len; ++I) {
    unsigned char Byte = Data[I];
    unsigned Pos = 0;
    while (Alphabet[Pos] != Byte)
      ++Pos;
    for (unsigned J = Pos; J > 0; --J)
      Alphabet[J] = Alphabet[J - 1];
    Alphabet[0] = Byte;
    Data[I] = static_cast<unsigned char>(Pos);
  }
}

template <typename P> uint64_t runBzip2(Runtime &RT, unsigned Scale) {
  Rng R(0xb21b);
  uint64_t Checksum = 0xb2;
  unsigned Blocks = 6 * Scale;

  auto Input = allocArray<unsigned char, P>(RT, BlockSize);
  auto Encoded = allocArray<unsigned char, P>(RT, 2 * BlockSize);
  auto Alphabet = allocArray<unsigned char, P>(RT, 256);
  auto Freq = allocArray<int, P>(RT, 256);

  for (unsigned B = 0; B < Blocks; ++B) {
    // Synthetic compressible data: runs with occasional noise.
    unsigned char Current = static_cast<unsigned char>(R.next(64));
    for (unsigned I = 0; I < BlockSize; ++I) {
      if (R.next(16) == 0)
        Current = static_cast<unsigned char>(R.next(64));
      Input[I] = Current;
    }
    unsigned EncLen = rleEncode<P>(Input, BlockSize, Encoded);
    moveToFront<P>(Encoded, EncLen, Alphabet);
    for (unsigned I = 0; I < 256; ++I)
      Freq[I] = 0;
    for (unsigned I = 0; I < EncLen; ++I)
      ++Freq[Encoded[I]];
    // Order-0 "entropy" proxy: sum f*log2-ish via bit widths.
    uint64_t Bits = 0;
    for (unsigned I = 0; I < 256; ++I)
      if (Freq[I])
        Bits += static_cast<uint64_t>(Freq[I]) *
                (64 - __builtin_clzll(
                          static_cast<uint64_t>(EncLen / Freq[I]) + 1));
    Checksum = mixChecksum(Checksum, Bits + EncLen);
  }

  // Seeded issue: the frequency table (int[]) read through a float
  // pointer — bzip2's fundamental-type confusion (Section 6.1).
  if constexpr (isInstrumented<P>()) {
    auto AsFloat = CheckedPtr<float, P>::fromCast(Freq);
    (void)AsFloat;
  }

  freeArray(RT, Input);
  freeArray(RT, Encoded);
  freeArray(RT, Alphabet);
  freeArray(RT, Freq);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::Bzip2Workload = {
    {"bzip2", "C", 5.7, /*SeededIssues=*/1},
    EFFSAN_WORKLOAD_ENTRIES(runBzip2)};
