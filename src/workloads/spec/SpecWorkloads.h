//===- workloads/spec/SpecWorkloads.h - SPEC2006 stand-ins ------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of the 19 SPEC2006 stand-in kernels (one per paper
/// Figure 7 row). Each kernel reproduces the allocation/access pattern
/// of the original benchmark and seeds exactly the classes of issues
/// the paper reports for it (see DESIGN.md, substitution 1).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_WORKLOADS_SPEC_SPECWORKLOADS_H
#define EFFECTIVE_WORKLOADS_SPEC_SPECWORKLOADS_H

#include "workloads/Workload.h"

namespace effective {
namespace workloads {

extern const Workload PerlbenchWorkload;
extern const Workload Bzip2Workload;
extern const Workload GccWorkload;
extern const Workload McfWorkload;
extern const Workload GobmkWorkload;
extern const Workload HmmerWorkload;
extern const Workload SjengWorkload;
extern const Workload LibquantumWorkload;
extern const Workload H264refWorkload;
extern const Workload OmnetppWorkload;
extern const Workload AstarWorkload;
extern const Workload XalancbmkWorkload;
extern const Workload MilcWorkload;
extern const Workload NamdWorkload;
extern const Workload DealIIWorkload;
extern const Workload SoplexWorkload;
extern const Workload PovrayWorkload;
extern const Workload LbmWorkload;
extern const Workload Sphinx3Workload;

} // namespace workloads
} // namespace effective

#endif // EFFECTIVE_WORKLOADS_SPEC_SPECWORKLOADS_H
