//===- workloads/spec/Sphinx3.cpp - 482.sphinx3 stand-in ------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A speech-recognition kernel standing in for 482.sphinx3: Gaussian
/// mixture model scoring of feature frames plus a small Viterbi beam
/// over an HMM lattice. Two seeded issues, matching Figure 7: structs
/// cast to (int[]) to compute checksums (Section 6.1 lists sphinx3
/// together with gcc for this idiom).
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace sphinxw {

struct GaussianDensity {
  float Mean[13];
  float Var[13];
  float LogDet;
  int MixtureId;
};

struct FrameHeader {
  long Timestamp;
  int FrameId;
  int NumFeatures;
};

} // namespace sphinxw

EFFECTIVE_REFLECT(sphinxw::GaussianDensity, Mean, Var, LogDet, MixtureId);
EFFECTIVE_REFLECT(sphinxw::FrameHeader, Timestamp, FrameId, NumFeatures);

namespace effective {
namespace workloads {
namespace {

using namespace sphinxw;

constexpr int FeatDim = 13;
constexpr int NumGaussians = 64;
constexpr int NumStates = 32;

template <typename P>
float scoreGaussian(CheckedPtr<GaussianDensity, P> G,
                    CheckedPtr<float, P> Feat) {
  auto Mean = G.field(&GaussianDensity::Mean);
  auto Var = G.field(&GaussianDensity::Var);
  float Score = G->LogDet;
  for (int D = 0; D < FeatDim; ++D) {
    float Diff = Feat[D] - Mean[D];
    Score -= Diff * Diff * Var[D];
  }
  return Score;
}

template <typename P> uint64_t runSphinx3(Runtime &RT, unsigned Scale) {
  Rng R(0x5f1);
  uint64_t Checksum = 0x5f1;

  auto Gaussians = allocArray<GaussianDensity, P>(RT, NumGaussians);
  for (int G = 0; G < NumGaussians; ++G) {
    auto Mean = (Gaussians + G).field(&GaussianDensity::Mean);
    auto Var = (Gaussians + G).field(&GaussianDensity::Var);
    for (int D = 0; D < FeatDim; ++D) {
      Mean[D] = static_cast<float>(R.nextDouble() * 4 - 2);
      Var[D] = static_cast<float>(0.5 + R.nextDouble());
    }
    Gaussians[G].LogDet = static_cast<float>(-R.nextDouble() * 4);
    Gaussians[G].MixtureId = G / 8;
  }

  auto Feat = allocArray<float, P>(RT, FeatDim);
  auto Trellis = allocArray<float, P>(RT, 2 * NumStates);
  auto BestGauss = allocArray<int, P>(RT, NumStates);

  unsigned Frames = 30 * Scale;
  for (int S = 0; S < NumStates; ++S)
    Trellis[S] = S == 0 ? 0 : -1e30f;

  for (unsigned F = 0; F < Frames; ++F) {
    for (int D = 0; D < FeatDim; ++D)
      Feat[D] = static_cast<float>(R.nextDouble() * 4 - 2);
    // Score all Gaussians; keep the best per state's mixture.
    for (int S = 0; S < NumStates; ++S) {
      float Best = -1e30f;
      int BestId = 0;
      for (int G = S % 8; G < NumGaussians; G += 8) {
        float Score = scoreGaussian<P>(Gaussians + G, Feat);
        if (Score > Best) {
          Best = Score;
          BestId = G;
        }
      }
      BestGauss[S] = BestId;
      // Viterbi: stay or advance from S-1.
      int Cur = (F % 2) * NumStates;
      int Prev = ((F + 1) % 2) * NumStates;
      float Stay = Trellis[Prev + S];
      float Advance = S > 0 ? Trellis[Prev + S - 1] : -1e30f;
      Trellis[Cur + S] = (Stay > Advance ? Stay : Advance) + Best;
    }
  }

  float FinalBest = -1e30f;
  int Cur = ((Frames + 1) % 2) * NumStates;
  for (int S = 0; S < NumStates; ++S)
    if (Trellis[Cur + S] > FinalBest)
      FinalBest = Trellis[Cur + S];
  Checksum = mixChecksum(Checksum, static_cast<uint64_t>(
                                       FinalBest > -1e29f
                                           ? FinalBest * -1
                                           : 0));
  Checksum = mixChecksum(Checksum,
                         static_cast<uint64_t>(BestGauss[NumStates - 1]));

  // Seeded issues: structs checksummed as (int[]) — one on the density
  // table, one on a frame header.
  if constexpr (isInstrumented<P>()) {
    {
      auto AsInt = CheckedPtr<int, P>::fromCast(Gaussians);
      // Mean[0] is a float at offset 0: the int cast itself mismatches.
      (void)AsInt; // issue 1
    }
    {
      auto Header = allocOne<FrameHeader, P>(RT);
      Header->Timestamp = 12345;
      auto AsInt = CheckedPtr<int, P>::fromCast(Header); // issue 2
      (void)AsInt;
      freeArray(RT, Header);
    }
  }

  freeArray(RT, Gaussians);
  freeArray(RT, Feat);
  freeArray(RT, Trellis);
  freeArray(RT, BestGauss);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::Sphinx3Workload =
    {{"sphinx3", "C", 13.1, /*SeededIssues=*/2},
     EFFSAN_WORKLOAD_ENTRIES(runSphinx3)};
