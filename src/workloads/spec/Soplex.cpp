//===- workloads/spec/Soplex.cpp - 450.soplex stand-in --------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A linear-programming kernel standing in for 450.soplex: dense
/// tableau simplex iterations on random feasible LPs. The seeded issue
/// is the paper's soplex finding: a sub-object *underflow* of the
/// (themem1) field of a UnitVector (intentional in the original code,
/// relying on field adjacency).
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace soplexw {

/// The paper's UnitVector: a one-element value array (themem1) directly
/// preceded by bookkeeping that soplex reaches by underflowing it.
struct UnitVector {
  int Index;
  int Dim;
  double TheMem1[1];
};

} // namespace soplexw

EFFECTIVE_REFLECT(soplexw::UnitVector, Index, Dim, TheMem1);

namespace effective {
namespace workloads {
namespace {

using namespace soplexw;

constexpr int NumRows = 24;
constexpr int NumCols = 40; // Including slack variables.

template <typename P> uint64_t runSoplex(Runtime &RT, unsigned Scale) {
  Rng R(0x50f1);
  uint64_t Checksum = 0x50f1;

  // Tableau with objective row at index NumRows.
  auto Tableau = allocArray<double, P>(RT, (NumRows + 1) * (NumCols + 1));
  auto Basis = allocArray<int, P>(RT, NumRows);

  unsigned Problems = 3 * Scale;
  for (unsigned Prob = 0; Prob < Problems; ++Prob) {
    // Each problem corresponds to a solve(tableau, basis) call in the
    // original; the pointers re-enter through the function boundary.
    Tableau = enterFunction(Tableau);
    Basis = enterFunction(Basis);
    // Random standard-form LP: maximize cx s.t. Ax <= b, x >= 0, with
    // slack variables already in the basis.
    for (int Row = 0; Row < NumRows; ++Row) {
      for (int Col = 0; Col < NumCols - NumRows; ++Col)
        Tableau[Row * (NumCols + 1) + Col] =
            static_cast<double>(R.next(9)) / 4.0;
      for (int Col = NumCols - NumRows; Col < NumCols; ++Col)
        Tableau[Row * (NumCols + 1) + Col] =
            Col - (NumCols - NumRows) == Row ? 1.0 : 0.0;
      Tableau[Row * (NumCols + 1) + NumCols] =
          static_cast<double>(R.next(40) + 10);
      Basis[Row] = NumCols - NumRows + Row;
    }
    for (int Col = 0; Col < NumCols - NumRows; ++Col)
      Tableau[NumRows * (NumCols + 1) + Col] =
          -static_cast<double>(R.next(9) + 1);
    for (int Col = NumCols - NumRows; Col <= NumCols; ++Col)
      Tableau[NumRows * (NumCols + 1) + Col] = 0;

    // Simplex pivots (Dantzig rule), bounded iterations.
    int Pivots = 0;
    for (int Iter = 0; Iter < 60; ++Iter) {
      // Entering column: most negative reduced cost.
      int Enter = -1;
      double BestCost = -1e-9;
      for (int Col = 0; Col < NumCols; ++Col) {
        double Cost = Tableau[NumRows * (NumCols + 1) + Col];
        if (Cost < BestCost) {
          BestCost = Cost;
          Enter = Col;
        }
      }
      if (Enter < 0)
        break;
      // Ratio test.
      int Leave = -1;
      double BestRatio = 1e30;
      for (int Row = 0; Row < NumRows; ++Row) {
        double Coef = Tableau[Row * (NumCols + 1) + Enter];
        if (Coef <= 1e-9)
          continue;
        double Ratio = Tableau[Row * (NumCols + 1) + NumCols] / Coef;
        if (Ratio < BestRatio) {
          BestRatio = Ratio;
          Leave = Row;
        }
      }
      if (Leave < 0)
        break; // Unbounded.
      // Pivot.
      double PivotVal = Tableau[Leave * (NumCols + 1) + Enter];
      for (int Col = 0; Col <= NumCols; ++Col)
        Tableau[Leave * (NumCols + 1) + Col] /= PivotVal;
      for (int Row = 0; Row <= NumRows; ++Row) {
        if (Row == Leave)
          continue;
        double Factor = Tableau[Row * (NumCols + 1) + Enter];
        if (Factor == 0)
          continue;
        for (int Col = 0; Col <= NumCols; ++Col)
          Tableau[Row * (NumCols + 1) + Col] -=
              Factor * Tableau[Leave * (NumCols + 1) + Col];
      }
      Basis[Leave] = Enter;
      ++Pivots;
    }
    double Objective = Tableau[NumRows * (NumCols + 1) + NumCols];
    Checksum = mixChecksum(
        Checksum, static_cast<uint64_t>(Objective * 100) + Pivots);
  }

  // Seeded issue: the (themem1) sub-object underflow — reading one
  // double *before* the array reaches the Index/Dim header fields.
  if constexpr (isInstrumented<P>()) {
    auto U = allocOne<UnitVector, P>(RT);
    U->Index = 3;
    U->Dim = 1;
    auto Mem = U.field(&UnitVector::TheMem1);
    (void)*(Mem - 1); // Underflow into Dim/Index (documented in soplex).
    freeArray(RT, U);
  }

  freeArray(RT, Tableau);
  freeArray(RT, Basis);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::SoplexWorkload =
    {{"soplex", "C++", 28.3, /*SeededIssues=*/1},
     EFFSAN_WORKLOAD_ENTRIES(runSoplex)};
