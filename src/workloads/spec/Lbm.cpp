//===- workloads/spec/Lbm.cpp - 470.lbm stand-in --------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A lattice-Boltzmann kernel standing in for 470.lbm: D2Q9
/// collide-and-stream sweeps over a periodic grid. One seeded
/// fundamental-type confusion (the case reported in [15]), matching
/// lbm's single Figure 7 issue.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace effective {
namespace workloads {
namespace {

constexpr int GridW = 64;
constexpr int GridH = 48;
constexpr int NumDirs = 9;
constexpr int NumCells = GridW * GridH;

// D2Q9 lattice velocities and weights.
constexpr int Cx[NumDirs] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
constexpr int Cy[NumDirs] = {0, 0, 1, 0, -1, 1, 1, -1, -1};
constexpr double W[NumDirs] = {4.0 / 9, 1.0 / 9,  1.0 / 9,
                               1.0 / 9, 1.0 / 9,  1.0 / 36,
                               1.0 / 36, 1.0 / 36, 1.0 / 36};

template <typename P>
void collideAndStream(CheckedPtr<double, P> Src,
                      CheckedPtr<double, P> Dst, double Omega) {
  for (int Y = 0; Y < GridH; ++Y) {
    for (int X = 0; X < GridW; ++X) {
      int Cell = Y * GridW + X;
      // Macroscopic density and velocity.
      double Rho = 0, Ux = 0, Uy = 0;
      for (int D = 0; D < NumDirs; ++D) {
        double F = Src[Cell * NumDirs + D];
        Rho += F;
        Ux += F * Cx[D];
        Uy += F * Cy[D];
      }
      if (Rho > 1e-12) {
        Ux /= Rho;
        Uy /= Rho;
      }
      double Usq = 1.5 * (Ux * Ux + Uy * Uy);
      // Collide (BGK) and stream to neighbors with periodic wrap.
      for (int D = 0; D < NumDirs; ++D) {
        double Cu = 3 * (Cx[D] * Ux + Cy[D] * Uy);
        double Feq = W[D] * Rho * (1 + Cu + 0.5 * Cu * Cu - Usq);
        double F = Src[Cell * NumDirs + D];
        double Out = F + Omega * (Feq - F);
        int Nx = (X + Cx[D] + GridW) % GridW;
        int Ny = (Y + Cy[D] + GridH) % GridH;
        Dst[(Ny * GridW + Nx) * NumDirs + D] = Out;
      }
    }
  }
}

template <typename P> uint64_t runLbm(Runtime &RT, unsigned Scale) {
  Rng R(0x1b3);
  uint64_t Checksum = 0x1b3;

  auto GridA = allocArray<double, P>(RT, NumCells * NumDirs);
  auto GridB = allocArray<double, P>(RT, NumCells * NumDirs);
  for (int I = 0; I < NumCells * NumDirs; ++I)
    GridA[I] = W[I % NumDirs] * (1 + 0.01 * (R.nextDouble() - 0.5));

  unsigned Steps = 6 * Scale;
  for (unsigned Step = 0; Step < Steps; ++Step) {
    if (Step % 2 == 0)
      collideAndStream<P>(GridA, GridB, 1.2);
    else
      collideAndStream<P>(GridB, GridA, 1.2);
  }

  double Mass = 0;
  auto &Final = Steps % 2 == 0 ? GridA : GridB;
  for (int I = 0; I < NumCells * NumDirs; ++I)
    Mass += Final[I];
  Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Mass * 1000));

  // Seeded issue: the distribution grid read as long[] (the
  // fundamental-type confusion reported in [15]).
  if constexpr (isInstrumented<P>()) {
    auto AsLong = CheckedPtr<long, P>::fromCast(GridA);
    (void)AsLong;
  }

  freeArray(RT, GridA);
  freeArray(RT, GridB);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::LbmWorkload = {
    {"lbm", "C", 0.9, /*SeededIssues=*/1}, EFFSAN_WORKLOAD_ENTRIES(runLbm)};
