//===- workloads/spec/Perlbench.cpp - 400.perlbench stand-in --------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A hash-table-heavy interpreter kernel standing in for 400.perlbench:
/// chained hash tables of scalar values ("SVs") with kind dispatch and
/// string manipulation. Seeded issues mirror Section 6.1's perlbench
/// findings: struct-prefix "inheritance" confusion, (T*) confused with
/// (T**), memory reused as a different type instead of being freed, and
/// the known use-after-free from [32].
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace perlw {

/// Perl-style scalar variants sharing a common prefix — the paper's
/// "ad hoc implementation of C++-style inheritance".
struct SvAny {
  int Kind;
  int Flags;
};

struct SvInt {
  int Kind;
  int Flags;
  long IntVal;
};

struct SvNum {
  int Kind;
  int Flags;
  double NumVal;
};

struct SvStr {
  int Kind;
  int Flags;
  char Buf[32];
  unsigned Len;
};

struct HashEntry {
  HashEntry *Next;
  uint64_t Hash;
  long Key;
  SvInt *Value;
};

} // namespace perlw

EFFECTIVE_REFLECT(perlw::SvAny, Kind, Flags);
EFFECTIVE_REFLECT(perlw::SvInt, Kind, Flags, IntVal);
EFFECTIVE_REFLECT(perlw::SvNum, Kind, Flags, NumVal);
EFFECTIVE_REFLECT(perlw::SvStr, Kind, Flags, Buf, Len);
EFFECTIVE_REFLECT(perlw::HashEntry, Next, Hash, Key, Value);

namespace effective {
namespace workloads {
namespace {

using namespace perlw;

constexpr unsigned NumBuckets = 256;

template <typename P>
uint64_t hashInsertLookup(Runtime &RT, Rng &R, unsigned Ops,
                          uint64_t &Checksum) {
  // Bucket array of HashEntry* heads.
  auto Buckets = allocArray<HashEntry *, P>(RT, NumBuckets);
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets[I] = nullptr;

  uint64_t Live = 0;
  for (unsigned Op = 0; Op < Ops; ++Op) {
    long Key = static_cast<long>(R.next(Ops / 2 + 1));
    uint64_t H = hashMix(static_cast<uint64_t>(Key));
    unsigned B = H % NumBuckets;
    // Chain walk: each loaded pointer is an input (rule (c)).
    auto Entry = CheckedPtr<HashEntry, P>::input(Buckets[B]);
    bool Found = false;
    while (Entry.raw()) {
      if (Entry->Key == Key) {
        Checksum = mixChecksum(Checksum, Entry->Value
                                             ? static_cast<uint64_t>(
                                                   CheckedPtr<SvInt, P>::
                                                       input(Entry->Value)
                                                           ->IntVal)
                                             : 0);
        Found = true;
        break;
      }
      Entry = CheckedPtr<HashEntry, P>::input(Entry->Next);
    }
    if (Found)
      continue;
    auto Value = allocOne<SvInt, P>(RT);
    Value->Kind = 1;
    Value->Flags = 0;
    Value->IntVal = Key * 3 + 1;
    auto Fresh = allocOne<HashEntry, P>(RT);
    Fresh->Next = Buckets[B];
    Fresh->Hash = H;
    Fresh->Key = Key;
    Fresh->Value = Value.escape();
    Buckets[B] = Fresh.escape();
    ++Live;
  }

  // Tear the table down (exercises type_free heavily, like perl's
  // scope exits).
  for (unsigned B = 0; B < NumBuckets; ++B) {
    auto Entry = CheckedPtr<HashEntry, P>::input(Buckets[B]);
    while (Entry.raw()) {
      auto Next = CheckedPtr<HashEntry, P>::input(Entry->Next);
      freeArray(RT, CheckedPtr<SvInt, P>::input(Entry->Value));
      freeArray(RT, Entry);
      Entry = Next;
    }
  }
  freeArray(RT, Buckets);
  return Live;
}

/// String append/interpolate kernel over SvStr values.
template <typename P>
uint64_t stringOps(Runtime &RT, Rng &R, unsigned Ops, uint64_t &Checksum) {
  uint64_t Total = 0;
  for (unsigned Op = 0; Op < Ops; ++Op) {
    auto S = allocOne<SvStr, P>(RT);
    S->Kind = 3;
    S->Flags = 0;
    auto Buf = S.field(&SvStr::Buf);
    unsigned Len = static_cast<unsigned>(R.next(31));
    for (unsigned I = 0; I < Len; ++I)
      Buf[I] = static_cast<char>('a' + (R.next() % 26));
    if (Len < 31)
      Buf[Len] = 0;
    S->Len = Len;
    for (unsigned I = 0; I < Len; ++I)
      Total += static_cast<unsigned char>(Buf[I]);
    freeArray(RT, S);
  }
  Checksum = mixChecksum(Checksum, Total);
  return Total;
}

/// Section 6.1 seeded issues, one bucket each.
template <typename P> void seededBugs(Runtime &RT) {
  if constexpr (!isInstrumented<P>())
    return;
  // (1)-(4): struct-prefix inheritance confusion in both directions —
  // SvAny is used as the "base class" of the other variants.
  {
    auto Base = allocOne<SvAny, P>(RT);
    Base->Kind = 0;
    auto AsInt = CheckedPtr<SvInt, P>::fromCast(Base);   // issue 1
    (void)AsInt;
    auto AsNum = CheckedPtr<SvNum, P>::fromCast(Base);   // issue 2
    (void)AsNum;
    auto AsStr = CheckedPtr<SvStr, P>::fromCast(Base);   // issue 3
    (void)AsStr;
    freeArray(RT, Base);
  }
  {
    auto IntSv = allocOne<SvInt, P>(RT);
    auto AsNum = CheckedPtr<SvNum, P>::fromCast(IntSv);  // issue 4
    (void)AsNum;
    freeArray(RT, IntSv);
  }
  // (5): (T *) confused with (T **) — an SvInt object read as if it
  // held SvInt pointers.
  {
    auto IntSv = allocOne<SvInt, P>(RT);
    auto AsPtrPtr = CheckedPtr<SvInt *, P>::fromCast(IntSv); // issue 5
    (void)AsPtrPtr;
    freeArray(RT, IntSv);
  }
  // (6): reusing memory as a different type rather than freeing it.
  {
    auto IntSv = allocOne<SvInt, P>(RT);
    freeArray(RT, IntSv);
    auto NumSv = allocOne<SvNum, P>(RT); // Reuses the block (LIFO).
    auto Stale = CheckedPtr<SvInt, P>::input(IntSv.raw()); // issue 6
    (void)Stale;
    freeArray(RT, NumSv);
  }
  // (7): the known use-after-free reported in [32] (test workload).
  {
    auto S = allocOne<SvStr, P>(RT);
    freeArray(RT, S);
    auto Dangling = CheckedPtr<SvStr, P>::input(S.raw()); // issue 7
    (void)Dangling;
  }
  // (8): double free.
  {
    auto S = allocOne<SvInt, P>(RT);
    freeArray(RT, S);
    freeArray(RT, S); // issue 8
  }
  // (9): scalar buffer overflowed by one into the Len field
  // (sub-object bounds).
  {
    auto S = allocOne<SvStr, P>(RT);
    auto Buf = S.field(&SvStr::Buf);
    Buf[32] = 1; // issue 9: off-by-one into Len
    freeArray(RT, S);
  }
}

/// Interop with uninstrumented-library memory: perl links against libc
/// and friends whose buffers are not low-fat allocations. Checks on
/// such pointers take the legacy path (wide bounds, Figure 6 lines
/// 11-12); Section 6.1 reports ~1.1% of all type checks were legacy.
template <typename P>
uint64_t legacyLibraryPhase(Rng &R, unsigned Ops, uint64_t Seed) {
  unsigned Size = 512;
  char *Buffer = static_cast<char *>(std::malloc(Size));
  MallocTally::noteAlloc(Buffer);
  for (unsigned I = 0; I < Size; ++I)
    Buffer[I] = static_cast<char>((Seed + I) & 0x7f);
  uint64_t Acc = Seed;
  for (unsigned Op = 0; Op < Ops; ++Op) {
    // The library hands back an interior pointer; instrumented code
    // re-checks it on input (rule (a)) and reads through it.
    auto In = CheckedPtr<char, P>::input(
        Buffer + R.next(Size - 8));
    for (int K = 0; K < 8; ++K)
      Acc = Acc * 131 + static_cast<uint64_t>(In[K]);
  }
  MallocTally::noteFree(Buffer);
  std::free(Buffer);
  return Acc;
}

template <typename P> uint64_t runPerlbench(Runtime &RT, unsigned Scale) {
  Rng R(0x9e11);
  uint64_t Checksum = 0x517;
  unsigned Ops = 220 * Scale;
  for (int Round = 0; Round < 3; ++Round) {
    Checksum =
        mixChecksum(Checksum, hashInsertLookup<P>(RT, R, Ops, Checksum));
    Checksum = mixChecksum(Checksum, stringOps<P>(RT, R, Ops / 2,
                                                  Checksum));
    Checksum = mixChecksum(Checksum,
                           legacyLibraryPhase<P>(R, Ops * 12, Checksum));
  }
  seededBugs<P>(RT);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload
    effective::workloads::PerlbenchWorkload = {
        {"perlbench", "C", 126.4, /*SeededIssues=*/9},
        EFFSAN_WORKLOAD_ENTRIES(runPerlbench)};
