//===- workloads/spec/Hmmer.cpp - 456.hmmer stand-in ----------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A profile-HMM Viterbi kernel standing in for 456.hmmer: dynamic
/// programming over match/insert/delete state matrices against random
/// sequences. Bounds-check heavy, matching hmmer's Figure 7 profile
/// (by far the highest #Bounds-to-#Type ratio). Clean: zero issues.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace effective {
namespace workloads {
namespace {

constexpr int ModelLen = 64;
constexpr int SeqLen = 96;
constexpr int Alphabet = 20;
constexpr long NegInf = -(1 << 28);

template <typename P> struct HmmModel {
  CheckedPtr<long, P> MatchEmit;  // [ModelLen][Alphabet]
  CheckedPtr<long, P> InsertEmit; // [Alphabet]
  CheckedPtr<long, P> TransMM;    // [ModelLen]
  CheckedPtr<long, P> TransMI;
  CheckedPtr<long, P> TransMD;
};

template <typename P>
long viterbi(const HmmModel<P> &Model, CheckedPtr<signed char, P> Seq,
             CheckedPtr<long, P> MatchRow, CheckedPtr<long, P> InsRow,
             CheckedPtr<long, P> DelRow, CheckedPtr<long, P> PrevMatch,
             CheckedPtr<long, P> PrevIns, CheckedPtr<long, P> PrevDel) {
  // Function entry: all pointer parameters are re-checked (rule (a)).
  // One type_check per call amortized over the whole DP sweep gives
  // hmmer its extreme #Bounds-to-#Type ratio from Figure 7.
  Seq = enterFunction(Seq);
  MatchRow = enterFunction(MatchRow);
  InsRow = enterFunction(InsRow);
  DelRow = enterFunction(DelRow);
  PrevMatch = enterFunction(PrevMatch);
  PrevIns = enterFunction(PrevIns);
  PrevDel = enterFunction(PrevDel);
  for (int K = 0; K <= ModelLen; ++K) {
    PrevMatch[K] = K == 0 ? 0 : NegInf;
    PrevIns[K] = NegInf;
    PrevDel[K] = NegInf;
  }
  for (int I = 1; I <= SeqLen; ++I) {
    int Sym = Seq[I - 1];
    MatchRow[0] = NegInf;
    InsRow[0] = NegInf;
    DelRow[0] = NegInf;
    for (int K = 1; K <= ModelLen; ++K) {
      long FromM = PrevMatch[K - 1] + Model.TransMM[K - 1];
      long FromI = PrevIns[K - 1];
      long FromD = PrevDel[K - 1];
      long Best = FromM > FromI ? FromM : FromI;
      if (FromD > Best)
        Best = FromD;
      MatchRow[K] = Best + Model.MatchEmit[(K - 1) * Alphabet + Sym];
      long IM = PrevMatch[K] + Model.TransMI[K - 1];
      long II = PrevIns[K];
      InsRow[K] = (IM > II ? IM : II) + Model.InsertEmit[Sym];
      long DM = MatchRow[K - 1] + Model.TransMD[K - 1];
      long DD = DelRow[K - 1];
      DelRow[K] = DM > DD ? DM : DD;
    }
    for (int K = 0; K <= ModelLen; ++K) {
      PrevMatch[K] = MatchRow[K];
      PrevIns[K] = InsRow[K];
      PrevDel[K] = DelRow[K];
    }
  }
  long Best = NegInf;
  for (int K = 0; K <= ModelLen; ++K)
    if (PrevMatch[K] > Best)
      Best = PrevMatch[K];
  return Best;
}

template <typename P> uint64_t runHmmer(Runtime &RT, unsigned Scale) {
  Rng R(0x4a3);
  uint64_t Checksum = 0x4a3;

  HmmModel<P> Model;
  Model.MatchEmit = allocArray<long, P>(RT, ModelLen * Alphabet);
  Model.InsertEmit = allocArray<long, P>(RT, Alphabet);
  Model.TransMM = allocArray<long, P>(RT, ModelLen);
  Model.TransMI = allocArray<long, P>(RT, ModelLen);
  Model.TransMD = allocArray<long, P>(RT, ModelLen);
  for (int I = 0; I < ModelLen * Alphabet; ++I)
    Model.MatchEmit[I] = static_cast<long>(R.next(64)) - 32;
  for (int I = 0; I < Alphabet; ++I)
    Model.InsertEmit[I] = static_cast<long>(R.next(16)) - 8;
  for (int I = 0; I < ModelLen; ++I) {
    Model.TransMM[I] = -static_cast<long>(R.next(4));
    Model.TransMI[I] = -static_cast<long>(R.next(12)) - 4;
    Model.TransMD[I] = -static_cast<long>(R.next(12)) - 4;
  }

  auto Seq = allocArray<signed char, P>(RT, SeqLen);
  auto MatchRow = allocArray<long, P>(RT, ModelLen + 1);
  auto InsRow = allocArray<long, P>(RT, ModelLen + 1);
  auto DelRow = allocArray<long, P>(RT, ModelLen + 1);
  auto PrevMatch = allocArray<long, P>(RT, ModelLen + 1);
  auto PrevIns = allocArray<long, P>(RT, ModelLen + 1);
  auto PrevDel = allocArray<long, P>(RT, ModelLen + 1);

  unsigned Sequences = 10 * Scale;
  for (unsigned S = 0; S < Sequences; ++S) {
    for (int I = 0; I < SeqLen; ++I)
      Seq[I] = static_cast<signed char>(R.next(Alphabet));
    long Score = viterbi(Model, Seq, MatchRow, InsRow, DelRow, PrevMatch,
                         PrevIns, PrevDel);
    Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Score));
  }

  freeArray(RT, Model.MatchEmit);
  freeArray(RT, Model.InsertEmit);
  freeArray(RT, Model.TransMM);
  freeArray(RT, Model.TransMI);
  freeArray(RT, Model.TransMD);
  freeArray(RT, Seq);
  freeArray(RT, MatchRow);
  freeArray(RT, InsRow);
  freeArray(RT, DelRow);
  freeArray(RT, PrevMatch);
  freeArray(RT, PrevIns);
  freeArray(RT, PrevDel);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::HmmerWorkload = {
    {"hmmer", "C", 20.7, /*SeededIssues=*/0},
    EFFSAN_WORKLOAD_ENTRIES(runHmmer)};
