//===- workloads/spec/Mcf.cpp - 429.mcf stand-in --------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A minimum-cost-flow kernel standing in for 429.mcf: successive
/// shortest path augmentation (Bellman-Ford potentials) over a layered
/// synthetic network of node/arc structs. Clean: the paper reports
/// zero issues for mcf.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace mcfw {

struct McfNode {
  long Potential;
  int FirstArc;
  int Depth;
};

struct McfArc {
  int From;
  int To;
  int NextOut;
  long Cost;
  long Capacity;
  long Flow;
};

} // namespace mcfw

EFFECTIVE_REFLECT(mcfw::McfNode, Potential, FirstArc, Depth);
EFFECTIVE_REFLECT(mcfw::McfArc, From, To, NextOut, Cost, Capacity, Flow);

namespace effective {
namespace workloads {
namespace {

using namespace mcfw;

template <typename P> uint64_t runMcf(Runtime &RT, unsigned Scale) {
  Rng R(0x3cf);
  uint64_t Checksum = 0x3cf;

  unsigned NumNodes = 160 + 8 * Scale;
  unsigned NumArcs = NumNodes * 4;
  auto Nodes = allocArray<McfNode, P>(RT, NumNodes);
  auto Arcs = allocArray<McfArc, P>(RT, NumArcs);
  auto Dist = allocArray<long, P>(RT, NumNodes);

  for (unsigned I = 0; I < NumNodes; ++I) {
    Nodes[I].Potential = 0;
    Nodes[I].FirstArc = -1;
    Nodes[I].Depth = static_cast<int>(I * 8 / NumNodes);
  }
  for (unsigned A = 0; A < NumArcs; ++A) {
    unsigned From = static_cast<unsigned>(R.next(NumNodes - 1));
    unsigned To = From + 1 + static_cast<unsigned>(
                                R.next(NumNodes - From - 1));
    Arcs[A].From = static_cast<int>(From);
    Arcs[A].To = static_cast<int>(To);
    Arcs[A].Cost = static_cast<long>(R.next(100) + 1);
    Arcs[A].Capacity = static_cast<long>(R.next(8) + 1);
    Arcs[A].Flow = 0;
    Arcs[A].NextOut = Nodes[From].FirstArc;
    Nodes[From].FirstArc = static_cast<int>(A);
  }

  // Repeated Bellman-Ford sweeps with flow augmentation along improving
  // arcs (a simplified cost-scaling loop). Each round corresponds to a
  // bellman_ford(nodes, arcs, dist) call in the original, so the
  // pointers re-enter through a function boundary.
  for (unsigned Round = 0; Round < 3 * Scale; ++Round) {
    Nodes = enterFunction(Nodes);
    Arcs = enterFunction(Arcs);
    Dist = enterFunction(Dist);
    for (unsigned I = 0; I < NumNodes; ++I)
      Dist[I] = I == 0 ? 0 : (1 << 28);
    for (unsigned Sweep = 0; Sweep < 6; ++Sweep) {
      bool Changed = false;
      for (unsigned A = 0; A < NumArcs; ++A) {
        if (Arcs[A].Flow >= Arcs[A].Capacity)
          continue;
        long Through = Dist[Arcs[A].From] + Arcs[A].Cost;
        if (Through < Dist[Arcs[A].To]) {
          Dist[Arcs[A].To] = Through;
          Changed = true;
        }
      }
      if (!Changed)
        break;
    }
    // Augment along every tight arc; update potentials.
    long Pushed = 0;
    for (unsigned A = 0; A < NumArcs; ++A) {
      if (Dist[Arcs[A].To] == Dist[Arcs[A].From] + Arcs[A].Cost &&
          Arcs[A].Flow < Arcs[A].Capacity) {
        ++Arcs[A].Flow;
        ++Pushed;
      }
    }
    for (unsigned I = 0; I < NumNodes; ++I)
      Nodes[I].Potential += Dist[I] == (1 << 28) ? 0 : Dist[I];
    Checksum = mixChecksum(Checksum, static_cast<uint64_t>(Pushed));
  }

  uint64_t PotentialSum = 0;
  for (unsigned I = 0; I < NumNodes; ++I)
    PotentialSum += static_cast<uint64_t>(Nodes[I].Potential);
  Checksum = mixChecksum(Checksum, PotentialSum);

  freeArray(RT, Nodes);
  freeArray(RT, Arcs);
  freeArray(RT, Dist);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::McfWorkload = {
    {"mcf", "C", 1.5, /*SeededIssues=*/0}, EFFSAN_WORKLOAD_ENTRIES(runMcf)};
