//===- workloads/spec/H264ref.cpp - 464.h264ref stand-in ------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A video-encoding kernel standing in for 464.h264ref: block motion
/// estimation (SAD search) between synthetic frames plus a 4x4 integer
/// transform. Seeded issues mirror the paper: the known bounds
/// overflow reported in [32], the sub-object overflow of the
/// (blc_size) field of InputParameters, and an adjacent config-array
/// overflow.
///
//===----------------------------------------------------------------------===//

#include "workloads/Support.h"
#include "workloads/spec/SpecWorkloads.h"

namespace h264w {

/// The paper's InputParameters: blc_size is a small matrix (8 rows of
/// 2, stored flat) followed by further configuration, so an off-by-one
/// row lands inside the struct.
struct InputParameters {
  int BlcSize[16]; // 8 rows x 2 columns.
  int SearchRange;
  int QuantParam;
};

} // namespace h264w

EFFECTIVE_REFLECT(h264w::InputParameters, BlcSize, SearchRange, QuantParam);

namespace effective {
namespace workloads {
namespace {

using namespace h264w;

constexpr int FrameW = 128;
constexpr int FrameH = 96;
constexpr int BlockSize = 8;

/// Sum of absolute differences between a block in Cur and a candidate
/// position in Ref.
template <typename P>
int blockSad(CheckedPtr<unsigned char, P> Cur,
             CheckedPtr<unsigned char, P> Ref, int Bx, int By, int Mx,
             int My) {
  // Function entry: frame pointers re-checked per call (rule (a)).
  Cur = enterFunction(Cur);
  Ref = enterFunction(Ref);
  int Sad = 0;
  for (int Y = 0; Y < BlockSize; ++Y) {
    for (int X = 0; X < BlockSize; ++X) {
      int C = Cur[(By + Y) * FrameW + Bx + X];
      int Rv = Ref[(By + My + Y) * FrameW + Bx + Mx + X];
      Sad += C > Rv ? C - Rv : Rv - C;
    }
  }
  return Sad;
}

/// 4x4 integer transform (H.264 core transform) over a residual block.
template <typename P>
long transform4x4(CheckedPtr<int, P> Block) {
  Block = enterFunction(Block);
  long Energy = 0;
  // Horizontal then vertical butterflies.
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (int I = 0; I < 4; ++I) {
      int S = Pass == 0 ? 4 * I : I;       // Row or column stride base.
      int Step = Pass == 0 ? 1 : 4;
      int A = Block[S], B = Block[S + Step], C = Block[S + 2 * Step],
          D = Block[S + 3 * Step];
      Block[S] = A + B + C + D;
      Block[S + Step] = 2 * A + B - C - 2 * D;
      Block[S + 2 * Step] = A - B - C + D;
      Block[S + 3 * Step] = A - 2 * B + 2 * C - D;
    }
  }
  for (int I = 0; I < 16; ++I)
    Energy += Block[I] > 0 ? Block[I] : -Block[I];
  return Energy;
}

template <typename P> void seededBugs(Runtime &RT) {
  if constexpr (!isInstrumented<P>())
    return;
  // (1) The known object bounds overflow from [32]: reading one element
  // past a motion-vector cost table.
  {
    auto Costs = allocArray<int, P>(RT, 33); // 132 bytes: slack in class.
    for (int I = 0; I < 33; ++I)
      Costs[I] = I;
    (void)Costs[33]; // issue 1
    freeArray(RT, Costs);
  }
  // (2) The sub-object overflow of the blc_size field: writing row [8]
  // of an 8-row config matrix lands in SearchRange.
  {
    auto Params = allocOne<InputParameters, P>(RT);
    auto Blc = Params.field(&InputParameters::BlcSize);
    Blc[8 * 2] = 16; // issue 2: row 8 of 8 lands in SearchRange
    freeArray(RT, Params);
  }
  // (3) Config struct hashed as int[]: runs past the matched leading
  // sub-object (gcc/sphinx3-style idiom h264ref shares).
  {
    auto Params = allocOne<InputParameters, P>(RT);
    auto SearchField = Params.field(&InputParameters::SearchRange);
    (void)*(SearchField + 1); // issue 3: reads QuantParam
    freeArray(RT, Params);
  }
}

template <typename P> uint64_t runH264ref(Runtime &RT, unsigned Scale) {
  Rng R(0x4264);
  uint64_t Checksum = 0x4264;

  auto Cur = allocArray<unsigned char, P>(RT, FrameW * FrameH);
  auto Ref = allocArray<unsigned char, P>(RT, FrameW * FrameH);
  auto Residual = allocArray<int, P>(RT, 16);

  unsigned Frames = 2 * Scale;
  for (unsigned F = 0; F < Frames; ++F) {
    // Synthetic frames: smooth gradient plus noise; Ref is Cur shifted.
    for (int Y = 0; Y < FrameH; ++Y) {
      for (int X = 0; X < FrameW; ++X) {
        auto Value = static_cast<unsigned char>(
            (X + Y + static_cast<int>(R.next(8))) & 0xff);
        Cur[Y * FrameW + X] = Value;
        Ref[Y * FrameW + X] =
            static_cast<unsigned char>((Value + 3) & 0xff);
      }
    }
    long TotalSad = 0;
    for (int By = 8; By + BlockSize + 8 < FrameH; By += BlockSize) {
      for (int Bx = 8; Bx + BlockSize + 8 < FrameW; Bx += BlockSize) {
        int BestSad = 1 << 30;
        for (int My = -4; My <= 4; My += 2) {
          for (int Mx = -4; Mx <= 4; Mx += 2) {
            int Sad = blockSad<P>(Cur, Ref, Bx, By, Mx, My);
            if (Sad < BestSad)
              BestSad = Sad;
          }
        }
        TotalSad += BestSad;
      }
    }
    for (int I = 0; I < 16; ++I)
      Residual[I] = static_cast<int>(R.next(64)) - 32;
    Checksum = mixChecksum(Checksum, static_cast<uint64_t>(TotalSad));
    Checksum = mixChecksum(Checksum,
                           static_cast<uint64_t>(transform4x4<P>(Residual)));
  }

  seededBugs<P>(RT);
  freeArray(RT, Cur);
  freeArray(RT, Ref);
  freeArray(RT, Residual);
  return Checksum;
}

} // namespace
} // namespace workloads
} // namespace effective

const effective::workloads::Workload effective::workloads::H264refWorkload =
    {{"h264ref", "C", 36.1, /*SeededIssues=*/3},
     EFFSAN_WORKLOAD_ENTRIES(runH264ref)};
