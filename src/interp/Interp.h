//===- interp/Interp.h - IR interpreter over the runtime --------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A virtual machine executing (instrumented) IR against the real
/// EffectiveSan runtime: program memory *is* low-fat memory, so
/// type_check walks real META headers and layout hash tables, stack
/// frames allocate typed slots through the low-fat stack allocator
/// (freed slots rebind to FREE, so dangling-stack uses are caught),
/// and globals live in the typed global pool.
///
/// The VM mirrors the paper's logging mode: a detected error is
/// reported through the runtime's ErrorReporter and execution
/// continues. Continuing is host-safe because every raw access is
/// confined to the demand-paged low-fat arena (or a tracked legacy
/// allocation); anything else is a VM fault, reported in RunResult.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_INTERP_INTERP_H
#define EFFECTIVE_INTERP_INTERP_H

#include "core/Runtime.h"
#include "ir/IR.h"

#include <string>

namespace effective {

class Sanitizer;

namespace interp {

/// Execution limits and switches.
struct RunOptions {
  /// Instruction budget; exceeding it is a VM fault (runaway program).
  uint64_t MaxSteps = 100'000'000;
  /// Call-depth limit (the VM recurses on the host stack).
  uint64_t MaxCallDepth = 4000;
};

/// Dynamic counts of executed check instructions (the Figure 7 columns
/// for MiniC programs; the ablation benchmark compares these across
/// optimization levels).
struct ExecutedChecks {
  uint64_t TypeChecks = 0;
  uint64_t BoundsGets = 0;
  uint64_t BoundsChecks = 0;
  uint64_t BoundsNarrows = 0;
};

/// The outcome of one program run.
struct RunResult {
  /// True when the program ran to completion (VM-level; the program may
  /// still have reported type/memory errors through the runtime).
  bool Ok = false;
  /// VM fault description when !Ok.
  std::string Fault;
  /// main's return value.
  int64_t ExitCode = 0;
  /// Everything the print_* builtins wrote.
  std::string Output;
  /// Instructions executed.
  uint64_t Steps = 0;
  ExecutedChecks Checks;
  /// Errors the runtime reported during the run (bucketed count).
  uint64_t IssuesReported = 0;
};

/// Executes \p M's entry function. Global objects are (re)allocated per
/// run; the module may be executed repeatedly.
RunResult run(const ir::Module &M, Runtime &RT,
              const RunOptions &Opts = RunOptions(),
              std::string_view Entry = "main");

/// Session-scoped execution: runs \p M against \p Session's runtime, so
/// all checks, counters and reports stay inside that session.
RunResult run(const ir::Module &M, Sanitizer &Session,
              const RunOptions &Opts = RunOptions(),
              std::string_view Entry = "main");

} // namespace interp
} // namespace effective

#endif // EFFECTIVE_INTERP_INTERP_H
