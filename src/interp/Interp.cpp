//===- interp/Interp.cpp - IR interpreter over the runtime ----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree-walking reference interpreter. It executes ir::Module
/// instruction objects directly — simple, slow, and the differential
/// oracle for the bytecode VM (bytecode/VM.cpp): both engines share
/// their value semantics through interp/ExecSupport.h and must produce
/// identical results, checks and error reports for every program.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "api/Sanitizer.h"
#include "interp/ExecSupport.h"

#include <cstring>
#include <vector>

using namespace effective;
using namespace effective::interp;
using namespace effective::ir;

namespace {

using exec::Value;

/// The VM. Faults (wild accesses, budget exhaustion — not program
/// type/memory errors, which are reported by the runtime and execution
/// continues) set a sticky flag that unwinds the interpreter loop;
/// exceptions are not used anywhere in this project.
class Interpreter {
public:
  /// When \p Session is non-null the check opcodes dispatch through it,
  /// so the session's CheckPolicy governs what executed checks do;
  /// memory management always goes straight to \p RT (allocation is
  /// policy-independent).
  Interpreter(const Module &M, Runtime &RT, const RunOptions &Opts,
              Sanitizer *Session = nullptr)
      : M(M), RT(RT), Session(Session), Opts(Opts), Guard(RT) {}

  RunResult run(std::string_view Entry) {
    RunResult R;
    uint64_t IssuesBefore = RT.reporter().numIssues();
    // Module load: hand the module's site table to the session, so
    // every check this run executes reports with source attribution.
    // Keyed by the module's process-unique uid — re-running the same
    // module reuses the registered range instead of burning a fresh
    // one, and a later module can never alias a destroyed one.
    if (M.numCheckSites() != 0)
      SiteBase = RT.siteTables().registerTable(M.siteTable(), M.uid());
    Image.allocate(M, RT);
    if (const Function *Init = M.findFunction("__global_init"))
      callFunction(*Init, {});
    const Function *Main = M.findFunction(Entry);
    if (!Main)
      fault("entry function '" + std::string(Entry) + "' not found");
    if (!Faulted) {
      Value Ret = callFunction(*Main, {});
      R.ExitCode = Ret.I;
    }
    R.Ok = !Faulted;
    R.Fault = std::move(FaultMsg);
    R.Output = std::move(Output);
    R.Steps = Steps;
    R.Checks = Checks;
    R.IssuesReported = RT.reporter().numIssues() - IssuesBefore;
    return R;
  }

private:
  void fault(std::string Msg) {
    if (!Faulted) {
      Faulted = true;
      FaultMsg = std::move(Msg);
    }
  }

  /// Validates a raw access through the shared host-memory safety net
  /// (see exec::HostGuard); returns null and faults otherwise.
  void *validate(Value Addr, uint64_t Size, const char *What) {
    std::string Msg;
    void *P = Guard.validate(Addr, Size, What, Msg);
    if (!P)
      fault(std::move(Msg));
    return P;
  }

  //===--------------------------------------------------------------------===//
  // Frames and calls
  //===--------------------------------------------------------------------===//

  Value callFunction(const Function &F, const std::vector<Value> &Args) {
    Value Ret{0};
    if (Faulted)
      return Ret;
    if (++CallDepth > Opts.MaxCallDepth) {
      --CallDepth;
      fault("call depth limit exceeded in @" + F.name());
      return Ret;
    }

    std::vector<Value> Regs(F.numRegs(), Value{0});
    std::vector<Bounds> BRegs(F.numBRegs(), Bounds::wide());
    for (size_t I = 0; I < Args.size() && I < F.Params.size(); ++I)
      Regs[F.Params[I].R] = Args[I];

    // Typed stack slots through the low-fat stack allocator; released
    // (rebound to FREE) on every exit path — dangling-stack uses after
    // this frame returns are caught as use-after-free.
    size_t Mark = RT.stackMark();
    std::vector<void *> Slots;
    Slots.reserve(F.Slots.size());
    for (const StackSlot &S : F.Slots) {
      // An exhausted stack pool (real OOM or an induced fault) was
      // already reported as RESOURCE-EXHAUSTED by the runtime; the
      // slot stays null and any access through it faults cleanly as a
      // null deref instead of memset scribbling through a null.
      void *P = RT.stackAllocate(S.Size, S.ElemType, S.Escapes);
      if (P)
        std::memset(P, 0, S.Size);
      Slots.push_back(P);
    }

    Ret = execute(F, Regs, BRegs, Slots);
    RT.stackRelease(Mark);
    --CallDepth;
    return Ret;
  }

  Value execute(const Function &F, std::vector<Value> &Regs,
                std::vector<Bounds> &BRegs, std::vector<void *> &Slots) {
    BlockId Cur = 0;
    size_t Idx = 0;
    Value Zero{0};
    for (;;) {
      if (Faulted)
        return Zero;
      if (Cur >= F.Blocks.size() || Idx >= F.Blocks[Cur].Instrs.size()) {
        fault("fell off the end of a block in @" + F.name());
        return Zero;
      }
      const Instr &I = F.Blocks[Cur].Instrs[Idx];
      if (++Steps > Opts.MaxSteps) {
        fault("instruction budget exhausted in @" + F.name());
        return Zero;
      }

      switch (I.Op) {
      case Opcode::ConstInt:
        Regs[I.Dst].U = I.Imm;
        Regs[I.Dst] = exec::normalizeInt(Regs[I.Dst], I.Type);
        break;
      case Opcode::ConstFloat:
        Regs[I.Dst].F = I.FImm;
        break;
      case Opcode::ConstNull:
        Regs[I.Dst].P = nullptr;
        break;
      case Opcode::StringAddr:
        Regs[I.Dst].P = Image.StringAddrs[I.Imm];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] = Bounds::forObject(Image.StringAddrs[I.Imm],
                                            Image.StringSizes[I.Imm]);
        break;
      case Opcode::GlobalAddr:
        Regs[I.Dst].P = Image.GlobalAddrs[I.Imm];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] = Bounds::forObject(Image.GlobalAddrs[I.Imm],
                                            Image.GlobalSizes[I.Imm]);
        break;
      case Opcode::SlotAddr:
        Regs[I.Dst].P = Slots[I.Imm];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              Bounds::forObject(Slots[I.Imm], F.Slots[I.Imm].Size);
        break;
      case Opcode::Copy:
        Regs[I.Dst] = Regs[I.A];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      case Opcode::Arith: {
        Value R;
        if (!exec::evalArith(I.AOp, I.Type, Regs[I.A], Regs[I.B], R))
          fault("bitwise arithmetic on floating type");
        Regs[I.Dst] = R;
        break;
      }
      case Opcode::Compare:
        Regs[I.Dst].I =
            exec::evalCompare(I.CmpPred, I.Type, Regs[I.A], Regs[I.B]) ? 1
                                                                       : 0;
        break;
      case Opcode::Convert: {
        Value R;
        if (!exec::evalConvert(Regs[I.A], F.regType(I.A), I.Type, R))
          fault("convert with untyped source register");
        Regs[I.Dst] = R;
        break;
      }
      case Opcode::PtrCast:
        Regs[I.Dst] = Regs[I.A];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      case Opcode::FieldAddr: {
        const auto *Rec = cast<RecordType>(I.Type);
        const FieldInfo &Fi = Rec->fields()[I.Imm];
        Regs[I.Dst].U = Regs[I.A].U + Fi.Offset;
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      }
      case Opcode::IndexAddr:
        Regs[I.Dst].U =
            Regs[I.A].U +
            static_cast<uint64_t>(Regs[I.B].I *
                                  static_cast<int64_t>(I.Type->size()));
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      case Opcode::PtrDiff:
        Regs[I.Dst].I =
            (Regs[I.A].I - Regs[I.B].I) /
            static_cast<int64_t>(I.Type->size() ? I.Type->size() : 1);
        break;
      case Opcode::Load: {
        if (void *P = validate(Regs[I.A], I.Type->size(), "load")) {
          if (!exec::loadScalar(P, I.Type, Regs[I.Dst]))
            fault("load of unsupported type " + I.Type->str());
        }
        break;
      }
      case Opcode::Store: {
        if (void *P = validate(Regs[I.A], I.Type->size(), "store")) {
          if (!exec::storeScalar(P, I.Type, Regs[I.B]))
            fault("store of unsupported type " + I.Type->str());
        }
        break;
      }
      case Opcode::Malloc: {
        uint64_t Size = Regs[I.A].U;
        if (Size > (uint64_t(1) << 40)) {
          fault("implausible malloc size");
          break;
        }
        // A failed allocation (real OOM or an induced exhaustion
        // fault) was reported as RESOURCE-EXHAUSTED by the runtime and
        // surfaces to the program as a null result, exactly like C
        // malloc. Never whitelist null with the guard — that would
        // validate wild accesses at [0, Size) — and give it wide
        // bounds, as any legacy pointer.
        void *P = RT.allocate(Size, I.Type);
        if (P && !RT.heap().isLowFat(P))
          Guard.noteLegacy(P, Size);
        Regs[I.Dst].P = P;
        if (I.BDst != NoBReg)
          BRegs[I.BDst] = P ? Bounds::forObject(P, Size) : Bounds::wide();
        break;
      }
      case Opcode::Free:
        RT.deallocate(Regs[I.A].P);
        break;
      case Opcode::Call: {
        const Function &Callee = *M.Functions[I.Imm];
        std::vector<Value> Args;
        Args.reserve(I.Args.size());
        for (Reg R : I.Args)
          Args.push_back(Regs[R]);
        Value Ret = callFunction(Callee, Args);
        if (I.Dst != NoReg)
          Regs[I.Dst] = Ret;
        break;
      }
      case Opcode::CallBuiltin:
        execBuiltin(static_cast<BuiltinId>(I.Imm), I, Regs);
        break;
      case Opcode::Ret: {
        Value V{0};
        if (I.A != NoReg)
          V = Regs[I.A];
        return V;
      }
      case Opcode::Br:
        Cur = I.Target0;
        Idx = 0;
        continue;
      case Opcode::CondBr:
        Cur = Regs[I.A].U != 0 ? I.Target0 : I.Target1;
        Idx = 0;
        continue;
      case Opcode::TypeCheck:
        ++Checks.TypeChecks;
        BRegs[I.BDst] = Regs[I.A].P
                            ? vmTypeCheck(Regs[I.A].P, I.Type, I.Site)
                            : Bounds::wide();
        break;
      case Opcode::BoundsGet:
        ++Checks.BoundsGets;
        BRegs[I.BDst] = Regs[I.A].P
                            ? vmBoundsGet(Regs[I.A].P, I.Site)
                            : Bounds::wide();
        break;
      case Opcode::BoundsCheck:
        ++Checks.BoundsChecks;
        if (Regs[I.A].P)
          vmBoundsCheck(Regs[I.A].P, I.Imm, BRegs[I.BSrc], I.Site);
        break;
      case Opcode::BoundsNarrow:
        ++Checks.BoundsNarrows;
        BRegs[I.BDst] =
            vmBoundsNarrow(BRegs[I.BSrc], Regs[I.A].P, I.Imm);
        break;
      case Opcode::WideBounds:
        BRegs[I.BDst] = Bounds::wide();
        break;
      }
      ++Idx;
    }
  }

  void execBuiltin(BuiltinId Id, const Instr &I,
                   std::vector<Value> &Regs) {
    switch (Id) {
    case BuiltinId::PrintInt:
      exec::printInt(Regs[I.Args[0]].I, Output);
      break;
    case BuiltinId::PrintFloat:
      exec::printFloat(Regs[I.Args[0]].F, Output);
      break;
    case BuiltinId::PrintStr:
      exec::printStr(Regs[I.Args[0]], Output,
                     [this](Value V, uint64_t Size, const char *What) {
                       return Faulted ? nullptr : validate(V, Size, What);
                     });
      break;
    }
  }

  const Module &M;
  /// \name Check dispatch.
  /// Through the session when one is bound (its CheckPolicy governs
  /// the checks), straight to the runtime otherwise.
  /// @{
  /// Maps a module-local site id into the session's registered range
  /// (identity for unsited instructions and unregistered modules).
  SiteId rebase(SiteId Site) const {
    return (Site == NoSite || SiteBase == NoSite) ? Site
                                                  : SiteBase + Site;
  }

  Bounds vmTypeCheck(const void *P, const TypeInfo *Type, SiteId Site) {
    // Instrumented checks carry a dense per-module site (rebased into
    // the session's registry); hand-built IR has none and takes the
    // type-derived pseudo-site instead.
    Site = Site == NoSite ? siteForType(Type) : rebase(Site);
    return Session ? Session->typeCheck(P, Type, Site)
                   : RT.typeCheck(P, Type, Site);
  }
  Bounds vmBoundsGet(const void *P, SiteId Site) {
    Site = rebase(Site);
    return Session ? Session->boundsGet(P, Site)
                   : RT.boundsGet(P, Site);
  }
  void vmBoundsCheck(const void *P, size_t Size, Bounds B, SiteId Site) {
    Site = rebase(Site);
    if (Session)
      Session->boundsCheck(P, Size, B, Site);
    else
      RT.boundsCheck(P, Size, B, Site);
  }
  Bounds vmBoundsNarrow(Bounds B, const void *Field, size_t Size) {
    return Session ? Session->boundsNarrow(B, Field, Size)
                   : RT.boundsNarrow(B, Field, Size);
  }
  /// @}

  Runtime &RT;
  Sanitizer *Session;
  const RunOptions &Opts;
  /// Base the module's site table was rebased to at load (NoSite when
  /// the module has no sites).
  SiteId SiteBase = NoSite;

  exec::HostGuard Guard;
  exec::ModuleImage Image;

  std::string Output;
  uint64_t Steps = 0;
  uint64_t CallDepth = 0;
  ExecutedChecks Checks;
  bool Faulted = false;
  std::string FaultMsg;
};

} // namespace

RunResult interp::run(const Module &M, Runtime &RT, const RunOptions &Opts,
                      std::string_view Entry) {
  Interpreter I(M, RT, Opts);
  return I.run(Entry);
}

RunResult interp::run(const Module &M, Sanitizer &Session,
                      const RunOptions &Opts, std::string_view Entry) {
  Interpreter I(M, Session.runtime(), Opts, &Session);
  return I.run(Entry);
}
