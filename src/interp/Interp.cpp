//===- interp/Interp.cpp - IR interpreter over the runtime ----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "api/Sanitizer.h"

#include <cinttypes>
#include <cstring>
#include <vector>

using namespace effective;
using namespace effective::interp;
using namespace effective::ir;

namespace {

/// One 64-bit VM value; interpretation is directed by register types.
union Value {
  int64_t I;
  uint64_t U;
  double F;
  void *P;
};

/// The VM. Faults (wild accesses, budget exhaustion — not program
/// type/memory errors, which are reported by the runtime and execution
/// continues) set a sticky flag that unwinds the interpreter loop;
/// exceptions are not used anywhere in this project.
class Interpreter {
public:
  /// When \p Session is non-null the check opcodes dispatch through it,
  /// so the session's CheckPolicy governs what executed checks do;
  /// memory management always goes straight to \p RT (allocation is
  /// policy-independent).
  Interpreter(const Module &M, Runtime &RT, const RunOptions &Opts,
              Sanitizer *Session = nullptr)
      : M(M), RT(RT), Session(Session), Opts(Opts) {}

  RunResult run(std::string_view Entry) {
    RunResult R;
    uint64_t IssuesBefore = RT.reporter().numIssues();
    // Module load: hand the module's site table to the session, so
    // every check this run executes reports with source attribution.
    // Keyed by the module's process-unique uid — re-running the same
    // module reuses the registered range instead of burning a fresh
    // one, and a later module can never alias a destroyed one.
    if (M.numCheckSites() != 0)
      SiteBase = RT.siteTables().registerTable(M.siteTable(), M.uid());
    allocateGlobals();
    if (const Function *Init = M.findFunction("__global_init"))
      callFunction(*Init, {});
    const Function *Main = M.findFunction(Entry);
    if (!Main)
      fault("entry function '" + std::string(Entry) + "' not found");
    if (!Faulted) {
      Value Ret = callFunction(*Main, {});
      R.ExitCode = Ret.I;
    }
    R.Ok = !Faulted;
    R.Fault = std::move(FaultMsg);
    R.Output = std::move(Output);
    R.Steps = Steps;
    R.Checks = Checks;
    R.IssuesReported = RT.reporter().numIssues() - IssuesBefore;
    return R;
  }

private:
  void fault(std::string Msg) {
    if (!Faulted) {
      Faulted = true;
      FaultMsg = std::move(Msg);
    }
  }

  //===--------------------------------------------------------------------===//
  // Memory safety net
  //===--------------------------------------------------------------------===//

  /// Validates a raw access before the VM performs it; returns null and
  /// faults otherwise. Accesses inside the demand-paged low-fat arena
  /// are host-safe even when they are program errors (the checks have
  /// already logged those); anything else must be a tracked legacy
  /// allocation.
  void *validate(Value Addr, uint64_t Size, const char *What) {
    char *P = static_cast<char *>(Addr.P);
    if (!P) {
      fault(std::string("null ") + What);
      return nullptr;
    }
    if (RT.heap().isInArena(P) && RT.heap().isInArena(P + Size))
      return P;
    for (const auto &[Base, Len] : LegacyBlocks) {
      if (Addr.U >= Base && Addr.U + Size <= Base + Len)
        return P;
    }
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "wild %s at 0x%" PRIxPTR " (%" PRIu64 " bytes)", What,
                  Addr.U, Size);
    fault(Buf);
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Globals and strings
  //===--------------------------------------------------------------------===//

  void allocateGlobals() {
    GlobalAddrs.clear();
    GlobalSizes.clear();
    for (const Global &G : M.Globals) {
      void *P = RT.globalAllocate(G.Size, G.ElemType, G.Name);
      GlobalAddrs.push_back(P);
      GlobalSizes.push_back(G.Size);
    }
    StringAddrs.clear();
    StringSizes.clear();
    for (const std::string &S : M.Strings) {
      uint64_t Size = S.size() + 1;
      void *P =
          RT.globalAllocate(Size, M.typeContext().getChar(), "__str");
      std::memcpy(P, S.data(), S.size());
      static_cast<char *>(P)[S.size()] = '\0';
      StringAddrs.push_back(P);
      StringSizes.push_back(Size);
    }
  }

  //===--------------------------------------------------------------------===//
  // Scalar load/store directed by TypeInfo
  //===--------------------------------------------------------------------===//

  Value loadScalar(const void *P, const TypeInfo *T) {
    Value V;
    V.U = 0;
    switch (T->kind()) {
    case TypeKind::Bool:
    case TypeKind::Char:
    case TypeKind::SChar: {
      int8_t X;
      std::memcpy(&X, P, 1);
      V.I = X;
      break;
    }
    case TypeKind::UChar: {
      uint8_t X;
      std::memcpy(&X, P, 1);
      V.U = X;
      break;
    }
    case TypeKind::Short: {
      int16_t X;
      std::memcpy(&X, P, 2);
      V.I = X;
      break;
    }
    case TypeKind::UShort: {
      uint16_t X;
      std::memcpy(&X, P, 2);
      V.U = X;
      break;
    }
    case TypeKind::Int: {
      int32_t X;
      std::memcpy(&X, P, 4);
      V.I = X;
      break;
    }
    case TypeKind::UInt: {
      uint32_t X;
      std::memcpy(&X, P, 4);
      V.U = X;
      break;
    }
    case TypeKind::Long:
    case TypeKind::LongLong:
    case TypeKind::ULong:
    case TypeKind::ULongLong:
      std::memcpy(&V.U, P, 8);
      break;
    case TypeKind::Float: {
      float X;
      std::memcpy(&X, P, 4);
      V.F = X;
      break;
    }
    case TypeKind::Double:
      std::memcpy(&V.F, P, 8);
      break;
    case TypeKind::Pointer:
      std::memcpy(&V.P, P, 8);
      break;
    default:
      fault("load of unsupported type " + T->str());
      break;
    }
    return V;
  }

  void storeScalar(void *P, const TypeInfo *T, Value V) {
    switch (T->kind()) {
    case TypeKind::Bool:
    case TypeKind::Char:
    case TypeKind::SChar:
    case TypeKind::UChar: {
      uint8_t X = static_cast<uint8_t>(V.U);
      std::memcpy(P, &X, 1);
      break;
    }
    case TypeKind::Short:
    case TypeKind::UShort: {
      uint16_t X = static_cast<uint16_t>(V.U);
      std::memcpy(P, &X, 2);
      break;
    }
    case TypeKind::Int:
    case TypeKind::UInt: {
      uint32_t X = static_cast<uint32_t>(V.U);
      std::memcpy(P, &X, 4);
      break;
    }
    case TypeKind::Long:
    case TypeKind::ULong:
    case TypeKind::LongLong:
    case TypeKind::ULongLong:
      std::memcpy(P, &V.U, 8);
      break;
    case TypeKind::Float: {
      float X = static_cast<float>(V.F);
      std::memcpy(P, &X, 4);
      break;
    }
    case TypeKind::Double:
      std::memcpy(P, &V.F, 8);
      break;
    case TypeKind::Pointer:
      std::memcpy(P, &V.P, 8);
      break;
    default:
      fault("store of unsupported type " + T->str());
      break;
    }
  }

  /// Canonicalizes an integer register value to its type's width.
  static Value normalizeInt(Value V, const TypeInfo *T) {
    switch (T->kind()) {
    case TypeKind::Bool:
      V.U = V.U & 1;
      break;
    case TypeKind::Char:
    case TypeKind::SChar:
      V.I = static_cast<int8_t>(V.U);
      break;
    case TypeKind::UChar:
      V.U = static_cast<uint8_t>(V.U);
      break;
    case TypeKind::Short:
      V.I = static_cast<int16_t>(V.U);
      break;
    case TypeKind::UShort:
      V.U = static_cast<uint16_t>(V.U);
      break;
    case TypeKind::Int:
      V.I = static_cast<int32_t>(V.U);
      break;
    case TypeKind::UInt:
      V.U = static_cast<uint32_t>(V.U);
      break;
    default:
      break;
    }
    return V;
  }

  static bool isUnsigned(const TypeInfo *T) {
    switch (T->kind()) {
    case TypeKind::Bool:
    case TypeKind::UChar:
    case TypeKind::UShort:
    case TypeKind::UInt:
    case TypeKind::ULong:
    case TypeKind::ULongLong:
      return true;
    default:
      return false;
    }
  }

  //===--------------------------------------------------------------------===//
  // Frames and calls
  //===--------------------------------------------------------------------===//

  Value callFunction(const Function &F, const std::vector<Value> &Args) {
    Value Ret{0};
    if (Faulted)
      return Ret;
    if (++CallDepth > Opts.MaxCallDepth) {
      --CallDepth;
      fault("call depth limit exceeded in @" + F.name());
      return Ret;
    }

    std::vector<Value> Regs(F.numRegs(), Value{0});
    std::vector<Bounds> BRegs(F.numBRegs(), Bounds::wide());
    for (size_t I = 0; I < Args.size() && I < F.Params.size(); ++I)
      Regs[F.Params[I].R] = Args[I];

    // Typed stack slots through the low-fat stack allocator; released
    // (rebound to FREE) on every exit path — dangling-stack uses after
    // this frame returns are caught as use-after-free.
    size_t Mark = RT.stackMark();
    std::vector<void *> Slots;
    Slots.reserve(F.Slots.size());
    for (const StackSlot &S : F.Slots) {
      void *P = RT.stackAllocate(S.Size, S.ElemType);
      std::memset(P, 0, S.Size);
      Slots.push_back(P);
    }

    Ret = execute(F, Regs, BRegs, Slots);
    RT.stackRelease(Mark);
    --CallDepth;
    return Ret;
  }

  Value execute(const Function &F, std::vector<Value> &Regs,
                std::vector<Bounds> &BRegs, std::vector<void *> &Slots) {
    BlockId Cur = 0;
    size_t Idx = 0;
    Value Zero{0};
    for (;;) {
      if (Faulted)
        return Zero;
      if (Cur >= F.Blocks.size() || Idx >= F.Blocks[Cur].Instrs.size()) {
        fault("fell off the end of a block in @" + F.name());
        return Zero;
      }
      const Instr &I = F.Blocks[Cur].Instrs[Idx];
      if (++Steps > Opts.MaxSteps) {
        fault("instruction budget exhausted in @" + F.name());
        return Zero;
      }

      switch (I.Op) {
      case Opcode::ConstInt:
        Regs[I.Dst].U = I.Imm;
        Regs[I.Dst] = normalizeInt(Regs[I.Dst], I.Type);
        break;
      case Opcode::ConstFloat:
        Regs[I.Dst].F = I.FImm;
        break;
      case Opcode::ConstNull:
        Regs[I.Dst].P = nullptr;
        break;
      case Opcode::StringAddr:
        Regs[I.Dst].P = StringAddrs[I.Imm];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              Bounds::forObject(StringAddrs[I.Imm], StringSizes[I.Imm]);
        break;
      case Opcode::GlobalAddr:
        Regs[I.Dst].P = GlobalAddrs[I.Imm];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              Bounds::forObject(GlobalAddrs[I.Imm], GlobalSizes[I.Imm]);
        break;
      case Opcode::SlotAddr:
        Regs[I.Dst].P = Slots[I.Imm];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              Bounds::forObject(Slots[I.Imm], F.Slots[I.Imm].Size);
        break;
      case Opcode::Copy:
        Regs[I.Dst] = Regs[I.A];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      case Opcode::Arith:
        Regs[I.Dst] = evalArith(I, Regs[I.A], Regs[I.B]);
        break;
      case Opcode::Compare:
        Regs[I.Dst].I = evalCompare(I, Regs[I.A], Regs[I.B]) ? 1 : 0;
        break;
      case Opcode::Convert:
        Regs[I.Dst] = evalConvert(Regs[I.A], F.regType(I.A), I.Type);
        break;
      case Opcode::PtrCast:
        Regs[I.Dst] = Regs[I.A];
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      case Opcode::FieldAddr: {
        const auto *Rec = cast<RecordType>(I.Type);
        const FieldInfo &Fi = Rec->fields()[I.Imm];
        Regs[I.Dst].U = Regs[I.A].U + Fi.Offset;
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      }
      case Opcode::IndexAddr:
        Regs[I.Dst].U =
            Regs[I.A].U +
            static_cast<uint64_t>(Regs[I.B].I *
                                  static_cast<int64_t>(I.Type->size()));
        if (I.BDst != NoBReg)
          BRegs[I.BDst] =
              I.BSrc != NoBReg ? BRegs[I.BSrc] : Bounds::wide();
        break;
      case Opcode::PtrDiff:
        Regs[I.Dst].I =
            (Regs[I.A].I - Regs[I.B].I) /
            static_cast<int64_t>(I.Type->size() ? I.Type->size() : 1);
        break;
      case Opcode::Load: {
        if (void *P = validate(Regs[I.A], I.Type->size(), "load"))
          Regs[I.Dst] = loadScalar(P, I.Type);
        break;
      }
      case Opcode::Store: {
        if (void *P = validate(Regs[I.A], I.Type->size(), "store"))
          storeScalar(P, I.Type, Regs[I.B]);
        break;
      }
      case Opcode::Malloc: {
        uint64_t Size = Regs[I.A].U;
        if (Size > (uint64_t(1) << 40)) {
          fault("implausible malloc size");
          break;
        }
        void *P = RT.allocate(Size, I.Type);
        if (!RT.heap().isLowFat(P))
          LegacyBlocks.push_back({reinterpret_cast<uintptr_t>(P), Size});
        Regs[I.Dst].P = P;
        if (I.BDst != NoBReg)
          BRegs[I.BDst] = Bounds::forObject(P, Size);
        break;
      }
      case Opcode::Free:
        RT.deallocate(Regs[I.A].P);
        break;
      case Opcode::Call: {
        const Function &Callee = *M.Functions[I.Imm];
        std::vector<Value> Args;
        Args.reserve(I.Args.size());
        for (Reg R : I.Args)
          Args.push_back(Regs[R]);
        Value Ret = callFunction(Callee, Args);
        if (I.Dst != NoReg)
          Regs[I.Dst] = Ret;
        break;
      }
      case Opcode::CallBuiltin:
        execBuiltin(static_cast<BuiltinId>(I.Imm), I, Regs);
        break;
      case Opcode::Ret: {
        Value V{0};
        if (I.A != NoReg)
          V = Regs[I.A];
        return V;
      }
      case Opcode::Br:
        Cur = I.Target0;
        Idx = 0;
        continue;
      case Opcode::CondBr:
        Cur = Regs[I.A].U != 0 ? I.Target0 : I.Target1;
        Idx = 0;
        continue;
      case Opcode::TypeCheck:
        ++Checks.TypeChecks;
        BRegs[I.BDst] = Regs[I.A].P
                            ? vmTypeCheck(Regs[I.A].P, I.Type, I.Site)
                            : Bounds::wide();
        break;
      case Opcode::BoundsGet:
        ++Checks.BoundsGets;
        BRegs[I.BDst] = Regs[I.A].P
                            ? vmBoundsGet(Regs[I.A].P, I.Site)
                            : Bounds::wide();
        break;
      case Opcode::BoundsCheck:
        ++Checks.BoundsChecks;
        if (Regs[I.A].P)
          vmBoundsCheck(Regs[I.A].P, I.Imm, BRegs[I.BSrc], I.Site);
        break;
      case Opcode::BoundsNarrow:
        ++Checks.BoundsNarrows;
        BRegs[I.BDst] =
            vmBoundsNarrow(BRegs[I.BSrc], Regs[I.A].P, I.Imm);
        break;
      case Opcode::WideBounds:
        BRegs[I.BDst] = Bounds::wide();
        break;
      }
      ++Idx;
    }
  }

  Value evalArith(const Instr &I, Value A, Value B) {
    Value R{0};
    const TypeInfo *T = I.Type;
    if (T->isFloating()) {
      switch (I.AOp) {
      case ArithOp::Add:
        R.F = A.F + B.F;
        return R;
      case ArithOp::Sub:
        R.F = A.F - B.F;
        return R;
      case ArithOp::Mul:
        R.F = A.F * B.F;
        return R;
      case ArithOp::Div:
        R.F = B.F != 0 ? A.F / B.F : 0;
        return R;
      default:
        fault("bitwise arithmetic on floating type");
        return R;
      }
    }
    bool U = isUnsigned(T);
    switch (I.AOp) {
    case ArithOp::Add:
      R.U = A.U + B.U;
      break;
    case ArithOp::Sub:
      R.U = A.U - B.U;
      break;
    case ArithOp::Mul:
      R.U = A.U * B.U;
      break;
    case ArithOp::Div:
      // Division by zero is UB in C; the VM defines it as 0 so buggy
      // programs keep running (the sanitizer's domain is memory, not
      // arithmetic).
      if (B.U == 0)
        R.U = 0;
      else if (U)
        R.U = A.U / B.U;
      else if (A.I == INT64_MIN && B.I == -1)
        R.I = A.I; // Avoid the one signed-overflow trap case.
      else
        R.I = A.I / B.I;
      break;
    case ArithOp::Rem:
      if (B.U == 0)
        R.U = 0;
      else if (U)
        R.U = A.U % B.U;
      else if (A.I == INT64_MIN && B.I == -1)
        R.I = 0;
      else
        R.I = A.I % B.I;
      break;
    case ArithOp::And:
      R.U = A.U & B.U;
      break;
    case ArithOp::Or:
      R.U = A.U | B.U;
      break;
    case ArithOp::Xor:
      R.U = A.U ^ B.U;
      break;
    case ArithOp::Shl:
      R.U = A.U << (B.U & 63);
      break;
    case ArithOp::Shr:
      if (U)
        R.U = A.U >> (B.U & 63);
      else
        R.I = A.I >> (B.U & 63);
      break;
    }
    return normalizeInt(R, T);
  }

  bool evalCompare(const Instr &I, Value A, Value B) {
    const TypeInfo *T = I.Type;
    if (T->isFloating()) {
      switch (I.CmpPred) {
      case Pred::Eq:
        return A.F == B.F;
      case Pred::Ne:
        return A.F != B.F;
      case Pred::Lt:
        return A.F < B.F;
      case Pred::Le:
        return A.F <= B.F;
      case Pred::Gt:
        return A.F > B.F;
      case Pred::Ge:
        return A.F >= B.F;
      }
    }
    if (T->isPointer() || isUnsigned(T)) {
      switch (I.CmpPred) {
      case Pred::Eq:
        return A.U == B.U;
      case Pred::Ne:
        return A.U != B.U;
      case Pred::Lt:
        return A.U < B.U;
      case Pred::Le:
        return A.U <= B.U;
      case Pred::Gt:
        return A.U > B.U;
      case Pred::Ge:
        return A.U >= B.U;
      }
    }
    switch (I.CmpPred) {
    case Pred::Eq:
      return A.I == B.I;
    case Pred::Ne:
      return A.I != B.I;
    case Pred::Lt:
      return A.I < B.I;
    case Pred::Le:
      return A.I <= B.I;
    case Pred::Gt:
      return A.I > B.I;
    case Pred::Ge:
      return A.I >= B.I;
    }
    return false;
  }

  Value evalConvert(Value V, const TypeInfo *From, const TypeInfo *To) {
    Value R{0};
    if (!From) {
      fault("convert with untyped source register");
      return R;
    }
    if (To->isFloating()) {
      if (From->isFloating())
        R.F = V.F;
      else if (isUnsigned(From))
        R.F = static_cast<double>(V.U);
      else
        R.F = static_cast<double>(V.I);
      if (To->kind() == TypeKind::Float)
        R.F = static_cast<float>(R.F);
      return R;
    }
    if (From->isFloating()) {
      // Out-of-range float-to-int is UB in C; saturate instead so the
      // VM stays deterministic.
      double Clamped = V.F;
      if (isUnsigned(To)) {
        if (!(Clamped >= 0))
          Clamped = 0;
        if (Clamped >= 1.8446744073709552e19)
          Clamped = 1.8446744073709552e19;
        R.U = static_cast<uint64_t>(Clamped);
      } else {
        if (Clamped >= 9.223372036854775e18)
          Clamped = 9.223372036854775e18;
        if (Clamped <= -9.223372036854775e18)
          Clamped = -9.223372036854775e18;
        if (Clamped != Clamped)
          Clamped = 0;
        R.I = static_cast<int64_t>(Clamped);
      }
      return normalizeInt(R, To);
    }
    // Integer/pointer to integer: reinterpret then normalize.
    R.U = V.U;
    return normalizeInt(R, To);
  }

  void execBuiltin(BuiltinId Id, const Instr &I,
                   std::vector<Value> &Regs) {
    char Buf[64];
    switch (Id) {
    case BuiltinId::PrintInt:
      std::snprintf(Buf, sizeof(Buf), "%" PRId64 "\n", Regs[I.Args[0]].I);
      Output += Buf;
      break;
    case BuiltinId::PrintFloat:
      std::snprintf(Buf, sizeof(Buf), "%g\n", Regs[I.Args[0]].F);
      Output += Buf;
      break;
    case BuiltinId::PrintStr: {
      Value V = Regs[I.Args[0]];
      if (!V.P) {
        Output += "(null)\n";
        break;
      }
      for (uint64_t K = 0; K < 4096 && !Faulted; ++K) {
        const char *C =
            static_cast<const char *>(validate(V, 1, "print_str read"));
        if (!C || *C == '\0')
          break;
        Output += *C;
        ++V.U;
      }
      Output += '\n';
      break;
    }
    }
  }

  const Module &M;
  /// \name Check dispatch.
  /// Through the session when one is bound (its CheckPolicy governs
  /// the checks), straight to the runtime otherwise.
  /// @{
  /// Maps a module-local site id into the session's registered range
  /// (identity for unsited instructions and unregistered modules).
  SiteId rebase(SiteId Site) const {
    return (Site == NoSite || SiteBase == NoSite) ? Site
                                                  : SiteBase + Site;
  }

  Bounds vmTypeCheck(const void *P, const TypeInfo *Type, SiteId Site) {
    // Instrumented checks carry a dense per-module site (rebased into
    // the session's registry); hand-built IR has none and takes the
    // type-derived pseudo-site instead.
    Site = Site == NoSite ? siteForType(Type) : rebase(Site);
    return Session ? Session->typeCheck(P, Type, Site)
                   : RT.typeCheck(P, Type, Site);
  }
  Bounds vmBoundsGet(const void *P, SiteId Site) {
    Site = rebase(Site);
    return Session ? Session->boundsGet(P, Site)
                   : RT.boundsGet(P, Site);
  }
  void vmBoundsCheck(const void *P, size_t Size, Bounds B, SiteId Site) {
    Site = rebase(Site);
    if (Session)
      Session->boundsCheck(P, Size, B, Site);
    else
      RT.boundsCheck(P, Size, B, Site);
  }
  Bounds vmBoundsNarrow(Bounds B, const void *Field, size_t Size) {
    return Session ? Session->boundsNarrow(B, Field, Size)
                   : RT.boundsNarrow(B, Field, Size);
  }
  /// @}

  Runtime &RT;
  Sanitizer *Session;
  const RunOptions &Opts;
  /// Base the module's site table was rebased to at load (NoSite when
  /// the module has no sites).
  SiteId SiteBase = NoSite;

  std::vector<void *> GlobalAddrs;
  std::vector<uint64_t> GlobalSizes;
  std::vector<void *> StringAddrs;
  std::vector<uint64_t> StringSizes;
  std::vector<std::pair<uintptr_t, uint64_t>> LegacyBlocks;

  std::string Output;
  uint64_t Steps = 0;
  uint64_t CallDepth = 0;
  ExecutedChecks Checks;
  bool Faulted = false;
  std::string FaultMsg;
};

} // namespace

RunResult interp::run(const Module &M, Runtime &RT, const RunOptions &Opts,
                      std::string_view Entry) {
  Interpreter I(M, RT, Opts);
  return I.run(Entry);
}

RunResult interp::run(const Module &M, Sanitizer &Session,
                      const RunOptions &Opts, std::string_view Entry) {
  Interpreter I(M, Session.runtime(), Opts, &Session);
  return I.run(Entry);
}
