//===- interp/ExecSupport.h - Shared execution-engine helpers ---*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantics both execution engines share: the tree-walking
/// reference interpreter (interp/Interp.cpp) and the direct-threaded
/// bytecode VM (bytecode/VM.cpp) must produce bit-identical results for
/// every program — same values, same faults, same fault messages — so
/// everything value-shaped lives here exactly once:
///
///   * the 64-bit Value union and integer canonicalization;
///   * scalar load/store directed by TypeInfo;
///   * arithmetic / comparison / conversion evaluation (including the
///     deliberate definedness choices: div-by-zero is 0, float-to-int
///     saturates, INT64_MIN / -1 does not trap);
///   * the host-memory safety net (arena membership + tracked legacy
///     blocks) that keeps a buggy *guest* program from performing a
///     wild access on the *host*;
///   * print builtins and module images (globals + string literals
///     materialized through the typed global allocator).
///
/// Everything is header-inline: the engines compile these into their
/// dispatch loops, and the bytecode superinstructions reach the same
/// fast paths the tree-walker uses with no extra call.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_INTERP_EXECSUPPORT_H
#define EFFECTIVE_INTERP_EXECSUPPORT_H

#include "core/Runtime.h"
#include "ir/IR.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace effective {
namespace exec {

/// One 64-bit VM value; interpretation is directed by register types.
union Value {
  int64_t I;
  uint64_t U;
  double F;
  void *P;
};

/// Canonicalizes an integer register value to its type's width.
EFFSAN_ALWAYS_INLINE Value normalizeInt(Value V, const TypeInfo *T) {
  switch (T->kind()) {
  case TypeKind::Bool:
    V.U = V.U & 1;
    break;
  case TypeKind::Char:
  case TypeKind::SChar:
    V.I = static_cast<int8_t>(V.U);
    break;
  case TypeKind::UChar:
    V.U = static_cast<uint8_t>(V.U);
    break;
  case TypeKind::Short:
    V.I = static_cast<int16_t>(V.U);
    break;
  case TypeKind::UShort:
    V.U = static_cast<uint16_t>(V.U);
    break;
  case TypeKind::Int:
    V.I = static_cast<int32_t>(V.U);
    break;
  case TypeKind::UInt:
    V.U = static_cast<uint32_t>(V.U);
    break;
  default:
    break;
  }
  return V;
}

inline bool isUnsignedInt(const TypeInfo *T) {
  switch (T->kind()) {
  case TypeKind::Bool:
  case TypeKind::UChar:
  case TypeKind::UShort:
  case TypeKind::UInt:
  case TypeKind::ULong:
  case TypeKind::ULongLong:
    return true;
  default:
    return false;
  }
}

/// Loads a scalar of type \p T from \p P into \p Out. Returns false for
/// a type no engine can load (aggregates); the engine faults with
/// "load of unsupported type".
EFFSAN_ALWAYS_INLINE bool loadScalar(const void *P, const TypeInfo *T,
                                            Value &Out) {
  Out.U = 0;
  switch (T->kind()) {
  case TypeKind::Bool:
  case TypeKind::Char:
  case TypeKind::SChar: {
    int8_t X;
    std::memcpy(&X, P, 1);
    Out.I = X;
    return true;
  }
  case TypeKind::UChar: {
    uint8_t X;
    std::memcpy(&X, P, 1);
    Out.U = X;
    return true;
  }
  case TypeKind::Short: {
    int16_t X;
    std::memcpy(&X, P, 2);
    Out.I = X;
    return true;
  }
  case TypeKind::UShort: {
    uint16_t X;
    std::memcpy(&X, P, 2);
    Out.U = X;
    return true;
  }
  case TypeKind::Int: {
    int32_t X;
    std::memcpy(&X, P, 4);
    Out.I = X;
    return true;
  }
  case TypeKind::UInt: {
    uint32_t X;
    std::memcpy(&X, P, 4);
    Out.U = X;
    return true;
  }
  case TypeKind::Long:
  case TypeKind::LongLong:
  case TypeKind::ULong:
  case TypeKind::ULongLong:
    std::memcpy(&Out.U, P, 8);
    return true;
  case TypeKind::Float: {
    float X;
    std::memcpy(&X, P, 4);
    Out.F = X;
    return true;
  }
  case TypeKind::Double:
    std::memcpy(&Out.F, P, 8);
    return true;
  case TypeKind::Pointer:
    std::memcpy(&Out.P, P, 8);
    return true;
  default:
    return false;
  }
}

/// Stores \p V as a scalar of type \p T at \p P; false for unsupported
/// types (the engine faults with "store of unsupported type").
EFFSAN_ALWAYS_INLINE bool storeScalar(void *P, const TypeInfo *T,
                                             Value V) {
  switch (T->kind()) {
  case TypeKind::Bool:
  case TypeKind::Char:
  case TypeKind::SChar:
  case TypeKind::UChar: {
    uint8_t X = static_cast<uint8_t>(V.U);
    std::memcpy(P, &X, 1);
    return true;
  }
  case TypeKind::Short:
  case TypeKind::UShort: {
    uint16_t X = static_cast<uint16_t>(V.U);
    std::memcpy(P, &X, 2);
    return true;
  }
  case TypeKind::Int:
  case TypeKind::UInt: {
    uint32_t X = static_cast<uint32_t>(V.U);
    std::memcpy(P, &X, 4);
    return true;
  }
  case TypeKind::Long:
  case TypeKind::ULong:
  case TypeKind::LongLong:
  case TypeKind::ULongLong:
    std::memcpy(P, &V.U, 8);
    return true;
  case TypeKind::Float: {
    float X = static_cast<float>(V.F);
    std::memcpy(P, &X, 4);
    return true;
  }
  case TypeKind::Double:
    std::memcpy(P, &V.F, 8);
    return true;
  case TypeKind::Pointer:
    std::memcpy(P, &V.P, 8);
    return true;
  default:
    return false;
  }
}

/// Evaluates A <Op> B with operands/result of type \p T. Returns false
/// for bitwise arithmetic on a floating type (the engine faults).
/// Division by zero is defined as 0 so buggy programs keep running
/// (the sanitizer's domain is memory, not arithmetic), and the one
/// signed-overflow trap case (INT64_MIN / -1) is special-cased.
EFFSAN_ALWAYS_INLINE bool evalArith(ir::ArithOp Op, const TypeInfo *T,
                                           Value A, Value B, Value &R) {
  R.U = 0;
  if (T->isFloating()) {
    switch (Op) {
    case ir::ArithOp::Add:
      R.F = A.F + B.F;
      return true;
    case ir::ArithOp::Sub:
      R.F = A.F - B.F;
      return true;
    case ir::ArithOp::Mul:
      R.F = A.F * B.F;
      return true;
    case ir::ArithOp::Div:
      R.F = B.F != 0 ? A.F / B.F : 0;
      return true;
    default:
      return false;
    }
  }
  bool U = isUnsignedInt(T);
  switch (Op) {
  case ir::ArithOp::Add:
    R.U = A.U + B.U;
    break;
  case ir::ArithOp::Sub:
    R.U = A.U - B.U;
    break;
  case ir::ArithOp::Mul:
    R.U = A.U * B.U;
    break;
  case ir::ArithOp::Div:
    if (B.U == 0)
      R.U = 0;
    else if (U)
      R.U = A.U / B.U;
    else if (A.I == INT64_MIN && B.I == -1)
      R.I = A.I;
    else
      R.I = A.I / B.I;
    break;
  case ir::ArithOp::Rem:
    if (B.U == 0)
      R.U = 0;
    else if (U)
      R.U = A.U % B.U;
    else if (A.I == INT64_MIN && B.I == -1)
      R.I = 0;
    else
      R.I = A.I % B.I;
    break;
  case ir::ArithOp::And:
    R.U = A.U & B.U;
    break;
  case ir::ArithOp::Or:
    R.U = A.U | B.U;
    break;
  case ir::ArithOp::Xor:
    R.U = A.U ^ B.U;
    break;
  case ir::ArithOp::Shl:
    R.U = A.U << (B.U & 63);
    break;
  case ir::ArithOp::Shr:
    if (U)
      R.U = A.U >> (B.U & 63);
    else
      R.I = A.I >> (B.U & 63);
    break;
  }
  R = normalizeInt(R, T);
  return true;
}

/// Evaluates A <Pred> B with operands of type \p T.
EFFSAN_ALWAYS_INLINE bool evalCompare(ir::Pred Pred, const TypeInfo *T,
                                             Value A, Value B) {
  if (T->isFloating()) {
    switch (Pred) {
    case ir::Pred::Eq:
      return A.F == B.F;
    case ir::Pred::Ne:
      return A.F != B.F;
    case ir::Pred::Lt:
      return A.F < B.F;
    case ir::Pred::Le:
      return A.F <= B.F;
    case ir::Pred::Gt:
      return A.F > B.F;
    case ir::Pred::Ge:
      return A.F >= B.F;
    }
  }
  if (T->isPointer() || isUnsignedInt(T)) {
    switch (Pred) {
    case ir::Pred::Eq:
      return A.U == B.U;
    case ir::Pred::Ne:
      return A.U != B.U;
    case ir::Pred::Lt:
      return A.U < B.U;
    case ir::Pred::Le:
      return A.U <= B.U;
    case ir::Pred::Gt:
      return A.U > B.U;
    case ir::Pred::Ge:
      return A.U >= B.U;
    }
  }
  switch (Pred) {
  case ir::Pred::Eq:
    return A.I == B.I;
  case ir::Pred::Ne:
    return A.I != B.I;
  case ir::Pred::Lt:
    return A.I < B.I;
  case ir::Pred::Le:
    return A.I <= B.I;
  case ir::Pred::Gt:
    return A.I > B.I;
  case ir::Pred::Ge:
    return A.I >= B.I;
  }
  return false;
}

/// Converts \p V from \p From to \p To. Returns false when \p From is
/// null (an untyped source register — malformed IR; the engine
/// faults). Out-of-range float-to-int saturates instead of trapping so
/// both engines stay deterministic.
EFFSAN_ALWAYS_INLINE bool evalConvert(Value V, const TypeInfo *From,
                                             const TypeInfo *To, Value &R) {
  R.U = 0;
  if (!From)
    return false;
  if (To->isFloating()) {
    if (From->isFloating())
      R.F = V.F;
    else if (isUnsignedInt(From))
      R.F = static_cast<double>(V.U);
    else
      R.F = static_cast<double>(V.I);
    if (To->kind() == TypeKind::Float)
      R.F = static_cast<float>(R.F);
    return true;
  }
  if (From->isFloating()) {
    double Clamped = V.F;
    if (isUnsignedInt(To)) {
      if (!(Clamped >= 0))
        Clamped = 0;
      if (Clamped >= 1.8446744073709552e19)
        Clamped = 1.8446744073709552e19;
      R.U = static_cast<uint64_t>(Clamped);
    } else {
      if (Clamped >= 9.223372036854775e18)
        Clamped = 9.223372036854775e18;
      if (Clamped <= -9.223372036854775e18)
        Clamped = -9.223372036854775e18;
      if (Clamped != Clamped)
        Clamped = 0;
      R.I = static_cast<int64_t>(Clamped);
    }
    R = normalizeInt(R, To);
    return true;
  }
  // Integer/pointer to integer: reinterpret then normalize.
  R.U = V.U;
  R = normalizeInt(R, To);
  return true;
}

//===----------------------------------------------------------------------===//
// Host-memory safety net
//===----------------------------------------------------------------------===//

/// Validates every raw guest access before an engine performs it on the
/// host. Accesses inside the demand-paged low-fat arena are host-safe
/// even when they are program errors (the checks have already logged
/// those); anything else must land inside a tracked legacy allocation,
/// or the engine faults with a deterministic "wild ..." message.
class HostGuard {
public:
  explicit HostGuard(Runtime &RT) : RT(RT) {}

  /// Records a non-low-fat allocation the guest may legally touch.
  void noteLegacy(void *P, uint64_t Size) {
    Blocks.push_back({reinterpret_cast<uintptr_t>(P), Size});
  }

  /// Returns the host pointer for a \p Size byte access at \p Addr, or
  /// null with the engine's fault message rendered into \p FaultMsg.
  EFFSAN_ALWAYS_INLINE void *validate(Value Addr, uint64_t Size,
                                      const char *What,
                                      std::string &FaultMsg) const {
    char *P = static_cast<char *>(Addr.P);
    if (EFFSAN_UNLIKELY(!P)) {
      FaultMsg = std::string("null ") + What;
      return nullptr;
    }
    if (EFFSAN_LIKELY(RT.heap().isInArena(P) && RT.heap().isInArena(P + Size)))
      return P;
    return validateSlow(Addr, Size, What, FaultMsg);
  }

private:
  EFFSAN_NOINLINE void *validateSlow(Value Addr, uint64_t Size,
                                     const char *What,
                                     std::string &FaultMsg) const {
    for (const auto &[Base, Len] : Blocks) {
      if (Addr.U >= Base && Addr.U + Size <= Base + Len)
        return Addr.P;
    }
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "wild %s at 0x%" PRIxPTR " (%" PRIu64 " bytes)", What,
                  Addr.U, Size);
    FaultMsg = Buf;
    return nullptr;
  }

  Runtime &RT;
  std::vector<std::pair<uintptr_t, uint64_t>> Blocks;
};

//===----------------------------------------------------------------------===//
// Module image: globals and string literals
//===----------------------------------------------------------------------===//

/// The module's statically allocated objects, materialized through the
/// typed global allocator so they carry META headers like any other
/// object.
struct ModuleImage {
  std::vector<void *> GlobalAddrs;
  std::vector<uint64_t> GlobalSizes;
  std::vector<void *> StringAddrs;
  std::vector<uint64_t> StringSizes;

  void allocate(const ir::Module &M, Runtime &RT) {
    GlobalAddrs.clear();
    GlobalSizes.clear();
    for (const ir::Global &G : M.Globals) {
      void *P = RT.globalAllocate(G.Size, G.ElemType, G.Name);
      GlobalAddrs.push_back(P);
      GlobalSizes.push_back(G.Size);
    }
    StringAddrs.clear();
    StringSizes.clear();
    for (const std::string &S : M.Strings) {
      uint64_t Size = S.size() + 1;
      // Null on exhaustion: the runtime already reported it; a program
      // touching the missing literal faults as a null access.
      void *P = RT.globalAllocate(Size, M.typeContext().getChar(), "__str");
      if (P) {
        std::memcpy(P, S.data(), S.size());
        static_cast<char *>(P)[S.size()] = '\0';
      }
      StringAddrs.push_back(P);
      StringSizes.push_back(Size);
    }
  }
};

//===----------------------------------------------------------------------===//
// Print builtins
//===----------------------------------------------------------------------===//

inline void printInt(int64_t V, std::string &Output) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64 "\n", V);
  Output += Buf;
}

inline void printFloat(double V, std::string &Output) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g\n", V);
  Output += Buf;
}

/// print_str: walks the guest string byte by byte, validating every
/// read, capped at 4096 characters. \p Validate is the engine's
/// validate hook — (Value, uint64_t, const char *) -> const char *,
/// null when the engine faulted (the walk stops; the engine's sticky
/// fault carries the message).
template <typename ValidateFn>
inline void printStr(Value V, std::string &Output, ValidateFn &&Validate) {
  if (!V.P) {
    Output += "(null)\n";
    return;
  }
  for (uint64_t K = 0; K < 4096; ++K) {
    const char *C = static_cast<const char *>(
        Validate(V, uint64_t(1), "print_str read"));
    if (!C || *C == '\0')
      break;
    Output += *C;
    ++V.U;
  }
  Output += '\n';
}

} // namespace exec
} // namespace effective

#endif // EFFECTIVE_INTERP_EXECSUPPORT_H
