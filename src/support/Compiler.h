//===- support/Compiler.h - Portable compiler annotations -------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portable macros used throughout the project: branch-prediction
/// hints, unreachable markers, and inlining annotations. Modeled on
/// llvm/Support/Compiler.h.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SUPPORT_COMPILER_H
#define EFFECTIVE_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define EFFSAN_LIKELY(X) __builtin_expect(!!(X), 1)
#define EFFSAN_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define EFFSAN_ALWAYS_INLINE inline __attribute__((always_inline))
#define EFFSAN_NOINLINE __attribute__((noinline))
#else
#define EFFSAN_LIKELY(X) (X)
#define EFFSAN_UNLIKELY(X) (X)
#define EFFSAN_ALWAYS_INLINE inline
#define EFFSAN_NOINLINE
#endif

namespace effective {

/// Report an internal invariant violation and abort. Used by the
/// \c EFFSAN_UNREACHABLE macro; do not call directly.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "FATAL: unreachable executed at %s:%u: %s\n", File,
               Line, Msg);
  std::abort();
}

} // namespace effective

/// Marks a point in control flow that must never be reached if program
/// invariants hold. Aborts with a diagnostic (all build modes).
#define EFFSAN_UNREACHABLE(MSG)                                                \
  ::effective::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // EFFECTIVE_SUPPORT_COMPILER_H
