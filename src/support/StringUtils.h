//===- support/StringUtils.h - String formatting helpers --------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers used by diagnostics, the IR printer and the
/// benchmark tables: printf-style formatting into std::string and
/// human-readable number rendering.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SUPPORT_STRINGUTILS_H
#define EFFECTIVE_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>

namespace effective {

/// printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

/// Renders 1234567 as "1,234,567".
std::string withThousandsSep(uint64_t Value);

/// Renders a byte count as "1.5 KB" / "3.2 MB" / ...
std::string formatBytes(uint64_t Bytes);

/// Returns true if \p S starts with \p Prefix.
inline bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.substr(0, Prefix.size()) == Prefix;
}

} // namespace effective

#endif // EFFECTIVE_SUPPORT_STRINGUTILS_H
