//===- support/Hashing.h - Hashing utilities --------------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash primitives shared by the layout hash table (core/LayoutTable) and
/// the various interning maps. Uses a 64-bit FNV-1a core with a strong
/// finalizer (murmur-style mixing) so that low bits are usable as bucket
/// indices.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SUPPORT_HASHING_H
#define EFFECTIVE_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace effective {

/// 64-bit finalizer from MurmurHash3; distributes entropy to all bits.
inline uint64_t hashMix(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

/// Combines two hash values into one.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// FNV-1a over a byte range.
inline uint64_t hashBytes(const void *Data, size_t Len) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return hashMix(H);
}

/// Hash of a string.
inline uint64_t hashString(std::string_view S) {
  return hashBytes(S.data(), S.size());
}

/// Hash of a pointer value (identity hash; pointers in this project are
/// interned so identity equals semantic equality).
inline uint64_t hashPointer(const void *P) {
  return hashMix(reinterpret_cast<uintptr_t>(P));
}

} // namespace effective

#endif // EFFECTIVE_SUPPORT_HASHING_H
