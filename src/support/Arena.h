//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena used for objects with arena lifetime: AST
/// nodes, interned TypeInfo objects, and IR. Objects allocated here are
/// never individually freed; trivially-destructible payloads only (the
/// arena does not run destructors).
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SUPPORT_ARENA_H
#define EFFECTIVE_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace effective {

/// Bump-pointer arena. Not thread-safe; each owning context (TypeContext,
/// minic::ASTContext, ir::Module) embeds its own arena.
class Arena {
public:
  explicit Arena(size_t SlabSize = 64 * 1024) : SlabSize(SlabSize) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(max_align_t)) {
    assert(Align && (Align & (Align - 1)) == 0 && "alignment must be pow2");
    uintptr_t P = (Cur + Align - 1) & ~(uintptr_t)(Align - 1);
    if (P + Size > End) {
      newSlab(Size + Align);
      P = (Cur + Align - 1) & ~(uintptr_t)(Align - 1);
    }
    Cur = P + Size;
    TotalAllocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Allocates and default-constructs a \p T with constructor args.
  template <typename T, typename... Args> T *create(Args &&...As) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(As)...);
  }

  /// Copies \p S into the arena and returns a stable view of it.
  std::string_view internString(std::string_view S) {
    if (S.empty())
      return {};
    char *Mem = static_cast<char *>(allocate(S.size(), 1));
    std::memcpy(Mem, S.data(), S.size());
    return std::string_view(Mem, S.size());
  }

  /// Total bytes handed out (excluding slab slack).
  size_t bytesAllocated() const { return TotalAllocated; }

private:
  void newSlab(size_t MinSize) {
    size_t Size = MinSize > SlabSize ? MinSize : SlabSize;
    Slabs.push_back(std::make_unique<char[]>(Size));
    Cur = reinterpret_cast<uintptr_t>(Slabs.back().get());
    End = Cur + Size;
  }

  size_t SlabSize;
  std::vector<std::unique_ptr<char[]>> Slabs;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t TotalAllocated = 0;
};

} // namespace effective

#endif // EFFECTIVE_SUPPORT_ARENA_H
