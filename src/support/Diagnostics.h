//===- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic engine shared by the MiniC frontend
/// and the IR verifier. Diagnostics are collected (not printed) so tests
/// can assert on them; a driver can render them to a FILE* at the end.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SUPPORT_DIAGNOSTICS_H
#define EFFECTIVE_SUPPORT_DIAGNOSTICS_H

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace effective {

/// A position in a source buffer (1-based line/column; 0 means unknown).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &) const = default;
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One rendered diagnostic message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one source buffer.
///
/// Messages follow the LLVM style: they begin with a lowercase letter and
/// have no trailing period.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Returns true if any collected diagnostic message contains \p Needle.
  bool containsMessage(std::string_view Needle) const;

  /// Renders all diagnostics to \p Out as "file:line:col: kind: message".
  void print(std::FILE *Out, std::string_view FileName) const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace effective

#endif // EFFECTIVE_SUPPORT_DIAGNOSTICS_H
