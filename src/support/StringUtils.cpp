//===- support/StringUtils.cpp - String formatting helpers ----------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace effective;

std::string effective::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Len <= 0)
    return std::string();
  std::string Result(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string effective::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatStringV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string effective::withThousandsSep(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  Result.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0; I < Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Result.push_back(',');
    Result.push_back(Digits[I]);
  }
  return Result;
}

std::string effective::formatBytes(uint64_t Bytes) {
  static const char *const Units[] = {"B", "KB", "MB", "GB", "TB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit < 4) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return formatString("%llu B", (unsigned long long)Bytes);
  return formatString("%.1f %s", Value, Units[Unit]);
}
