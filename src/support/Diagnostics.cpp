//===- support/Diagnostics.cpp - Diagnostic engine ------------------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace effective;

bool DiagnosticEngine::containsMessage(std::string_view Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

static const char *diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

void DiagnosticEngine::print(std::FILE *Out, std::string_view FileName) const {
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      std::fprintf(Out, "%.*s:%u:%u: %s: %s\n", (int)FileName.size(),
                   FileName.data(), D.Loc.Line, D.Loc.Column,
                   diagKindName(D.Kind), D.Message.c_str());
    else
      std::fprintf(Out, "%.*s: %s: %s\n", (int)FileName.size(),
                   FileName.data(), diagKindName(D.Kind), D.Message.c_str());
  }
}
