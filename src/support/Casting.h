//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reimplementation of the LLVM casting machinery (\c isa<>,
/// \c cast<>, \c dyn_cast<> and the *_if_present variants). Class
/// hierarchies opt in by providing a static \c classof(const Base*)
/// predicate, typically implemented with a kind discriminator. RTTI is
/// not used anywhere in this project.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_SUPPORT_CASTING_H
#define EFFECTIVE_SUPPORT_CASTING_H

#include "support/Compiler.h"

#include <cassert>
#include <type_traits>

namespace effective {

/// Returns true if \p Val is an instance of any of the types \p To....
/// \p Val must be non-null.
template <typename To, typename... Tos, typename From>
inline bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val) || (... || Tos::classof(Val));
}

/// Checked downcast: asserts that \p Val is a \p To. \p Val must be
/// non-null.
template <typename To, typename From> inline To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> inline const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To. \p Val must
/// be non-null.
template <typename To, typename From> inline To *dyn_cast(From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From>
inline const To *dyn_cast(const From *Val) {
  assert(Val && "dyn_cast<> used on a null pointer");
  return To::classof(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like \c isa<>, but tolerates a null pointer (returns false).
template <typename To, typename... Tos, typename From>
inline bool isa_and_present(const From *Val) {
  return Val && isa<To, Tos...>(Val);
}

/// Like \c dyn_cast<>, but tolerates a null pointer (propagates it).
template <typename To, typename From>
inline To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Like \c dyn_cast<>, const overload tolerating null.
template <typename To, typename From>
inline const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace effective

#endif // EFFECTIVE_SUPPORT_CASTING_H
