//===- lowfat/SizeClass.cpp - Low-fat allocation size classes -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowfat/SizeClass.h"

#include <bit>
#include <cassert>

using namespace effective;
using namespace effective::lowfat;

static constexpr SizeClass makeClass(uint64_t Size) {
  return SizeClass{Size, ~0ull / Size + 1};
}

/// Builds the class table: for exponent e in [5, 25] the classes 2^e and
/// 3*2^(e-1) (its 1.5x midpoint), then the final 2^26. Evaluated at
/// compile time, so no static constructor is emitted.
static constexpr std::array<SizeClass, NumSizeClasses> buildTable() {
  std::array<SizeClass, NumSizeClasses> Table{};
  unsigned Out = 0;
  for (unsigned E = 5; E <= 25; ++E) {
    Table[Out++] = makeClass(1ull << E);
    Table[Out++] = makeClass(3ull << (E - 1));
  }
  Table[Out++] = makeClass(1ull << 26);
  return Table;
}

constexpr std::array<SizeClass, NumSizeClasses>
    effective::lowfat::SizeClasses = buildTable();

unsigned effective::lowfat::sizeToClass(size_t Bytes) {
  assert(Bytes <= MaxClassSize && "request exceeds largest size class");
  if (Bytes <= MinClassSize)
    return 0;
  // Smallest E with 2^E >= Bytes.
  unsigned E = 64 - std::countl_zero(static_cast<uint64_t>(Bytes - 1));
  // The midpoint class 3*2^(E-2) lies between 2^(E-1) and 2^E; prefer it
  // when it is large enough (it belongs to exponent pair E-1).
  uint64_t Midpoint = 3ull << (E - 2);
  if (Bytes <= Midpoint)
    return 2 * (E - 1 - 5) + 1;
  return 2 * (E - 5);
}
