//===- lowfat/LowFatHeap.cpp - Low-fat pointer heap allocator -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowfat/LowFatHeap.h"

#include "support/Compiler.h"

#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include <sys/mman.h>

using namespace effective;
using namespace effective::lowfat;

/// Intrusive free-list link. Placed 16 bytes into the block so that the
/// freed object's META header survives until reallocation (Section 5:
/// "the low-fat allocator has also been modified to ensure that the meta
/// data will be preserved until the memory is reallocated").
struct LowFatHeap::FreeNode {
  FreeNode *Next;
};

/// Byte offset of the intrusive link inside a free block.
static constexpr size_t FreeLinkOffset = 16;

static_assert(MinClassSize >= FreeLinkOffset + sizeof(void *),
              "smallest class must fit META header plus free-list link");

LowFatHeap::LowFatHeap(const HeapOptions &Options) {
  assert(std::has_single_bit(Options.RegionSize) &&
         "region size must be a power of two");
  QuarantineLimit = Options.QuarantineBytes;

  // Reserve the arena; retry with smaller regions if the reservation is
  // refused. MAP_NORESERVE keeps untouched pages free of charge.
  uint64_t TryRegion = Options.RegionSize;
  void *Arena = MAP_FAILED;
  while (TryRegion >= (1ull << 26)) {
    ArenaBytes = TryRegion * NumSizeClasses;
    Arena = ::mmap(nullptr, ArenaBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (Arena != MAP_FAILED)
      break;
    TryRegion >>= 1;
  }
  if (Arena == MAP_FAILED) {
    std::fprintf(stderr,
                 "FATAL: low-fat heap: cannot reserve arena (%zu bytes)\n",
                 ArenaBytes);
    std::abort();
  }
  RegionSize = TryRegion;
  RegionShift = static_cast<unsigned>(std::countr_zero(RegionSize));
  ArenaBase = reinterpret_cast<uintptr_t>(Arena);
  ArenaEnd = ArenaBase + ArenaBytes;

  for (unsigned I = 0; I < NumSizeClasses; ++I) {
    Region &R = Regions[I];
    R.Begin = ArenaBase + static_cast<uintptr_t>(I) * RegionSize;
    R.End = R.Begin + RegionSize;
    R.Bump.store(R.Begin, std::memory_order_relaxed);
  }
}

LowFatHeap::~LowFatHeap() {
  ::munmap(reinterpret_cast<void *>(ArenaBase), ArenaBytes);
  for (auto &Entry : LegacyAllocs)
    std::free(Entry.first);
}

LowFatHeap &LowFatHeap::global() {
  static LowFatHeap Heap;
  return Heap;
}

void LowFatHeap::noteAlloc(size_t Block, bool Legacy) {
  std::lock_guard<std::mutex> Guard(StatsLock);
  Stats.BlockBytesInUse += Block;
  ++Stats.NumAllocs;
  if (Legacy)
    ++Stats.NumLegacyAllocs;
  if (Stats.BlockBytesInUse > Stats.PeakBlockBytesInUse)
    Stats.PeakBlockBytesInUse = Stats.BlockBytesInUse;
}

void LowFatHeap::noteFree(size_t Block) {
  std::lock_guard<std::mutex> Guard(StatsLock);
  assert(Stats.BlockBytesInUse >= Block && "free underflow");
  Stats.BlockBytesInUse -= Block;
  ++Stats.NumFrees;
}

void *LowFatHeap::allocate(size_t Size) {
  if (Size == 0)
    Size = 1;
  if (Size > MaxClassSize || Size > RegionSize)
    return allocateLegacy(Size);

  unsigned ClassIndex = sizeToClass(Size);
  uint64_t Block = classSize(ClassIndex);
  Region &R = Regions[ClassIndex];

  void *Result = nullptr;
  {
    std::lock_guard<std::mutex> Guard(R.Lock);
    if (R.FreeList) {
      FreeNode *Node = R.FreeList;
      R.FreeList = Node->Next;
      Result = reinterpret_cast<char *>(Node) - FreeLinkOffset;
    } else {
      uintptr_t Bump = R.Bump.load(std::memory_order_relaxed);
      if (Bump + Block <= R.End) {
        Result = reinterpret_cast<void *>(Bump);
        R.Bump.store(Bump + Block, std::memory_order_release);
      }
    }
  }
  if (EFFSAN_UNLIKELY(!Result))
    return allocateLegacy(Size); // Region exhausted.

  noteAlloc(Block, /*Legacy=*/false);
  return Result;
}

void *LowFatHeap::allocateLegacy(size_t Size) {
  void *Ptr = std::malloc(Size);
  if (!Ptr) {
    std::fprintf(stderr, "FATAL: low-fat heap: out of memory (%zu bytes)\n",
                 Size);
    std::abort();
  }
  {
    std::lock_guard<std::mutex> Guard(LegacyLock);
    LegacyAllocs.emplace(Ptr, Size);
  }
  noteAlloc(Size, /*Legacy=*/true);
  return Ptr;
}

bool LowFatHeap::deallocateLegacy(void *Ptr) {
  size_t Size;
  {
    std::lock_guard<std::mutex> Guard(LegacyLock);
    auto It = LegacyAllocs.find(Ptr);
    if (It == LegacyAllocs.end())
      return false;
    Size = It->second;
    LegacyAllocs.erase(It);
  }
  std::free(Ptr);
  noteFree(Size);
  return true;
}

void LowFatHeap::reclaim(void *Ptr, unsigned ClassIndex) {
  Region &R = Regions[ClassIndex];
  auto *Node = reinterpret_cast<FreeNode *>(static_cast<char *>(Ptr) +
                                            FreeLinkOffset);
  std::lock_guard<std::mutex> Guard(R.Lock);
  Node->Next = R.FreeList;
  R.FreeList = Node;
}

void LowFatHeap::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  if (!isLowFat(Ptr)) {
    bool Known = deallocateLegacy(Ptr);
    assert(Known && "deallocate of pointer not owned by this heap");
    (void)Known;
    return;
  }
  assert(Ptr == allocationBase(Ptr) &&
         "deallocate of an interior pointer");
  unsigned ClassIndex = allocationClass(Ptr);
  uint64_t Block = classSize(ClassIndex);
  noteFree(Block);

  if (QuarantineLimit == 0) {
    reclaim(Ptr, ClassIndex);
    return;
  }

  // FIFO quarantine: park the block and evict the oldest blocks once the
  // byte budget is exceeded.
  std::lock_guard<std::mutex> Guard(QuarantineLock);
  Quarantine.emplace_back(Ptr, ClassIndex);
  QuarantineBytes.fetch_add(Block, std::memory_order_relaxed);
  while (QuarantineBytes.load(std::memory_order_relaxed) > QuarantineLimit &&
         !Quarantine.empty()) {
    auto [Oldest, OldClass] = Quarantine.front();
    Quarantine.pop_front();
    QuarantineBytes.fetch_sub(classSize(OldClass),
                              std::memory_order_relaxed);
    reclaim(Oldest, OldClass);
  }
}

bool LowFatHeap::isLowFat(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (P < ArenaBase || P >= ArenaEnd)
    return false;
  // Only the already-allocated prefix of a region contains objects; a
  // pointer at or beyond the bump pointer was never handed out and is
  // treated as legacy (a hardening refinement over the original
  // allocator, which cannot make this distinction). This also means a
  // one-past-the-end pointer of the newest block degrades gracefully to
  // legacy (wide bounds) rather than resolving to an unallocated block.
  const Region &R = Regions[regionIndexFor(P)];
  return P < R.Bump.load(std::memory_order_acquire);
}

size_t LowFatHeap::allocationSize(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (!isLowFat(Ptr))
    return SIZE_MAX;
  return classSize(regionIndexFor(P));
}

void *LowFatHeap::allocationBase(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (!isLowFat(Ptr))
    return nullptr;
  unsigned ClassIndex = regionIndexFor(P);
  const Region &R = Regions[ClassIndex];
  uint64_t Offset = P - R.Begin;
  uint64_t Base = Offset - classModulo(ClassIndex, Offset);
  // A pointer one-past-the-end of block N computes as the base of block
  // N+1; that is the correct allocation for derived-pointer checks only
  // if N+1 was allocated, which isLowFat() already established.
  return reinterpret_cast<void *>(R.Begin + Base);
}

unsigned LowFatHeap::allocationClass(const void *Ptr) const {
  assert(isLowFat(Ptr) && "allocationClass on legacy pointer");
  return regionIndexFor(reinterpret_cast<uintptr_t>(Ptr));
}

HeapStats LowFatHeap::stats() const {
  std::lock_guard<std::mutex> Guard(StatsLock);
  HeapStats Copy = Stats;
  Copy.QuarantinedBytes = QuarantineBytes.load(std::memory_order_relaxed);
  return Copy;
}

void LowFatHeap::resetPeaks() {
  std::lock_guard<std::mutex> Guard(StatsLock);
  Stats.PeakBlockBytesInUse = Stats.BlockBytesInUse;
}
