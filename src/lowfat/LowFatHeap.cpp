//===- lowfat/LowFatHeap.cpp - Low-fat pointer heap allocator -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowfat/LowFatHeap.h"

#include "support/Compiler.h"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/mman.h>

using namespace effective;
using namespace effective::lowfat;

/// Intrusive free-list link. Placed 16 bytes into the block so that the
/// freed object's META header survives until reallocation (Section 5:
/// "the low-fat allocator has also been modified to ensure that the meta
/// data will be preserved until the memory is reallocated").
struct LowFatHeap::FreeNode {
  FreeNode *Next;
};

/// Byte offset of the intrusive link inside a free block.
static constexpr size_t FreeLinkOffset = 16;

static_assert(MinClassSize >= FreeLinkOffset + sizeof(void *),
              "smallest class must fit META header plus free-list link");

LowFatHeap::LowFatHeap(const HeapOptions &Options) {
  assert(std::has_single_bit(Options.RegionSize) &&
         "region size must be a power of two");
  QuarantineLimit = Options.QuarantineBytes;
  Shards = Options.NumShards < 1 ? 1 : Options.NumShards;
  if (Shards > MaxHeapShards)
    Shards = MaxHeapShards;

  // Reserve the arena; retry with smaller regions if the reservation is
  // refused. MAP_NORESERVE keeps untouched pages free of charge. With
  // more than one shard the region is capped at 2^31 bytes so the
  // shard-of-address division is an exact single high multiply.
  uint64_t TryRegion = Options.RegionSize;
  if (Shards > 1 && TryRegion > (1ull << 31))
    TryRegion = 1ull << 31;
  void *Arena = MAP_FAILED;
  while (TryRegion >= (1ull << 26)) {
    ArenaBytes = TryRegion * NumSizeClasses;
    Arena = ::mmap(nullptr, ArenaBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (Arena != MAP_FAILED)
      break;
    TryRegion >>= 1;
  }
  if (Arena == MAP_FAILED) {
    std::fprintf(stderr,
                 "FATAL: low-fat heap: cannot reserve arena (%zu bytes)\n",
                 ArenaBytes);
    std::abort();
  }
  RegionSize = TryRegion;
  RegionShift = static_cast<unsigned>(std::countr_zero(RegionSize));
  ArenaBase = reinterpret_cast<uintptr_t>(Arena);
  ArenaEnd = ArenaBase + ArenaBytes;

  Subs = std::make_unique<SubRegion[]>(
      static_cast<size_t>(NumSizeClasses) * Shards);
  Counters = std::make_unique<ShardCounters[]>(Shards);
  Quarantines = std::make_unique<ShardQuarantine[]>(Shards);

  for (unsigned I = 0; I < NumSizeClasses; ++I) {
    Region &R = Regions[I];
    R.Begin = ArenaBase + static_cast<uintptr_t>(I) * RegionSize;
    // Each shard's slice is the largest class-size multiple that fits;
    // slices are contiguous from the region base, so every block in any
    // slice sits at a class-aligned offset and base(p) stays a single
    // modulo over the whole region.
    R.SubCapacity = RegionSize / Shards / classSize(I) * classSize(I);
    R.UsableEnd = R.Begin + R.SubCapacity * Shards;
    R.SubMagic = R.SubCapacity ? UINT64_MAX / R.SubCapacity + 1 : 0;
    for (unsigned S = 0; S < Shards; ++S) {
      SubRegion &Sub = subRegion(I, S);
      Sub.Begin = R.Begin + static_cast<uintptr_t>(S) * R.SubCapacity;
      Sub.End = Sub.Begin + R.SubCapacity;
      Sub.Bump.store(Sub.Begin, std::memory_order_relaxed);
    }
  }
}

LowFatHeap::~LowFatHeap() {
  ::munmap(reinterpret_cast<void *>(ArenaBase), ArenaBytes);
  for (auto &Entry : LegacyAllocs)
    std::free(Entry.first);
}

LowFatHeap &LowFatHeap::global() {
  static LowFatHeap Heap;
  return Heap;
}

void LowFatHeap::noteAlloc(unsigned Shard, size_t Block, bool Legacy) {
  ShardCounters &C = Counters[Shard];
  uint64_t Now = C.BlockBytesInUse.fetch_add(Block,
                                             std::memory_order_relaxed) +
                 Block;
  C.NumAllocs.fetch_add(1, std::memory_order_relaxed);
  if (Legacy)
    C.NumLegacyAllocs.fetch_add(1, std::memory_order_relaxed);
  uint64_t Peak = C.PeakBlockBytesInUse.load(std::memory_order_relaxed);
  while (Now > Peak && !C.PeakBlockBytesInUse.compare_exchange_weak(
                           Peak, Now, std::memory_order_relaxed)) {
  }
}

void LowFatHeap::noteFree(unsigned Shard, size_t Block) {
  ShardCounters &C = Counters[Shard];
  // Saturating subtraction: resetShard() zeroes the counters while
  // legacy blocks attributed to the shard may still be live, so a
  // later legacy free must clamp at zero rather than wrap (and then
  // poison the peak tracking forever).
  uint64_t Cur = C.BlockBytesInUse.load(std::memory_order_relaxed);
  while (!C.BlockBytesInUse.compare_exchange_weak(
      Cur, Cur >= Block ? Cur - Block : 0, std::memory_order_relaxed)) {
  }
  C.NumFrees.fetch_add(1, std::memory_order_relaxed);
}

void *LowFatHeap::allocateOnShard(size_t Size, unsigned Shard) {
  assert(Shard < Shards && "shard index out of range");
  if (Size == 0)
    Size = 1;
  if (Size > MaxClassSize || Size > RegionSize)
    return allocateLegacy(Size, Shard);

  unsigned ClassIndex = sizeToClass(Size);
  uint64_t Block = classSize(ClassIndex);
  SubRegion &Sub = subRegion(ClassIndex, Shard);

  void *Result = nullptr;
  {
    std::lock_guard<std::mutex> Guard(Sub.Lock);
    if (Sub.FreeList) {
      FreeNode *Node = Sub.FreeList;
      Sub.FreeList = Node->Next;
      Result = reinterpret_cast<char *>(Node) - FreeLinkOffset;
    } else {
      uintptr_t Bump = Sub.Bump.load(std::memory_order_relaxed);
      if (Bump + Block <= Sub.End) {
        Result = reinterpret_cast<void *>(Bump);
        Sub.Bump.store(Bump + Block, std::memory_order_release);
      }
    }
  }
  if (EFFSAN_UNLIKELY(!Result))
    return allocateLegacy(Size, Shard); // Shard slice exhausted.

  noteAlloc(Shard, Block, /*Legacy=*/false);
  return Result;
}

void *LowFatHeap::allocateLegacy(size_t Size, unsigned Shard) {
  void *Ptr = std::malloc(Size);
  if (!Ptr) {
    std::fprintf(stderr, "FATAL: low-fat heap: out of memory (%zu bytes)\n",
                 Size);
    std::abort();
  }
  {
    std::lock_guard<std::mutex> Guard(LegacyLock);
    LegacyAllocs.emplace(Ptr, std::make_pair(Size, Shard));
  }
  noteAlloc(Shard, Size, /*Legacy=*/true);
  return Ptr;
}

bool LowFatHeap::deallocateLegacy(void *Ptr) {
  size_t Size;
  unsigned Shard;
  {
    std::lock_guard<std::mutex> Guard(LegacyLock);
    auto It = LegacyAllocs.find(Ptr);
    if (It == LegacyAllocs.end())
      return false;
    Size = It->second.first;
    Shard = It->second.second;
    LegacyAllocs.erase(It);
  }
  std::free(Ptr);
  noteFree(Shard, Size);
  return true;
}

void LowFatHeap::reclaim(void *Ptr, unsigned ClassIndex, unsigned Shard) {
  SubRegion &Sub = subRegion(ClassIndex, Shard);
  auto *Node = reinterpret_cast<FreeNode *>(static_cast<char *>(Ptr) +
                                            FreeLinkOffset);
  std::lock_guard<std::mutex> Guard(Sub.Lock);
  Node->Next = Sub.FreeList;
  Sub.FreeList = Node;
}

void LowFatHeap::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  if (!isLowFat(Ptr)) {
    bool Known = deallocateLegacy(Ptr);
    assert(Known && "deallocate of pointer not owned by this heap");
    (void)Known;
    return;
  }
  assert(Ptr == allocationBase(Ptr) &&
         "deallocate of an interior pointer");
  unsigned ClassIndex = allocationClass(Ptr);
  unsigned Shard = shardOf(Ptr);
  uint64_t Block = classSize(ClassIndex);
  noteFree(Shard, Block);

  if (QuarantineLimit == 0) {
    reclaim(Ptr, ClassIndex, Shard);
    return;
  }

  // Per-shard FIFO quarantine: park the block and evict the oldest
  // blocks once the shard's byte budget is exceeded. All parked blocks
  // belong to this shard, so evictions reclaim into the same shard.
  ShardQuarantine &Q = Quarantines[Shard];
  std::atomic<uint64_t> &QBytes = Counters[Shard].QuarantinedBytes;
  std::lock_guard<std::mutex> Guard(Q.Lock);
  Q.Blocks.emplace_back(Ptr, ClassIndex);
  QBytes.fetch_add(Block, std::memory_order_relaxed);
  while (QBytes.load(std::memory_order_relaxed) > QuarantineLimit &&
         !Q.Blocks.empty()) {
    auto [Oldest, OldClass] = Q.Blocks.front();
    Q.Blocks.pop_front();
    QBytes.fetch_sub(classSize(OldClass), std::memory_order_relaxed);
    reclaim(Oldest, OldClass, Shard);
  }
}

bool LowFatHeap::isLowFat(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (P < ArenaBase || P >= ArenaEnd)
    return false;
  // Only the already-allocated prefix of a shard's slice contains
  // objects; a pointer at or beyond the slice's bump pointer was never
  // handed out and is treated as legacy (a hardening refinement over
  // the original allocator, which cannot make this distinction). This
  // also means a one-past-the-end pointer of a shard's newest block
  // degrades gracefully to legacy (wide bounds) rather than resolving
  // to an unallocated block.
  unsigned ClassIndex = regionIndexFor(P);
  const Region &R = Regions[ClassIndex];
  uint64_t Off = P - R.Begin;
  if (EFFSAN_UNLIKELY(P >= R.UsableEnd))
    return false; // Region tail no slice covers (or unserviceable class).
  const SubRegion &Sub = subRegion(ClassIndex, subIndexFor(R, Off));
  return P < Sub.Bump.load(std::memory_order_acquire);
}

size_t LowFatHeap::allocationSize(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (!isLowFat(Ptr))
    return SIZE_MAX;
  return classSize(regionIndexFor(P));
}

void *LowFatHeap::allocationBase(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (!isLowFat(Ptr))
    return nullptr;
  unsigned ClassIndex = regionIndexFor(P);
  const Region &R = Regions[ClassIndex];
  uint64_t Offset = P - R.Begin;
  uint64_t Base = Offset - classModulo(ClassIndex, Offset);
  // A pointer one-past-the-end of block N computes as the base of block
  // N+1; that is the correct allocation for derived-pointer checks only
  // if N+1 was allocated, which isLowFat() already established. (Shard
  // slices are class-aligned, so N+1 is in the same slice as N whenever
  // it was handed out.)
  return reinterpret_cast<void *>(R.Begin + Base);
}

unsigned LowFatHeap::allocationClass(const void *Ptr) const {
  assert(isLowFat(Ptr) && "allocationClass on legacy pointer");
  return regionIndexFor(reinterpret_cast<uintptr_t>(Ptr));
}

unsigned LowFatHeap::shardOf(const void *Ptr) const {
  assert(isLowFat(Ptr) && "shardOf on legacy pointer");
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  const Region &R = Regions[regionIndexFor(P)];
  return subIndexFor(R, P - R.Begin);
}

void LowFatHeap::resetShard(unsigned Shard) {
  assert(Shard < Shards && "shard index out of range");
  // Drop the shard's quarantine first; its entries point into the
  // sub-arenas that are about to be rewound.
  {
    ShardQuarantine &Q = Quarantines[Shard];
    std::lock_guard<std::mutex> Guard(Q.Lock);
    Q.Blocks.clear();
  }
  for (unsigned I = 0; I < NumSizeClasses; ++I) {
    SubRegion &Sub = subRegion(I, Shard);
    std::lock_guard<std::mutex> Guard(Sub.Lock);
    Sub.FreeList = nullptr;
    Sub.Bump.store(Sub.Begin, std::memory_order_release);
  }
  ShardCounters &C = Counters[Shard];
  C.BlockBytesInUse.store(0, std::memory_order_relaxed);
  C.PeakBlockBytesInUse.store(0, std::memory_order_relaxed);
  C.NumAllocs.store(0, std::memory_order_relaxed);
  C.NumFrees.store(0, std::memory_order_relaxed);
  C.NumLegacyAllocs.store(0, std::memory_order_relaxed);
  C.QuarantinedBytes.store(0, std::memory_order_relaxed);
}

HeapStats LowFatHeap::shardStats(unsigned Shard) const {
  assert(Shard < Shards && "shard index out of range");
  const ShardCounters &C = Counters[Shard];
  HeapStats S;
  S.BlockBytesInUse = C.BlockBytesInUse.load(std::memory_order_relaxed);
  S.PeakBlockBytesInUse =
      C.PeakBlockBytesInUse.load(std::memory_order_relaxed);
  S.NumAllocs = C.NumAllocs.load(std::memory_order_relaxed);
  S.NumFrees = C.NumFrees.load(std::memory_order_relaxed);
  S.NumLegacyAllocs = C.NumLegacyAllocs.load(std::memory_order_relaxed);
  S.QuarantinedBytes = C.QuarantinedBytes.load(std::memory_order_relaxed);
  return S;
}

HeapStats LowFatHeap::stats() const {
  HeapStats Sum;
  for (unsigned S = 0; S < Shards; ++S) {
    HeapStats Part = shardStats(S);
    Sum.BlockBytesInUse += Part.BlockBytesInUse;
    Sum.PeakBlockBytesInUse += Part.PeakBlockBytesInUse;
    Sum.NumAllocs += Part.NumAllocs;
    Sum.NumFrees += Part.NumFrees;
    Sum.NumLegacyAllocs += Part.NumLegacyAllocs;
    Sum.QuarantinedBytes += Part.QuarantinedBytes;
  }
  return Sum;
}

void LowFatHeap::resetPeaks() {
  for (unsigned S = 0; S < Shards; ++S) {
    ShardCounters &C = Counters[S];
    C.PeakBlockBytesInUse.store(
        C.BlockBytesInUse.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}
