//===- lowfat/LowFatHeap.cpp - Low-fat pointer heap allocator -------------===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowfat/LowFatHeap.h"

#include "obs/Trace.h"
#include "resilience/Fault.h"
#include "support/Compiler.h"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <sys/mman.h>

using namespace effective;
using namespace effective::lowfat;

/// Intrusive free-list link. Placed 16 bytes into the block so that the
/// freed object's META header survives until reallocation (Section 5:
/// "the low-fat allocator has also been modified to ensure that the meta
/// data will be preserved until the memory is reallocated").
struct LowFatHeap::FreeNode {
  FreeNode *Next;
};

/// Byte offset of the intrusive link inside a free block.
static constexpr size_t FreeLinkOffset = 16;

/// Frees batched per thread before one locked quarantine-FIFO flush.
static constexpr size_t QuarantineFlushCount = 16;

static_assert(MinClassSize >= FreeLinkOffset + sizeof(void *),
              "smallest class must fit META header plus free-list link");

/// Magazine hits accumulated in a plain thread-local tally before one
/// fetch_add publishes them to the shard's shared counter. The hot
/// path stays free of lock-prefixed RMWs (one `inc` on a TLS field),
/// yet no update is ever lost: the remainder is published whenever the
/// cache retires, rebinds or flushes, so totals are exact after a
/// flush. The service layer's LoadGovernor steers policy off these
/// counters, which is why statistical drift is no longer acceptable.
static constexpr uint64_t TallyPublishThreshold = 64;

//===----------------------------------------------------------------------===//
// Thread caches: per-thread magazines + quarantine batches
//===----------------------------------------------------------------------===//

namespace {

/// Process-wide registry of live heaps (address -> stamp). Arbitrates
/// between dying threads (whose caches flush back to the heap) and
/// dying heaps (whose caches must be abandoned): a cache only touches
/// its heap while holding the lock that the heap's destructor also
/// takes to unregister. Leaked on purpose so thread-exit destructors
/// that run after static destruction still find live objects.
std::mutex &heapRegistryLock() {
  static std::mutex *M = new std::mutex;
  return *M;
}

std::unordered_map<const void *, uint64_t> &liveHeapRegistry() {
  static auto *Map = new std::unordered_map<const void *, uint64_t>;
  return *Map;
}

uint64_t nextHeapStamp() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// One-entry hot cache of the most recent (heap -> thread cache)
/// lookup, so the common case (a thread working against one heap) pays
/// a pointer compare instead of a list walk.
thread_local const void *HotHeap = nullptr;
thread_local uint64_t HotStamp = 0;
thread_local void *HotTC = nullptr;

} // namespace

/// The per-(thread, heap) cache: one magazine per size class (bound to
/// one shard at a time), a spare chain of refill overflow, and the
/// batched quarantine buffer. Destroyed at thread exit, which flushes
/// everything back to the heap if it is still alive.
struct LowFatHeap::ThreadCache {
  LowFatHeap *Heap;
  uint64_t HeapStamp;
  unsigned MagSize;
  /// The shard the magazines hold blocks of (~0u = unbound).
  unsigned BoundShard = ~0u;
  /// The bound shard's epoch as of binding; a mismatch with the live
  /// epoch means resetShard() recycled the arena slice and every cached
  /// block must be discarded, never replayed.
  uint64_t ShardEpoch = 0;
  /// Exact magazine hit/refill tallies for the bound shard, published
  /// in batches of TallyPublishThreshold (and in full at retirement)
  /// via publishTallies(). Dropped, like the cached blocks, when the
  /// bound shard's epoch went stale — the events belonged to the
  /// pre-reset tenant.
  uint64_t HitTally = 0;
  uint64_t RefillTally = 0;
  /// Blocks per class currently in the magazine arrays.
  uint16_t Counts[NumSizeClasses] = {};
  /// Refill overflow: the rest of a popped free list, consumed by later
  /// refills without touching shared state. Owned by BoundShard.
  FreeNode *Spare[NumSizeClasses] = {};
  /// Magazine storage: NumSizeClasses x MagSize slots (null when
  /// magazines are disabled — the cache then only batches quarantine).
  std::unique_ptr<void *[]> Slots;

  struct PendingFree {
    void *Ptr;
    unsigned Class;
    unsigned Shard;
    uint64_t Epoch; ///< Shard epoch at free time (staleness filter).
  };
  std::vector<PendingFree> Pending;
  size_t PendingBytes = 0;

  /// Set under the registry lock when the cache was already flushed or
  /// its heap died; the destructor then must not touch the heap (and
  /// must not re-take the registry lock it may be held under).
  bool Retired = false;

  explicit ThreadCache(LowFatHeap &H)
      : Heap(&H), HeapStamp(H.Stamp), MagSize(H.MagSize) {
    if (MagSize)
      Slots = std::make_unique<void *[]>(
          static_cast<size_t>(NumSizeClasses) * MagSize);
    Pending.reserve(QuarantineFlushCount);
  }

  ~ThreadCache() {
    if (Retired)
      return;
    std::lock_guard<std::mutex> Guard(heapRegistryLock());
    auto &Live = liveHeapRegistry();
    auto It = Live.find(Heap);
    if (It != Live.end() && It->second == HeapStamp)
      Heap->flushCache(*this);
  }

  ThreadCache(const ThreadCache &) = delete;
  ThreadCache &operator=(const ThreadCache &) = delete;

  void **slots(unsigned ClassIndex) {
    return Slots.get() + static_cast<size_t>(ClassIndex) * MagSize;
  }
};

LowFatHeap::ThreadCache *LowFatHeap::threadCache() {
  if (EFFSAN_LIKELY(HotHeap == this && HotStamp == Stamp))
    return static_cast<ThreadCache *>(HotTC);
  return threadCacheSlow();
}

LowFatHeap::ThreadCache *LowFatHeap::threadCacheSlow() {
  // All of this thread's caches, across heaps. Function-local so the
  // vector (and each cache's flushing destructor) runs at thread exit.
  thread_local std::vector<std::unique_ptr<ThreadCache>> Caches;

  ThreadCache *Found = nullptr;
  {
    // Prune caches of dead heaps while we are here (bounds the list by
    // the heaps the thread still uses). Retire under the registry lock
    // so a pruned cache's destructor skips the flush AND the lock.
    std::lock_guard<std::mutex> Guard(heapRegistryLock());
    auto &Live = liveHeapRegistry();
    std::erase_if(Caches, [&](std::unique_ptr<ThreadCache> &C) {
      auto It = Live.find(C->Heap);
      if (It != Live.end() && It->second == C->HeapStamp)
        return false;
      C->Retired = true; // Heap is gone; abandon the cached blocks.
      return true;
    });
  }
  for (auto &C : Caches)
    if (C->Heap == this && C->HeapStamp == Stamp)
      Found = C.get();
  if (!Found) {
    Caches.push_back(std::make_unique<ThreadCache>(*this));
    Found = Caches.back().get();
  }
  HotHeap = this;
  HotStamp = Stamp;
  HotTC = Found;
  return Found;
}

//===----------------------------------------------------------------------===//
// Construction / destruction
//===----------------------------------------------------------------------===//

LowFatHeap::LowFatHeap(const HeapOptions &Options) {
  assert(std::has_single_bit(Options.RegionSize) &&
         "region size must be a power of two");
  QuarantineLimit = Options.QuarantineBytes;
  Shards = Options.NumShards < 1 ? 1 : Options.NumShards;
  if (Shards > MaxHeapShards)
    Shards = MaxHeapShards;
  MagSize = Options.MagazineSize > MaxMagazineSize ? MaxMagazineSize
                                                   : Options.MagazineSize;
  WorkStealing = Options.EnableWorkStealing;
  Stamp = nextHeapStamp();

  // Reserve the arena; retry with smaller regions if the reservation is
  // refused. MAP_NORESERVE keeps untouched pages free of charge. With
  // more than one shard the region is capped at 2^31 bytes so the
  // shard-of-address division is an exact single high multiply.
  uint64_t TryRegion = Options.RegionSize;
  if (Shards > 1 && TryRegion > (1ull << 31))
    TryRegion = 1ull << 31;
  void *Arena = MAP_FAILED;
  while (TryRegion >= (1ull << 26)) {
    ArenaBytes = TryRegion * NumSizeClasses;
    Arena = ::mmap(nullptr, ArenaBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (Arena != MAP_FAILED)
      break;
    TryRegion >>= 1;
  }
  if (Arena == MAP_FAILED) {
    std::fprintf(stderr,
                 "FATAL: low-fat heap: cannot reserve arena (%zu bytes)\n",
                 ArenaBytes);
    std::abort();
  }
  RegionSize = TryRegion;
  RegionShift = static_cast<unsigned>(std::countr_zero(RegionSize));
  ArenaBase = reinterpret_cast<uintptr_t>(Arena);
  ArenaEnd = ArenaBase + ArenaBytes;

  Subs = std::make_unique<SubRegion[]>(
      static_cast<size_t>(NumSizeClasses) * Shards);
  Counters = std::make_unique<ShardCounters[]>(Shards);
  Quarantines = std::make_unique<ShardQuarantine[]>(Shards);
  ShardEpochs = std::make_unique<std::atomic<uint64_t>[]>(Shards);
  for (unsigned S = 0; S < Shards; ++S)
    ShardEpochs[S].store(1, std::memory_order_relaxed);

  for (unsigned I = 0; I < NumSizeClasses; ++I) {
    Region &R = Regions[I];
    R.Begin = ArenaBase + static_cast<uintptr_t>(I) * RegionSize;
    // Each shard's slice is the largest class-size multiple that fits;
    // slices are contiguous from the region base, so every block in any
    // slice sits at a class-aligned offset and base(p) stays a single
    // modulo over the whole region.
    R.SubCapacity = RegionSize / Shards / classSize(I) * classSize(I);
    R.UsableEnd = R.Begin + R.SubCapacity * Shards;
    R.SubMagic = R.SubCapacity ? UINT64_MAX / R.SubCapacity + 1 : 0;
    for (unsigned S = 0; S < Shards; ++S) {
      SubRegion &Sub = subRegion(I, S);
      Sub.Begin = R.Begin + static_cast<uintptr_t>(S) * R.SubCapacity;
      Sub.End = Sub.Begin + R.SubCapacity;
      Sub.Bump.store(Sub.Begin, std::memory_order_relaxed);
    }
  }

  std::lock_guard<std::mutex> Guard(heapRegistryLock());
  liveHeapRegistry().emplace(this, Stamp);
}

LowFatHeap::~LowFatHeap() {
  {
    // After this no thread-exit flush will touch the heap (flushes run
    // under the same lock and re-check liveness).
    std::lock_guard<std::mutex> Guard(heapRegistryLock());
    liveHeapRegistry().erase(this);
  }
  ::munmap(reinterpret_cast<void *>(ArenaBase), ArenaBytes);
  for (auto &Entry : LegacyAllocs)
    std::free(Entry.first);
}

LowFatHeap &LowFatHeap::global() {
  static LowFatHeap Heap;
  return Heap;
}

//===----------------------------------------------------------------------===//
// Statistics plumbing
//===----------------------------------------------------------------------===//

void LowFatHeap::noteAlloc(unsigned Shard, size_t Block, bool Legacy) {
  ShardCounters &C = Counters[Shard];
  uint64_t Now = C.BlockBytesInUse.fetch_add(Block,
                                             std::memory_order_relaxed) +
                 Block;
  C.NumAllocs.fetch_add(1, std::memory_order_relaxed);
  if (Legacy)
    C.NumLegacyAllocs.fetch_add(1, std::memory_order_relaxed);
  // Statistical peak tracking (exact single-threaded): a CAS loop here
  // would put a second contended RMW on every allocation.
  if (Now > C.PeakBlockBytesInUse.load(std::memory_order_relaxed))
    C.PeakBlockBytesInUse.store(Now, std::memory_order_relaxed);
}

void LowFatHeap::noteFree(unsigned Shard, size_t Block) {
  ShardCounters &C = Counters[Shard];
  // Saturating subtraction: resetShard() zeroes the counters while
  // legacy blocks attributed to the shard may still be live, so a
  // later legacy free must clamp at zero rather than wrap (and then
  // poison the peak tracking forever).
  uint64_t Cur = C.BlockBytesInUse.load(std::memory_order_relaxed);
  while (!C.BlockBytesInUse.compare_exchange_weak(
      Cur, Cur >= Block ? Cur - Block : 0, std::memory_order_relaxed)) {
  }
  C.NumFrees.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Lock-free sub-arena primitives
//===----------------------------------------------------------------------===//

void *LowFatHeap::bumpAlloc(SubRegion &Sub, uint64_t Block) {
  uintptr_t Cur = Sub.Bump.load(std::memory_order_relaxed);
  while (Cur + Block <= Sub.End) {
    // Release pairs with isLowFat()'s acquire: Bump never overshoots
    // End, so a reader can never see a beyond-slice bump value.
    if (Sub.Bump.compare_exchange_weak(Cur, Cur + Block,
                                       std::memory_order_release,
                                       std::memory_order_relaxed))
      return reinterpret_cast<void *>(Cur);
  }
  return nullptr;
}

void LowFatHeap::pushFreeChain(SubRegion &Sub, FreeNode *First,
                               FreeNode *Last) {
  FreeNode *Head = Sub.FreeList.load(std::memory_order_relaxed);
  do {
    Last->Next = Head;
    // Release publishes the chain's links (and the freeing thread's
    // writes into the blocks) to the consumer's acquire exchange. The
    // compare is on the head pointer only and the chain is exclusively
    // ours, so a concurrent pop-all/push cannot corrupt anything
    // (no-ABA: nobody pops single nodes).
  } while (!Sub.FreeList.compare_exchange_weak(Head, First,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
}

void LowFatHeap::pushFreeBlock(SubRegion &Sub, void *Ptr) {
  auto *Node = reinterpret_cast<FreeNode *>(static_cast<char *>(Ptr) +
                                            FreeLinkOffset);
  pushFreeChain(Sub, Node, Node);
}

//===----------------------------------------------------------------------===//
// Magazine management
//===----------------------------------------------------------------------===//

/// Refills the magazine for \p ClassIndex from the thread's spare chain
/// or, when that is dry, by taking the bound sub-arena's entire free
/// list in one exchange (ABA-free pop-all). Returns true when at least
/// one block landed in the magazine.
bool LowFatHeap::refillMagazine(ThreadCache &TC, unsigned ClassIndex,
                                unsigned Shard) {
  if (EFFSAN_FAULT(HeapMagazineRefill))
    return false; // Induced refill failure: fall through to bump/exhaust.
  FreeNode *&Spare = TC.Spare[ClassIndex];
  if (!Spare) {
    Spare = subRegion(ClassIndex, Shard)
                .FreeList.exchange(nullptr, std::memory_order_acquire);
    if (!Spare)
      return false;
  }
  void **Slots = TC.slots(ClassIndex);
  uint16_t &N = TC.Counts[ClassIndex];
  uint16_t Before = N;
  while (N < MagSize && Spare) {
    Slots[N++] = reinterpret_cast<char *>(Spare) - FreeLinkOffset;
    Spare = Spare->Next;
  }
  ++TC.RefillTally;
  EFFSAN_OBS_EVENT(MagazineRefill, Shard, N - Before);
  return true;
}

/// Returns the older half of a full magazine to the bound sub-arena's
/// free list in a single chain push, keeping the newer half for reuse
/// hysteresis.
void LowFatHeap::flushMagazineHalf(ThreadCache &TC, unsigned ClassIndex) {
  void **Slots = TC.slots(ClassIndex);
  unsigned N = TC.Counts[ClassIndex];
  unsigned Flush = N - N / 2;
  assert(Flush > 0 && TC.BoundShard != ~0u);
  FreeNode *First = nullptr, *Prev = nullptr;
  for (unsigned I = 0; I < Flush; ++I) {
    auto *Node = reinterpret_cast<FreeNode *>(
        static_cast<char *>(Slots[I]) + FreeLinkOffset);
    if (Prev)
      Prev->Next = Node;
    else
      First = Node;
    Prev = Node;
  }
  pushFreeChain(subRegion(ClassIndex, TC.BoundShard), First, Prev);
  std::memmove(Slots, Slots + Flush, (N - Flush) * sizeof(void *));
  TC.Counts[ClassIndex] = static_cast<uint16_t>(N - Flush);
  EFFSAN_OBS_EVENT(MagazineFlush, TC.BoundShard, Flush);
}

/// Pushes every magazine block and spare chain back to the bound
/// shard's free lists. \pre the bound shard's epoch is still current.
void LowFatHeap::flushMagazines(ThreadCache &TC) {
  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    if (TC.Counts[C] > 0) {
      unsigned N = TC.Counts[C];
      void **Slots = TC.slots(C);
      FreeNode *First = nullptr, *Prev = nullptr;
      for (unsigned I = 0; I < N; ++I) {
        auto *Node = reinterpret_cast<FreeNode *>(
            static_cast<char *>(Slots[I]) + FreeLinkOffset);
        if (Prev)
          Prev->Next = Node;
        else
          First = Node;
        Prev = Node;
      }
      pushFreeChain(subRegion(C, TC.BoundShard), First, Prev);
      TC.Counts[C] = 0;
    }
    if (TC.Spare[C]) {
      FreeNode *Tail = TC.Spare[C];
      while (Tail->Next)
        Tail = Tail->Next;
      pushFreeChain(subRegion(C, TC.BoundShard), TC.Spare[C], Tail);
      TC.Spare[C] = nullptr;
    }
  }
}

/// Retires the cache's magazines: flush back to the bound shard if its
/// epoch is still current, drop otherwise. The epoch re-check and the
/// flush happen under the shard's quarantine lock, which resetShard()
/// also holds while recycling — so a thread that stopped using a shard
/// long ago (rebind to another shard, thread exit) can never interleave
/// its lazy flush with a reset and repopulate the recycled free lists
/// with pre-reset blocks. Active-use paths stay lock-free; this lock
/// sits only on rebind/exit.
void LowFatHeap::retireMagazines(ThreadCache &TC) {
  if (TC.BoundShard == ~0u)
    return;
  ShardQuarantine &Q = Quarantines[TC.BoundShard];
  std::lock_guard<std::mutex> Guard(Q.Lock);
  if (TC.ShardEpoch ==
      ShardEpochs[TC.BoundShard].load(std::memory_order_relaxed)) {
    publishTallies(TC);
    flushMagazines(TC);
  } else {
    // Stale: the shard was reset; the addresses belong to a new
    // tenant now (or will). Forget them — and the tallies with them:
    // the hits happened on the pre-reset tenant's watch, and the new
    // tenant's counters started from zero.
    std::memset(TC.Counts, 0, sizeof(TC.Counts));
    std::memset(TC.Spare, 0, sizeof(TC.Spare));
    TC.HitTally = 0;
    TC.RefillTally = 0;
  }
}

void LowFatHeap::publishTallies(ThreadCache &TC) {
  if (TC.HitTally) {
    Counters[TC.BoundShard].MagazineHits.fetch_add(
        TC.HitTally, std::memory_order_relaxed);
    TC.HitTally = 0;
  }
  if (TC.RefillTally) {
    Counters[TC.BoundShard].MagazineRefills.fetch_add(
        TC.RefillTally, std::memory_order_relaxed);
    TC.RefillTally = 0;
  }
}

/// Rebinds the cache to \p Shard after retiring the old shard's blocks.
void LowFatHeap::rebindCache(ThreadCache &TC, unsigned Shard) {
  retireMagazines(TC);
  TC.BoundShard = Shard;
  TC.ShardEpoch = ShardEpochs[Shard].load(std::memory_order_relaxed);
}

void LowFatHeap::flushCache(ThreadCache &TC) {
  retireMagazines(TC);
  if (!TC.Pending.empty())
    flushPendingQuarantine(TC);
}

void LowFatHeap::flushThreadCache() { flushCache(*threadCache()); }

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

void *LowFatHeap::allocateOnShard(size_t Size, unsigned Shard) {
  assert(Shard < Shards && "shard index out of range");
  if (Size == 0)
    Size = 1;
  if (Size > MaxClassSize || Size > RegionSize)
    return allocateLegacy(Size, Shard); // Oversized, not exhausted.

  unsigned ClassIndex = sizeToClass(Size);
  uint64_t Block = classSize(ClassIndex);

  if (EFFSAN_LIKELY(MagSize != 0)) {
    ThreadCache *TC = threadCache();
    if (EFFSAN_UNLIKELY(
            TC->BoundShard != Shard ||
            TC->ShardEpoch !=
                ShardEpochs[Shard].load(std::memory_order_relaxed)))
      rebindCache(*TC, Shard);
    uint16_t &N = TC->Counts[ClassIndex];
    if (EFFSAN_LIKELY(N > 0)) {
      // The steady state: a TLS array pop. No lock, no RMW atomic —
      // the hit lands in a thread-local tally, published in batches.
      void *Result = TC->slots(ClassIndex)[--N];
      if (EFFSAN_UNLIKELY(++TC->HitTally >= TallyPublishThreshold))
        publishTallies(*TC);
      noteAlloc(Shard, Block, /*Legacy=*/false);
      return Result;
    }
    if (refillMagazine(*TC, ClassIndex, Shard)) {
      void *Result = TC->slots(ClassIndex)[--TC->Counts[ClassIndex]];
      noteAlloc(Shard, Block, /*Legacy=*/false);
      return Result;
    }
  } else {
    // Magazines disabled: serve straight off the Treiber list. Pop-all
    // then push the remainder back — the stack stays ABA-free because
    // no path ever pops a single node it does not own.
    SubRegion &Sub = subRegion(ClassIndex, Shard);
    FreeNode *All = Sub.FreeList.exchange(nullptr,
                                          std::memory_order_acquire);
    if (All) {
      if (FreeNode *Rest = All->Next) {
        FreeNode *Tail = Rest;
        while (Tail->Next)
          Tail = Tail->Next;
        pushFreeChain(Sub, Rest, Tail);
      }
      noteAlloc(Shard, Block, /*Legacy=*/false);
      return reinterpret_cast<char *>(All) - FreeLinkOffset;
    }
  }

  // An induced slice exhaustion skips the bump allocator and takes the
  // same steal-then-legacy fallback a genuinely dry slice takes.
  if (EFFSAN_LIKELY(!EFFSAN_FAULT(HeapSliceExhausted)))
    if (void *Result = bumpAlloc(subRegion(ClassIndex, Shard), Block)) {
      noteAlloc(Shard, Block, /*Legacy=*/false);
      return Result;
    }
  return allocateExhausted(Size, ClassIndex, Shard);
}

void *LowFatHeap::allocateExhausted(size_t Size, unsigned ClassIndex,
                                    unsigned Shard) {
  uint64_t Block = classSize(ClassIndex);
  if (WorkStealing && Shards > 1) {
    // Refill from a sibling's slice of the same class region. The
    // stolen block lives in the sibling's slice, so base(p)/size(p)
    // stay the same global arithmetic and a later free returns it to
    // the sibling (shardOf is address-derived). Stats attribute the
    // block to its owning (victim) shard for alloc/free symmetry; the
    // steal itself is counted against the requesting shard.
    //
    // Each victim is probed under its quarantine lock — the lock
    // resetShard holds while recycling — so a steal can never
    // interleave with a concurrent reset of the victim (per-shard
    // reset while sibling shards keep allocating is the pool's normal
    // tenant-recycling pattern): the steal completes entirely before
    // the recycle (the block is then a "borrowed block" under the
    // documented contract extension) or entirely after (it serves
    // from the victim's fresh slice like any post-reset allocation).
    // Steals are the rare dry-slice path, so the lock costs the fast
    // path nothing.
    for (unsigned I = 1; I < Shards; ++I) {
      unsigned Victim = (Shard + I) % Shards;
      SubRegion &Sub = subRegion(ClassIndex, Victim);
      std::lock_guard<std::mutex> Guard(Quarantines[Victim].Lock);
      FreeNode *All = Sub.FreeList.exchange(nullptr,
                                            std::memory_order_acquire);
      if (All) {
        if (FreeNode *Rest = All->Next) {
          FreeNode *Tail = Rest;
          while (Tail->Next)
            Tail = Tail->Next;
          pushFreeChain(Sub, Rest, Tail);
        }
        Counters[Shard].Steals.fetch_add(1, std::memory_order_relaxed);
        noteAlloc(Victim, Block, /*Legacy=*/false);
        EFFSAN_OBS_EVENT(Steal, Shard, Victim);
        return reinterpret_cast<char *>(All) - FreeLinkOffset;
      }
      if (void *Result = bumpAlloc(Sub, Block)) {
        Counters[Shard].Steals.fetch_add(1, std::memory_order_relaxed);
        noteAlloc(Victim, Block, /*Legacy=*/false);
        EFFSAN_OBS_EVENT(Steal, Shard, Victim);
        return Result;
      }
    }
  }
  Counters[Shard].ExhaustFallbacks.fetch_add(1, std::memory_order_relaxed);
  return allocateLegacy(Size, Shard);
}

void *LowFatHeap::allocateLegacy(size_t Size, unsigned Shard) {
  // Real OOM degrades gracefully: the null propagates up to the typed
  // allocation layer, which turns it into a diagnosable
  // resource-exhausted report instead of aborting the host process.
  void *Ptr = std::malloc(Size);
  if (EFFSAN_UNLIKELY(!Ptr))
    return nullptr;
  {
    std::lock_guard<std::mutex> Guard(LegacyLock);
    LegacyAllocs.emplace(Ptr, std::make_pair(Size, Shard));
  }
  noteAlloc(Shard, Size, /*Legacy=*/true);
  return Ptr;
}

bool LowFatHeap::deallocateLegacy(void *Ptr) {
  size_t Size;
  unsigned Shard;
  {
    std::lock_guard<std::mutex> Guard(LegacyLock);
    auto It = LegacyAllocs.find(Ptr);
    if (It == LegacyAllocs.end())
      return false;
    Size = It->second.first;
    Shard = It->second.second;
    LegacyAllocs.erase(It);
  }
  std::free(Ptr);
  noteFree(Shard, Size);
  return true;
}

//===----------------------------------------------------------------------===//
// Deallocation and quarantine
//===----------------------------------------------------------------------===//

void LowFatHeap::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  if (!isLowFat(Ptr)) {
    bool Known = deallocateLegacy(Ptr);
    assert(Known && "deallocate of pointer not owned by this heap");
    (void)Known;
    return;
  }
  assert(Ptr == allocationBase(Ptr) &&
         "deallocate of an interior pointer");
  unsigned ClassIndex = allocationClass(Ptr);
  unsigned Shard = shardOf(Ptr);
  uint64_t Block = classSize(ClassIndex);
  noteFree(Shard, Block);

  if (EFFSAN_UNLIKELY(QuarantineLimit != 0)) {
    quarantineBlock(Ptr, ClassIndex, Shard);
    return;
  }

  if (EFFSAN_LIKELY(MagSize != 0)) {
    ThreadCache *TC = threadCache();
    if (EFFSAN_LIKELY(
            TC->BoundShard == Shard &&
            TC->ShardEpoch ==
                ShardEpochs[Shard].load(std::memory_order_relaxed))) {
      // The steady state: a TLS array push (the block's memory is not
      // even touched, so the META header trivially survives).
      if (EFFSAN_UNLIKELY(TC->Counts[ClassIndex] == MagSize))
        flushMagazineHalf(*TC, ClassIndex);
      TC->slots(ClassIndex)[TC->Counts[ClassIndex]++] = Ptr;
      return;
    }
    // Cross-shard (or unbound) free: hand the block straight back to
    // its owning shard's lock-free list.
  }
  pushFreeBlock(subRegion(ClassIndex, Shard), Ptr);
}

void LowFatHeap::quarantineBlock(void *Ptr, unsigned ClassIndex,
                                 unsigned Shard) {
  uint64_t Block = classSize(ClassIndex);
  // Bytes are accounted when the block *enters* quarantine (even while
  // it is still in the thread-local batch), so stats and the eviction
  // budget see every parked block immediately.
  Counters[Shard].QuarantinedBytes.fetch_add(Block,
                                             std::memory_order_relaxed);
  ThreadCache *TC = threadCache();
  TC->Pending.push_back(
      {Ptr, ClassIndex, Shard,
       ShardEpochs[Shard].load(std::memory_order_relaxed)});
  TC->PendingBytes += Block;
  // Flush once per batch — one locked FIFO operation per
  // QuarantineFlushCount frees — or earlier when the batch alone
  // approaches the budget (so tiny budgets still evict promptly).
  if (TC->Pending.size() >= QuarantineFlushCount ||
      TC->PendingBytes * 2 >= QuarantineLimit)
    flushPendingQuarantine(*TC);
}

void LowFatHeap::flushPendingQuarantine(ThreadCache &TC) {
  auto &Pending = TC.Pending;
  if (!Pending.empty())
    EFFSAN_OBS_EVENT(QuarantineFlush, Pending.front().Shard, Pending.size());
  // An induced budget overrun evicts every parked block — the same FIFO
  // path a genuine breach takes, just down to an empty quarantine. The
  // use-after-free reuse delay shrinks; correctness is untouched.
  uint64_t Limit =
      EFFSAN_FAULT(HeapQuarantineOverrun) ? 0 : QuarantineLimit;
  size_t I = 0;
  while (I < Pending.size()) {
    unsigned Shard = Pending[I].Shard;
    ShardQuarantine &Q = Quarantines[Shard];
    std::atomic<uint64_t> &QBytes = Counters[Shard].QuarantinedBytes;
    std::lock_guard<std::mutex> Guard(Q.Lock);
    for (; I < Pending.size() && Pending[I].Shard == Shard; ++I) {
      if (Pending[I].Epoch !=
          ShardEpochs[Shard].load(std::memory_order_relaxed))
        continue; // resetShard() recycled it; the byte accounting was
                  // zeroed with the shard, so just forget the block.
      Q.Blocks.emplace_back(Pending[I].Ptr, Pending[I].Class);
    }
    // FIFO eviction down to the budget: oldest blocks return to the
    // lock-free free lists (all parked blocks belong to this shard).
    while (QBytes.load(std::memory_order_relaxed) > Limit &&
           !Q.Blocks.empty()) {
      auto [Oldest, OldClass] = Q.Blocks.front();
      Q.Blocks.pop_front();
      QBytes.fetch_sub(classSize(OldClass), std::memory_order_relaxed);
      pushFreeBlock(subRegion(OldClass, Shard), Oldest);
    }
  }
  Pending.clear();
  TC.PendingBytes = 0;
}

//===----------------------------------------------------------------------===//
// Metadata queries (unchanged arithmetic — the whole point)
//===----------------------------------------------------------------------===//

bool LowFatHeap::isLowFat(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (P < ArenaBase || P >= ArenaEnd)
    return false;
  // Only the already-allocated prefix of a shard's slice contains
  // objects; a pointer at or beyond the slice's bump pointer was never
  // handed out and is treated as legacy (a hardening refinement over
  // the original allocator, which cannot make this distinction). This
  // also means a one-past-the-end pointer of a shard's newest block
  // degrades gracefully to legacy (wide bounds) rather than resolving
  // to an unallocated block.
  unsigned ClassIndex = regionIndexFor(P);
  const Region &R = Regions[ClassIndex];
  uint64_t Off = P - R.Begin;
  if (EFFSAN_UNLIKELY(P >= R.UsableEnd))
    return false; // Region tail no slice covers (or unserviceable class).
  const SubRegion &Sub = subRegion(ClassIndex, subIndexFor(R, Off));
  return P < Sub.Bump.load(std::memory_order_acquire);
}

size_t LowFatHeap::allocationSize(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (!isLowFat(Ptr))
    return SIZE_MAX;
  return classSize(regionIndexFor(P));
}

void *LowFatHeap::allocationBase(const void *Ptr) const {
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (!isLowFat(Ptr))
    return nullptr;
  unsigned ClassIndex = regionIndexFor(P);
  const Region &R = Regions[ClassIndex];
  uint64_t Offset = P - R.Begin;
  uint64_t Base = Offset - classModulo(ClassIndex, Offset);
  // A pointer one-past-the-end of block N computes as the base of block
  // N+1; that is the correct allocation for derived-pointer checks only
  // if N+1 was allocated, which isLowFat() already established. (Shard
  // slices are class-aligned, so N+1 is in the same slice as N whenever
  // it was handed out.)
  return reinterpret_cast<void *>(R.Begin + Base);
}

unsigned LowFatHeap::allocationClass(const void *Ptr) const {
  assert(isLowFat(Ptr) && "allocationClass on legacy pointer");
  return regionIndexFor(reinterpret_cast<uintptr_t>(Ptr));
}

unsigned LowFatHeap::shardOf(const void *Ptr) const {
  assert(isLowFat(Ptr) && "shardOf on legacy pointer");
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  const Region &R = Regions[regionIndexFor(P)];
  return subIndexFor(R, P - R.Begin);
}

//===----------------------------------------------------------------------===//
// Shard recycling and statistics
//===----------------------------------------------------------------------===//

void LowFatHeap::resetShard(unsigned Shard) {
  assert(Shard < Shards && "shard index out of range");
  {
    // The quarantine lock serializes the recycle against lazy magazine
    // retirements (rebind-away / thread exit — see retireMagazines):
    // either a retirement flushes first and its blocks are cleared
    // here with the rest of the shard, or it runs after and observes
    // the advanced epoch and drops its blocks. Threads *actively*
    // allocating/freeing on the shard are excluded by this function's
    // precondition, as before.
    ShardQuarantine &Q = Quarantines[Shard];
    std::lock_guard<std::mutex> Guard(Q.Lock);
    // Advance the magazine epoch: any thread cache bound to this shard
    // (including the caller's) discards its blocks on next use instead
    // of replaying addresses into the recycled slice, and stale
    // quarantine batch entries are filtered at flush time.
    ShardEpochs[Shard].fetch_add(1, std::memory_order_release);
    // Drop the shard's quarantine; its entries point into the
    // sub-arenas that are about to be rewound.
    Q.Blocks.clear();
    for (unsigned I = 0; I < NumSizeClasses; ++I) {
      SubRegion &Sub = subRegion(I, Shard);
      Sub.FreeList.store(nullptr, std::memory_order_relaxed);
      Sub.Bump.store(Sub.Begin, std::memory_order_release);
    }
  }
  ShardCounters &C = Counters[Shard];
  C.BlockBytesInUse.store(0, std::memory_order_relaxed);
  C.PeakBlockBytesInUse.store(0, std::memory_order_relaxed);
  C.NumAllocs.store(0, std::memory_order_relaxed);
  C.NumFrees.store(0, std::memory_order_relaxed);
  C.NumLegacyAllocs.store(0, std::memory_order_relaxed);
  C.QuarantinedBytes.store(0, std::memory_order_relaxed);
  C.MagazineHits.store(0, std::memory_order_relaxed);
  C.MagazineRefills.store(0, std::memory_order_relaxed);
  C.Steals.store(0, std::memory_order_relaxed);
  C.ExhaustFallbacks.store(0, std::memory_order_relaxed);
  EFFSAN_OBS_EVENT(ShardRecycle,
                   Shard, ShardEpochs[Shard].load(std::memory_order_relaxed));
}

HeapStats LowFatHeap::shardStats(unsigned Shard) const {
  assert(Shard < Shards && "shard index out of range");
  // Fold the *calling thread's* in-flight tally batch into the shared
  // counters first, so same-thread reads stay exact without a
  // flushThreadCache() round trip (other threads' in-flight batches
  // appear once they publish or flush). Publishing mutates only
  // thread-local tally state and lock-free atomics, so the method
  // stays logically const.
  if (HotHeap == this && HotStamp == Stamp) {
    auto *TC = static_cast<ThreadCache *>(HotTC);
    if (TC && TC->BoundShard == Shard &&
        TC->ShardEpoch ==
            ShardEpochs[Shard].load(std::memory_order_relaxed))
      const_cast<LowFatHeap *>(this)->publishTallies(*TC);
  }
  const ShardCounters &C = Counters[Shard];
  HeapStats S;
  S.BlockBytesInUse = C.BlockBytesInUse.load(std::memory_order_relaxed);
  S.PeakBlockBytesInUse =
      C.PeakBlockBytesInUse.load(std::memory_order_relaxed);
  S.NumAllocs = C.NumAllocs.load(std::memory_order_relaxed);
  S.NumFrees = C.NumFrees.load(std::memory_order_relaxed);
  S.NumLegacyAllocs = C.NumLegacyAllocs.load(std::memory_order_relaxed);
  S.QuarantinedBytes = C.QuarantinedBytes.load(std::memory_order_relaxed);
  S.MagazineHits = C.MagazineHits.load(std::memory_order_relaxed);
  S.MagazineRefills = C.MagazineRefills.load(std::memory_order_relaxed);
  S.Steals = C.Steals.load(std::memory_order_relaxed);
  S.ExhaustFallbacks =
      C.ExhaustFallbacks.load(std::memory_order_relaxed);
  return S;
}

HeapStats LowFatHeap::stats() const {
  HeapStats Sum;
  for (unsigned S = 0; S < Shards; ++S) {
    HeapStats Part = shardStats(S);
    Sum.BlockBytesInUse += Part.BlockBytesInUse;
    Sum.PeakBlockBytesInUse += Part.PeakBlockBytesInUse;
    Sum.NumAllocs += Part.NumAllocs;
    Sum.NumFrees += Part.NumFrees;
    Sum.NumLegacyAllocs += Part.NumLegacyAllocs;
    Sum.QuarantinedBytes += Part.QuarantinedBytes;
    Sum.MagazineHits += Part.MagazineHits;
    Sum.MagazineRefills += Part.MagazineRefills;
    Sum.Steals += Part.Steals;
    Sum.ExhaustFallbacks += Part.ExhaustFallbacks;
  }
  return Sum;
}

uint64_t LowFatHeap::classCarvedBytes(unsigned ClassIndex) const {
  assert(ClassIndex < NumSizeClasses && "class index out of range");
  uint64_t Total = 0;
  for (unsigned S = 0; S < Shards; ++S) {
    const SubRegion &Sub = subRegion(ClassIndex, S);
    Total += Sub.Bump.load(std::memory_order_relaxed) - Sub.Begin;
  }
  return Total;
}

void LowFatHeap::resetPeaks() {
  for (unsigned S = 0; S < Shards; ++S) {
    ShardCounters &C = Counters[S];
    C.PeakBlockBytesInUse.store(
        C.BlockBytesInUse.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}
