//===- lowfat/GlobalPool.h - Low-fat global allocation ----------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration pool for "global" objects, standing in for the low-fat
/// global allocator of Duck & Yap (the extended low-fat allocator API,
/// arXiv:1804.04812). The original places program globals into low-fat
/// regions at link time; here globals are allocated from the low-fat heap
/// at program/module initialization and are never freed. A registry keeps
/// name/size records for reflection and tests.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_GLOBALPOOL_H
#define EFFECTIVE_LOWFAT_GLOBALPOOL_H

#include "lowfat/LowFatHeap.h"

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace effective {
namespace lowfat {

/// One registered global object.
struct GlobalRecord {
  void *Address;
  size_t Size;
  std::string Name;
};

/// Allocates never-freed global objects from a LowFatHeap. Thread-safe.
class GlobalPool {
public:
  explicit GlobalPool(LowFatHeap &Heap) : Heap(Heap) {}

  ~GlobalPool() {
    for (const GlobalRecord &G : Globals)
      Heap.deallocate(G.Address);
  }

  GlobalPool(const GlobalPool &) = delete;
  GlobalPool &operator=(const GlobalPool &) = delete;

  /// Allocates a global object and records it under \p Name.
  void *allocate(size_t Size, std::string_view Name) {
    void *Ptr = Heap.allocate(Size);
    std::lock_guard<std::mutex> Guard(Lock);
    Globals.push_back(GlobalRecord{Ptr, Size, std::string(Name)});
    return Ptr;
  }

  /// Looks up a registered global by name; null if absent.
  void *lookup(std::string_view Name) const {
    std::lock_guard<std::mutex> Guard(Lock);
    for (const GlobalRecord &G : Globals)
      if (G.Name == Name)
        return G.Address;
    return nullptr;
  }

  /// Number of registered globals.
  size_t size() const {
    std::lock_guard<std::mutex> Guard(Lock);
    return Globals.size();
  }

private:
  LowFatHeap &Heap;
  mutable std::mutex Lock;
  std::vector<GlobalRecord> Globals;
};

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_GLOBALPOOL_H
