//===- lowfat/GlobalPool.h - Low-fat global allocation ----------*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration pool for "global" objects, standing in for the low-fat
/// global allocator of Duck & Yap (the extended low-fat allocator API,
/// arXiv:1804.04812). The original places program globals into low-fat
/// regions at link time; here globals are allocated from the low-fat heap
/// at program/module initialization and are never freed. A registry keeps
/// name/size records for reflection and tests.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_GLOBALPOOL_H
#define EFFECTIVE_LOWFAT_GLOBALPOOL_H

#include "lowfat/LowFatHeap.h"

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace effective {
namespace lowfat {

/// One registered global object.
struct GlobalRecord {
  void *Address;
  size_t Size;
  std::string Name;
  /// True when the allocation fell back to the system allocator
  /// (oversized request) — such blocks are not part of any low-fat
  /// sub-arena and must be freed individually on reset().
  bool Legacy;
};

/// Allocates never-freed global objects from a LowFatHeap (from shard
/// \p Shard's sub-arena when the heap is sharded). Thread-safe.
class GlobalPool {
public:
  explicit GlobalPool(LowFatHeap &Heap, unsigned Shard = 0)
      : Heap(Heap), Shard(Shard) {}

  ~GlobalPool() {
    for (const GlobalRecord &G : Globals)
      Heap.deallocate(G.Address);
  }

  GlobalPool(const GlobalPool &) = delete;
  GlobalPool &operator=(const GlobalPool &) = delete;

  /// Allocates a global object and records it under \p Name.
  void *allocate(size_t Size, std::string_view Name) {
    void *Ptr = Heap.allocateOnShard(Size, Shard);
    if (!Ptr)
      return nullptr; // OOM: nothing to record; caller reports.
    std::lock_guard<std::mutex> Guard(Lock);
    Globals.push_back(
        GlobalRecord{Ptr, Size, std::string(Name), !Heap.isLowFat(Ptr)});
    Bytes += Size;
    return Ptr;
  }

  /// Forgets every registered low-fat global *without* deallocating —
  /// used when the backing arena (shard) has been recycled wholesale
  /// and those addresses no longer denote live blocks. Legacy
  /// (oversized) globals are outside the recycled sub-arenas, so they
  /// are genuinely freed here instead of leaking once per reset.
  void reset() {
    std::lock_guard<std::mutex> Guard(Lock);
    for (const GlobalRecord &G : Globals)
      if (G.Legacy)
        Heap.deallocate(G.Address);
    Globals.clear();
    Bytes = 0;
  }

  /// Looks up a registered global by name; null if absent.
  void *lookup(std::string_view Name) const {
    std::lock_guard<std::mutex> Guard(Lock);
    for (const GlobalRecord &G : Globals)
      if (G.Name == Name)
        return G.Address;
    return nullptr;
  }

  /// Number of registered globals.
  size_t size() const {
    std::lock_guard<std::mutex> Guard(Lock);
    return Globals.size();
  }

  /// Requested payload bytes across every registered global (the ABI's
  /// object-stats surface).
  size_t totalBytes() const {
    std::lock_guard<std::mutex> Guard(Lock);
    return Bytes;
  }

private:
  LowFatHeap &Heap;
  unsigned Shard;
  mutable std::mutex Lock;
  std::vector<GlobalRecord> Globals;
  size_t Bytes = 0;
};

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_GLOBALPOOL_H
