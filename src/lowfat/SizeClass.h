//===- lowfat/SizeClass.h - Low-fat allocation size classes -----*- C++ -*-===//
//
// Part of the EffectiveSan reproduction. Released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Size classes for the low-fat allocator (Duck & Yap, CC'16 / NDSS'17).
/// The heap is partitioned into one region per size class; every object in
/// a region is placed at a multiple of the class size from the region
/// base, so \c base(p) is a single fast modulo and \c size(p) is a shift
/// plus table lookup — both O(1), as required by Section 5 of the paper.
///
/// Classes follow the original allocator's scheme of powers of two with
/// 1.5x midpoints (32, 48, 64, 96, 128, ...) to bound internal
/// fragmentation at 33%. The minimum class is 32 bytes so that a freed
/// block's 16-byte META header (which must survive until reallocation,
/// Section 5) never overlaps the intrusive free-list link.
///
//===----------------------------------------------------------------------===//

#ifndef EFFECTIVE_LOWFAT_SIZECLASS_H
#define EFFECTIVE_LOWFAT_SIZECLASS_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace effective {
namespace lowfat {

/// Number of size classes (32 B ... 64 MB, powers of two and midpoints).
inline constexpr unsigned NumSizeClasses = 43;

/// Smallest class size in bytes.
inline constexpr size_t MinClassSize = 32;

/// Largest class size in bytes; larger requests fall back to the system
/// allocator and yield legacy (non-fat) pointers.
inline constexpr size_t MaxClassSize = 64ull * 1024 * 1024;

/// Descriptor of one size class.
struct SizeClass {
  /// Block size in bytes.
  uint64_t Size;
  /// Lemire fast-modulo magic: UINT64_MAX / Size + 1.
  uint64_t Magic;
};

/// Table of all size classes, ascending by size.
extern const std::array<SizeClass, NumSizeClasses> SizeClasses;

/// Returns the index of the smallest class with Size >= \p Bytes.
/// \pre Bytes <= MaxClassSize.
unsigned sizeToClass(size_t Bytes);

/// Returns the block size of class \p Index.
inline uint64_t classSize(unsigned Index) { return SizeClasses[Index].Size; }

/// Computes Offset mod classSize(Index) without a division
/// (Lemire, "Faster remainders when the divisor is a constant", 2019).
inline uint64_t classModulo(unsigned Index, uint64_t Offset) {
  const SizeClass &C = SizeClasses[Index];
  uint64_t LowBits = C.Magic * Offset;
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(LowBits) * C.Size) >> 64);
}

} // namespace lowfat
} // namespace effective

#endif // EFFECTIVE_LOWFAT_SIZECLASS_H
